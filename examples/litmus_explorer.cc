/**
 * @file
 * Litmus explorer: walk the paper's litmus corpus, enumerate every
 * consistent execution under each memory model, apply the mapping
 * schemes and check Theorem-1 refinement -- an interactive-style tour of
 * the verification side of the library.
 *
 * Usage: litmus_explorer [test-name]
 */

#include <iostream>

#include "litmus/check.hh"
#include "litmus/enumerate.hh"
#include "litmus/library.hh"
#include "mapping/schemes.hh"
#include "models/model.hh"

using namespace risotto;
using namespace risotto::litmus;

namespace
{

void
explore(const LitmusTest &test)
{
    const models::X86Model x86;
    const models::ArmModel arm_fixed(models::ArmModel::AmoRule::Corrected);
    const models::ArmModel arm_orig(models::ArmModel::AmoRule::Original);

    std::cout << "=== " << test.program.name << " ===\n"
              << test.program.toString()
              << "interesting outcome: " << test.interesting.toString()
              << "\n\n";

    EnumerateStats stats;
    const BehaviorSet x86_behaviors =
        enumerateBehaviors(test.program, x86, &stats);
    std::cout << "x86-TSO: " << x86_behaviors.size()
              << " behaviours from " << stats.consistent
              << " consistent executions (" << stats.candidates
              << " candidates)\n";
    for (const Outcome &o : x86_behaviors)
        std::cout << "    " << o.toString() << "\n";
    std::cout << "  interesting outcome is "
              << (test.interesting.existsIn(x86_behaviors) ? "ALLOWED"
                                                           : "forbidden")
              << " in x86\n\n";

    struct PipelineCase
    {
        const char *label;
        mapping::X86ToTcgScheme frontend;
        mapping::TcgToArmScheme backend;
        mapping::RmwLowering rmw;
    };
    const PipelineCase cases[] = {
        {"qemu (casal helper)", mapping::X86ToTcgScheme::Qemu,
         mapping::TcgToArmScheme::Qemu,
         mapping::RmwLowering::HelperRmw1AL},
        {"risotto (inline casal)", mapping::X86ToTcgScheme::Risotto,
         mapping::TcgToArmScheme::Risotto,
         mapping::RmwLowering::InlineCasal},
    };
    for (const PipelineCase &c : cases) {
        const Program arm = mapping::mapX86ToArm(test.program, c.frontend,
                                                 c.backend, c.rmw);
        const auto refinement =
            checkRefinement(test.program, x86, arm, arm_fixed);
        std::cout << "  " << c.label << ": "
                  << (refinement.correct ? "refines x86 (Theorem 1 holds)"
                                         : "REFINEMENT VIOLATED");
        if (!refinement.correct) {
            std::cout << "; new outcomes:";
            for (const Outcome &o : refinement.newOutcomes)
                std::cout << " {" << o.toString() << "}";
        }
        std::cout << "\n";
    }

    // The desired Figure 3 mapping under both Arm model variants.
    const Program desired = mapping::mapX86ToArmDesired(test.program);
    const bool orig_ok =
        checkRefinement(test.program, x86, desired, arm_orig).correct;
    const bool fixed_ok =
        checkRefinement(test.program, x86, desired, arm_fixed).correct;
    std::cout << "  desired Fig.3 mapping: original model "
              << (orig_ok ? "refines" : "VIOLATED") << ", corrected model "
              << (fixed_ok ? "refines" : "VIOLATED") << "\n\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<LitmusTest> corpus = x86Corpus();
    if (argc > 1) {
        const std::string wanted = argv[1];
        bool found = false;
        for (const LitmusTest &test : corpus) {
            if (test.program.name == wanted) {
                explore(test);
                found = true;
            }
        }
        if (!found) {
            std::cerr << "unknown test '" << wanted << "'; available:";
            for (const LitmusTest &test : corpus)
                std::cerr << " " << test.program.name;
            std::cerr << "\n";
            return 1;
        }
        return 0;
    }
    for (const LitmusTest &test : corpus)
        explore(test);
    return 0;
}
