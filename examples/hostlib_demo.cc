/**
 * @file
 * Dynamic host library linker demo (Section 6.2, Figure 11).
 *
 * A guest program imports sha256 and sin through its PLT. Run once with
 * the linker disabled (the guest library implementations are translated,
 * soft-float and all) and once with the linker enabled (PLT calls
 * marshal straight into the native host libraries), showing identical
 * results and the speed difference. Also demonstrates registering a
 * custom host function through the IDL.
 */

#include <cstring>
#include <iostream>

#include "gx86/assembler.hh"
#include "risotto/risotto.hh"

using namespace risotto;

int
main()
{
    // Guest program: digest a buffer, then take sin(0.5), store both.
    gx86::Assembler a;
    const gx86::Addr digest_out = a.dataReserve(8);
    const gx86::Addr sin_out = a.dataReserve(8);
    const gx86::Addr custom_out = a.dataReserve(8);
    std::vector<std::uint8_t> buf(2048);
    for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<std::uint8_t>(i ^ (i >> 3));
    const gx86::Addr data = a.dataBytes(buf);

    const auto start = a.newLabel();
    a.defineSymbol("main");
    a.jmp(start);
    hostlib::emitGuestCryptoLibrary(a);
    hostlib::emitGuestMathLibrary(a);
    // A custom import with no guest implementation: only runs
    // host-linked.
    a.importFunction("fused_madd");
    a.bind(start);
    a.movri(1, static_cast<std::int64_t>(data));
    a.movri(2, static_cast<std::int64_t>(buf.size()));
    a.callImport("sha256");
    a.movri(3, static_cast<std::int64_t>(digest_out));
    a.store(3, 0, 0);
    a.movfd(1, 0.5);
    a.callImport("sin");
    a.movri(3, static_cast<std::int64_t>(sin_out));
    a.store(3, 0, 0);
    a.movri(1, 6);
    a.movri(2, 7);
    a.movri(3, 8);
    a.callImport("fused_madd"); // 6 * 7 + 8
    a.movri(3, static_cast<std::int64_t>(custom_out));
    a.store(3, 0, 0);
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    const gx86::GuestImage image = a.finish("main");

    auto report = [&](const char *label, const dbt::RunResult &result) {
        double sine;
        const std::uint64_t bits = result.memory->load64(sin_out);
        std::memcpy(&sine, &bits, sizeof(sine));
        std::cout << label << ":\n"
                  << "  sha256 = 0x" << std::hex
                  << result.memory->load64(digest_out) << std::dec << "\n"
                  << "  sin(0.5) = " << sine << "\n"
                  << "  cycles = " << result.makespan << "\n";
    };

    // Translated guest libraries (tcg-ver: linker off). The custom
    // import would fault, so use an IDL-described host function for it
    // even here -- pass an IDL that only names fused_madd.
    {
        EmulatorOptions options;
        options.config = dbt::DbtConfig::tcgVer();
        options.config.hostLinker = true; // Resolve only fused_madd.
        options.loadStandardHostLibraries = false;
        options.extraIdl = "i64 fused_madd(i64, i64, i64);\n";
        Emulator emulator(image, options);
        emulator.addHostFunction(
            "fused_madd",
            [](const std::vector<std::uint64_t> &args, gx86::Memory &,
               std::uint64_t &cost) {
                cost = 4;
                return args[0] * args[1] + args[2];
            });
        const auto result = emulator.run(1);
        report("translated guest libraries", result);
        std::cout << "  custom fused_madd(6,7,8) = "
                  << result.memory->load64(custom_out) << "\n\n";
    }

    // Host-linked native libraries (full risotto).
    {
        EmulatorOptions options;
        options.extraIdl = "i64 fused_madd(i64, i64, i64);\n";
        Emulator emulator(image, options);
        emulator.addHostFunction(
            "fused_madd",
            [](const std::vector<std::uint64_t> &args, gx86::Memory &,
               std::uint64_t &cost) {
                cost = 4;
                return args[0] * args[1] + args[2];
            });
        const auto result = emulator.run(1);
        report("host-linked native libraries", result);
        std::cout << "  linked imports:";
        for (const std::string &name : emulator.linkedFunctions())
            std::cout << " " << name;
        std::cout << "\n\nThe digests match bit for bit; sin differs "
                     "only in low-order bits\n(independent libm "
                     "implementations), and the linked run is far "
                     "faster.\n";
    }
    return 0;
}
