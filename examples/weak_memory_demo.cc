/**
 * @file
 * Weak-memory demo: the message-passing idiom translated and executed
 * end-to-end on the randomized weak-memory machine.
 *
 * The incorrect no-fences variant exhibits the weak outcome (a=1, b=0)
 * that x86 forbids; the QEMU and Risotto variants never do -- the
 * dynamic counterpart of the axiomatic checks in litmus_explorer.
 */

#include <iomanip>
#include <iostream>

#include "dbt/dbt.hh"
#include "gx86/assembler.hh"

using namespace risotto;
using dbt::Dbt;
using dbt::DbtConfig;
using dbt::ThreadSpec;

int
main()
{
    // MP as a two-thread guest program (role selected by r0).
    gx86::Assembler a;
    const gx86::Addr x = a.dataQuad(0);
    const gx86::Addr y = a.dataQuad(0);
    (void)y; // Y lives at x+8; the code addresses it relative to X.
    const gx86::Addr out = a.dataReserve(16);
    a.defineSymbol("main");
    const auto reader = a.newLabel();
    a.movri(3, static_cast<std::int64_t>(x));
    a.cmpri(0, 0);
    a.jcc(gx86::Cond::Ne, reader);
    // Writer: X = 1; Y = 1.
    a.movri(4, 1);
    a.store(3, 0, 4);
    a.store(3, 8, 4);
    a.hlt();
    // Reader: a = Y; b = X.
    a.bind(reader);
    a.load(5, 3, 8);
    a.load(6, 3, 0);
    a.movri(7, static_cast<std::int64_t>(out));
    a.store(7, 0, 5);
    a.store(7, 8, 6);
    a.hlt();
    const gx86::GuestImage image = a.finish("main");

    std::cout << "Message passing, 600 randomized schedules per variant\n"
              << "(outcome a=1,b=0 is forbidden by x86-TSO)\n\n";
    std::cout << std::left << std::setw(12) << "variant" << std::setw(10)
              << "a=0,b=0" << std::setw(10) << "a=0,b=1" << std::setw(10)
              << "a=1,b=1" << std::setw(14) << "a=1,b=0(WEAK)" << "\n";

    for (auto config : {DbtConfig::qemuNoFences(), DbtConfig::qemu(),
                        DbtConfig::tcgVer(), DbtConfig::risotto()}) {
        Dbt engine(image, config);
        int counts[2][2] = {};
        for (std::uint64_t seed = 1; seed <= 600; ++seed) {
            machine::MachineConfig mc;
            mc.randomize = true;
            mc.seed = seed;
            ThreadSpec writer;
            ThreadSpec rdr;
            rdr.regs[0] = 1;
            const auto result = engine.run({writer, rdr}, mc);
            if (!result.finished)
                continue;
            const auto av = result.memory->load64(out);
            const auto bv = result.memory->load64(out + 8);
            counts[av & 1][bv & 1]++;
        }
        std::cout << std::setw(12) << config.name << std::setw(10)
                  << counts[0][0] << std::setw(10) << counts[0][1]
                  << std::setw(10) << counts[1][1] << std::setw(14)
                  << counts[1][0]
                  << (counts[1][0] ? "  <-- translation error!" : "")
                  << "\n";
    }
    std::cout << "\nOnly the fence-free oracle leaks the weak outcome; "
                 "every correct mapping\n(including QEMU's overly strong "
                 "one) suppresses it.\n";
    return 0;
}
