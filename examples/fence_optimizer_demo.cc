/**
 * @file
 * Fence-optimizer demo: watch a guest snippet travel the whole pipeline
 * -- x86 decode, TCG IR with the Figure 7a fences, the Section 6.1
 * fence-merging pass, and the final Arm code -- reproducing the paper's
 * worked example:
 *
 *     a = X; Y = 1;   ~~>   a = X; Fsc; Y = 1   ~~>   ldr; dmb ish; str
 */

#include <iostream>

#include "dbt/backend.hh"
#include "dbt/dbt.hh"
#include "dbt/frontend.hh"
#include "gx86/assembler.hh"
#include "tcg/optimizer.hh"

using namespace risotto;

int
main()
{
    // The Section 6.1 example: a load directly followed by a store.
    gx86::Assembler a;
    const gx86::Addr x = a.dataQuad(0);
    a.defineSymbol("main");
    a.movri(3, static_cast<std::int64_t>(x));
    a.load(1, 3, 0);      // a = X
    a.storei(3, 8, 1);    // Y = 1
    a.hlt();
    const gx86::GuestImage image = a.finish("main");

    std::cout << "Guest snippet:\n" << image.disassemble() << "\n";

    for (bool merging : {false, true}) {
        dbt::DbtConfig config = dbt::DbtConfig::risotto();
        config.optimizer.fenceMerging = merging;
        dbt::Frontend frontend(image, config, nullptr);
        tcg::Block block = frontend.translate(image.entry);
        std::cout << (merging ? "TCG IR after fence merging:\n"
                              : "TCG IR before fence merging "
                                "(Figure 7a fences):\n");
        tcg::Block optimized = block;
        tcg::optimize(optimized, config.optimizer, nullptr);
        std::cout << optimized.toString() << "\n";

        // Lower to Arm and show the final code.
        dbt::Dbt engine(image, config);
        const aarch::CodeAddr entry =
            engine.lookupOrTranslate(image.entry);
        std::cout << "Arm host code ("
                  << (merging ? "merged" : "unmerged") << "):\n"
                  << engine.codeBuffer().disassemble(
                         entry, engine.codeBuffer().end())
                  << "\n";
    }

    std::cout << "The trailing Frm of the load and the leading Fww of "
                 "the store merge into a\nsingle full fence lowered to "
                 "one DMB ISH -- the Section 6.1 example.\n";
    return 0;
}
