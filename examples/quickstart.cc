/**
 * @file
 * Quickstart: assemble a small x86 guest program, emulate it with the
 * Risotto DBT on the simulated weak-memory Arm host, and inspect the
 * results -- the five-minute tour of the public API.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "gx86/assembler.hh"
#include "risotto/risotto.hh"

using namespace risotto;

int
main()
{
    std::cout << versionString() << "\n\n";

    // 1. Write a guest program with the assembler: four threads each
    //    atomically add their (thread id + 1) to a shared cell 1000
    //    times, then exit with the id.
    gx86::Assembler a;
    const gx86::Addr counter = a.dataQuad(0);
    const gx86::Addr progress = a.dataReserve(8 * 64);
    a.defineSymbol("main");
    a.movri(4, static_cast<std::int64_t>(counter));
    a.movrr(2, 0);  // r2 = tid
    a.addi(2, 1);   // value to add
    a.movri(6, static_cast<std::int64_t>(progress));
    a.movrr(7, 0);
    a.shli(7, 3);
    a.add(6, 7);    // r6 = &progress[tid]
    a.movri(14, 1000);
    const auto loop = a.newLabel();
    a.bind(loop);
    a.movrr(5, 2);
    a.lockXadd(4, 0, 5); // counter += tid + 1
    a.store(6, 0, 14);   // publish progress (an ordinary guest store)
    a.subi(14, 1);
    a.cmpri(14, 0);
    a.jcc(gx86::Cond::Gt, loop);
    a.movrr(1, 0);  // exit code = tid
    a.movri(0, 0);  // exit syscall
    a.syscall();
    const gx86::GuestImage image = a.finish("main");

    std::cout << "Guest program:\n" << image.disassemble() << "\n";

    // 2. Emulate it under the full Risotto configuration (verified
    //    mappings, fence merging, inline casal, host linker).
    Emulator emulator(image);
    const auto result = emulator.run(/*num_threads=*/4);

    // 3. Inspect the results.
    std::cout << "finished: " << (result.finished ? "yes" : "no") << "\n";
    std::cout << "final counter: " << result.memory->load64(counter)
              << " (expected " << 1000 * (1 + 2 + 3 + 4) << ")\n";
    std::cout << "parallel makespan: " << result.makespan
              << " simulated cycles\n";
    std::cout << "translation blocks: "
              << result.stats.get("dbt.tbs_translated")
              << ", atomic ops: " << result.stats.get("machine.cas_ops") +
                                         result.stats.get(
                                             "machine.atomic_adds")
              << "\n\n";

    // 4. Compare DBT variants on the same program: the paper's qemu
    //    baseline and the incorrect fence-free oracle.
    for (auto config : {dbt::DbtConfig::qemu(),
                        dbt::DbtConfig::qemuNoFences(),
                        dbt::DbtConfig::risotto()}) {
        EmulatorOptions options;
        options.config = config;
        Emulator variant(image, options);
        const auto r = variant.run(4);
        std::cout << "  " << config.name << ": " << r.makespan
                  << " cycles, barriers executed: "
                  << r.stats.get("machine.dmb_full") +
                         r.stats.get("machine.dmb_ld") +
                         r.stats.get("machine.dmb_st")
                  << "\n";
    }
    std::cout << "\nDone. Next stops: examples/litmus_explorer.cc "
                 "(memory-model checking)\nand examples/hostlib_demo.cc "
                 "(the dynamic host linker).\n";
    return 0;
}
