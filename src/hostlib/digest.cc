/**
 * @file
 * The "libcrypto" twins: digest kernels and RSA-like modular
 * exponentiation. Native and guest implementations compute bit-identical
 * results; only their cost differs (native: optimized host code; guest:
 * a translated byte loop).
 */

#include "hostlib/hostlib.hh"

#include <utility>

#include "support/error.hh"

namespace risotto::hostlib
{

using gx86::Assembler;
using gx86::Cond;

namespace
{

constexpr std::uint64_t Fnv1aSeed = 0xcbf29ce484222325ULL;
constexpr std::uint64_t Fnv1aPrime = 0x100000001b3ULL;

constexpr std::uint64_t Sha1SeedA = 0x0123456789abcdefULL;
constexpr std::uint64_t Sha1SeedB = 0xfedcba9876543210ULL;
constexpr std::uint64_t Sha1Prime = 0x9e3779b97f4a7c15ULL;

constexpr std::uint64_t Sha256Seed1 = 0x6a09e667f3bcc908ULL;
constexpr std::uint64_t Sha256Seed2 = 0xbb67ae8584caa73bULL;
constexpr std::uint64_t Sha256Seed3 = 0x3c6ef372fe94f82bULL;
constexpr std::uint64_t Sha256Seed4 = 0xa54ff53a5f1d36f1ULL;
constexpr std::uint64_t Sha256Prime1 = 0x100000001b3ULL;
constexpr std::uint64_t Sha256Prime2 = 0xc2b2ae3d27d4eb4fULL;
constexpr std::uint64_t Sha256Prime3 = 0xff51afd7ed558ccdULL;

/** 32-bit prime modulus: keeps modmul products within 64 bits. */
constexpr std::uint64_t RsaModulus = 0xffffffc5ULL;

std::uint64_t
rotl(std::uint64_t x, unsigned k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
referenceMd5(const std::uint8_t *data, std::size_t len)
{
    std::uint64_t h = Fnv1aSeed;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= data[i];
        h *= Fnv1aPrime;
    }
    return h;
}

std::uint64_t
referenceSha1(const std::uint8_t *data, std::size_t len)
{
    std::uint64_t h1 = Sha1SeedA;
    std::uint64_t h2 = Sha1SeedB;
    for (std::size_t i = 0; i < len; ++i) {
        h1 = rotl(h1 ^ data[i], 7) * Sha1Prime;
        h2 = (h2 + h1) ^ rotl(h2, 13);
    }
    return h1 ^ h2;
}

std::uint64_t
referenceSha256(const std::uint8_t *data, std::size_t len)
{
    std::uint64_t h1 = Sha256Seed1;
    std::uint64_t h2 = Sha256Seed2;
    std::uint64_t h3 = Sha256Seed3;
    std::uint64_t h4 = Sha256Seed4;
    for (std::size_t i = 0; i < len; ++i) {
        h1 = rotl(h1 ^ data[i], 5) * Sha256Prime1;
        h2 = (h2 ^ h1) * Sha256Prime2;
        h3 = h3 + rotl(h2, 11);
        h4 = (h4 ^ h3) * Sha256Prime3;
    }
    return h1 ^ h2 ^ h3 ^ h4;
}

std::uint64_t
referenceModExp(std::uint64_t base, std::uint64_t iterations, bool sign)
{
    // sign: long all-ones exponent (square+multiply every step);
    // verify: the classic short exponent 65537 (17 steps).
    const std::uint64_t steps = sign ? iterations : 17;
    std::uint64_t b = base % RsaModulus;
    if (b == 0)
        b = 2;
    std::uint64_t r = 1;
    for (std::uint64_t i = 0; i < steps; ++i) {
        r = (r * r) % RsaModulus;
        r = (r * b) % RsaModulus;
    }
    return r;
}

void
registerCryptoLibrary(linker::HostLibraryRegistry &registry)
{
    // Native digest throughput: roughly one fused mixing step per byte
    // on an optimized implementation.
    registry.add("md5", [](const std::vector<std::uint64_t> &args,
                           gx86::Memory &memory, std::uint64_t &cost) {
        const std::uint64_t len = args[1];
        cost = 400 + len * 25;
        return referenceMd5(std::as_const(memory).raw(args[0], len), len);
    });
    registry.add("sha1", [](const std::vector<std::uint64_t> &args,
                            gx86::Memory &memory, std::uint64_t &cost) {
        const std::uint64_t len = args[1];
        cost = 400 + len * 12;
        return referenceSha1(std::as_const(memory).raw(args[0], len), len);
    });
    registry.add("sha256", [](const std::vector<std::uint64_t> &args,
                              gx86::Memory &memory, std::uint64_t &cost) {
        const std::uint64_t len = args[1];
        cost = 400 + len * 7;
        return referenceSha256(std::as_const(memory).raw(args[0], len),
                               len);
    });
    registry.add("rsa_sign", [](const std::vector<std::uint64_t> &args,
                                gx86::Memory &, std::uint64_t &cost) {
        cost = 60 + args[1] * 7;
        return referenceModExp(args[0], args[1], /*sign=*/true);
    });
    registry.add("rsa_verify", [](const std::vector<std::uint64_t> &args,
                                  gx86::Memory &, std::uint64_t &cost) {
        cost = 60 + 17 * 7;
        return referenceModExp(args[0], args[1], /*sign=*/false);
    });
}

std::string
cryptoIdl()
{
    return "# libcrypto\n"
           "u64 md5(ptr, i64);\n"
           "u64 sha1(ptr, i64);\n"
           "u64 sha256(ptr, i64);\n"
           "u64 rsa_sign(u64, u64);\n"
           "u64 rsa_verify(u64, u64);\n";
}

namespace
{

/** Emit r(dst) = rotl(r(dst), k) clobbering r(tmp). */
void
emitRotl(Assembler &a, gx86::Reg dst, gx86::Reg tmp, unsigned k)
{
    a.movrr(tmp, dst);
    a.shli(dst, static_cast<std::uint8_t>(k));
    a.shri(tmp, static_cast<std::uint8_t>(64 - k));
    a.or_(dst, tmp);
}

} // namespace

void
emitGuestCryptoLibrary(Assembler &a)
{
    // --- md5: FNV-1a over [r1, r1+r2) -> r0 -------------------------------
    a.importFunction("md5");
    a.bindGuestImplHere("md5");
    {
        a.movri(0, static_cast<std::int64_t>(Fnv1aSeed));
        a.movri(8, static_cast<std::int64_t>(Fnv1aPrime));
        const auto loop = a.newLabel();
        const auto done = a.newLabel();
        a.bind(loop);
        a.cmpri(2, 0);
        a.jcc(Cond::Eq, done);
        a.load8(7, 1, 0);
        a.xor_(0, 7);
        a.mul(0, 8);
        a.addi(1, 1);
        a.subi(2, 1);
        a.jmp(loop);
        a.bind(done);
        a.ret();
    }

    // --- sha1: two-lane mix -> r0 -----------------------------------------
    a.importFunction("sha1");
    a.bindGuestImplHere("sha1");
    {
        a.movri(8, static_cast<std::int64_t>(Sha1SeedA));  // h1
        a.movri(9, static_cast<std::int64_t>(Sha1SeedB));  // h2
        a.movri(10, static_cast<std::int64_t>(Sha1Prime)); // K
        const auto loop = a.newLabel();
        const auto done = a.newLabel();
        a.bind(loop);
        a.cmpri(2, 0);
        a.jcc(Cond::Eq, done);
        a.load8(7, 1, 0);
        a.xor_(8, 7);
        emitRotl(a, 8, 11, 7);
        a.mul(8, 10);
        a.movrr(7, 9); // save h2 for rotl
        emitRotl(a, 7, 11, 13);
        a.add(9, 8);
        a.xor_(9, 7);
        a.addi(1, 1);
        a.subi(2, 1);
        a.jmp(loop);
        a.bind(done);
        a.movrr(0, 8);
        a.xor_(0, 9);
        a.ret();
    }

    // --- sha256: four-lane mix -> r0 ---------------------------------------
    a.importFunction("sha256");
    a.bindGuestImplHere("sha256");
    {
        a.movri(8, static_cast<std::int64_t>(Sha256Seed1));
        a.movri(9, static_cast<std::int64_t>(Sha256Seed2));
        a.movri(10, static_cast<std::int64_t>(Sha256Seed3));
        a.movri(12, static_cast<std::int64_t>(Sha256Seed4));
        const auto loop = a.newLabel();
        const auto done = a.newLabel();
        a.bind(loop);
        a.cmpri(2, 0);
        a.jcc(Cond::Eq, done);
        a.load8(7, 1, 0);
        // h1 = rotl(h1 ^ b, 5) * P1
        a.xor_(8, 7);
        emitRotl(a, 8, 11, 5);
        a.movri(7, static_cast<std::int64_t>(Sha256Prime1));
        a.mul(8, 7);
        // h2 = (h2 ^ h1) * P2
        a.xor_(9, 8);
        a.movri(7, static_cast<std::int64_t>(Sha256Prime2));
        a.mul(9, 7);
        // h3 = h3 + rotl(h2, 11)
        a.movrr(7, 9);
        emitRotl(a, 7, 11, 11);
        a.add(10, 7);
        // h4 = (h4 ^ h3) * P3
        a.xor_(12, 10);
        a.movri(7, static_cast<std::int64_t>(Sha256Prime3));
        a.mul(12, 7);
        a.addi(1, 1);
        a.subi(2, 1);
        a.jmp(loop);
        a.bind(done);
        a.movrr(0, 8);
        a.xor_(0, 9);
        a.xor_(0, 10);
        a.xor_(0, 12);
        a.ret();
    }

    // --- rsa_sign(base=r1, iters=r2) -> r0 ---------------------------------
    // r = 1; loop iters times { r = r*r mod M; r = r*b mod M }.
    auto emit_modexp = [&](bool sign) {
        const char *name = sign ? "rsa_sign" : "rsa_verify";
        a.importFunction(name);
        a.bindGuestImplHere(name);
        a.movri(10, static_cast<std::int64_t>(RsaModulus)); // M
        // b = base % M, forced nonzero.
        a.movrr(8, 1);
        a.movrr(7, 8);
        a.udiv(7, 10);
        a.mul(7, 10);
        a.sub(8, 7); // r8 = base % M
        const auto nonzero = a.newLabel();
        a.cmpri(8, 0);
        a.jcc(Cond::Ne, nonzero);
        a.movri(8, 2);
        a.bind(nonzero);
        if (!sign)
            a.movri(2, 17); // verify: fixed short exponent.
        a.movri(0, 1); // r
        const auto loop = a.newLabel();
        const auto done = a.newLabel();
        a.bind(loop);
        a.cmpri(2, 0);
        a.jcc(Cond::Eq, done);
        // r = r*r % M
        a.mul(0, 0);
        a.movrr(7, 0);
        a.udiv(7, 10);
        a.mul(7, 10);
        a.sub(0, 7);
        // r = r*b % M
        a.mul(0, 8);
        a.movrr(7, 0);
        a.udiv(7, 10);
        a.mul(7, 10);
        a.sub(0, 7);
        a.subi(2, 1);
        a.jmp(loop);
        a.bind(done);
        a.ret();
    };
    emit_modexp(true);
    emit_modexp(false);
}

} // namespace risotto::hostlib
