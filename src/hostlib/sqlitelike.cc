/**
 * @file
 * The "libsqlite" twins: a speedtest-like kernel doing pseudo-random
 * binary-search lookups over a sorted u64 table in guest memory, folding
 * results into a checksum. Native and guest versions are bit-identical.
 */

#include "hostlib/hostlib.hh"

#include <utility>

namespace risotto::hostlib
{

using gx86::Assembler;
using gx86::Cond;

namespace
{

constexpr std::uint64_t LcgMul = 6364136223846793005ULL;
constexpr std::uint64_t LcgAdd = 1442695040888963407ULL;

/** Reference kernel shared by the native implementation and tests. */
std::uint64_t
sqliteKernel(const std::uint64_t *table, std::uint64_t len,
             std::uint64_t ops, std::uint64_t seed)
{
    std::uint64_t state = seed;
    std::uint64_t check = 0;
    for (std::uint64_t k = 0; k < ops; ++k) {
        state = state * LcgMul + LcgAdd;
        const std::uint64_t key = state % (len * 2);
        // Lower-bound binary search.
        std::uint64_t lo = 0;
        std::uint64_t hi = len;
        while (lo < hi) {
            const std::uint64_t mid = (lo + hi) / 2;
            if (table[mid] < key)
                lo = mid + 1;
            else
                hi = mid;
        }
        check = check * 31 + lo + key;
    }
    return check;
}

} // namespace

void
registerSqliteLibrary(linker::HostLibraryRegistry &registry)
{
    // sqlite_exec(table_ptr, table_len, ops, seed) -> checksum.
    registry.add("sqlite_exec",
                 [](const std::vector<std::uint64_t> &args,
                    gx86::Memory &memory, std::uint64_t &cost) {
        const std::uint64_t len = args[1];
        const std::uint64_t ops = args[2];
        const auto *table = reinterpret_cast<const std::uint64_t *>(
            std::as_const(memory).raw(args[0], len * 8));
        // Native binary search: ~4 cycles per level plus loop overhead.
        std::uint64_t levels = 1;
        while ((1ULL << levels) < len)
            ++levels;
        cost = 40 + ops * (10 + 4 * levels);
        return sqliteKernel(table, len, ops, args[3]);
    });
}

std::string
sqliteIdl()
{
    return "# libsqlite\n"
           "u64 sqlite_exec(ptr, i64, i64, u64);\n";
}

void
emitGuestSqliteLibrary(Assembler &a)
{
    // r1 = table ptr, r2 = len, r3 = ops, r4 = seed; result -> r0.
    a.importFunction("sqlite_exec");
    a.bindGuestImplHere("sqlite_exec");

    a.movri(0, 0);                                        // check
    a.movrr(5, 4);                                        // state
    a.movri(12, static_cast<std::int64_t>(LcgMul));

    const auto op_loop = a.newLabel();
    const auto op_done = a.newLabel();
    a.bind(op_loop);
    a.cmpri(3, 0);
    a.jcc(Cond::Eq, op_done);

    // state = state * LcgMul + LcgAdd
    a.mul(5, 12);
    a.movri(7, static_cast<std::int64_t>(LcgAdd));
    a.add(5, 7);

    // key (r6) = state % (len * 2)
    a.movrr(7, 2);
    a.shli(7, 1);
    a.movrr(6, 5);
    a.movrr(8, 6);
    a.udiv(8, 7);
    a.mul(8, 7);
    a.sub(6, 8);

    // Binary search: lo = r7 = 0, hi = r8 = len.
    a.movri(7, 0);
    a.movrr(8, 2);
    const auto search = a.newLabel();
    const auto search_done = a.newLabel();
    const auto go_right = a.newLabel();
    a.bind(search);
    a.cmprr(7, 8);
    a.jcc(Cond::Ge, search_done);
    // mid = (lo + hi) / 2
    a.movrr(9, 7);
    a.add(9, 8);
    a.shri(9, 1);
    // r10 = table[mid]
    a.movrr(10, 9);
    a.shli(10, 3);
    a.add(10, 1);
    a.load(10, 10, 0);
    a.cmprr(10, 6);
    a.jcc(Cond::Lt, go_right);
    a.movrr(8, 9); // hi = mid
    a.jmp(search);
    a.bind(go_right);
    a.movrr(7, 9); // lo = mid + 1
    a.addi(7, 1);
    a.jmp(search);
    a.bind(search_done);

    // check = check * 31 + lo + key
    a.muli(0, 31);
    a.add(0, 7);
    a.add(0, 6);

    a.subi(3, 1);
    a.jmp(op_loop);
    a.bind(op_done);
    a.ret();
}

} // namespace risotto::hostlib
