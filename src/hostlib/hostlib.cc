#include "hostlib/hostlib.hh"

namespace risotto::hostlib
{

void
registerAllLibraries(linker::HostLibraryRegistry &registry)
{
    registerCryptoLibrary(registry);
    registerSqliteLibrary(registry);
    registerMathLibrary(registry);
}

std::string
fullIdl()
{
    return cryptoIdl() + sqliteIdl() + mathIdl();
}

} // namespace risotto::hostlib
