/**
 * @file
 * The "libm" twins.
 *
 * Native: the host's optimized math library (std::sin & co), with call
 * bodies costing tens of cycles. Guest: straight-line polynomial kernels
 * written in guest FP assembly -- every FAdd/FMul/FDiv becomes a
 * soft-float helper call under the DBT, reproducing QEMU's
 * software-floating-point penalty (Section 7.3). The guest kernels are
 * accurate to ~1e-7 on the benchmark input ranges; like any independent
 * libm implementation they differ from the host's in low-order bits.
 */

#include "hostlib/hostlib.hh"

#include <cmath>
#include <cstring>

namespace risotto::hostlib
{

using gx86::Assembler;

namespace
{

std::uint64_t
bitsOf(double d)
{
    std::uint64_t b;
    std::memcpy(&b, &d, sizeof(b));
    return b;
}

double
doubleOf(std::uint64_t b)
{
    double d;
    std::memcpy(&d, &b, sizeof(d));
    return d;
}

/** Register a double(double) native function with a fixed body cost. */
void
addUnary(linker::HostLibraryRegistry &registry, const std::string &name,
         double (*fn)(double), std::uint64_t body_cost)
{
    registry.add(name, [fn, body_cost](
                           const std::vector<std::uint64_t> &args,
                           gx86::Memory &, std::uint64_t &cost) {
        cost = body_cost;
        return bitsOf(fn(doubleOf(args[0])));
    });
}

} // namespace

void
registerMathLibrary(linker::HostLibraryRegistry &registry)
{
    addUnary(registry, "sqrt", [](double x) { return std::sqrt(x); }, 22);
    addUnary(registry, "exp", [](double x) { return std::exp(x); }, 55);
    addUnary(registry, "log", [](double x) { return std::log(x); }, 55);
    addUnary(registry, "sin", [](double x) { return std::sin(x); }, 60);
    addUnary(registry, "cos", [](double x) { return std::cos(x); }, 60);
    addUnary(registry, "tan", [](double x) { return std::tan(x); }, 80);
    addUnary(registry, "asin", [](double x) { return std::asin(x); }, 62);
    addUnary(registry, "acos", [](double x) { return std::acos(x); }, 62);
    addUnary(registry, "atan", [](double x) { return std::atan(x); }, 62);
}

std::string
mathIdl()
{
    return "# libm\n"
           "double sqrt(double);\n"
           "double exp(double);\n"
           "double log(double);\n"
           "double sin(double);\n"
           "double cos(double);\n"
           "double tan(double);\n"
           "double asin(double);\n"
           "double acos(double);\n"
           "double atan(double);\n";
}

namespace
{

/**
 * Emit Horner evaluation of p(y) = c[0] + c[1] y + ... over y in r7,
 * result in r8. Clobbers r9.
 */
void
emitHorner(Assembler &a, const std::vector<double> &coeffs)
{
    a.movfd(8, coeffs.back());
    for (std::size_t i = coeffs.size() - 1; i-- > 0;) {
        a.fmul(8, 7);
        a.movfd(9, coeffs[i]);
        a.fadd(8, 9);
    }
}

/** Series coefficients c_k = (-1)^k / (2k+1)! (sine in y = x^2). */
std::vector<double>
sinCoeffs(int terms)
{
    std::vector<double> c;
    double f = 1.0;
    for (int k = 0; k < terms; ++k) {
        if (k > 0)
            f *= (2.0 * k) * (2.0 * k + 1.0);
        c.push_back((k % 2 ? -1.0 : 1.0) / f);
    }
    return c;
}

/** c_k = (-1)^k / (2k)! (cosine in y = x^2). */
std::vector<double>
cosCoeffs(int terms)
{
    std::vector<double> c;
    double f = 1.0;
    for (int k = 0; k < terms; ++k) {
        if (k > 0)
            f *= (2.0 * k - 1.0) * (2.0 * k);
        c.push_back((k % 2 ? -1.0 : 1.0) / f);
    }
    return c;
}

/** c_k = 1 / k! (exponential in x). */
std::vector<double>
expCoeffs(int terms)
{
    std::vector<double> c;
    double f = 1.0;
    for (int k = 0; k < terms; ++k) {
        if (k > 0)
            f *= k;
        c.push_back(1.0 / f);
    }
    return c;
}

/** c_k = (-1)^k / (2k+1) (arctangent in y = x^2). */
std::vector<double>
atanCoeffs(int terms)
{
    std::vector<double> c;
    for (int k = 0; k < terms; ++k)
        c.push_back((k % 2 ? -1.0 : 1.0) / (2.0 * k + 1.0));
    return c;
}

/** c_k = (2k)! / (4^k (k!)^2 (2k+1)) (arcsine in y = x^2). */
std::vector<double>
asinCoeffs(int terms)
{
    std::vector<double> c;
    double num = 1.0;
    double den = 1.0;
    for (int k = 0; k < terms; ++k) {
        if (k > 0) {
            num *= (2.0 * k - 1.0) * (2.0 * k);
            den *= 4.0 * k * k;
        }
        c.push_back(num / (den * (2.0 * k + 1.0)));
    }
    return c;
}

/** c_k = 2 / (2k+1) (atanh-based logarithm in y = t^2, times t). */
std::vector<double>
logCoeffs(int terms)
{
    std::vector<double> c;
    for (int k = 0; k < terms; ++k)
        c.push_back(2.0 / (2.0 * k + 1.0));
    return c;
}

/** Emit r7 = x^2 from x in r1. */
void
emitSquareArg(Assembler &a)
{
    a.movrr(7, 1);
    a.fmul(7, 1);
}

/** Emit an odd series: result = x * p(x^2), into r0. */
void
emitOddSeries(Assembler &a, const std::vector<double> &coeffs)
{
    emitSquareArg(a);
    emitHorner(a, coeffs);
    a.fmul(8, 1);
    a.movrr(0, 8);
}

} // namespace

void
emitGuestMathLibrary(Assembler &a)
{
    // sqrt: a single guest FSQRT instruction (one soft-float helper under
    // the DBT) -- the cheapest of the library, hence the paper's smallest
    // linker speedup.
    a.importFunction("sqrt");
    a.bindGuestImplHere("sqrt");
    a.fsqrt(0, 1);
    a.ret();

    a.importFunction("exp");
    a.bindGuestImplHere("exp");
    {
        a.movrr(7, 1);
        emitHorner(a, expCoeffs(13));
        a.movrr(0, 8);
        a.ret();
    }

    a.importFunction("log");
    a.bindGuestImplHere("log");
    {
        // t = (x-1)/(x+1); log x = t * p(t^2).
        a.movfd(9, 1.0);
        a.movrr(7, 1);
        a.fsub(7, 9);  // x - 1
        a.movrr(10, 1);
        a.fadd(10, 9); // x + 1
        a.fdiv(7, 10); // t
        a.movrr(11, 7);
        a.fmul(7, 7);  // t^2 (r7), t saved in r11
        emitHorner(a, logCoeffs(9));
        a.fmul(8, 11);
        a.movrr(0, 8);
        a.ret();
    }

    a.importFunction("sin");
    a.bindGuestImplHere("sin");
    emitOddSeries(a, sinCoeffs(9));
    a.ret();

    a.importFunction("cos");
    a.bindGuestImplHere("cos");
    {
        emitSquareArg(a);
        emitHorner(a, cosCoeffs(9));
        a.movrr(0, 8);
        a.ret();
    }

    a.importFunction("tan");
    a.bindGuestImplHere("tan");
    {
        // sin(x) / cos(x), both inline.
        emitSquareArg(a);
        emitHorner(a, sinCoeffs(9));
        a.fmul(8, 1);
        a.movrr(12, 8); // sin
        emitSquareArg(a);
        emitHorner(a, cosCoeffs(9));
        a.fdiv(12, 8);
        a.movrr(0, 12);
        a.ret();
    }

    a.importFunction("asin");
    a.bindGuestImplHere("asin");
    emitOddSeries(a, asinCoeffs(12));
    a.ret();

    a.importFunction("acos");
    a.bindGuestImplHere("acos");
    {
        emitSquareArg(a);
        emitHorner(a, asinCoeffs(12));
        a.fmul(8, 1); // asin(x)
        a.movfd(9, 1.5707963267948966);
        a.fsub(9, 8);
        a.movrr(0, 9);
        a.ret();
    }

    a.importFunction("atan");
    a.bindGuestImplHere("atan");
    emitOddSeries(a, atanCoeffs(11));
    a.ret();
}

} // namespace risotto::hostlib
