/**
 * @file
 * Host shared libraries and their guest-side twins.
 *
 * Stand-ins for the paper's evaluation libraries (Section 7.3):
 *  - "libcrypto": digest kernels (md5/sha1/sha256-like byte-mixing loops)
 *    and RSA-like modular exponentiation (sign = long exponent,
 *    verify = short exponent).
 *  - "libsqlite": a sorted-table lookup/update kernel (speedtest-like).
 *  - "libm": the standard math functions.
 *
 * Each library exists twice: a *native host* implementation registered
 * with the HostLibraryRegistry (optimized code, native FP, low cycle
 * cost), and a *guest* implementation emitted as gx86 assembly that the
 * DBT translates (integer loops; FP via soft-float helpers). The digest,
 * RSA and sqlite twins compute bit-identical results so host-linked and
 * translated executions can be differentially tested; the math twins are
 * polynomial approximations (a guest libm and a host libm legitimately
 * differ in low-order bits).
 *
 * Guest library ABI: arguments in r1..r6, return value in r0; r7..r11
 * are scratch.
 */

#ifndef RISOTTO_HOSTLIB_HOSTLIB_HH
#define RISOTTO_HOSTLIB_HOSTLIB_HH

#include <string>

#include "gx86/assembler.hh"
#include "linker/hostlinker.hh"

namespace risotto::hostlib
{

// --- Native host libraries -----------------------------------------------

/** Register the digest + RSA library ("libcrypto"). */
void registerCryptoLibrary(linker::HostLibraryRegistry &registry);

/** Register the sqlite-like library ("libsqlite"). */
void registerSqliteLibrary(linker::HostLibraryRegistry &registry);

/** Register the math library ("libm"). */
void registerMathLibrary(linker::HostLibraryRegistry &registry);

/** Register every library above. */
void registerAllLibraries(linker::HostLibraryRegistry &registry);

// --- IDL -------------------------------------------------------------------

/** IDL text describing the crypto library functions. */
std::string cryptoIdl();

/** IDL text describing the sqlite library functions. */
std::string sqliteIdl();

/** IDL text describing the math library functions. */
std::string mathIdl();

/** Concatenation of all IDL documents. */
std::string fullIdl();

// --- Guest twins -----------------------------------------------------------

/**
 * Emit import stubs and guest implementations for the crypto library
 * into @p a. Call once, before any callImport of these functions.
 */
void emitGuestCryptoLibrary(gx86::Assembler &a);

/** Emit the guest sqlite library. */
void emitGuestSqliteLibrary(gx86::Assembler &a);

/** Emit the guest math library (soft-float polynomial kernels). */
void emitGuestMathLibrary(gx86::Assembler &a);

// --- Reference implementations (for tests) --------------------------------

/** The digest the md5-like twins compute over @p data. */
std::uint64_t referenceMd5(const std::uint8_t *data, std::size_t len);

/** The digest the sha1-like twins compute. */
std::uint64_t referenceSha1(const std::uint8_t *data, std::size_t len);

/** The digest the sha256-like twins compute. */
std::uint64_t referenceSha256(const std::uint8_t *data, std::size_t len);

/** The modular exponentiation the RSA twins compute. */
std::uint64_t referenceModExp(std::uint64_t base, std::uint64_t exp_bits,
                              bool sign);

} // namespace risotto::hostlib

#endif // RISOTTO_HOSTLIB_HOSTLIB_HH
