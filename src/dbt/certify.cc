#include "dbt/certify.hh"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <vector>

#include "dbt/backend.hh"
#include "dbt/frontend.hh"
#include "persist/fingerprint.hh"
#include "support/error.hh"
#include "support/threadpool.hh"
#include "tcg/optimizer.hh"
#include "verify/verifier.hh"

namespace risotto::dbt
{

namespace
{

/** Slot allocator for compiling outside an engine: numbers exits. */
struct CertifySlots : ExitSlotAllocator
{
    std::uint32_t next = 1;
    std::uint32_t staticSlot(std::uint64_t, std::uint64_t,
                             aarch::CodeAddr, bool) override
    {
        return next++;
    }
    std::uint32_t dynamicSlot() override { return 0; }
};

/** Per-block check outcome. */
enum class CheckResult : std::uint8_t
{
    Passed,
    Failed,
    Untranslatable,
};

/**
 * Run one block through the exact tier-1 pipeline the config implies
 * (elision included when configured) and the validator with the same
 * locality discharge the engine applies. Self-contained -- its own
 * Frontend, buffer and validator -- so blocks check in parallel.
 */
CheckResult
checkOne(const gx86::GuestImage &image, const DbtConfig &config,
         const analysis::ImageAnalysis &analysis,
         const gx86::DecodedSegment *segment, gx86::Addr head,
         std::uint64_t &pairs, std::uint64_t &discharged)
{
    try {
        Frontend frontend(image, config, nullptr);
        frontend.setSegment(segment);
        if (config.analysis && config.analysisElide)
            frontend.setAnalysis(&analysis);
        const std::vector<gx86::Instruction> guest =
            frontend.decodeBlock(head);
        tcg::Block block = frontend.translate(head);
        tcg::optimize(block, config.optimizer);

        aarch::CodeBuffer buffer;
        CertifySlots slots;
        Backend backend(buffer, config);
        const aarch::CodeAddr entry = backend.compile(block, slots);
        const auto host =
            verify::decodeHostRange(config.host, buffer, entry,
                                    buffer.end());

        verify::ValidatorOptions vo;
        vo.rmw = config.rmw;
        const verify::TbValidator validator(vo);
        std::vector<bool> mask;
        const std::vector<bool> *local = nullptr;
        if (config.analysis && config.analysisElide &&
            analysis.rspPrivate) {
            mask = verify::localGuestEvents(guest, true);
            local = &mask;
        }
        const verify::ValidationReport report =
            validator.validate(guest, block, host, head, false, local);
        pairs = report.pairsChecked;
        discharged = report.pairsDischargedLocal;
        return report.ok() ? CheckResult::Passed : CheckResult::Failed;
    } catch (const Error &) {
        return CheckResult::Untranslatable;
    }
}

/** Check @p heads in parallel, merging counters into @p report. Calls
 * @p outcome(i, result) under the merge lock, in arbitrary order. */
template <typename Outcome>
void
checkAll(const gx86::GuestImage &image, const DbtConfig &config,
         const analysis::ImageAnalysis &analysis,
         const gx86::DecodedSegment *segment,
         const std::vector<gx86::Addr> &heads, std::size_t jobs,
         CertifyReport &report, Outcome outcome)
{
    std::mutex merge;
    support::ThreadPool pool(jobs);
    pool.parallelFor(0, heads.size(), 1, [&](std::size_t i) {
        std::uint64_t pairs = 0;
        std::uint64_t discharged = 0;
        const CheckResult result = checkOne(
            image, config, analysis, segment, heads[i], pairs,
            discharged);
        std::lock_guard<std::mutex> lock(merge);
        report.pairsChecked += pairs;
        report.pairsDischargedLocal += discharged;
        outcome(i, result);
    });
}

} // namespace

analysis::Certificate
certifyImage(const gx86::GuestImage &image, const DbtConfig &config,
             const analysis::ImageAnalysis &analysis,
             const gx86::DecodedSegment *segment, CertifyReport &report,
             std::size_t jobs)
{
    analysis::Certificate cert;
    cert.imageDigest = persist::imageDigest(image);
    cert.configFingerprint = persist::configFingerprint(config);
    cert.rspPrivate = analysis.rspPrivate;

    std::vector<gx86::Addr> heads;
    heads.reserve(analysis.blocks.size());
    for (const auto &[pc, summary] : analysis.blocks)
        heads.push_back(pc);

    // One entry per analyzed block; flags filled by the checks below.
    cert.entries.resize(heads.size());
    for (std::size_t i = 0; i < heads.size(); ++i) {
        cert.entries[i].pc = heads[i];
        cert.entries[i].cls = analysis.classOf(heads[i]);
        cert.entries[i].flags = 0;
    }
    report.blocksCertified = heads.size();

    checkAll(image, config, analysis, segment, heads, jobs, report,
             [&](std::size_t i, CheckResult result) {
                 switch (result) {
                   case CheckResult::Passed:
                     cert.entries[i].flags |= analysis::ClaimValidated;
                     ++report.blocksValidated;
                     break;
                   case CheckResult::Failed:
                     ++report.blocksFailed;
                     break;
                   case CheckResult::Untranslatable:
                     ++report.blocksUntranslatable;
                     break;
                 }
             });
    // map iteration order is ascending already, but the serialized
    // format requires it explicitly.
    std::sort(cert.entries.begin(), cert.entries.end(),
              [](const analysis::CertEntry &a,
                 const analysis::CertEntry &b) { return a.pc < b.pc; });
    return cert;
}

CertifyReport
auditCertificate(const gx86::GuestImage &image, const DbtConfig &config,
                 const analysis::ImageAnalysis &analysis,
                 const gx86::DecodedSegment *segment,
                 const analysis::Certificate &cert, std::size_t jobs)
{
    CertifyReport report;
    std::vector<gx86::Addr> heads;
    heads.reserve(cert.entries.size());
    for (const analysis::CertEntry &e : cert.entries)
        if ((e.flags & analysis::ClaimValidated) != 0)
            heads.push_back(e.pc);
    report.blocksCertified = cert.entries.size();

    checkAll(image, config, analysis, segment, heads, jobs, report,
             [&](std::size_t, CheckResult result) {
                 switch (result) {
                   case CheckResult::Passed:
                     ++report.blocksValidated;
                     break;
                   // An untranslatable block cannot honestly carry
                   // claim V either: both count as disagreements.
                   case CheckResult::Failed:
                   case CheckResult::Untranslatable:
                     ++report.blocksFailed;
                     break;
                 }
             });
    return report;
}

} // namespace risotto::dbt
