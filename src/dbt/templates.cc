#include "dbt/templates.hh"

#include <utility>

#include "aarch/emitter.hh"
#include "dbt/backend.hh"
#include "dbt/frontend.hh"
#include "tcg/optimizer.hh"

namespace risotto::dbt
{

using gx86::Addr;
using gx86::Cond;
using gx86::Instruction;
using gx86::Opcode;
using mapping::RmwLowering;
using mapping::X86ToTcgScheme;
using memcore::FenceKind;
using tcg::Block;
using tcg::Instr;
using tcg::NoTemp;
using tcg::Op;
using tcg::TempId;
namespace b = tcg::build;

namespace
{

/** Weakened-template canary (testWeakenTemplate): the one kind whose
 * mapped fences are dropped during IR construction so its pair probes
 * must fail validation. Count_ = nothing weakened. */
TemplateKind weakened = TemplateKind::Count_;

} // namespace

void
testWeakenTemplate(TemplateKind kind)
{
    weakened = kind;
}

void
testResetTemplates()
{
    weakened = TemplateKind::Count_;
}

std::string
templateKindName(TemplateKind kind)
{
    switch (kind) {
      case TemplateKind::Nop: return "nop";
      case TemplateKind::Halt: return "halt";
      case TemplateKind::MovImm: return "mov-imm";
      case TemplateKind::MovReg: return "mov-reg";
      case TemplateKind::Load: return "load";
      case TemplateKind::Store: return "store";
      case TemplateKind::StoreImm: return "store-imm";
      case TemplateKind::Alu: return "alu";
      case TemplateKind::AluImm: return "alu-imm";
      case TemplateKind::Shift: return "shift";
      case TemplateKind::CmpReg: return "cmp-reg";
      case TemplateKind::CmpImm: return "cmp-imm";
      case TemplateKind::Jump: return "jump";
      case TemplateKind::CondBranch: return "cond-branch";
      case TemplateKind::Call: return "call";
      case TemplateKind::Ret: return "ret";
      case TemplateKind::Fence: return "fence";
      case TemplateKind::Cas: return "cas";
      case TemplateKind::Xadd: return "xadd";
      case TemplateKind::Count_: break;
    }
    return "unknown";
}

std::optional<TemplateKind>
templateKindFor(const Instruction &in, const DbtConfig &config)
{
    const bool helper_rmw = config.rmw == RmwLowering::HelperRmw1AL ||
                            config.rmw == RmwLowering::HelperRmw2AL;
    switch (in.op) {
      case Opcode::Nop:
        return TemplateKind::Nop;
      case Opcode::Hlt:
        return TemplateKind::Halt;
      case Opcode::MovRI:
        return TemplateKind::MovImm;
      case Opcode::MovRR:
        return TemplateKind::MovReg;
      case Opcode::Load:
      case Opcode::Load8:
        return TemplateKind::Load;
      case Opcode::Store:
      case Opcode::Store8:
        return TemplateKind::Store;
      case Opcode::StoreI:
        return TemplateKind::StoreImm;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Mul:
      case Opcode::Udiv:
        return TemplateKind::Alu;
      case Opcode::AddI:
      case Opcode::SubI:
      case Opcode::AndI:
      case Opcode::OrI:
      case Opcode::XorI:
      case Opcode::MulI:
        return TemplateKind::AluImm;
      case Opcode::ShlI:
      case Opcode::ShrI:
        return TemplateKind::Shift;
      case Opcode::CmpRR:
        return TemplateKind::CmpReg;
      case Opcode::CmpRI:
        return TemplateKind::CmpImm;
      case Opcode::Jmp:
        return TemplateKind::Jump;
      case Opcode::Jcc:
        return TemplateKind::CondBranch;
      case Opcode::Call:
        return TemplateKind::Call;
      case Opcode::Ret:
        return TemplateKind::Ret;
      case Opcode::MFence:
        return TemplateKind::Fence;
      case Opcode::LockCmpxchg:
        // Helper lowerings route through CallHelper -- untemplated.
        if (helper_rmw)
            return std::nullopt;
        return TemplateKind::Cas;
      case Opcode::LockXadd:
        if (helper_rmw)
            return std::nullopt;
        return TemplateKind::Xadd;
      default:
        // PltCall, soft-float, Syscall, anything new: tier 1's job.
        return std::nullopt;
    }
}

namespace
{

// --- Naive IR construction ------------------------------------------------
//
// Exact mirror of Frontend::translateOne / emitFlagsFrom / emitJcc for
// the whitelisted kinds (dbt/frontend.cc is the source of truth): same
// instruction forms, same temp/label allocation order, so the planned
// block's numTemps/numLabels and every operand match what tier 1 hands
// the optimizer. The only intentional divergence is the canary hook,
// which drops the weakened kind's mapped fences.

void
emitFlagsFrom(Block &block, TempId value)
{
    const TempId zero = block.newTemp();
    block.instrs.push_back(b::movi(zero, 0));
    block.instrs.push_back(b::setcond(Cond::Eq, tcg::TempZf, value, zero));
    block.instrs.push_back(b::setcond(Cond::Lt, tcg::TempSf, value, zero));
}

void
emitJcc(Block &block, Cond cond, std::uint64_t taken,
        std::uint64_t fallthrough)
{
    const TempId zero = block.newTemp();
    block.instrs.push_back(b::movi(zero, 0));
    TempId scrutinee = NoTemp;
    Cond host_cond = Cond::Eq;
    switch (cond) {
      case Cond::Eq:
        scrutinee = tcg::TempZf;
        host_cond = Cond::Ne;
        break;
      case Cond::Ne:
        scrutinee = tcg::TempZf;
        host_cond = Cond::Eq;
        break;
      case Cond::Lt:
        scrutinee = tcg::TempSf;
        host_cond = Cond::Ne;
        break;
      case Cond::Ge:
        scrutinee = tcg::TempSf;
        host_cond = Cond::Eq;
        break;
      case Cond::Le:
      case Cond::Gt: {
        const TempId both = block.newTemp();
        block.instrs.push_back(
            b::binop(tcg::Op::Or, both, tcg::TempZf, tcg::TempSf));
        scrutinee = both;
        host_cond = cond == Cond::Le ? Cond::Ne : Cond::Eq;
        break;
      }
    }
    const std::int32_t label = block.newLabel();
    block.instrs.push_back(b::brcond(host_cond, scrutinee, zero, label));
    block.instrs.push_back(b::gotoTb(fallthrough));
    block.instrs.push_back(b::setLabel(label));
    block.instrs.push_back(b::gotoTb(taken));
}

void
emitTemplateIr(Block &block, const Instruction &in, TemplateKind kind,
               Addr next, bool &ends, const DbtConfig &config)
{
    auto &code = block.instrs;
    const auto scheme = config.frontend;
    const bool weak = kind == weakened;

    auto loadWithFences = [&](const Instr &ld_instr) {
        if (scheme == X86ToTcgScheme::Qemu && !weak)
            code.push_back(b::mb(FenceKind::Fmr));
        code.push_back(ld_instr);
        if (scheme == X86ToTcgScheme::Risotto && !weak)
            code.push_back(b::mb(FenceKind::Frm));
    };
    auto storeWithFences = [&](const Instr &st_instr) {
        if (!weak) {
            if (scheme == X86ToTcgScheme::Qemu)
                code.push_back(b::mb(FenceKind::Fmw));
            if (scheme == X86ToTcgScheme::Risotto)
                code.push_back(b::mb(FenceKind::Fww));
        }
        code.push_back(st_instr);
    };
    auto g = [](gx86::Reg r) { return static_cast<TempId>(r); };
    auto branchTarget = [&](std::int32_t off) {
        return next + static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(off));
    };

    switch (in.op) {
      case Opcode::Nop:
        break;
      case Opcode::Hlt:
        code.push_back(b::exitTb(HaltPc));
        ends = true;
        break;
      case Opcode::MovRI:
        code.push_back(b::movi(g(in.rd), in.imm));
        break;
      case Opcode::MovRR:
        code.push_back(b::mov(g(in.rd), g(in.rs)));
        break;
      case Opcode::Load:
        loadWithFences(b::ld(g(in.rd), g(in.rb), in.off));
        break;
      case Opcode::Load8:
        loadWithFences(b::ld8(g(in.rd), g(in.rb), in.off));
        break;
      case Opcode::Store:
        storeWithFences(b::st(g(in.rs), g(in.rb), in.off));
        break;
      case Opcode::Store8:
        storeWithFences(b::st8(g(in.rs), g(in.rb), in.off));
        break;
      case Opcode::StoreI: {
        const TempId val = block.newTemp();
        code.push_back(b::movi(val, in.imm));
        storeWithFences(b::st(val, g(in.rb), in.off));
        break;
      }
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Mul:
      case Opcode::Udiv: {
        tcg::Op op = tcg::Op::Add;
        switch (in.op) {
          case Opcode::Add: op = tcg::Op::Add; break;
          case Opcode::Sub: op = tcg::Op::Sub; break;
          case Opcode::And: op = tcg::Op::And; break;
          case Opcode::Or: op = tcg::Op::Or; break;
          case Opcode::Xor: op = tcg::Op::Xor; break;
          case Opcode::Mul: op = tcg::Op::Mul; break;
          case Opcode::Udiv: op = tcg::Op::Udiv; break;
          default: break;
        }
        code.push_back(b::binop(op, g(in.rd), g(in.rd), g(in.rs)));
        emitFlagsFrom(block, g(in.rd));
        break;
      }
      case Opcode::AddI:
      case Opcode::SubI:
      case Opcode::AndI:
      case Opcode::OrI:
      case Opcode::XorI:
      case Opcode::MulI: {
        const TempId rhs = block.newTemp();
        code.push_back(b::movi(rhs, in.imm));
        tcg::Op op = tcg::Op::Add;
        switch (in.op) {
          case Opcode::AddI: op = tcg::Op::Add; break;
          case Opcode::SubI: op = tcg::Op::Sub; break;
          case Opcode::AndI: op = tcg::Op::And; break;
          case Opcode::OrI: op = tcg::Op::Or; break;
          case Opcode::XorI: op = tcg::Op::Xor; break;
          case Opcode::MulI: op = tcg::Op::Mul; break;
          default: break;
        }
        code.push_back(b::binop(op, g(in.rd), g(in.rd), rhs));
        emitFlagsFrom(block, g(in.rd));
        break;
      }
      case Opcode::ShlI:
      case Opcode::ShrI:
        code.push_back(b::shifti(in.op == Opcode::ShlI ? tcg::Op::Shl
                                                       : tcg::Op::Shr,
                                 g(in.rd), g(in.rd), in.imm));
        emitFlagsFrom(block, g(in.rd));
        break;
      case Opcode::CmpRR: {
        const TempId diff = block.newTemp();
        code.push_back(b::binop(tcg::Op::Sub, diff, g(in.rd), g(in.rs)));
        emitFlagsFrom(block, diff);
        break;
      }
      case Opcode::CmpRI: {
        const TempId rhs = block.newTemp();
        const TempId diff = block.newTemp();
        code.push_back(b::movi(rhs, in.imm));
        code.push_back(b::binop(tcg::Op::Sub, diff, g(in.rd), rhs));
        emitFlagsFrom(block, diff);
        break;
      }
      case Opcode::Jmp:
        code.push_back(b::gotoTb(branchTarget(in.off)));
        ends = true;
        break;
      case Opcode::Jcc:
        emitJcc(block, in.cond, branchTarget(in.off), next);
        ends = true;
        break;
      case Opcode::Call: {
        const TempId ra = block.newTemp();
        code.push_back(b::addi(g(gx86::Rsp), g(gx86::Rsp), -8));
        code.push_back(b::movi(ra, static_cast<std::int64_t>(next)));
        storeWithFences(b::st(ra, g(gx86::Rsp), 0));
        code.push_back(b::gotoTb(branchTarget(in.off)));
        ends = true;
        break;
      }
      case Opcode::Ret: {
        const TempId ra = block.newTemp();
        loadWithFences(b::ld(ra, g(gx86::Rsp), 0));
        code.push_back(b::addi(g(gx86::Rsp), g(gx86::Rsp), 8));
        code.push_back(b::exitTbDynamic(ra));
        ends = true;
        break;
      }
      case Opcode::LockCmpxchg: {
        const TempId expected = block.newTemp();
        const TempId old = block.newTemp();
        code.push_back(b::mov(expected, g(0)));
        code.push_back(
            b::cas(old, g(in.rb), in.off, expected, g(in.rs)));
        code.push_back(b::mov(g(0), old));
        code.push_back(b::setcond(Cond::Eq, tcg::TempZf, old, expected));
        break;
      }
      case Opcode::LockXadd: {
        const TempId old = block.newTemp();
        code.push_back(b::xadd(old, g(in.rb), in.off, g(in.rs)));
        code.push_back(b::mov(g(in.rs), old));
        break;
      }
      case Opcode::MFence:
        if (!weak)
            code.push_back(b::mb(FenceKind::Fsc));
        break;
      default:
        break; // Unreachable: templateKindFor gates the switch.
    }
}

// --- Decline scans --------------------------------------------------------
//
// Each scan answers "would this tcg pass rewrite the block?" with the
// pass's exact trigger conditions (tcg/optimizer.cc is the source of
// truth) but without the map/set machinery: along a not-yet-declined
// path, constants only ever originate from MovI, so dense per-temp
// arrays suffice. Any triggering block is declined to tier 1, which
// runs the real pass.

bool
isMemoryOp(const Instr &i)
{
    return tcg::opLoads(i.op) || tcg::opStores(i.op) ||
           i.op == Op::CallHelper;
}

bool
constantFoldWouldRewrite(const Block &block)
{
    std::vector<char> known(static_cast<std::size_t>(block.numTemps), 0);
    std::vector<std::int64_t> value(
        static_cast<std::size_t>(block.numTemps), 0);
    auto isKnown = [&](TempId t) { return known[static_cast<std::size_t>(t)] != 0; };
    auto forget = [&](TempId t) {
        if (t != NoTemp)
            known[static_cast<std::size_t>(t)] = 0;
    };
    auto isZero = [&](TempId t) {
        return isKnown(t) && value[static_cast<std::size_t>(t)] == 0;
    };
    for (const Instr &instr : block.instrs) {
        switch (instr.op) {
          case Op::SetLabel:
            std::fill(known.begin(), known.end(), 0);
            continue;
          case Op::MovI:
            known[static_cast<std::size_t>(instr.a)] = 1;
            value[static_cast<std::size_t>(instr.a)] = instr.imm;
            continue;
          case Op::Mov:
            if (isKnown(instr.b))
                return true;
            forget(instr.a);
            continue;
          case Op::Add:
          case Op::Sub:
          case Op::And:
          case Op::Or:
          case Op::Xor:
          case Op::Mul:
            if (isKnown(instr.b) && isKnown(instr.c))
                return true;
            if ((instr.op == Op::Mul || instr.op == Op::And) &&
                (isZero(instr.b) || isZero(instr.c)))
                return true;
            if ((instr.op == Op::Sub || instr.op == Op::Xor) &&
                instr.b == instr.c)
                return true;
            forget(instr.a);
            continue;
          case Op::AddI:
          case Op::Shl:
          case Op::Shr:
            if (isKnown(instr.b))
                return true;
            forget(instr.a);
            continue;
          case Op::SetCond:
            if (isKnown(instr.b) && isKnown(instr.c))
                return true;
            forget(instr.a);
            continue;
          case Op::BrCond:
            if (isKnown(instr.b) && isKnown(instr.c))
                return true;
            continue;
          case Op::CallHelper:
            for (TempId t = 0; t < tcg::FirstLocalTemp; ++t)
                known[static_cast<std::size_t>(t)] = 0;
            forget(tcg::instrWrites(instr));
            continue;
          default:
            forget(tcg::instrWrites(instr));
            continue;
        }
    }
    return false;
}

bool
memoryElimWouldChange(const Block &block)
{
    // The real pass is inert outside the Risotto fence vocabulary.
    for (const Instr &i : block.instrs) {
        if (i.op != Op::Mb)
            continue;
        switch (i.fence) {
          case FenceKind::Frm:
          case FenceKind::Fww:
          case FenceKind::Fsc:
          case FenceKind::Facq:
          case FenceKind::Frel:
            break;
          default:
            return false;
        }
    }
    const auto &code = block.instrs;
    for (std::size_t i = 0; i < code.size(); ++i) {
        const Instr &first = code[i];
        if (first.op != Op::Ld && first.op != Op::St)
            continue;
        bool sawFrm = false;
        bool sawFsc = false;
        bool blocked = false;
        std::size_t j = i + 1;
        for (; j < code.size(); ++j) {
            const Instr &mid = code[j];
            if (mid.op == Op::Mb) {
                // Facq/Frel are skipped by the real pass; Fww is legal
                // in every elimination's fence set, so only Frm and Fsc
                // can veto one.
                if (mid.fence == FenceKind::Frm)
                    sawFrm = true;
                else if (mid.fence == FenceKind::Fsc)
                    sawFsc = true;
                continue;
            }
            if (isMemoryOp(mid) || mid.op == Op::ExitTb ||
                mid.op == Op::GotoTb || mid.op == Op::SetLabel ||
                mid.op == Op::Br || mid.op == Op::BrCond)
                break;
            const TempId w = tcg::instrWrites(mid);
            if (w != NoTemp && (w == first.b || w == first.a)) {
                blocked = true;
                break;
            }
        }
        if (blocked || j >= code.size())
            continue;
        const Instr &second = code[j];
        if ((second.op != Op::Ld && second.op != Op::St) ||
            second.b != first.b || second.imm != first.imm)
            continue;
        if (first.op == Op::Ld && second.op == Op::Ld && !sawFsc)
            return true; // (F-)RAR
        if (first.op == Op::St && second.op == Op::Ld && !sawFrm)
            return true; // (F-)RAW
        if (first.op == Op::St && second.op == Op::St && !sawFsc)
            return true; // (F-)WAW
    }
    return false;
}

bool
fenceMergeWouldMerge(const Block &block)
{
    bool pending = false;
    for (const Instr &instr : block.instrs) {
        if (instr.op == Op::Mb) {
            if (pending)
                return true;
            pending = true;
            continue;
        }
        if (isMemoryOp(instr) || instr.op == Op::SetLabel ||
            instr.op == Op::Br || instr.op == Op::BrCond ||
            instr.op == Op::ExitTb || instr.op == Op::GotoTb)
            pending = false;
    }
    return false;
}

} // namespace

std::optional<TemplatePlan>
planTemplateInstructions(Addr pc, const std::vector<Instruction> &instrs,
                         const DbtConfig &config,
                         const TemplateConfig &templates)
{
    if (instrs.empty() || instrs.size() > Frontend::MaxBlockInstructions)
        return std::nullopt;
    std::vector<TemplateKind> kinds;
    kinds.reserve(instrs.size());
    for (const Instruction &in : instrs) {
        const auto kind = templateKindFor(in, config);
        if (!kind || !templates.enabled(*kind))
            return std::nullopt;
        kinds.push_back(*kind);
    }

    TemplatePlan plan;
    plan.pc = pc;
    plan.block.guestPc = pc;
    bool ends = false;
    Addr cur = pc;
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        const Addr next = cur + instrs[i].length;
        emitTemplateIr(plan.block, instrs[i], kinds[i], next, ends,
                       config);
        cur = next;
        // A terminator mid-sequence never comes out of the frontend's
        // block former; decline rather than plan unreachable tails.
        if (ends && i + 1 < instrs.size())
            return std::nullopt;
    }
    if (!ends)
        plan.block.instrs.push_back(b::gotoTb(cur));
    plan.guestInstructions = static_cast<std::uint32_t>(instrs.size());
    plan.irOpsPreOpt = static_cast<std::uint32_t>(plan.block.instrs.size());

    const auto &opt = config.optimizer;
    if (opt.constantFolding && constantFoldWouldRewrite(plan.block))
        return std::nullopt;
    if (opt.memoryElimination && memoryElimWouldChange(plan.block))
        return std::nullopt;
    if (opt.fenceMerging && fenceMergeWouldMerge(plan.block))
        return std::nullopt;
    // Dead code fires on almost every block (flag tails), so it is run
    // for real -- the pass itself, not a mirror.
    if (opt.deadCodeElimination)
        plan.deadOpsRemoved =
            static_cast<std::uint32_t>(tcg::passDeadCode(plan.block));
    return plan;
}

std::optional<TemplatePlan>
planTemplateBlock(Addr pc, const gx86::DecodedSegment &segment,
                  const DbtConfig &config, const TemplateConfig &templates)
{
    std::vector<Instruction> instrs;
    Addr cur = pc;
    while (true) {
        const gx86::DecodedEntry *e = segment.entry(cur);
        if (e == nullptr || !e->valid())
            return std::nullopt; // Outside text / undecodable: tier 1
                                 // surfaces the exact fault.
        // Always the unfused first member (the frontend's walk).
        const Instruction &in = e->first;
        const auto kind = templateKindFor(in, config);
        if (!kind || !templates.enabled(*kind))
            return std::nullopt;
        instrs.push_back(in);
        cur += in.length;
        if (gx86::opEndsBlock(in.op) ||
            instrs.size() >= Frontend::MaxBlockInstructions)
            break;
    }
    return planTemplateInstructions(pc, instrs, config, templates);
}

namespace
{

/** Probe compilation needs exit slots but never runs the code; every
 * exit gets slot 0. */
class DummySlotAllocator : public ExitSlotAllocator
{
  public:
    std::uint32_t staticSlot(std::uint64_t, std::uint64_t,
                             aarch::CodeAddr, bool) override
    {
        return 0;
    }

    std::uint32_t dynamicSlot() override { return 0; }
};

Instruction
canonicalInstruction(TemplateKind kind)
{
    Instruction in;
    in.length = 4;
    switch (kind) {
      case TemplateKind::Nop:
        in.op = Opcode::Nop;
        break;
      case TemplateKind::Halt:
        in.op = Opcode::Hlt;
        break;
      case TemplateKind::MovImm:
        in.op = Opcode::MovRI;
        in.rd = 1;
        in.imm = 42;
        break;
      case TemplateKind::MovReg:
        in.op = Opcode::MovRR;
        in.rd = 1;
        in.rs = 2;
        break;
      case TemplateKind::Load:
        in.op = Opcode::Load;
        in.rd = 1;
        in.rb = 2;
        in.off = 0;
        break;
      case TemplateKind::Store:
        in.op = Opcode::Store;
        in.rs = 1;
        in.rb = 2;
        in.off = 0;
        break;
      case TemplateKind::StoreImm:
        in.op = Opcode::StoreI;
        in.rb = 2;
        in.off = 0;
        in.imm = 7;
        break;
      case TemplateKind::Alu:
        in.op = Opcode::Add;
        in.rd = 1;
        in.rs = 2;
        break;
      case TemplateKind::AluImm:
        in.op = Opcode::AddI;
        in.rd = 1;
        in.imm = 5;
        break;
      case TemplateKind::Shift:
        in.op = Opcode::ShlI;
        in.rd = 1;
        in.imm = 3;
        break;
      case TemplateKind::CmpReg:
        in.op = Opcode::CmpRR;
        in.rd = 1;
        in.rs = 2;
        break;
      case TemplateKind::CmpImm:
        in.op = Opcode::CmpRI;
        in.rd = 1;
        in.imm = 5;
        break;
      case TemplateKind::Jump:
        in.op = Opcode::Jmp;
        in.off = 16;
        break;
      case TemplateKind::CondBranch:
        in.op = Opcode::Jcc;
        in.cond = Cond::Eq;
        in.off = 16;
        break;
      case TemplateKind::Call:
        in.op = Opcode::Call;
        in.off = 32;
        break;
      case TemplateKind::Ret:
        in.op = Opcode::Ret;
        break;
      case TemplateKind::Fence:
        in.op = Opcode::MFence;
        break;
      case TemplateKind::Cas:
        in.op = Opcode::LockCmpxchg;
        in.rb = 2;
        in.rs = 1;
        in.off = 0;
        break;
      case TemplateKind::Xadd:
        in.op = Opcode::LockXadd;
        in.rb = 2;
        in.rs = 1;
        in.off = 0;
        break;
      case TemplateKind::Count_:
        break;
    }
    return in;
}

} // namespace

std::vector<verify::TemplateProbe>
buildTemplateProbes(const DbtConfig &config, const TemplateConfig &templates)
{
    std::vector<verify::TemplateProbe> probes;
    aarch::CodeBuffer scratch;
    Backend backend(scratch, config);
    DummySlotAllocator slots;

    // Fence-relevant context accesses, on bases/offsets disjoint from
    // every canonical instruction so the pair scans (memory
    // elimination) never decline a probe for aliasing reasons.
    Instruction ctx_load;
    ctx_load.op = Opcode::Load;
    ctx_load.rd = 3;
    ctx_load.rb = 4;
    ctx_load.off = 8;
    ctx_load.length = 4;
    Instruction ctx_store;
    ctx_store.op = Opcode::Store;
    ctx_store.rs = 5;
    ctx_store.rb = 6;
    ctx_store.off = 16;
    ctx_store.length = 4;

    auto addProbe = [&](TemplateKind kind, const std::string &name,
                        std::vector<Instruction> guest) {
        auto plan =
            planTemplateInstructions(0x1000, guest, config, templates);
        if (!plan)
            return; // The planner declines it at runtime too.
        const aarch::CodeAddr start = backend.compile(plan->block, slots);
        verify::TemplateProbe probe;
        probe.name = name;
        probe.kind = static_cast<int>(kind);
        probe.kindName = templateKindName(kind);
        probe.guest = std::move(guest);
        probe.ir = std::move(plan->block);
        probe.host =
            verify::decodeHostRange(config.host, scratch, start,
                                    scratch.end());
        probes.push_back(std::move(probe));
    };

    for (std::size_t k = 0; k < TemplateKindCount; ++k) {
        const auto kind = static_cast<TemplateKind>(k);
        if (!templates.enabled(kind))
            continue;
        const Instruction canon = canonicalInstruction(kind);
        const std::string name = templateKindName(kind);
        addProbe(kind, name, {canon});
        addProbe(kind, name + "/after-load", {ctx_load, canon});
        addProbe(kind, name + "/after-store", {ctx_store, canon});
        if (!gx86::opEndsBlock(canon.op)) {
            addProbe(kind, name + "/before-load", {canon, ctx_load});
            addProbe(kind, name + "/before-store", {canon, ctx_store});
            addProbe(kind, name + "/bracketed",
                     {ctx_store, canon, ctx_load});
        }
    }
    return probes;
}

std::size_t
applyTemplateReports(
    const std::vector<verify::TemplatePatternReport> &reports,
    TemplateConfig &templates)
{
    std::size_t disabled = 0;
    for (const auto &report : reports) {
        if (report.ok())
            continue;
        if (report.kind < 0 ||
            report.kind >= static_cast<int>(TemplateKindCount))
            continue;
        templates.disable(static_cast<TemplateKind>(report.kind));
        ++disabled;
    }
    return disabled;
}

} // namespace risotto::dbt
