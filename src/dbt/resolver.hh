/**
 * @file
 * Interface between the DBT frontend and the dynamic host linker.
 *
 * Keeps the DBT decoupled from the linker implementation: the frontend
 * only needs to know whether a dynamic symbol resolves to a host function
 * and under which index the HostCall helper should invoke it.
 */

#ifndef RISOTTO_DBT_RESOLVER_HH
#define RISOTTO_DBT_RESOLVER_HH

#include <cstdint>
#include <optional>
#include <string>

namespace risotto::dbt
{

/** Resolves imported guest symbols to host library function indices. */
class ImportResolver
{
  public:
    virtual ~ImportResolver() = default;

    /**
     * Host function index for import @p name, or nullopt when the symbol
     * must fall back to the translated guest implementation.
     */
    virtual std::optional<std::uint16_t>
    resolve(const std::string &name) const = 0;
};

} // namespace risotto::dbt

#endif // RISOTTO_DBT_RESOLVER_HH
