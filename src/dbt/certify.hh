/**
 * @file
 * Certificate production: turning a whole-image analysis into claims a
 * consumer can trust.
 *
 * certifyImage() runs every analyzed block through the real tier-1
 * pipeline (frontend -> optimizer -> backend, with the exact elision
 * behaviour the given config implies) and the obligation-graph
 * validator; only blocks whose translation passes at both levels
 * receive ClaimValidated. The certificate is therefore not "the
 * analyzer says so" but "the oracle checked this translation under
 * this fingerprint" -- the analysis contributes the block set, the
 * lattice classes and the locality premise the validator discharges
 * elided fences under.
 *
 * auditCertificate() is the paranoid inverse: given any certificate,
 * re-run the validator on every ClaimValidated entry and report
 * disagreements. A sound certificate audits to zero disagreements by
 * construction; a forged or stale one is caught here (and, at use
 * time, by --analysis-paranoid).
 */

#ifndef RISOTTO_DBT_CERTIFY_HH
#define RISOTTO_DBT_CERTIFY_HH

#include <cstdint>

#include "analysis/analyzer.hh"
#include "analysis/certificate.hh"
#include "dbt/config.hh"
#include "gx86/decoded.hh"
#include "gx86/image.hh"

namespace risotto::dbt
{

/** Outcome of a certifyImage / auditCertificate pass. */
struct CertifyReport
{
    /** Blocks with a certificate entry (all analyzed blocks). */
    std::uint64_t blocksCertified = 0;

    /** Entries granted (certify) or holding (audit) ClaimValidated. */
    std::uint64_t blocksValidated = 0;

    /** Blocks whose translation the validator rejected (certify: no
     * claim granted; audit: a disagreement). */
    std::uint64_t blocksFailed = 0;

    /** Blocks the tier-1 pipeline could not translate (no claim; the
     * interpreter surfaces them at run time). */
    std::uint64_t blocksUntranslatable = 0;

    std::uint64_t pairsChecked = 0;
    std::uint64_t pairsDischargedLocal = 0;

    bool ok() const { return blocksFailed == 0; }
};

/**
 * Produce a certificate for @p image under @p config: one entry per
 * analyzed block carrying its lattice class, ClaimValidated where the
 * tier-1 translation passed the validator. @p segment makes the pass
 * decode-free (may be null). Blocks check in parallel over @p jobs
 * worker threads (0 = hardware concurrency).
 */
analysis::Certificate
certifyImage(const gx86::GuestImage &image, const DbtConfig &config,
             const analysis::ImageAnalysis &analysis,
             const gx86::DecodedSegment *segment, CertifyReport &report,
             std::size_t jobs = 0);

/**
 * Re-validate every ClaimValidated entry of @p cert against the real
 * pipeline -- the offline paranoid audit. Entries that fail count as
 * blocksFailed (disagreements). The certificate's keys are NOT checked
 * here (pass only certificates that matched this image + config).
 */
CertifyReport
auditCertificate(const gx86::GuestImage &image, const DbtConfig &config,
                 const analysis::ImageAnalysis &analysis,
                 const gx86::DecodedSegment *segment,
                 const analysis::Certificate &cert, std::size_t jobs = 0);

} // namespace risotto::dbt

#endif // RISOTTO_DBT_CERTIFY_HH
