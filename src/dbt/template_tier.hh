/**
 * @file
 * Tier 0.5: pre-validated template translation for cold blocks.
 *
 * Sits between the interpreter and the baseline tier in effort: a
 * covered block is planned straight off the pre-decoded segment into
 * the exact post-optimization IR (dbt/templates.hh) and compiled with
 * the regular backend -- no frontend dispatch, no block arena, no
 * optimizer passes. Host code, verify.* counters and the shared dbt.*
 * / opt.* counters are identical to tier 1's by construction, which is
 * checked once per engine by the obligation-graph probes
 * (verify/templates.hh). Uncovered blocks decline to tier 1; covered
 * blocks still promote to tier 2 when hot.
 */

#ifndef RISOTTO_DBT_TEMPLATE_TIER_HH
#define RISOTTO_DBT_TEMPLATE_TIER_HH

#include <optional>

#include "aarch/emitter.hh"
#include "dbt/backend.hh"
#include "dbt/chain.hh"
#include "dbt/config.hh"
#include "dbt/templates.hh"
#include "dbt/tier.hh"
#include "gx86/decoded.hh"
#include "support/faultinject.hh"
#include "support/stats.hh"

namespace risotto::dbt
{

/** Tier-0.5 template translation (guarded like the baseline tier: the
 * same fault-injection sites, retry budget and buffer-full recovery,
 * so fault schedules are identical with the tier on or off). */
class TemplateTier : public ExecutionTier
{
  public:
    TemplateTier(Backend &backend, aarch::CodeBuffer &code,
                 ChainManager &chains, FaultInjector &faults,
                 const DbtConfig &config, TierHost &host, StatSet &stats)
        : backend_(backend), code_(code), chains_(chains),
          faults_(faults), config_(config), host_(host), stats_(stats)
    {
    }

    Tier level() const override { return Tier::Template; }

    /** The pre-decoded segment to plan from (required; the tier covers
     * nothing without one). */
    void setSegment(const gx86::DecodedSegment *segment)
    {
        segment_ = segment;
    }

    /** The live template table (probe failures disable kinds here). */
    TemplateConfig &templates() { return templates_; }
    const TemplateConfig &templates() const { return templates_; }

    /**
     * True when the template table covers the block at @p pc. Plans the
     * block as a side effect and keeps the plan for the immediately
     * following translate() call; declining bumps
     * dbt.template_declined.
     */
    bool covers(gx86::Addr pc);

    /**
     * Plan @p pc ahead of need (engine construction pre-plans the
     * image entry: planning is pure -- no fault draws, no counters, no
     * code emission -- so doing it early takes it out of the first
     * dispatch's time-to-first-dispatch window). A declined pc is
     * simply not cached; the runtime covers() call re-plans and does
     * the dbt.template_declined accounting.
     */
    void preplan(gx86::Addr pc);

    std::optional<aarch::CodeAddr>
    translate(gx86::Addr pc, const TranslationEnv &env) override;

  private:
    Backend &backend_;
    aarch::CodeBuffer &code_;
    ChainManager &chains_;
    FaultInjector &faults_;
    const DbtConfig &config_;
    TierHost &host_;
    StatSet &stats_;
    const gx86::DecodedSegment *segment_ = nullptr;
    TemplateConfig templates_;
    std::optional<TemplatePlan> pending_;
};

} // namespace risotto::dbt

#endif // RISOTTO_DBT_TEMPLATE_TIER_HH
