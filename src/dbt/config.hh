/**
 * @file
 * DBT configuration: which paper variant to run.
 *
 * The four evaluation setups of Section 7.1 are presets:
 *  - qemu():        vanilla QEMU 6.1.0 mappings (Figure 2) + helper CAS.
 *  - qemuNoFences():the incorrect fence-free oracle.
 *  - tcgVer():      QEMU with the verified mappings (Figure 7) only.
 *  - risotto():     verified mappings + dynamic host linker + inline CAS.
 */

#ifndef RISOTTO_DBT_CONFIG_HH
#define RISOTTO_DBT_CONFIG_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "mapping/schemes.hh"
#include "support/faultinject.hh"
#include "support/hostisa.hh"
#include "tcg/optimizer.hh"

namespace risotto::dbt
{

/** Full configuration of a DBT instance. */
struct DbtConfig
{
    std::string name = "risotto";

    /** Host ISA the backend emits and the machine executes. Changes
     * every emitted word, so a non-default host IS part of the snapshot
     * config fingerprint (aarch fingerprints stay byte-stable). */
    support::HostIsa host = support::HostIsa::Aarch;

    /** x86 -> TCG IR fence scheme (Figure 2 vs Figure 7a). */
    mapping::X86ToTcgScheme frontend = mapping::X86ToTcgScheme::Risotto;

    /** TCG IR -> Arm fence lowering (Figure 2 vs Figure 7b). */
    mapping::TcgToArmScheme backend = mapping::TcgToArmScheme::Risotto;

    /** CAS translation: helper call (QEMU) vs direct casal (Section 6.3).*/
    mapping::RmwLowering rmw = mapping::RmwLowering::InlineCasal;

    /** IR optimizer toggles (fence merging etc.). */
    tcg::OptimizerConfig optimizer;

    /** Use the dynamic host library linker (Section 6.2). */
    bool hostLinker = true;

    /** Patch goto_tb exits into direct branches after first resolution. */
    bool chaining = true;

    /** Deterministic fault-injection plan (disarmed by default). The
     * plan also arms the machine's sites unless the MachineConfig
     * carries its own. */
    FaultPlan faults;

    /** Attempts per guarded translation before the block degrades to
     * the interpreter fallback. */
    unsigned translateRetries = 3;

    /** Host code buffer capacity in words (0 = unbounded). Exhaustion
     * triggers a translation-cache flush when safe, interpreter
     * fallback otherwise. */
    std::size_t codeBufferCapacity = 0;

    /** Enable tier-2 superblock translation. */
    bool tier2 = true;

    /** Execution count at which a block becomes a superblock head
     * candidate (0 also disables tier 2). */
    std::uint64_t tier2Threshold = 16;

    /** Maximum region members per superblock. */
    std::size_t tier2MaxBlocks = 8;

    /** Build the per-image DecodedSegment (whole-text pre-decode) and
     * dispatch the interpreter surfaces and TB formation from it.
     * Execution-strategy only: emitted code and all verify. / opt.
     * counters are identical with it off, so it is deliberately NOT part
     * of the persistent-snapshot config fingerprint. */
    bool decodeCache = true;

    /** Fuse adjacent guest instruction pairs (cmp+jcc, mov-imm+arith,
     * inc/dec chains, store+load) in the decoded segment's interpreter
     * dispatch. Requires decodeCache; never crosses a LOCK-prefixed op,
     * MFENCE or TB boundary, and each pattern's ordering obligations are
     * checked once against the obligation-graph validator. Also outside
     * the snapshot fingerprint (interpreter-only; IR is untouched). */
    bool fusion = true;

    /** Tier-0.5 IR-bypass template translation: cold blocks made
     * entirely of whitelisted instruction shapes are planned straight
     * off the pre-decoded segment into the exact post-optimization IR
     * and handed to the backend, skipping the frontend/arena and all
     * optimizer passes. Each template pattern's obligation graph is
     * checked once per engine (failing patterns are disabled
     * wholesale); covered blocks still promote to tier 2 when hot.
     * Requires decodeCache; self-disables (with a counter) without it,
     * under per-TB validation, or under analysis-driven fence elision.
     * Execution-strategy only -- the planned IR and host words are
     * identical to tier-1's by construction, so like decodeCache it is
     * deliberately NOT part of the snapshot config fingerprint. */
    bool templateTier = false;

    /** Statically validate every translation against the axiomatic
     * models (obligation ⊆ guarantee, see src/verify). Violating
     * baseline blocks are reported through verify.* counters and the
     * engine's violation list; a violating superblock additionally has
     * its promotion rejected, keeping the tier-1 code live. */
    bool validateTranslations = false;

    /** Run the whole-image static weak-memory analyzer at construction
     * (src/analysis): CFG + per-block memory summaries classifying each
     * reachable block Local / Ordered / HotOrdering. Cheap (one linear
     * pass over the decoded text) and prerequisite for the two
     * refinements below. */
    bool analysis = false;

    /** Elide the mapped acquire/release fences inside blocks the
     * analyzer proved Local (no shared-memory ordering obligations).
     * Changes emitted IR and host code, so it IS part of the snapshot
     * config fingerprint -- but only when enabled, keeping analysis-off
     * fingerprints identical to pre-analysis releases. Every elision is
     * auditable: the validator discharges the affected obligation pairs
     * by thread-locality (verify::localGuestEvents). */
    bool analysisElide = false;

    /** Honour ClaimValidated certificate entries: skip per-TB
     * validation for blocks a matching certificate already vouches for.
     * Only meaningful with validateTranslations; certificates come from
     * risotto-analyze --cert or an embedded .rtbc frame. */
    bool analysisSkip = false;

    /** Paranoid differential mode: re-run the full validator on every
     * certificate-driven skip and every locality-elided block anyway,
     * counting analysis.paranoid_disagreements. Tools exit nonzero on
     * any disagreement. */
    bool analysisParanoid = false;

    static DbtConfig qemu();
    static DbtConfig qemuNoFences();
    static DbtConfig tcgVer();
    static DbtConfig risotto();
};

} // namespace risotto::dbt

#endif // RISOTTO_DBT_CONFIG_HH
