/**
 * @file
 * Persistent translation cache: engine <-> snapshot conversion.
 *
 * Export walks the live translation cache and produces relocatable
 * records: host words are copied verbatim except exit words, which are
 * neutralized and described by ExitSite entries (chained B words revert
 * to un-chained exits), and the IR is re-derived deterministically from
 * the guest image (baseline: frontend + optimizer; superblock: the
 * stored promotion path through buildSuperblockIr). Import replays the
 * records into a fresh engine: words are appended to the code buffer,
 * exit words are re-bound to freshly allocated chain slots, and every
 * record must decode -- and, by default, pass the obligation-graph
 * validator -- before it becomes dispatchable. A record that fails any
 * check is rolled back and counted; the block simply translates cold.
 */

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "dbt/dbt.hh"
#include "persist/fingerprint.hh"
#include "rv64/isa.hh"
#include "support/checksum.hh"
#include "support/error.hh"
#include "tcg/optimizer.hh"

namespace risotto::dbt
{

using aarch::CodeAddr;

const support::Sha256Digest &
Dbt::cachedImageDigest() const
{
    if (!imageDigest_)
        imageDigest_ = persist::imageDigest(image_);
    return *imageDigest_;
}

persist::Snapshot
Dbt::exportSnapshot()
{
    persist::Snapshot snap;
    snap.imageDigest = cachedImageDigest();
    snap.configFingerprint = persist::configFingerprint(config_);
    for (const auto &[name, value] : stats_.all())
        if (name.rfind("opt.", 0) == 0 ||
            name.rfind("verify.", 0) == 0 ||
            name.rfind("analysis.", 0) == 0)
            snap.provenance.emplace_back(name, value);

    // An installed certificate travels with the snapshot (opaque,
    // self-checksummed); the importing engine re-checks its keys.
    if (certificate_)
        snap.analysisCert = analysis::serializeCertificate(*certificate_);

    // Exit words are identified by address: every non-dynamic slot
    // records the patch site of its exit_tb word (which chaining may
    // have rewritten into a direct B -- exported un-chained either way).
    std::unordered_map<CodeAddr, std::uint32_t> patchSlots;
    for (std::uint32_t i = 0; i < chains_.slotCount(); ++i) {
        const ExitSlot &slot = chains_.slot(i);
        if (!slot.dynamic)
            patchSlots.emplace(slot.patchSite, i);
    }

    // Deterministic record order: snapshots of the same run byte-match.
    std::vector<gx86::Addr> pcs;
    pcs.reserve(cache_.all().size());
    for (const auto &[pc, tb] : cache_.all())
        pcs.push_back(pc);
    std::sort(pcs.begin(), pcs.end());

    for (const gx86::Addr pc : pcs) {
        const TbInfo &tb = *cache_.find(pc);
        if (tb.tier == Tier::Interpreter)
            continue;
        persist::TbRecord rec;
        rec.path = tb.path.empty() ? std::vector<gx86::Addr>{pc} : tb.path;
        rec.tier = static_cast<std::uint8_t>(tb.tier);
        rec.execCount = tb.execCount;
        rec.successors = tb.successors;

        // Re-derive the post-optimization IR the live words came from;
        // the loader's validator needs it to discharge obligations whose
        // accesses the optimizer eliminated.
        try {
            if (tb.tier == Tier::Superblock) {
                tcg::Block sb = frontend_.acquireBlock(pc);
                if (!buildSuperblockIr(frontend_, config_, rec.path, sb)) {
                    frontend_.recycle(std::move(sb));
                    stats_.bump("persist.tb_export_skipped");
                    continue;
                }
                // Must match the promotion-time optimizer config --
                // including the HotOrdering-conservative downgrade --
                // or the exported IR would not describe the live words.
                tcg::optimizeSuperblock(
                    sb,
                    superblockOptimizer(config_, analysis_.get(),
                                        rec.path),
                    nullptr);
                rec.numLabels = sb.numLabels;
                rec.numTemps = sb.numTemps;
                rec.ir = sb.instrs;
                frontend_.recycle(std::move(sb));
            } else {
                tcg::Block block = frontend_.translate(pc);
                tcg::optimize(block, config_.optimizer, nullptr);
                rec.numLabels = block.numLabels;
                rec.numTemps = block.numTemps;
                rec.ir = block.instrs;
                frontend_.recycle(std::move(block));
            }
        } catch (const GuestFault &) {
            stats_.bump("persist.tb_export_skipped");
            continue;
        }

        rec.hostWords.reserve(tb.hostWords);
        for (std::uint32_t i = 0; i < tb.hostWords; ++i) {
            const CodeAddr addr = tb.entry + i;
            const std::uint32_t word = code_.fetch(addr);
            const auto it = patchSlots.find(addr);
            if (it != patchSlots.end()) {
                const ExitSlot &slot = chains_.slot(it->second);
                rec.exits.push_back(
                    {i, false, slot.chainable, slot.guestPc});
                rec.hostWords.push_back(backend_.exitTbWord(0));
                continue;
            }
            if (backend_.isExitTbWord(word)) {
                // Not a recorded patch site: the shared dynamic exit.
                rec.exits.push_back({i, true, false, 0});
                rec.hostWords.push_back(backend_.exitTbWord(0));
                continue;
            }
            rec.hostWords.push_back(word);
        }
        snap.records.push_back(std::move(rec));
        stats_.bump("persist.tb_saved");
    }
    return snap;
}

PersistReport
Dbt::importSnapshot(const persist::Snapshot &snapshot, bool validate)
{
    PersistReport report;
    stats_.bump("persist.loads");
    if (snapshot.imageDigest != cachedImageDigest()) {
        stats_.bump("persist.load_image_mismatch");
        report.note = "snapshot is for a different guest image";
        return report;
    }
    if (snapshot.configFingerprint != persist::configFingerprint(config_)) {
        stats_.bump("persist.load_config_mismatch");
        report.note = "snapshot is for a different DBT configuration";
        return report;
    }
    report.applied = true;

    // Loaded code must pass the same obligation-graph check fresh
    // translations get, whether or not this engine validates inline.
    std::unique_ptr<verify::TbValidator> local;
    const verify::TbValidator *checker = nullptr;
    if (validate) {
        checker = validator_.get();
        if (checker == nullptr) {
            verify::ValidatorOptions options;
            options.rmw = config_.rmw;
            local = std::make_unique<verify::TbValidator>(options);
            checker = local.get();
        }
    }

    auto reject = [&](const char *why) {
        stats_.bump(std::string("persist.tb_rejected_") + why);
        ++report.rejected;
    };

    for (const persist::TbRecord &rec : snapshot.records) {
        if (faults_.shouldInject(faultsites::PersistRecord)) {
            // Simulated per-record corruption: the drop is the recovery
            // (the block degrades to cold translation).
            reject("fault");
            faults_.recovered(faultsites::PersistRecord);
            continue;
        }
        if (rec.path.empty() || rec.hostWords.empty() ||
            (rec.tier != static_cast<std::uint8_t>(Tier::Baseline) &&
             rec.tier != static_cast<std::uint8_t>(Tier::Superblock) &&
             rec.tier != static_cast<std::uint8_t>(Tier::Template))) {
            reject("bounds");
            continue;
        }
        const gx86::Addr head = rec.path.front();
        if (cache_.find(head) != nullptr) {
            reject("duplicate");
            continue;
        }
        std::unordered_map<std::uint32_t, const persist::ExitSite *> exits;
        bool dupes = false;
        for (const persist::ExitSite &site : rec.exits)
            dupes |= !exits.emplace(site.offset, &site).second;
        if (dupes) {
            reject("bounds");
            continue;
        }

        const CodeAddr base = code_.end();
        const std::size_t slotCheckpoint = chains_.slotCount();
        auto rollback = [&]() {
            code_.truncate(base);
            chains_.truncateSlots(slotCheckpoint);
        };
        try {
            for (std::uint32_t i = 0; i < rec.hostWords.size(); ++i) {
                const auto it = exits.find(i);
                if (it == exits.end()) {
                    code_.append(rec.hostWords[i]);
                    continue;
                }
                const persist::ExitSite &site = *it->second;
                const std::uint32_t slot =
                    site.dynamic
                        ? chains_.dynamicSlot()
                        : chains_.staticSlot(head, site.targetPc, base + i,
                                             site.chainable &&
                                                 config_.chaining);
                code_.append(backend_.exitTbWord(slot));
            }
        } catch (const aarch::CodeBufferFull &) {
            rollback();
            reject("buffer");
            report.note = "code buffer exhausted during import";
            break; // Every remaining record would hit the same wall.
        }

        // Decode sanity even in checksum-only mode: the machine must
        // never fetch a word it cannot decode.
        verify::HostCode host;
        try {
            host = verify::decodeHostRange(config_.host, code_, base,
                                           code_.end());
        } catch (const PanicError &) {
            rollback();
            reject("decode");
            continue;
        }

        if (checker != nullptr) {
            const bool superblock =
                rec.tier == static_cast<std::uint8_t>(Tier::Superblock);
            // Certificate skip covers baseline records only: claims
            // vouch for tier-1 translations, never for cross-seam
            // superblock optimization.
            const bool claim = !superblock && config_.analysisSkip &&
                               certificate_.has_value() &&
                               certificate_->claimsValidated(head);
            if (claim && !config_.analysisParanoid) {
                stats_.bump("analysis.validations_skipped");
            } else {
                std::vector<gx86::Instruction> guest;
                bool decodable = true;
                try {
                    for (const gx86::Addr pc : rec.path) {
                        const auto part = frontend_.decodeBlock(pc);
                        guest.insert(guest.end(), part.begin(),
                                     part.end());
                    }
                } catch (const GuestFault &) {
                    decodable = false;
                }
                if (!decodable) {
                    rollback();
                    reject("decode");
                    continue;
                }
                tcg::Block ir;
                ir.guestPc = head;
                ir.instrs = rec.ir;
                ir.numLabels = rec.numLabels;
                ir.numTemps = rec.numTemps;
                // Records exported under fence elision only pass with
                // the same locality discharge the elision relied on.
                std::vector<bool> mask;
                const std::vector<bool> *local = nullptr;
                if (config_.analysis && config_.analysisElide &&
                    analysis_ != nullptr && analysis_->rspPrivate) {
                    mask = verify::localGuestEvents(guest, true);
                    local = &mask;
                }
                const verify::ValidationReport checked =
                    checker->validate(guest, ir, host, head, superblock,
                                      local);
                stats_.bump("persist.tb_validated");
                if (claim) {
                    stats_.bump("analysis.paranoid_rechecks");
                    if (!checked.ok())
                        stats_.bump("analysis.paranoid_disagreements");
                }
                if (!checked.ok()) {
                    rollback();
                    reject("validation");
                    for (const verify::Violation &v : checked.violations)
                        violations_.push_back(v);
                    continue;
                }
            }
        }

        TbInfo &tb = cache_.insert(head, base,
                                   static_cast<std::uint32_t>(
                                       rec.hostWords.size()),
                                   static_cast<Tier>(rec.tier));
        tb.execCount = rec.execCount;
        tb.successors.assign(rec.successors.begin(), rec.successors.end());
        if (rec.tier == static_cast<std::uint8_t>(Tier::Superblock))
            tb.path = rec.path;
        stats_.bump("persist.tb_loaded");
        ++report.loaded;
    }
    return report;
}

bool
Dbt::savePersistentCache(const std::string &path)
{
    persist::Snapshot snap = exportSnapshot();
    if (snap.records.empty())
        return false;
    support::writeFileBytes(path, persist::serialize(snap));
    stats_.bump("persist.saves");
    return true;
}

PersistReport
Dbt::loadPersistentCache(const std::string &path, bool validate)
{
    PersistReport report;
    if (!support::fileReadable(path)) {
        stats_.bump("persist.load_missing");
        report.note = "no snapshot at " + path + " (cold start)";
        return report;
    }
    persist::ParseReport parsed;
    const persist::Snapshot snap =
        persist::parse(support::readFileBytes(path), parsed);
    stats_.bump("persist.tb_rejected_checksum", parsed.recordsBadChecksum);
    stats_.bump("persist.tb_rejected_bounds", parsed.recordsBadBounds);
    stats_.bump("persist.tb_rejected_truncated", parsed.recordsTruncated);
    if (!parsed.headerOk) {
        if (parsed.version != 0 &&
            parsed.version != persist::FormatVersion)
            stats_.bump("persist.load_version_mismatch");
        else
            stats_.bump("persist.load_corrupt_header");
        report.note = parsed.error + " (cold start)";
        return report;
    }
    if (parsed.certDropped)
        stats_.bump("persist.cert_dropped");
    // An embedded certificate is adopted before the records are
    // replayed so ClaimValidated entries can discharge their per-record
    // validation. A certificate that fails to parse or match is simply
    // ignored: full validation is the fallback, never wrong claims.
    if (!snap.analysisCert.empty() && !certificate_) {
        analysis::Certificate cert;
        if (analysis::parseCertificate(snap.analysisCert, cert)) {
            if (setCertificate(std::move(cert)))
                stats_.bump("analysis.cert_embedded");
        } else {
            stats_.bump("analysis.cert_parse_failed");
        }
    }
    report = importSnapshot(snap, validate);
    report.rejected += parsed.recordsBadChecksum + parsed.recordsBadBounds +
                       parsed.recordsTruncated;
    return report;
}

verify::BatchReport
Dbt::verifyPersistentCache(const persist::Snapshot &snapshot)
{
    std::vector<verify::BatchItem> items;
    verify::BatchReport undecodable;
    for (const persist::TbRecord &rec : snapshot.records) {
        verify::BatchItem item;
        item.guestPc = rec.path.empty() ? 0 : rec.path.front();
        item.superblock =
            rec.tier == static_cast<std::uint8_t>(Tier::Superblock);
        bool ok = !rec.path.empty();
        try {
            for (const gx86::Addr pc : rec.path) {
                const auto part = frontend_.decodeBlock(pc);
                item.guest.insert(item.guest.end(), part.begin(),
                                  part.end());
            }
        } catch (const GuestFault &) {
            ok = false;
        }
        item.host.isa = config_.host;
        try {
            for (const std::uint32_t word : rec.hostWords) {
                if (config_.host == support::HostIsa::Rv64)
                    item.host.riscv.push_back(rv64::decode(word));
                else
                    item.host.arm.push_back(aarch::decode(word));
            }
        } catch (const PanicError &) {
            ok = false;
        }
        if (!ok) {
            // Cannot even assemble the check: that is a failure too.
            ++undecodable.itemsChecked;
            ++undecodable.itemsFailed;
            continue;
        }
        item.ir.guestPc = item.guestPc;
        item.ir.instrs = rec.ir;
        item.ir.numLabels = rec.numLabels;
        item.ir.numTemps = rec.numTemps;
        items.push_back(std::move(item));
    }
    verify::ValidatorOptions options;
    options.rmw = config_.rmw;
    const verify::TbValidator validator(
        validator_ ? validator_->options() : options);
    verify::BatchReport report = verify::validateBatch(validator, items);
    report.itemsChecked += undecodable.itemsChecked;
    report.itemsFailed += undecodable.itemsFailed;
    return report;
}

} // namespace risotto::dbt
