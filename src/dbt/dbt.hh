/**
 * @file
 * The Risotto DBT engine.
 *
 * Ties the pipeline together: guest basic blocks are decoded by the
 * frontend into TCG IR (per the configured x86->IR scheme), optimized
 * (fence merging, folding, eliminations), compiled by the backend into
 * the host code buffer (per the IR->Arm scheme), cached by guest pc, and
 * executed on the weak-memory machine. Translated code re-enters the
 * engine through exit_tb traps; goto_tb exits are chained (patched into
 * direct branches) after first resolution, as in QEMU.
 */

#ifndef RISOTTO_DBT_DBT_HH
#define RISOTTO_DBT_DBT_HH

#include <array>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "aarch/emitter.hh"
#include "dbt/backend.hh"
#include "dbt/config.hh"
#include "dbt/frontend.hh"
#include "dbt/hostcall.hh"
#include "dbt/resolver.hh"
#include "gx86/image.hh"
#include "machine/machine.hh"
#include "support/stats.hh"

namespace risotto::dbt
{

/** One emulated thread's starting register file. */
struct ThreadSpec
{
    std::array<std::uint64_t, gx86::RegCount> regs{};
};

/** Result of an emulation run. */
struct RunResult
{
    /** True when every thread halted within the cycle budget. */
    bool finished = false;

    std::vector<std::int64_t> exitCodes;
    std::vector<std::string> outputs;

    /** Parallel makespan (max per-core cycles) -- the "run time". */
    std::uint64_t makespan = 0;

    /** Sum of all cores' cycles. */
    std::uint64_t totalCycles = 0;

    /** Why the run stopped: "finished", "budget-exhausted", or
     * "livelock" (budget hit while spinning on failed exclusives). */
    std::string diagnosis;

    /** Guest blocks executed through the interpreter fallback. */
    std::uint64_t fallbackBlocks = 0;

    /** Guarded-translation retries after recoverable failures. */
    std::uint64_t translationRetries = 0;

    /** Merged translation + machine + fault-injection counters. */
    StatSet stats;

    /** Final guest memory (for inspection by tests and benches). */
    std::shared_ptr<gx86::Memory> memory;
};

/** The DBT engine (QEMU-user-mode analogue). */
class Dbt : public machine::HelperRuntime, public ExitSlotAllocator
{
  public:
    /**
     * @param image the guest binary.
     * @param config variant configuration (see DbtConfig presets).
     * @param resolver resolves imports to host functions (may be null).
     * @param hostcalls services resolved host calls (may be null).
     */
    Dbt(const gx86::GuestImage &image, DbtConfig config,
        const ImportResolver *resolver = nullptr,
        HostCallHandler *hostcalls = nullptr);

    /**
     * Translate (or fetch from the TB cache) the block at @p pc.
     *
     * Guarded: recoverable translation failures (injected faults,
     * code-buffer exhaustion) are retried up to config().translateRetries
     * times, flushing the translation cache when safe. When translation
     * still fails, the returned address is a one-word trampoline that
     * routes execution through the interpreter fallback, so the caller
     * always gets runnable host code.
     */
    aarch::CodeAddr lookupOrTranslate(gx86::Addr pc);

    /**
     * Emulate @p threads guest threads (all starting at the image entry)
     * on the weak-memory machine.
     */
    RunResult run(const std::vector<ThreadSpec> &threads,
                  machine::MachineConfig machine_config = {},
                  std::uint64_t max_cycles_per_core = 500'000'000);

    /** Translation-side statistics (TBs, IR ops, optimizer counters). */
    const StatSet &stats() const { return stats_; }

    /** The host code buffer (for inspection / disassembly in tests). */
    const aarch::CodeBuffer &codeBuffer() const { return code_; }

    const DbtConfig &config() const { return config_; }

    /** Translation-side fault injector (counters for dbt.* sites). */
    const FaultInjector &faults() const { return faults_; }

    // --- machine::HelperRuntime ------------------------------------------

    std::uint64_t invokeHelper(std::uint8_t id, std::uint16_t extra,
                               machine::Core &core,
                               machine::Machine &machine) override;

    std::optional<aarch::CodeAddr> onExitTb(std::uint32_t slot,
                                            machine::Core &core,
                                            machine::Machine &machine)
        override;

    // --- ExitSlotAllocator ------------------------------------------------

    std::uint32_t staticSlot(std::uint64_t guest_pc,
                             aarch::CodeAddr patch_site,
                             bool chainable) override;
    std::uint32_t dynamicSlot() override;

  private:
    struct ExitSlot
    {
        bool dynamic = false;
        std::uint64_t guestPc = 0;
        aarch::CodeAddr patchSite = 0;
        bool chainable = false;
    };

    /**
     * Guarded translation of the block at @p pc, with retry/rollback.
     * @param machine the running machine (null outside a run); used to
     *        decide whether a translation-cache flush is safe.
     * @param current the core trapped in onExitTb (null otherwise).
     * @return host entry, or nullopt when the block must be interpreted.
     */
    std::optional<aarch::CodeAddr>
    tryTranslate(gx86::Addr pc, const machine::Machine *machine,
                 const machine::Core *current);

    std::optional<aarch::CodeAddr>
    lookupOrTranslateGuarded(gx86::Addr pc, const machine::Machine *machine,
                             const machine::Core *current);

    /** True when dropping all translated code cannot strand a core. */
    bool canFlushTranslationCache(const machine::Machine *machine,
                                  const machine::Core *current) const;

    /** Drop every translation and re-emit the dispatch stub. */
    void flushTranslationCache();

    /** Emit the shared ExitTb stub that dispatches on DynExitReg. */
    void emitDynInterpStub();

    /** One-word non-chainable exit routing @p pc to the fallback. */
    aarch::CodeAddr interpTrampoline(gx86::Addr pc);

    const gx86::GuestImage &image_;
    DbtConfig config_;
    const ImportResolver *resolver_;
    HostCallHandler *hostcalls_;
    Frontend frontend_;
    aarch::CodeBuffer code_;
    Backend backend_;
    FaultInjector faults_;
    std::map<gx86::Addr, aarch::CodeAddr> tbCache_;
    /** Fallback trampolines, outside tbCache_ so that a block whose
     * translation failed transiently is retried on its next lookup. */
    std::map<gx86::Addr, aarch::CodeAddr> interpTrampolines_;
    std::vector<ExitSlot> slots_;
    std::uint32_t dynSlot_ = 0;
    bool dynSlotMade_ = false;
    aarch::CodeAddr dynInterpStub_ = 0;
    /** Bumped on every cache flush; invalidates pending chain patches. */
    std::uint64_t flushEpoch_ = 0;
    StatSet stats_;
};

} // namespace risotto::dbt

#endif // RISOTTO_DBT_DBT_HH
