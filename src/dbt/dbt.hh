/**
 * @file
 * The Risotto DBT engine.
 *
 * Ties the tiered pipeline together. The engine itself is a thin
 * orchestrator over four layers:
 *
 *   TranslationCache -- guest pc -> translation metadata + hot profile
 *   ChainManager     -- exit slots, goto_tb patch sites, flush epochs
 *   ExecutionTiers   -- tier 0 interpreter trampolines, tier 1 guarded
 *                       per-block translation, tier 2 profile-guided
 *                       superblocks (cross-block fence optimization)
 *   Machine          -- the weak-memory host the code runs on
 *
 * Translated code re-enters the engine through exit_tb traps, where the
 * engine counts executions, records chain successors, promotes hot
 * blocks to superblocks, and patches goto_tb exits into direct branches.
 * With tier 2 enabled, chaining an edge is deferred until its target is
 * warm (promoted, past the threshold, or unpromotable), so the traps
 * that feed the profile keep arriving exactly as long as they are
 * needed.
 */

#ifndef RISOTTO_DBT_DBT_HH
#define RISOTTO_DBT_DBT_HH

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "aarch/emitter.hh"
#include "analysis/analyzer.hh"
#include "analysis/certificate.hh"
#include "dbt/backend.hh"
#include "dbt/chain.hh"
#include "dbt/config.hh"
#include "dbt/frontend.hh"
#include "dbt/hostcall.hh"
#include "dbt/resolver.hh"
#include "dbt/tbcache.hh"
#include "dbt/template_tier.hh"
#include "dbt/tier.hh"
#include "dbt/tiers.hh"
#include "gx86/decoded.hh"
#include "gx86/image.hh"
#include "machine/machine.hh"
#include "persist/snapshot.hh"
#include "support/stats.hh"
#include "verify/batch.hh"
#include "verify/fusion.hh"
#include "verify/templates.hh"

namespace risotto::dbt
{

/** One emulated thread's starting register file. */
struct ThreadSpec
{
    std::array<std::uint64_t, gx86::RegCount> regs{};
};

/** Result of an emulation run. */
struct RunResult
{
    /** True when every thread halted within the cycle budget. */
    bool finished = false;

    std::vector<std::int64_t> exitCodes;
    std::vector<std::string> outputs;

    /** Parallel makespan (max per-core cycles) -- the "run time". */
    std::uint64_t makespan = 0;

    /** Sum of all cores' cycles. */
    std::uint64_t totalCycles = 0;

    /** Why the run stopped (render with machine::runDiagnosisName). */
    machine::RunDiagnosis diagnosis = machine::RunDiagnosis::Finished;

    /** Guest blocks executed through the interpreter fallback. */
    std::uint64_t fallbackBlocks = 0;

    /** Guarded-translation retries after recoverable failures. */
    std::uint64_t translationRetries = 0;

    /** Tier-2 superblocks formed. */
    std::uint64_t tier2Superblocks = 0;

    /** Blocks subsumed into superblocks (region members). */
    std::uint64_t tier2BlocksSubsumed = 0;

    /** Fences removed by merging across former block seams. */
    std::uint64_t crossBlockFencesRemoved = 0;

    /** Memory accesses eliminated across former block seams. */
    std::uint64_t crossBlockMemOpsEliminated = 0;

    /** Ordering violations found by the translation validator (0 unless
     * config.validateTranslations). */
    std::uint64_t validationViolations = 0;

    /** Merged translation + machine + fault-injection counters. */
    StatSet stats;

    /** Final guest memory (for inspection by tests and benches). */
    std::shared_ptr<gx86::Memory> memory;
};

/** Outcome of importing a persistent translation-cache snapshot. */
struct PersistReport
{
    /** The snapshot keyed to this image + config and records were
     * attempted. False (with `note` set) is never fatal: the engine
     * simply starts cold. */
    bool applied = false;

    /** Records now dispatchable. */
    std::uint64_t loaded = 0;

    /** Records dropped (checksum, bounds, decode, validation, injected
     * faults) -- each costs one cold translation, never correctness. */
    std::uint64_t rejected = 0;

    /** Human-readable reason when nothing was applied. */
    std::string note;
};

/** The DBT engine (QEMU-user-mode analogue). */
class Dbt : public machine::HelperRuntime, public TierHost
{
  public:
    /**
     * @param image the guest binary.
     * @param config variant configuration (see DbtConfig presets).
     * @param resolver resolves imports to host functions (may be null).
     * @param hostcalls services resolved host calls (may be null).
     */
    Dbt(const gx86::GuestImage &image, DbtConfig config,
        const ImportResolver *resolver = nullptr,
        HostCallHandler *hostcalls = nullptr);

    /**
     * Translate (or fetch from the TB cache) the block at @p pc.
     *
     * Guarded: recoverable translation failures (injected faults,
     * code-buffer exhaustion) are retried up to config().translateRetries
     * times, flushing the translation cache when safe. When translation
     * still fails, the returned address is a one-word trampoline that
     * routes execution through the interpreter fallback, so the caller
     * always gets runnable host code.
     */
    aarch::CodeAddr lookupOrTranslate(gx86::Addr pc);

    /**
     * Emulate @p threads guest threads (all starting at the image entry)
     * on the weak-memory machine.
     */
    RunResult run(const std::vector<ThreadSpec> &threads,
                  machine::MachineConfig machine_config = {},
                  std::uint64_t max_cycles_per_core = 500'000'000);

    /** Translation-side statistics (TBs, IR ops, optimizer counters). */
    const StatSet &stats() const { return stats_; }

    /** The host code buffer (for inspection / disassembly in tests). */
    const aarch::CodeBuffer &codeBuffer() const { return code_; }

    const DbtConfig &config() const { return config_; }

    /** Translation-side fault injector (counters for dbt.* sites). */
    const FaultInjector &faults() const { return faults_; }

    /** The translation cache (metadata + hot-block profile). */
    const TranslationCache &cache() const { return cache_; }

    /** The chain manager (exit slots + flush epochs). */
    const ChainManager &chains() const { return chains_; }

    /** The guest image this engine translates. */
    const gx86::GuestImage &image() const { return image_; }

    /** The shared per-image decoder cache (null when
     * config().decodeCache is off). Built once in the constructor --
     * with fusion patterns that passed the obligation-graph check --
     * and consumed read-only by the frontend, the interpreter fallback
     * and any serving sessions sharing this engine. */
    const std::shared_ptr<const gx86::DecodedSegment> &segment() const
    {
        return segment_;
    }

    /** Per-pattern obligation-graph reports of the fused dispatch
     * handlers (empty unless decodeCache && fusion). */
    const std::vector<verify::FusionPatternReport> &fusionReports() const
    {
        return fusionReports_;
    }

    /** Per-kind obligation-graph reports of the tier-0.5 template
     * table (empty unless the template tier activated). */
    const std::vector<verify::TemplatePatternReport> &
    templateReports() const
    {
        return templateReports_;
    }

    /** True when tier-0.5 template translation is live (templateTier
     * requested and none of its self-disable conditions hit). */
    bool templateActive() const { return templateActive_; }

    /**
     * Guest instructions retired so far: the exact interpreted count
     * (dbt.fallback_instructions) plus the profile-derived translated
     * count (each cached block's execution count times its guest
     * instruction count). The translated part is an estimate -- chained
     * blocks stop trapping to the profiler -- so treat it as a
     * throughput denominator, not an exact retire counter.
     */
    std::uint64_t guestInsnEstimate() const;

    /** The import resolver (may be null). */
    const ImportResolver *resolver() const { return resolver_; }

    /** The host-call handler (may be null). */
    HostCallHandler *hostcalls() const { return hostcalls_; }

    /** The shared dynamic-dispatch stub: execution entered here exits
     * through the dynamic slot with DynExitReg holding the target guest
     * pc. The serving layer starts session cores at this address. */
    aarch::CodeAddr dynInterpStub() const { return dynInterpStub_; }

    /** Ordering violations recorded by the translation validator. */
    const std::vector<verify::Violation> &violations() const
    {
        return violations_;
    }

    // --- Static analysis & certificates (src/analysis) --------------------

    /** The whole-image analysis (null unless config().analysis; run
     * once in the constructor, decode-free over the shared segment). */
    const analysis::ImageAnalysis *analysis() const
    {
        return analysis_.get();
    }

    /**
     * Install a translation certificate. Accepted only when its image
     * digest and config fingerprint match this engine exactly --
     * anything else (including a tampered or stale certificate) is
     * refused and the engine keeps validating in full.
     * @return true when the certificate was installed.
     */
    bool setCertificate(analysis::Certificate cert);

    /** The installed certificate, or null. */
    const analysis::Certificate *certificate() const
    {
        return certificate_ ? &*certificate_ : nullptr;
    }

    // --- Persistent translation cache (src/persist) -----------------------

    /**
     * Snapshot the current translation cache: every cached block's
     * relocatable host words, deterministically re-derived IR, exit
     * descriptors and execution profile, keyed to this image + config.
     */
    persist::Snapshot exportSnapshot();

    /**
     * Pre-seed the translation cache from @p snapshot. Robustness-first:
     * a key mismatch or a bad record degrades the affected blocks to
     * cold translation (counted under persist.*), never to wrong code.
     * With @p validate (the default) every record must pass the
     * obligation-graph validator before it becomes dispatchable;
     * without it records are still checksum- and decode-checked.
     */
    PersistReport importSnapshot(const persist::Snapshot &snapshot,
                                 bool validate = true);

    /** Serialize exportSnapshot() to @p path. False when the cache is
     * empty (nothing worth writing). */
    bool savePersistentCache(const std::string &path);

    /** Read, parse and import the snapshot at @p path; a missing or
     * corrupt file is a graceful cold start. */
    PersistReport loadPersistentCache(const std::string &path,
                                      bool validate = true);

    /** Re-validate every record of @p snapshot offline (the
     * --tb-cache-verify audit); installs nothing. */
    verify::BatchReport
    verifyPersistentCache(const persist::Snapshot &snapshot);

    // --- machine::HelperRuntime ------------------------------------------

    std::uint64_t invokeHelper(std::uint8_t id, std::uint16_t extra,
                               machine::Core &core,
                               machine::Machine &machine) override;

    std::optional<aarch::CodeAddr> onExitTb(std::uint32_t slot,
                                            machine::Core &core,
                                            machine::Machine &machine)
        override;

    // --- TierHost ---------------------------------------------------------

    /** True when dropping all translated code cannot strand a core. */
    bool canFlushTranslationCache(const TranslationEnv &env) const override;

    /** Drop every translation and re-emit the dispatch stub. */
    void flushTranslationCache() override;

  private:
    std::optional<aarch::CodeAddr>
    lookupOrTranslateGuarded(gx86::Addr pc, const TranslationEnv &env);

    /** Attempt tier-2 promotion of @p pc when its profile warrants it;
     * returns the superblock entry when one was installed. */
    std::optional<aarch::CodeAddr>
    maybePromote(gx86::Addr pc, std::uint64_t exec_count,
                 const TranslationEnv &env);

    /** Emit the shared ExitTb stub that dispatches on DynExitReg. */
    void emitDynInterpStub();

    /** One throwaway compile of the entry block at construction,
     * rolled back afterwards: first-use allocator growth (block arena,
     * optimizer scratch, backend state) happens here instead of inside
     * the first dispatch's time-to-first-dispatch window. Makes no
     * fault-injection draws and bumps no counters, so it is invisible
     * to every schedule and differential. */
    void warmTranslationPipeline();

    /** SHA-256 snapshot key of image_, hashed once on first use (the
     * image is immutable for the engine's lifetime). */
    const support::Sha256Digest &cachedImageDigest() const;

    const gx86::GuestImage &image_;
    mutable std::optional<support::Sha256Digest> imageDigest_;
    DbtConfig config_;
    const ImportResolver *resolver_;
    HostCallHandler *hostcalls_;
    Frontend frontend_;
    aarch::CodeBuffer code_;
    Backend backend_;
    FaultInjector faults_;
    StatSet stats_;
    TranslationCache cache_;
    ChainManager chains_;
    InterpreterTier interp_;
    BaselineTier baseline_;
    SuperblockTier super_;
    TemplateTier template_;
    std::unique_ptr<verify::TbValidator> validator_;
    std::vector<verify::Violation> violations_;
    std::unique_ptr<analysis::ImageAnalysis> analysis_;
    std::optional<analysis::Certificate> certificate_;
    AnalysisState analysisState_;
    std::shared_ptr<const gx86::DecodedSegment> segment_;
    std::vector<verify::FusionPatternReport> fusionReports_;
    std::vector<verify::TemplatePatternReport> templateReports_;
    bool templateActive_ = false;
    aarch::CodeAddr dynInterpStub_ = 0;
};

/**
 * Service one translated-code helper trap: the body behind
 * Dbt::invokeHelper, shared with runtimes that dispatch against a frozen
 * engine (the serving layer's per-session runtime). Touches only the
 * core, the machine and the caller's @p stats, so concurrent sessions
 * can each pass their own counter set.
 * @return extra cycles consumed by the helper body.
 */
std::uint64_t invokeRuntimeHelper(std::uint8_t id, std::uint16_t extra,
                                  machine::Core &core,
                                  machine::Machine &machine,
                                  HostCallHandler *hostcalls,
                                  StatSet &stats);

} // namespace risotto::dbt

#endif // RISOTTO_DBT_DBT_HH
