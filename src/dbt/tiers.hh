/**
 * @file
 * The execution tiers of the DBT pipeline.
 *
 * Tier 0 (InterpreterTier) hands blocks to the in-place interpreter
 * through one-word exit trampolines. Tier 1 (BaselineTier) is guarded
 * per-block translation: frontend -> optimizer -> backend with fault
 * injection, retry and rollback. Tier 2 (SuperblockTier) re-translates a
 * hot straight-line region -- the head block plus its hottest recorded
 * chain successors -- as one superblock, so the optimizer can merge
 * fences and eliminate redundant accesses across former block seams.
 *
 * Tiers share the code buffer, chain manager and stat set owned by the
 * engine; none of them owns dispatch policy (that stays in Dbt).
 */

#ifndef RISOTTO_DBT_TIERS_HH
#define RISOTTO_DBT_TIERS_HH

#include <optional>
#include <unordered_map>

#include "aarch/emitter.hh"
#include "analysis/analyzer.hh"
#include "analysis/certificate.hh"
#include "dbt/backend.hh"
#include "dbt/chain.hh"
#include "dbt/config.hh"
#include "dbt/frontend.hh"
#include "dbt/hostcall.hh"
#include "dbt/resolver.hh"
#include "dbt/tbcache.hh"
#include "dbt/tier.hh"
#include "gx86/decoded.hh"
#include "support/faultinject.hh"
#include "support/stats.hh"
#include "verify/verifier.hh"

namespace risotto::dbt
{

/**
 * Re-run the frontend over every member of @p path, optimize each part
 * in isolation, and splice the parts into @p sb (already acquired for
 * the head pc) as one straight-line superblock: later parts' local
 * temps and labels are renumbered, and each part's goto_tb to the next
 * member becomes a fall-through or a branch to the seam label. The
 * caller runs tcg::optimizeSuperblock over the result.
 *
 * Shared by tier-2 promotion and snapshot export, which must derive
 * byte-identical superblock IR for the same path.
 *
 * @return false when the members' exits do not actually link the path
 *         (a stale profile). @throws GuestFault on undecodable members.
 */
bool buildSuperblockIr(Frontend &frontend, const DbtConfig &config,
                       const std::vector<gx86::Addr> &path,
                       tcg::Block &sb);

/**
 * Static-analysis context the translation tiers consult (owned by the
 * engine, shared by reference). All pointers may be null; a null
 * `analysis` disables every analysis-driven behaviour regardless of
 * the flags.
 */
struct AnalysisState
{
    /** The whole-image analysis (lattice classes + locality premise). */
    const analysis::ImageAnalysis *analysis = nullptr;

    /** Installed certificate whose image/config keys matched, or null. */
    const analysis::Certificate *certificate = nullptr;

    bool elide = false;    ///< DbtConfig::analysisElide.
    bool skip = false;     ///< DbtConfig::analysisSkip.
    bool paranoid = false; ///< DbtConfig::analysisParanoid.
};

/**
 * The optimizer configuration a superblock over @p path must be run
 * under: the engine's optimizer config, with cross-seam fence merging
 * disabled when any region member is HotOrdering (dense RMW/MFENCE
 * code where moving ordering points buys little and risks much).
 * Shared by tier-2 promotion and snapshot export so both derive
 * byte-identical superblock IR for the same path.
 */
tcg::OptimizerConfig
superblockOptimizer(const DbtConfig &config,
                    const analysis::ImageAnalysis *analysis,
                    const std::vector<gx86::Addr> &path);

/** Tier 0: route blocks through the in-place interpreter. */
class InterpreterTier : public ExecutionTier
{
  public:
    InterpreterTier(const gx86::GuestImage &image, const DbtConfig &config,
                    const ImportResolver *resolver,
                    HostCallHandler *hostcalls, aarch::CodeBuffer &code,
                    Backend &backend, ChainManager &chains, TierHost &host,
                    StatSet &stats)
        : image_(image), config_(config), resolver_(resolver),
          hostcalls_(hostcalls), code_(code), backend_(backend),
          chains_(chains), host_(host), stats_(stats)
    {
        trampolines_.reserve(64);
    }

    Tier level() const override { return Tier::Interpreter; }

    /**
     * A one-word non-chainable exit trampoline routing @p pc into the
     * interpreter. Emitted lazily and memoized; on buffer exhaustion the
     * cache is flushed and emission retried (callers only request
     * trampolines outside a run, where flushing cannot strand a core).
     */
    std::optional<aarch::CodeAddr> translate(gx86::Addr pc,
                                             const TranslationEnv &env)
        override;

    /** Interpret exactly one guest block; returns the next guest pc. */
    std::uint64_t interpretOne(gx86::Addr pc, machine::Core &core,
                               machine::Machine &machine);

    /** Drop memoized trampolines (their code died in a cache flush). */
    void flush() { trampolines_.clear(); }

    /** Dispatch interpreted blocks from @p segment (nullptr re-decodes
     * per instruction). The engine installs its shared segment here. */
    void setSegment(const gx86::DecodedSegment *segment)
    {
        segment_ = segment;
    }

  private:
    const gx86::DecodedSegment *segment_ = nullptr;
    const gx86::GuestImage &image_;
    const DbtConfig &config_;
    const ImportResolver *resolver_;
    HostCallHandler *hostcalls_;
    aarch::CodeBuffer &code_;
    Backend &backend_;
    ChainManager &chains_;
    TierHost &host_;
    StatSet &stats_;
    std::unordered_map<gx86::Addr, aarch::CodeAddr> trampolines_;
};

/** Tier 1: guarded per-block translation with retry and rollback. */
class BaselineTier : public ExecutionTier
{
  public:
    BaselineTier(Frontend &frontend, Backend &backend,
                 aarch::CodeBuffer &code, ChainManager &chains,
                 FaultInjector &faults, const DbtConfig &config,
                 TierHost &host, StatSet &stats)
        : frontend_(frontend), backend_(backend), code_(code),
          chains_(chains), faults_(faults), config_(config), host_(host),
          stats_(stats)
    {
    }

    Tier level() const override { return Tier::Baseline; }

    /** Arm per-translation validation (see DbtConfig::validateTranslations).
     * Violations are recorded into @p sink; the translation stays live. */
    void
    setValidator(const verify::TbValidator *validator,
                 std::vector<verify::Violation> *sink)
    {
        validator_ = validator;
        violations_ = sink;
    }

    /** Attach the engine's analysis context (certificate skip /
     * paranoid recheck / locality-aware validation). */
    void setAnalysis(const AnalysisState *state) { analysis_ = state; }

    /**
     * Guarded translation of the block at @p pc. Recoverable failures
     * (injected faults, buffer exhaustion) are retried up to
     * translateRetries times, flushing the cache when the environment
     * says that is safe; partial emissions are rolled back.
     * @return host entry, or nullopt when the block must be interpreted.
     */
    std::optional<aarch::CodeAddr> translate(gx86::Addr pc,
                                             const TranslationEnv &env)
        override;

  private:
    Frontend &frontend_;
    Backend &backend_;
    aarch::CodeBuffer &code_;
    ChainManager &chains_;
    FaultInjector &faults_;
    const DbtConfig &config_;
    TierHost &host_;
    StatSet &stats_;
    const verify::TbValidator *validator_ = nullptr;
    std::vector<verify::Violation> *violations_ = nullptr;
    const AnalysisState *analysis_ = nullptr;
};

/** Tier 2: profile-guided superblock translation. */
class SuperblockTier : public ExecutionTier
{
  public:
    SuperblockTier(Frontend &frontend, Backend &backend,
                   aarch::CodeBuffer &code, ChainManager &chains,
                   TranslationCache &cache, const DbtConfig &config,
                   StatSet &stats)
        : frontend_(frontend), backend_(backend), code_(code),
          chains_(chains), cache_(cache), config_(config), stats_(stats)
    {
    }

    Tier level() const override { return Tier::Superblock; }

    /** Arm per-translation validation. A violating superblock has its
     * promotion rejected (rolled back) and the violation recorded. */
    void
    setValidator(const verify::TbValidator *validator,
                 std::vector<verify::Violation> *sink)
    {
        validator_ = validator;
        violations_ = sink;
    }

    /** Attach the engine's analysis context. Superblock validation is
     * never certificate-skipped (claims cover tier-1 translations, not
     * cross-seam optimization); the state feeds the locality-aware
     * validator and the HotOrdering-conservative optimizer config. */
    void setAnalysis(const AnalysisState *state) { analysis_ = state; }

    /**
     * Promote the hot block at @p head: follow its recorded chain
     * successors into a straight-line region, re-run the frontend over
     * every member, splice the parts into one superblock (seam goto_tb
     * exits become fall-throughs), optimize across the seams, compile,
     * and swap the head's cache entry to the new translation.
     *
     * Promotion never flushes: a failed attempt (region too short,
     * undecodable member, buffer or register-pool exhaustion) rolls the
     * buffer back, marks the head so it is not retried until the next
     * cache flush, and leaves the tier-1 translation live.
     *
     * @return the superblock entry, or nullopt when promotion aborted.
     */
    std::optional<aarch::CodeAddr> translate(gx86::Addr head,
                                             const TranslationEnv &env)
        override;

  private:
    std::optional<aarch::CodeAddr> abandon(gx86::Addr head);

    Frontend &frontend_;
    Backend &backend_;
    aarch::CodeBuffer &code_;
    ChainManager &chains_;
    TranslationCache &cache_;
    const DbtConfig &config_;
    StatSet &stats_;
    const verify::TbValidator *validator_ = nullptr;
    std::vector<verify::Violation> *violations_ = nullptr;
    const AnalysisState *analysis_ = nullptr;
};

} // namespace risotto::dbt

#endif // RISOTTO_DBT_TIERS_HH
