/**
 * @file
 * DBT backend: TCG IR -> aarch host code.
 *
 * Implements the TCG IR -> Arm half of the mapping schemes: Risotto's
 * Figure 7b fence lowering (DMBLD / DMBST / DMBFF by direction, Facq/Frel
 * elided) versus QEMU's Figure 2 lowering (read fences to DMBLD --
 * including the unsound Fmr demotion -- and everything else to DMBFF).
 * Atomic IR ops lower to casal/ldaddal (Section 6.3) or to the fenced
 * exclusive-pair loop of Figure 7b.
 *
 * Register convention: guest registers g0..g15 live permanently in
 * X0..X15, ZF/SF in X16/X17; block-local temps are linear-scan allocated
 * from X18..X23+X27; X24..X26 stage helper arguments; X28 carries dynamic
 * exit targets; X29 is the backend scratch.
 */

#ifndef RISOTTO_DBT_BACKEND_HH
#define RISOTTO_DBT_BACKEND_HH

#include <cstdint>

#include "aarch/emitter.hh"
#include "dbt/config.hh"
#include "tcg/ir.hh"

namespace risotto::dbt
{

/** Host registers used for helper argument staging and returns. */
constexpr aarch::XReg HelperArg0 = 24;
constexpr aarch::XReg HelperArg1 = 25;
constexpr aarch::XReg HelperRet = 24;
constexpr aarch::XReg DynExitReg = 28;

/** Allocates DBT dispatcher exit slots during compilation. */
class ExitSlotAllocator
{
  public:
    virtual ~ExitSlotAllocator() = default;

    /**
     * Register a static exit to @p guest_pc.
     * @param source_pc guest pc of the block the exit belongs to (0 when
     *        none applies, e.g. interpreter trampolines); feeds the
     *        chain-successor profile behind superblock formation.
     * @param patch_site code-buffer address of the exit_tb word (so a
     *        chainable exit can later be patched into a direct branch).
     * @param chainable true for goto_tb exits.
     */
    virtual std::uint32_t staticSlot(std::uint64_t source_pc,
                                     std::uint64_t guest_pc,
                                     aarch::CodeAddr patch_site,
                                     bool chainable) = 0;

    /** The shared dynamic-exit slot (target pc in DynExitReg). */
    virtual std::uint32_t dynamicSlot() = 0;
};

/** Compiles optimized TCG blocks into the host code buffer. */
class Backend
{
  public:
    Backend(aarch::CodeBuffer &buffer, const DbtConfig &config)
        : buffer_(buffer), config_(config)
    {
    }

    /**
     * Emit host code for @p block.
     * @return the entry address of the compiled code.
     */
    aarch::CodeAddr compile(const tcg::Block &block,
                            ExitSlotAllocator &slots);

  private:
    aarch::CodeBuffer &buffer_;
    const DbtConfig &config_;
};

} // namespace risotto::dbt

#endif // RISOTTO_DBT_BACKEND_HH
