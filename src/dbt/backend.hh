/**
 * @file
 * DBT backend: TCG IR -> host code, behind a pluggable host-ISA facade.
 *
 * Two host backends implement the same interface over the shared code
 * buffer:
 *
 *  - AarchBackend implements the TCG IR -> Arm half of the mapping
 *    schemes: Risotto's Figure 7b fence lowering (DMBLD / DMBST / DMBFF
 *    by direction, Facq/Frel elided) versus QEMU's Figure 2 lowering
 *    (read fences to DMBLD -- including the unsound Fmr demotion -- and
 *    everything else to DMBFF). Atomic IR ops lower to casal/ldaddal
 *    (Section 6.3) or to the fenced exclusive-pair loop of Figure 7b.
 *
 *  - Rv64Backend targets the RVWMO host: fences lower through
 *    mapping::lowerTcgFenceToRiscv (the same single-source-of-truth
 *    table the litmus-level scheme and the verifier consult), CAS to a
 *    fully-ordered lr.d.aqrl/sc.d.aqrl loop, XADD to amoadd.d.aqrl
 *    (the spec A.3.3 fully-ordered AMO reading), and the FencedRmw2
 *    scheme to a `fence rw,rw`-bracketed plain LR/SC pair.
 *
 * Register convention (identical on both hosts): guest registers
 * g0..g15 live permanently in host regs 0..15, ZF/SF in 16/17;
 * block-local temps are linear-scan allocated from {18..23, 27};
 * 24..26 stage helper arguments; 28 carries dynamic exit targets; 29 is
 * the backend scratch. Keeping the pinning identical means guest state
 * transplants bit-for-bit between hosts (the differential tests rely on
 * this).
 *
 * The concrete Backend facade owns the selected HostBackend
 * (DbtConfig::host) and also answers the host-specific word questions
 * the chain manager and the persistence layer need: what an exit_tb
 * word looks like, and what direct-branch word a chained exit becomes.
 */

#ifndef RISOTTO_DBT_BACKEND_HH
#define RISOTTO_DBT_BACKEND_HH

#include <cstdint>
#include <memory>
#include <optional>

#include "aarch/emitter.hh"
#include "dbt/config.hh"
#include "support/hostisa.hh"
#include "tcg/ir.hh"

namespace risotto::dbt
{

/** Host registers used for helper argument staging and returns. */
constexpr aarch::XReg HelperArg0 = 24;
constexpr aarch::XReg HelperArg1 = 25;
constexpr aarch::XReg HelperRet = 24;
constexpr aarch::XReg DynExitReg = 28;

/** Allocates DBT dispatcher exit slots during compilation. */
class ExitSlotAllocator
{
  public:
    virtual ~ExitSlotAllocator() = default;

    /**
     * Register a static exit to @p guest_pc.
     * @param source_pc guest pc of the block the exit belongs to (0 when
     *        none applies, e.g. interpreter trampolines); feeds the
     *        chain-successor profile behind superblock formation.
     * @param patch_site code-buffer address of the exit_tb word (so a
     *        chainable exit can later be patched into a direct branch).
     * @param chainable true for goto_tb exits.
     */
    virtual std::uint32_t staticSlot(std::uint64_t source_pc,
                                     std::uint64_t guest_pc,
                                     aarch::CodeAddr patch_site,
                                     bool chainable) = 0;

    /** The shared dynamic-exit slot (target pc in DynExitReg). */
    virtual std::uint32_t dynamicSlot() = 0;
};

/**
 * One host-ISA lowering engine. Implementations share the code buffer
 * and configuration held by the Backend facade.
 */
class HostBackend
{
  public:
    HostBackend(aarch::CodeBuffer &buffer, const DbtConfig &config)
        : buffer_(buffer), config_(config)
    {
    }
    virtual ~HostBackend() = default;

    virtual support::HostIsa isa() const = 0;

    /** Emit host code for @p block; returns the entry address. */
    virtual aarch::CodeAddr compile(const tcg::Block &block,
                                    ExitSlotAllocator &slots) = 0;

    /** The encoded exit_tb trap word for @p slot. */
    virtual std::uint32_t exitTbWord(std::uint32_t slot) const = 0;

    /** True when @p word (a valid host word) is an exit_tb trap. */
    virtual bool isExitTbWord(std::uint32_t word) const = 0;

    /**
     * The direct-branch word that jumps @p word_delta words from its
     * own site (the goto_tb -> branch chain rewrite). nullopt when the
     * delta exceeds the host's branch range -- the caller must then
     * leave the exit un-chained (it keeps trapping, which is slow but
     * correct).
     */
    virtual std::optional<std::uint32_t>
    chainBranchWord(std::int32_t word_delta) const = 0;

    /**
     * Append a one-word exit_tb trampoline for @p slot.
     * @return the trampoline's address. @throws CodeBufferFull.
     */
    aarch::CodeAddr emitExitTb(std::uint32_t slot)
    {
        return buffer_.append(exitTbWord(slot));
    }

  protected:
    aarch::CodeBuffer &buffer_;
    const DbtConfig &config_;
};

/** Compiles optimized TCG blocks into the host code buffer. */
class Backend
{
  public:
    Backend(aarch::CodeBuffer &buffer, const DbtConfig &config);
    ~Backend();

    /** The host ISA this backend emits (DbtConfig::host). */
    support::HostIsa isa() const { return impl_->isa(); }

    /**
     * Emit host code for @p block.
     * @return the entry address of the compiled code.
     */
    aarch::CodeAddr
    compile(const tcg::Block &block, ExitSlotAllocator &slots)
    {
        return impl_->compile(block, slots);
    }

    /**
     * Append a one-word exit_tb trampoline for @p slot (interpreter
     * routing and the shared dynamic-dispatch stub).
     * @return the trampoline's address. @throws CodeBufferFull.
     */
    aarch::CodeAddr emitExitTb(std::uint32_t slot);

    std::uint32_t exitTbWord(std::uint32_t slot) const
    {
        return impl_->exitTbWord(slot);
    }

    bool isExitTbWord(std::uint32_t word) const
    {
        return impl_->isExitTbWord(word);
    }

    std::optional<std::uint32_t>
    chainBranchWord(std::int32_t word_delta) const
    {
        return impl_->chainBranchWord(word_delta);
    }

  private:
    std::unique_ptr<HostBackend> impl_;
};

} // namespace risotto::dbt

#endif // RISOTTO_DBT_BACKEND_HH
