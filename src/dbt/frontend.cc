#include "dbt/frontend.hh"

#include <deque>
#include <set>

#include "gx86/codec.hh"
#include "support/error.hh"
#include "support/format.hh"

namespace risotto::dbt
{

using gx86::Addr;
using gx86::Cond;
using gx86::Instruction;
using gx86::Opcode;
using mapping::RmwLowering;
using mapping::X86ToTcgScheme;
using memcore::FenceKind;
using tcg::Block;
using tcg::HelperId;
using tcg::NoTemp;
using tcg::TempId;
namespace b = tcg::build;

// The analysis library forms blocks under its own copy of this cap (it
// sits below the dbt layer); a drift here would misalign certificate
// block heads with translated heads.
static_assert(analysis::MaxBlockInstructions ==
                  Frontend::MaxBlockInstructions,
              "analysis and frontend block caps must agree");

Frontend::Frontend(const gx86::GuestImage &image, const DbtConfig &config,
                   const ImportResolver *resolver)
    : image_(image), config_(config), resolver_(resolver)
{
}

void
Frontend::emitFlagsFrom(Block &block, TempId value) const
{
    const TempId zero = block.newTemp();
    block.instrs.push_back(b::movi(zero, 0));
    block.instrs.push_back(b::setcond(Cond::Eq, tcg::TempZf, value, zero));
    block.instrs.push_back(b::setcond(Cond::Lt, tcg::TempSf, value, zero));
}

void
Frontend::emitJcc(Block &block, Cond cond, std::uint64_t taken,
                  std::uint64_t fallthrough) const
{
    const TempId zero = block.newTemp();
    block.instrs.push_back(b::movi(zero, 0));
    TempId scrutinee = NoTemp;
    Cond host_cond = Cond::Eq;
    switch (cond) {
      case Cond::Eq:
        scrutinee = tcg::TempZf;
        host_cond = Cond::Ne; // Taken when zf != 0.
        break;
      case Cond::Ne:
        scrutinee = tcg::TempZf;
        host_cond = Cond::Eq;
        break;
      case Cond::Lt:
        scrutinee = tcg::TempSf;
        host_cond = Cond::Ne;
        break;
      case Cond::Ge:
        scrutinee = tcg::TempSf;
        host_cond = Cond::Eq;
        break;
      case Cond::Le:
      case Cond::Gt: {
        const TempId both = block.newTemp();
        block.instrs.push_back(
            b::binop(tcg::Op::Or, both, tcg::TempZf, tcg::TempSf));
        scrutinee = both;
        host_cond = cond == Cond::Le ? Cond::Ne : Cond::Eq;
        break;
      }
    }
    const std::int32_t label = block.newLabel();
    block.instrs.push_back(b::brcond(host_cond, scrutinee, zero, label));
    block.instrs.push_back(b::gotoTb(fallthrough));
    block.instrs.push_back(b::setLabel(label));
    block.instrs.push_back(b::gotoTb(taken));
}

std::vector<Instruction>
Frontend::decodeBlock(Addr pc) const
{
    std::vector<Instruction> decoded;
    Addr cur = pc;
    while (true) {
        if (!image_.inText(cur))
            throw GuestFault("translating outside text at " +
                             hexString(cur));
        Instruction in;
        if (segment_) {
            const gx86::DecodedEntry *e = segment_->entry(cur);
            panicIf(!e, "segment/text bounds disagree");
            if (!e->valid()) {
                // Surface the exact decoder fault of this offset.
                image_.decodeAt(cur);
                throw GuestFault("undecodable instruction at " +
                                 hexString(cur));
            }
            // Always the unfused first member: a fused entry's second
            // instruction has its own entry at the next offset.
            in = e->first;
        } else {
            in = image_.decodeAt(cur);
        }
        decoded.push_back(in);
        cur += in.length;
        if (gx86::opEndsBlock(in.op) ||
            decoded.size() >= MaxBlockInstructions)
            return decoded;
    }
}

tcg::Block
Frontend::translate(Addr pc) const
{
    Block block = arena_.acquire(pc);
    bool ends = false;
    // Elision is per-block and only for certified-Local heads: every
    // access in such a block is provably thread-private, so the mapped
    // fences order nothing any other thread can observe.
    const bool elide = config_.analysis && config_.analysisElide &&
                       analysis_ != nullptr && analysis_->isLocal(pc);
    Addr cur = pc;
    for (const Instruction &in : decodeBlock(pc)) {
        const Addr next = cur + in.length;
        translateOne(block, in, cur, next, ends, elide);
        cur = next;
    }
    if (!ends)
        block.instrs.push_back(b::gotoTb(cur));
    return block;
}

void
Frontend::translateOne(Block &block, const Instruction &in, Addr pc,
                       Addr next, bool &ends, bool elide) const
{
    auto &code = block.instrs;
    const auto scheme = config_.frontend;
    const bool helper_rmw =
        config_.rmw == RmwLowering::HelperRmw1AL ||
        config_.rmw == RmwLowering::HelperRmw2AL;

    auto loadWithFences = [&](const tcg::Instr &ld) {
        if (scheme == X86ToTcgScheme::Qemu) {
            if (elide)
                ++fencesElided_;
            else
                code.push_back(b::mb(FenceKind::Fmr));
        }
        code.push_back(ld);
        if (scheme == X86ToTcgScheme::Risotto) {
            if (elide)
                ++fencesElided_;
            else
                code.push_back(b::mb(FenceKind::Frm));
        }
    };
    auto storeWithFences = [&](const tcg::Instr &st) {
        if (scheme == X86ToTcgScheme::Qemu) {
            if (elide)
                ++fencesElided_;
            else
                code.push_back(b::mb(FenceKind::Fmw));
        }
        if (scheme == X86ToTcgScheme::Risotto) {
            if (elide)
                ++fencesElided_;
            else
                code.push_back(b::mb(FenceKind::Fww));
        }
        code.push_back(st);
    };
    auto g = [](gx86::Reg r) { return static_cast<TempId>(r); };
    auto branchTarget = [&](std::int32_t off) {
        return next + static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(off));
    };

    switch (in.op) {
      case Opcode::Nop:
        break;
      case Opcode::Hlt:
        code.push_back(b::exitTb(HaltPc));
        ends = true;
        break;
      case Opcode::MovRI:
        code.push_back(b::movi(g(in.rd), in.imm));
        break;
      case Opcode::MovRR:
        code.push_back(b::mov(g(in.rd), g(in.rs)));
        break;
      case Opcode::Load:
        loadWithFences(b::ld(g(in.rd), g(in.rb), in.off));
        break;
      case Opcode::Load8:
        loadWithFences(b::ld8(g(in.rd), g(in.rb), in.off));
        break;
      case Opcode::Store:
        storeWithFences(b::st(g(in.rs), g(in.rb), in.off));
        break;
      case Opcode::Store8:
        storeWithFences(b::st8(g(in.rs), g(in.rb), in.off));
        break;
      case Opcode::StoreI: {
        const TempId val = block.newTemp();
        code.push_back(b::movi(val, in.imm));
        storeWithFences(b::st(val, g(in.rb), in.off));
        break;
      }
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Mul:
      case Opcode::Udiv: {
        tcg::Op op = tcg::Op::Add;
        switch (in.op) {
          case Opcode::Add: op = tcg::Op::Add; break;
          case Opcode::Sub: op = tcg::Op::Sub; break;
          case Opcode::And: op = tcg::Op::And; break;
          case Opcode::Or: op = tcg::Op::Or; break;
          case Opcode::Xor: op = tcg::Op::Xor; break;
          case Opcode::Mul: op = tcg::Op::Mul; break;
          case Opcode::Udiv: op = tcg::Op::Udiv; break;
          default: break;
        }
        code.push_back(b::binop(op, g(in.rd), g(in.rd), g(in.rs)));
        emitFlagsFrom(block, g(in.rd));
        break;
      }
      case Opcode::AddI:
      case Opcode::SubI:
      case Opcode::AndI:
      case Opcode::OrI:
      case Opcode::XorI:
      case Opcode::MulI: {
        const TempId rhs = block.newTemp();
        code.push_back(b::movi(rhs, in.imm));
        tcg::Op op = tcg::Op::Add;
        switch (in.op) {
          case Opcode::AddI: op = tcg::Op::Add; break;
          case Opcode::SubI: op = tcg::Op::Sub; break;
          case Opcode::AndI: op = tcg::Op::And; break;
          case Opcode::OrI: op = tcg::Op::Or; break;
          case Opcode::XorI: op = tcg::Op::Xor; break;
          case Opcode::MulI: op = tcg::Op::Mul; break;
          default: break;
        }
        code.push_back(b::binop(op, g(in.rd), g(in.rd), rhs));
        emitFlagsFrom(block, g(in.rd));
        break;
      }
      case Opcode::ShlI:
      case Opcode::ShrI:
        code.push_back(b::shifti(in.op == Opcode::ShlI ? tcg::Op::Shl
                                                       : tcg::Op::Shr,
                                 g(in.rd), g(in.rd), in.imm));
        emitFlagsFrom(block, g(in.rd));
        break;
      case Opcode::CmpRR: {
        const TempId diff = block.newTemp();
        code.push_back(b::binop(tcg::Op::Sub, diff, g(in.rd), g(in.rs)));
        emitFlagsFrom(block, diff);
        break;
      }
      case Opcode::CmpRI: {
        const TempId rhs = block.newTemp();
        const TempId diff = block.newTemp();
        code.push_back(b::movi(rhs, in.imm));
        code.push_back(b::binop(tcg::Op::Sub, diff, g(in.rd), rhs));
        emitFlagsFrom(block, diff);
        break;
      }
      case Opcode::Jmp:
        code.push_back(b::gotoTb(branchTarget(in.off)));
        ends = true;
        break;
      case Opcode::Jcc:
        emitJcc(block, in.cond, branchTarget(in.off), next);
        ends = true;
        break;
      case Opcode::Call: {
        // Push the return address (a guest store: fenced per scheme).
        const TempId ra = block.newTemp();
        code.push_back(b::addi(g(gx86::Rsp), g(gx86::Rsp), -8));
        code.push_back(b::movi(ra, static_cast<std::int64_t>(next)));
        storeWithFences(b::st(ra, g(gx86::Rsp), 0));
        code.push_back(b::gotoTb(branchTarget(in.off)));
        ends = true;
        break;
      }
      case Opcode::Ret: {
        const TempId ra = block.newTemp();
        loadWithFences(b::ld(ra, g(gx86::Rsp), 0));
        code.push_back(b::addi(g(gx86::Rsp), g(gx86::Rsp), 8));
        code.push_back(b::exitTbDynamic(ra));
        ends = true;
        break;
      }
      case Opcode::PltCall: {
        fatalIf(in.sym >= image_.dynsym.size(),
                "bad dynamic symbol index in PLT call");
        const gx86::DynSymbol &dyn = image_.dynsym[in.sym];
        std::optional<std::uint16_t> host;
        if (config_.hostLinker && resolver_)
            host = resolver_->resolve(dyn.name);
        if (host) {
            // Host-linked: marshal + native call; execution continues at
            // the stub's RET.
            code.push_back(b::callHelper(HelperId::HostCall, NoTemp,
                                         NoTemp, NoTemp, *host));
            code.push_back(b::gotoTb(next));
        } else if (dyn.guestImpl != 0) {
            // Translate the guest library implementation instead.
            code.push_back(b::gotoTb(dyn.guestImpl));
        } else {
            throw GuestFault("unresolved import '" + dyn.name +
                             "' at " + hexString(pc));
        }
        ends = true;
        break;
      }
      case Opcode::LockCmpxchg: {
        const TempId expected = block.newTemp();
        const TempId old = block.newTemp();
        code.push_back(b::mov(expected, g(0)));
        if (helper_rmw) {
            const TempId addr = block.newTemp();
            code.push_back(b::addi(addr, g(in.rb), in.off));
            code.push_back(b::callHelper(HelperId::CasHelper, old, addr,
                                         g(in.rs)));
        } else {
            code.push_back(b::cas(old, g(in.rb), in.off, expected,
                                  g(in.rs)));
        }
        code.push_back(b::mov(g(0), old));
        code.push_back(b::setcond(Cond::Eq, tcg::TempZf, old, expected));
        break;
      }
      case Opcode::LockXadd: {
        const TempId old = block.newTemp();
        if (helper_rmw) {
            const TempId addr = block.newTemp();
            code.push_back(b::addi(addr, g(in.rb), in.off));
            code.push_back(b::callHelper(HelperId::XaddHelper, old, addr,
                                         g(in.rs)));
        } else {
            code.push_back(b::xadd(old, g(in.rb), in.off, g(in.rs)));
        }
        code.push_back(b::mov(g(in.rs), old));
        break;
      }
      case Opcode::MFence:
        code.push_back(b::mb(FenceKind::Fsc));
        break;
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv: {
        HelperId id = HelperId::FAdd64;
        switch (in.op) {
          case Opcode::FAdd: id = HelperId::FAdd64; break;
          case Opcode::FSub: id = HelperId::FSub64; break;
          case Opcode::FMul: id = HelperId::FMul64; break;
          case Opcode::FDiv: id = HelperId::FDiv64; break;
          default: break;
        }
        code.push_back(b::callHelper(id, g(in.rd), g(in.rd), g(in.rs)));
        break;
      }
      case Opcode::FSqrt:
        code.push_back(b::callHelper(HelperId::FSqrt64, g(in.rd),
                                     g(in.rs), NoTemp));
        break;
      case Opcode::CvtIF:
        code.push_back(b::callHelper(HelperId::CvtIF64, g(in.rd),
                                     g(in.rs), NoTemp));
        break;
      case Opcode::CvtFI:
        code.push_back(b::callHelper(HelperId::CvtFI64, g(in.rd),
                                     g(in.rs), NoTemp));
        break;
      case Opcode::Syscall:
        code.push_back(
            b::callHelper(HelperId::Syscall, g(0), g(0), g(1)));
        code.push_back(b::gotoTb(next));
        ends = true;
        break;
    }
}

std::vector<Addr>
reachableBlocks(const gx86::GuestImage &image, const DbtConfig &config,
                const gx86::DecodedSegment *segment)
{
    Frontend frontend(image, config, nullptr);
    frontend.setSegment(segment);
    std::vector<Addr> order;
    std::set<Addr> seen{image.entry};
    std::deque<Addr> work{image.entry};
    while (!work.empty()) {
        const Addr head = work.front();
        work.pop_front();
        std::vector<Instruction> instrs;
        try {
            instrs = frontend.decodeBlock(head);
        } catch (const Error &) {
            continue;
        }
        order.push_back(head);
        Addr fall = head;
        for (const Instruction &in : instrs)
            fall += in.length;
        auto push = [&](Addr a) {
            if (image.inText(a) && seen.insert(a).second)
                work.push_back(a);
        };
        auto target = [&](const Instruction &in) {
            return fall + static_cast<std::uint64_t>(
                              static_cast<std::int64_t>(in.off));
        };
        const Instruction &last = instrs.back();
        switch (last.op) {
          case Opcode::Jmp:
            push(target(last));
            break;
          case Opcode::Jcc:
          case Opcode::Call:
            push(target(last));
            push(fall);
            break;
          case Opcode::Ret:
          case Opcode::Hlt:
            break;
          default:
            // PltCall, syscall, or a size-cap-ended block: execution
            // resumes at the fall-through.
            push(fall);
            break;
        }
    }
    return order;
}

} // namespace risotto::dbt
