/**
 * @file
 * The translation cache: guest pc -> translated-block metadata.
 *
 * Beyond the entry address, every block carries the profile the tiered
 * pipeline feeds on: an execution count (bumped at ExitTb/chain-
 * resolution time, never per instruction), the chain successors observed
 * when exits resolve (the input to superblock region formation), and the
 * tier the current translation was produced at. The cache is generation-
 * aware: a flush clears every entry and bumps the generation so callers
 * can detect that cached pointers/profiles died.
 *
 * Dispatch fast path: find() consults a direct-mapped, power-of-two
 * jump cache (pc-hash -> TbInfo*, in the style of QEMU's tb_jmp_cache)
 * before falling back to the unordered_map. The cached pointers rely on
 * unordered_map's node stability -- references stay valid across
 * insert/rehash and die only on erase/clear -- so the single
 * invalidation point is flush(), which wipes the whole array. promote()
 * updates the TbInfo in place, so a cached pointer stays correct across
 * tier-2 promotions with no extra protocol.
 */

#ifndef RISOTTO_DBT_TBCACHE_HH
#define RISOTTO_DBT_TBCACHE_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "aarch/emitter.hh"
#include "dbt/tier.hh"
#include "gx86/isa.hh"

namespace risotto::dbt
{

/** Metadata of one cached translation. */
struct TbInfo
{
    /** Host entry address of the current translation. */
    aarch::CodeAddr entry = 0;

    /** Host words occupied by the translation. */
    std::uint32_t hostWords = 0;

    /** Tier the current translation was produced at. */
    Tier tier = Tier::Baseline;

    /** ExitTb/chain resolutions that targeted this block. */
    std::uint64_t execCount = 0;

    /** Tier-2 promotion was attempted and aborted; do not retry until
     * the next cache flush resets the profile. */
    bool promotionFailed = false;

    /** Chain successors observed at resolution time: (pc, count). */
    std::vector<std::pair<gx86::Addr, std::uint64_t>> successors;

    /** Superblock region members in execution order (the promotion
     * path); empty for single-block translations. Persisted snapshots
     * use it to re-derive the superblock's IR deterministically. */
    std::vector<gx86::Addr> path;
};

/**
 * A caller-owned direct-mapped dispatch cache for concurrent read-only
 * lookups against one frozen TranslationCache.
 *
 * The internal jump cache (and the mutable hit/miss counters behind it)
 * make even const find() a write, so concurrent sessions sharing a
 * prepared cache would race. findShared() instead threads all mutable
 * dispatch state through one of these, which each session owns
 * privately: the shared cache is touched strictly read-only.
 */
class SessionJumpCache
{
  public:
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    friend class TranslationCache;

    static constexpr std::size_t Bits = 10;
    static constexpr std::size_t Size = std::size_t{1} << Bits;

    struct Entry
    {
        gx86::Addr pc = 0;
        const TbInfo *tb = nullptr;
    };

    std::array<Entry, Size> entries_{};
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/** One row of a hottest-blocks report. */
struct HotBlock
{
    gx86::Addr guestPc = 0;
    std::uint64_t execCount = 0;
    Tier tier = Tier::Baseline;
};

/** Generation-aware cache of translated blocks, keyed by guest pc. */
class TranslationCache
{
  public:
    explicit TranslationCache(std::size_t expected_blocks = 1024);

    /** Lookup; null when the block has no live translation. */
    TbInfo *find(gx86::Addr pc);
    const TbInfo *find(gx86::Addr pc) const;

    /**
     * Thread-safe read-only lookup for sessions sharing a frozen cache:
     * touches no member of this object that is not immutable for the
     * call (in particular, neither the internal jump cache nor the
     * hit/miss counters). All dispatch acceleration lives in the
     * caller's @p session cache. Callers must not mutate the cache
     * (insert/promote/flush) while shared lookups are in flight.
     */
    const TbInfo *findShared(gx86::Addr pc,
                             SessionJumpCache &session) const;

    /** Register a fresh translation. The translation itself (entry,
     * size, tier) is replaced, but the block's execution profile
     * (execCount, chain successors) survives re-translation: guarded
     * retry and fault-recovery paths retranslate hot blocks, and
     * zeroing their profile would silently demote them below the
     * tier-2 threshold. */
    TbInfo &insert(gx86::Addr pc, aarch::CodeAddr entry,
                   std::uint32_t host_words, Tier tier);

    /** Swap an existing entry's translation for a higher-tier one,
     * keeping its execution profile. */
    TbInfo &promote(gx86::Addr pc, aarch::CodeAddr entry,
                    std::uint32_t host_words, Tier tier);

    /** Count one resolution of @p pc; returns the new count (0 when the
     * block is not cached -- untranslatable blocks carry no profile). */
    std::uint64_t noteExecution(gx86::Addr pc);

    /** Record that an exit of block @p from resolved to block @p to. */
    void recordSuccessor(gx86::Addr from, gx86::Addr to);

    /**
     * The straight-line hot path starting at @p head: greedily follow
     * each block's hottest recorded successor, stopping at blocks with
     * no profile, at @p max_blocks, or when the path would revisit a
     * member (loop closure).
     */
    std::vector<gx86::Addr> hotPath(gx86::Addr head,
                                    std::size_t max_blocks) const;

    /** The @p n hottest blocks by execution count, descending. */
    std::vector<HotBlock> hottest(std::size_t n) const;

    /** Drop every entry and start a new generation. */
    void flush();

    /** Bumped on every flush; callers use it to detect invalidation. */
    std::uint64_t generation() const { return generation_; }

    std::size_t size() const { return tbs_.size(); }

    /** Every cached block (snapshot export / reporting). */
    const std::unordered_map<gx86::Addr, TbInfo> &all() const
    {
        return tbs_;
    }

    /** find() calls answered by the direct-mapped jump cache. */
    std::uint64_t jumpCacheHits() const { return jumpCacheHits_; }

    /** find() calls that had to fall back to the unordered_map. */
    std::uint64_t jumpCacheMisses() const { return jumpCacheMisses_; }

  private:
    /** Direct-mapped dispatch cache, 2^10 entries. */
    static constexpr std::size_t JumpCacheBits = 10;
    static constexpr std::size_t JumpCacheSize = 1u << JumpCacheBits;

    struct JumpCacheEntry
    {
        gx86::Addr pc = 0;
        TbInfo *tb = nullptr;
    };

    static std::size_t
    jumpCacheIndex(gx86::Addr pc)
    {
        // Fold the bits above the index into it: sequential block
        // addresses (low-entropy high bits) must not all collide.
        return (pc ^ (pc >> JumpCacheBits)) & (JumpCacheSize - 1);
    }

    void
    jumpCacheFill(gx86::Addr pc, TbInfo *tb)
    {
        jumpCache_[jumpCacheIndex(pc)] = {pc, tb};
    }

    std::unordered_map<gx86::Addr, TbInfo> tbs_;
    std::array<JumpCacheEntry, JumpCacheSize> jumpCache_{};
    std::uint64_t generation_ = 0;
    mutable std::uint64_t jumpCacheHits_ = 0;
    mutable std::uint64_t jumpCacheMisses_ = 0;
};

} // namespace risotto::dbt

#endif // RISOTTO_DBT_TBCACHE_HH
