#include "dbt/fallback.hh"

#include "dbt/frontend.hh"
#include "dbt/softfloat.hh"
#include "support/error.hh"
#include "support/format.hh"
#include "tcg/ir.hh"

namespace risotto::dbt
{

using gx86::Addr;
using gx86::DecodedEntry;
using gx86::DecodedSegment;
using gx86::DispatchOp;
using gx86::DispatchOpCount;
using gx86::Instruction;
using gx86::Opcode;
using machine::Core;
using machine::Machine;

namespace
{

/** Guest flags live in X16/X17 as 0/1, exactly as translated code keeps
 * them (tcg::TempZf / tcg::TempSf map to those host registers). */
void
setGuestFlags(Core &core, std::uint64_t value)
{
    core.x[tcg::TempZf] = value == 0 ? 1 : 0;
    core.x[tcg::TempSf] = static_cast<std::int64_t>(value) < 0 ? 1 : 0;
}

/** Full-fence bracket: drain the store buffer and pay the DMB cost. */
void
fullFence(Core &core, Machine &machine)
{
    machine.flushStoreBuffer(core);
    core.cycles += machine.config().costs.dmbFull;
}

/** Write-through store: buffered write immediately drained, so stores
 * within the interpreted block are visible in program order (SC, which
 * only strengthens the guest's TSO). */
void
storeThrough(Core &core, Machine &machine, std::uint64_t addr,
             std::uint8_t size, std::uint64_t value)
{
    machine.memWrite(core, addr, size, value);
    machine.flushStoreBuffer(core);
}

std::uint64_t
sext32(std::int32_t off)
{
    return static_cast<std::uint64_t>(static_cast<std::int64_t>(off));
}

} // namespace

// Threaded dispatch (see src/gx86/interp.cc for the pattern): computed
// goto under GCC/Clang, an equivalent tight switch elsewhere; one set
// of handler bodies serves both through the CASE/NEXT macros.
#if defined(__GNUC__) || defined(__clang__)
#define RISOTTO_FALLBACK_COMPUTED_GOTO 1
#else
#define RISOTTO_FALLBACK_COMPUTED_GOTO 0
#endif

std::uint64_t
interpretBlock(const gx86::GuestImage &image, const DbtConfig &config,
               const ImportResolver *resolver, HostCallHandler *hostcalls,
               const DecodedSegment *segment, std::uint64_t pc, Core &core,
               Machine &machine, StatSet &stats)
{
    const machine::CostModel &c = machine.config().costs;
    fullFence(core, machine);
    stats.bump("dbt.fallback_fences");

    Addr cur = pc;
    Addr next = 0;
    bool ends = false;
    std::size_t count = 0;

    // Scratch entry for legacy mode (decode per dispatch) and for a
    // fused pair downgraded to its first member at the block cap.
    DecodedEntry local;
    const DecodedEntry *e = nullptr;

    auto ea = [&](const Instruction &in) {
        return core.x[in.rb] + sext32(in.off);
    };
    auto downgrade = [&](const Instruction &in) {
        local.first = in;
        local.handler =
            static_cast<std::uint8_t>(gx86::dispatchOpFor(in.op));
        local.count = 1;
        local.totalLength = in.length;
        local.endsBlock = gx86::opEndsBlock(in.op);
        return &local;
    };
    auto fetch = [&]() -> const DecodedEntry * {
        if (!image.inText(cur))
            throw GuestFault("interpreting outside text at " +
                             hexString(cur));
        if (segment) {
            const DecodedEntry *entry = segment->entry(cur);
            panicIf(!entry, "segment/text bounds disagree");
            if (entry->fused() &&
                count + 2 > Frontend::MaxBlockInstructions)
                return downgrade(entry->first);
            return entry;
        }
        return downgrade(image.decodeAt(cur));
    };
    auto retire = [&]() {
        ++count;
        stats.bump("dbt.fallback_instructions");
    };

#if RISOTTO_FALLBACK_COMPUTED_GOTO
    static const void *const table[DispatchOpCount] = {
        &&L_Nop,          &&L_Hlt,          &&L_MovRI,
        &&L_MovRR,        &&L_Load,         &&L_Store,
        &&L_StoreI,       &&L_Load8,        &&L_Store8,
        &&L_Add,          &&L_Sub,          &&L_And,
        &&L_Or,           &&L_Xor,          &&L_Mul,
        &&L_Udiv,         &&L_AddI,         &&L_SubI,
        &&L_AndI,         &&L_OrI,          &&L_XorI,
        &&L_MulI,         &&L_ShlI,         &&L_ShrI,
        &&L_CmpRR,        &&L_CmpRI,        &&L_Jmp,
        &&L_Jcc,          &&L_Call,         &&L_Ret,
        &&L_PltCall,      &&L_LockCmpxchg,  &&L_LockXadd,
        &&L_MFence,       &&L_FAdd,         &&L_FSub,
        &&L_FMul,         &&L_FDiv,         &&L_FSqrt,
        &&L_CvtIF,        &&L_CvtFI,        &&L_Syscall,
        &&L_FusedCmpRRJcc, &&L_FusedCmpRIJcc, &&L_FusedMovRIAlu,
        &&L_FusedIncDec,  &&L_FusedStoreLoad, &&L_Invalid,
    };
#define RISOTTO_CASE(name) L_##name:
#define RISOTTO_NEXT()                                                  \
    do {                                                                \
        cur = next;                                                     \
        goto fetch_next;                                                \
    } while (0)

fetch_next:
    if (ends || count >= Frontend::MaxBlockInstructions) {
        fullFence(core, machine);
        return cur;
    }
    e = fetch();
    next = cur + e->totalLength;
    goto *table[e->handler];
#else
#define RISOTTO_CASE(name) case DispatchOp::name:
#define RISOTTO_NEXT()                                                  \
    do {                                                                \
        cur = next;                                                     \
        continue;                                                       \
    } while (0)

    for (;;) {
        if (ends || count >= Frontend::MaxBlockInstructions) {
            fullFence(core, machine);
            return cur;
        }
        e = fetch();
        next = cur + e->totalLength;
        switch (static_cast<DispatchOp>(e->handler)) {
#endif

    RISOTTO_CASE(Nop)
    {
        retire();
        core.cycles += c.alu;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Hlt)
    {
        retire();
        fullFence(core, machine);
        return HaltPc;
    }
    RISOTTO_CASE(MovRI)
    {
        retire();
        core.x[e->first.rd] = static_cast<std::uint64_t>(e->first.imm);
        core.cycles += c.alu;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(MovRR)
    {
        retire();
        core.x[e->first.rd] = core.x[e->first.rs];
        core.cycles += c.alu;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Load)
    {
        retire();
        core.x[e->first.rd] = machine.memRead(core, ea(e->first), 8);
        core.cycles += c.load;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Store)
    {
        retire();
        storeThrough(core, machine, ea(e->first), 8,
                     core.x[e->first.rs]);
        core.cycles += c.store;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(StoreI)
    {
        retire();
        storeThrough(core, machine, ea(e->first), 8,
                     static_cast<std::uint64_t>(e->first.imm));
        core.cycles += c.store;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Load8)
    {
        retire();
        core.x[e->first.rd] = machine.memRead(core, ea(e->first), 1);
        core.cycles += c.load;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Store8)
    {
        retire();
        storeThrough(core, machine, ea(e->first), 1,
                     core.x[e->first.rs]);
        core.cycles += c.store;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Add)
    {
        retire();
        core.x[e->first.rd] += core.x[e->first.rs];
        setGuestFlags(core, core.x[e->first.rd]);
        core.cycles += c.alu;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Sub)
    {
        retire();
        core.x[e->first.rd] -= core.x[e->first.rs];
        setGuestFlags(core, core.x[e->first.rd]);
        core.cycles += c.alu;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(And)
    {
        retire();
        core.x[e->first.rd] &= core.x[e->first.rs];
        setGuestFlags(core, core.x[e->first.rd]);
        core.cycles += c.alu;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Or)
    {
        retire();
        core.x[e->first.rd] |= core.x[e->first.rs];
        setGuestFlags(core, core.x[e->first.rd]);
        core.cycles += c.alu;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Xor)
    {
        retire();
        core.x[e->first.rd] ^= core.x[e->first.rs];
        setGuestFlags(core, core.x[e->first.rd]);
        core.cycles += c.alu;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Mul)
    {
        retire();
        core.x[e->first.rd] *= core.x[e->first.rs];
        setGuestFlags(core, core.x[e->first.rd]);
        core.cycles += c.alu + 2;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Udiv)
    {
        retire();
        if (core.x[e->first.rs] == 0)
            throw GuestFault("host udiv by zero");
        core.x[e->first.rd] /= core.x[e->first.rs];
        setGuestFlags(core, core.x[e->first.rd]);
        core.cycles += c.alu + 12;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(AddI)
    {
        retire();
        core.x[e->first.rd] += static_cast<std::uint64_t>(e->first.imm);
        setGuestFlags(core, core.x[e->first.rd]);
        core.cycles += c.alu;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(SubI)
    {
        retire();
        core.x[e->first.rd] -= static_cast<std::uint64_t>(e->first.imm);
        setGuestFlags(core, core.x[e->first.rd]);
        core.cycles += c.alu;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(AndI)
    {
        retire();
        core.x[e->first.rd] &= static_cast<std::uint64_t>(e->first.imm);
        setGuestFlags(core, core.x[e->first.rd]);
        core.cycles += c.alu;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(OrI)
    {
        retire();
        core.x[e->first.rd] |= static_cast<std::uint64_t>(e->first.imm);
        setGuestFlags(core, core.x[e->first.rd]);
        core.cycles += c.alu;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(XorI)
    {
        retire();
        core.x[e->first.rd] ^= static_cast<std::uint64_t>(e->first.imm);
        setGuestFlags(core, core.x[e->first.rd]);
        core.cycles += c.alu;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(MulI)
    {
        retire();
        core.x[e->first.rd] *= static_cast<std::uint64_t>(e->first.imm);
        setGuestFlags(core, core.x[e->first.rd]);
        core.cycles += c.alu + 2;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(ShlI)
    {
        retire();
        core.x[e->first.rd] <<= (e->first.imm & 63);
        setGuestFlags(core, core.x[e->first.rd]);
        core.cycles += c.alu;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(ShrI)
    {
        retire();
        core.x[e->first.rd] >>= (e->first.imm & 63);
        setGuestFlags(core, core.x[e->first.rd]);
        core.cycles += c.alu;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(CmpRR)
    {
        retire();
        setGuestFlags(core, core.x[e->first.rd] - core.x[e->first.rs]);
        core.cycles += c.alu;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(CmpRI)
    {
        retire();
        setGuestFlags(core, core.x[e->first.rd] -
                                static_cast<std::uint64_t>(e->first.imm));
        core.cycles += c.alu;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Jmp)
    {
        retire();
        core.cycles += c.branch + c.branchTakenExtra;
        next += sext32(e->first.off);
        ends = true;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Jcc)
    {
        retire();
        core.cycles += c.branch;
        if (gx86::condHolds(e->first.cond, core.x[tcg::TempZf] != 0,
                            core.x[tcg::TempSf] != 0)) {
            next += sext32(e->first.off);
            core.cycles += c.branchTakenExtra;
        }
        ends = true;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Call)
    {
        retire();
        core.x[gx86::Rsp] -= 8;
        storeThrough(core, machine, core.x[gx86::Rsp], 8, next);
        core.cycles += c.store + c.branch + c.branchTakenExtra;
        next += sext32(e->first.off);
        ends = true;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Ret)
    {
        retire();
        next = machine.memRead(core, core.x[gx86::Rsp], 8);
        core.x[gx86::Rsp] += 8;
        core.cycles += c.load + c.branch;
        ends = true;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(PltCall)
    {
        retire();
        if (e->first.sym >= image.dynsym.size())
            throw GuestFault("bad dynamic symbol index at " +
                             hexString(cur));
        const gx86::DynSymbol &dyn = image.dynsym[e->first.sym];
        std::optional<std::uint16_t> host;
        if (config.hostLinker && resolver)
            host = resolver->resolve(dyn.name);
        if (host) {
            panicIf(!hostcalls, "host call without a handler");
            core.cycles += c.helperCall;
            core.cycles +=
                hostcalls->invokeHostFunction(*host, core, machine);
            stats.bump("dbt.host_calls");
        } else if (dyn.guestImpl != 0) {
            next = dyn.guestImpl;
            core.cycles += c.branch + c.branchTakenExtra;
        } else {
            throw GuestFault("unresolved import '" + dyn.name + "' at " +
                             hexString(cur));
        }
        ends = true;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(LockCmpxchg)
    {
        // Same semantics as the translated CAS / CasHelper path:
        // R0 <- old, ZF <- (old == expected), SF untouched.
        retire();
        const std::uint64_t addr = ea(e->first);
        const std::uint64_t expected = core.x[0];
        machine.flushStoreBuffer(core);
        core.cycles += c.casBase + machine.atomicAccessCost(core, addr);
        const std::uint64_t old = machine.memory().load64(addr);
        if (old == expected)
            machine.directWrite(core, addr, 8, core.x[e->first.rs]);
        core.x[0] = old;
        core.x[tcg::TempZf] = old == expected ? 1 : 0;
        machine.stats().bump("machine.cas_ops");
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(LockXadd)
    {
        retire();
        const std::uint64_t addr = ea(e->first);
        machine.flushStoreBuffer(core);
        core.cycles += c.casBase + machine.atomicAccessCost(core, addr);
        const std::uint64_t old = machine.memory().load64(addr);
        machine.directWrite(core, addr, 8, old + core.x[e->first.rs]);
        core.x[e->first.rs] = old;
        machine.stats().bump("machine.atomic_adds");
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(MFence)
    {
        retire();
        fullFence(core, machine);
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(FAdd)
    {
        retire();
        const auto r =
            softfloat::add64(core.x[e->first.rd], core.x[e->first.rs]);
        core.x[e->first.rd] = r.bits;
        core.cycles += c.helperCall + r.cycles;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(FSub)
    {
        retire();
        const auto r =
            softfloat::sub64(core.x[e->first.rd], core.x[e->first.rs]);
        core.x[e->first.rd] = r.bits;
        core.cycles += c.helperCall + r.cycles;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(FMul)
    {
        retire();
        const auto r =
            softfloat::mul64(core.x[e->first.rd], core.x[e->first.rs]);
        core.x[e->first.rd] = r.bits;
        core.cycles += c.helperCall + r.cycles;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(FDiv)
    {
        retire();
        const auto r =
            softfloat::div64(core.x[e->first.rd], core.x[e->first.rs]);
        core.x[e->first.rd] = r.bits;
        core.cycles += c.helperCall + r.cycles;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(FSqrt)
    {
        retire();
        const auto r = softfloat::sqrt64(core.x[e->first.rs]);
        core.x[e->first.rd] = r.bits;
        core.cycles += c.helperCall + r.cycles;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(CvtIF)
    {
        retire();
        const auto r = softfloat::fromInt64(core.x[e->first.rs]);
        core.x[e->first.rd] = r.bits;
        core.cycles += c.helperCall + r.cycles;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(CvtFI)
    {
        retire();
        const auto r = softfloat::toInt64(core.x[e->first.rs]);
        core.x[e->first.rd] = r.bits;
        core.cycles += c.helperCall + r.cycles;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Syscall)
    {
        // Same semantics as the Syscall helper in the DBT runtime.
        retire();
        core.cycles += c.helperCall + 20;
        switch (core.x[0]) {
          case 0: // exit(code = g1)
            core.exitCode = static_cast<std::int64_t>(core.x[1]);
            core.halted = true;
            fullFence(core, machine);
            return HaltPc;
          case 1: // putchar(g1)
            core.output.push_back(static_cast<char>(core.x[1]));
            break;
          case 2: // cycle counter into g0
            core.x[0] = core.cycles;
            break;
          default:
            throw GuestFault("unknown guest syscall " +
                             std::to_string(core.x[0]));
        }
        ends = true;
    }
        RISOTTO_NEXT();

    // --- Fused pairs: both members in one dispatch. Cycle charges,
    // flags, counters and the block-end decision are exactly the sums
    // of the two unfused handlers, so fusion is invisible to guest
    // state, the cycle-accurate machine and the stat set alike.
    RISOTTO_CASE(FusedCmpRRJcc)
    {
        retire();
        setGuestFlags(core, core.x[e->first.rd] - core.x[e->first.rs]);
        core.cycles += c.alu;
        retire();
        core.cycles += c.branch;
        if (gx86::condHolds(e->second.cond, core.x[tcg::TempZf] != 0,
                            core.x[tcg::TempSf] != 0)) {
            next += sext32(e->second.off);
            core.cycles += c.branchTakenExtra;
        }
        ends = true;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(FusedCmpRIJcc)
    {
        retire();
        setGuestFlags(core, core.x[e->first.rd] -
                                static_cast<std::uint64_t>(e->first.imm));
        core.cycles += c.alu;
        retire();
        core.cycles += c.branch;
        if (gx86::condHolds(e->second.cond, core.x[tcg::TempZf] != 0,
                            core.x[tcg::TempSf] != 0)) {
            next += sext32(e->second.off);
            core.cycles += c.branchTakenExtra;
        }
        ends = true;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(FusedMovRIAlu)
    {
        retire();
        core.x[e->first.rd] = static_cast<std::uint64_t>(e->first.imm);
        core.cycles += c.alu;
        retire();
        const Instruction &alu = e->second;
        switch (alu.op) {
          case Opcode::Add: core.x[alu.rd] += core.x[alu.rs]; break;
          case Opcode::Sub: core.x[alu.rd] -= core.x[alu.rs]; break;
          case Opcode::And: core.x[alu.rd] &= core.x[alu.rs]; break;
          case Opcode::Or: core.x[alu.rd] |= core.x[alu.rs]; break;
          case Opcode::Xor: core.x[alu.rd] ^= core.x[alu.rs]; break;
          default: core.x[alu.rd] *= core.x[alu.rs]; break; // Mul
        }
        setGuestFlags(core, core.x[alu.rd]);
        core.cycles += alu.op == Opcode::Mul ? c.alu + 2 : c.alu;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(FusedIncDec)
    {
        retire();
        core.x[e->first.rd] +=
            e->first.op == Opcode::AddI
                ? static_cast<std::uint64_t>(e->first.imm)
                : 0 - static_cast<std::uint64_t>(e->first.imm);
        core.cycles += c.alu;
        retire();
        core.x[e->second.rd] +=
            e->second.op == Opcode::AddI
                ? static_cast<std::uint64_t>(e->second.imm)
                : 0 - static_cast<std::uint64_t>(e->second.imm);
        setGuestFlags(core, core.x[e->second.rd]);
        core.cycles += c.alu;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(FusedStoreLoad)
    {
        retire();
        storeThrough(core, machine, ea(e->first), 8,
                     e->first.op == Opcode::Store
                         ? core.x[e->first.rs]
                         : static_cast<std::uint64_t>(e->first.imm));
        core.cycles += c.store;
        retire();
        core.x[e->second.rd] = machine.memRead(core, ea(e->second), 8);
        core.cycles += c.load;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Invalid)
    {
        // Re-run the decoder to surface the exact fault.
        image.decodeAt(cur);
        throw GuestFault("undecodable instruction at " + hexString(cur));
    }
        RISOTTO_NEXT();

#if !RISOTTO_FALLBACK_COMPUTED_GOTO
          case DispatchOp::Count_:
            throw GuestFault("corrupt dispatch entry");
        }
    }
#endif

#undef RISOTTO_CASE
#undef RISOTTO_NEXT
}

} // namespace risotto::dbt
