#include "dbt/fallback.hh"

#include "dbt/frontend.hh"
#include "dbt/softfloat.hh"
#include "gx86/codec.hh"
#include "support/error.hh"
#include "support/format.hh"
#include "tcg/ir.hh"

namespace risotto::dbt
{

using gx86::Addr;
using gx86::Instruction;
using gx86::Opcode;
using machine::Core;
using machine::Machine;

namespace
{

/** Guest flags live in X16/X17 as 0/1, exactly as translated code keeps
 * them (tcg::TempZf / tcg::TempSf map to those host registers). */
void
setGuestFlags(Core &core, std::uint64_t value)
{
    core.x[tcg::TempZf] = value == 0 ? 1 : 0;
    core.x[tcg::TempSf] = static_cast<std::int64_t>(value) < 0 ? 1 : 0;
}

/** Full-fence bracket: drain the store buffer and pay the DMB cost. */
void
fullFence(Core &core, Machine &machine)
{
    machine.flushStoreBuffer(core);
    core.cycles += machine.config().costs.dmbFull;
}

/** Write-through store: buffered write immediately drained, so stores
 * within the interpreted block are visible in program order (SC, which
 * only strengthens the guest's TSO). */
void
storeThrough(Core &core, Machine &machine, std::uint64_t addr,
             std::uint8_t size, std::uint64_t value)
{
    machine.memWrite(core, addr, size, value);
    machine.flushStoreBuffer(core);
}

} // namespace

std::uint64_t
interpretBlock(const gx86::GuestImage &image, const DbtConfig &config,
               const ImportResolver *resolver, HostCallHandler *hostcalls,
               std::uint64_t pc, Core &core, Machine &machine,
               StatSet &stats)
{
    const machine::CostModel &c = machine.config().costs;
    fullFence(core, machine);
    stats.bump("dbt.fallback_fences");

    Addr cur = pc;
    bool ends = false;
    std::size_t count = 0;
    while (!ends && count < Frontend::MaxBlockInstructions) {
        if (!image.inText(cur))
            throw GuestFault("interpreting outside text at " +
                             hexString(cur));
        const Instruction in =
            gx86::decode(image.text.data() + (cur - image.textBase),
                         image.textEnd() - cur);
        Addr next = cur + in.length;
        ++count;
        stats.bump("dbt.fallback_instructions");

        auto ea = [&]() {
            return core.x[in.rb] + static_cast<std::uint64_t>(
                                       static_cast<std::int64_t>(in.off));
        };
        auto branchTarget = [&](std::int32_t off) {
            return next + static_cast<std::uint64_t>(
                              static_cast<std::int64_t>(off));
        };

        switch (in.op) {
          case Opcode::Nop:
            core.cycles += c.alu;
            break;
          case Opcode::Hlt:
            fullFence(core, machine);
            return HaltPc;
          case Opcode::MovRI:
            core.x[in.rd] = static_cast<std::uint64_t>(in.imm);
            core.cycles += c.alu;
            break;
          case Opcode::MovRR:
            core.x[in.rd] = core.x[in.rs];
            core.cycles += c.alu;
            break;
          case Opcode::Load:
            core.x[in.rd] = machine.memRead(core, ea(), 8);
            core.cycles += c.load;
            break;
          case Opcode::Load8:
            core.x[in.rd] = machine.memRead(core, ea(), 1);
            core.cycles += c.load;
            break;
          case Opcode::Store:
            storeThrough(core, machine, ea(), 8, core.x[in.rs]);
            core.cycles += c.store;
            break;
          case Opcode::Store8:
            storeThrough(core, machine, ea(), 1, core.x[in.rs]);
            core.cycles += c.store;
            break;
          case Opcode::StoreI:
            storeThrough(core, machine, ea(), 8,
                         static_cast<std::uint64_t>(in.imm));
            core.cycles += c.store;
            break;
          case Opcode::Add:
            core.x[in.rd] += core.x[in.rs];
            setGuestFlags(core, core.x[in.rd]);
            core.cycles += c.alu;
            break;
          case Opcode::Sub:
            core.x[in.rd] -= core.x[in.rs];
            setGuestFlags(core, core.x[in.rd]);
            core.cycles += c.alu;
            break;
          case Opcode::And:
            core.x[in.rd] &= core.x[in.rs];
            setGuestFlags(core, core.x[in.rd]);
            core.cycles += c.alu;
            break;
          case Opcode::Or:
            core.x[in.rd] |= core.x[in.rs];
            setGuestFlags(core, core.x[in.rd]);
            core.cycles += c.alu;
            break;
          case Opcode::Xor:
            core.x[in.rd] ^= core.x[in.rs];
            setGuestFlags(core, core.x[in.rd]);
            core.cycles += c.alu;
            break;
          case Opcode::Mul:
            core.x[in.rd] *= core.x[in.rs];
            setGuestFlags(core, core.x[in.rd]);
            core.cycles += c.alu + 2;
            break;
          case Opcode::Udiv:
            if (core.x[in.rs] == 0)
                throw GuestFault("host udiv by zero");
            core.x[in.rd] /= core.x[in.rs];
            setGuestFlags(core, core.x[in.rd]);
            core.cycles += c.alu + 12;
            break;
          case Opcode::AddI:
            core.x[in.rd] += static_cast<std::uint64_t>(in.imm);
            setGuestFlags(core, core.x[in.rd]);
            core.cycles += c.alu;
            break;
          case Opcode::SubI:
            core.x[in.rd] -= static_cast<std::uint64_t>(in.imm);
            setGuestFlags(core, core.x[in.rd]);
            core.cycles += c.alu;
            break;
          case Opcode::AndI:
            core.x[in.rd] &= static_cast<std::uint64_t>(in.imm);
            setGuestFlags(core, core.x[in.rd]);
            core.cycles += c.alu;
            break;
          case Opcode::OrI:
            core.x[in.rd] |= static_cast<std::uint64_t>(in.imm);
            setGuestFlags(core, core.x[in.rd]);
            core.cycles += c.alu;
            break;
          case Opcode::XorI:
            core.x[in.rd] ^= static_cast<std::uint64_t>(in.imm);
            setGuestFlags(core, core.x[in.rd]);
            core.cycles += c.alu;
            break;
          case Opcode::MulI:
            core.x[in.rd] *= static_cast<std::uint64_t>(in.imm);
            setGuestFlags(core, core.x[in.rd]);
            core.cycles += c.alu + 2;
            break;
          case Opcode::ShlI:
            core.x[in.rd] <<= (in.imm & 63);
            setGuestFlags(core, core.x[in.rd]);
            core.cycles += c.alu;
            break;
          case Opcode::ShrI:
            core.x[in.rd] >>= (in.imm & 63);
            setGuestFlags(core, core.x[in.rd]);
            core.cycles += c.alu;
            break;
          case Opcode::CmpRR:
            setGuestFlags(core, core.x[in.rd] - core.x[in.rs]);
            core.cycles += c.alu;
            break;
          case Opcode::CmpRI:
            setGuestFlags(core, core.x[in.rd] -
                                    static_cast<std::uint64_t>(in.imm));
            core.cycles += c.alu;
            break;
          case Opcode::Jmp:
            core.cycles += c.branch + c.branchTakenExtra;
            next = branchTarget(in.off);
            ends = true;
            break;
          case Opcode::Jcc:
            core.cycles += c.branch;
            if (gx86::condHolds(in.cond, core.x[tcg::TempZf] != 0,
                                core.x[tcg::TempSf] != 0)) {
                next = branchTarget(in.off);
                core.cycles += c.branchTakenExtra;
            }
            ends = true;
            break;
          case Opcode::Call:
            core.x[gx86::Rsp] -= 8;
            storeThrough(core, machine, core.x[gx86::Rsp], 8, next);
            core.cycles += c.store + c.branch + c.branchTakenExtra;
            next = branchTarget(in.off);
            ends = true;
            break;
          case Opcode::Ret:
            next = machine.memRead(core, core.x[gx86::Rsp], 8);
            core.x[gx86::Rsp] += 8;
            core.cycles += c.load + c.branch;
            ends = true;
            break;
          case Opcode::PltCall: {
            if (in.sym >= image.dynsym.size())
                throw GuestFault("bad dynamic symbol index at " +
                                 hexString(cur));
            const gx86::DynSymbol &dyn = image.dynsym[in.sym];
            std::optional<std::uint16_t> host;
            if (config.hostLinker && resolver)
                host = resolver->resolve(dyn.name);
            if (host) {
                panicIf(!hostcalls, "host call without a handler");
                core.cycles += c.helperCall;
                core.cycles +=
                    hostcalls->invokeHostFunction(*host, core, machine);
                stats.bump("dbt.host_calls");
            } else if (dyn.guestImpl != 0) {
                next = dyn.guestImpl;
                core.cycles += c.branch + c.branchTakenExtra;
            } else {
                throw GuestFault("unresolved import '" + dyn.name +
                                 "' at " + hexString(cur));
            }
            ends = true;
            break;
          }
          case Opcode::LockCmpxchg: {
            // Same semantics as the translated CAS / CasHelper path:
            // R0 <- old, ZF <- (old == expected), SF untouched.
            const std::uint64_t addr = ea();
            const std::uint64_t expected = core.x[0];
            machine.flushStoreBuffer(core);
            core.cycles += c.casBase + machine.atomicAccessCost(core, addr);
            const std::uint64_t old = machine.memory().load64(addr);
            if (old == expected)
                machine.directWrite(core, addr, 8, core.x[in.rs]);
            core.x[0] = old;
            core.x[tcg::TempZf] = old == expected ? 1 : 0;
            machine.stats().bump("machine.cas_ops");
            break;
          }
          case Opcode::LockXadd: {
            const std::uint64_t addr = ea();
            machine.flushStoreBuffer(core);
            core.cycles += c.casBase + machine.atomicAccessCost(core, addr);
            const std::uint64_t old = machine.memory().load64(addr);
            machine.directWrite(core, addr, 8, old + core.x[in.rs]);
            core.x[in.rs] = old;
            machine.stats().bump("machine.atomic_adds");
            break;
          }
          case Opcode::MFence:
            fullFence(core, machine);
            break;
          case Opcode::FAdd: {
            const auto r = softfloat::add64(core.x[in.rd], core.x[in.rs]);
            core.x[in.rd] = r.bits;
            core.cycles += c.helperCall + r.cycles;
            break;
          }
          case Opcode::FSub: {
            const auto r = softfloat::sub64(core.x[in.rd], core.x[in.rs]);
            core.x[in.rd] = r.bits;
            core.cycles += c.helperCall + r.cycles;
            break;
          }
          case Opcode::FMul: {
            const auto r = softfloat::mul64(core.x[in.rd], core.x[in.rs]);
            core.x[in.rd] = r.bits;
            core.cycles += c.helperCall + r.cycles;
            break;
          }
          case Opcode::FDiv: {
            const auto r = softfloat::div64(core.x[in.rd], core.x[in.rs]);
            core.x[in.rd] = r.bits;
            core.cycles += c.helperCall + r.cycles;
            break;
          }
          case Opcode::FSqrt: {
            const auto r = softfloat::sqrt64(core.x[in.rs]);
            core.x[in.rd] = r.bits;
            core.cycles += c.helperCall + r.cycles;
            break;
          }
          case Opcode::CvtIF: {
            const auto r = softfloat::fromInt64(core.x[in.rs]);
            core.x[in.rd] = r.bits;
            core.cycles += c.helperCall + r.cycles;
            break;
          }
          case Opcode::CvtFI: {
            const auto r = softfloat::toInt64(core.x[in.rs]);
            core.x[in.rd] = r.bits;
            core.cycles += c.helperCall + r.cycles;
            break;
          }
          case Opcode::Syscall:
            // Same semantics as the Syscall helper in the DBT runtime.
            core.cycles += c.helperCall + 20;
            switch (core.x[0]) {
              case 0: // exit(code = g1)
                core.exitCode = static_cast<std::int64_t>(core.x[1]);
                core.halted = true;
                fullFence(core, machine);
                return HaltPc;
              case 1: // putchar(g1)
                core.output.push_back(static_cast<char>(core.x[1]));
                break;
              case 2: // cycle counter into g0
                core.x[0] = core.cycles;
                break;
              default:
                throw GuestFault("unknown guest syscall " +
                                 std::to_string(core.x[0]));
            }
            ends = true;
            break;
        }
        cur = next;
    }
    fullFence(core, machine);
    return cur;
}

} // namespace risotto::dbt
