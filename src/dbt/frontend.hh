/**
 * @file
 * DBT frontend: gx86 basic blocks -> TCG IR.
 *
 * Implements the x86 -> TCG IR half of the mapping schemes: QEMU's
 * leading Fmr/Fmw fences (Figure 2), the fence-free oracle, and Risotto's
 * verified trailing-Frm / leading-Fww scheme (Figure 7a). RMWs become
 * either QEMU-style helper calls or first-class Cas/Xadd IR ops for the
 * direct translation of Section 6.3. Floating point lowers to soft-float
 * helper calls, as in QEMU.
 */

#ifndef RISOTTO_DBT_FRONTEND_HH
#define RISOTTO_DBT_FRONTEND_HH

#include "analysis/analyzer.hh"
#include "dbt/config.hh"
#include "dbt/resolver.hh"
#include "gx86/decoded.hh"
#include "gx86/image.hh"
#include "tcg/arena.hh"
#include "tcg/ir.hh"

namespace risotto::dbt
{

/** Sentinel guest pc meaning "halt this thread". */
constexpr std::uint64_t HaltPc = 0;

/** Translates guest basic blocks into TCG IR per the configured scheme. */
class Frontend
{
  public:
    Frontend(const gx86::GuestImage &image, const DbtConfig &config,
             const ImportResolver *resolver);

    /**
     * Decode and translate the basic block starting at @p pc.
     * @throws GuestFault on undecodable code or unresolvable imports.
     */
    tcg::Block translate(gx86::Addr pc) const;

    /**
     * Decode the guest instructions of the basic block at @p pc -- the
     * exact sequence translate() lowers (same block-end and size-cap
     * rules). Used by the translation validator to rebuild a block's
     * x86-TSO ordering obligations.
     * @throws GuestFault on undecodable code.
     */
    std::vector<gx86::Instruction> decodeBlock(gx86::Addr pc) const;

    /** Maximum guest instructions per block (QEMU-like TB size cap). */
    static constexpr std::size_t MaxBlockInstructions = 64;

    /**
     * Return a finished block's instruction storage to the arena so the
     * next translate() reuses its capacity instead of reallocating.
     * Callers that keep the block alive simply never recycle it.
     */
    void recycle(tcg::Block &&block) const { arena_.release(std::move(block)); }

    /** Mint a block from the arena without translating -- used by the
     * superblock tier to build spliced regions with pooled storage. */
    tcg::Block acquireBlock(gx86::Addr pc) const { return arena_.acquire(pc); }

    /** Arena statistics: blocks served allocation-free vs minted. */
    const tcg::BlockArena &arena() const { return arena_; }

    /**
     * Form blocks from @p segment's pre-decoded entries instead of
     * re-running the decoder (nullptr reverts to per-instruction
     * decode). Block formation always iterates *unfused* entries, so
     * the decoded instruction sequence -- and therefore every
     * translation and its validation -- is bit-identical with and
     * without the segment (and regardless of its fusion config).
     */
    void setSegment(const gx86::DecodedSegment *segment)
    {
        segment_ = segment;
    }

    /**
     * Attach the whole-image analysis result. With
     * config.analysisElide set, blocks the analysis classified Local
     * (provably no shared-memory ordering obligations) are translated
     * without their mapped acquire/release fences; everything else is
     * untouched. nullptr (the default) disables elision regardless of
     * config, so a Frontend without analysis emits exactly the
     * pre-analysis code.
     */
    void setAnalysis(const analysis::ImageAnalysis *a) { analysis_ = a; }

    /** Mapped fences elided from Local blocks so far (monotonic;
     * counts re-translations like every other translation counter). */
    std::uint64_t fencesElided() const { return fencesElided_; }

  private:
    void translateOne(tcg::Block &block, const gx86::Instruction &in,
                      gx86::Addr pc, gx86::Addr next, bool &ends,
                      bool elide) const;
    void emitFlagsFrom(tcg::Block &block, tcg::TempId value) const;
    void emitJcc(tcg::Block &block, gx86::Cond cond, std::uint64_t taken,
                 std::uint64_t fallthrough) const;

    const gx86::GuestImage &image_;
    const DbtConfig &config_;
    const ImportResolver *resolver_;
    const gx86::DecodedSegment *segment_ = nullptr;
    const analysis::ImageAnalysis *analysis_ = nullptr;
    mutable std::uint64_t fencesElided_ = 0;

    /** Pooled IR storage. Makes translate() non-reentrant: parallel
     * sweeps construct one Frontend per task. */
    mutable tcg::BlockArena arena_;
};

/**
 * Every statically reachable basic-block head of @p image, breadth-first
 * from the entry. Successors follow the frontend's block-end rules:
 * direct branch targets, the fall-through of conditional branches / plt
 * calls / syscalls / size-cap-ended blocks, and call return sites.
 * Undecodable heads are dropped (the interpreter surfaces those at
 * execution time). Shared by the risotto-run validation sweep and the
 * serving layer's cold prepare.
 */
std::vector<gx86::Addr>
reachableBlocks(const gx86::GuestImage &image, const DbtConfig &config,
                const gx86::DecodedSegment *segment = nullptr);

} // namespace risotto::dbt

#endif // RISOTTO_DBT_FRONTEND_HH
