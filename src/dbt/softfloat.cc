#include "dbt/softfloat.hh"

#include <cmath>
#include <cstring>

namespace risotto::dbt::softfloat
{

namespace
{

constexpr std::uint64_t SignMask = 0x8000'0000'0000'0000ULL;
constexpr std::uint64_t FracMask = 0x000f'ffff'ffff'ffffULL;
constexpr std::uint64_t ImplicitBit = 0x0010'0000'0000'0000ULL;
constexpr int ExpBits = 11;
constexpr int ExpMax = (1 << ExpBits) - 1; // 2047
constexpr int Bias = 1023;
constexpr std::uint64_t QuietNaN = 0x7ff8'0000'0000'0000ULL;

struct Unpacked
{
    bool sign;
    int exp;          ///< Biased exponent field.
    std::uint64_t frac;
    bool isZero;      ///< Includes flushed subnormals.
    bool isInf;
    bool isNaN;
    std::uint64_t mant; ///< 53-bit significand with implicit bit.
};

Unpacked
unpack(std::uint64_t bits)
{
    Unpacked u;
    u.sign = bits >> 63;
    u.exp = static_cast<int>((bits >> 52) & ExpMax);
    u.frac = bits & FracMask;
    u.isNaN = u.exp == ExpMax && u.frac != 0;
    u.isInf = u.exp == ExpMax && u.frac == 0;
    // Subnormals flush to zero (documented deviation from IEEE).
    u.isZero = u.exp == 0;
    u.mant = u.isZero ? 0 : (u.frac | ImplicitBit);
    return u;
}

std::uint64_t
packZero(bool sign)
{
    return sign ? SignMask : 0;
}

std::uint64_t
packInf(bool sign)
{
    return (sign ? SignMask : 0) | (static_cast<std::uint64_t>(ExpMax)
                                    << 52);
}

/**
 * Round and pack a significand.
 *
 * @param sign result sign.
 * @param exp biased exponent such that the value is mant * 2^(exp-1023-55)
 *        ... i.e. @p mant has the leading 1 at bit 55 (52 fraction bits
 *        plus guard, round, sticky).
 * @param mant 56-bit significand with 3 extra low bits (g/r/s).
 */
std::uint64_t
roundPack(bool sign, int exp, std::uint64_t mant)
{
    if (mant == 0)
        return packZero(sign);
    // Values normalized too high (carry out of an add): shift down,
    // folding lost bits into sticky.
    while (mant >> 56) {
        mant = (mant >> 1) | (mant & 1);
        ++exp;
    }
    // Normalize so the leading bit sits at position 55.
    while ((mant & (1ULL << 55)) == 0) {
        mant <<= 1;
        --exp;
    }
    // Round to nearest, ties to even.
    const std::uint64_t grs = mant & 7;
    mant >>= 3;
    if (grs > 4 || (grs == 4 && (mant & 1)))
        ++mant;
    if (mant & (1ULL << 53)) { // Rounding carried out.
        mant >>= 1;
        ++exp;
    }
    if (exp >= ExpMax)
        return packInf(sign);
    if (exp <= 0)
        return packZero(sign); // Flush-to-zero on underflow.
    return (sign ? SignMask : 0) |
           (static_cast<std::uint64_t>(exp) << 52) | (mant & FracMask);
}

std::uint64_t
addMagnitudes(bool sign, Unpacked big, Unpacked small)
{
    // big.exp >= small.exp; 3 guard bits.
    std::uint64_t mb = big.mant << 3;
    std::uint64_t ms = small.mant << 3;
    const int d = big.exp - small.exp;
    if (d >= 60) {
        ms = small.mant ? 1 : 0; // Pure sticky.
    } else if (d > 0) {
        const std::uint64_t lost = ms & ((1ULL << d) - 1);
        ms = (ms >> d) | (lost ? 1 : 0);
    }
    const std::uint64_t sum = mb + ms;
    return roundPack(sign, big.exp, sum);
}

std::uint64_t
subMagnitudes(Unpacked big, Unpacked small, bool sign_if_equal)
{
    // |big| >= |small| must hold except for equal magnitudes.
    std::uint64_t mb = big.mant << 3;
    std::uint64_t ms = small.mant << 3;
    const int d = big.exp - small.exp;
    if (d >= 60) {
        ms = small.mant ? 1 : 0;
    } else if (d > 0) {
        const std::uint64_t lost = ms & ((1ULL << d) - 1);
        ms = (ms >> d) | (lost ? 1 : 0);
    }
    if (d == 0 && mb == ms)
        return packZero(sign_if_equal);
    bool sign = big.sign;
    std::uint64_t diff;
    if (mb >= ms) {
        diff = mb - ms;
    } else {
        diff = ms - mb;
        sign = small.sign;
    }
    return roundPack(sign, big.exp, diff);
}

std::uint64_t
addImpl(std::uint64_t a_bits, std::uint64_t b_bits)
{
    Unpacked a = unpack(a_bits);
    Unpacked b = unpack(b_bits);
    if (a.isNaN || b.isNaN)
        return QuietNaN;
    if (a.isInf && b.isInf)
        return a.sign == b.sign ? packInf(a.sign) : QuietNaN;
    if (a.isInf)
        return packInf(a.sign);
    if (b.isInf)
        return packInf(b.sign);
    if (a.isZero && b.isZero)
        return packZero(a.sign && b.sign);
    if (a.isZero)
        return b_bits;
    if (b.isZero)
        return a_bits;
    // Order by magnitude.
    const bool a_big = (a.exp > b.exp) ||
                       (a.exp == b.exp && a.mant >= b.mant);
    const Unpacked &big = a_big ? a : b;
    const Unpacked &small = a_big ? b : a;
    if (a.sign == b.sign)
        return addMagnitudes(a.sign, big, small);
    return subMagnitudes(big, small, /*sign_if_equal=*/false);
}

std::uint64_t
mulImpl(std::uint64_t a_bits, std::uint64_t b_bits)
{
    Unpacked a = unpack(a_bits);
    Unpacked b = unpack(b_bits);
    const bool sign = a.sign != b.sign;
    if (a.isNaN || b.isNaN)
        return QuietNaN;
    if (a.isInf || b.isInf) {
        if (a.isZero || b.isZero)
            return QuietNaN; // inf * 0
        return packInf(sign);
    }
    if (a.isZero || b.isZero)
        return packZero(sign);
    // 53 x 53 -> 106-bit product; leading bit at 105 or 104.
    const unsigned __int128 prod =
        static_cast<unsigned __int128>(a.mant) * b.mant;
    // Target: leading bit at position 55 with sticky in bit 0.
    // Shift down by 50 (or 49), folding lost bits into sticky.
    int exp = a.exp + b.exp - Bias + 1;
    const int shift = 50;
    std::uint64_t mant = static_cast<std::uint64_t>(prod >> shift);
    const bool sticky =
        (prod & ((static_cast<unsigned __int128>(1) << shift) - 1)) != 0;
    mant |= sticky ? 1 : 0;
    // roundPack normalizes (leading bit may be at 54).
    return roundPack(sign, exp, mant);
}

std::uint64_t
divImpl(std::uint64_t a_bits, std::uint64_t b_bits)
{
    Unpacked a = unpack(a_bits);
    Unpacked b = unpack(b_bits);
    const bool sign = a.sign != b.sign;
    if (a.isNaN || b.isNaN)
        return QuietNaN;
    if (a.isInf)
        return b.isInf ? QuietNaN : packInf(sign);
    if (b.isInf)
        return packZero(sign);
    if (b.isZero)
        return a.isZero ? QuietNaN : packInf(sign);
    if (a.isZero)
        return packZero(sign);
    // Quotient with 55 fraction bits plus sticky from the remainder.
    const unsigned __int128 num = static_cast<unsigned __int128>(a.mant)
                                  << 58;
    const unsigned __int128 q128 = num / b.mant;
    const bool sticky = (num % b.mant) != 0;
    // q has its leading bit at position 58 or 57 (mant_a in [1,2) over
    // mant_b in [1,2) gives quotient in (0.5, 2)).
    std::uint64_t q = static_cast<std::uint64_t>(q128);
    int exp = a.exp - b.exp + Bias;
    // Bring leading bit to position 55, folding shifted-out bits plus
    // remainder into sticky.
    std::uint64_t folded_sticky = sticky ? 1 : 0;
    while (q & ~((1ULL << 56) - 1)) {
        folded_sticky |= q & 1;
        q >>= 1;
        ++exp;
    }
    q |= folded_sticky;
    return roundPack(sign, exp - 3, q);
}

double
asDouble(std::uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

std::uint64_t
asBits(double d)
{
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

} // namespace

SoftResult
add64(std::uint64_t a, std::uint64_t b)
{
    return {addImpl(a, b), 55};
}

SoftResult
sub64(std::uint64_t a, std::uint64_t b)
{
    return {addImpl(a, b ^ SignMask), 55};
}

SoftResult
mul64(std::uint64_t a, std::uint64_t b)
{
    return {mulImpl(a, b), 70};
}

SoftResult
div64(std::uint64_t a, std::uint64_t b)
{
    return {divImpl(a, b), 140};
}

SoftResult
sqrt64(std::uint64_t a)
{
    // Host's correctly-rounded sqrt, charged at software cost.
    return {asBits(std::sqrt(asDouble(a))), 220};
}

SoftResult
fromInt64(std::uint64_t a)
{
    return {asBits(static_cast<double>(static_cast<std::int64_t>(a))),
            30};
}

SoftResult
toInt64(std::uint64_t a)
{
    return {static_cast<std::uint64_t>(
                static_cast<std::int64_t>(asDouble(a))),
            30};
}

} // namespace risotto::dbt::softfloat
