#include "dbt/tiers.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "dbt/fallback.hh"
#include "machine/machine.hh"
#include "support/error.hh"
#include "tcg/optimizer.hh"

namespace risotto::dbt
{

using aarch::CodeAddr;

namespace
{

/**
 * Validate one freshly compiled translation: rebuild the guest
 * instruction sequence of the region, decode the emitted host words and
 * check obligation ⊆ guarantee at both levels. Bumps verify.* counters
 * and appends violations to @p sink.
 * @return true when the translation carries every required ordering.
 */
bool
runValidation(const verify::TbValidator &validator, const Frontend &frontend,
              const aarch::CodeBuffer &code, support::HostIsa isa,
              const tcg::Block &block, CodeAddr entry,
              const std::vector<gx86::Addr> &path, bool superblock,
              StatSet &stats, std::vector<verify::Violation> *sink,
              const AnalysisState *analysis)
{
    std::vector<gx86::Instruction> guest;
    for (const gx86::Addr pc : path) {
        const auto part = frontend.decodeBlock(pc);
        guest.insert(guest.end(), part.begin(), part.end());
    }
    const auto host = verify::decodeHostRange(isa, code, entry, code.end());
    // Fence elision changes the emitted code, so the oracle must be
    // told which guest events are thread-private -- under the same
    // image-wide premise the elision itself relied on (rspPrivate).
    // Without elision nothing is passed: the validator stays exactly as
    // strict as the pre-analysis pipeline.
    std::vector<bool> mask;
    const std::vector<bool> *local = nullptr;
    if (analysis != nullptr && analysis->elide &&
        analysis->analysis != nullptr &&
        analysis->analysis->rspPrivate) {
        mask = verify::localGuestEvents(guest, true);
        local = &mask;
    }
    verify::ValidationReport report = validator.validate(
        guest, block, host, path.front(), superblock, local);
    stats.bump(superblock ? "verify.superblocks_checked"
                          : "verify.blocks_checked");
    stats.bump("verify.pairs_checked", report.pairsChecked);
    stats.bump("verify.pairs_discharged_local",
               report.pairsDischargedLocal);
    if (report.ok())
        return true;
    stats.bump("verify.violations", report.violations.size());
    if (sink != nullptr)
        for (auto &v : report.violations)
            sink->push_back(std::move(v));
    return false;
}

} // namespace

tcg::OptimizerConfig
superblockOptimizer(const DbtConfig &config,
                    const analysis::ImageAnalysis *analysis,
                    const std::vector<gx86::Addr> &path)
{
    tcg::OptimizerConfig opt = config.optimizer;
    if (!config.analysis || analysis == nullptr)
        return opt;
    for (const gx86::Addr pc : path) {
        if (analysis->classOf(pc) ==
            analysis::BlockClass::HotOrdering) {
            // Dense ordering region: keep every fence where the
            // verified per-block mapping put it.
            opt.fenceMerging = false;
            break;
        }
    }
    return opt;
}

bool
buildSuperblockIr(Frontend &frontend, const DbtConfig &config,
                  const std::vector<gx86::Addr> &path, tcg::Block &sb)
{
    // Re-run the frontend over every region member and optimize each
    // part in isolation first (counters stay off: the per-block work was
    // already accounted when tier 1 translated these blocks).
    std::vector<tcg::Block> parts;
    parts.reserve(path.size());
    for (const gx86::Addr pc : path) {
        tcg::Block part = frontend.translate(pc);
        tcg::optimize(part, config.optimizer, nullptr);
        parts.push_back(std::move(part));
    }

    // Splice the parts into one straight-line superblock. Later parts'
    // local temps and labels are renumbered into the combined block; each
    // part's goto_tb to the next member becomes a fall-through (dropped
    // when it is the part's final op, a branch to the seam label
    // otherwise), so the seam disappears from the optimizer's view.
    for (std::size_t i = 0; i < parts.size(); ++i) {
        const tcg::Block &part = parts[i];
        const tcg::TempId tempBase = sb.numTemps;
        const std::int32_t labelBase = sb.numLabels;
        sb.numTemps += part.numTemps - tcg::FirstLocalTemp;
        sb.numLabels += part.numLabels;
        const bool last = i + 1 == parts.size();
        const std::uint64_t next_pc = last ? 0 : path[i + 1];
        std::int32_t seamLabel = -1;
        bool sawSeam = false;
        for (std::size_t j = 0; j < part.instrs.size(); ++j) {
            tcg::Instr in = part.instrs[j];
            auto remap = [&](tcg::TempId t) {
                return t >= tcg::FirstLocalTemp
                           ? t - tcg::FirstLocalTemp + tempBase
                           : t;
            };
            in.a = remap(in.a);
            in.b = remap(in.b);
            in.c = remap(in.c);
            in.d = remap(in.d);
            if (in.label >= 0)
                in.label += labelBase;
            if (!last && in.op == tcg::Op::GotoTb &&
                static_cast<std::uint64_t>(in.imm) == next_pc) {
                sawSeam = true;
                if (j + 1 == part.instrs.size())
                    continue; // Final op: plain fall-through, no label.
                if (seamLabel < 0)
                    seamLabel = sb.newLabel();
                in = tcg::build::br(seamLabel);
            }
            sb.instrs.push_back(in);
        }
        if (!last) {
            if (!sawSeam) {
                // Profile lied: no edge to the next member.
                for (tcg::Block &p : parts)
                    frontend.recycle(std::move(p));
                return false;
            }
            if (seamLabel >= 0)
                sb.instrs.push_back(tcg::build::setLabel(seamLabel));
        }
    }

    // The splice copied everything out of the parts; return their
    // storage before the (allocation-heavy) superblock optimize pass.
    for (tcg::Block &part : parts)
        frontend.recycle(std::move(part));
    return true;
}

// --- InterpreterTier --------------------------------------------------------

std::optional<CodeAddr>
InterpreterTier::translate(gx86::Addr pc, const TranslationEnv &env)
{
    auto it = trampolines_.find(pc);
    if (it != trampolines_.end())
        return it->second;
    auto emit = [&]() {
        const CodeAddr at = code_.end();
        return backend_.emitExitTb(chains_.staticSlot(0, pc, at, false));
    };
    CodeAddr at;
    try {
        at = emit();
    } catch (const aarch::CodeBufferFull &) {
        // Trampolines are only requested outside a run (onExitTb degrades
        // through the shared dynamic stub instead), so flushing here
        // cannot strand a core.
        if (!host_.canFlushTranslationCache(env))
            return std::nullopt;
        host_.flushTranslationCache();
        at = emit();
    }
    trampolines_[pc] = at;
    return at;
}

std::uint64_t
InterpreterTier::interpretOne(gx86::Addr pc, machine::Core &core,
                              machine::Machine &machine)
{
    stats_.bump("dbt.fallback_blocks");
    return interpretBlock(image_, config_, resolver_, hostcalls_, segment_,
                          pc, core, machine, stats_);
}

// --- BaselineTier -----------------------------------------------------------

std::optional<CodeAddr>
BaselineTier::translate(gx86::Addr pc, const TranslationEnv &env)
{
    const unsigned attempts = std::max(1u, config_.translateRetries);
    std::uint64_t pendingDecode = 0;
    std::uint64_t pendingEncode = 0;
    std::uint64_t pendingBuffer = 0;
    auto recoverPending = [&]() {
        // Every exit path continues execution correctly (retried host
        // code or the interpreter fallback), so earlier injections are
        // recovered by construction.
        faults_.recovered(faultsites::DbtDecode, pendingDecode);
        faults_.recovered(faultsites::DbtEncode, pendingEncode);
        faults_.recovered(faultsites::DbtBuffer, pendingBuffer);
    };

    for (unsigned attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0)
            stats_.bump("dbt.translate_retries");
        if (faults_.shouldInject(faultsites::DbtDecode)) {
            ++pendingDecode;
            continue;
        }
        const CodeAddr codeCheckpoint = code_.end();
        const std::size_t slotCheckpoint = chains_.slotCount();
        bool injectedBuffer = false;
        try {
            tcg::Block block = frontend_.translate(pc);
            stats_.bump("dbt.tbs_translated");
            stats_.bump("dbt.ir_ops_pre_opt", block.instrs.size());
            tcg::optimize(block, config_.optimizer, &stats_);
            stats_.bump("dbt.ir_ops_post_opt", block.instrs.size());
            if (faults_.shouldInject(faultsites::DbtEncode)) {
                ++pendingEncode;
                continue;
            }
            if (faults_.shouldInject(faultsites::DbtBuffer)) {
                injectedBuffer = true;
                throw aarch::CodeBufferFull("injected fault");
            }
            const CodeAddr host = backend_.compile(block, chains_);
            stats_.bump("dbt.host_words", code_.end() - host);
            if (validator_ != nullptr) {
                const bool claim =
                    analysis_ != nullptr && analysis_->skip &&
                    analysis_->certificate != nullptr &&
                    analysis_->certificate->claimsValidated(pc);
                const bool paranoid =
                    analysis_ != nullptr && analysis_->paranoid;
                if (claim && !paranoid) {
                    // A matching certificate already vouches for this
                    // block's translation under this exact config.
                    stats_.bump("analysis.validations_skipped");
                } else {
                    const bool ok = runValidation(
                        *validator_, frontend_, code_, config_.host,
                        block, host, {pc}, false, stats_, violations_,
                        analysis_);
                    if (claim) {
                        stats_.bump("analysis.paranoid_rechecks");
                        if (!ok)
                            stats_.bump(
                                "analysis.paranoid_disagreements");
                    }
                }
            }
            if (analysis_ != nullptr && analysis_->elide)
                stats_.set("analysis.fences_elided",
                           frontend_.fencesElided());
            frontend_.recycle(std::move(block));
            recoverPending();
            return host;
        } catch (const aarch::CodeBufferFull &) {
            // Roll back the partially emitted block, then flush the
            // whole cache when no other core can be stranded by it.
            code_.truncate(codeCheckpoint);
            chains_.truncateSlots(slotCheckpoint);
            if (injectedBuffer)
                ++pendingBuffer;
            stats_.bump("dbt.buffer_full");
            if (host_.canFlushTranslationCache(env))
                host_.flushTranslationCache();
        } catch (const GuestFault &) {
            // Genuinely untranslatable (invalid opcode, bad pc):
            // retrying cannot help; the interpreter will surface the
            // fault at execution time if the block is actually reached.
            code_.truncate(codeCheckpoint);
            chains_.truncateSlots(slotCheckpoint);
            break;
        }
    }
    recoverPending();
    return std::nullopt;
}

// --- SuperblockTier ---------------------------------------------------------

std::optional<CodeAddr>
SuperblockTier::abandon(gx86::Addr head)
{
    if (TbInfo *tb = cache_.find(head))
        tb->promotionFailed = true;
    stats_.bump("dbt.tier2_aborts");
    return std::nullopt;
}

std::optional<CodeAddr>
SuperblockTier::translate(gx86::Addr head, const TranslationEnv &env)
{
    (void)env;
    stats_.bump("dbt.tier2_attempts");

    const std::vector<gx86::Addr> path =
        cache_.hotPath(head, config_.tier2MaxBlocks);
    if (path.size() < 2)
        return abandon(head);

    tcg::Block sb = frontend_.acquireBlock(head);
    try {
        if (!buildSuperblockIr(frontend_, config_, path, sb)) {
            frontend_.recycle(std::move(sb));
            return abandon(head); // Profile lied: no edge to next.
        }
    } catch (const GuestFault &) {
        frontend_.recycle(std::move(sb));
        return abandon(head);
    }

    const tcg::OptimizerConfig sb_opt = superblockOptimizer(
        config_, analysis_ != nullptr ? analysis_->analysis : nullptr,
        path);
    if (!sb_opt.fenceMerging && config_.optimizer.fenceMerging)
        stats_.bump("analysis.hot_superblocks_conservative");
    tcg::optimizeSuperblock(sb, sb_opt, &stats_);

    // Guarded compile: promotion never flushes (the tier-1 translation
    // stays live and correct), so any failure just rolls the buffer back
    // and marks the head as not worth retrying this generation.
    const CodeAddr codeCheckpoint = code_.end();
    const std::size_t slotCheckpoint = chains_.slotCount();
    try {
        const CodeAddr entry = backend_.compile(sb, chains_);
        if (validator_ != nullptr &&
            !runValidation(*validator_, frontend_, code_, config_.host, sb,
                           entry, path, true, stats_, violations_,
                           analysis_)) {
            // The superblock lost an ordering (a cross-seam optimizer or
            // splice bug): reject the promotion and keep tier-1 code.
            code_.truncate(codeCheckpoint);
            chains_.truncateSlots(slotCheckpoint);
            stats_.bump("verify.promotions_rejected");
            return abandon(head);
        }
        stats_.bump("dbt.host_words", code_.end() - entry);
        TbInfo &tb =
            cache_.promote(head, entry, code_.end() - entry,
                           Tier::Superblock);
        tb.path = path;
        stats_.bump("dbt.tier2_superblocks");
        stats_.bump("dbt.tier2_blocks_subsumed", path.size());
        frontend_.recycle(std::move(sb));
        return entry;
    } catch (const aarch::CodeBufferFull &) {
        code_.truncate(codeCheckpoint);
        chains_.truncateSlots(slotCheckpoint);
        stats_.bump("dbt.buffer_full");
    } catch (const PanicError &) {
        // Register-pool exhaustion on an over-long region: the linear-
        // scan allocator cannot hold the superblock's live ranges.
        code_.truncate(codeCheckpoint);
        chains_.truncateSlots(slotCheckpoint);
    }
    frontend_.recycle(std::move(sb));
    return abandon(head);
}

} // namespace risotto::dbt
