/**
 * @file
 * Software IEEE-754 double-precision arithmetic.
 *
 * QEMU emulates guest floating point with a software implementation
 * (Section 7.3, "Floating point emulation"); this is the equivalent
 * substrate. Add/sub/mul/div are implemented in integer arithmetic with
 * round-to-nearest-even and are bit-exact against hardware for normal
 * operands; subnormal results flush to zero (documented deviation).
 * Square root defers to the host's correctly-rounded sqrt but is charged
 * the software cost.
 *
 * Each operation reports a cycle cost reflecting the ~10-20x slowdown of
 * software FP over native FP units.
 */

#ifndef RISOTTO_DBT_SOFTFLOAT_HH
#define RISOTTO_DBT_SOFTFLOAT_HH

#include <cstdint>

namespace risotto::dbt::softfloat
{

/** Result bits plus the modeled cycle cost of the operation. */
struct SoftResult
{
    std::uint64_t bits;
    std::uint64_t cycles;
};

SoftResult add64(std::uint64_t a, std::uint64_t b);
SoftResult sub64(std::uint64_t a, std::uint64_t b);
SoftResult mul64(std::uint64_t a, std::uint64_t b);
SoftResult div64(std::uint64_t a, std::uint64_t b);
SoftResult sqrt64(std::uint64_t a);
SoftResult fromInt64(std::uint64_t a); ///< int64 -> double
SoftResult toInt64(std::uint64_t a);   ///< double -> int64 (truncating)

} // namespace risotto::dbt::softfloat

#endif // RISOTTO_DBT_SOFTFLOAT_HH
