/**
 * @file
 * Degraded-mode guest execution: interpret one basic block in place.
 *
 * When guarded translation gives up on a block (injected fault, genuine
 * decode failure, exhausted code buffer), the engine must still make
 * progress without weakening the memory model. This interpreter executes
 * exactly one guest basic block directly against the machine's core
 * state and memory system, bracketed by full fences (store buffer flush
 * + DMB cost) on entry and exit and with write-through stores in
 * between, so the interpreted block is sequentially consistent -- a
 * strict strengthening of the guest's TSO, never a weakening.
 *
 * One block per ExitTb trap keeps the machine's scheduler and cycle
 * budget in control: the next block re-enters the engine through the
 * shared dynamic-exit stub, where translation is attempted again.
 */

#ifndef RISOTTO_DBT_FALLBACK_HH
#define RISOTTO_DBT_FALLBACK_HH

#include "dbt/config.hh"
#include "dbt/hostcall.hh"
#include "dbt/resolver.hh"
#include "gx86/decoded.hh"
#include "gx86/image.hh"
#include "machine/machine.hh"
#include "support/stats.hh"

namespace risotto::dbt
{

/**
 * Interpret the guest basic block at @p pc on @p core.
 *
 * Mirrors the frontend/helper semantics exactly (flags in X16/X17,
 * soft-float FP, helper-equivalent syscalls and PLT calls) so guest-
 * visible state is identical to running the translated block.
 *
 * With @p segment (the engine's shared DecodedSegment) the loop is
 * threaded dispatch over pre-decoded entries, executing fused pairs in
 * one dispatch -- with identical guest state, cycle charges, fence
 * brackets and dbt.fallback_* counters as the unfused path (a pair that
 * would overshoot the 64-instruction block cap re-executes unfused).
 * Without it (nullptr) every instruction is decoded in place, the
 * legacy baseline.
 *
 * @return the next guest pc, or HaltPc when the thread halted.
 * @throws GuestFault on undecodable code or unresolvable imports.
 */
std::uint64_t interpretBlock(const gx86::GuestImage &image,
                             const DbtConfig &config,
                             const ImportResolver *resolver,
                             HostCallHandler *hostcalls,
                             const gx86::DecodedSegment *segment,
                             std::uint64_t pc, machine::Core &core,
                             machine::Machine &machine, StatSet &stats);

} // namespace risotto::dbt

#endif // RISOTTO_DBT_FALLBACK_HH
