#include "dbt/chain.hh"

#include "support/error.hh"

namespace risotto::dbt
{

std::uint32_t
ChainManager::staticSlot(std::uint64_t source_pc, std::uint64_t guest_pc,
                         aarch::CodeAddr patch_site, bool chainable)
{
    ExitSlot slot;
    slot.sourcePc = source_pc;
    slot.guestPc = guest_pc;
    slot.patchSite = patch_site;
    slot.chainable = chainable;
    slots_.push_back(slot);
    return static_cast<std::uint32_t>(slots_.size() - 1);
}

std::uint32_t
ChainManager::dynamicSlot()
{
    if (!dynSlotMade_) {
        ExitSlot slot;
        slot.dynamic = true;
        slots_.push_back(slot);
        dynSlot_ = static_cast<std::uint32_t>(slots_.size() - 1);
        dynSlotMade_ = true;
    }
    return dynSlot_;
}

const ExitSlot &
ChainManager::slot(std::uint32_t index) const
{
    panicIf(index >= slots_.size(), "bad exit slot");
    return slots_[index];
}

void
ChainManager::truncateSlots(std::size_t count)
{
    panicIf(count > slots_.size(), "slot rollback past the end");
    slots_.resize(count);
}

void
ChainManager::chain(std::uint32_t index, aarch::CodeAddr host)
{
    const ExitSlot &slot = this->slot(index);
    panicIf(!slot.chainable, "chaining a non-chainable exit");
    const std::int32_t delta = static_cast<std::int32_t>(host) -
                               static_cast<std::int32_t>(slot.patchSite);
    if (backend_ != nullptr) {
        // Out-of-range targets (rv64's JAL reaches less far than aarch's
        // B) leave the exit un-chained: it keeps trapping to the
        // dispatcher, which is slow but correct.
        if (const auto word = backend_->chainBranchWord(delta))
            code_.patch(slot.patchSite, *word);
        return;
    }
    aarch::AInstr branch;
    branch.op = aarch::AOp::B;
    branch.imm = delta;
    code_.patch(slot.patchSite, aarch::encode(branch));
}

void
ChainManager::flush()
{
    slots_.clear();
    dynSlotMade_ = false;
    dynSlot_ = 0;
    ++epoch_;
}

} // namespace risotto::dbt
