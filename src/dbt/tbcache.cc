#include "dbt/tbcache.hh"

#include <algorithm>

#include "support/error.hh"

namespace risotto::dbt
{

std::string
tierName(Tier tier)
{
    switch (tier) {
      case Tier::Interpreter:
        return "interp";
      case Tier::Baseline:
        return "tier1";
      case Tier::Superblock:
        return "tier2";
      case Tier::Template:
        return "tier0.5";
    }
    return "unknown";
}

TranslationCache::TranslationCache(std::size_t expected_blocks)
{
    tbs_.reserve(expected_blocks);
}

TbInfo *
TranslationCache::find(gx86::Addr pc)
{
    JumpCacheEntry &slot = jumpCache_[jumpCacheIndex(pc)];
    if (slot.tb != nullptr && slot.pc == pc) {
        ++jumpCacheHits_;
        return slot.tb;
    }
    ++jumpCacheMisses_;
    auto it = tbs_.find(pc);
    if (it == tbs_.end())
        return nullptr;
    slot = {pc, &it->second};
    return &it->second;
}

const TbInfo *
TranslationCache::find(gx86::Addr pc) const
{
    // Cold/reporting path: read the jump cache but never fill it.
    const JumpCacheEntry &slot = jumpCache_[jumpCacheIndex(pc)];
    if (slot.tb != nullptr && slot.pc == pc) {
        ++jumpCacheHits_;
        return slot.tb;
    }
    ++jumpCacheMisses_;
    auto it = tbs_.find(pc);
    return it == tbs_.end() ? nullptr : &it->second;
}

const TbInfo *
TranslationCache::findShared(gx86::Addr pc,
                             SessionJumpCache &session) const
{
    auto &slot = session.entries_[(pc ^ (pc >> SessionJumpCache::Bits)) &
                                  (SessionJumpCache::Size - 1)];
    if (slot.tb != nullptr && slot.pc == pc) {
        ++session.hits_;
        return slot.tb;
    }
    ++session.misses_;
    const auto it = tbs_.find(pc);
    if (it == tbs_.end())
        return nullptr;
    slot = {pc, &it->second};
    return &it->second;
}

TbInfo &
TranslationCache::insert(gx86::Addr pc, aarch::CodeAddr entry,
                         std::uint32_t host_words, Tier tier)
{
    auto [it, fresh] = tbs_.try_emplace(pc);
    TbInfo &tb = it->second;
    tb.entry = entry;
    tb.hostWords = host_words;
    tb.tier = tier;
    // A re-translation replaces the code, not the block's history:
    // execCount and successors persist so the tier-2 heuristics keep
    // seeing the true profile. A failed promotion mark is cleared --
    // the new translation deserves a fresh attempt.
    tb.promotionFailed = false;
    if (tier != Tier::Superblock)
        tb.path.clear();
    jumpCacheFill(pc, &tb);
    return tb;
}

TbInfo &
TranslationCache::promote(gx86::Addr pc, aarch::CodeAddr entry,
                          std::uint32_t host_words, Tier tier)
{
    TbInfo *tb = find(pc);
    panicIf(!tb, "promoting a block with no live translation");
    tb->entry = entry;
    tb->hostWords = host_words;
    tb->tier = tier;
    tb->promotionFailed = false;
    jumpCacheFill(pc, tb);
    return *tb;
}

std::uint64_t
TranslationCache::noteExecution(gx86::Addr pc)
{
    TbInfo *tb = find(pc);
    if (!tb)
        return 0;
    return ++tb->execCount;
}

void
TranslationCache::recordSuccessor(gx86::Addr from, gx86::Addr to)
{
    TbInfo *tb = find(from);
    if (!tb)
        return;
    for (auto &[pc, count] : tb->successors) {
        if (pc == to) {
            ++count;
            return;
        }
    }
    tb->successors.emplace_back(to, 1);
}

std::vector<gx86::Addr>
TranslationCache::hotPath(gx86::Addr head, std::size_t max_blocks) const
{
    std::vector<gx86::Addr> path{head};
    gx86::Addr cur = head;
    while (path.size() < max_blocks) {
        const TbInfo *tb = find(cur);
        if (!tb || tb->successors.empty())
            break;
        const auto hottest = std::max_element(
            tb->successors.begin(), tb->successors.end(),
            [](const auto &a, const auto &b) {
                return a.second < b.second;
            });
        const gx86::Addr next = hottest->first;
        if (std::find(path.begin(), path.end(), next) != path.end())
            break; // Loop closure: the region stays straight-line.
        path.push_back(next);
        cur = next;
    }
    return path;
}

std::vector<HotBlock>
TranslationCache::hottest(std::size_t n) const
{
    std::vector<HotBlock> blocks;
    blocks.reserve(tbs_.size());
    for (const auto &[pc, tb] : tbs_)
        blocks.push_back({pc, tb.execCount, tb.tier});
    const std::size_t take = std::min(n, blocks.size());
    std::partial_sort(blocks.begin(), blocks.begin() + take, blocks.end(),
                      [](const HotBlock &a, const HotBlock &b) {
                          if (a.execCount != b.execCount)
                              return a.execCount > b.execCount;
                          return a.guestPc < b.guestPc;
                      });
    blocks.resize(take);
    return blocks;
}

void
TranslationCache::flush()
{
    // The map's clear() is the one operation that invalidates TbInfo
    // references, so the jump cache dies with it.
    jumpCache_.fill(JumpCacheEntry{});
    tbs_.clear();
    ++generation_;
}

} // namespace risotto::dbt
