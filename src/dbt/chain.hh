/**
 * @file
 * Block chaining: exit slots and goto_tb patch sites.
 *
 * Every ExitTb word in the code buffer names a slot describing where the
 * exit goes (static target pc or the shared dynamic register) and, for
 * chainable goto_tb exits, the patch site that a later resolution turns
 * into a direct branch. The manager survives translation-cache flushes
 * through an epoch counter: a flush discards every slot and bumps the
 * epoch, so a resolution that raced with a flush can detect that its
 * patch site died and must not be written.
 */

#ifndef RISOTTO_DBT_CHAIN_HH
#define RISOTTO_DBT_CHAIN_HH

#include <cstdint>
#include <vector>

#include "aarch/emitter.hh"
#include "dbt/backend.hh"

namespace risotto::dbt
{

/** One dispatcher exit slot. */
struct ExitSlot
{
    bool dynamic = false;

    /** Guest pc of the block that owns the exit (0 = none recorded);
     * feeds chain-successor profiling. */
    std::uint64_t sourcePc = 0;

    /** Static exit target. */
    std::uint64_t guestPc = 0;

    /** Code-buffer address of the exit_tb word (chainable exits). */
    aarch::CodeAddr patchSite = 0;

    bool chainable = false;
};

/** Owns exit slots and chain patching over the shared code buffer. */
class ChainManager : public ExitSlotAllocator
{
  public:
    /** @param backend supplies the host's direct-branch encoding; null
     * falls back to the legacy aarch B rewrite (unit tests). */
    explicit ChainManager(aarch::CodeBuffer &code,
                          const Backend *backend = nullptr)
        : code_(code), backend_(backend)
    {
    }

    // --- ExitSlotAllocator ------------------------------------------------

    std::uint32_t staticSlot(std::uint64_t source_pc,
                             std::uint64_t guest_pc,
                             aarch::CodeAddr patch_site,
                             bool chainable) override;
    std::uint32_t dynamicSlot() override;

    /** The slot at @p index; panics when out of range. */
    const ExitSlot &slot(std::uint32_t index) const;

    std::size_t slotCount() const { return slots_.size(); }

    /** Roll back to @p count slots (abandoning a partial compile). */
    void truncateSlots(std::size_t count);

    /** Patch the chainable exit @p index into a direct branch to
     * @p host (the goto_tb -> B rewrite). */
    void chain(std::uint32_t index, aarch::CodeAddr host);

    /** Discard every slot and start a new epoch (cache flush). */
    void flush();

    /** Bumped on every flush; invalidates pending chain patches. */
    std::uint64_t epoch() const { return epoch_; }

  private:
    aarch::CodeBuffer &code_;
    const Backend *backend_;
    std::vector<ExitSlot> slots_;
    std::uint32_t dynSlot_ = 0;
    bool dynSlotMade_ = false;
    std::uint64_t epoch_ = 0;
};

} // namespace risotto::dbt

#endif // RISOTTO_DBT_CHAIN_HH
