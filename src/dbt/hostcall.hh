/**
 * @file
 * Interface the dynamic host linker implements to service HostCall
 * helpers: marshal guest arguments, invoke the native host function, and
 * report the cycles the call consumed (marshaling + native body).
 */

#ifndef RISOTTO_DBT_HOSTCALL_HH
#define RISOTTO_DBT_HOSTCALL_HH

#include <cstdint>

#include "machine/machine.hh"

namespace risotto::dbt
{

/** Services host-linked library calls (Section 6.2). */
class HostCallHandler
{
  public:
    virtual ~HostCallHandler() = default;

    /**
     * Invoke host function @p index for @p core.
     * @return cycles consumed (marshaling plus the native body).
     */
    virtual std::uint64_t invokeHostFunction(std::uint16_t index,
                                             machine::Core &core,
                                             machine::Machine &machine) = 0;
};

} // namespace risotto::dbt

#endif // RISOTTO_DBT_HOSTCALL_HH
