/**
 * @file
 * Tier-0.5 template table: pre-validated gx86 -> IR plans for cold
 * blocks.
 *
 * The template planner recognizes blocks made entirely of whitelisted
 * instruction shapes (the TemplateKind table) straight off the
 * pre-decoded segment and constructs the exact IR the tier-1 pipeline
 * would produce AFTER optimization -- without running the frontend
 * dispatch, the block arena, or the optimizer. Three cheap linear
 * decline scans reject any block the constant-folding, memory-
 * elimination or fence-merging passes would actually rewrite (those
 * blocks go to tier 1 as usual); the dead-code pass is mirrored
 * exactly because it fires on almost every block (flag tails). The
 * result is byte-identical host code by construction, and the claim is
 * checked once per engine by probing every template kind through the
 * obligation-graph validator (verify/templates.hh).
 */

#ifndef RISOTTO_DBT_TEMPLATES_HH
#define RISOTTO_DBT_TEMPLATES_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dbt/config.hh"
#include "gx86/decoded.hh"
#include "gx86/isa.hh"
#include "tcg/ir.hh"
#include "verify/templates.hh"

namespace risotto::dbt
{

/** The whitelisted instruction shapes the template tier can plan.
 * Everything else (PLT calls, soft-float helpers, syscalls, helper-path
 * RMWs) declines the block to tier 1. */
enum class TemplateKind : std::uint8_t
{
    Nop = 0,
    Halt,
    MovImm,     ///< MovRI
    MovReg,     ///< MovRR
    Load,       ///< Load / Load8 (fenced per scheme)
    Store,      ///< Store / Store8 (fenced per scheme)
    StoreImm,   ///< StoreI
    Alu,        ///< Add..Udiv reg-reg + flags
    AluImm,     ///< AddI..MulI + flags
    Shift,      ///< ShlI / ShrI + flags
    CmpReg,     ///< CmpRR
    CmpImm,     ///< CmpRI
    Jump,       ///< Jmp
    CondBranch, ///< Jcc
    Call,       ///< Call (return-address push is a guest store)
    Ret,        ///< Ret (return-address pop is a guest load)
    Fence,      ///< MFence
    Cas,        ///< LockCmpxchg (inline lowering only)
    Xadd,       ///< LockXadd (inline lowering only)
    Count_,
};

constexpr std::size_t TemplateKindCount =
    static_cast<std::size_t>(TemplateKind::Count_);

/** Short name, e.g. "load". */
std::string templateKindName(TemplateKind kind);

/** Which template kinds are live. All start enabled; kinds whose
 * obligation-graph probes fail are disabled wholesale at engine
 * construction (applyTemplateReports). */
struct TemplateConfig
{
    std::array<bool, TemplateKindCount> kind;

    TemplateConfig() { kind.fill(true); }

    bool enabled(TemplateKind k) const
    {
        return kind[static_cast<std::size_t>(k)];
    }

    void disable(TemplateKind k)
    {
        kind[static_cast<std::size_t>(k)] = false;
    }
};

/** A planned block: the exact post-optimization IR plus the counters
 * the tier-1 pipeline would have bumped producing it. */
struct TemplatePlan
{
    gx86::Addr pc = 0;

    /** Post-optimization IR (what tier 1 hands the backend). */
    tcg::Block block;

    std::uint32_t guestInstructions = 0;

    /** IR ops before dead-code removal (tier 1's pre-opt size: the
     * decline scans guarantee the other passes are no-ops here). */
    std::uint32_t irOpsPreOpt = 0;

    /** Ops the (mirrored) dead-code pass removed. */
    std::uint32_t deadOpsRemoved = 0;
};

/** The template kind of @p in, or nullopt when no template covers it
 * under @p config (e.g. LOCK RMWs under a helper lowering). */
std::optional<TemplateKind> templateKindFor(const gx86::Instruction &in,
                                            const DbtConfig &config);

/**
 * Plan @p instrs (one block's decoded instructions, in order) into the
 * exact post-optimization IR, or decline (nullopt) when any instruction
 * is untemplated / disabled or when an enabled optimizer pass would
 * rewrite the naive IR.
 */
std::optional<TemplatePlan>
planTemplateInstructions(gx86::Addr pc,
                         const std::vector<gx86::Instruction> &instrs,
                         const DbtConfig &config,
                         const TemplateConfig &templates);

/** Decode the block at @p pc from the pre-decoded segment (unfused
 * entries, same walk and size cap as the frontend) and plan it.
 * Declines on any undecodable byte instead of faulting. */
std::optional<TemplatePlan>
planTemplateBlock(gx86::Addr pc, const gx86::DecodedSegment &segment,
                  const DbtConfig &config,
                  const TemplateConfig &templates);

/**
 * Build validation probes for every enabled template kind: canonical
 * instances alone and between fence-relevant context accesses, each
 * planned and compiled through the real backend into a scratch buffer.
 * Probe candidates the planner itself declines are skipped (they can
 * never reach the backend at runtime either).
 */
std::vector<verify::TemplateProbe>
buildTemplateProbes(const DbtConfig &config,
                    const TemplateConfig &templates);

/** Disable every kind with a failing report; returns how many. */
std::size_t
applyTemplateReports(const std::vector<verify::TemplatePatternReport> &reports,
                     TemplateConfig &templates);

/** Test hook (the weakened-template canary): plan @p kind WITHOUT its
 * mapped fences, so its pair probes must fail validation and the kind
 * must be disabled at engine construction. */
void testWeakenTemplate(TemplateKind kind);

/** Undo testWeakenTemplate. */
void testResetTemplates();

} // namespace risotto::dbt

#endif // RISOTTO_DBT_TEMPLATES_HH
