#include "dbt/config.hh"

namespace risotto::dbt
{

DbtConfig
DbtConfig::qemu()
{
    DbtConfig c;
    c.name = "qemu";
    c.frontend = mapping::X86ToTcgScheme::Qemu;
    c.backend = mapping::TcgToArmScheme::Qemu;
    c.rmw = mapping::RmwLowering::HelperRmw1AL;
    c.hostLinker = false;
    return c;
}

DbtConfig
DbtConfig::qemuNoFences()
{
    DbtConfig c;
    c.name = "no-fences";
    c.frontend = mapping::X86ToTcgScheme::NoFences;
    c.backend = mapping::TcgToArmScheme::Qemu;
    c.rmw = mapping::RmwLowering::HelperRmw1AL;
    c.hostLinker = false;
    return c;
}

DbtConfig
DbtConfig::tcgVer()
{
    DbtConfig c;
    c.name = "tcg-ver";
    c.frontend = mapping::X86ToTcgScheme::Risotto;
    c.backend = mapping::TcgToArmScheme::Risotto;
    c.rmw = mapping::RmwLowering::HelperRmw1AL;
    c.hostLinker = false;
    return c;
}

DbtConfig
DbtConfig::risotto()
{
    DbtConfig c;
    c.name = "risotto";
    c.frontend = mapping::X86ToTcgScheme::Risotto;
    c.backend = mapping::TcgToArmScheme::Risotto;
    c.rmw = mapping::RmwLowering::InlineCasal;
    c.hostLinker = true;
    return c;
}

} // namespace risotto::dbt
