#include "dbt/template_tier.hh"

#include <algorithm>
#include <utility>

namespace risotto::dbt
{

using aarch::CodeAddr;

bool
TemplateTier::covers(gx86::Addr pc)
{
    if (segment_ == nullptr)
        return false;
    if (pending_ && pending_->pc == pc)
        return true;
    pending_ = planTemplateBlock(pc, *segment_, config_, templates_);
    if (!pending_) {
        stats_.bump("dbt.template_declined");
        return false;
    }
    return true;
}

void
TemplateTier::preplan(gx86::Addr pc)
{
    if (segment_ == nullptr)
        return;
    pending_ = planTemplateBlock(pc, *segment_, config_, templates_);
}

std::optional<CodeAddr>
TemplateTier::translate(gx86::Addr pc, const TranslationEnv &env)
{
    // Plan up front (covers() usually already did): planning makes no
    // fault-injection draws, so the per-attempt draw sequence below
    // stays aligned with the baseline tier's.
    std::optional<TemplatePlan> plan;
    if (pending_ && pending_->pc == pc) {
        plan = std::move(pending_);
        pending_.reset();
    } else if (segment_ != nullptr) {
        plan = planTemplateBlock(pc, *segment_, config_, templates_);
    }
    if (!plan)
        return std::nullopt;

    // From here on the shape is BaselineTier::translate's exactly --
    // same sites, same retry budget, same counters -- minus the
    // frontend/optimizer work the plan already replaces. Only
    // dbt.template_* counters are new.
    const unsigned attempts = std::max(1u, config_.translateRetries);
    std::uint64_t pendingDecode = 0;
    std::uint64_t pendingEncode = 0;
    std::uint64_t pendingBuffer = 0;
    auto recoverPending = [&]() {
        faults_.recovered(faultsites::DbtDecode, pendingDecode);
        faults_.recovered(faultsites::DbtEncode, pendingEncode);
        faults_.recovered(faultsites::DbtBuffer, pendingBuffer);
    };

    for (unsigned attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0)
            stats_.bump("dbt.translate_retries");
        if (faults_.shouldInject(faultsites::DbtDecode)) {
            ++pendingDecode;
            continue;
        }
        const CodeAddr codeCheckpoint = code_.end();
        const std::size_t slotCheckpoint = chains_.slotCount();
        bool injectedBuffer = false;
        try {
            stats_.bump("dbt.tbs_translated");
            stats_.bump("dbt.ir_ops_pre_opt", plan->irOpsPreOpt);
            if (config_.optimizer.deadCodeElimination &&
                plan->deadOpsRemoved > 0)
                stats_.bump("opt.dead_ops_removed", plan->deadOpsRemoved);
            stats_.bump("dbt.ir_ops_post_opt", plan->block.instrs.size());
            if (faults_.shouldInject(faultsites::DbtEncode)) {
                ++pendingEncode;
                continue;
            }
            if (faults_.shouldInject(faultsites::DbtBuffer)) {
                injectedBuffer = true;
                throw aarch::CodeBufferFull("injected fault");
            }
            const CodeAddr host = backend_.compile(plan->block, chains_);
            stats_.bump("dbt.host_words", code_.end() - host);
            stats_.bump("dbt.template_blocks");
            stats_.bump("dbt.template_insns", plan->guestInstructions);
            recoverPending();
            return host;
        } catch (const aarch::CodeBufferFull &) {
            code_.truncate(codeCheckpoint);
            chains_.truncateSlots(slotCheckpoint);
            if (injectedBuffer)
                ++pendingBuffer;
            stats_.bump("dbt.buffer_full");
            if (host_.canFlushTranslationCache(env))
                host_.flushTranslationCache();
        }
        // No GuestFault arm: the plan is pre-decoded, nothing here can
        // raise one.
    }
    recoverPending();
    return std::nullopt;
}

} // namespace risotto::dbt
