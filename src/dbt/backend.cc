#include "dbt/backend.hh"

#include <map>
#include <vector>

#include "memcore/fencealg.hh"
#include "support/error.hh"

namespace risotto::dbt
{

using aarch::Barrier;
using aarch::CodeAddr;
using aarch::Emitter;
using aarch::XReg;
using mapping::RmwLowering;
using mapping::TcgToArmScheme;
using memcore::FenceKind;
using tcg::Block;
using tcg::Instr;
using tcg::NoTemp;
using tcg::Op;
using tcg::TempId;

namespace
{

constexpr XReg Scratch = 29;
constexpr XReg AtomicStatus = 26;
constexpr XReg AtomicScratch = 25;

/** Local-temp register pool (see backend.hh convention). */
constexpr XReg LocalPool[] = {18, 19, 20, 21, 22, 23, 27};

/** Linear-scan allocation of block-local temps onto the pool. */
class TempAllocator
{
  public:
    explicit TempAllocator(const Block &block)
    {
        // Last use (read or write) of each local temp.
        for (std::size_t i = 0; i < block.instrs.size(); ++i) {
            const Instr &instr = block.instrs[i];
            for (TempId t : instrReads(instr))
                if (t >= tcg::FirstLocalTemp)
                    lastUse_[t] = i;
            const TempId w = instrWrites(instr);
            if (w >= tcg::FirstLocalTemp)
                lastUse_[w] = i;
        }
        for (XReg r : LocalPool)
            free_.push_back(r);
    }

    /** Host register for temp @p t at instruction index @p at. */
    XReg
    reg(TempId t, std::size_t at)
    {
        if (t < tcg::FirstLocalTemp)
            return static_cast<XReg>(t); // Globals are pinned.
        auto it = assigned_.find(t);
        if (it != assigned_.end())
            return it->second;
        panicIf(free_.empty(),
                "backend register pool exhausted (block too complex)");
        const XReg r = free_.back();
        free_.pop_back();
        assigned_[t] = r;
        (void)at;
        return r;
    }

    /** Release registers whose temps died before instruction @p at. */
    void
    expire(std::size_t at)
    {
        for (auto it = assigned_.begin(); it != assigned_.end();) {
            if (lastUse_.at(it->first) < at) {
                free_.push_back(it->second);
                it = assigned_.erase(it);
            } else {
                ++it;
            }
        }
    }

  private:
    std::map<TempId, std::size_t> lastUse_;
    std::map<TempId, XReg> assigned_;
    std::vector<XReg> free_;
};

/** Fits the 14-bit signed memory/arith immediate field. */
bool
fitsImm14(std::int64_t v)
{
    return v >= -8192 && v <= 8191;
}

} // namespace

aarch::CodeAddr
Backend::compile(const Block &block, ExitSlotAllocator &slots)
{
    Emitter em(buffer_);
    const CodeAddr entry = em.here();
    TempAllocator temps(block);

    std::map<std::int32_t, Emitter::Label> labels;
    auto hostLabel = [&](std::int32_t ir_label) {
        auto it = labels.find(ir_label);
        if (it != labels.end())
            return it->second;
        const Emitter::Label l = em.newLabel();
        labels[ir_label] = l;
        return l;
    };

    // Compute an address operand into (base, offset) form, spilling large
    // offsets through the scratch register.
    auto addrOf = [&](XReg base, std::int64_t off) {
        if (fitsImm14(off))
            return std::pair<XReg, std::int32_t>(
                base, static_cast<std::int32_t>(off));
        em.movImm(Scratch, static_cast<std::uint64_t>(off));
        em.add(Scratch, base, Scratch);
        return std::pair<XReg, std::int32_t>(Scratch, 0);
    };
    // Exact address into a single register (for atomics).
    auto addrReg = [&](XReg base, std::int64_t off) -> XReg {
        if (off == 0)
            return base;
        if (fitsImm14(off)) {
            em.addi(Scratch, base, static_cast<std::int32_t>(off));
        } else {
            em.movImm(Scratch, static_cast<std::uint64_t>(off));
            em.add(Scratch, base, Scratch);
        }
        return Scratch;
    };

    auto lowerFence = [&](FenceKind kind) {
        switch (kind) {
          case FenceKind::Frr:
          case FenceKind::Frw:
          case FenceKind::Frm:
            em.dmb(Barrier::Ld);
            break;
          case FenceKind::Fmr:
            // QEMU demotes Fmr to Frr and emits DMBLD (unsound in
            // general); the sound lowering is a full barrier.
            em.dmb(config_.backend == TcgToArmScheme::Qemu
                       ? Barrier::Ld
                       : Barrier::Full);
            break;
          case FenceKind::Fww:
            // Figure 7b: DMBST. QEMU never generates Fww but lowers
            // write fences to DMBFF.
            em.dmb(config_.backend == TcgToArmScheme::Qemu
                       ? Barrier::Full
                       : Barrier::St);
            break;
          case FenceKind::Fwr:
          case FenceKind::Fwm:
          case FenceKind::Fmw:
          case FenceKind::Fmm:
          case FenceKind::Fsc:
            em.dmb(Barrier::Full);
            break;
          case FenceKind::Facq:
          case FenceKind::Frel:
            break; // Generate nothing (Figure 7b).
          default:
            panic("non-TCG fence reached the backend");
        }
    };

    for (std::size_t i = 0; i < block.instrs.size(); ++i) {
        const Instr &in = block.instrs[i];
        auto r = [&](TempId t) { return temps.reg(t, i); };

        switch (in.op) {
          case Op::MovI:
            em.movImm(r(in.a), static_cast<std::uint64_t>(in.imm));
            break;
          case Op::Mov:
            em.mov(r(in.a), r(in.b));
            break;
          case Op::Ld: {
            const auto [base, off] = addrOf(r(in.b), in.imm);
            em.ldr(r(in.a), base, off);
            break;
          }
          case Op::Ld8: {
            const auto [base, off] = addrOf(r(in.b), in.imm);
            em.ldrb(r(in.a), base, off);
            break;
          }
          case Op::St: {
            const auto [base, off] = addrOf(r(in.b), in.imm);
            em.str(r(in.a), base, off);
            break;
          }
          case Op::St8: {
            const auto [base, off] = addrOf(r(in.b), in.imm);
            em.strb(r(in.a), base, off);
            break;
          }
          case Op::Add: em.add(r(in.a), r(in.b), r(in.c)); break;
          case Op::Sub: em.sub(r(in.a), r(in.b), r(in.c)); break;
          case Op::And: em.and_(r(in.a), r(in.b), r(in.c)); break;
          case Op::Or: em.orr(r(in.a), r(in.b), r(in.c)); break;
          case Op::Xor: em.eor(r(in.a), r(in.b), r(in.c)); break;
          case Op::Mul: em.mul(r(in.a), r(in.b), r(in.c)); break;
          case Op::Udiv: em.udiv(r(in.a), r(in.b), r(in.c)); break;
          case Op::Shl: em.lsli(r(in.a), r(in.b),
                                static_cast<std::int32_t>(in.imm & 63));
            break;
          case Op::Shr: em.lsri(r(in.a), r(in.b),
                                static_cast<std::int32_t>(in.imm & 63));
            break;
          case Op::AddI:
            if (fitsImm14(in.imm)) {
                em.addi(r(in.a), r(in.b),
                        static_cast<std::int32_t>(in.imm));
            } else {
                em.movImm(Scratch, static_cast<std::uint64_t>(in.imm));
                em.add(r(in.a), r(in.b), Scratch);
            }
            break;
          case Op::SetCond:
            em.cmp(r(in.b), r(in.c));
            em.cset(r(in.a), in.cond);
            break;
          case Op::Mb:
            lowerFence(in.fence);
            break;
          case Op::Cas: {
            const XReg base = addrReg(r(in.b), in.imm);
            if (config_.rmw == RmwLowering::FencedRmw2) {
                // Figure 7b: DMBFF; RMW2; DMBFF.
                em.dmb(Barrier::Full);
                const auto retry = em.newLabel();
                const auto done = em.newLabel();
                em.bind(retry);
                em.ldxr(r(in.a), base);
                em.cmp(r(in.a), r(in.c));
                em.bcond(gx86::Cond::Ne, done);
                em.stxr(AtomicStatus, r(in.d), base);
                em.cbnz(AtomicStatus, retry);
                em.bind(done);
                em.dmb(Barrier::Full);
            } else {
                // Section 6.3: direct casal (expected in, old out).
                em.mov(r(in.a), r(in.c));
                em.casal(r(in.a), r(in.d), base);
            }
            break;
          }
          case Op::Xadd: {
            const XReg base = addrReg(r(in.b), in.imm);
            if (config_.rmw == RmwLowering::FencedRmw2) {
                em.dmb(Barrier::Full);
                const auto retry = em.newLabel();
                em.bind(retry);
                em.ldxr(r(in.a), base);
                em.add(AtomicScratch, r(in.a), r(in.d));
                em.stxr(AtomicStatus, AtomicScratch, base);
                em.cbnz(AtomicStatus, retry);
                em.dmb(Barrier::Full);
            } else {
                em.ldaddal(r(in.a), r(in.d), base);
            }
            break;
          }
          case Op::SetLabel:
            em.bind(hostLabel(in.label));
            break;
          case Op::Br:
            em.b(hostLabel(in.label));
            break;
          case Op::BrCond:
            em.cmp(r(in.b), r(in.c));
            em.bcond(in.cond, hostLabel(in.label));
            break;
          case Op::CallHelper:
            if (in.b != NoTemp)
                em.mov(HelperArg0, r(in.b));
            if (in.c != NoTemp)
                em.mov(HelperArg1, r(in.c));
            em.helper(static_cast<std::uint8_t>(in.helper),
                      static_cast<std::uint16_t>(in.imm));
            if (in.a != NoTemp)
                em.mov(r(in.a), HelperRet);
            break;
          case Op::ExitTb:
            if (in.b != NoTemp) {
                em.mov(DynExitReg, r(in.b));
                em.exitTb(slots.dynamicSlot());
            } else {
                const CodeAddr site = em.here();
                em.exitTb(slots.staticSlot(block.guestPc,
                                           static_cast<std::uint64_t>(in.imm),
                                           site, false));
            }
            break;
          case Op::GotoTb: {
            const CodeAddr site = em.here();
            em.exitTb(slots.staticSlot(block.guestPc,
                                       static_cast<std::uint64_t>(in.imm),
                                       site, config_.chaining));
            break;
          }
        }
        temps.expire(i + 1);
    }
    em.finish();
    return entry;
}

} // namespace risotto::dbt
