#include "dbt/backend.hh"

#include <map>
#include <utility>
#include <vector>

#include "memcore/fencealg.hh"
#include "rv64/emitter.hh"
#include "support/error.hh"

namespace risotto::dbt
{

using aarch::Barrier;
using aarch::CodeAddr;
using aarch::XReg;
using mapping::RmwLowering;
using mapping::TcgToArmScheme;
using memcore::FenceKind;
using tcg::Block;
using tcg::Instr;
using tcg::NoTemp;
using tcg::Op;
using tcg::TempId;

namespace
{

constexpr XReg Scratch = 29;
constexpr XReg AtomicStatus = 26;
constexpr XReg AtomicScratch = 25;

/** Local-temp register pool (see backend.hh convention). */
constexpr XReg LocalPool[] = {18, 19, 20, 21, 22, 23, 27};

/** Linear-scan allocation of block-local temps onto the pool (host-
 * neutral: both backends use the same pinning and pool). */
class TempAllocator
{
  public:
    explicit TempAllocator(const Block &block)
    {
        // Last use (read or write) of each local temp.
        for (std::size_t i = 0; i < block.instrs.size(); ++i) {
            const Instr &instr = block.instrs[i];
            for (TempId t : instrReads(instr))
                if (t >= tcg::FirstLocalTemp)
                    lastUse_[t] = i;
            const TempId w = instrWrites(instr);
            if (w >= tcg::FirstLocalTemp)
                lastUse_[w] = i;
        }
        for (XReg r : LocalPool)
            free_.push_back(r);
    }

    /** Host register for temp @p t at instruction index @p at. */
    XReg
    reg(TempId t, std::size_t at)
    {
        if (t < tcg::FirstLocalTemp)
            return static_cast<XReg>(t); // Globals are pinned.
        auto it = assigned_.find(t);
        if (it != assigned_.end())
            return it->second;
        panicIf(free_.empty(),
                "backend register pool exhausted (block too complex)");
        const XReg r = free_.back();
        free_.pop_back();
        assigned_[t] = r;
        (void)at;
        return r;
    }

    /** Release registers whose temps died before instruction @p at. */
    void
    expire(std::size_t at)
    {
        for (auto it = assigned_.begin(); it != assigned_.end();) {
            if (lastUse_.at(it->first) < at) {
                free_.push_back(it->second);
                it = assigned_.erase(it);
            } else {
                ++it;
            }
        }
    }

  private:
    std::map<TempId, std::size_t> lastUse_;
    std::map<TempId, XReg> assigned_;
    std::vector<XReg> free_;
};

/** Fits the aarch 14-bit signed memory/arith immediate field. */
bool
fitsImm14(std::int64_t v)
{
    return v >= -8192 && v <= 8191;
}

/** Fits the RISC-V 12-bit signed I/S-type immediate field. */
bool
fitsImm12(std::int64_t v)
{
    return v >= -2048 && v <= 2047;
}

// --- The Arm host -----------------------------------------------------------

class AarchBackend final : public HostBackend
{
  public:
    using HostBackend::HostBackend;

    support::HostIsa isa() const override
    {
        return support::HostIsa::Aarch;
    }

    CodeAddr compile(const Block &block, ExitSlotAllocator &slots) override;

    std::uint32_t
    exitTbWord(std::uint32_t slot) const override
    {
        aarch::AInstr exit;
        exit.op = aarch::AOp::ExitTb;
        exit.imm = static_cast<std::int32_t>(slot);
        return aarch::encode(exit);
    }

    bool
    isExitTbWord(std::uint32_t word) const override
    {
        return aarch::decode(word).op == aarch::AOp::ExitTb;
    }

    std::optional<std::uint32_t>
    chainBranchWord(std::int32_t word_delta) const override
    {
        if (word_delta < -(1 << 25) || word_delta >= (1 << 25))
            return std::nullopt; // Outside B's imm26 reach.
        aarch::AInstr branch;
        branch.op = aarch::AOp::B;
        branch.imm = word_delta;
        return aarch::encode(branch);
    }
};

CodeAddr
AarchBackend::compile(const Block &block, ExitSlotAllocator &slots)
{
    aarch::Emitter em(buffer_);
    const CodeAddr entry = em.here();
    TempAllocator temps(block);

    std::map<std::int32_t, aarch::Emitter::Label> labels;
    auto hostLabel = [&](std::int32_t ir_label) {
        auto it = labels.find(ir_label);
        if (it != labels.end())
            return it->second;
        const aarch::Emitter::Label l = em.newLabel();
        labels[ir_label] = l;
        return l;
    };

    // Compute an address operand into (base, offset) form, spilling large
    // offsets through the scratch register.
    auto addrOf = [&](XReg base, std::int64_t off) {
        if (fitsImm14(off))
            return std::pair<XReg, std::int32_t>(
                base, static_cast<std::int32_t>(off));
        em.movImm(Scratch, static_cast<std::uint64_t>(off));
        em.add(Scratch, base, Scratch);
        return std::pair<XReg, std::int32_t>(Scratch, 0);
    };
    // Exact address into a single register (for atomics).
    auto addrReg = [&](XReg base, std::int64_t off) -> XReg {
        if (off == 0)
            return base;
        if (fitsImm14(off)) {
            em.addi(Scratch, base, static_cast<std::int32_t>(off));
        } else {
            em.movImm(Scratch, static_cast<std::uint64_t>(off));
            em.add(Scratch, base, Scratch);
        }
        return Scratch;
    };

    auto lowerFence = [&](FenceKind kind) {
        switch (kind) {
          case FenceKind::Frr:
          case FenceKind::Frw:
          case FenceKind::Frm:
            em.dmb(Barrier::Ld);
            break;
          case FenceKind::Fmr:
            // QEMU demotes Fmr to Frr and emits DMBLD (unsound in
            // general); the sound lowering is a full barrier.
            em.dmb(config_.backend == TcgToArmScheme::Qemu
                       ? Barrier::Ld
                       : Barrier::Full);
            break;
          case FenceKind::Fww:
            // Figure 7b: DMBST. QEMU never generates Fww but lowers
            // write fences to DMBFF.
            em.dmb(config_.backend == TcgToArmScheme::Qemu
                       ? Barrier::Full
                       : Barrier::St);
            break;
          case FenceKind::Fwr:
          case FenceKind::Fwm:
          case FenceKind::Fmw:
          case FenceKind::Fmm:
          case FenceKind::Fsc:
            em.dmb(Barrier::Full);
            break;
          case FenceKind::Facq:
          case FenceKind::Frel:
            break; // Generate nothing (Figure 7b).
          default:
            panic("non-TCG fence reached the backend");
        }
    };

    for (std::size_t i = 0; i < block.instrs.size(); ++i) {
        const Instr &in = block.instrs[i];
        auto r = [&](TempId t) { return temps.reg(t, i); };

        switch (in.op) {
          case Op::MovI:
            em.movImm(r(in.a), static_cast<std::uint64_t>(in.imm));
            break;
          case Op::Mov:
            em.mov(r(in.a), r(in.b));
            break;
          case Op::Ld: {
            const auto [base, off] = addrOf(r(in.b), in.imm);
            em.ldr(r(in.a), base, off);
            break;
          }
          case Op::Ld8: {
            const auto [base, off] = addrOf(r(in.b), in.imm);
            em.ldrb(r(in.a), base, off);
            break;
          }
          case Op::St: {
            const auto [base, off] = addrOf(r(in.b), in.imm);
            em.str(r(in.a), base, off);
            break;
          }
          case Op::St8: {
            const auto [base, off] = addrOf(r(in.b), in.imm);
            em.strb(r(in.a), base, off);
            break;
          }
          case Op::Add: em.add(r(in.a), r(in.b), r(in.c)); break;
          case Op::Sub: em.sub(r(in.a), r(in.b), r(in.c)); break;
          case Op::And: em.and_(r(in.a), r(in.b), r(in.c)); break;
          case Op::Or: em.orr(r(in.a), r(in.b), r(in.c)); break;
          case Op::Xor: em.eor(r(in.a), r(in.b), r(in.c)); break;
          case Op::Mul: em.mul(r(in.a), r(in.b), r(in.c)); break;
          case Op::Udiv: em.udiv(r(in.a), r(in.b), r(in.c)); break;
          case Op::Shl: em.lsli(r(in.a), r(in.b),
                                static_cast<std::int32_t>(in.imm & 63));
            break;
          case Op::Shr: em.lsri(r(in.a), r(in.b),
                                static_cast<std::int32_t>(in.imm & 63));
            break;
          case Op::AddI:
            if (fitsImm14(in.imm)) {
                em.addi(r(in.a), r(in.b),
                        static_cast<std::int32_t>(in.imm));
            } else {
                em.movImm(Scratch, static_cast<std::uint64_t>(in.imm));
                em.add(r(in.a), r(in.b), Scratch);
            }
            break;
          case Op::SetCond:
            em.cmp(r(in.b), r(in.c));
            em.cset(r(in.a), in.cond);
            break;
          case Op::Mb:
            lowerFence(in.fence);
            break;
          case Op::Cas: {
            const XReg base = addrReg(r(in.b), in.imm);
            if (config_.rmw == RmwLowering::FencedRmw2) {
                // Figure 7b: DMBFF; RMW2; DMBFF.
                em.dmb(Barrier::Full);
                const auto retry = em.newLabel();
                const auto done = em.newLabel();
                em.bind(retry);
                em.ldxr(r(in.a), base);
                em.cmp(r(in.a), r(in.c));
                em.bcond(gx86::Cond::Ne, done);
                em.stxr(AtomicStatus, r(in.d), base);
                em.cbnz(AtomicStatus, retry);
                em.bind(done);
                em.dmb(Barrier::Full);
            } else {
                // Section 6.3: direct casal (expected in, old out).
                em.mov(r(in.a), r(in.c));
                em.casal(r(in.a), r(in.d), base);
            }
            break;
          }
          case Op::Xadd: {
            const XReg base = addrReg(r(in.b), in.imm);
            if (config_.rmw == RmwLowering::FencedRmw2) {
                em.dmb(Barrier::Full);
                const auto retry = em.newLabel();
                em.bind(retry);
                em.ldxr(r(in.a), base);
                em.add(AtomicScratch, r(in.a), r(in.d));
                em.stxr(AtomicStatus, AtomicScratch, base);
                em.cbnz(AtomicStatus, retry);
                em.dmb(Barrier::Full);
            } else {
                em.ldaddal(r(in.a), r(in.d), base);
            }
            break;
          }
          case Op::SetLabel:
            em.bind(hostLabel(in.label));
            break;
          case Op::Br:
            em.b(hostLabel(in.label));
            break;
          case Op::BrCond:
            em.cmp(r(in.b), r(in.c));
            em.bcond(in.cond, hostLabel(in.label));
            break;
          case Op::CallHelper:
            if (in.b != NoTemp)
                em.mov(HelperArg0, r(in.b));
            if (in.c != NoTemp)
                em.mov(HelperArg1, r(in.c));
            em.helper(static_cast<std::uint8_t>(in.helper),
                      static_cast<std::uint16_t>(in.imm));
            if (in.a != NoTemp)
                em.mov(r(in.a), HelperRet);
            break;
          case Op::ExitTb:
            if (in.b != NoTemp) {
                em.mov(DynExitReg, r(in.b));
                em.exitTb(slots.dynamicSlot());
            } else {
                const CodeAddr site = em.here();
                em.exitTb(slots.staticSlot(block.guestPc,
                                           static_cast<std::uint64_t>(in.imm),
                                           site, false));
            }
            break;
          case Op::GotoTb: {
            const CodeAddr site = em.here();
            em.exitTb(slots.staticSlot(block.guestPc,
                                       static_cast<std::uint64_t>(in.imm),
                                       site, config_.chaining));
            break;
          }
        }
        temps.expire(i + 1);
    }
    em.finish();
    return entry;
}

// --- The RV64 (RVWMO) host --------------------------------------------------

class Rv64Backend final : public HostBackend
{
  public:
    using HostBackend::HostBackend;

    support::HostIsa isa() const override
    {
        return support::HostIsa::Rv64;
    }

    CodeAddr compile(const Block &block, ExitSlotAllocator &slots) override;

    std::uint32_t
    exitTbWord(std::uint32_t slot) const override
    {
        rv64::RInstr exit;
        exit.op = rv64::ROp::ExitTb;
        exit.imm = static_cast<std::int32_t>(slot);
        return rv64::encode(exit);
    }

    bool
    isExitTbWord(std::uint32_t word) const override
    {
        return rv64::decode(word).op == rv64::ROp::ExitTb;
    }

    std::optional<std::uint32_t>
    chainBranchWord(std::int32_t word_delta) const override
    {
        // JAL reaches +-2^18 words (the 21-bit byte immediate).
        if (word_delta < -(1 << 18) || word_delta >= (1 << 18))
            return std::nullopt;
        rv64::RInstr jump;
        jump.op = rv64::ROp::Jal;
        jump.rd = Scratch; // Link value is dead across blocks.
        jump.imm = word_delta;
        return rv64::encode(jump);
    }
};

CodeAddr
Rv64Backend::compile(const Block &block, ExitSlotAllocator &slots)
{
    rv64::Emitter em(buffer_);
    const CodeAddr entry = em.here();
    TempAllocator temps(block);

    std::map<std::int32_t, rv64::Emitter::Label> labels;
    auto hostLabel = [&](std::int32_t ir_label) {
        auto it = labels.find(ir_label);
        if (it != labels.end())
            return it->second;
        const rv64::Emitter::Label l = em.newLabel();
        labels[ir_label] = l;
        return l;
    };

    auto addrOf = [&](XReg base, std::int64_t off) {
        if (fitsImm12(off))
            return std::pair<XReg, std::int32_t>(
                base, static_cast<std::int32_t>(off));
        em.li(Scratch, static_cast<std::uint64_t>(off));
        em.add(Scratch, base, Scratch);
        return std::pair<XReg, std::int32_t>(Scratch, 0);
    };

    auto lowerFence = [&](FenceKind kind) {
        const FenceKind f =
            mapping::lowerTcgFenceToRiscv(kind, config_.backend);
        if (f == FenceKind::None)
            return;
        em.fence(mapping::riscvFencePred(f), mapping::riscvFenceSucc(f));
    };

    for (std::size_t i = 0; i < block.instrs.size(); ++i) {
        const Instr &in = block.instrs[i];
        auto r = [&](TempId t) { return temps.reg(t, i); };

        // The atomic loops recompute the target address from r(in.b) on
        // every iteration (it is stable: the loop writes only the three
        // scratch registers), freeing the scratch register to hold the
        // zero the retry branch needs -- RISC-V has no compare-with-
        // immediate branch, and our x0 is a guest register, not zero.
        auto atomicBase = [&]() -> XReg {
            if (in.imm == 0)
                return r(in.b);
            if (fitsImm12(in.imm)) {
                em.addi(Scratch, r(in.b),
                        static_cast<std::int32_t>(in.imm));
            } else {
                em.li(Scratch, static_cast<std::uint64_t>(in.imm));
                em.add(Scratch, r(in.b), Scratch);
            }
            return Scratch;
        };

        switch (in.op) {
          case Op::MovI:
            em.li(r(in.a), static_cast<std::uint64_t>(in.imm));
            break;
          case Op::Mov:
            em.mv(r(in.a), r(in.b));
            break;
          case Op::Ld: {
            const auto [base, off] = addrOf(r(in.b), in.imm);
            em.ld(r(in.a), base, off);
            break;
          }
          case Op::Ld8: {
            const auto [base, off] = addrOf(r(in.b), in.imm);
            em.lbu(r(in.a), base, off);
            break;
          }
          case Op::St: {
            const auto [base, off] = addrOf(r(in.b), in.imm);
            em.sd(r(in.a), base, off);
            break;
          }
          case Op::St8: {
            const auto [base, off] = addrOf(r(in.b), in.imm);
            em.sb(r(in.a), base, off);
            break;
          }
          case Op::Add: em.add(r(in.a), r(in.b), r(in.c)); break;
          case Op::Sub: em.sub(r(in.a), r(in.b), r(in.c)); break;
          case Op::And: em.and_(r(in.a), r(in.b), r(in.c)); break;
          case Op::Or: em.or_(r(in.a), r(in.b), r(in.c)); break;
          case Op::Xor: em.xor_(r(in.a), r(in.b), r(in.c)); break;
          case Op::Mul: em.mul(r(in.a), r(in.b), r(in.c)); break;
          case Op::Udiv: em.divu(r(in.a), r(in.b), r(in.c)); break;
          case Op::Shl:
            em.slli(r(in.a), r(in.b),
                    static_cast<std::int32_t>(in.imm & 63));
            break;
          case Op::Shr:
            em.srli(r(in.a), r(in.b),
                    static_cast<std::int32_t>(in.imm & 63));
            break;
          case Op::AddI:
            if (fitsImm12(in.imm)) {
                em.addi(r(in.a), r(in.b),
                        static_cast<std::int32_t>(in.imm));
            } else {
                em.li(Scratch, static_cast<std::uint64_t>(in.imm));
                em.add(r(in.a), r(in.b), Scratch);
            }
            break;
          case Op::SetCond:
            // The flag semantics are those of the 64-bit difference
            // (ZF = d==0, SF = d<0 signed), so every condition reads
            // off `sub` + one slti/sltiu (+ xori for the negations).
            em.sub(r(in.a), r(in.b), r(in.c));
            switch (in.cond) {
              case gx86::Cond::Eq:
                em.sltiu(r(in.a), r(in.a), 1);
                break;
              case gx86::Cond::Ne:
                em.sltiu(r(in.a), r(in.a), 1);
                em.xori(r(in.a), r(in.a), 1);
                break;
              case gx86::Cond::Lt:
                em.slti(r(in.a), r(in.a), 0);
                break;
              case gx86::Cond::Ge:
                em.slti(r(in.a), r(in.a), 0);
                em.xori(r(in.a), r(in.a), 1);
                break;
              case gx86::Cond::Le:
                em.slti(r(in.a), r(in.a), 1);
                break;
              case gx86::Cond::Gt:
                em.slti(r(in.a), r(in.a), 1);
                em.xori(r(in.a), r(in.a), 1);
                break;
            }
            break;
          case Op::Mb:
            lowerFence(in.fence);
            break;
          case Op::Cas: {
            // LR/SC compare-and-swap. The verified scheme uses the
            // fully-ordered .aqrl pair (spec A.3.3 -- the casal
            // strengthening analogue); FencedRmw2 brackets a plain pair
            // with `fence rw,rw` (Figure 7b transplanted).
            const bool fenced = config_.rmw == RmwLowering::FencedRmw2;
            const bool aq = !fenced;
            const bool rl = !fenced;
            if (fenced)
                em.fence(rv64::FenceRW, rv64::FenceRW);
            const auto retry = em.newLabel();
            const auto done = em.newLabel();
            em.bind(retry);
            const XReg base = atomicBase();
            em.lr(AtomicScratch, base, aq, rl);
            em.bne(AtomicScratch, r(in.c), done); // Mismatch: old out.
            em.sc(AtomicScratch, r(in.d), base, aq, rl);
            em.lui(Scratch, 0);
            em.bne(AtomicScratch, Scratch, retry);
            em.mv(AtomicScratch, r(in.c)); // Success: old == expected.
            em.bind(done);
            em.mv(r(in.a), AtomicScratch);
            if (fenced)
                em.fence(rv64::FenceRW, rv64::FenceRW);
            break;
          }
          case Op::Xadd: {
            if (config_.rmw == RmwLowering::FencedRmw2) {
                em.fence(rv64::FenceRW, rv64::FenceRW);
                const auto retry = em.newLabel();
                em.bind(retry);
                const XReg base = atomicBase();
                em.lr(AtomicScratch, base, false, false);
                em.add(AtomicStatus, AtomicScratch, r(in.d));
                em.sc(AtomicStatus, AtomicStatus, base, false, false);
                em.lui(Scratch, 0);
                em.bne(AtomicStatus, Scratch, retry);
                em.mv(r(in.a), AtomicScratch);
                em.fence(rv64::FenceRW, rv64::FenceRW);
            } else {
                // Fully ordered AMO (spec A.3.3).
                const XReg base = atomicBase();
                em.amoadd(r(in.a), r(in.d), base, true, true);
            }
            break;
          }
          case Op::SetLabel:
            em.bind(hostLabel(in.label));
            break;
          case Op::Br:
            em.jal(Scratch, hostLabel(in.label));
            break;
          case Op::BrCond: {
            em.sub(Scratch, r(in.b), r(in.c));
            em.lui(AtomicScratch, 0);
            const auto l = hostLabel(in.label);
            switch (in.cond) {
              case gx86::Cond::Eq:
                em.beq(Scratch, AtomicScratch, l);
                break;
              case gx86::Cond::Ne:
                em.bne(Scratch, AtomicScratch, l);
                break;
              case gx86::Cond::Lt:
                em.blt(Scratch, AtomicScratch, l);
                break;
              case gx86::Cond::Ge:
                em.bge(Scratch, AtomicScratch, l);
                break;
              case gx86::Cond::Le: // d <= 0  <=>  0 >= d.
                em.bge(AtomicScratch, Scratch, l);
                break;
              case gx86::Cond::Gt: // d > 0  <=>  0 < d.
                em.blt(AtomicScratch, Scratch, l);
                break;
            }
            break;
          }
          case Op::CallHelper:
            if (in.b != NoTemp)
                em.mv(HelperArg0, r(in.b));
            if (in.c != NoTemp)
                em.mv(HelperArg1, r(in.c));
            em.helper(static_cast<std::uint8_t>(in.helper),
                      static_cast<std::uint16_t>(in.imm));
            if (in.a != NoTemp)
                em.mv(r(in.a), HelperRet);
            break;
          case Op::ExitTb:
            if (in.b != NoTemp) {
                em.mv(DynExitReg, r(in.b));
                em.exitTb(slots.dynamicSlot());
            } else {
                const CodeAddr site = em.here();
                em.exitTb(slots.staticSlot(block.guestPc,
                                           static_cast<std::uint64_t>(in.imm),
                                           site, false));
            }
            break;
          case Op::GotoTb: {
            const CodeAddr site = em.here();
            em.exitTb(slots.staticSlot(block.guestPc,
                                       static_cast<std::uint64_t>(in.imm),
                                       site, config_.chaining));
            break;
          }
        }
        temps.expire(i + 1);
    }
    em.finish();
    return entry;
}

} // namespace

// --- The facade -------------------------------------------------------------

Backend::Backend(aarch::CodeBuffer &buffer, const DbtConfig &config)
{
    switch (config.host) {
      case support::HostIsa::Rv64:
        impl_ = std::make_unique<Rv64Backend>(buffer, config);
        break;
      case support::HostIsa::Aarch:
        impl_ = std::make_unique<AarchBackend>(buffer, config);
        break;
    }
    panicIf(impl_ == nullptr, "unknown host backend");
}

Backend::~Backend() = default;

aarch::CodeAddr
Backend::emitExitTb(std::uint32_t slot)
{
    return impl_->emitExitTb(slot);
}

} // namespace risotto::dbt
