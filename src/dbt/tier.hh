/**
 * @file
 * Execution tiers of the DBT pipeline.
 *
 * The engine executes guest code at three tiers:
 *  - tier 0 (interpreter): one guest block at a time, SC-bracketed, used
 *    when translation is impossible or has permanently failed;
 *  - tier 1 (baseline): per-block guarded translation, the classic
 *    QEMU-style path;
 *  - tier 2 (superblock): profile-guided retranslation of a hot chain of
 *    blocks as one straight-line region, unlocking cross-block fence
 *    merging and redundant-access elimination (sound under the verified
 *    mappings, Section 5.4 / Figure 10).
 *
 * Tiers share the engine's services (frontend, backend, code buffer,
 * translation cache, chain manager) and are orchestrated by Dbt, which
 * decides promotion at ExitTb/chain-resolution time.
 */

#ifndef RISOTTO_DBT_TIER_HH
#define RISOTTO_DBT_TIER_HH

#include <cstdint>
#include <optional>
#include <string>

#include "aarch/emitter.hh"
#include "gx86/isa.hh"

namespace risotto::machine
{
class Machine;
struct Core;
} // namespace risotto::machine

namespace risotto::dbt
{

/** Execution tier of a translated (or interpreted) block. */
enum class Tier : std::uint8_t
{
    Interpreter = 0, ///< Per-block interpreter fallback.
    Baseline = 1,    ///< Per-block baseline translation.
    Superblock = 2,  ///< Profile-guided superblock translation.
    Template = 3,    ///< Tier-0.5 pre-validated template translation.
};

/** Short name of a tier ("interp", "tier0.5", "tier1", "tier2"). */
std::string tierName(Tier tier);

/** Where a translation request comes from: outside a run both pointers
 * are null; from an ExitTb trap they identify the trapped core (which
 * determines whether a translation-cache flush is safe). */
struct TranslationEnv
{
    const machine::Machine *machine = nullptr;
    const machine::Core *core = nullptr;
};

/** Engine services a tier may call back into (implemented by Dbt). */
class TierHost
{
  public:
    virtual ~TierHost() = default;

    /** True when dropping all translated code cannot strand a core. */
    virtual bool canFlushTranslationCache(const TranslationEnv &env)
        const = 0;

    /** Drop every translation and re-emit the dispatch stub. */
    virtual void flushTranslationCache() = 0;
};

/**
 * One execution tier: turns a guest pc into runnable host code at its
 * own level of effort. Returning nullopt means this tier cannot produce
 * code for the block (the engine degrades to a lower tier).
 */
class ExecutionTier
{
  public:
    virtual ~ExecutionTier() = default;

    /** The tier this strategy produces code at. */
    virtual Tier level() const = 0;

    /** Produce host code for the block (or region) at @p pc. */
    virtual std::optional<aarch::CodeAddr>
    translate(gx86::Addr pc, const TranslationEnv &env) = 0;
};

} // namespace risotto::dbt

#endif // RISOTTO_DBT_TIER_HH
