#include "dbt/dbt.hh"

#include <algorithm>
#include <chrono>

#include "dbt/softfloat.hh"
#include "persist/fingerprint.hh"
#include "support/error.hh"

namespace risotto::dbt
{

using aarch::CodeAddr;
using machine::Core;
using machine::Machine;
using tcg::HelperId;

namespace
{

/** Words pre-reserved in the code buffer at engine construction (64
 * KiB of host code -- enough for the whole cold working set of every
 * suite workload, and a no-op for engines that grow past it). */
constexpr std::size_t InitialCodeBufferWords = 16384;

} // namespace

Dbt::Dbt(const gx86::GuestImage &image, DbtConfig config,
         const ImportResolver *resolver, HostCallHandler *hostcalls)
    : image_(image), config_(std::move(config)), resolver_(resolver),
      hostcalls_(hostcalls), frontend_(image_, config_, resolver_),
      backend_(code_, config_), faults_(config_.faults),
      chains_(code_, &backend_),
      interp_(image_, config_, resolver_, hostcalls_, code_, backend_,
              chains_, *this, stats_),
      baseline_(frontend_, backend_, code_, chains_, faults_, config_, *this,
                stats_),
      super_(frontend_, backend_, code_, chains_, cache_, config_, stats_),
      template_(backend_, code_, chains_, faults_, config_, *this, stats_)
{
    code_.setCapacity(config_.codeBufferCapacity);
    if (config_.validateTranslations) {
        verify::ValidatorOptions options;
        options.rmw = config_.rmw;
        validator_ = std::make_unique<verify::TbValidator>(options);
        baseline_.setValidator(validator_.get(), &violations_);
        super_.setValidator(validator_.get(), &violations_);
    }
    if (config_.decodeCache) {
        gx86::FusionConfig fusion;
        fusion.enabled = config_.fusion;
        if (config_.fusion) {
            // Each fused handler's obligation graph is checked once per
            // pattern, not per dynamic pair; patterns that fail are
            // disabled wholesale before the segment is built.
            verify::ValidatorOptions options;
            options.rmw = config_.rmw;
            fusionReports_ = verify::validateFusionPatterns(options);
            const std::size_t disabled =
                verify::applyFusionReports(fusionReports_, fusion);
            std::uint64_t pairs = 0;
            for (const auto &report : fusionReports_)
                pairs += report.pairsChecked;
            stats_.set("dbt.fusion_patterns_checked",
                       fusionReports_.size());
            stats_.set("dbt.fusion_patterns_disabled", disabled);
            stats_.set("dbt.fusion_pairs_checked", pairs);
        }
        segment_ = gx86::DecodedSegment::build(image_, fusion);
        stats_.set("dbt.segment_entries", segment_->validEntries());
        stats_.set("dbt.segment_invalid_entries",
                   segment_->invalidEntries());
        stats_.set("dbt.segment_fused_entries", segment_->fusedEntries());
        frontend_.setSegment(segment_.get());
        interp_.setSegment(segment_.get());
    }
    if (config_.analysis) {
        // One linear pass over the (ideally pre-decoded) text; runs
        // after the segment so it is decode-free when possible.
        analysis_ = std::make_unique<analysis::ImageAnalysis>(
            analysis::analyzeImage(image_, segment_.get()));
        stats_.set("analysis.blocks_local", analysis_->blocksLocal);
        stats_.set("analysis.blocks_ordered", analysis_->blocksOrdered);
        stats_.set("analysis.blocks_hot", analysis_->blocksHot);
        stats_.set("analysis.rsp_private", analysis_->rspPrivate ? 1 : 0);
        stats_.set("analysis.fences_elidable", analysis_->fencesElidable);
        stats_.set("analysis.findings", analysis_->findings.size());
        stats_.set("analysis.unreachable_islands",
                   analysis_->unreachableIslands);
        if (config_.analysisElide)
            frontend_.setAnalysis(analysis_.get());
        analysisState_.analysis = analysis_.get();
        analysisState_.elide = config_.analysisElide;
        analysisState_.skip = config_.analysisSkip;
        analysisState_.paranoid = config_.analysisParanoid;
        baseline_.setAnalysis(&analysisState_);
        super_.setAnalysis(&analysisState_);
    }
    if (config_.templateTier) {
        // Tier 0.5 plans straight off the pre-decoded segment and
        // asserts bit-identity with the tier-1 pipeline; each condition
        // below breaks one leg of that claim, so the tier stands down
        // (with a counter) rather than diverge.
        if (!config_.decodeCache) {
            stats_.set("dbt.template_disabled_no_segment", 1);
        } else if (config_.validateTranslations) {
            // Per-TB validation wants the block's IR in hand; keep
            // every validated block on the tier-1 path.
            stats_.set("dbt.template_disabled_validate", 1);
        } else if (config_.analysis && config_.analysisElide) {
            // Locality-elided blocks drop fences the templates carry.
            stats_.set("dbt.template_disabled_elide", 1);
        } else {
            template_.setSegment(segment_.get());
            // Each template kind's obligation graph is checked once per
            // engine (the fusion-pattern amortization argument); kinds
            // that fail are disabled wholesale.
            const auto probes =
                buildTemplateProbes(config_, template_.templates());
            verify::ValidatorOptions options;
            options.rmw = config_.rmw;
            templateReports_ =
                verify::validateTemplatePatterns(probes, options);
            const std::size_t disabled = applyTemplateReports(
                templateReports_, template_.templates());
            std::uint64_t pairs = 0;
            for (const auto &report : templateReports_)
                pairs += report.pairsChecked;
            stats_.set("dbt.template_patterns_checked",
                       templateReports_.size());
            stats_.set("dbt.template_patterns_disabled", disabled);
            stats_.set("dbt.template_pairs_checked", pairs);
            templateActive_ = true;
            // The entry block is known now; plan it before the first
            // dispatch ever asks (planning makes no fault-injection
            // draws and bumps no counters, so the schedule and the
            // differentials cannot see this).
            template_.preplan(image_.entry);
        }
    }
    // Grow the code buffer once, up front: the first block's host words
    // land inside the time-to-first-dispatch window, and the vector's
    // reallocation ladder would be charged to it (identically in every
    // tier, but it is pure cold-start latency either way).
    code_.reserve(config_.codeBufferCapacity != 0
                      ? std::min(InitialCodeBufferWords,
                                 config_.codeBufferCapacity)
                      : InitialCodeBufferWords);
    emitDynInterpStub();
    // Not under fence elision: the frontend's fencesElided_ counter is
    // cumulative and the warmup block would be counted twice.
    if (!(config_.analysis && config_.analysisElide))
        warmTranslationPipeline();
}

bool
Dbt::setCertificate(analysis::Certificate cert)
{
    if (!analysis::certificateMatches(cert, cachedImageDigest(),
                                      persist::configFingerprint(
                                          config_))) {
        stats_.bump("analysis.cert_rejected");
        return false;
    }
    certificate_ = std::move(cert);
    analysisState_.certificate = &*certificate_;
    stats_.set("analysis.cert_entries", certificate_->entries.size());
    stats_.set("analysis.cert_validated",
               certificate_->validatedCount());
    return true;
}

std::uint64_t
Dbt::guestInsnEstimate() const
{
    std::uint64_t insns = stats_.get("dbt.fallback_instructions");
    for (const auto &[pc, tb] : cache_.all()) {
        if (tb.execCount == 0)
            continue;
        std::uint64_t perExec = 0;
        try {
            if (tb.path.empty()) {
                perExec = frontend_.decodeBlock(pc).size();
            } else {
                for (gx86::Addr member : tb.path)
                    perExec += frontend_.decodeBlock(member).size();
            }
        } catch (const Error &) {
            continue; // unprofileable block: undercount, never throw
        }
        insns += tb.execCount * perExec;
    }
    return insns;
}

void
Dbt::emitDynInterpStub()
{
    dynInterpStub_ = backend_.emitExitTb(chains_.dynamicSlot());
}

void
Dbt::warmTranslationPipeline()
{
    const CodeAddr codeCheckpoint = code_.end();
    const std::size_t slotCheckpoint = chains_.slotCount();
    try {
        tcg::Block block = frontend_.translate(image_.entry);
        tcg::optimize(block, config_.optimizer, nullptr);
        backend_.compile(block, chains_);
        frontend_.recycle(std::move(block));
    } catch (...) {
        // An unwarmable entry (undecodable, buffer cap smaller than
        // the stub + one block) is the run's problem to surface, with
        // its own counters and fault semantics -- not the warmup's.
    }
    code_.truncate(codeCheckpoint);
    chains_.truncateSlots(slotCheckpoint);
}

bool
Dbt::canFlushTranslationCache(const TranslationEnv &env) const
{
    if (!env.machine)
        return true;
    // Safe only when no other core can be executing translated code:
    // the trapped core gets a fresh target from onExitTb's return value,
    // but any other running core would be stranded mid-buffer.
    for (std::size_t i = 0; i < env.machine->coreCount(); ++i) {
        const Core &c = env.machine->core(i);
        if (!c.halted && (!env.core || c.id != env.core->id))
            return false;
    }
    return true;
}

void
Dbt::flushTranslationCache()
{
    cache_.flush();
    chains_.flush();
    interp_.flush();
    code_.truncate(0);
    emitDynInterpStub();
    stats_.bump("dbt.tb_flushes");
}

std::optional<CodeAddr>
Dbt::lookupOrTranslateGuarded(gx86::Addr pc, const TranslationEnv &env)
{
    if (const TbInfo *tb = cache_.find(pc)) {
        stats_.bump("dbt.tb_hits");
        return tb->entry;
    }
    if (templateActive_ && template_.covers(pc)) {
        const auto host = template_.translate(pc, env);
        if (host)
            cache_.insert(pc, *host, code_.end() - *host,
                          Tier::Template);
        // A covered block that still fails (injected faults, buffer
        // exhaustion) degrades to the interpreter exactly like a failed
        // baseline block -- NOT to tier 1, whose additional injection
        // draws would diverge the fault schedule from a template-off
        // run of the same plan.
        return host;
    }
    const auto host = baseline_.translate(pc, env);
    if (host)
        cache_.insert(pc, *host, code_.end() - *host, Tier::Baseline);
    return host;
}

CodeAddr
Dbt::lookupOrTranslate(gx86::Addr pc)
{
    const TranslationEnv env; // Outside a run: flushing is always safe.
    if (const auto host = lookupOrTranslateGuarded(pc, env))
        return *host;
    const auto trampoline = interp_.translate(pc, env);
    panicIf(!trampoline, "interpreter trampoline emission failed");
    return *trampoline;
}

std::optional<CodeAddr>
Dbt::maybePromote(gx86::Addr pc, std::uint64_t exec_count,
                  const TranslationEnv &env)
{
    if (!config_.tier2 || config_.tier2Threshold == 0)
        return std::nullopt;
    const TbInfo *tb = cache_.find(pc);
    if (!tb ||
        (tb->tier != Tier::Baseline && tb->tier != Tier::Template) ||
        tb->promotionFailed || exec_count < config_.tier2Threshold)
        return std::nullopt;
    return super_.translate(pc, env);
}

std::optional<CodeAddr>
Dbt::onExitTb(std::uint32_t slot_index, Core &core, Machine &machine)
{
    const ExitSlot slot = chains_.slot(slot_index);
    const std::uint64_t target_pc =
        slot.dynamic ? core.x[DynExitReg] : slot.guestPc;
    if (target_pc == HaltPc)
        return std::nullopt;
    const std::uint64_t epoch = chains_.epoch();
    const TranslationEnv env{&machine, &core};
    if (auto host = lookupOrTranslateGuarded(target_pc, env)) {
        if (epoch != chains_.epoch()) {
            // Translation flushed the cache: the trapping slot (and the
            // profile that fed it) died with the old generation.
            return *host;
        }
        const std::uint64_t count = cache_.noteExecution(target_pc);
        if (slot.chainable && slot.sourcePc != 0)
            cache_.recordSuccessor(slot.sourcePc, target_pc);
        if (const auto promoted = maybePromote(target_pc, count, env)) {
            core.cycles += machine.config().costs.superblockPromotion;
            host = *promoted;
        }
        // Patch the goto_tb into a direct branch (block chaining). With
        // tier 2 enabled the patch is deferred until the target is warm
        // -- promoted, past the threshold, or marked unpromotable -- so
        // the exit keeps trapping (and profiling) exactly as long as the
        // promotion policy needs it.
        const bool tier2_profiling =
            config_.tier2 && config_.tier2Threshold > 0;
        const TbInfo *tb = cache_.find(target_pc);
        const bool warm = !tier2_profiling ||
                          count >= config_.tier2Threshold ||
                          (tb && (tb->tier == Tier::Superblock ||
                                  tb->promotionFailed));
        if (slot.chainable && config_.chaining && warm &&
            epoch == chains_.epoch()) {
            chains_.chain(slot_index, *host);
            stats_.bump("dbt.chained");
        }
        return *host;
    }
    // Degraded mode: interpret exactly one guest block, then re-enter
    // the engine through the shared dynamic-exit stub. One block per
    // trap keeps the machine's scheduler and cycle budget in control.
    const std::uint64_t next =
        interp_.interpretOne(target_pc, core, machine);
    if (core.halted || next == HaltPc)
        return std::nullopt;
    core.x[DynExitReg] = next;
    return dynInterpStub_;
}

std::uint64_t
Dbt::invokeHelper(std::uint8_t id, std::uint16_t extra, Core &core,
                  Machine &machine)
{
    return invokeRuntimeHelper(id, extra, core, machine, hostcalls_,
                               stats_);
}

std::uint64_t
invokeRuntimeHelper(std::uint8_t id, std::uint16_t extra, Core &core,
                    Machine &machine, HostCallHandler *hostcalls,
                    StatSet &stats)
{
    const auto helper = static_cast<HelperId>(id);
    auto &arg0 = core.x[HelperArg0];
    auto &arg1 = core.x[HelperArg1];
    auto &ret = core.x[HelperRet];

    switch (helper) {
      case HelperId::CasHelper: {
        // QEMU helper path: a seq-cst GCC builtin, i.e. a full barrier
        // around an atomic CAS. Expected value follows the x86
        // convention: guest R0.
        const std::uint64_t addr = arg0;
        const std::uint64_t desired = arg1;
        const std::uint64_t expected = core.x[0];
        machine.flushStoreBuffer(core);
        std::uint64_t cost = machine.atomicAccessCost(core, addr);
        const std::uint64_t old = machine.memory().load64(addr);
        if (old == expected)
            machine.directWrite(core, addr, 8, desired);
        ret = old;
        machine.stats().bump("machine.cas_ops");
        return cost + 18;
      }
      case HelperId::XaddHelper: {
        const std::uint64_t addr = arg0;
        const std::uint64_t addend = arg1;
        machine.flushStoreBuffer(core);
        std::uint64_t cost = machine.atomicAccessCost(core, addr);
        const std::uint64_t old = machine.memory().load64(addr);
        machine.directWrite(core, addr, 8, old + addend);
        ret = old;
        machine.stats().bump("machine.atomic_adds");
        return cost + 18;
      }
      case HelperId::FAdd64: {
        const auto r = softfloat::add64(arg0, arg1);
        ret = r.bits;
        return r.cycles;
      }
      case HelperId::FSub64: {
        const auto r = softfloat::sub64(arg0, arg1);
        ret = r.bits;
        return r.cycles;
      }
      case HelperId::FMul64: {
        const auto r = softfloat::mul64(arg0, arg1);
        ret = r.bits;
        return r.cycles;
      }
      case HelperId::FDiv64: {
        const auto r = softfloat::div64(arg0, arg1);
        ret = r.bits;
        return r.cycles;
      }
      case HelperId::FSqrt64: {
        const auto r = softfloat::sqrt64(arg0);
        ret = r.bits;
        return r.cycles;
      }
      case HelperId::CvtIF64: {
        const auto r = softfloat::fromInt64(arg0);
        ret = r.bits;
        return r.cycles;
      }
      case HelperId::CvtFI64: {
        const auto r = softfloat::toInt64(arg0);
        ret = r.bits;
        return r.cycles;
      }
      case HelperId::Syscall:
        switch (core.x[0]) {
          case 0: // exit(code = g1)
            core.exitCode = static_cast<std::int64_t>(core.x[1]);
            core.halted = true;
            return 20;
          case 1: // putchar(g1)
            core.output.push_back(static_cast<char>(core.x[1]));
            return 20;
          case 2: // cycle counter into g0
            core.x[0] = core.cycles;
            return 20;
          default:
            throw GuestFault("unknown guest syscall " +
                             std::to_string(core.x[0]));
        }
      case HelperId::HostCall:
        panicIf(!hostcalls, "host call without a handler");
        stats.bump("dbt.host_calls");
        return hostcalls->invokeHostFunction(extra, core, machine);
      case HelperId::None:
        break;
    }
    panic("unknown helper id " + std::to_string(id));
}

RunResult
Dbt::run(const std::vector<ThreadSpec> &threads,
         machine::MachineConfig machine_config,
         std::uint64_t max_cycles_per_core)
{
    auto memory = std::make_shared<gx86::Memory>();
    memory->loadImage(image_);

    // One plan drives the whole pipeline: arm the machine's sites from
    // the DBT plan unless the caller supplied a machine-specific one.
    if (!machine_config.faults.armed() && config_.faults.armed())
        machine_config.faults = config_.faults;

    // The machine must execute the ISA the backend emitted.
    machine_config.hostIsa = config_.host;

    Machine machine(code_, *memory, machine_config);
    machine.setRuntime(this);

    // Time-to-first-dispatch: the cold-start latency from "engine
    // ready" to "entry block runnable" -- the metric tier 0.5 exists
    // to improve. Only the first run of an engine measures a cold
    // entry; later runs hit the TB cache (still reported faithfully).
    const auto dispatch_start = std::chrono::steady_clock::now();
    const CodeAddr entry_host = lookupOrTranslate(image_.entry);
    stats_.set(
        "dbt.time_to_first_dispatch_ns",
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - dispatch_start)
                .count()));
    for (std::size_t t = 0; t < threads.size(); ++t) {
        const std::size_t core_index = machine.addCore(entry_host);
        Core &core = machine.core(core_index);
        for (std::size_t r = 0; r < gx86::RegCount; ++r)
            core.x[r] = threads[t].regs[r];
        // Disjoint guest stacks (guest R15 is the stack pointer).
        core.x[gx86::Rsp] =
            gx86::DefaultStackTop - t * 0x40000;
    }

    RunResult result;
    result.finished = machine.run(max_cycles_per_core);
    for (std::size_t t = 0; t < threads.size(); ++t) {
        result.exitCodes.push_back(machine.core(t).exitCode);
        result.outputs.push_back(machine.core(t).output);
    }
    result.makespan = machine.makespan();
    result.totalCycles = machine.totalCycles();
    result.diagnosis = machine.diagnosis();
    stats_.set("dbt.jump_cache_hits", cache_.jumpCacheHits());
    stats_.set("dbt.jump_cache_misses", cache_.jumpCacheMisses());
    stats_.set("dbt.arena_reuses", frontend_.arena().reuses());
    stats_.set("dbt.arena_mints", frontend_.arena().mints());
    result.stats = stats_;
    result.stats.merge(machine.stats());
    result.stats.merge(faults_.stats());
    result.stats.merge(machine.faults().stats());
    result.fallbackBlocks = stats_.get("dbt.fallback_blocks");
    result.translationRetries = stats_.get("dbt.translate_retries");
    result.tier2Superblocks = stats_.get("dbt.tier2_superblocks");
    result.tier2BlocksSubsumed = stats_.get("dbt.tier2_blocks_subsumed");
    result.crossBlockFencesRemoved =
        stats_.get("opt.xblock_fences_removed");
    result.crossBlockMemOpsEliminated =
        stats_.get("opt.xblock_mem_ops_eliminated");
    result.validationViolations = stats_.get("verify.violations");
    result.memory = std::move(memory);
    return result;
}

} // namespace risotto::dbt
