#include "dbt/dbt.hh"

#include <algorithm>

#include "dbt/fallback.hh"
#include "dbt/softfloat.hh"
#include "support/error.hh"
#include "tcg/optimizer.hh"

namespace risotto::dbt
{

using aarch::CodeAddr;
using machine::Core;
using machine::Machine;
using tcg::HelperId;

Dbt::Dbt(const gx86::GuestImage &image, DbtConfig config,
         const ImportResolver *resolver, HostCallHandler *hostcalls)
    : image_(image), config_(std::move(config)), resolver_(resolver),
      hostcalls_(hostcalls), frontend_(image_, config_, resolver_),
      backend_(code_, config_), faults_(config_.faults)
{
    code_.setCapacity(config_.codeBufferCapacity);
    emitDynInterpStub();
}

void
Dbt::emitDynInterpStub()
{
    aarch::Emitter emitter(code_);
    dynInterpStub_ = emitter.here();
    emitter.exitTb(dynamicSlot());
    emitter.finish();
}

CodeAddr
Dbt::interpTrampoline(gx86::Addr pc)
{
    auto it = interpTrampolines_.find(pc);
    if (it != interpTrampolines_.end())
        return it->second;
    auto emit = [&]() {
        aarch::Emitter emitter(code_);
        const CodeAddr at = emitter.here();
        emitter.exitTb(staticSlot(pc, at, false));
        emitter.finish();
        return at;
    };
    CodeAddr at;
    try {
        at = emit();
    } catch (const aarch::CodeBufferFull &) {
        // Trampolines are only emitted outside a run (onExitTb degrades
        // through the shared dynamic stub instead), so flushing here
        // cannot strand a core.
        flushTranslationCache();
        at = emit();
    }
    interpTrampolines_[pc] = at;
    return at;
}

bool
Dbt::canFlushTranslationCache(const Machine *machine,
                              const Core *current) const
{
    if (!machine)
        return true;
    // Safe only when no other core can be executing translated code:
    // the trapped core gets a fresh target from onExitTb's return value,
    // but any other running core would be stranded mid-buffer.
    for (std::size_t i = 0; i < machine->coreCount(); ++i) {
        const Core &c = machine->core(i);
        if (!c.halted && (!current || c.id != current->id))
            return false;
    }
    return true;
}

void
Dbt::flushTranslationCache()
{
    tbCache_.clear();
    interpTrampolines_.clear();
    slots_.clear();
    dynSlotMade_ = false;
    code_.truncate(0);
    ++flushEpoch_;
    emitDynInterpStub();
    stats_.bump("dbt.tb_flushes");
}

std::optional<CodeAddr>
Dbt::tryTranslate(gx86::Addr pc, const Machine *machine,
                  const Core *current)
{
    const unsigned attempts = std::max(1u, config_.translateRetries);
    std::uint64_t pendingDecode = 0;
    std::uint64_t pendingEncode = 0;
    std::uint64_t pendingBuffer = 0;
    auto recoverPending = [&]() {
        // Every exit path continues execution correctly (retried host
        // code or the interpreter fallback), so earlier injections are
        // recovered by construction.
        faults_.recovered(faultsites::DbtDecode, pendingDecode);
        faults_.recovered(faultsites::DbtEncode, pendingEncode);
        faults_.recovered(faultsites::DbtBuffer, pendingBuffer);
    };

    for (unsigned attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0)
            stats_.bump("dbt.translate_retries");
        if (faults_.shouldInject(faultsites::DbtDecode)) {
            ++pendingDecode;
            continue;
        }
        const CodeAddr codeCheckpoint = code_.end();
        const std::size_t slotCheckpoint = slots_.size();
        bool injectedBuffer = false;
        try {
            tcg::Block block = frontend_.translate(pc);
            stats_.bump("dbt.tbs_translated");
            stats_.bump("dbt.ir_ops_pre_opt", block.instrs.size());
            tcg::optimize(block, config_.optimizer, &stats_);
            stats_.bump("dbt.ir_ops_post_opt", block.instrs.size());
            if (faults_.shouldInject(faultsites::DbtEncode)) {
                ++pendingEncode;
                continue;
            }
            if (faults_.shouldInject(faultsites::DbtBuffer)) {
                injectedBuffer = true;
                throw aarch::CodeBufferFull("injected fault");
            }
            const CodeAddr host = backend_.compile(block, *this);
            stats_.bump("dbt.host_words", code_.end() - host);
            recoverPending();
            return host;
        } catch (const aarch::CodeBufferFull &) {
            // Roll back the partially emitted block, then flush the
            // whole cache when no other core can be stranded by it.
            code_.truncate(codeCheckpoint);
            slots_.resize(slotCheckpoint);
            if (injectedBuffer)
                ++pendingBuffer;
            stats_.bump("dbt.buffer_full");
            if (canFlushTranslationCache(machine, current))
                flushTranslationCache();
        } catch (const GuestFault &) {
            // Genuinely untranslatable (invalid opcode, bad pc):
            // retrying cannot help; the interpreter will surface the
            // fault at execution time if the block is actually reached.
            code_.truncate(codeCheckpoint);
            slots_.resize(slotCheckpoint);
            break;
        }
    }
    recoverPending();
    return std::nullopt;
}

std::optional<CodeAddr>
Dbt::lookupOrTranslateGuarded(gx86::Addr pc, const Machine *machine,
                              const Core *current)
{
    auto it = tbCache_.find(pc);
    if (it != tbCache_.end()) {
        stats_.bump("dbt.tb_hits");
        return it->second;
    }
    const auto host = tryTranslate(pc, machine, current);
    if (host)
        tbCache_[pc] = *host;
    return host;
}

CodeAddr
Dbt::lookupOrTranslate(gx86::Addr pc)
{
    if (const auto host = lookupOrTranslateGuarded(pc, nullptr, nullptr))
        return *host;
    return interpTrampoline(pc);
}

std::uint32_t
Dbt::staticSlot(std::uint64_t guest_pc, CodeAddr patch_site, bool chainable)
{
    ExitSlot slot;
    slot.guestPc = guest_pc;
    slot.patchSite = patch_site;
    slot.chainable = chainable;
    slots_.push_back(slot);
    return static_cast<std::uint32_t>(slots_.size() - 1);
}

std::uint32_t
Dbt::dynamicSlot()
{
    if (!dynSlotMade_) {
        ExitSlot slot;
        slot.dynamic = true;
        slots_.push_back(slot);
        dynSlot_ = static_cast<std::uint32_t>(slots_.size() - 1);
        dynSlotMade_ = true;
    }
    return dynSlot_;
}

std::optional<CodeAddr>
Dbt::onExitTb(std::uint32_t slot_index, Core &core, Machine &machine)
{
    panicIf(slot_index >= slots_.size(), "bad exit slot");
    const ExitSlot slot = slots_[slot_index];
    const std::uint64_t target_pc =
        slot.dynamic ? core.x[DynExitReg] : slot.guestPc;
    if (target_pc == HaltPc)
        return std::nullopt;
    const std::uint64_t epoch = flushEpoch_;
    if (const auto host =
            lookupOrTranslateGuarded(target_pc, &machine, &core)) {
        // Patch the goto_tb into a direct branch (block chaining) --
        // unless a cache flush discarded the exit's patch site.
        if (slot.chainable && config_.chaining && epoch == flushEpoch_) {
            aarch::AInstr branch;
            branch.op = aarch::AOp::B;
            branch.imm = static_cast<std::int32_t>(*host) -
                         static_cast<std::int32_t>(slot.patchSite);
            code_.patch(slot.patchSite, aarch::encode(branch));
            stats_.bump("dbt.chained");
        }
        return *host;
    }
    // Degraded mode: interpret exactly one guest block, then re-enter
    // the engine through the shared dynamic-exit stub. One block per
    // trap keeps the machine's scheduler and cycle budget in control.
    stats_.bump("dbt.fallback_blocks");
    const std::uint64_t next = interpretBlock(
        image_, config_, resolver_, hostcalls_, target_pc, core, machine,
        stats_);
    if (core.halted || next == HaltPc)
        return std::nullopt;
    core.x[DynExitReg] = next;
    return dynInterpStub_;
}

std::uint64_t
Dbt::invokeHelper(std::uint8_t id, std::uint16_t extra, Core &core,
                  Machine &machine)
{
    const auto helper = static_cast<HelperId>(id);
    auto &arg0 = core.x[HelperArg0];
    auto &arg1 = core.x[HelperArg1];
    auto &ret = core.x[HelperRet];

    switch (helper) {
      case HelperId::CasHelper: {
        // QEMU helper path: a seq-cst GCC builtin, i.e. a full barrier
        // around an atomic CAS. Expected value follows the x86
        // convention: guest R0.
        const std::uint64_t addr = arg0;
        const std::uint64_t desired = arg1;
        const std::uint64_t expected = core.x[0];
        machine.flushStoreBuffer(core);
        std::uint64_t cost = machine.atomicAccessCost(core, addr);
        const std::uint64_t old = machine.memory().load64(addr);
        if (old == expected)
            machine.directWrite(core, addr, 8, desired);
        ret = old;
        machine.stats().bump("machine.cas_ops");
        return cost + 18;
      }
      case HelperId::XaddHelper: {
        const std::uint64_t addr = arg0;
        const std::uint64_t addend = arg1;
        machine.flushStoreBuffer(core);
        std::uint64_t cost = machine.atomicAccessCost(core, addr);
        const std::uint64_t old = machine.memory().load64(addr);
        machine.directWrite(core, addr, 8, old + addend);
        ret = old;
        machine.stats().bump("machine.atomic_adds");
        return cost + 18;
      }
      case HelperId::FAdd64: {
        const auto r = softfloat::add64(arg0, arg1);
        ret = r.bits;
        return r.cycles;
      }
      case HelperId::FSub64: {
        const auto r = softfloat::sub64(arg0, arg1);
        ret = r.bits;
        return r.cycles;
      }
      case HelperId::FMul64: {
        const auto r = softfloat::mul64(arg0, arg1);
        ret = r.bits;
        return r.cycles;
      }
      case HelperId::FDiv64: {
        const auto r = softfloat::div64(arg0, arg1);
        ret = r.bits;
        return r.cycles;
      }
      case HelperId::FSqrt64: {
        const auto r = softfloat::sqrt64(arg0);
        ret = r.bits;
        return r.cycles;
      }
      case HelperId::CvtIF64: {
        const auto r = softfloat::fromInt64(arg0);
        ret = r.bits;
        return r.cycles;
      }
      case HelperId::CvtFI64: {
        const auto r = softfloat::toInt64(arg0);
        ret = r.bits;
        return r.cycles;
      }
      case HelperId::Syscall:
        switch (core.x[0]) {
          case 0: // exit(code = g1)
            core.exitCode = static_cast<std::int64_t>(core.x[1]);
            core.halted = true;
            return 20;
          case 1: // putchar(g1)
            core.output.push_back(static_cast<char>(core.x[1]));
            return 20;
          case 2: // cycle counter into g0
            core.x[0] = core.cycles;
            return 20;
          default:
            throw GuestFault("unknown guest syscall " +
                             std::to_string(core.x[0]));
        }
      case HelperId::HostCall:
        panicIf(!hostcalls_, "host call without a handler");
        stats_.bump("dbt.host_calls");
        return hostcalls_->invokeHostFunction(extra, core, machine);
      case HelperId::None:
        break;
    }
    panic("unknown helper id " + std::to_string(id));
}

RunResult
Dbt::run(const std::vector<ThreadSpec> &threads,
         machine::MachineConfig machine_config,
         std::uint64_t max_cycles_per_core)
{
    auto memory = std::make_shared<gx86::Memory>();
    memory->loadImage(image_);

    // One plan drives the whole pipeline: arm the machine's sites from
    // the DBT plan unless the caller supplied a machine-specific one.
    if (!machine_config.faults.armed() && config_.faults.armed())
        machine_config.faults = config_.faults;

    Machine machine(code_, *memory, machine_config);
    machine.setRuntime(this);

    const CodeAddr entry_host = lookupOrTranslate(image_.entry);
    for (std::size_t t = 0; t < threads.size(); ++t) {
        const std::size_t core_index = machine.addCore(entry_host);
        Core &core = machine.core(core_index);
        for (std::size_t r = 0; r < gx86::RegCount; ++r)
            core.x[r] = threads[t].regs[r];
        // Disjoint guest stacks (guest R15 is the stack pointer).
        core.x[gx86::Rsp] =
            gx86::DefaultStackTop - t * 0x40000;
    }

    RunResult result;
    result.finished = machine.run(max_cycles_per_core);
    for (std::size_t t = 0; t < threads.size(); ++t) {
        result.exitCodes.push_back(machine.core(t).exitCode);
        result.outputs.push_back(machine.core(t).output);
    }
    result.makespan = machine.makespan();
    result.totalCycles = machine.totalCycles();
    result.diagnosis = machine::runDiagnosisName(machine.diagnosis());
    result.stats = stats_;
    result.stats.merge(machine.stats());
    result.stats.merge(faults_.stats());
    result.stats.merge(machine.faults().stats());
    result.fallbackBlocks = stats_.get("dbt.fallback_blocks");
    result.translationRetries = stats_.get("dbt.translate_retries");
    result.memory = std::move(memory);
    return result;
}

} // namespace risotto::dbt
