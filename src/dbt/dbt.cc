#include "dbt/dbt.hh"

#include "dbt/softfloat.hh"
#include "support/error.hh"
#include "tcg/optimizer.hh"

namespace risotto::dbt
{

using aarch::CodeAddr;
using machine::Core;
using machine::Machine;
using tcg::HelperId;

Dbt::Dbt(const gx86::GuestImage &image, DbtConfig config,
         const ImportResolver *resolver, HostCallHandler *hostcalls)
    : image_(image), config_(std::move(config)), resolver_(resolver),
      hostcalls_(hostcalls), frontend_(image_, config_, resolver_),
      backend_(code_, config_)
{
}

CodeAddr
Dbt::lookupOrTranslate(gx86::Addr pc)
{
    auto it = tbCache_.find(pc);
    if (it != tbCache_.end()) {
        stats_.bump("dbt.tb_hits");
        return it->second;
    }
    tcg::Block block = frontend_.translate(pc);
    stats_.bump("dbt.tbs_translated");
    stats_.bump("dbt.ir_ops_pre_opt", block.instrs.size());
    tcg::optimize(block, config_.optimizer, &stats_);
    stats_.bump("dbt.ir_ops_post_opt", block.instrs.size());
    const CodeAddr host = backend_.compile(block, *this);
    stats_.bump("dbt.host_words",
                code_.end() - host);
    tbCache_[pc] = host;
    return host;
}

std::uint32_t
Dbt::staticSlot(std::uint64_t guest_pc, CodeAddr patch_site, bool chainable)
{
    ExitSlot slot;
    slot.guestPc = guest_pc;
    slot.patchSite = patch_site;
    slot.chainable = chainable;
    slots_.push_back(slot);
    return static_cast<std::uint32_t>(slots_.size() - 1);
}

std::uint32_t
Dbt::dynamicSlot()
{
    if (!dynSlotMade_) {
        ExitSlot slot;
        slot.dynamic = true;
        slots_.push_back(slot);
        dynSlot_ = static_cast<std::uint32_t>(slots_.size() - 1);
        dynSlotMade_ = true;
    }
    return dynSlot_;
}

std::optional<CodeAddr>
Dbt::onExitTb(std::uint32_t slot_index, Core &core, Machine &machine)
{
    (void)machine;
    panicIf(slot_index >= slots_.size(), "bad exit slot");
    const ExitSlot slot = slots_[slot_index];
    const std::uint64_t target_pc =
        slot.dynamic ? core.x[DynExitReg] : slot.guestPc;
    if (target_pc == HaltPc)
        return std::nullopt;
    const CodeAddr host = lookupOrTranslate(target_pc);
    if (slot.chainable && config_.chaining) {
        // Patch the goto_tb into a direct branch (block chaining).
        aarch::AInstr branch;
        branch.op = aarch::AOp::B;
        branch.imm = static_cast<std::int32_t>(host) -
                     static_cast<std::int32_t>(slot.patchSite);
        code_.patch(slot.patchSite, aarch::encode(branch));
        stats_.bump("dbt.chained");
    }
    return host;
}

std::uint64_t
Dbt::invokeHelper(std::uint8_t id, std::uint16_t extra, Core &core,
                  Machine &machine)
{
    const auto helper = static_cast<HelperId>(id);
    auto &arg0 = core.x[HelperArg0];
    auto &arg1 = core.x[HelperArg1];
    auto &ret = core.x[HelperRet];

    switch (helper) {
      case HelperId::CasHelper: {
        // QEMU helper path: a seq-cst GCC builtin, i.e. a full barrier
        // around an atomic CAS. Expected value follows the x86
        // convention: guest R0.
        const std::uint64_t addr = arg0;
        const std::uint64_t desired = arg1;
        const std::uint64_t expected = core.x[0];
        machine.flushStoreBuffer(core);
        std::uint64_t cost = machine.atomicAccessCost(core, addr);
        const std::uint64_t old = machine.memory().load64(addr);
        if (old == expected)
            machine.directWrite(core, addr, 8, desired);
        ret = old;
        machine.stats().bump("machine.cas_ops");
        return cost + 18;
      }
      case HelperId::XaddHelper: {
        const std::uint64_t addr = arg0;
        const std::uint64_t addend = arg1;
        machine.flushStoreBuffer(core);
        std::uint64_t cost = machine.atomicAccessCost(core, addr);
        const std::uint64_t old = machine.memory().load64(addr);
        machine.directWrite(core, addr, 8, old + addend);
        ret = old;
        machine.stats().bump("machine.atomic_adds");
        return cost + 18;
      }
      case HelperId::FAdd64: {
        const auto r = softfloat::add64(arg0, arg1);
        ret = r.bits;
        return r.cycles;
      }
      case HelperId::FSub64: {
        const auto r = softfloat::sub64(arg0, arg1);
        ret = r.bits;
        return r.cycles;
      }
      case HelperId::FMul64: {
        const auto r = softfloat::mul64(arg0, arg1);
        ret = r.bits;
        return r.cycles;
      }
      case HelperId::FDiv64: {
        const auto r = softfloat::div64(arg0, arg1);
        ret = r.bits;
        return r.cycles;
      }
      case HelperId::FSqrt64: {
        const auto r = softfloat::sqrt64(arg0);
        ret = r.bits;
        return r.cycles;
      }
      case HelperId::CvtIF64: {
        const auto r = softfloat::fromInt64(arg0);
        ret = r.bits;
        return r.cycles;
      }
      case HelperId::CvtFI64: {
        const auto r = softfloat::toInt64(arg0);
        ret = r.bits;
        return r.cycles;
      }
      case HelperId::Syscall:
        switch (core.x[0]) {
          case 0: // exit(code = g1)
            core.exitCode = static_cast<std::int64_t>(core.x[1]);
            core.halted = true;
            return 20;
          case 1: // putchar(g1)
            core.output.push_back(static_cast<char>(core.x[1]));
            return 20;
          case 2: // cycle counter into g0
            core.x[0] = core.cycles;
            return 20;
          default:
            throw GuestFault("unknown guest syscall " +
                             std::to_string(core.x[0]));
        }
      case HelperId::HostCall:
        panicIf(!hostcalls_, "host call without a handler");
        stats_.bump("dbt.host_calls");
        return hostcalls_->invokeHostFunction(extra, core, machine);
      case HelperId::None:
        break;
    }
    panic("unknown helper id " + std::to_string(id));
}

RunResult
Dbt::run(const std::vector<ThreadSpec> &threads,
         machine::MachineConfig machine_config,
         std::uint64_t max_cycles_per_core)
{
    auto memory = std::make_shared<gx86::Memory>();
    memory->loadImage(image_);

    Machine machine(code_, *memory, machine_config);
    machine.setRuntime(this);

    const CodeAddr entry_host = lookupOrTranslate(image_.entry);
    for (std::size_t t = 0; t < threads.size(); ++t) {
        const std::size_t core_index = machine.addCore(entry_host);
        Core &core = machine.core(core_index);
        for (std::size_t r = 0; r < gx86::RegCount; ++r)
            core.x[r] = threads[t].regs[r];
        // Disjoint guest stacks (guest R15 is the stack pointer).
        core.x[gx86::Rsp] =
            gx86::DefaultStackTop - t * 0x40000;
    }

    RunResult result;
    result.finished = machine.run(max_cycles_per_core);
    for (std::size_t t = 0; t < threads.size(); ++t) {
        result.exitCodes.push_back(machine.core(t).exitCode);
        result.outputs.push_back(machine.core(t).output);
    }
    result.makespan = machine.makespan();
    result.totalCycles = machine.totalCycles();
    result.stats = stats_;
    result.stats.merge(machine.stats());
    result.memory = std::move(memory);
    return result;
}

} // namespace risotto::dbt
