#include "litmus/library.hh"

namespace risotto::litmus
{

using memcore::Access;
using memcore::FenceKind;
using memcore::RmwKind;

namespace
{

Thread
thread(std::vector<Instr> instrs)
{
    Thread t;
    t.instrs = std::move(instrs);
    return t;
}

} // namespace

LitmusTest
mp()
{
    LitmusTest t;
    t.program.name = "MP";
    t.program.threads = {
        thread({Instr::store(LocX, 1), Instr::store(LocY, 1)}),
        thread({Instr::load(0, LocY), Instr::load(1, LocX)}),
    };
    t.interesting.reg(1, 0, 1).reg(1, 1, 0);
    t.forbiddenInSource = true;
    return t;
}

LitmusTest
sb()
{
    LitmusTest t;
    t.program.name = "SB";
    t.program.threads = {
        thread({Instr::store(LocX, 1), Instr::load(0, LocY)}),
        thread({Instr::store(LocY, 1), Instr::load(0, LocX)}),
    };
    t.interesting.reg(0, 0, 0).reg(1, 0, 0);
    // Store-load reordering is allowed under x86-TSO.
    t.forbiddenInSource = false;
    return t;
}

LitmusTest
lb()
{
    LitmusTest t;
    t.program.name = "LB";
    t.program.threads = {
        thread({Instr::load(0, LocX), Instr::store(LocY, 1)}),
        thread({Instr::load(0, LocY), Instr::store(LocX, 1)}),
    };
    t.interesting.reg(0, 0, 1).reg(1, 0, 1);
    t.forbiddenInSource = true;
    return t;
}

LitmusTest
mpq()
{
    LitmusTest t;
    t.program.name = "MPQ";
    t.program.threads = {
        thread({Instr::store(LocX, 1), Instr::store(LocY, 1)}),
        thread({Instr::load(0, LocY),
                Instr::rmw(1, LocX, 1, 2).guarded(0, 1)}),
    };
    // a = 1 and the RMW failed (X stays 1).
    t.interesting.reg(1, 0, 1).mem(LocX, 1);
    t.forbiddenInSource = true;
    return t;
}

LitmusTest
sbq()
{
    LitmusTest t;
    t.program.name = "SBQ";
    t.program.threads = {
        thread({Instr::store(LocX, 1), Instr::rmw(0, LocZ, 0, 1),
                Instr::load(1, LocY)}),
        thread({Instr::store(LocY, 1), Instr::rmw(0, LocU, 0, 1),
                Instr::load(1, LocX)}),
    };
    t.interesting.mem(LocZ, 1).mem(LocU, 1).reg(0, 1, 0).reg(1, 1, 0);
    t.forbiddenInSource = true;
    return t;
}

LitmusTest
sbal()
{
    LitmusTest t;
    t.program.name = "SBAL";
    t.program.threads = {
        thread({Instr::rmw(0, LocX, 0, 1), Instr::load(1, LocY)}),
        thread({Instr::rmw(0, LocY, 0, 1), Instr::load(1, LocX)}),
    };
    t.interesting.mem(LocX, 1).mem(LocY, 1).reg(0, 1, 0).reg(1, 1, 0);
    t.forbiddenInSource = true;
    return t;
}

LitmusTest
fmrSource()
{
    LitmusTest t;
    t.program.name = "FMR";
    t.program.threads = {
        thread({Instr::store(LocX, 3), Instr::fenceOf(FenceKind::Fmr),
                Instr::store(LocY, 2), Instr::load(0, LocY),
                Instr::fenceOf(FenceKind::Frw), Instr::store(LocZ, 2)}),
        thread({Instr::load(0, LocZ),
                Instr::fenceOf(FenceKind::Frw).guarded(0, 2),
                Instr::store(LocX, 4).guarded(0, 2),
                Instr::load(1, LocX).guarded(0, 2)}),
    };
    // a = 2 (always, by coherence) and c = 3.
    t.interesting.reg(0, 0, 2).reg(1, 1, 3);
    t.forbiddenInSource = true;
    return t;
}

LitmusTest
fmrTransformed()
{
    LitmusTest t = fmrSource();
    t.program.name = "FMR-raw-transformed";
    // RAW transformation: the read of Y in thread 0 is replaced by the
    // constant 2 (the read event disappears).
    t.program.threads[0] = thread({
        Instr::store(LocX, 3),
        Instr::fenceOf(FenceKind::Fmr),
        Instr::store(LocY, 2),
        Instr::fenceOf(FenceKind::Frw),
        Instr::store(LocZ, 2),
    });
    t.interesting = Condition().reg(1, 1, 3);
    t.forbiddenInSource = false; // Allowed after the (unsound) transform.
    return t;
}

LitmusTest
lbIr()
{
    LitmusTest t;
    t.program.name = "LB-IR";
    t.program.threads = {
        thread({Instr::load(0, LocX), Instr::fenceOf(FenceKind::Frw),
                Instr::store(LocY, 1)}),
        thread({Instr::load(0, LocY), Instr::fenceOf(FenceKind::Frw),
                Instr::store(LocX, 1)}),
    };
    t.interesting.reg(0, 0, 1).reg(1, 0, 1);
    t.forbiddenInSource = true;
    return t;
}

LitmusTest
mpIr()
{
    LitmusTest t;
    t.program.name = "MP-IR";
    t.program.threads = {
        thread({Instr::store(LocX, 1), Instr::fenceOf(FenceKind::Fww),
                Instr::store(LocY, 1)}),
        thread({Instr::load(0, LocY), Instr::fenceOf(FenceKind::Frr),
                Instr::load(1, LocX)}),
    };
    t.interesting.reg(1, 0, 1).reg(1, 1, 0);
    t.forbiddenInSource = true;
    return t;
}

namespace
{

/** A TCG RMW: both parts carry SC semantics per the IR model. */
Instr
tcgRmw(Reg dst, Loc loc, Val expected, Val desired)
{
    return Instr::rmw(dst, loc, expected, desired, RmwKind::Amo, Access::Sc,
                      Access::Sc);
}

} // namespace

LitmusTest
fig9WW()
{
    LitmusTest t;
    t.program.name = "Fig9-WW";
    t.program.threads = {
        thread({Instr::store(LocX, 2), tcgRmw(0, LocY, 0, 1)}),
        thread({Instr::store(LocY, 2), tcgRmw(0, LocX, 0, 1)}),
    };
    t.interesting.mem(LocX, 1).mem(LocY, 1);
    t.forbiddenInSource = true;
    return t;
}

LitmusTest
fig9SB()
{
    LitmusTest t;
    t.program.name = "Fig9-SB";
    t.program.threads = {
        thread({tcgRmw(0, LocX, 0, 1), Instr::load(1, LocY)}),
        thread({tcgRmw(0, LocY, 0, 1), Instr::load(1, LocX)}),
    };
    t.interesting.reg(0, 1, 0).reg(1, 1, 0);
    t.forbiddenInSource = true;
    return t;
}

std::vector<LitmusTest>
x86Corpus()
{
    std::vector<LitmusTest> corpus = {mp(), sb(), lb(), mpq(), sbq(),
                                      sbal()};

    // R: write-write vs write-read.
    {
        LitmusTest t;
        t.program.name = "R";
        t.program.threads = {
            thread({Instr::store(LocX, 1), Instr::store(LocY, 1)}),
            thread({Instr::store(LocY, 2), Instr::load(0, LocX)}),
        };
        t.interesting.mem(LocY, 2).reg(1, 0, 0);
        t.forbiddenInSource = false; // Allowed in TSO (store-load reorder).
        corpus.push_back(t);
    }
    // S: write-write vs read-write.
    {
        LitmusTest t;
        t.program.name = "S";
        t.program.threads = {
            thread({Instr::store(LocX, 2), Instr::store(LocY, 1)}),
            thread({Instr::load(0, LocY), Instr::store(LocX, 1)}),
        };
        t.interesting.reg(1, 0, 1).mem(LocX, 2);
        t.forbiddenInSource = true;
        corpus.push_back(t);
    }
    // 2+2W: both first writes coherence-last.
    {
        LitmusTest t;
        t.program.name = "2+2W";
        t.program.threads = {
            thread({Instr::store(LocX, 2), Instr::store(LocY, 1)}),
            thread({Instr::store(LocY, 2), Instr::store(LocX, 1)}),
        };
        t.interesting.mem(LocX, 2).mem(LocY, 2);
        t.forbiddenInSource = true;
        corpus.push_back(t);
    }
    // SB+mfence: fences restore SC for store buffering.
    {
        LitmusTest t;
        t.program.name = "SB+mfences";
        t.program.threads = {
            thread({Instr::store(LocX, 1),
                    Instr::fenceOf(FenceKind::MFence),
                    Instr::load(0, LocY)}),
            thread({Instr::store(LocY, 1),
                    Instr::fenceOf(FenceKind::MFence),
                    Instr::load(0, LocX)}),
        };
        t.interesting.reg(0, 0, 0).reg(1, 0, 0);
        t.forbiddenInSource = true;
        corpus.push_back(t);
    }
    // MP+rmw: RMW in the middle of the producer.
    {
        LitmusTest t;
        t.program.name = "MP+rmw";
        t.program.threads = {
            thread({Instr::store(LocX, 1), Instr::rmw(0, LocZ, 0, 1),
                    Instr::store(LocY, 1)}),
            thread({Instr::load(0, LocY), Instr::load(1, LocX)}),
        };
        t.interesting.reg(1, 0, 1).reg(1, 1, 0);
        t.forbiddenInSource = true;
        corpus.push_back(t);
    }
    // CoRR: coherence of two reads of the same location.
    {
        LitmusTest t;
        t.program.name = "CoRR";
        t.program.threads = {
            thread({Instr::store(LocX, 1)}),
            thread({Instr::load(0, LocX), Instr::load(1, LocX)}),
        };
        t.interesting.reg(1, 0, 1).reg(1, 1, 0);
        t.forbiddenInSource = true;
        corpus.push_back(t);
    }
    return corpus;
}

std::vector<LitmusTest>
tcgCorpus()
{
    std::vector<LitmusTest> corpus = {lbIr(), mpIr(), fig9WW(), fig9SB(),
                                      fmrSource()};
    // SB-IR with Fsc: full fences restore order.
    {
        LitmusTest t;
        t.program.name = "SB-IR+Fsc";
        t.program.threads = {
            thread({Instr::store(LocX, 1), Instr::fenceOf(FenceKind::Fsc),
                    Instr::load(0, LocY)}),
            thread({Instr::store(LocY, 1), Instr::fenceOf(FenceKind::Fsc),
                    Instr::load(0, LocX)}),
        };
        t.interesting.reg(0, 0, 0).reg(1, 0, 0);
        t.forbiddenInSource = true;
        corpus.push_back(t);
    }
    // MP-IR with Frm trailing loads and Fww leading stores -- the shape
    // the Risotto x86-to-IR mapping produces.
    {
        LitmusTest t;
        t.program.name = "MP-IR-risotto";
        t.program.threads = {
            thread({Instr::fenceOf(FenceKind::Fww), Instr::store(LocX, 1),
                    Instr::fenceOf(FenceKind::Fww),
                    Instr::store(LocY, 1)}),
            thread({Instr::load(0, LocY), Instr::fenceOf(FenceKind::Frm),
                    Instr::load(1, LocX),
                    Instr::fenceOf(FenceKind::Frm)}),
        };
        t.interesting.reg(1, 0, 1).reg(1, 1, 0);
        t.forbiddenInSource = true;
        corpus.push_back(t);
    }
    return corpus;
}

} // namespace risotto::litmus
