/**
 * @file
 * Random litmus-program generation for property-based testing.
 *
 * Generated programs are small enough for exhaustive enumeration and are
 * used to stress the Theorem-1 checker over the verified mapping schemes
 * and IR transformations far beyond the hand-written corpus.
 */

#ifndef RISOTTO_LITMUS_RANDOM_HH
#define RISOTTO_LITMUS_RANDOM_HH

#include "litmus/program.hh"
#include "support/rng.hh"

namespace risotto::litmus
{

/** Shape parameters for random program generation. */
struct RandomProgramOptions
{
    std::size_t minThreads = 2;
    std::size_t maxThreads = 2;
    std::size_t minInstrsPerThread = 2;
    std::size_t maxInstrsPerThread = 4;
    std::size_t numLocations = 2;
    std::size_t numValues = 2; ///< Store constants drawn from [1,numValues].
    /** Percent chance that a memory instruction is an RMW. */
    unsigned rmwPercent = 20;
    /** Percent chance of emitting a fence between instructions. */
    unsigned fencePercent = 25;
    /** Generate x86-flavoured fences (MFENCE) when true, TCG fences
     * otherwise. */
    bool x86Flavor = true;
    /** Allow data-dependent stores (store of a previously loaded reg). */
    bool allowDataDeps = true;
};

/** Generate one random litmus program using @p rng. */
Program randomProgram(Rng &rng, const RandomProgramOptions &opts = {});

} // namespace risotto::litmus

#endif // RISOTTO_LITMUS_RANDOM_HH
