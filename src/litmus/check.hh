/**
 * @file
 * Mapping/transformation correctness checking (the paper's Theorem 1).
 *
 * A transformation from source program Ps under model Ms to target Pt
 * under Mt is correct if every consistent target execution has a matching
 * consistent source execution with the same behaviour. Here behaviours are
 * outcomes projected onto the observables both programs share (common
 * registers and final memory), because a transformation may legitimately
 * remove thread-local reads (e.g. the RAW elimination).
 */

#ifndef RISOTTO_LITMUS_CHECK_HH
#define RISOTTO_LITMUS_CHECK_HH

#include <optional>
#include <vector>

#include "litmus/enumerate.hh"
#include "litmus/outcome.hh"
#include "litmus/program.hh"
#include "models/model.hh"

namespace risotto::litmus
{

/** Outcome projected onto a subset of registers (plus all of memory). */
Outcome projectOutcome(const Outcome &outcome,
                       const std::vector<std::set<Reg>> &regs_per_thread);

/** Result of a Theorem-1 refinement check. */
struct RefinementResult
{
    /** True when behaviours(target) is a subset of behaviours(source). */
    bool correct = true;

    /** Target-only outcomes witnessing the violation (projected). */
    std::vector<Outcome> newOutcomes;

    /** Count of projected source/target behaviours. */
    std::size_t sourceBehaviors = 0;
    std::size_t targetBehaviors = 0;
};

/**
 * Check that @p target under @p target_model refines @p source under
 * @p source_model: every (projected) target behaviour is also a source
 * behaviour. Source and target must have the same thread count.
 */
RefinementResult checkRefinement(const Program &source,
                                 const models::ConsistencyModel &source_model,
                                 const Program &target,
                                 const models::ConsistencyModel &target_model,
                                 const EnumerateOptions &opts = {});

} // namespace risotto::litmus

#endif // RISOTTO_LITMUS_CHECK_HH
