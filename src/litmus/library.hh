/**
 * @file
 * The paper's litmus-test corpus.
 *
 * Source programs are x86-flavoured (plain accesses, MFENCE, amo RMWs)
 * unless stated otherwise; targets referenced in Section 3 are built by the
 * mapping module. Locations are X=0, Y=1, Z=2, U=3 throughout.
 */

#ifndef RISOTTO_LITMUS_LIBRARY_HH
#define RISOTTO_LITMUS_LIBRARY_HH

#include <vector>

#include "litmus/outcome.hh"
#include "litmus/program.hh"

namespace risotto::litmus
{

/** Symbolic location names used by the corpus. */
constexpr Loc LocX = 0;
constexpr Loc LocY = 1;
constexpr Loc LocZ = 2;
constexpr Loc LocU = 3;

/** A named litmus test: program plus the outcome of interest. */
struct LitmusTest
{
    Program program;
    /** The weak outcome the paper discusses. */
    Condition interesting;
    /** Whether the source model forbids the interesting outcome. */
    bool forbiddenInSource = true;
};

/** MP: store-store vs load-load; weak outcome a=1, b=0 (Section 2.1). */
LitmusTest mp();

/** SB: store buffering; outcome a=b=0 is allowed under x86-TSO. */
LitmusTest sb();

/** LB: load buffering; outcome a=b=1 is forbidden under x86-TSO. */
LitmusTest lb();

/** MPQ source (Section 3.2): message passing into a conditional RMW;
 * outcome a=1 /\ X=1 is forbidden in x86. */
LitmusTest mpq();

/** SBQ source (Section 3.2): store buffering with RMWs;
 * outcome Z=U=1 /\ a=b=0 is forbidden in x86. */
LitmusTest sbq();

/** SBAL source (Section 3.3): RMW then load in each thread;
 * outcome X=Y=1 /\ a=b=0 is forbidden in x86. */
LitmusTest sbal();

/** FMR source (Section 3.2), a TCG IR program: the RAW-transformation
 * counterexample; outcome a=2 /\ c=3 is forbidden in the TCG IR model. */
LitmusTest fmrSource();

/** FMR after the RAW transformation removed the read of Y. */
LitmusTest fmrTransformed();

/** LB-IR (Figure 8): TCG IR program whose ld-st order needs Frw. */
LitmusTest lbIr();

/** MP-IR (Figure 8): TCG IR program needing Frr (ld-ld) and Fww (st-st). */
LitmusTest mpIr();

/** Figure 9 left: 2+2W-style IR program with RMWs; X=Y=1 disallowed. */
LitmusTest fig9WW();

/** Figure 9 right: SB-style IR program with RMWs; a=b=0 disallowed. */
LitmusTest fig9SB();

/** The full x86-source corpus used for mapping verification sweeps. */
std::vector<LitmusTest> x86Corpus();

/** The TCG IR corpus used for IR-to-Arm verification sweeps. */
std::vector<LitmusTest> tcgCorpus();

} // namespace risotto::litmus

#endif // RISOTTO_LITMUS_LIBRARY_HH
