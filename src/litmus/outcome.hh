/**
 * @file
 * Observable outcomes of litmus-program executions.
 *
 * An outcome captures the final per-thread register files plus the final
 * memory values (the paper's Behav). Mapping-correctness checking
 * (Theorem 1) compares outcome sets of source and target programs.
 */

#ifndef RISOTTO_LITMUS_OUTCOME_HH
#define RISOTTO_LITMUS_OUTCOME_HH

#include <compare>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "litmus/program.hh"

namespace risotto::litmus
{

/** The observable result of one consistent execution. */
struct Outcome
{
    /** Final register values, one map per thread. */
    std::vector<std::map<Reg, Val>> regs;

    /** Final memory values (co-maximal writes), all program locations. */
    std::map<Loc, Val> memory;

    auto operator<=>(const Outcome &) const = default;

    /** Compact rendering: "T0{r0=1} T1{r0=0} mem{0=1 1=1}". */
    std::string toString() const;
};

/** The set of outcomes of all consistent executions of a program. */
using BehaviorSet = std::set<Outcome>;

/**
 * A predicate over outcomes, used to express litmus conditions such as
 * "exists a = 1 /\ b = 0". Conditions are conjunctions of register and
 * memory equalities.
 */
class Condition
{
  public:
    /** Require register @p reg of thread @p tid to equal @p val. */
    Condition &reg(std::size_t tid, Reg reg, Val val);

    /** Require final memory at @p loc to equal @p val. */
    Condition &mem(Loc loc, Val val);

    /** Evaluate on a single outcome. */
    bool holds(const Outcome &outcome) const;

    /** True when some outcome in the set satisfies the condition. */
    bool existsIn(const BehaviorSet &set) const;

    /** Render as e.g. "0:r0=1 & 1:r1=0". */
    std::string toString() const;

  private:
    struct RegTerm
    {
        std::size_t tid;
        Reg reg;
        Val val;
    };
    struct MemTerm
    {
        Loc loc;
        Val val;
    };
    std::vector<RegTerm> regTerms_;
    std::vector<MemTerm> memTerms_;
};

} // namespace risotto::litmus

#endif // RISOTTO_LITMUS_OUTCOME_HH
