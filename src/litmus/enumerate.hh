/**
 * @file
 * Exhaustive enumeration of the consistent executions of a litmus program.
 *
 * This is the bounded-model-checking surrogate for the paper's Agda
 * proofs: for a small program we enumerate *every* candidate execution
 * (all thread-local runs x all reads-from choices x all coherence orders),
 * keep the ones that satisfy a consistency model's axioms, and collect the
 * observable outcomes.
 */

#ifndef RISOTTO_LITMUS_ENUMERATE_HH
#define RISOTTO_LITMUS_ENUMERATE_HH

#include <cstddef>
#include <functional>

#include "litmus/outcome.hh"
#include "litmus/program.hh"
#include "models/model.hh"

namespace risotto::support
{
class ThreadPool;
}

namespace risotto::litmus
{

/** Tuning knobs for the enumerator. */
struct EnumerateOptions
{
    /** Abort (throw FatalError) past this many candidate executions;
     * protects property tests from accidentally exponential programs.
     * Enforced exactly in parallel mode through a shared atomic
     * counter. */
    std::size_t maxCandidates = 5'000'000;

    /**
     * Workers for enumerateBehaviors. 1 (the default) runs the serial
     * path; 0 means hardware concurrency. The candidate-execution space
     * is partitioned at the top of the reads-from choice tree
     * (run-combination x first-read writer) and per-worker results are
     * merged deterministically, so the behavior set and the summed
     * stats are identical to the serial enumeration at any job count.
     */
    std::size_t jobs = 1;

    /** Enumerate on this existing pool instead of constructing one per
     * call (overrides jobs when set). Callers looping over a corpus
     * should share one pool. */
    support::ThreadPool *pool = nullptr;
};

/** Statistics from one enumeration. */
struct EnumerateStats
{
    std::size_t candidates = 0;
    std::size_t wellFormed = 0;
    std::size_t consistent = 0;
};

/**
 * Enumerate all consistent executions of @p program under @p model and
 * return the set of observable outcomes.
 *
 * @param program the litmus program.
 * @param model the consistency model giving the program semantics.
 * @param stats optional out-parameter with enumeration statistics.
 * @param opts enumeration limits.
 */
BehaviorSet enumerateBehaviors(const Program &program,
                               const models::ConsistencyModel &model,
                               EnumerateStats *stats = nullptr,
                               const EnumerateOptions &opts = {});

/**
 * Visit every consistent execution of @p program under @p model.
 *
 * The callback receives the execution and its outcome; returning false
 * stops the enumeration early. Always serial (the visitor may carry
 * order-dependent state and an early stop must be exact); jobs/pool in
 * @p opts are ignored here.
 */
void forEachConsistentExecution(
    const Program &program, const models::ConsistencyModel &model,
    const std::function<bool(const memcore::Execution &, const Outcome &)>
        &visit,
    const EnumerateOptions &opts = {});

} // namespace risotto::litmus

#endif // RISOTTO_LITMUS_ENUMERATE_HH
