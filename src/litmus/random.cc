#include "litmus/random.hh"

#include <vector>

namespace risotto::litmus
{

using memcore::FenceKind;
using memcore::RmwKind;

Program
randomProgram(Rng &rng, const RandomProgramOptions &opts)
{
    static const FenceKind tcg_fences[] = {
        FenceKind::Frr, FenceKind::Frw, FenceKind::Frm,
        FenceKind::Fwr, FenceKind::Fww, FenceKind::Fwm,
        FenceKind::Fmr, FenceKind::Fmw, FenceKind::Fmm,
        FenceKind::Fsc,
    };

    Program p;
    p.name = "random";
    const std::size_t threads = static_cast<std::size_t>(
        rng.range(static_cast<std::int64_t>(opts.minThreads),
                  static_cast<std::int64_t>(opts.maxThreads)));

    for (std::size_t t = 0; t < threads; ++t) {
        Thread th;
        const std::size_t count = static_cast<std::size_t>(
            rng.range(static_cast<std::int64_t>(opts.minInstrsPerThread),
                      static_cast<std::int64_t>(opts.maxInstrsPerThread)));
        Reg next_reg = 0;
        std::vector<Reg> loaded;
        for (std::size_t i = 0; i < count; ++i) {
            if (rng.chance(opts.fencePercent, 100)) {
                FenceKind kind = FenceKind::MFence;
                if (!opts.x86Flavor)
                    kind = tcg_fences[rng.below(std::size(tcg_fences))];
                th.instrs.push_back(Instr::fenceOf(kind));
            }
            const Loc loc = static_cast<Loc>(rng.below(opts.numLocations));
            const Val val =
                static_cast<Val>(1 + rng.below(opts.numValues));
            if (rng.chance(opts.rmwPercent, 100)) {
                const Val expected = static_cast<Val>(
                    rng.below(opts.numValues + 1));
                Instr rmw =
                    Instr::rmw(next_reg, loc, expected, val, RmwKind::Amo);
                if (!opts.x86Flavor) {
                    rmw.readAccess = memcore::Access::Sc;
                    rmw.writeAccess = memcore::Access::Sc;
                }
                th.instrs.push_back(rmw);
                loaded.push_back(next_reg);
                ++next_reg;
            } else if (rng.chance(50, 100)) {
                th.instrs.push_back(Instr::load(next_reg, loc));
                loaded.push_back(next_reg);
                ++next_reg;
            } else if (opts.allowDataDeps && !loaded.empty() &&
                       rng.chance(30, 100)) {
                const Reg src = loaded[rng.below(loaded.size())];
                th.instrs.push_back(
                    Instr::storeExpr(loc, StoreExpr::fromReg(src)));
            } else {
                th.instrs.push_back(Instr::store(loc, val));
            }
        }
        p.threads.push_back(std::move(th));
    }
    return p;
}

} // namespace risotto::litmus
