#include "litmus/enumerate.hh"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "support/error.hh"
#include "support/threadpool.hh"

namespace risotto::litmus
{

namespace
{

using memcore::Event;
using memcore::EventId;
using memcore::EventKind;
using memcore::Execution;
using memcore::RmwKind;

/** A dependency edge between two thread-local event indices. */
struct LocalDep
{
    enum class Kind
    {
        Addr,
        Data,
        Ctrl,
    };
    Kind kind;
    std::size_t from;
    std::size_t to;
};

/** One possible sequential run of a single thread. */
struct ThreadRun
{
    /** Events in program order (local: ids are indices into this vector).*/
    std::vector<Event> events;

    /** Local rmw pairs (indices into events). */
    std::vector<std::pair<std::size_t, std::size_t>> rmwPairs;

    /** Dependency edges between local events. */
    std::vector<LocalDep> deps;

    /** Final register file. */
    std::map<Reg, Val> regs;
};

/** Recursive thread-local interpreter branching on every load value. */
class RunEnumerator
{
  public:
    RunEnumerator(const Thread &thread, const std::vector<Val> &universe)
        : thread_(thread), universe_(universe)
    {
    }

    std::vector<ThreadRun>
    enumerate()
    {
        runs_.clear();
        ThreadRun run;
        std::map<Reg, std::size_t> def_event;
        step(0, run, {}, def_event);
        return std::move(runs_);
    }

  private:
    /** Interpret instruction @p pc given current state; branch on loads. */
    void
    step(std::size_t pc, ThreadRun run, std::map<Reg, Val> regs,
         std::map<Reg, std::size_t> def_event)
    {
        if (pc == thread_.instrs.size()) {
            run.regs = std::move(regs);
            runs_.push_back(std::move(run));
            return;
        }
        const Instr &instr = thread_.instrs[pc];

        // Control guard: skipped instructions generate no events.
        if (instr.guardReg != NoReg) {
            const Val guard = regs.count(instr.guardReg)
                                  ? regs[instr.guardReg]
                                  : 0;
            if (guard != instr.guardVal) {
                step(pc + 1, std::move(run), std::move(regs),
                     std::move(def_event));
                return;
            }
        }

        auto add_deps = [&](ThreadRun &r, std::size_t event_idx) {
            if (instr.guardReg != NoReg && def_event.count(instr.guardReg))
                r.deps.push_back({LocalDep::Kind::Ctrl,
                                  def_event.at(instr.guardReg), event_idx});
            if (instr.addrDepReg != NoReg &&
                def_event.count(instr.addrDepReg))
                r.deps.push_back({LocalDep::Kind::Addr,
                                  def_event.at(instr.addrDepReg),
                                  event_idx});
        };

        switch (instr.kind) {
          case Instr::Kind::Fence: {
            Event e;
            e.kind = EventKind::Fence;
            e.fence = instr.fence;
            run.events.push_back(e);
            step(pc + 1, std::move(run), std::move(regs),
                 std::move(def_event));
            return;
          }
          case Instr::Kind::Store: {
            Event e;
            e.kind = EventKind::Write;
            e.loc = instr.loc;
            e.access = instr.writeAccess;
            switch (instr.value.kind) {
              case StoreExpr::Kind::Const:
                e.value = instr.value.konst;
                break;
              case StoreExpr::Kind::FromReg:
                e.value = regs.count(instr.value.reg)
                              ? regs[instr.value.reg]
                              : 0;
                break;
              case StoreExpr::Kind::FalseDep:
                e.value = 0;
                break;
            }
            run.events.push_back(e);
            const std::size_t idx = run.events.size() - 1;
            add_deps(run, idx);
            if (instr.value.kind != StoreExpr::Kind::Const &&
                def_event.count(instr.value.reg))
                run.deps.push_back({LocalDep::Kind::Data,
                                    def_event.at(instr.value.reg), idx});
            step(pc + 1, std::move(run), std::move(regs),
                 std::move(def_event));
            return;
          }
          case Instr::Kind::Load: {
            // Branch: the load may observe any value in the universe; rf
            // matching later discards values no write produced.
            for (Val v : universe_) {
                ThreadRun next_run = run;
                std::map<Reg, Val> next_regs = regs;
                std::map<Reg, std::size_t> next_def = def_event;
                Event e;
                e.kind = EventKind::Read;
                e.loc = instr.loc;
                e.access = instr.readAccess;
                e.value = v;
                next_run.events.push_back(e);
                const std::size_t idx = next_run.events.size() - 1;
                add_deps(next_run, idx);
                next_regs[instr.dst] = v;
                next_def[instr.dst] = idx;
                step(pc + 1, std::move(next_run), std::move(next_regs),
                     std::move(next_def));
            }
            return;
          }
          case Instr::Kind::Rmw: {
            for (Val v : universe_) {
                ThreadRun next_run = run;
                std::map<Reg, Val> next_regs = regs;
                std::map<Reg, std::size_t> next_def = def_event;
                const bool success = (v == instr.expected);
                Event r;
                r.kind = EventKind::Read;
                r.loc = instr.loc;
                r.access = instr.readAccess;
                r.rmw = instr.rmwKind;
                r.value = v;
                next_run.events.push_back(r);
                const std::size_t ridx = next_run.events.size() - 1;
                add_deps(next_run, ridx);
                if (success) {
                    Event w;
                    w.kind = EventKind::Write;
                    w.loc = instr.loc;
                    w.access = instr.writeAccess;
                    w.rmw = instr.rmwKind;
                    w.value = instr.desired;
                    next_run.events.push_back(w);
                    const std::size_t widx = next_run.events.size() - 1;
                    add_deps(next_run, widx);
                    next_run.rmwPairs.emplace_back(ridx, widx);
                }
                next_regs[instr.dst] = v;
                next_def[instr.dst] = ridx;
                step(pc + 1, std::move(next_run), std::move(next_regs),
                     std::move(next_def));
            }
            return;
          }
        }
        panic("unhandled instruction kind");
    }

    const Thread &thread_;
    const std::vector<Val> &universe_;
    std::vector<ThreadRun> runs_;
};

/** Builds the execution skeleton (events, po, rmw, deps) from runs. */
Execution
buildSkeleton(const Program &program,
              const std::vector<const ThreadRun *> &runs,
              std::vector<EventId> *init_of_loc_out)
{
    Execution x;

    // Init writes first, one per location.
    std::map<Loc, EventId> init_of_loc;
    for (Loc loc : program.locations()) {
        Event e;
        e.id = static_cast<EventId>(x.events.size());
        e.kind = EventKind::Write;
        e.loc = loc;
        auto it = program.init.find(loc);
        e.value = it == program.init.end() ? 0 : it->second;
        e.isInit = true;
        init_of_loc[loc] = e.id;
        x.events.push_back(e);
    }

    std::vector<std::vector<EventId>> global_ids(runs.size());
    for (std::size_t t = 0; t < runs.size(); ++t) {
        for (std::size_t i = 0; i < runs[t]->events.size(); ++i) {
            Event e = runs[t]->events[i];
            e.id = static_cast<EventId>(x.events.size());
            e.tid = static_cast<memcore::ThreadId>(t);
            e.poIndex = static_cast<std::uint32_t>(i);
            global_ids[t].push_back(e.id);
            x.events.push_back(e);
        }
    }

    x.initRelations();

    for (std::size_t t = 0; t < runs.size(); ++t) {
        const auto &ids = global_ids[t];
        for (std::size_t i = 0; i < ids.size(); ++i)
            for (std::size_t j = i + 1; j < ids.size(); ++j)
                x.po.insert(ids[i], ids[j]);
        for (auto [r, w] : runs[t]->rmwPairs)
            x.rmw.insert(ids[r], ids[w]);
        for (const LocalDep &d : runs[t]->deps) {
            switch (d.kind) {
              case LocalDep::Kind::Addr:
                x.addrDep.insert(ids[d.from], ids[d.to]);
                break;
              case LocalDep::Kind::Data:
                x.dataDep.insert(ids[d.from], ids[d.to]);
                break;
              case LocalDep::Kind::Ctrl:
                x.ctrlDep.insert(ids[d.from], ids[d.to]);
                break;
            }
        }
    }

    if (init_of_loc_out) {
        init_of_loc_out->clear();
        for (auto &[loc, id] : init_of_loc)
            init_of_loc_out->push_back(id);
    }
    return x;
}

/** Enumerates rf choices, then co choices, checking the model on each. */
class GraphEnumerator
{
  public:
    GraphEnumerator(const Program &program,
                    const models::ConsistencyModel &model,
                    const EnumerateOptions &opts, EnumerateStats &stats,
                    const std::function<bool(const Execution &,
                                             const Outcome &)> &visit,
                    std::atomic<std::size_t> *shared_candidates = nullptr)
        : program_(program), model_(model), opts_(opts), stats_(stats),
          visit_(visit), sharedCandidates_(shared_candidates)
    {
    }

    /** Returns false when the visitor asked to stop. */
    bool
    run(Execution &x, const std::vector<const ThreadRun *> &runs)
    {
        runs_ = &runs;
        collectReads(x);
        return chooseRf(x, 0);
    }

    /**
     * One partition of the rf choice tree: the first read's writer is
     * pinned to @p first_writer (< 0 when the execution has no reads)
     * and only the remaining rf levels are explored. The serial run()
     * is exactly the union of runPartition over every (run-combination,
     * matching first writer) pair, in its writer-iteration order.
     */
    bool
    runPartition(Execution &x, const std::vector<const ThreadRun *> &runs,
                 std::int64_t first_writer)
    {
        runs_ = &runs;
        collectReads(x);
        if (reads_.empty())
            return chooseCoAll(x);
        const auto w = static_cast<EventId>(first_writer);
        const EventId r = reads_.front();
        x.rf.insert(w, r);
        const bool keep_going = chooseRf(x, 1);
        x.rf.erase(w, r);
        return keep_going;
    }

  private:
    void
    collectReads(const Execution &x)
    {
        reads_.clear();
        for (const Event &e : x.events)
            if (e.isRead())
                reads_.push_back(e.id);
    }

    bool
    chooseRf(Execution &x, std::size_t read_idx)
    {
        if (read_idx == reads_.size())
            return chooseCoAll(x);
        const EventId r = reads_[read_idx];
        const Event &re = x.events[r];
        bool keep_going = true;
        for (const Event &w : x.events) {
            if (!keep_going)
                break;
            if (!w.isWrite() || w.loc != re.loc || w.value != re.value)
                continue;
            x.rf.insert(w.id, r);
            keep_going = chooseRf(x, read_idx + 1);
            x.rf.erase(w.id, r);
        }
        return keep_going;
    }

    bool
    chooseCoAll(Execution &x)
    {
        // Collect non-init writes per location; init is co-first.
        std::map<Loc, std::vector<EventId>> writers;
        for (const Event &e : x.events)
            if (e.isWrite() && !e.isInit)
                writers[e.loc].push_back(e.id);
        std::vector<std::pair<Loc, std::vector<EventId>>> groups(
            writers.begin(), writers.end());
        return chooseCoGroup(x, groups, 0);
    }

    bool
    chooseCoGroup(Execution &x,
                  std::vector<std::pair<Loc, std::vector<EventId>>> &groups,
                  std::size_t group_idx)
    {
        if (group_idx == groups.size())
            return emit(x);
        auto &[loc, ids] = groups[group_idx];
        std::sort(ids.begin(), ids.end());
        // Enumerate permutations of this location's writes.
        std::vector<EventId> perm = ids;
        bool keep_going = true;
        do {
            // Install co: init -> all, then chain order of perm as a total
            // order (all ordered pairs).
            std::vector<std::pair<EventId, EventId>> added;
            for (const Event &e : x.events) {
                if (e.isInit && e.loc == loc) {
                    for (EventId w : perm) {
                        x.co.insert(e.id, w);
                        added.emplace_back(e.id, w);
                    }
                }
            }
            for (std::size_t i = 0; i < perm.size(); ++i) {
                for (std::size_t j = i + 1; j < perm.size(); ++j) {
                    x.co.insert(perm[i], perm[j]);
                    added.emplace_back(perm[i], perm[j]);
                }
            }
            keep_going = chooseCoGroup(x, groups, group_idx + 1);
            for (auto [a, b] : added)
                x.co.erase(a, b);
            if (!keep_going)
                break;
        } while (std::next_permutation(perm.begin(), perm.end()));
        return keep_going;
    }

    bool
    emit(Execution &x)
    {
        ++stats_.candidates;
        // In parallel mode the abort threshold is judged against the
        // shared cross-worker total, so the cap fires at exactly the
        // same global candidate count as the serial enumeration.
        const std::size_t seen =
            sharedCandidates_ != nullptr
                ? sharedCandidates_->fetch_add(1) + 1
                : stats_.candidates;
        fatalIf(seen > opts_.maxCandidates,
                "litmus enumeration exceeded candidate limit in program '" +
                    program_.name + "'");
        if (!x.wellFormed())
            return true;
        ++stats_.wellFormed;
        if (!model_.consistent(x))
            return true;
        ++stats_.consistent;

        Outcome outcome;
        outcome.regs.reserve(runs_->size());
        for (const ThreadRun *run : *runs_)
            outcome.regs.push_back(run->regs);
        outcome.memory = x.behavior();
        return visit_(x, outcome);
    }

    const Program &program_;
    const models::ConsistencyModel &model_;
    const EnumerateOptions &opts_;
    EnumerateStats &stats_;
    const std::function<bool(const Execution &, const Outcome &)> &visit_;
    std::atomic<std::size_t> *sharedCandidates_;
    const std::vector<const ThreadRun *> *runs_ = nullptr;
    std::vector<EventId> reads_;
};

void
enumerateImpl(const Program &program, const models::ConsistencyModel &model,
              const std::function<bool(const Execution &, const Outcome &)>
                  &visit,
              EnumerateStats &stats, const EnumerateOptions &opts)
{
    const std::set<Val> universe_set = program.valueUniverse();
    const std::vector<Val> universe(universe_set.begin(),
                                    universe_set.end());

    std::vector<std::vector<ThreadRun>> all_runs;
    all_runs.reserve(program.threads.size());
    for (const Thread &t : program.threads)
        all_runs.push_back(RunEnumerator(t, universe).enumerate());

    // Cartesian product over the per-thread run choices.
    std::vector<const ThreadRun *> chosen(program.threads.size(), nullptr);
    GraphEnumerator graphs(program, model, opts, stats, visit);

    std::function<bool(std::size_t)> product = [&](std::size_t t) -> bool {
        if (t == all_runs.size()) {
            Execution x = buildSkeleton(program, chosen, nullptr);
            return graphs.run(x, chosen);
        }
        for (const ThreadRun &run : all_runs[t]) {
            chosen[t] = &run;
            if (!product(t + 1))
                return false;
        }
        return true;
    };
    product(0);
}

/**
 * One partition of the candidate-execution space: a choice of
 * per-thread run plus, when the execution has reads, the pinned writer
 * of the *first* read (the top level of the rf choice tree). Splitting
 * at that level yields enough independent, comparably sized pieces for
 * work stealing to balance, while the partition list stays tiny.
 */
struct EnumPartition
{
    std::vector<std::size_t> combo; ///< Run index per thread.
    std::int64_t firstWriter = -1;  ///< Event id; -1 when no reads.
};

/** Per-worker enumeration result, merged in partition-index order. */
struct EnumPart
{
    BehaviorSet behaviors;
    EnumerateStats stats;
};

void
enumerateParallel(const Program &program,
                  const models::ConsistencyModel &model,
                  support::ThreadPool &pool, BehaviorSet &behaviors,
                  EnumerateStats &stats, const EnumerateOptions &opts)
{
    const std::set<Val> universe_set = program.valueUniverse();
    const std::vector<Val> universe(universe_set.begin(),
                                    universe_set.end());

    std::vector<std::vector<ThreadRun>> all_runs;
    all_runs.reserve(program.threads.size());
    for (const Thread &t : program.threads)
        all_runs.push_back(RunEnumerator(t, universe).enumerate());
    for (const auto &runs : all_runs)
        if (runs.empty())
            return; // Empty cartesian product: nothing to enumerate.

    auto chosenOf = [&](const std::vector<std::size_t> &combo) {
        std::vector<const ThreadRun *> chosen(combo.size(), nullptr);
        for (std::size_t t = 0; t < combo.size(); ++t)
            chosen[t] = &all_runs[t][combo[t]];
        return chosen;
    };

    // Walk the run combinations in the serial recursion's order (last
    // thread fastest) and split each at the first read's rf choice. A
    // combination whose first read has no matching writer contributes
    // no partition -- exactly as the serial chooseRf loop finds nothing.
    std::vector<EnumPartition> partitions;
    std::vector<std::size_t> combo(program.threads.size(), 0);
    bool more = true;
    while (more) {
        const std::vector<const ThreadRun *> chosen = chosenOf(combo);
        Execution x = buildSkeleton(program, chosen, nullptr);
        const Event *first_read = nullptr;
        for (const Event &e : x.events) {
            if (e.isRead()) {
                first_read = &e;
                break;
            }
        }
        if (first_read == nullptr) {
            partitions.push_back({combo, -1});
        } else {
            for (const Event &w : x.events)
                if (w.isWrite() && w.loc == first_read->loc &&
                    w.value == first_read->value)
                    partitions.push_back({combo, w.id});
        }
        // Odometer step, last thread fastest.
        more = false;
        for (std::size_t t = combo.size(); t-- > 0;) {
            if (++combo[t] < all_runs[t].size()) {
                more = true;
                break;
            }
            combo[t] = 0;
        }
    }

    // Enumerate the partitions on the pool. The shared atomic makes the
    // maxCandidates abort fire at the same global count as serially;
    // per-partition behavior sets and stats merge in partition order
    // (set union and counter sums are order-independent, so the result
    // is bit-identical to the serial enumeration).
    std::atomic<std::size_t> candidates{0};
    EnumPart merged = pool.parallelReduce(
        partitions.size(), EnumPart{},
        [&](std::size_t i) {
            const EnumPartition &partition = partitions[i];
            EnumPart part;
            const std::function<bool(const Execution &, const Outcome &)>
                visit = [&part](const Execution &, const Outcome &o) {
                    part.behaviors.insert(o);
                    return true;
                };
            const std::vector<const ThreadRun *> chosen =
                chosenOf(partition.combo);
            Execution x = buildSkeleton(program, chosen, nullptr);
            GraphEnumerator graphs(program, model, opts, part.stats, visit,
                                   &candidates);
            graphs.runPartition(x, chosen, partition.firstWriter);
            return part;
        },
        [](EnumPart &acc, EnumPart &&part) {
            acc.behaviors.insert(part.behaviors.begin(),
                                 part.behaviors.end());
            acc.stats.candidates += part.stats.candidates;
            acc.stats.wellFormed += part.stats.wellFormed;
            acc.stats.consistent += part.stats.consistent;
        });
    behaviors = std::move(merged.behaviors);
    stats = merged.stats;
}

} // namespace

BehaviorSet
enumerateBehaviors(const Program &program,
                   const models::ConsistencyModel &model,
                   EnumerateStats *stats, const EnumerateOptions &opts)
{
    BehaviorSet behaviors;
    EnumerateStats local;

    support::ThreadPool *pool = opts.pool;
    std::unique_ptr<support::ThreadPool> owned;
    if (pool == nullptr) {
        const std::size_t jobs = opts.jobs == 0
                                     ? support::ThreadPool::defaultJobs()
                                     : opts.jobs;
        if (jobs > 1) {
            owned = std::make_unique<support::ThreadPool>(jobs);
            pool = owned.get();
        }
    }

    if (pool != nullptr && pool->jobs() > 1) {
        enumerateParallel(program, model, *pool, behaviors, local, opts);
    } else {
        enumerateImpl(
            program, model,
            [&](const Execution &, const Outcome &o) {
                behaviors.insert(o);
                return true;
            },
            local, opts);
    }
    if (stats)
        *stats = local;
    return behaviors;
}

void
forEachConsistentExecution(
    const Program &program, const models::ConsistencyModel &model,
    const std::function<bool(const memcore::Execution &, const Outcome &)>
        &visit,
    const EnumerateOptions &opts)
{
    EnumerateStats stats;
    enumerateImpl(program, model, visit, stats, opts);
}

} // namespace risotto::litmus
