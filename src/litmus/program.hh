/**
 * @file
 * Litmus-program representation.
 *
 * A litmus program is a set of initialized shared locations plus a parallel
 * composition of short straight-line threads built from abstract loads,
 * stores, RMWs and fences. One program type serves all three instruction
 * sets of the paper (x86, TCG IR, Arm); the ordering flavour of each access
 * (acquire/release/acquirePC/sc annotations, fence kinds, amo-vs-lxsx RMWs)
 * selects the architecture-specific event vocabulary, and the consistency
 * model applied during enumeration gives it semantics.
 */

#ifndef RISOTTO_LITMUS_PROGRAM_HH
#define RISOTTO_LITMUS_PROGRAM_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "memcore/event.hh"

namespace risotto::litmus
{

using memcore::Access;
using memcore::FenceKind;
using memcore::Loc;
using memcore::RmwKind;
using memcore::Val;

/** Register index within a thread (threads have disjoint register files). */
using Reg = int;

/** Sentinel for "no register". */
constexpr Reg NoReg = -1;

/**
 * Value expression of a store.
 *
 * Const writes a constant; FromReg writes a register's value (a real data
 * dependency); FalseDep writes the constant 0 through an expression that
 * syntactically mentions a register (e.g. r XOR r), so it carries a data
 * dependency edge with a statically known value -- the shape targeted by
 * false-dependency elimination (Section 6.1).
 */
struct StoreExpr
{
    enum class Kind
    {
        Const,
        FromReg,
        FalseDep,
    };

    Kind kind = Kind::Const;
    Val konst = 0;
    Reg reg = NoReg;

    static StoreExpr constant(Val v) { return {Kind::Const, v, NoReg}; }
    static StoreExpr fromReg(Reg r) { return {Kind::FromReg, 0, r}; }
    static StoreExpr falseDep(Reg r) { return {Kind::FalseDep, 0, r}; }
};

/** One abstract instruction of a litmus thread. */
struct Instr
{
    enum class Kind
    {
        Load,
        Store,
        Rmw,
        Fence,
    };

    Kind kind = Kind::Fence;

    /** Destination register (Load: value read; Rmw: old value read). */
    Reg dst = NoReg;

    /** Accessed location (Load/Store/Rmw). */
    Loc loc = 0;

    /** Stored value expression (Store). */
    StoreExpr value;

    /** CAS parameters (Rmw): succeed iff old == expected, then write
     * desired. */
    Val expected = 0;
    Val desired = 0;

    /** RMW implementation class: Amo (single instruction, e.g. casal) or
     * LxSx (exclusive pair). */
    RmwKind rmwKind = RmwKind::None;

    /** Ordering annotation of the read part (Load/Rmw). */
    Access readAccess = Access::Plain;

    /** Ordering annotation of the write part (Store/Rmw). */
    Access writeAccess = Access::Plain;

    /** Fence kind (Fence). */
    FenceKind fence = FenceKind::None;

    /** Control guard: when guardReg != NoReg the instruction only executes
     * if that register currently equals guardVal, and its events carry a
     * control dependency from the load that defined the register. */
    Reg guardReg = NoReg;
    Val guardVal = 0;

    /** Address dependency: when addrDepReg != NoReg the effective address
     * is computed from that register (the location itself stays static so
     * enumeration is unaffected; only the dependency edge is recorded). */
    Reg addrDepReg = NoReg;

    /** Short rendering, e.g. "r0 = [x]" or "[y] := 1". */
    std::string toString() const;

    // --- Constructors -----------------------------------------------------

    static Instr load(Reg dst, Loc loc, Access acc = Access::Plain);
    static Instr store(Loc loc, Val v, Access acc = Access::Plain);
    static Instr storeExpr(Loc loc, StoreExpr e, Access acc = Access::Plain);
    static Instr rmw(Reg dst, Loc loc, Val expected, Val desired,
                     RmwKind kind = RmwKind::Amo,
                     Access read_acc = Access::Plain,
                     Access write_acc = Access::Plain);
    static Instr fenceOf(FenceKind kind);

    /** Return a copy guarded on @p reg == @p val. */
    Instr guarded(Reg reg, Val val) const;

    /** Return a copy with an address dependency on @p reg. */
    Instr withAddrDep(Reg reg) const;
};

/** A thread: a straight-line sequence of instructions. */
struct Thread
{
    std::vector<Instr> instrs;
};

/** A complete litmus program. */
struct Program
{
    std::string name;

    /** Initial values; locations not listed start at 0. */
    std::map<Loc, Val> init;

    std::vector<Thread> threads;

    /** All locations accessed or initialized anywhere in the program. */
    std::set<Loc> locations() const;

    /** All constants that any execution of the program can write, i.e. the
     * closed value universe used during enumeration. */
    std::set<Val> valueUniverse() const;

    /** Registers written by each thread (dst registers). */
    std::set<Reg> threadRegisters(std::size_t tid) const;

    /** Multi-line rendering for debugging and reports. */
    std::string toString() const;
};

} // namespace risotto::litmus

#endif // RISOTTO_LITMUS_PROGRAM_HH
