#include "litmus/check.hh"

#include <algorithm>

#include "support/error.hh"

namespace risotto::litmus
{

Outcome
projectOutcome(const Outcome &outcome,
               const std::vector<std::set<Reg>> &regs_per_thread)
{
    Outcome out;
    out.memory = outcome.memory;
    out.regs.resize(outcome.regs.size());
    for (std::size_t t = 0; t < outcome.regs.size(); ++t) {
        if (t >= regs_per_thread.size())
            continue;
        for (const auto &[r, v] : outcome.regs[t])
            if (regs_per_thread[t].count(r))
                out.regs[t][r] = v;
    }
    return out;
}

RefinementResult
checkRefinement(const Program &source,
                const models::ConsistencyModel &source_model,
                const Program &target,
                const models::ConsistencyModel &target_model,
                const EnumerateOptions &opts)
{
    fatalIf(source.threads.size() != target.threads.size(),
            "refinement check requires equal thread counts");

    // Observables: registers present in both programs, per thread.
    std::vector<std::set<Reg>> common(source.threads.size());
    for (std::size_t t = 0; t < source.threads.size(); ++t) {
        const std::set<Reg> s = source.threadRegisters(t);
        const std::set<Reg> g = target.threadRegisters(t);
        std::set_intersection(s.begin(), s.end(), g.begin(), g.end(),
                              std::inserter(common[t], common[t].begin()));
    }

    const BehaviorSet src_raw = enumerateBehaviors(source, source_model,
                                                   nullptr, opts);
    const BehaviorSet tgt_raw = enumerateBehaviors(target, target_model,
                                                   nullptr, opts);

    BehaviorSet src;
    for (const Outcome &o : src_raw)
        src.insert(projectOutcome(o, common));
    BehaviorSet tgt;
    for (const Outcome &o : tgt_raw)
        tgt.insert(projectOutcome(o, common));

    RefinementResult result;
    result.sourceBehaviors = src.size();
    result.targetBehaviors = tgt.size();
    for (const Outcome &o : tgt) {
        if (!src.count(o)) {
            result.correct = false;
            result.newOutcomes.push_back(o);
        }
    }
    return result;
}

} // namespace risotto::litmus
