#include "litmus/outcome.hh"

#include <sstream>

namespace risotto::litmus
{

std::string
Outcome::toString() const
{
    std::ostringstream os;
    for (std::size_t t = 0; t < regs.size(); ++t) {
        os << "T" << t << "{";
        bool first = true;
        for (const auto &[r, v] : regs[t]) {
            if (!first)
                os << " ";
            os << "r" << r << "=" << v;
            first = false;
        }
        os << "} ";
    }
    os << "mem{";
    bool first = true;
    for (const auto &[loc, v] : memory) {
        if (!first)
            os << " ";
        os << loc << "=" << v;
        first = false;
    }
    os << "}";
    return os.str();
}

Condition &
Condition::reg(std::size_t tid, Reg r, Val val)
{
    regTerms_.push_back({tid, r, val});
    return *this;
}

Condition &
Condition::mem(Loc loc, Val val)
{
    memTerms_.push_back({loc, val});
    return *this;
}

bool
Condition::holds(const Outcome &outcome) const
{
    for (const RegTerm &t : regTerms_) {
        if (t.tid >= outcome.regs.size())
            return false;
        auto it = outcome.regs[t.tid].find(t.reg);
        const Val actual = it == outcome.regs[t.tid].end() ? 0 : it->second;
        if (actual != t.val)
            return false;
    }
    for (const MemTerm &t : memTerms_) {
        auto it = outcome.memory.find(t.loc);
        const Val actual = it == outcome.memory.end() ? 0 : it->second;
        if (actual != t.val)
            return false;
    }
    return true;
}

bool
Condition::existsIn(const BehaviorSet &set) const
{
    for (const Outcome &o : set)
        if (holds(o))
            return true;
    return false;
}

std::string
Condition::toString() const
{
    std::ostringstream os;
    bool first = true;
    for (const RegTerm &t : regTerms_) {
        if (!first)
            os << " & ";
        os << t.tid << ":r" << t.reg << "=" << t.val;
        first = false;
    }
    for (const MemTerm &t : memTerms_) {
        if (!first)
            os << " & ";
        os << "[" << t.loc << "]=" << t.val;
        first = false;
    }
    return os.str();
}

} // namespace risotto::litmus
