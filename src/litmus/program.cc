#include "litmus/program.hh"

#include <sstream>

#include "support/error.hh"

namespace risotto::litmus
{

Instr
Instr::load(Reg dst, Loc loc, Access acc)
{
    Instr i;
    i.kind = Kind::Load;
    i.dst = dst;
    i.loc = loc;
    i.readAccess = acc;
    return i;
}

Instr
Instr::store(Loc loc, Val v, Access acc)
{
    Instr i;
    i.kind = Kind::Store;
    i.loc = loc;
    i.value = StoreExpr::constant(v);
    i.writeAccess = acc;
    return i;
}

Instr
Instr::storeExpr(Loc loc, StoreExpr e, Access acc)
{
    Instr i;
    i.kind = Kind::Store;
    i.loc = loc;
    i.value = e;
    i.writeAccess = acc;
    return i;
}

Instr
Instr::rmw(Reg dst, Loc loc, Val expected, Val desired, RmwKind kind,
           Access read_acc, Access write_acc)
{
    Instr i;
    i.kind = Kind::Rmw;
    i.dst = dst;
    i.loc = loc;
    i.expected = expected;
    i.desired = desired;
    i.rmwKind = kind;
    i.readAccess = read_acc;
    i.writeAccess = write_acc;
    return i;
}

Instr
Instr::fenceOf(FenceKind kind)
{
    Instr i;
    i.kind = Kind::Fence;
    i.fence = kind;
    return i;
}

Instr
Instr::guarded(Reg reg, Val val) const
{
    Instr i = *this;
    i.guardReg = reg;
    i.guardVal = val;
    return i;
}

Instr
Instr::withAddrDep(Reg reg) const
{
    Instr i = *this;
    i.addrDepReg = reg;
    return i;
}

std::string
Instr::toString() const
{
    std::ostringstream os;
    if (guardReg != NoReg)
        os << "if (r" << guardReg << " == " << guardVal << ") ";
    switch (kind) {
      case Kind::Load:
        os << "r" << dst << " = [" << loc << "]";
        if (readAccess != Access::Plain)
            os << "." << memcore::accessName(readAccess);
        break;
      case Kind::Store:
        os << "[" << loc << "] := ";
        switch (value.kind) {
          case StoreExpr::Kind::Const:
            os << value.konst;
            break;
          case StoreExpr::Kind::FromReg:
            os << "r" << value.reg;
            break;
          case StoreExpr::Kind::FalseDep:
            os << "(r" << value.reg << " ^ r" << value.reg << ")";
            break;
        }
        if (writeAccess != Access::Plain)
            os << "." << memcore::accessName(writeAccess);
        break;
      case Kind::Rmw:
        os << "r" << dst << " = RMW";
        os << (rmwKind == RmwKind::Amo ? "1" : "2");
        {
            std::string ann;
            if (readAccess == Access::Acquire)
                ann += "A";
            if (writeAccess == Access::Release)
                ann += "L";
            if (readAccess == Access::Sc)
                ann = "sc";
            if (!ann.empty())
                os << "." << ann;
        }
        os << "(" << loc << ", " << expected << ", " << desired << ")";
        break;
      case Kind::Fence:
        os << memcore::fenceKindName(fence);
        break;
    }
    if (addrDepReg != NoReg)
        os << " [addr-dep r" << addrDepReg << "]";
    return os.str();
}

std::set<Loc>
Program::locations() const
{
    std::set<Loc> out;
    for (const auto &[loc, val] : init)
        out.insert(loc);
    for (const Thread &t : threads)
        for (const Instr &i : t.instrs)
            if (i.kind != Instr::Kind::Fence)
                out.insert(i.loc);
    return out;
}

std::set<Val>
Program::valueUniverse() const
{
    std::set<Val> out;
    out.insert(0);
    for (const auto &[loc, val] : init)
        out.insert(val);
    for (const Thread &t : threads) {
        for (const Instr &i : t.instrs) {
            switch (i.kind) {
              case Instr::Kind::Store:
                if (i.value.kind == StoreExpr::Kind::Const)
                    out.insert(i.value.konst);
                // FromReg writes values already in the universe (closure);
                // FalseDep writes 0, already present.
                break;
              case Instr::Kind::Rmw:
                out.insert(i.expected);
                out.insert(i.desired);
                break;
              default:
                break;
            }
        }
    }
    return out;
}

std::set<Reg>
Program::threadRegisters(std::size_t tid) const
{
    panicIf(tid >= threads.size(), "thread index out of range");
    std::set<Reg> out;
    for (const Instr &i : threads[tid].instrs)
        if (i.dst != NoReg)
            out.insert(i.dst);
    return out;
}

std::string
Program::toString() const
{
    std::ostringstream os;
    os << name << ":\n  init:";
    for (const auto &[loc, val] : init)
        os << " [" << loc << "]=" << val;
    os << "\n";
    for (std::size_t t = 0; t < threads.size(); ++t) {
        os << "  T" << t << ":\n";
        for (const Instr &i : threads[t].instrs)
            os << "    " << i.toString() << "\n";
    }
    return os.str();
}

} // namespace risotto::litmus
