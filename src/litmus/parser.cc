#include "litmus/parser.hh"

#include <sstream>

#include "support/error.hh"
#include "support/format.hh"

namespace risotto::litmus
{

using memcore::Access;
using memcore::FenceKind;
using memcore::RmwKind;

namespace
{

[[noreturn]] void
bad(int line, const std::string &msg)
{
    fatal("litmus line " + std::to_string(line) + ": " + msg);
}

std::int64_t
parseInt(const std::string &tok, int line)
{
    try {
        std::size_t used = 0;
        const std::int64_t v = std::stoll(tok, &used, 0);
        if (used != tok.size())
            bad(line, "trailing characters in number '" + tok + "'");
        return v;
    } catch (const std::exception &) {
        bad(line, "expected a number, got '" + tok + "'");
    }
}

Reg
parseReg(const std::string &tok, int line)
{
    if (tok.size() < 2 || tok[0] != 'r')
        bad(line, "expected a register (rN), got '" + tok + "'");
    return static_cast<Reg>(parseInt(tok.substr(1), line));
}

FenceKind
parseFence(const std::string &tok, int line)
{
    static const std::pair<const char *, FenceKind> table[] = {
        {"mfence", FenceKind::MFence}, {"dmbff", FenceKind::DmbFull},
        {"dmbld", FenceKind::DmbLd},   {"dmbst", FenceKind::DmbSt},
        {"Frr", FenceKind::Frr},       {"Frw", FenceKind::Frw},
        {"Frm", FenceKind::Frm},       {"Fwr", FenceKind::Fwr},
        {"Fww", FenceKind::Fww},       {"Fwm", FenceKind::Fwm},
        {"Fmr", FenceKind::Fmr},       {"Fmw", FenceKind::Fmw},
        {"Fmm", FenceKind::Fmm},       {"Facq", FenceKind::Facq},
        {"Frel", FenceKind::Frel},     {"Fsc", FenceKind::Fsc},
    };
    for (const auto &[name, kind] : table)
        if (tok == name)
            return kind;
    bad(line, "unknown fence kind '" + tok + "'");
}

/** Parse one instruction from tokens[from...]. */
Instr
parseInstr(const std::vector<std::string> &tokens, std::size_t from,
           int line)
{
    if (from >= tokens.size())
        bad(line, "missing instruction");
    const std::string &op = tokens[from];
    auto arg = [&](std::size_t i) -> const std::string & {
        if (from + i >= tokens.size())
            bad(line, "missing operand for '" + op + "'");
        return tokens[from + i];
    };
    auto optional_arg = [&](std::size_t i) -> std::string {
        return from + i < tokens.size() ? tokens[from + i] : "";
    };

    if (op == "load") {
        const Reg dst = parseReg(arg(1), line);
        const Loc loc = static_cast<Loc>(parseInt(arg(2), line));
        Access acc = Access::Plain;
        const std::string flavor = optional_arg(3);
        if (flavor == "acq")
            acc = Access::Acquire;
        else if (flavor == "acqpc")
            acc = Access::AcquirePC;
        else if (!flavor.empty() && flavor != "plain")
            bad(line, "unknown load flavor '" + flavor + "'");
        return Instr::load(dst, loc, acc);
    }
    if (op == "store") {
        const Loc loc = static_cast<Loc>(parseInt(arg(1), line));
        const std::string &val = arg(2);
        Access acc = Access::Plain;
        const std::string flavor = optional_arg(3);
        if (flavor == "rel")
            acc = Access::Release;
        else if (!flavor.empty() && flavor != "plain")
            bad(line, "unknown store flavor '" + flavor + "'");
        if (!val.empty() && val[0] == 'r')
            return Instr::storeExpr(
                loc, StoreExpr::fromReg(parseReg(val, line)), acc);
        return Instr::store(loc, parseInt(val, line), acc);
    }
    if (op == "rmw") {
        const Reg dst = parseReg(arg(1), line);
        const Loc loc = static_cast<Loc>(parseInt(arg(2), line));
        const Val expect = parseInt(arg(3), line);
        const Val desired = parseInt(arg(4), line);
        RmwKind kind = RmwKind::Amo;
        Access racc = Access::Plain;
        Access wacc = Access::Plain;
        for (std::size_t i = 5; from + i < tokens.size(); ++i) {
            const std::string &mod = tokens[from + i];
            if (mod == "amo")
                kind = RmwKind::Amo;
            else if (mod == "lxsx")
                kind = RmwKind::LxSx;
            else if (mod == "al") {
                racc = Access::Acquire;
                wacc = Access::Release;
            } else if (mod == "a")
                racc = Access::Acquire;
            else if (mod == "l")
                wacc = Access::Release;
            else if (mod == "sc") {
                racc = Access::Sc;
                wacc = Access::Sc;
            } else
                bad(line, "unknown rmw modifier '" + mod + "'");
        }
        return Instr::rmw(dst, loc, expect, desired, kind, racc, wacc);
    }
    if (op == "fence")
        return Instr::fenceOf(parseFence(arg(1), line));
    bad(line, "unknown instruction '" + op + "'");
}

Condition
parseCondition(const std::string &clause, int line)
{
    Condition cond;
    for (std::string term : splitString(clause, '&')) {
        term = trimString(term);
        if (term.empty())
            continue;
        const std::size_t eq = term.find('=');
        if (eq == std::string::npos)
            bad(line, "condition term without '=': '" + term + "'");
        const std::string lhs = trimString(term.substr(0, eq));
        const Val value = parseInt(trimString(term.substr(eq + 1)), line);
        if (!lhs.empty() && lhs.front() == '[') {
            if (lhs.back() != ']')
                bad(line, "malformed memory term '" + lhs + "'");
            cond.mem(static_cast<Loc>(parseInt(
                         lhs.substr(1, lhs.size() - 2), line)),
                     value);
        } else {
            const std::size_t colon = lhs.find(':');
            if (colon == std::string::npos)
                bad(line, "register term needs T:rN form: '" + lhs + "'");
            const std::size_t tid = static_cast<std::size_t>(
                parseInt(lhs.substr(0, colon), line));
            cond.reg(tid, parseReg(lhs.substr(colon + 1), line), value);
        }
    }
    return cond;
}

} // namespace

LitmusTest
parseLitmus(const std::string &text)
{
    LitmusTest test;
    bool seen_thread = false;
    bool seen_exists = false;
    int line_no = 0;
    for (const std::string &raw : splitString(text, '\n')) {
        ++line_no;
        std::string line = raw;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trimString(line);
        if (line.empty())
            continue;
        std::vector<std::string> tokens = splitString(line, ' ');
        // Tolerate tabs by re-splitting each token.
        {
            std::vector<std::string> flat;
            for (const std::string &t : tokens)
                for (const std::string &u : splitString(t, '\t'))
                    flat.push_back(u);
            tokens = std::move(flat);
        }
        const std::string &head = tokens[0];

        if (head == "test") {
            fatalIf(tokens.size() < 2, "litmus line " +
                                           std::to_string(line_no) +
                                           ": missing test name");
            test.program.name = tokens[1];
        } else if (head == "init") {
            for (std::size_t i = 1; i < tokens.size(); ++i) {
                const std::string &term = tokens[i];
                const std::size_t eq = term.find('=');
                if (term.size() < 4 || term[0] != '[' ||
                    eq == std::string::npos)
                    bad(line_no, "init term must be [LOC]=VAL");
                const Loc loc = static_cast<Loc>(parseInt(
                    term.substr(1, term.find(']') - 1), line_no));
                test.program.init[loc] =
                    parseInt(term.substr(eq + 1), line_no);
            }
        } else if (head == "thread") {
            test.program.threads.emplace_back();
            seen_thread = true;
        } else if (head == "exists" || head == "forbidden") {
            const std::size_t pos = line.find(head) + head.size();
            test.interesting = parseCondition(line.substr(pos), line_no);
            test.forbiddenInSource = head == "forbidden";
            seen_exists = true;
        } else if (head == "if") {
            if (!seen_thread)
                bad(line_no, "instruction before any 'thread'");
            // if rN=VAL <instruction>
            fatalIf(tokens.size() < 3, "litmus line " +
                                           std::to_string(line_no) +
                                           ": malformed guard");
            const std::string &guard = tokens[1];
            const std::size_t eq = guard.find('=');
            if (eq == std::string::npos)
                bad(line_no, "guard must be rN=VAL");
            const Reg greg = parseReg(guard.substr(0, eq), line_no);
            const Val gval = parseInt(guard.substr(eq + 1), line_no);
            const Instr inner = parseInstr(tokens, 2, line_no);
            test.program.threads.back().instrs.push_back(
                inner.guarded(greg, gval));
        } else {
            if (!seen_thread)
                bad(line_no, "instruction before any 'thread'");
            test.program.threads.back().instrs.push_back(
                parseInstr(tokens, 0, line_no));
        }
    }
    fatalIf(test.program.threads.empty(), "litmus test has no threads");
    fatalIf(!seen_exists, "litmus test has no exists/forbidden clause");
    return test;
}

namespace
{

std::string
formatInstr(const Instr &i)
{
    std::ostringstream os;
    if (i.guardReg != NoReg)
        os << "if r" << i.guardReg << "=" << i.guardVal << " ";
    switch (i.kind) {
      case Instr::Kind::Load:
        os << "load r" << i.dst << " " << i.loc;
        if (i.readAccess == Access::Acquire)
            os << " acq";
        else if (i.readAccess == Access::AcquirePC)
            os << " acqpc";
        break;
      case Instr::Kind::Store:
        os << "store " << i.loc << " ";
        if (i.value.kind == StoreExpr::Kind::Const)
            os << i.value.konst;
        else
            os << "r" << i.value.reg;
        if (i.writeAccess == Access::Release)
            os << " rel";
        break;
      case Instr::Kind::Rmw:
        os << "rmw r" << i.dst << " " << i.loc << " " << i.expected << " "
           << i.desired << " "
           << (i.rmwKind == RmwKind::Amo ? "amo" : "lxsx");
        if (i.readAccess == Access::Sc)
            os << " sc";
        else if (i.readAccess == Access::Acquire &&
                 i.writeAccess == Access::Release)
            os << " al";
        else if (i.readAccess == Access::Acquire)
            os << " a";
        else if (i.writeAccess == Access::Release)
            os << " l";
        break;
      case Instr::Kind::Fence: {
        std::string name = memcore::fenceKindName(i.fence);
        os << "fence " << name;
        break;
      }
    }
    return os.str();
}

} // namespace

std::string
formatLitmus(const LitmusTest &test)
{
    std::ostringstream os;
    os << "test " << test.program.name << "\n";
    if (!test.program.init.empty()) {
        os << "init";
        for (const auto &[loc, val] : test.program.init)
            os << " [" << loc << "]=" << val;
        os << "\n";
    }
    for (const Thread &t : test.program.threads) {
        os << "thread\n";
        for (const Instr &i : t.instrs)
            os << "  " << formatInstr(i) << "\n";
    }
    os << (test.forbiddenInSource ? "forbidden " : "exists ")
       << test.interesting.toString() << "\n";
    return os.str();
}

} // namespace risotto::litmus
