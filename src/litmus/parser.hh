/**
 * @file
 * Text format for litmus tests.
 *
 * A compact herd7-inspired syntax so tests can be written as data files
 * and fed to the explorer/checker tools:
 *
 *     test MP
 *     init [1]=0
 *     thread                  # T0
 *       store 0 1             # [0] := 1
 *       fence mfence
 *       store 1 1
 *     thread                  # T1
 *       load r0 1             # r0 = [1]
 *       load r1 0
 *     exists 1:r0=1 & 1:r1=0
 *
 * Instruction forms (one per line; '#' starts a comment):
 *   load  rN LOC [flavor]        flavor: plain|acq|acqpc (default plain)
 *   store LOC VAL [flavor]       flavor: plain|rel
 *   store LOC rN                 store a register (data dependency)
 *   rmw   rN LOC EXPECT DESIRED [amo|lxsx] [al|a|l|sc]
 *   fence KIND                   mfence, dmbff, dmbld, dmbst, Frr..Fsc
 *   if rN=VAL <instruction>      control-dependent instruction
 * The `exists` clause uses T:rN=V register terms and [LOC]=V memory
 * terms joined by '&'.
 */

#ifndef RISOTTO_LITMUS_PARSER_HH
#define RISOTTO_LITMUS_PARSER_HH

#include <string>

#include "litmus/library.hh"
#include "litmus/outcome.hh"
#include "litmus/program.hh"

namespace risotto::litmus
{

/**
 * Parse a litmus test from its text form.
 * @throws FatalError on syntax errors, with line numbers.
 */
LitmusTest parseLitmus(const std::string &text);

/** Render a test back to the text format (round-trips via parseLitmus).*/
std::string formatLitmus(const LitmusTest &test);

} // namespace risotto::litmus

#endif // RISOTTO_LITMUS_PARSER_HH
