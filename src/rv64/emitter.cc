#include "rv64/emitter.hh"

#include <climits>

#include "support/error.hh"

namespace risotto::rv64
{

Emitter::Label
Emitter::newLabel()
{
    labels_.push_back(-1);
    return labels_.size() - 1;
}

void
Emitter::bind(Label label)
{
    panicIf(label >= labels_.size(), "bad rv64 label");
    panicIf(labels_[label] >= 0, "rv64 label bound twice");
    labels_[label] = static_cast<std::int64_t>(buffer_.end());
}

void
Emitter::finish()
{
    for (const Fixup &f : fixups_) {
        panicIf(labels_[f.label] < 0, "unbound rv64 label");
        RInstr in = decode(buffer_.fetch(f.at));
        in.imm = static_cast<std::int32_t>(labels_[f.label]) -
                 static_cast<std::int32_t>(f.at);
        buffer_.patch(f.at, encode(in));
    }
    fixups_.clear();
}

void
Emitter::emit(const RInstr &instr)
{
    buffer_.append(encode(instr));
}

void
Emitter::emitBranch(RInstr instr, Label label)
{
    panicIf(label >= labels_.size(), "bad rv64 label");
    instr.imm = 0;
    const CodeAddr at = buffer_.append(encode(instr));
    fixups_.push_back({at, label});
}

void
Emitter::li(XReg rd, std::uint64_t value)
{
    // lui/addi, extended by slli+addi rungs for wide values -- the
    // classic RISC-V materialization ladder. x0 is a live guest
    // register here (see isa.hh), so even tiny constants start from
    // `lui rd, 0` rather than `addi rd, x0, imm`.
    const std::int64_t v = static_cast<std::int64_t>(value);
    const std::int64_t lo = (v << 52) >> 52; // sign-extended low 12 bits
    const std::int64_t hi = v - lo;
    if (hi >= INT32_MIN && hi <= INT32_MAX) {
        lui(rd, static_cast<std::int32_t>(hi >> 12));
        if (lo != 0)
            addi(rd, rd, static_cast<std::int32_t>(lo));
        return;
    }
    li(rd, static_cast<std::uint64_t>(
               static_cast<std::int64_t>(
                   value - static_cast<std::uint64_t>(lo)) >>
               12));
    slli(rd, rd, 12);
    if (lo != 0)
        addi(rd, rd, static_cast<std::int32_t>(lo));
}

void
Emitter::mv(XReg rd, XReg rs)
{
    addi(rd, rs, 0);
}

void
Emitter::lui(XReg rd, std::int32_t imm20)
{
    panicIf(imm20 < -(1 << 19) || imm20 >= (1 << 19),
            "lui immediate out of range");
    RInstr in;
    in.op = ROp::Lui;
    in.rd = rd;
    in.imm = imm20 << 12;
    emit(in);
}

namespace
{

RInstr
mem(ROp op, XReg rd, XReg rs1, XReg rs2, std::int32_t imm)
{
    RInstr in;
    in.op = op;
    in.rd = rd;
    in.rs1 = rs1;
    in.rs2 = rs2;
    in.imm = imm;
    return in;
}

RInstr
atomic(ROp op, XReg rd, XReg rs2, XReg rs1, bool aq, bool rl)
{
    RInstr in;
    in.op = op;
    in.rd = rd;
    in.rs1 = rs1;
    in.rs2 = rs2;
    in.aq = aq;
    in.rl = rl;
    return in;
}

} // namespace

void Emitter::ld(XReg rd, XReg rs1, std::int32_t off)
{
    emit(mem(ROp::Ld, rd, rs1, 0, off));
}

void Emitter::lbu(XReg rd, XReg rs1, std::int32_t off)
{
    emit(mem(ROp::Lbu, rd, rs1, 0, off));
}

void Emitter::sd(XReg rs2, XReg rs1, std::int32_t off)
{
    emit(mem(ROp::Sd, 0, rs1, rs2, off));
}

void Emitter::sb(XReg rs2, XReg rs1, std::int32_t off)
{
    emit(mem(ROp::Sb, 0, rs1, rs2, off));
}

void Emitter::addi(XReg rd, XReg rs1, std::int32_t imm)
{
    emit(mem(ROp::Addi, rd, rs1, 0, imm));
}

void Emitter::slti(XReg rd, XReg rs1, std::int32_t imm)
{
    emit(mem(ROp::Slti, rd, rs1, 0, imm));
}

void Emitter::sltiu(XReg rd, XReg rs1, std::int32_t imm)
{
    emit(mem(ROp::Sltiu, rd, rs1, 0, imm));
}

void Emitter::xori(XReg rd, XReg rs1, std::int32_t imm)
{
    emit(mem(ROp::Xori, rd, rs1, 0, imm));
}

void Emitter::ori(XReg rd, XReg rs1, std::int32_t imm)
{
    emit(mem(ROp::Ori, rd, rs1, 0, imm));
}

void Emitter::andi(XReg rd, XReg rs1, std::int32_t imm)
{
    emit(mem(ROp::Andi, rd, rs1, 0, imm));
}

void Emitter::slli(XReg rd, XReg rs1, std::int32_t shamt)
{
    emit(mem(ROp::Slli, rd, rs1, 0, shamt));
}

void Emitter::srli(XReg rd, XReg rs1, std::int32_t shamt)
{
    emit(mem(ROp::Srli, rd, rs1, 0, shamt));
}

void Emitter::add(XReg rd, XReg rs1, XReg rs2)
{
    emit(mem(ROp::Add, rd, rs1, rs2, 0));
}

void Emitter::sub(XReg rd, XReg rs1, XReg rs2)
{
    emit(mem(ROp::Sub, rd, rs1, rs2, 0));
}

void Emitter::slt(XReg rd, XReg rs1, XReg rs2)
{
    emit(mem(ROp::Slt, rd, rs1, rs2, 0));
}

void Emitter::sltu(XReg rd, XReg rs1, XReg rs2)
{
    emit(mem(ROp::Sltu, rd, rs1, rs2, 0));
}

void Emitter::xor_(XReg rd, XReg rs1, XReg rs2)
{
    emit(mem(ROp::Xor, rd, rs1, rs2, 0));
}

void Emitter::or_(XReg rd, XReg rs1, XReg rs2)
{
    emit(mem(ROp::Or, rd, rs1, rs2, 0));
}

void Emitter::and_(XReg rd, XReg rs1, XReg rs2)
{
    emit(mem(ROp::And, rd, rs1, rs2, 0));
}

void Emitter::mul(XReg rd, XReg rs1, XReg rs2)
{
    emit(mem(ROp::Mul, rd, rs1, rs2, 0));
}

void Emitter::divu(XReg rd, XReg rs1, XReg rs2)
{
    emit(mem(ROp::Divu, rd, rs1, rs2, 0));
}

void
Emitter::fence(std::uint8_t pred, std::uint8_t succ)
{
    RInstr in;
    in.op = ROp::Fence;
    in.pred = pred;
    in.succ = succ;
    emit(in);
}

void Emitter::lr(XReg rd, XReg rs1, bool aq, bool rl)
{
    emit(atomic(ROp::LrD, rd, 0, rs1, aq, rl));
}

void Emitter::sc(XReg rd, XReg rs2, XReg rs1, bool aq, bool rl)
{
    emit(atomic(ROp::ScD, rd, rs2, rs1, aq, rl));
}

void Emitter::amoadd(XReg rd, XReg rs2, XReg rs1, bool aq, bool rl)
{
    emit(atomic(ROp::AmoAddD, rd, rs2, rs1, aq, rl));
}

void Emitter::amoswap(XReg rd, XReg rs2, XReg rs1, bool aq, bool rl)
{
    emit(atomic(ROp::AmoSwapD, rd, rs2, rs1, aq, rl));
}

void Emitter::beq(XReg rs1, XReg rs2, Label label)
{
    emitBranch(mem(ROp::Beq, 0, rs1, rs2, 0), label);
}

void Emitter::bne(XReg rs1, XReg rs2, Label label)
{
    emitBranch(mem(ROp::Bne, 0, rs1, rs2, 0), label);
}

void Emitter::blt(XReg rs1, XReg rs2, Label label)
{
    emitBranch(mem(ROp::Blt, 0, rs1, rs2, 0), label);
}

void Emitter::bge(XReg rs1, XReg rs2, Label label)
{
    emitBranch(mem(ROp::Bge, 0, rs1, rs2, 0), label);
}

void Emitter::jal(XReg rd, Label label)
{
    emitBranch(mem(ROp::Jal, rd, 0, 0, 0), label);
}

void
Emitter::ecall()
{
    RInstr in;
    in.op = ROp::Ecall;
    emit(in);
}

void
Emitter::ebreak()
{
    RInstr in;
    in.op = ROp::Ebreak;
    emit(in);
}

void
Emitter::helper(std::uint8_t id, std::uint16_t extra)
{
    RInstr in;
    in.op = ROp::Helper;
    in.helper = id;
    in.imm = extra;
    emit(in);
}

void
Emitter::exitTb(std::uint32_t slot)
{
    RInstr in;
    in.op = ROp::ExitTb;
    in.imm = static_cast<std::int32_t>(slot);
    emit(in);
}

} // namespace risotto::rv64
