/**
 * @file
 * The simulated RV64 host instruction subset.
 *
 * The second host backend of the multi-mapping framework (ROADMAP item
 * 4): a small RV64I/M/A subset with real RISC-V bit-level encodings —
 * R/I/S/B/U/J formats, FENCE with predecessor/successor sets, and the
 * A-extension's LR/SC and AMOs with .aq/.rl ordering bits. The fence
 * vocabulary is exactly the paper's directional Fxy set (`fence r,w` ==
 * Frw), which is why RVWMO is the natural second mapping target.
 *
 * Deliberate divergences from real RISC-V, imposed by the shared host
 * register convention (see dbt/backend.hh):
 *  - x0 is NOT hardwired to zero. Guest register g0 is pinned to x0 on
 *    every backend, so the rv64 lowering never uses zero-register
 *    idioms; a zero is materialized with `lui rd, 0`.
 *  - DIVU faults on a zero divisor (real RISC-V returns all-ones): the
 *    simulated machine mirrors the aarch core's UDIV guest fault so the
 *    cross-backend differential tests see identical behaviour.
 *
 * Branch/JAL immediates are encoded in bytes (instruction words are 4
 * bytes, as on real hardware) but the decoded RInstr carries them as
 * *word* offsets relative to the branch, matching the aarch convention
 * used by the machine and the verifier.
 */

#ifndef RISOTTO_RV64_ISA_HH
#define RISOTTO_RV64_ISA_HH

#include <cstdint>
#include <string>

namespace risotto::rv64
{

/** Host integer register index (x0..x31; x0 is a normal register). */
using XReg = std::uint8_t;

constexpr unsigned XRegCount = 32;

/** FENCE predecessor/successor set bits (the PR/PW field bits). */
constexpr std::uint8_t FenceR = 2;
constexpr std::uint8_t FenceW = 1;
constexpr std::uint8_t FenceRW = FenceR | FenceW;

/** Decoded opcodes of the subset. */
enum class ROp : std::uint8_t
{
    // RV64I.
    Lui,   ///< rd <- sext(imm20 << 12)
    Jal,   ///< rd <- pc+1; pc += imm (word offset; plain jump when rd dead)
    Beq,
    Bne,
    Blt,   ///< signed
    Bge,   ///< signed
    Bltu,
    Bgeu,
    Lbu,   ///< rd <- zx(mem8[rs1 + imm])
    Ld,    ///< rd <- mem64[rs1 + imm]
    Sb,    ///< mem8[rs1 + imm] <- rs2
    Sd,    ///< mem64[rs1 + imm] <- rs2
    Addi,
    Slti,  ///< signed set-less-than immediate
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,  ///< shamt in imm (0..63)
    Srli,
    Add,
    Sub,
    Slt,
    Sltu,
    Xor,
    Or,
    And,
    Mul,   ///< M extension
    Divu,  ///< M extension; faults on zero divisor (see file comment)
    Fence, ///< FENCE pred,succ
    Ecall, ///< native host syscall (x0 = number, x1 = argument)
    Ebreak,///< halt the core (the aarch Hlt analogue)
    // A extension (doubleword only; the DBT traffics in 64-bit cells).
    LrD,
    ScD,     ///< rd <- 0 on success, 1 on failure (stxr convention)
    AmoAddD, ///< rd <- old; mem += rs2
    AmoSwapD,///< rd <- old; mem <- rs2
    // DBT traps (custom-0 / custom-1 opcode space).
    Helper, ///< invoke runtime helper `helper` with 16-bit `imm` payload
    ExitTb, ///< leave translated code through exit slot `imm`
};

/** One decoded instruction. */
struct RInstr
{
    ROp op = ROp::Addi;
    XReg rd = 0;
    XReg rs1 = 0;
    XReg rs2 = 0;
    /**
     * Immediate. Loads/stores/OP-IMM: sign-extended 12-bit byte offset /
     * operand. Lui: the full sign-extended `imm20 << 12` value. Branches
     * and Jal: signed *word* offset relative to this instruction.
     * Helper: the 16-bit extra payload. ExitTb: the exit-slot index.
     */
    std::int32_t imm = 0;
    /** Acquire/release bits of LR/SC/AMO. */
    bool aq = false;
    bool rl = false;
    /** FENCE predecessor/successor sets (FenceR/FenceW bits). */
    std::uint8_t pred = 0;
    std::uint8_t succ = 0;
    /** Runtime helper id (Helper). */
    std::uint8_t helper = 0;

    /** Disassembly, e.g. "ld x5, 8(x3)" or "fence r,rw". */
    std::string toString() const;
};

/** Encode to a 32-bit instruction word; panics on field overflow. */
std::uint32_t encode(const RInstr &instr);

/** Decode a word; panics on anything outside the subset. */
RInstr decode(std::uint32_t word);

/** True when the op reads guest-visible memory. */
bool opReadsMemory(ROp op);

/** True when the op writes guest-visible memory. */
bool opWritesMemory(ROp op);

} // namespace risotto::rv64

#endif // RISOTTO_RV64_ISA_HH
