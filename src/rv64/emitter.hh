/**
 * @file
 * Label-aware RV64 instruction emitter.
 *
 * Mirrors aarch::Emitter over the same shared CodeBuffer: both hosts
 * use 32-bit instruction words indexed by word address, so the
 * translation cache, chaining and snapshot machinery are
 * container-compatible across backends -- only the word encodings
 * differ. Branch fixups re-encode the B/J-type immediate once the label
 * binds.
 */

#ifndef RISOTTO_RV64_EMITTER_HH
#define RISOTTO_RV64_EMITTER_HH

#include <cstdint>
#include <vector>

#include "aarch/emitter.hh"
#include "rv64/isa.hh"

namespace risotto::rv64
{

/** The code container is host-neutral; reuse the aarch one. */
using CodeBuffer = aarch::CodeBuffer;
using CodeAddr = aarch::CodeAddr;

/** Label-aware emitter over a CodeBuffer. */
class Emitter
{
  public:
    using Label = std::size_t;

    explicit Emitter(CodeBuffer &buffer) : buffer_(buffer) {}

    CodeAddr here() const { return buffer_.end(); }

    Label newLabel();
    void bind(Label label);

    /** Resolve all pending fixups; must be called before executing. */
    void finish();

    // --- Instructions -----------------------------------------------------

    /** Materialize a 64-bit constant (lui/addi/slli ladder; no x0). */
    void li(XReg rd, std::uint64_t value);
    void mv(XReg rd, XReg rs); ///< addi rd, rs, 0

    void lui(XReg rd, std::int32_t imm20); ///< rd <- sext(imm20 << 12)
    void ld(XReg rd, XReg rs1, std::int32_t off = 0);
    void lbu(XReg rd, XReg rs1, std::int32_t off = 0);
    void sd(XReg rs2, XReg rs1, std::int32_t off = 0);
    void sb(XReg rs2, XReg rs1, std::int32_t off = 0);
    void addi(XReg rd, XReg rs1, std::int32_t imm);
    void slti(XReg rd, XReg rs1, std::int32_t imm);
    void sltiu(XReg rd, XReg rs1, std::int32_t imm);
    void xori(XReg rd, XReg rs1, std::int32_t imm);
    void ori(XReg rd, XReg rs1, std::int32_t imm);
    void andi(XReg rd, XReg rs1, std::int32_t imm);
    void slli(XReg rd, XReg rs1, std::int32_t shamt);
    void srli(XReg rd, XReg rs1, std::int32_t shamt);
    void add(XReg rd, XReg rs1, XReg rs2);
    void sub(XReg rd, XReg rs1, XReg rs2);
    void slt(XReg rd, XReg rs1, XReg rs2);
    void sltu(XReg rd, XReg rs1, XReg rs2);
    void xor_(XReg rd, XReg rs1, XReg rs2);
    void or_(XReg rd, XReg rs1, XReg rs2);
    void and_(XReg rd, XReg rs1, XReg rs2);
    void mul(XReg rd, XReg rs1, XReg rs2);
    void divu(XReg rd, XReg rs1, XReg rs2);
    void fence(std::uint8_t pred, std::uint8_t succ);
    void lr(XReg rd, XReg rs1, bool aq, bool rl);
    void sc(XReg rd, XReg rs2, XReg rs1, bool aq, bool rl);
    void amoadd(XReg rd, XReg rs2, XReg rs1, bool aq, bool rl);
    void amoswap(XReg rd, XReg rs2, XReg rs1, bool aq, bool rl);
    void beq(XReg rs1, XReg rs2, Label label);
    void bne(XReg rs1, XReg rs2, Label label);
    void blt(XReg rs1, XReg rs2, Label label);
    void bge(XReg rs1, XReg rs2, Label label);
    void jal(XReg rd, Label label);
    void ecall();
    void ebreak();
    void helper(std::uint8_t id, std::uint16_t extra = 0);
    void exitTb(std::uint32_t slot);

  private:
    struct Fixup
    {
        CodeAddr at;
        Label label;
    };

    void emit(const RInstr &instr);
    void emitBranch(RInstr instr, Label label);

    CodeBuffer &buffer_;
    std::vector<std::int64_t> labels_;
    std::vector<Fixup> fixups_;
};

} // namespace risotto::rv64

#endif // RISOTTO_RV64_EMITTER_HH
