#include "rv64/isa.hh"

#include <sstream>

#include "support/error.hh"

namespace risotto::rv64
{

namespace
{

// Major opcodes (bits [6:0]).
constexpr std::uint32_t OpcLoad = 0x03;
constexpr std::uint32_t OpcMiscMem = 0x0F;
constexpr std::uint32_t OpcOpImm = 0x13;
constexpr std::uint32_t OpcStore = 0x23;
constexpr std::uint32_t OpcAmo = 0x2F;
constexpr std::uint32_t OpcOp = 0x33;
constexpr std::uint32_t OpcLui = 0x37;
constexpr std::uint32_t OpcBranch = 0x63;
constexpr std::uint32_t OpcJal = 0x6F;
constexpr std::uint32_t OpcSystem = 0x73;
// DBT traps live in the reserved custom-0/custom-1 opcode spaces.
constexpr std::uint32_t OpcCustom0 = 0x0B; ///< ExitTb
constexpr std::uint32_t OpcCustom1 = 0x2B; ///< Helper

constexpr std::uint32_t F3Ld = 3, F3Lbu = 4;
constexpr std::uint32_t F3Sb = 0, F3Sd = 3;
constexpr std::uint32_t F5Lr = 0x02, F5Sc = 0x03, F5AmoSwap = 0x01,
                        F5AmoAdd = 0x00;

std::uint32_t
rtype(std::uint32_t f7, XReg rs2, XReg rs1, std::uint32_t f3, XReg rd,
      std::uint32_t opc)
{
    return (f7 << 25) | (std::uint32_t(rs2) << 20) |
           (std::uint32_t(rs1) << 15) | (f3 << 12) |
           (std::uint32_t(rd) << 7) | opc;
}

std::uint32_t
itype(std::int32_t imm, XReg rs1, std::uint32_t f3, XReg rd,
      std::uint32_t opc)
{
    panicIf(imm < -2048 || imm > 2047, "rv64 I-immediate out of range");
    return (std::uint32_t(imm & 0xFFF) << 20) |
           (std::uint32_t(rs1) << 15) | (f3 << 12) |
           (std::uint32_t(rd) << 7) | opc;
}

std::uint32_t
stype(std::int32_t imm, XReg rs2, XReg rs1, std::uint32_t f3,
      std::uint32_t opc)
{
    panicIf(imm < -2048 || imm > 2047, "rv64 S-immediate out of range");
    const std::uint32_t u = std::uint32_t(imm & 0xFFF);
    return ((u >> 5) << 25) | (std::uint32_t(rs2) << 20) |
           (std::uint32_t(rs1) << 15) | (f3 << 12) | ((u & 0x1F) << 7) |
           opc;
}

std::uint32_t
btype(std::int32_t words, XReg rs2, XReg rs1, std::uint32_t f3)
{
    // Encoded in bytes; the decoded form is a word offset.
    panicIf(words < -1024 || words > 1023,
            "rv64 branch offset out of range");
    const std::uint32_t b = std::uint32_t(words * 4) & 0x1FFF;
    return (((b >> 12) & 1) << 31) | (((b >> 5) & 0x3F) << 25) |
           (std::uint32_t(rs2) << 20) | (std::uint32_t(rs1) << 15) |
           (f3 << 12) | (((b >> 1) & 0xF) << 8) | (((b >> 11) & 1) << 7) |
           OpcBranch;
}

std::uint32_t
jtype(std::int32_t words, XReg rd)
{
    panicIf(words < -(1 << 18) || words >= (1 << 18),
            "rv64 jal offset out of range");
    const std::uint32_t b = std::uint32_t(words * 4) & 0x1FFFFF;
    return (((b >> 20) & 1) << 31) | (((b >> 1) & 0x3FF) << 21) |
           (((b >> 11) & 1) << 20) | (((b >> 12) & 0xFF) << 12) |
           (std::uint32_t(rd) << 7) | OpcJal;
}

std::uint32_t
amo(std::uint32_t f5, const RInstr &in)
{
    return (f5 << 27) | (std::uint32_t(in.aq) << 26) |
           (std::uint32_t(in.rl) << 25) | (std::uint32_t(in.rs2) << 20) |
           (std::uint32_t(in.rs1) << 15) | (3u << 12) |
           (std::uint32_t(in.rd) << 7) | OpcAmo;
}

std::int32_t
sext(std::uint32_t value, unsigned bits)
{
    const std::uint32_t m = 1u << (bits - 1);
    return std::int32_t((value ^ m) - m);
}

const char *
fenceSet(std::uint8_t bits)
{
    switch (bits & FenceRW) {
      case FenceR: return "r";
      case FenceW: return "w";
      case FenceRW: return "rw";
      default: return "0";
    }
}

std::string
ordSuffix(const RInstr &in)
{
    if (in.aq && in.rl)
        return ".aqrl";
    if (in.aq)
        return ".aq";
    if (in.rl)
        return ".rl";
    return "";
}

} // namespace

std::uint32_t
encode(const RInstr &in)
{
    switch (in.op) {
      case ROp::Lui:
        panicIf((in.imm & 0xFFF) != 0, "lui immediate has low bits");
        return (std::uint32_t(in.imm) & 0xFFFFF000u) |
               (std::uint32_t(in.rd) << 7) | OpcLui;
      case ROp::Jal: return jtype(in.imm, in.rd);
      case ROp::Beq: return btype(in.imm, in.rs2, in.rs1, 0);
      case ROp::Bne: return btype(in.imm, in.rs2, in.rs1, 1);
      case ROp::Blt: return btype(in.imm, in.rs2, in.rs1, 4);
      case ROp::Bge: return btype(in.imm, in.rs2, in.rs1, 5);
      case ROp::Bltu: return btype(in.imm, in.rs2, in.rs1, 6);
      case ROp::Bgeu: return btype(in.imm, in.rs2, in.rs1, 7);
      case ROp::Lbu: return itype(in.imm, in.rs1, F3Lbu, in.rd, OpcLoad);
      case ROp::Ld: return itype(in.imm, in.rs1, F3Ld, in.rd, OpcLoad);
      case ROp::Sb: return stype(in.imm, in.rs2, in.rs1, F3Sb, OpcStore);
      case ROp::Sd: return stype(in.imm, in.rs2, in.rs1, F3Sd, OpcStore);
      case ROp::Addi: return itype(in.imm, in.rs1, 0, in.rd, OpcOpImm);
      case ROp::Slti: return itype(in.imm, in.rs1, 2, in.rd, OpcOpImm);
      case ROp::Sltiu: return itype(in.imm, in.rs1, 3, in.rd, OpcOpImm);
      case ROp::Xori: return itype(in.imm, in.rs1, 4, in.rd, OpcOpImm);
      case ROp::Ori: return itype(in.imm, in.rs1, 6, in.rd, OpcOpImm);
      case ROp::Andi: return itype(in.imm, in.rs1, 7, in.rd, OpcOpImm);
      case ROp::Slli:
        panicIf(in.imm < 0 || in.imm > 63, "rv64 shamt out of range");
        return itype(in.imm, in.rs1, 1, in.rd, OpcOpImm);
      case ROp::Srli:
        panicIf(in.imm < 0 || in.imm > 63, "rv64 shamt out of range");
        return itype(in.imm, in.rs1, 5, in.rd, OpcOpImm);
      case ROp::Add: return rtype(0x00, in.rs2, in.rs1, 0, in.rd, OpcOp);
      case ROp::Sub: return rtype(0x20, in.rs2, in.rs1, 0, in.rd, OpcOp);
      case ROp::Slt: return rtype(0x00, in.rs2, in.rs1, 2, in.rd, OpcOp);
      case ROp::Sltu: return rtype(0x00, in.rs2, in.rs1, 3, in.rd, OpcOp);
      case ROp::Xor: return rtype(0x00, in.rs2, in.rs1, 4, in.rd, OpcOp);
      case ROp::Or: return rtype(0x00, in.rs2, in.rs1, 6, in.rd, OpcOp);
      case ROp::And: return rtype(0x00, in.rs2, in.rs1, 7, in.rd, OpcOp);
      case ROp::Mul: return rtype(0x01, in.rs2, in.rs1, 0, in.rd, OpcOp);
      case ROp::Divu: return rtype(0x01, in.rs2, in.rs1, 5, in.rd, OpcOp);
      case ROp::Fence:
        panicIf((in.pred & ~FenceRW) || (in.succ & ~FenceRW),
                "rv64 fence set out of range");
        panicIf(in.pred == 0 || in.succ == 0, "rv64 fence with empty set");
        return (std::uint32_t(in.pred) << 24) |
               (std::uint32_t(in.succ) << 20) | OpcMiscMem;
      case ROp::Ecall: return OpcSystem;
      case ROp::Ebreak: return (1u << 20) | OpcSystem;
      case ROp::LrD: {
        panicIf(in.rs2 != 0, "lr.d with a source operand");
        return amo(F5Lr, in);
      }
      case ROp::ScD: return amo(F5Sc, in);
      case ROp::AmoAddD: return amo(F5AmoAdd, in);
      case ROp::AmoSwapD: return amo(F5AmoSwap, in);
      case ROp::ExitTb:
        panicIf(in.imm < 0 || std::uint32_t(in.imm) >= (1u << 25),
                "exit slot out of range");
        return (std::uint32_t(in.imm) << 7) | OpcCustom0;
      case ROp::Helper:
        panicIf(in.imm < 0 || in.imm > 0xFFFF,
                "helper payload out of range");
        return (std::uint32_t(in.imm) << 16) |
               (std::uint32_t(in.helper) << 8) | OpcCustom1;
    }
    panic("unencodable rv64 instruction");
}

RInstr
decode(std::uint32_t w)
{
    RInstr in;
    in.rd = XReg((w >> 7) & 0x1F);
    in.rs1 = XReg((w >> 15) & 0x1F);
    in.rs2 = XReg((w >> 20) & 0x1F);
    const std::uint32_t f3 = (w >> 12) & 7;
    const std::uint32_t f7 = w >> 25;

    auto iimm = [&] { return sext(w >> 20, 12); };
    auto simm = [&] {
        return sext(((w >> 25) << 5) | ((w >> 7) & 0x1F), 12);
    };
    auto bwords = [&] {
        const std::uint32_t b = (((w >> 31) & 1) << 12) |
                                (((w >> 7) & 1) << 11) |
                                (((w >> 25) & 0x3F) << 5) |
                                (((w >> 8) & 0xF) << 1);
        return sext(b, 13) / 4;
    };
    auto jwords = [&] {
        const std::uint32_t b = (((w >> 31) & 1) << 20) |
                                (((w >> 12) & 0xFF) << 12) |
                                (((w >> 20) & 1) << 11) |
                                (((w >> 21) & 0x3FF) << 1);
        return sext(b, 21) / 4;
    };

    switch (w & 0x7F) {
      case OpcLui:
        in.op = ROp::Lui;
        in.imm = std::int32_t(w & 0xFFFFF000u);
        return in;
      case OpcJal:
        in.op = ROp::Jal;
        in.imm = jwords();
        return in;
      case OpcBranch:
        switch (f3) {
          case 0: in.op = ROp::Beq; break;
          case 1: in.op = ROp::Bne; break;
          case 4: in.op = ROp::Blt; break;
          case 5: in.op = ROp::Bge; break;
          case 6: in.op = ROp::Bltu; break;
          case 7: in.op = ROp::Bgeu; break;
          default: panic("unknown rv64 branch funct3");
        }
        in.imm = bwords();
        in.rd = 0;
        return in;
      case OpcLoad:
        panicIf(f3 != F3Ld && f3 != F3Lbu, "unknown rv64 load width");
        in.op = f3 == F3Ld ? ROp::Ld : ROp::Lbu;
        in.imm = iimm();
        in.rs2 = 0;
        return in;
      case OpcStore:
        panicIf(f3 != F3Sd && f3 != F3Sb, "unknown rv64 store width");
        in.op = f3 == F3Sd ? ROp::Sd : ROp::Sb;
        in.imm = simm();
        in.rd = 0;
        return in;
      case OpcOpImm:
        switch (f3) {
          case 0: in.op = ROp::Addi; in.imm = iimm(); break;
          case 1: in.op = ROp::Slli; in.imm = (w >> 20) & 63; break;
          case 2: in.op = ROp::Slti; in.imm = iimm(); break;
          case 3: in.op = ROp::Sltiu; in.imm = iimm(); break;
          case 4: in.op = ROp::Xori; in.imm = iimm(); break;
          case 5: in.op = ROp::Srli; in.imm = (w >> 20) & 63; break;
          case 6: in.op = ROp::Ori; in.imm = iimm(); break;
          case 7: in.op = ROp::Andi; in.imm = iimm(); break;
        }
        in.rs2 = 0;
        return in;
      case OpcOp:
        if (f7 == 0x01) {
            panicIf(f3 != 0 && f3 != 5, "unknown rv64 M-extension op");
            in.op = f3 == 0 ? ROp::Mul : ROp::Divu;
            return in;
        }
        if (f7 == 0x20) {
            panicIf(f3 != 0, "unknown rv64 OP funct3 under funct7=0x20");
            in.op = ROp::Sub;
            return in;
        }
        panicIf(f7 != 0, "unknown rv64 OP funct7");
        switch (f3) {
          case 0: in.op = ROp::Add; break;
          case 2: in.op = ROp::Slt; break;
          case 3: in.op = ROp::Sltu; break;
          case 4: in.op = ROp::Xor; break;
          case 6: in.op = ROp::Or; break;
          case 7: in.op = ROp::And; break;
          default: panic("unknown rv64 OP funct3");
        }
        return in;
      case OpcMiscMem:
        panicIf(f3 != 0, "unknown rv64 MISC-MEM funct3");
        in.op = ROp::Fence;
        in.pred = std::uint8_t((w >> 24) & 0xF);
        in.succ = std::uint8_t((w >> 20) & 0xF);
        in.rd = in.rs1 = 0;
        return in;
      case OpcAmo: {
        panicIf(f3 != 3, "unknown rv64 AMO width");
        in.aq = (w >> 26) & 1;
        in.rl = (w >> 25) & 1;
        switch (w >> 27) {
          case F5Lr: in.op = ROp::LrD; break;
          case F5Sc: in.op = ROp::ScD; break;
          case F5AmoAdd: in.op = ROp::AmoAddD; break;
          case F5AmoSwap: in.op = ROp::AmoSwapD; break;
          default: panic("unknown rv64 AMO funct5");
        }
        return in;
      }
      case OpcSystem:
        panicIf((w >> 20) > 1, "unknown rv64 SYSTEM function");
        in.op = (w >> 20) == 0 ? ROp::Ecall : ROp::Ebreak;
        in.rd = in.rs1 = in.rs2 = 0;
        return in;
      case OpcCustom0:
        in.op = ROp::ExitTb;
        in.imm = std::int32_t(w >> 7);
        in.rd = in.rs1 = in.rs2 = 0;
        return in;
      case OpcCustom1:
        in.op = ROp::Helper;
        in.helper = std::uint8_t((w >> 8) & 0xFF);
        in.imm = std::int32_t(w >> 16);
        in.rd = in.rs1 = in.rs2 = 0;
        return in;
    }
    panic("unknown rv64 opcode");
}

bool
opReadsMemory(ROp op)
{
    switch (op) {
      case ROp::Lbu:
      case ROp::Ld:
      case ROp::LrD:
      case ROp::AmoAddD:
      case ROp::AmoSwapD:
        return true;
      default:
        return false;
    }
}

bool
opWritesMemory(ROp op)
{
    switch (op) {
      case ROp::Sb:
      case ROp::Sd:
      case ROp::ScD:
      case ROp::AmoAddD:
      case ROp::AmoSwapD:
        return true;
      default:
        return false;
    }
}

std::string
RInstr::toString() const
{
    std::ostringstream os;
    auto x = [](XReg r) { return "x" + std::to_string(r); };
    switch (op) {
      case ROp::Lui:
        os << "lui " << x(rd) << ", " << (imm >> 12);
        break;
      case ROp::Jal:
        os << "jal " << x(rd) << ", #" << imm;
        break;
      case ROp::Beq: os << "beq "; goto branch;
      case ROp::Bne: os << "bne "; goto branch;
      case ROp::Blt: os << "blt "; goto branch;
      case ROp::Bge: os << "bge "; goto branch;
      case ROp::Bltu: os << "bltu "; goto branch;
      case ROp::Bgeu: os << "bgeu "; goto branch;
      branch:
        os << x(rs1) << ", " << x(rs2) << ", #" << imm;
        break;
      case ROp::Lbu:
        os << "lbu " << x(rd) << ", " << imm << "(" << x(rs1) << ")";
        break;
      case ROp::Ld:
        os << "ld " << x(rd) << ", " << imm << "(" << x(rs1) << ")";
        break;
      case ROp::Sb:
        os << "sb " << x(rs2) << ", " << imm << "(" << x(rs1) << ")";
        break;
      case ROp::Sd:
        os << "sd " << x(rs2) << ", " << imm << "(" << x(rs1) << ")";
        break;
      case ROp::Addi: os << "addi "; goto opimm;
      case ROp::Slti: os << "slti "; goto opimm;
      case ROp::Sltiu: os << "sltiu "; goto opimm;
      case ROp::Xori: os << "xori "; goto opimm;
      case ROp::Ori: os << "ori "; goto opimm;
      case ROp::Andi: os << "andi "; goto opimm;
      case ROp::Slli: os << "slli "; goto opimm;
      case ROp::Srli: os << "srli "; goto opimm;
      opimm:
        os << x(rd) << ", " << x(rs1) << ", " << imm;
        break;
      case ROp::Add: os << "add "; goto opreg;
      case ROp::Sub: os << "sub "; goto opreg;
      case ROp::Slt: os << "slt "; goto opreg;
      case ROp::Sltu: os << "sltu "; goto opreg;
      case ROp::Xor: os << "xor "; goto opreg;
      case ROp::Or: os << "or "; goto opreg;
      case ROp::And: os << "and "; goto opreg;
      case ROp::Mul: os << "mul "; goto opreg;
      case ROp::Divu: os << "divu "; goto opreg;
      opreg:
        os << x(rd) << ", " << x(rs1) << ", " << x(rs2);
        break;
      case ROp::Fence:
        os << "fence " << fenceSet(pred) << "," << fenceSet(succ);
        break;
      case ROp::Ecall: os << "ecall"; break;
      case ROp::Ebreak: os << "ebreak"; break;
      case ROp::LrD:
        os << "lr.d" << ordSuffix(*this) << " " << x(rd) << ", ("
           << x(rs1) << ")";
        break;
      case ROp::ScD:
        os << "sc.d" << ordSuffix(*this) << " " << x(rd) << ", "
           << x(rs2) << ", (" << x(rs1) << ")";
        break;
      case ROp::AmoAddD:
        os << "amoadd.d" << ordSuffix(*this) << " " << x(rd) << ", "
           << x(rs2) << ", (" << x(rs1) << ")";
        break;
      case ROp::AmoSwapD:
        os << "amoswap.d" << ordSuffix(*this) << " " << x(rd) << ", "
           << x(rs2) << ", (" << x(rs1) << ")";
        break;
      case ROp::Helper:
        os << "helper #" << int(helper) << ", " << imm;
        break;
      case ROp::ExitTb:
        os << "exit_tb #" << imm;
        break;
    }
    return os.str();
}

} // namespace risotto::rv64
