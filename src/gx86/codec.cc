#include "gx86/codec.hh"

#include "support/error.hh"

namespace risotto::gx86
{

namespace
{

/** Operand layout class of each opcode. */
enum class Layout
{
    None,       ///< opcode only
    RegImm64,   ///< rd, imm64
    RegReg,     ///< packed rd:rs
    Mem,        ///< packed rd:rb, off32 (rd doubles as rs for stores)
    MemImm,     ///< rb, off32, imm32
    RegImm32,   ///< rd, imm32
    Rel32,      ///< off32
    CondRel32,  ///< cond, off32
    Sym16,      ///< u16 symbol index
};

Layout
layoutOf(Opcode op)
{
    switch (op) {
      case Opcode::Nop:
      case Opcode::Hlt:
      case Opcode::Ret:
      case Opcode::MFence:
      case Opcode::Syscall:
        return Layout::None;
      case Opcode::MovRI:
        return Layout::RegImm64;
      case Opcode::MovRR:
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Mul:
      case Opcode::Udiv:
      case Opcode::CmpRR:
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv:
      case Opcode::FSqrt:
      case Opcode::CvtIF:
      case Opcode::CvtFI:
        return Layout::RegReg;
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::Load8:
      case Opcode::Store8:
      case Opcode::LockCmpxchg:
      case Opcode::LockXadd:
        return Layout::Mem;
      case Opcode::StoreI:
        return Layout::MemImm;
      case Opcode::AddI:
      case Opcode::SubI:
      case Opcode::AndI:
      case Opcode::OrI:
      case Opcode::XorI:
      case Opcode::MulI:
      case Opcode::ShlI:
      case Opcode::ShrI:
      case Opcode::CmpRI:
        return Layout::RegImm32;
      case Opcode::Jmp:
      case Opcode::Call:
        return Layout::Rel32;
      case Opcode::Jcc:
        return Layout::CondRel32;
      case Opcode::PltCall:
        return Layout::Sym16;
    }
    throw GuestFault("unknown opcode " +
                     std::to_string(static_cast<unsigned>(op)));
}

void
put32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void
put64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    put32(out, static_cast<std::uint32_t>(v));
    put32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t
get32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t
get64(const std::uint8_t *p)
{
    return static_cast<std::uint64_t>(get32(p)) |
           (static_cast<std::uint64_t>(get32(p + 4)) << 32);
}

} // namespace

std::size_t
encode(const Instruction &instr, std::vector<std::uint8_t> &out)
{
    const std::size_t start = out.size();
    out.push_back(static_cast<std::uint8_t>(instr.op));
    switch (layoutOf(instr.op)) {
      case Layout::None:
        break;
      case Layout::RegImm64:
        out.push_back(instr.rd);
        put64(out, static_cast<std::uint64_t>(instr.imm));
        break;
      case Layout::RegReg:
        out.push_back(static_cast<std::uint8_t>((instr.rd << 4) |
                                                (instr.rs & 0x0f)));
        break;
      case Layout::Mem: {
        // rd carries the data register for loads, rs for stores/RMWs;
        // pack whichever is meaningful in the high nibble.
        const Reg data = opWritesMemory(instr.op) && !opIsRmw(instr.op)
                             ? instr.rs
                             : (opIsRmw(instr.op) ? instr.rs : instr.rd);
        out.push_back(static_cast<std::uint8_t>((data << 4) |
                                                (instr.rb & 0x0f)));
        put32(out, static_cast<std::uint32_t>(instr.off));
        break;
      }
      case Layout::MemImm:
        out.push_back(instr.rb);
        put32(out, static_cast<std::uint32_t>(instr.off));
        put32(out, static_cast<std::uint32_t>(instr.imm));
        break;
      case Layout::RegImm32:
        out.push_back(instr.rd);
        put32(out, static_cast<std::uint32_t>(instr.imm));
        break;
      case Layout::Rel32:
        put32(out, static_cast<std::uint32_t>(instr.off));
        break;
      case Layout::CondRel32:
        out.push_back(static_cast<std::uint8_t>(instr.cond));
        put32(out, static_cast<std::uint32_t>(instr.off));
        break;
      case Layout::Sym16:
        out.push_back(static_cast<std::uint8_t>(instr.sym));
        out.push_back(static_cast<std::uint8_t>(instr.sym >> 8));
        break;
    }
    return out.size() - start;
}

Instruction
decode(const std::uint8_t *bytes, std::size_t size)
{
    if (size == 0)
        throw GuestFault("decode past end of code");
    Instruction instr;
    instr.op = static_cast<Opcode>(bytes[0]);
    const Layout layout = layoutOf(instr.op); // Throws on unknown opcode.

    auto need = [&](std::size_t n) {
        if (size < n)
            throw GuestFault("truncated instruction");
    };

    switch (layout) {
      case Layout::None:
        instr.length = 1;
        break;
      case Layout::RegImm64:
        need(10);
        instr.rd = bytes[1] & 0x0f;
        instr.imm = static_cast<std::int64_t>(get64(bytes + 2));
        instr.length = 10;
        break;
      case Layout::RegReg:
        need(2);
        instr.rd = bytes[1] >> 4;
        instr.rs = bytes[1] & 0x0f;
        instr.length = 2;
        break;
      case Layout::Mem:
        need(6);
        if (opWritesMemory(instr.op) || opIsRmw(instr.op))
            instr.rs = bytes[1] >> 4;
        if (opReadsMemory(instr.op) && !opIsRmw(instr.op))
            instr.rd = bytes[1] >> 4;
        instr.rb = bytes[1] & 0x0f;
        instr.off = static_cast<std::int32_t>(get32(bytes + 2));
        instr.length = 6;
        break;
      case Layout::MemImm:
        need(10);
        instr.rb = bytes[1] & 0x0f;
        instr.off = static_cast<std::int32_t>(get32(bytes + 2));
        instr.imm = static_cast<std::int32_t>(get32(bytes + 6));
        instr.length = 10;
        break;
      case Layout::RegImm32:
        need(6);
        instr.rd = bytes[1] & 0x0f;
        instr.imm = static_cast<std::int32_t>(get32(bytes + 2));
        instr.length = 6;
        break;
      case Layout::Rel32:
        need(5);
        instr.off = static_cast<std::int32_t>(get32(bytes + 1));
        instr.length = 5;
        break;
      case Layout::CondRel32:
        need(6);
        instr.cond = static_cast<Cond>(bytes[1]);
        instr.off = static_cast<std::int32_t>(get32(bytes + 2));
        instr.length = 6;
        break;
      case Layout::Sym16:
        need(3);
        instr.sym = static_cast<std::uint16_t>(bytes[1] |
                                               (bytes[2] << 8));
        instr.length = 3;
        break;
    }
    return instr;
}

Instruction
decode(const std::vector<std::uint8_t> &bytes, std::size_t offset)
{
    if (offset >= bytes.size())
        throw GuestFault("decode offset out of range");
    return decode(bytes.data() + offset, bytes.size() - offset);
}

} // namespace risotto::gx86
