/**
 * @file
 * Guest program images: an ELF-like container with text/data sections,
 * a symbol table, imported dynamic symbols and their PLT stubs.
 *
 * The dynamic-symbol table models the .dynsym/.plt machinery the Risotto
 * dynamic host linker scans (Section 6.2): every imported function has a
 * PLT stub address, and optionally a guest-side implementation that is
 * used (translated) when the host linker does not resolve the symbol.
 */

#ifndef RISOTTO_GX86_IMAGE_HH
#define RISOTTO_GX86_IMAGE_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "gx86/isa.hh"

namespace risotto::gx86
{

/** A defined (exported or local) symbol. */
struct Symbol
{
    std::string name;
    Addr addr = 0;
};

/** An imported function, reachable through its PLT stub. */
struct DynSymbol
{
    std::string name;
    /** Address of the PLT stub call sites jump to. */
    Addr pltAddr = 0;
    /** Guest-library implementation used when not host-linked (0 = none).*/
    Addr guestImpl = 0;
};

/** Default virtual layout of guest images. */
constexpr Addr DefaultTextBase = 0x0001'0000;
constexpr Addr DefaultDataBase = 0x0040'0000;
constexpr Addr DefaultStackTop = 0x0100'0000;

/** An ELF-like guest binary. */
struct GuestImage
{
    Addr textBase = DefaultTextBase;
    std::vector<std::uint8_t> text;

    Addr dataBase = DefaultDataBase;
    std::vector<std::uint8_t> data;

    /** Entry point (address in text). */
    Addr entry = DefaultTextBase;

    std::vector<Symbol> symbols;
    std::vector<DynSymbol> dynsym;

    /** End of the text section (exclusive). */
    Addr textEnd() const { return textBase + text.size(); }

    /** True when @p addr lies in the text section. */
    bool inText(Addr addr) const
    {
        return addr >= textBase && addr < textEnd();
    }

    /** Look up a defined symbol's address. */
    std::optional<Addr> symbolAddr(const std::string &name) const;

    /** Dynamic symbol index whose PLT stub is at @p addr, if any. */
    std::optional<std::size_t> dynsymAtPlt(Addr addr) const;

    /**
     * Decode the instruction at @p pc, bounding the decoder by the
     * remaining text (the one place the textEnd() - pc slack is
     * computed). Throws GuestFault for a pc outside the text section or
     * an instruction truncated by end-of-text.
     */
    Instruction decodeAt(Addr pc) const;

    /** Linear disassembly of the text section. */
    std::string disassemble() const;
};

} // namespace risotto::gx86

#endif // RISOTTO_GX86_IMAGE_HH
