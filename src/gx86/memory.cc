#include "gx86/memory.hh"

#include <algorithm>

#include "support/error.hh"
#include "support/format.hh"

namespace risotto::gx86
{

Memory::Memory(std::size_t size) : bytes_(size, 0) {}

void
Memory::loadImage(const GuestImage &image)
{
    check(image.textBase, image.text.size());
    std::copy(image.text.begin(), image.text.end(),
              bytes_.begin() + static_cast<std::ptrdiff_t>(image.textBase));
    check(image.dataBase, image.data.size());
    std::copy(image.data.begin(), image.data.end(),
              bytes_.begin() + static_cast<std::ptrdiff_t>(image.dataBase));
}

void
Memory::check(Addr addr, std::size_t len) const
{
    if (addr + len > bytes_.size() || addr + len < addr)
        throw GuestFault("memory access out of bounds at " +
                         hexString(addr));
}

std::uint8_t
Memory::load8(Addr addr) const
{
    check(addr, 1);
    return bytes_[addr];
}

std::uint64_t
Memory::load64(Addr addr) const
{
    check(addr, 8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | bytes_[addr + static_cast<Addr>(i)];
    return v;
}

void
Memory::store8(Addr addr, std::uint8_t value)
{
    check(addr, 1);
    bytes_[addr] = value;
}

void
Memory::store64(Addr addr, std::uint64_t value)
{
    check(addr, 8);
    for (int i = 0; i < 8; ++i)
        bytes_[addr + static_cast<Addr>(i)] =
            static_cast<std::uint8_t>(value >> (8 * i));
}

const std::uint8_t *
Memory::raw(Addr addr, std::size_t len) const
{
    check(addr, len);
    return bytes_.data() + addr;
}

std::uint8_t *
Memory::raw(Addr addr, std::size_t len)
{
    check(addr, len);
    return bytes_.data() + addr;
}

} // namespace risotto::gx86
