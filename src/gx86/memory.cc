#include "gx86/memory.hh"

#include <algorithm>
#include <cstring>

#include "support/error.hh"
#include "support/format.hh"

namespace risotto::gx86
{

namespace
{

/** The page covering @p addr. */
std::uint64_t
pageOf(Addr addr)
{
    return addr >> Memory::PageBits;
}

} // namespace

Memory::Memory(std::size_t size) : bytes_(size, 0), size_(size) {}

Memory
Memory::fork(std::shared_ptr<const Memory> base)
{
    panicIf(base == nullptr, "forking a null memory");
    Memory fork(0);
    fork.size_ = base->size();
    fork.base_ = std::move(base);
    return fork;
}

void
Memory::loadImage(const GuestImage &image)
{
    check(image.textBase, image.text.size());
    check(image.dataBase, image.data.size());
    for (std::size_t i = 0; i < image.text.size(); ++i)
        store8(image.textBase + i, image.text[i]);
    for (std::size_t i = 0; i < image.data.size(); ++i)
        store8(image.dataBase + i, image.data[i]);
}

void
Memory::check(Addr addr, std::size_t len) const
{
    if (addr + len > size_ || addr + len < addr)
        throw GuestFault("memory access out of bounds at " +
                         hexString(addr));
}

std::vector<std::uint8_t> &
Memory::privatize(Addr addr)
{
    const std::uint64_t page = pageOf(addr);
    auto it = pages_.find(page);
    if (it != pages_.end())
        return it->second;
    std::vector<std::uint8_t> copy(PageSize, 0);
    const Addr start = static_cast<Addr>(page << PageBits);
    const std::size_t len = std::min(PageSize, size_ - start);
    for (std::size_t i = 0; i < len; ++i)
        copy[i] = base_->load8(start + i);
    return pages_.emplace(page, std::move(copy)).first->second;
}

std::uint8_t
Memory::load8(Addr addr) const
{
    check(addr, 1);
    if (base_ == nullptr)
        return bytes_[addr];
    const auto it = pages_.find(pageOf(addr));
    if (it != pages_.end())
        return it->second[addr & (PageSize - 1)];
    return base_->load8(addr);
}

std::uint64_t
Memory::load64(Addr addr) const
{
    check(addr, 8);
    if (base_ == nullptr) {
        std::uint64_t v = 0;
        for (int i = 7; i >= 0; --i)
            v = (v << 8) | bytes_[addr + static_cast<Addr>(i)];
        return v;
    }
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | load8(addr + static_cast<Addr>(i));
    return v;
}

void
Memory::store8(Addr addr, std::uint8_t value)
{
    check(addr, 1);
    if (base_ == nullptr) {
        bytes_[addr] = value;
        return;
    }
    privatize(addr)[addr & (PageSize - 1)] = value;
}

void
Memory::store64(Addr addr, std::uint64_t value)
{
    check(addr, 8);
    if (base_ == nullptr) {
        for (int i = 0; i < 8; ++i)
            bytes_[addr + static_cast<Addr>(i)] =
                static_cast<std::uint8_t>(value >> (8 * i));
        return;
    }
    for (int i = 0; i < 8; ++i)
        store8(addr + static_cast<Addr>(i),
               static_cast<std::uint8_t>(value >> (8 * i)));
}

void
Memory::flatten() const
{
    if (base_ == nullptr)
        return;
    // Parent first (a fork of a fork), then overlay private pages. The
    // parent's flatten only mutates its own mutable storage; shared
    // parents in the serving layer are created flat, so this recursion
    // is a single-owner path in practice.
    base_->flatten();
    bytes_ = base_->bytes_;
    bytes_.resize(size_, 0);
    for (const auto &[page, data] : pages_) {
        const Addr start = static_cast<Addr>(page << PageBits);
        const std::size_t len = std::min(PageSize, size_ - start);
        std::memcpy(bytes_.data() + start, data.data(), len);
    }
    pages_.clear();
    base_.reset();
}

const std::uint8_t *
Memory::raw(Addr addr, std::size_t len) const
{
    check(addr, len);
    if (base_ != nullptr) {
        // Read-only view of an untouched range: serve it straight from
        // the parent (alive via base_, immutable by contract) instead of
        // materializing a flat copy of the whole fork. Host-library
        // reads of shared data hit this on every session.
        bool clean = true;
        if (!pages_.empty() && len > 0) {
            const std::uint64_t last = pageOf(addr + len - 1);
            for (std::uint64_t page = pageOf(addr);
                 clean && page <= last; ++page)
                clean = pages_.find(page) == pages_.end();
        }
        if (clean)
            return base_->raw(addr, len);
        flatten();
    }
    return bytes_.data() + addr;
}

std::uint8_t *
Memory::raw(Addr addr, std::size_t len)
{
    check(addr, len);
    flatten();
    return bytes_.data() + addr;
}

} // namespace risotto::gx86
