#include "gx86/imagefile.hh"

#include <fstream>
#include <limits>

#include "support/error.hh"

namespace risotto::gx86
{

namespace
{

constexpr std::uint32_t Magic = 0x4f534952; // "RISO" little-endian.
constexpr std::uint32_t Version = 2;        // v2 adds a payload checksum.
constexpr std::size_t ChecksumSize = 8;

/** FNV-1a 64-bit over @p n bytes (the v2 payload checksum). */
std::uint64_t
fnv1a(const std::uint8_t *bytes, std::size_t n)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= bytes[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

class Writer
{
  public:
    explicit Writer(std::vector<std::uint8_t> &out) : out_(out) {}

    void
    u16(std::uint16_t v)
    {
        out_.push_back(static_cast<std::uint8_t>(v));
        out_.push_back(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }

    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }

    void
    bytes(const std::vector<std::uint8_t> &data)
    {
        out_.insert(out_.end(), data.begin(), data.end());
    }

    void
    str(const std::string &s)
    {
        fatalIf(s.size() > 0xffff, "symbol name too long");
        u16(static_cast<std::uint16_t>(s.size()));
        out_.insert(out_.end(), s.begin(), s.end());
    }

  private:
    std::vector<std::uint8_t> &out_;
};

class Reader
{
  public:
    explicit Reader(const std::vector<std::uint8_t> &in)
        : in_(in), limit_(in.size())
    {
    }

    /** Stop parsing at @p limit (excludes a trailing checksum). */
    void
    setLimit(std::size_t limit)
    {
        fatalIf(limit > in_.size() || limit < pos_,
                "truncated RISO image");
        limit_ = limit;
    }

    std::uint16_t
    u16()
    {
        need(2);
        const std::uint16_t v = static_cast<std::uint16_t>(
            in_[pos_] | (in_[pos_ + 1] << 8));
        pos_ += 2;
        return v;
    }

    std::uint32_t
    u32()
    {
        const std::uint32_t lo = u16();
        const std::uint32_t hi = u16();
        return lo | (hi << 16);
    }

    std::uint64_t
    u64()
    {
        const std::uint64_t lo = u32();
        const std::uint64_t hi = u32();
        return lo | (hi << 32);
    }

    std::vector<std::uint8_t>
    bytes(std::size_t n)
    {
        need(n);
        std::vector<std::uint8_t> out(in_.begin() +
                                          static_cast<std::ptrdiff_t>(pos_),
                                      in_.begin() +
                                          static_cast<std::ptrdiff_t>(
                                              pos_ + n));
        pos_ += n;
        return out;
    }

    std::string
    str()
    {
        const std::size_t n = u16();
        const auto raw = bytes(n);
        return std::string(raw.begin(), raw.end());
    }

    bool done() const { return pos_ == limit_; }

  private:
    void
    need(std::size_t n)
    {
        // Overflow-safe: a hostile size field near 2^64 must not wrap
        // pos_ + n past the end and pass the bounds check.
        fatalIf(n > limit_ - pos_, "truncated RISO image");
    }

    const std::vector<std::uint8_t> &in_;
    std::size_t limit_;
    std::size_t pos_ = 0;
};

/** Structural validation of a freshly parsed image: section layout,
 * entry point, and symbol addresses must be internally consistent
 * before any of them is trusted by the translator. */
void
validateImage(const GuestImage &image)
{
    constexpr std::uint64_t AddrMax =
        std::numeric_limits<std::uint64_t>::max();
    fatalIf(image.text.size() > AddrMax - image.textBase,
            "RISO text section wraps the address space");
    fatalIf(image.data.size() > AddrMax - image.dataBase,
            "RISO data section wraps the address space");
    const Addr text_end = image.textBase + image.text.size();
    const Addr data_end = image.dataBase + image.data.size();
    fatalIf(!image.text.empty() && !image.data.empty() &&
                image.textBase < data_end && image.dataBase < text_end,
            "RISO text and data sections overlap");
    fatalIf(!image.text.empty() && !image.inText(image.entry),
            "RISO entry point outside text section");

    auto inSections = [&](Addr addr) {
        return (addr >= image.textBase && addr <= text_end) ||
               (addr >= image.dataBase && addr <= data_end);
    };
    for (const Symbol &s : image.symbols)
        fatalIf(!inSections(s.addr),
                "RISO symbol '" + s.name + "' outside every section");
    for (const DynSymbol &d : image.dynsym) {
        fatalIf(!image.inText(d.pltAddr),
                "RISO PLT stub for '" + d.name + "' outside text");
        fatalIf(d.guestImpl != 0 && !image.inText(d.guestImpl),
                "RISO guest impl for '" + d.name + "' outside text");
    }
}

} // namespace

std::vector<std::uint8_t>
serializeImage(const GuestImage &image)
{
    std::vector<std::uint8_t> out;
    Writer w(out);
    w.u32(Magic);
    w.u32(Version);
    w.u64(image.textBase);
    w.u64(image.entry);
    w.u64(image.dataBase);
    w.u64(image.text.size());
    w.u64(image.data.size());
    w.u64(image.symbols.size());
    w.u64(image.dynsym.size());
    w.bytes(image.text);
    w.bytes(image.data);
    for (const Symbol &s : image.symbols) {
        w.str(s.name);
        w.u64(s.addr);
    }
    for (const DynSymbol &d : image.dynsym) {
        w.str(d.name);
        w.u64(d.pltAddr);
        w.u64(d.guestImpl);
    }
    w.u64(fnv1a(out.data(), out.size()));
    return out;
}

GuestImage
deserializeImage(const std::vector<std::uint8_t> &bytes)
{
    Reader r(bytes);
    fatalIf(r.u32() != Magic, "not a RISO image (bad magic)");
    const std::uint32_t version = r.u32();
    fatalIf(version < 1 || version > Version,
            "unsupported RISO version " + std::to_string(version));
    if (version >= 2) {
        // Verify the payload checksum before trusting any field.
        fatalIf(bytes.size() < 8 + ChecksumSize,
                "truncated RISO image (no checksum)");
        const std::size_t payload = bytes.size() - ChecksumSize;
        std::uint64_t stored = 0;
        for (std::size_t i = 0; i < ChecksumSize; ++i)
            stored |= static_cast<std::uint64_t>(bytes[payload + i])
                      << (8 * i);
        fatalIf(fnv1a(bytes.data(), payload) != stored,
                "RISO image checksum mismatch");
        r.setLimit(payload);
    }
    GuestImage image;
    image.textBase = r.u64();
    image.entry = r.u64();
    image.dataBase = r.u64();
    const std::uint64_t text_size = r.u64();
    const std::uint64_t data_size = r.u64();
    const std::uint64_t sym_count = r.u64();
    const std::uint64_t dyn_count = r.u64();
    image.text = r.bytes(text_size);
    image.data = r.bytes(data_size);
    for (std::uint64_t i = 0; i < sym_count; ++i) {
        Symbol s;
        s.name = r.str();
        s.addr = r.u64();
        image.symbols.push_back(std::move(s));
    }
    for (std::uint64_t i = 0; i < dyn_count; ++i) {
        DynSymbol d;
        d.name = r.str();
        d.pltAddr = r.u64();
        d.guestImpl = r.u64();
        image.dynsym.push_back(std::move(d));
    }
    fatalIf(!r.done(), "trailing bytes in RISO image");
    validateImage(image);
    return image;
}

void
saveImage(const GuestImage &image, const std::string &path)
{
    const std::vector<std::uint8_t> bytes = serializeImage(image);
    std::ofstream out(path, std::ios::binary);
    fatalIf(!out, "cannot open " + path + " for writing");
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    fatalIf(!out, "write failed for " + path);
}

GuestImage
loadImage(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatalIf(!in, "cannot open " + path);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    return deserializeImage(bytes);
}

} // namespace risotto::gx86
