/**
 * @file
 * A programmatic gx86 assembler producing GuestImage binaries.
 *
 * Supports forward label references, symbol definition, data-section
 * allocation, and imported functions with automatically generated PLT
 * stubs (optionally backed by a guest-library implementation).
 */

#ifndef RISOTTO_GX86_ASSEMBLER_HH
#define RISOTTO_GX86_ASSEMBLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gx86/image.hh"
#include "gx86/isa.hh"

namespace risotto::gx86
{

/** Builder for gx86 guest binaries. */
class Assembler
{
  public:
    /** Opaque label handle. */
    using Label = std::size_t;

    explicit Assembler(Addr text_base = DefaultTextBase,
                       Addr data_base = DefaultDataBase);

    // --- Labels and symbols ---------------------------------------------

    /** Allocate a fresh, unbound label. */
    Label newLabel();

    /** Bind @p label to the current text position. */
    void bind(Label label);

    /** Define a symbol at the current text position. */
    void defineSymbol(const std::string &name);

    /** Current text address. */
    Addr here() const;

    // --- Imports / PLT ----------------------------------------------------

    /**
     * Declare an imported function: emits its PLT stub at the current
     * position and records it in .dynsym. Call sites use callImport().
     * A guest-library implementation can be attached later with
     * bindGuestImpl().
     */
    void importFunction(const std::string &name);

    /** Attach the current position as the guest implementation of the
     * imported function @p name (i.e. the translated-library fallback). */
    void bindGuestImplHere(const std::string &name);

    /** Call an imported function via its PLT stub. */
    void callImport(const std::string &name);

    // --- Instructions -----------------------------------------------------

    void nop();
    void hlt();
    void movri(Reg rd, std::int64_t imm);
    void movrr(Reg rd, Reg rs);
    void load(Reg rd, Reg rb, std::int32_t off);
    void store(Reg rb, std::int32_t off, Reg rs);
    void storei(Reg rb, std::int32_t off, std::int32_t imm);
    void load8(Reg rd, Reg rb, std::int32_t off);
    void store8(Reg rb, std::int32_t off, Reg rs);
    void add(Reg rd, Reg rs);
    void sub(Reg rd, Reg rs);
    void and_(Reg rd, Reg rs);
    void or_(Reg rd, Reg rs);
    void xor_(Reg rd, Reg rs);
    void mul(Reg rd, Reg rs);
    void udiv(Reg rd, Reg rs);
    void addi(Reg rd, std::int32_t imm);
    void subi(Reg rd, std::int32_t imm);
    void andi(Reg rd, std::int32_t imm);
    void ori(Reg rd, std::int32_t imm);
    void xori(Reg rd, std::int32_t imm);
    void muli(Reg rd, std::int32_t imm);
    void shli(Reg rd, std::uint8_t amount);
    void shri(Reg rd, std::uint8_t amount);
    void cmprr(Reg ra, Reg rb);
    void cmpri(Reg ra, std::int32_t imm);
    void jmp(Label target);
    void jcc(Cond cond, Label target);
    void call(Label target);
    void callSymbol(const std::string &name); ///< Direct call to a symbol.
    void ret();
    void lockCmpxchg(Reg rb, std::int32_t off, Reg rs);
    void lockXadd(Reg rb, std::int32_t off, Reg rs);
    void mfence();
    void fadd(Reg rd, Reg rs);
    void fsub(Reg rd, Reg rs);
    void fmul(Reg rd, Reg rs);
    void fdiv(Reg rd, Reg rs);
    void fsqrt(Reg rd, Reg rs);
    void cvtif(Reg rd, Reg rs);
    void cvtfi(Reg rd, Reg rs);
    void syscall();

    /** Load a double constant's bit pattern into a register. */
    void movfd(Reg rd, double value);

    // --- Data section -----------------------------------------------------

    /** Reserve @p bytes zeroed bytes (aligned to @p align); return addr. */
    Addr dataReserve(std::size_t bytes, std::size_t align = 8);

    /** Emit a 64-bit data word; returns its address. */
    Addr dataQuad(std::uint64_t value);

    /** Emit raw bytes; returns their address. */
    Addr dataBytes(const std::vector<std::uint8_t> &bytes);

    // --- Finalization -----------------------------------------------------

    /**
     * Resolve all fixups and produce the image.
     * @param entry_symbol the symbol to use as the entry point ("" for the
     *        start of text).
     */
    GuestImage finish(const std::string &entry_symbol = "");

  private:
    struct Fixup
    {
        std::size_t patchOffset; ///< Byte offset of the rel32 field.
        std::size_t nextOffset;  ///< Offset of the following instruction.
        Label label;
    };

    void emit(const Instruction &instr);
    void emitBranch(Opcode op, Cond cond, Label target);

    GuestImage image_;
    std::vector<std::int64_t> labels_; ///< Bound offsets or -1.
    std::vector<Fixup> fixups_;
};

} // namespace risotto::gx86

#endif // RISOTTO_GX86_ASSEMBLER_HH
