#include "gx86/isa.hh"

#include <sstream>

#include "support/error.hh"

namespace risotto::gx86
{

bool
opReadsMemory(Opcode op)
{
    switch (op) {
      case Opcode::Load:
      case Opcode::Load8:
      case Opcode::LockCmpxchg:
      case Opcode::LockXadd:
      case Opcode::Ret:
        return true;
      default:
        return false;
    }
}

bool
opWritesMemory(Opcode op)
{
    switch (op) {
      case Opcode::Store:
      case Opcode::StoreI:
      case Opcode::Store8:
      case Opcode::LockCmpxchg:
      case Opcode::LockXadd:
      case Opcode::Call:
        return true;
      default:
        return false;
    }
}

bool
opIsRmw(Opcode op)
{
    return op == Opcode::LockCmpxchg || op == Opcode::LockXadd;
}

bool
opEndsBlock(Opcode op)
{
    switch (op) {
      case Opcode::Jmp:
      case Opcode::Jcc:
      case Opcode::Call:
      case Opcode::Ret:
      case Opcode::PltCall:
      case Opcode::Hlt:
      case Opcode::Syscall:
        return true;
      default:
        return false;
    }
}

std::string
condName(Cond cond)
{
    switch (cond) {
      case Cond::Eq: return "eq";
      case Cond::Ne: return "ne";
      case Cond::Lt: return "lt";
      case Cond::Ge: return "ge";
      case Cond::Le: return "le";
      case Cond::Gt: return "gt";
    }
    panic("unknown condition");
}

bool
condHolds(Cond cond, bool zf, bool sf)
{
    switch (cond) {
      case Cond::Eq: return zf;
      case Cond::Ne: return !zf;
      case Cond::Lt: return sf;
      case Cond::Ge: return !sf;
      case Cond::Le: return zf || sf;
      case Cond::Gt: return !zf && !sf;
    }
    panic("unknown condition");
}

std::string
Instruction::toString() const
{
    std::ostringstream os;
    auto r = [](Reg x) { return "r" + std::to_string(x); };
    auto mem = [&]() {
        std::ostringstream m;
        m << "[" << r(rb);
        if (off >= 0)
            m << "+" << off;
        else
            m << off;
        m << "]";
        return m.str();
    };
    switch (op) {
      case Opcode::Nop: os << "nop"; break;
      case Opcode::Hlt: os << "hlt"; break;
      case Opcode::MovRI: os << "mov " << r(rd) << ", " << imm; break;
      case Opcode::MovRR: os << "mov " << r(rd) << ", " << r(rs); break;
      case Opcode::Load: os << "load " << r(rd) << ", " << mem(); break;
      case Opcode::Store: os << "store " << mem() << ", " << r(rs); break;
      case Opcode::StoreI: os << "store " << mem() << ", " << imm; break;
      case Opcode::Load8: os << "load8 " << r(rd) << ", " << mem(); break;
      case Opcode::Store8: os << "store8 " << mem() << ", " << r(rs); break;
      case Opcode::Add: os << "add " << r(rd) << ", " << r(rs); break;
      case Opcode::Sub: os << "sub " << r(rd) << ", " << r(rs); break;
      case Opcode::And: os << "and " << r(rd) << ", " << r(rs); break;
      case Opcode::Or: os << "or " << r(rd) << ", " << r(rs); break;
      case Opcode::Xor: os << "xor " << r(rd) << ", " << r(rs); break;
      case Opcode::Mul: os << "mul " << r(rd) << ", " << r(rs); break;
      case Opcode::Udiv: os << "udiv " << r(rd) << ", " << r(rs); break;
      case Opcode::AddI: os << "add " << r(rd) << ", " << imm; break;
      case Opcode::SubI: os << "sub " << r(rd) << ", " << imm; break;
      case Opcode::AndI: os << "and " << r(rd) << ", " << imm; break;
      case Opcode::OrI: os << "or " << r(rd) << ", " << imm; break;
      case Opcode::XorI: os << "xor " << r(rd) << ", " << imm; break;
      case Opcode::MulI: os << "mul " << r(rd) << ", " << imm; break;
      case Opcode::ShlI: os << "shl " << r(rd) << ", " << imm; break;
      case Opcode::ShrI: os << "shr " << r(rd) << ", " << imm; break;
      case Opcode::CmpRR: os << "cmp " << r(rd) << ", " << r(rs); break;
      case Opcode::CmpRI: os << "cmp " << r(rd) << ", " << imm; break;
      case Opcode::Jmp: os << "jmp " << off; break;
      case Opcode::Jcc:
        os << "j" << condName(cond) << " " << off;
        break;
      case Opcode::Call: os << "call " << off; break;
      case Opcode::Ret: os << "ret"; break;
      case Opcode::PltCall: os << "call plt#" << sym; break;
      case Opcode::LockCmpxchg:
        os << "lock cmpxchg " << mem() << ", " << r(rs);
        break;
      case Opcode::LockXadd:
        os << "lock xadd " << mem() << ", " << r(rs);
        break;
      case Opcode::MFence: os << "mfence"; break;
      case Opcode::FAdd: os << "fadd " << r(rd) << ", " << r(rs); break;
      case Opcode::FSub: os << "fsub " << r(rd) << ", " << r(rs); break;
      case Opcode::FMul: os << "fmul " << r(rd) << ", " << r(rs); break;
      case Opcode::FDiv: os << "fdiv " << r(rd) << ", " << r(rs); break;
      case Opcode::FSqrt: os << "fsqrt " << r(rd) << ", " << r(rs); break;
      case Opcode::CvtIF: os << "cvtif " << r(rd) << ", " << r(rs); break;
      case Opcode::CvtFI: os << "cvtfi " << r(rd) << ", " << r(rs); break;
      case Opcode::Syscall: os << "syscall"; break;
    }
    return os.str();
}

} // namespace risotto::gx86
