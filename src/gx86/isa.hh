/**
 * @file
 * The gx86 guest instruction set.
 *
 * A compact x86-like ISA with TSO memory semantics: most instructions can
 * be encoded/decoded to a variable-length byte stream, flags behave like
 * the x86 subset the DBT needs (ZF/SF/CF), LOCK-prefixed RMWs act as full
 * fences, and MFENCE orders everything. The memory-ordering-relevant
 * subset (loads, stores, RMWs, MFENCE) matches the paper's RMOV / WMOV /
 * RMW / MFENCE vocabulary exactly.
 */

#ifndef RISOTTO_GX86_ISA_HH
#define RISOTTO_GX86_ISA_HH

#include <cstdint>
#include <string>

namespace risotto::gx86
{

/** Guest general-purpose register index (R0..R15, R15 = stack pointer). */
using Reg = std::uint8_t;

constexpr Reg RegCount = 16;
constexpr Reg Rsp = 15;

/** Guest virtual address. */
using Addr = std::uint64_t;

/** Branch conditions (flag-based, as set by CMP/arith). */
enum class Cond : std::uint8_t
{
    Eq,  ///< ZF
    Ne,  ///< !ZF
    Lt,  ///< SF (signed less after CMP)
    Ge,  ///< !SF
    Le,  ///< ZF | SF
    Gt,  ///< !(ZF | SF)
};

/** Opcodes; each value is also the encoding's first byte. */
enum class Opcode : std::uint8_t
{
    Nop = 0x00,
    Hlt = 0x01,

    MovRI = 0x10,   ///< rd <- imm64
    MovRR = 0x11,   ///< rd <- rs
    Load = 0x12,    ///< rd <- [rb + off32]          (RMOV)
    Store = 0x13,   ///< [rb + off32] <- rs          (WMOV)
    StoreI = 0x14,  ///< [rb + off32] <- imm32       (WMOV)
    Load8 = 0x15,   ///< rd <- zx([rb + off32], 1 byte)
    Store8 = 0x16,  ///< [rb + off32] <- rs (low byte)

    Add = 0x20,
    Sub = 0x21,
    And = 0x22,
    Or = 0x23,
    Xor = 0x24,
    Mul = 0x25,
    Udiv = 0x26,
    AddI = 0x27,
    SubI = 0x28,
    AndI = 0x29,
    OrI = 0x2a,
    XorI = 0x2b,
    MulI = 0x2c,
    ShlI = 0x2d,
    ShrI = 0x2e,

    CmpRR = 0x30,
    CmpRI = 0x31,

    Jmp = 0x40,      ///< pc-relative rel32
    Jcc = 0x41,      ///< cond, rel32
    Call = 0x42,     ///< rel32 (pushes return address)
    Ret = 0x43,
    PltCall = 0x44,  ///< call through PLT entry: dynamic symbol index u16

    LockCmpxchg = 0x50, ///< [rb+off32] vs R0; on eq store rs; R0 <- old
    LockXadd = 0x51,    ///< rs <- old, [rb+off32] += rs; full fence
    MFence = 0x52,

    FAdd = 0x60, ///< double ops: registers hold IEEE-754 bit patterns
    FSub = 0x61,
    FMul = 0x62,
    FDiv = 0x63,
    FSqrt = 0x64,
    CvtIF = 0x65, ///< rd <- double(int64 rs)
    CvtFI = 0x66, ///< rd <- int64(double rs)

    Syscall = 0x70, ///< R0 = number (0 exit, 1 print, 2 cycles)
};

/** A decoded gx86 instruction. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    Reg rd = 0;
    Reg rs = 0;
    Reg rb = 0;
    Cond cond = Cond::Eq;
    std::int32_t off = 0;   ///< Memory offset or pc-relative displacement.
    std::int64_t imm = 0;   ///< Immediate operand.
    std::uint16_t sym = 0;  ///< Dynamic symbol index (PltCall).
    std::uint8_t length = 0; ///< Encoded length in bytes.

    /** Disassembly, e.g. "load r3, [r1+16]". */
    std::string toString() const;
};

/** True when the opcode reads guest memory. */
bool opReadsMemory(Opcode op);

/** True when the opcode writes guest memory. */
bool opWritesMemory(Opcode op);

/** True for LOCK-prefixed atomic read-modify-writes. */
bool opIsRmw(Opcode op);

/** True when the opcode ends a basic block (branch/call/ret/hlt). */
bool opEndsBlock(Opcode op);

/** Name of a condition, e.g. "eq". */
std::string condName(Cond cond);

/** Evaluate @p cond against ZF/SF flags. */
bool condHolds(Cond cond, bool zf, bool sf);

} // namespace risotto::gx86

#endif // RISOTTO_GX86_ISA_HH
