/**
 * @file
 * Per-image pre-decoded execution segment.
 *
 * A DecodedSegment is built once per guest image by a whole-text
 * pre-decode pass: for every byte offset of the text section it caches
 * the decode of the instruction starting there -- handler index,
 * pre-extracted operands, encoded length and block-end flag -- in a
 * dense array indexed by (pc - textBase). Execution surfaces (the
 * standalone interpreter, the DBT fallback interpreter, TB formation in
 * the frontend and the --validate BFS sweep) then dispatch on the cached
 * entries instead of re-running gx86::decode on bytes they have seen
 * thousands of times. The segment is immutable after build and is shared
 * read-only across threads and serving sessions.
 *
 * On top of the plain entries the builder runs a peephole *fusion* pass
 * over adjacent instruction pairs (cmp+jcc, mov-imm+arith, inc/dec
 * chains, store+load). A fused entry executes both instructions in one
 * dispatch; the entry at the second instruction's own offset stays
 * unfused, so a branch into the middle of a pair behaves exactly as
 * before. Fusion side conditions are explicit: a pair never includes a
 * LOCK-prefixed RMW or MFENCE, never starts at a block-ending
 * instruction (so it cannot cross a TB boundary), and dispatch loops
 * fall back to the unfused entry when an instruction-count cap would
 * split the pair. Each pattern's ordering obligations are checked once
 * against the PR-3 obligation-graph validator (src/verify/fusion.hh);
 * patterns that fail are disabled wholesale.
 */

#ifndef RISOTTO_GX86_DECODED_HH
#define RISOTTO_GX86_DECODED_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "gx86/image.hh"
#include "gx86/isa.hh"

namespace risotto::gx86
{

/**
 * Dispatch handler index of a decoded entry. The first block mirrors
 * Opcode one-to-one (dense, so threaded-dispatch tables stay small);
 * the tail adds the fused handlers and the invalid sentinel.
 */
enum class DispatchOp : std::uint8_t
{
    Nop,
    Hlt,
    MovRI,
    MovRR,
    Load,
    Store,
    StoreI,
    Load8,
    Store8,
    Add,
    Sub,
    And,
    Or,
    Xor,
    Mul,
    Udiv,
    AddI,
    SubI,
    AndI,
    OrI,
    XorI,
    MulI,
    ShlI,
    ShrI,
    CmpRR,
    CmpRI,
    Jmp,
    Jcc,
    Call,
    Ret,
    PltCall,
    LockCmpxchg,
    LockXadd,
    MFence,
    FAdd,
    FSub,
    FMul,
    FDiv,
    FSqrt,
    CvtIF,
    CvtFI,
    Syscall,

    // Fused pairs (see FusionKind).
    FusedCmpRRJcc,
    FusedCmpRIJcc,
    FusedMovRIAlu,
    FusedIncDec,
    FusedStoreLoad,

    /** Undecodable bytes; dispatch re-runs gx86::decode to surface the
     * exact GuestFault lazily, preserving legacy error behaviour. */
    Invalid,

    Count_,
};

constexpr std::size_t DispatchOpCount =
    static_cast<std::size_t>(DispatchOp::Count_);

/** Handler index of an unfused opcode. */
DispatchOp dispatchOpFor(Opcode op);

/** The peephole fusion patterns, in matcher priority order. */
enum class FusionKind : std::uint8_t
{
    CmpRRJcc,   ///< cmp rd, rs ; jcc rel   -> compare-and-branch
    CmpRIJcc,   ///< cmp rd, imm ; jcc rel  -> compare-and-branch
    MovRIAlu,   ///< mov rd, imm ; alu r, r -> constant feed + ALU
    IncDec,     ///< addi/subi rd ; addi/subi rd -> one combined add
    StoreLoad,  ///< store ; load           -> one dispatch, both accesses
    Count_,
};

constexpr std::size_t FusionKindCount =
    static_cast<std::size_t>(FusionKind::Count_);

/** Short name, e.g. "cmp+jcc". */
const char *fusionKindName(FusionKind kind);

/** Fused dispatch handler of a pattern. */
DispatchOp fusionDispatchOp(FusionKind kind);

/**
 * True when @p op may be a member of a fused pair at all. LOCK-prefixed
 * RMWs and MFENCE are never fusible (the explicit side condition:
 * fusion must not blur an ordering point), and neither are
 * control-transfer or helper-calling instructions except Jcc as the
 * second half of a compare-and-branch.
 */
bool opFusible(Opcode op);

/**
 * Match the fusion pattern of the adjacent pair (@p a, @p b), or
 * FusionKind::Count_ when the pair must stay unfused. Enforces the
 * side conditions that do not depend on the dispatch context: @p a
 * must not end a block (no pair crosses a TB boundary) and neither
 * member may be an ordering point (LOCK RMW / MFENCE).
 */
FusionKind matchFusion(const Instruction &a, const Instruction &b);

/** One canonical representative of a fusion pattern, used to check the
 * pattern's ordering obligations once (src/verify/fusion.hh) and by the
 * fusion-guard unit tests. */
struct FusionPatternInfo
{
    FusionKind kind = FusionKind::Count_;
    const char *name = "";
    Instruction first;
    Instruction second;
};

/** All patterns with canonical example pairs. */
const std::vector<FusionPatternInfo> &fusionPatterns();

/** Per-pattern enable set for segment construction. */
struct FusionConfig
{
    /** Master switch; false pre-decodes without fusing anything. */
    bool enabled = true;

    /** Per-pattern enables (all on by default; the DBT disables any
     * pattern the obligation-graph check rejects). */
    std::array<bool, FusionKindCount> pattern{true, true, true, true,
                                              true};
};

/** One pre-decoded (possibly fused) instruction at a text offset. */
struct DecodedEntry
{
    /** The instruction at this offset (always valid when count > 0). */
    Instruction first;

    /** Second member of a fused pair; meaningful only when count == 2. */
    Instruction second;

    /** Dispatch handler index (DispatchOp). */
    std::uint8_t handler =
        static_cast<std::uint8_t>(DispatchOp::Invalid);

    /** Guest instructions retired by one dispatch: 0 invalid, 1, or 2. */
    std::uint8_t count = 0;

    /** Bytes consumed by one dispatch (sum of lengths when fused). */
    std::uint8_t totalLength = 0;

    /** The dispatch ends a basic block (terminator, fused or not). */
    bool endsBlock = false;

    bool valid() const { return count != 0; }
    bool fused() const { return count == 2; }
};

/** The immutable per-image decoder cache. */
class DecodedSegment
{
  public:
    /** Pre-decode (and fuse) the text section of @p image. */
    static std::shared_ptr<const DecodedSegment>
    build(const GuestImage &image, const FusionConfig &fusion = {});

    /** Entry at @p pc, or nullptr when @p pc is outside the text
     * section. Entries exist at every byte offset, so any jump target
     * (including mid-instruction offsets) resolves. */
    const DecodedEntry *entry(Addr pc) const
    {
        if (pc < textBase_ || pc - textBase_ >= entries_.size())
            return nullptr;
        return &entries_[pc - textBase_];
    }

    Addr textBase() const { return textBase_; }
    std::size_t size() const { return entries_.size(); }

    /** Build-time counters. */
    std::uint64_t validEntries() const { return validEntries_; }
    std::uint64_t invalidEntries() const { return invalidEntries_; }
    std::uint64_t fusedEntries() const { return fusedEntries_; }
    std::uint64_t fusedOfKind(FusionKind kind) const
    {
        return fusedByKind_[static_cast<std::size_t>(kind)];
    }

    const FusionConfig &fusion() const { return fusion_; }

  private:
    DecodedSegment() = default;

    Addr textBase_ = 0;
    std::vector<DecodedEntry> entries_;
    FusionConfig fusion_;
    std::uint64_t validEntries_ = 0;
    std::uint64_t invalidEntries_ = 0;
    std::uint64_t fusedEntries_ = 0;
    std::array<std::uint64_t, FusionKindCount> fusedByKind_{};
};

} // namespace risotto::gx86

#endif // RISOTTO_GX86_DECODED_HH
