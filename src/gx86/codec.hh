/**
 * @file
 * Byte-level encoder/decoder for gx86 instructions.
 *
 * The encoding is variable-length (1 to 10 bytes): one opcode byte
 * followed by packed register/immediate operands, little-endian.
 */

#ifndef RISOTTO_GX86_CODEC_HH
#define RISOTTO_GX86_CODEC_HH

#include <cstdint>
#include <vector>

#include "gx86/isa.hh"

namespace risotto::gx86
{

/** Append the encoding of @p instr to @p out; returns encoded length. */
std::size_t encode(const Instruction &instr, std::vector<std::uint8_t> &out);

/**
 * Decode one instruction from @p bytes at @p offset.
 *
 * @throws GuestFault on truncated or unknown encodings.
 */
Instruction decode(const std::vector<std::uint8_t> &bytes,
                   std::size_t offset);

/** Decode one instruction from raw memory (no bounds beyond @p size). */
Instruction decode(const std::uint8_t *bytes, std::size_t size);

} // namespace risotto::gx86

#endif // RISOTTO_GX86_CODEC_HH
