/**
 * @file
 * On-disk format for guest images ("RISO" files).
 *
 * An ELF-inspired container so guest binaries can be produced once (by
 * the assembler or an external tool) and emulated later by the CLI
 * driver. Layout: fixed header, then the text and data sections, then
 * the symbol and dynamic-symbol tables. All integers little-endian.
 *
 *   offset  field
 *   0       magic "RISO"            (4 bytes)
 *   4       format version          (u32, currently 2)
 *   8       text base / entry / data base (3 x u64)
 *   32      text size / data size / #symbols / #dynsyms (4 x u64)
 *   64      text bytes, data bytes, symbol records, dynsym records
 *   end-8   FNV-1a 64 checksum of all preceding bytes (v2 only)
 *
 * Symbol record: u16 name length, name bytes, u64 address.
 * Dynsym record: u16 name length, name bytes, u64 plt, u64 guest impl.
 *
 * The loader is hardened against malformed input: magic/version checks,
 * overflow-safe bounds on every size field, section-overlap and
 * entry/symbol range validation, and (v2) a payload checksum verified
 * before any field is trusted. Version 1 images (no checksum) are still
 * accepted. Every rejection is a typed FatalError.
 */

#ifndef RISOTTO_GX86_IMAGEFILE_HH
#define RISOTTO_GX86_IMAGEFILE_HH

#include <string>
#include <vector>

#include "gx86/image.hh"

namespace risotto::gx86
{

/** Serialize @p image to the RISO byte format. */
std::vector<std::uint8_t> serializeImage(const GuestImage &image);

/**
 * Parse a RISO byte stream.
 * @throws FatalError on malformed input.
 */
GuestImage deserializeImage(const std::vector<std::uint8_t> &bytes);

/** Write @p image to @p path. @throws FatalError on I/O errors. */
void saveImage(const GuestImage &image, const std::string &path);

/** Read an image from @p path. @throws FatalError on I/O errors. */
GuestImage loadImage(const std::string &path);

} // namespace risotto::gx86

#endif // RISOTTO_GX86_IMAGEFILE_HH
