#include "gx86/image.hh"

#include <sstream>

#include "gx86/codec.hh"

namespace risotto::gx86
{

std::optional<Addr>
GuestImage::symbolAddr(const std::string &name) const
{
    for (const Symbol &s : symbols)
        if (s.name == name)
            return s.addr;
    return std::nullopt;
}

std::optional<std::size_t>
GuestImage::dynsymAtPlt(Addr addr) const
{
    for (std::size_t i = 0; i < dynsym.size(); ++i)
        if (dynsym[i].pltAddr == addr)
            return i;
    return std::nullopt;
}

std::string
GuestImage::disassemble() const
{
    std::ostringstream os;
    std::map<Addr, std::string> names;
    for (const Symbol &s : symbols)
        names[s.addr] = s.name;
    std::size_t offset = 0;
    while (offset < text.size()) {
        const Addr pc = textBase + offset;
        auto it = names.find(pc);
        if (it != names.end())
            os << it->second << ":\n";
        const Instruction instr = decode(text, offset);
        os << "  " << std::hex << pc << std::dec << ":  "
           << instr.toString() << "\n";
        offset += instr.length;
    }
    return os.str();
}

} // namespace risotto::gx86
