#include "gx86/image.hh"

#include <sstream>

#include "gx86/codec.hh"
#include "support/error.hh"
#include "support/format.hh"

namespace risotto::gx86
{

std::optional<Addr>
GuestImage::symbolAddr(const std::string &name) const
{
    for (const Symbol &s : symbols)
        if (s.name == name)
            return s.addr;
    return std::nullopt;
}

std::optional<std::size_t>
GuestImage::dynsymAtPlt(Addr addr) const
{
    for (std::size_t i = 0; i < dynsym.size(); ++i)
        if (dynsym[i].pltAddr == addr)
            return i;
    return std::nullopt;
}

Instruction
GuestImage::decodeAt(Addr pc) const
{
    if (!inText(pc))
        throw GuestFault("pc outside text: " + hexString(pc));
    const std::size_t off = pc - textBase;
    try {
        return decode(text.data() + off, text.size() - off);
    } catch (const GuestFault &fault) {
        throw GuestFault(std::string(fault.what()) + " at " +
                         hexString(pc) + " (text ends at " +
                         hexString(textEnd()) + ")");
    }
}

std::string
GuestImage::disassemble() const
{
    std::ostringstream os;
    std::map<Addr, std::string> names;
    for (const Symbol &s : symbols)
        names[s.addr] = s.name;
    std::size_t offset = 0;
    while (offset < text.size()) {
        const Addr pc = textBase + offset;
        auto it = names.find(pc);
        if (it != names.end())
            os << it->second << ":\n";
        const Instruction instr = decode(text, offset);
        os << "  " << std::hex << pc << std::dec << ":  "
           << instr.toString() << "\n";
        offset += instr.length;
    }
    return os.str();
}

} // namespace risotto::gx86
