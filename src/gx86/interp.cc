#include "gx86/interp.hh"

#include <cmath>
#include <cstring>

#include "gx86/codec.hh"
#include "support/error.hh"
#include "support/format.hh"

namespace risotto::gx86
{

namespace
{

double
asDouble(std::uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

std::uint64_t
asBits(double d)
{
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

} // namespace

Interpreter::Interpreter(const GuestImage &image) : image_(image)
{
    mem_.loadImage(image);
    pc_ = image.entry;
    regs_[Rsp] = DefaultStackTop;
}

InterpResult
Interpreter::run(std::uint64_t max_instructions)
{
    while (!halted_) {
        if (result_.instructions >= max_instructions)
            throw GuestFault("interpreter instruction budget exceeded");
        step();
    }
    return result_;
}

void
Interpreter::step()
{
    if (!image_.inText(pc_))
        throw GuestFault("pc outside text: " + hexString(pc_));
    const Instruction in =
        decode(mem_.raw(pc_, 1), image_.textEnd() - pc_);
    ++result_.instructions;
    Addr next = pc_ + in.length;

    auto setFlags = [&](std::uint64_t value) {
        zf_ = value == 0;
        sf_ = static_cast<std::int64_t>(value) < 0;
    };
    auto ea = [&]() {
        return regs_[in.rb] + static_cast<std::uint64_t>(
                                  static_cast<std::int64_t>(in.off));
    };

    switch (in.op) {
      case Opcode::Nop:
        break;
      case Opcode::Hlt:
        halted_ = true;
        break;
      case Opcode::MovRI:
        regs_[in.rd] = static_cast<std::uint64_t>(in.imm);
        break;
      case Opcode::MovRR:
        regs_[in.rd] = regs_[in.rs];
        break;
      case Opcode::Load:
        regs_[in.rd] = mem_.load64(ea());
        break;
      case Opcode::Store:
        mem_.store64(ea(), regs_[in.rs]);
        break;
      case Opcode::StoreI:
        mem_.store64(ea(), static_cast<std::uint64_t>(in.imm));
        break;
      case Opcode::Load8:
        regs_[in.rd] = mem_.load8(ea());
        break;
      case Opcode::Store8:
        mem_.store8(ea(), static_cast<std::uint8_t>(regs_[in.rs]));
        break;
      case Opcode::Add:
        regs_[in.rd] += regs_[in.rs];
        setFlags(regs_[in.rd]);
        break;
      case Opcode::Sub:
        regs_[in.rd] -= regs_[in.rs];
        setFlags(regs_[in.rd]);
        break;
      case Opcode::And:
        regs_[in.rd] &= regs_[in.rs];
        setFlags(regs_[in.rd]);
        break;
      case Opcode::Or:
        regs_[in.rd] |= regs_[in.rs];
        setFlags(regs_[in.rd]);
        break;
      case Opcode::Xor:
        regs_[in.rd] ^= regs_[in.rs];
        setFlags(regs_[in.rd]);
        break;
      case Opcode::Mul:
        regs_[in.rd] *= regs_[in.rs];
        setFlags(regs_[in.rd]);
        break;
      case Opcode::Udiv:
        if (regs_[in.rs] == 0)
            throw GuestFault("division by zero");
        regs_[in.rd] /= regs_[in.rs];
        setFlags(regs_[in.rd]);
        break;
      case Opcode::AddI:
        regs_[in.rd] += static_cast<std::uint64_t>(in.imm);
        setFlags(regs_[in.rd]);
        break;
      case Opcode::SubI:
        regs_[in.rd] -= static_cast<std::uint64_t>(in.imm);
        setFlags(regs_[in.rd]);
        break;
      case Opcode::AndI:
        regs_[in.rd] &= static_cast<std::uint64_t>(in.imm);
        setFlags(regs_[in.rd]);
        break;
      case Opcode::OrI:
        regs_[in.rd] |= static_cast<std::uint64_t>(in.imm);
        setFlags(regs_[in.rd]);
        break;
      case Opcode::XorI:
        regs_[in.rd] ^= static_cast<std::uint64_t>(in.imm);
        setFlags(regs_[in.rd]);
        break;
      case Opcode::MulI:
        regs_[in.rd] *= static_cast<std::uint64_t>(in.imm);
        setFlags(regs_[in.rd]);
        break;
      case Opcode::ShlI:
        regs_[in.rd] <<= (in.imm & 63);
        setFlags(regs_[in.rd]);
        break;
      case Opcode::ShrI:
        regs_[in.rd] >>= (in.imm & 63);
        setFlags(regs_[in.rd]);
        break;
      case Opcode::CmpRR: {
        const std::uint64_t diff = regs_[in.rd] - regs_[in.rs];
        setFlags(diff);
        break;
      }
      case Opcode::CmpRI: {
        const std::uint64_t diff =
            regs_[in.rd] - static_cast<std::uint64_t>(in.imm);
        setFlags(diff);
        break;
      }
      case Opcode::Jmp:
        next = next + static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(in.off));
        break;
      case Opcode::Jcc:
        if (condHolds(in.cond, zf_, sf_))
            next = next + static_cast<std::uint64_t>(
                              static_cast<std::int64_t>(in.off));
        break;
      case Opcode::Call:
        regs_[Rsp] -= 8;
        mem_.store64(regs_[Rsp], next);
        next = next + static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(in.off));
        break;
      case Opcode::Ret:
        next = mem_.load64(regs_[Rsp]);
        regs_[Rsp] += 8;
        break;
      case Opcode::PltCall: {
        if (in.sym >= image_.dynsym.size())
            throw GuestFault("bad dynamic symbol index");
        const DynSymbol &dyn = image_.dynsym[in.sym];
        if (dyn.guestImpl != 0) {
            next = dyn.guestImpl;
        } else if (hook_ && hook_(dyn.name, regs_, mem_)) {
            // Handled natively; fall through to the stub's Ret.
        } else {
            throw GuestFault("unresolved import: " + dyn.name);
        }
        break;
      }
      case Opcode::LockCmpxchg: {
        const Addr addr = ea();
        const std::uint64_t old = mem_.load64(addr);
        if (old == regs_[0]) {
            mem_.store64(addr, regs_[in.rs]);
            zf_ = true;
        } else {
            regs_[0] = old;
            zf_ = false;
        }
        break;
      }
      case Opcode::LockXadd: {
        const Addr addr = ea();
        const std::uint64_t old = mem_.load64(addr);
        mem_.store64(addr, old + regs_[in.rs]);
        regs_[in.rs] = old;
        break;
      }
      case Opcode::MFence:
        break; // Sequential execution: nothing to order.
      case Opcode::FAdd:
        regs_[in.rd] =
            asBits(asDouble(regs_[in.rd]) + asDouble(regs_[in.rs]));
        break;
      case Opcode::FSub:
        regs_[in.rd] =
            asBits(asDouble(regs_[in.rd]) - asDouble(regs_[in.rs]));
        break;
      case Opcode::FMul:
        regs_[in.rd] =
            asBits(asDouble(regs_[in.rd]) * asDouble(regs_[in.rs]));
        break;
      case Opcode::FDiv:
        regs_[in.rd] =
            asBits(asDouble(regs_[in.rd]) / asDouble(regs_[in.rs]));
        break;
      case Opcode::FSqrt:
        regs_[in.rd] = asBits(std::sqrt(asDouble(regs_[in.rs])));
        break;
      case Opcode::CvtIF:
        regs_[in.rd] = asBits(
            static_cast<double>(static_cast<std::int64_t>(regs_[in.rs])));
        break;
      case Opcode::CvtFI:
        regs_[in.rd] = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(asDouble(regs_[in.rs])));
        break;
      case Opcode::Syscall:
        switch (regs_[0]) {
          case 0: // exit(code = R1)
            result_.exitCode = static_cast<std::int64_t>(regs_[1]);
            halted_ = true;
            break;
          case 1: // putchar(R1)
            result_.output.push_back(static_cast<char>(regs_[1]));
            break;
          case 2: // retired instruction count into R0
            regs_[0] = result_.instructions;
            break;
          default:
            throw GuestFault("unknown syscall " +
                             std::to_string(regs_[0]));
        }
        break;
    }
    pc_ = next;
}

} // namespace risotto::gx86
