#include "gx86/interp.hh"

#include <cmath>
#include <cstring>

#include "support/error.hh"
#include "support/format.hh"

namespace risotto::gx86
{

namespace
{

double
asDouble(std::uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

std::uint64_t
asBits(double d)
{
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

std::uint64_t
sext32(std::int32_t off)
{
    return static_cast<std::uint64_t>(static_cast<std::int64_t>(off));
}

} // namespace

Interpreter::Interpreter(const GuestImage &image, InterpOptions options)
    : image_(image)
{
    if (options.decodeCache)
        segment_ = DecodedSegment::build(image, options.fusion);
    mem_.loadImage(image);
    pc_ = image.entry;
    regs_[Rsp] = DefaultStackTop;
}

Interpreter::Interpreter(const GuestImage &image,
                         std::shared_ptr<const DecodedSegment> segment)
    : image_(image), segment_(std::move(segment))
{
    mem_.loadImage(image);
    pc_ = image.entry;
    regs_[Rsp] = DefaultStackTop;
}

// Threaded dispatch: with GNU labels-as-values every handler jumps
// straight to the next handler's code through a per-DispatchOp label
// table (no central switch, no bounds re-check per instruction); other
// compilers fall back to an equivalent tight switch over the same
// handler bodies. The RISOTTO_CASE/RISOTTO_NEXT macros keep the bodies
// identical across both modes.
#if defined(__GNUC__) || defined(__clang__)
#define RISOTTO_INTERP_COMPUTED_GOTO 1
#else
#define RISOTTO_INTERP_COMPUTED_GOTO 0
#endif

InterpResult
Interpreter::run(std::uint64_t max_instructions)
{
    const DecodedSegment *seg = segment_.get();

    // Scratch entry for legacy mode (decode per dispatch) and for a
    // fused pair downgraded to its unfused first member because the
    // second would overshoot the instruction budget.
    DecodedEntry local;
    const DecodedEntry *e = nullptr;
    Addr next = 0;

    auto setFlags = [&](std::uint64_t value) {
        zf_ = value == 0;
        sf_ = static_cast<std::int64_t>(value) < 0;
    };
    auto ea = [&](const Instruction &in) {
        return regs_[in.rb] + sext32(in.off);
    };
    auto downgrade = [&](const Instruction &in) {
        local.first = in;
        local.handler = static_cast<std::uint8_t>(dispatchOpFor(in.op));
        local.count = 1;
        local.totalLength = in.length;
        local.endsBlock = opEndsBlock(in.op);
        return &local;
    };
    auto fetch = [&]() -> const DecodedEntry * {
        if (seg) {
            const DecodedEntry *entry = seg->entry(pc_);
            if (!entry)
                throw GuestFault("pc outside text: " + hexString(pc_));
            if (entry->fused() &&
                result_.instructions + 2 > max_instructions)
                return downgrade(entry->first);
            return entry;
        }
        return downgrade(image_.decodeAt(pc_));
    };

#if RISOTTO_INTERP_COMPUTED_GOTO
    static const void *const table[DispatchOpCount] = {
        &&L_Nop,          &&L_Hlt,          &&L_MovRI,
        &&L_MovRR,        &&L_Load,         &&L_Store,
        &&L_StoreI,       &&L_Load8,        &&L_Store8,
        &&L_Add,          &&L_Sub,          &&L_And,
        &&L_Or,           &&L_Xor,          &&L_Mul,
        &&L_Udiv,         &&L_AddI,         &&L_SubI,
        &&L_AndI,         &&L_OrI,          &&L_XorI,
        &&L_MulI,         &&L_ShlI,         &&L_ShrI,
        &&L_CmpRR,        &&L_CmpRI,        &&L_Jmp,
        &&L_Jcc,          &&L_Call,         &&L_Ret,
        &&L_PltCall,      &&L_LockCmpxchg,  &&L_LockXadd,
        &&L_MFence,       &&L_FAdd,         &&L_FSub,
        &&L_FMul,         &&L_FDiv,         &&L_FSqrt,
        &&L_CvtIF,        &&L_CvtFI,        &&L_Syscall,
        &&L_FusedCmpRRJcc, &&L_FusedCmpRIJcc, &&L_FusedMovRIAlu,
        &&L_FusedIncDec,  &&L_FusedStoreLoad, &&L_Invalid,
    };
#define RISOTTO_CASE(name) L_##name:
#define RISOTTO_NEXT()                                                  \
    do {                                                                \
        pc_ = next;                                                     \
        goto fetch_next;                                                \
    } while (0)

fetch_next:
    if (halted_)
        return result_;
    if (result_.instructions >= max_instructions)
        throw GuestFault("interpreter instruction budget exceeded");
    e = fetch();
    next = pc_ + e->totalLength;
    goto *table[e->handler];
#else
#define RISOTTO_CASE(name) case DispatchOp::name:
#define RISOTTO_NEXT()                                                  \
    do {                                                                \
        pc_ = next;                                                     \
        continue;                                                       \
    } while (0)

    for (;;) {
        if (halted_)
            return result_;
        if (result_.instructions >= max_instructions)
            throw GuestFault("interpreter instruction budget exceeded");
        e = fetch();
        next = pc_ + e->totalLength;
        switch (static_cast<DispatchOp>(e->handler)) {
#endif

    RISOTTO_CASE(Nop)
    {
        ++result_.instructions;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Hlt)
    {
        ++result_.instructions;
        halted_ = true;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(MovRI)
    {
        ++result_.instructions;
        regs_[e->first.rd] = static_cast<std::uint64_t>(e->first.imm);
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(MovRR)
    {
        ++result_.instructions;
        regs_[e->first.rd] = regs_[e->first.rs];
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Load)
    {
        ++result_.instructions;
        regs_[e->first.rd] = mem_.load64(ea(e->first));
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Store)
    {
        ++result_.instructions;
        mem_.store64(ea(e->first), regs_[e->first.rs]);
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(StoreI)
    {
        ++result_.instructions;
        mem_.store64(ea(e->first),
                     static_cast<std::uint64_t>(e->first.imm));
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Load8)
    {
        ++result_.instructions;
        regs_[e->first.rd] = mem_.load8(ea(e->first));
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Store8)
    {
        ++result_.instructions;
        mem_.store8(ea(e->first),
                    static_cast<std::uint8_t>(regs_[e->first.rs]));
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Add)
    {
        ++result_.instructions;
        regs_[e->first.rd] += regs_[e->first.rs];
        setFlags(regs_[e->first.rd]);
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Sub)
    {
        ++result_.instructions;
        regs_[e->first.rd] -= regs_[e->first.rs];
        setFlags(regs_[e->first.rd]);
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(And)
    {
        ++result_.instructions;
        regs_[e->first.rd] &= regs_[e->first.rs];
        setFlags(regs_[e->first.rd]);
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Or)
    {
        ++result_.instructions;
        regs_[e->first.rd] |= regs_[e->first.rs];
        setFlags(regs_[e->first.rd]);
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Xor)
    {
        ++result_.instructions;
        regs_[e->first.rd] ^= regs_[e->first.rs];
        setFlags(regs_[e->first.rd]);
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Mul)
    {
        ++result_.instructions;
        regs_[e->first.rd] *= regs_[e->first.rs];
        setFlags(regs_[e->first.rd]);
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Udiv)
    {
        ++result_.instructions;
        if (regs_[e->first.rs] == 0)
            throw GuestFault("division by zero");
        regs_[e->first.rd] /= regs_[e->first.rs];
        setFlags(regs_[e->first.rd]);
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(AddI)
    {
        ++result_.instructions;
        regs_[e->first.rd] += static_cast<std::uint64_t>(e->first.imm);
        setFlags(regs_[e->first.rd]);
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(SubI)
    {
        ++result_.instructions;
        regs_[e->first.rd] -= static_cast<std::uint64_t>(e->first.imm);
        setFlags(regs_[e->first.rd]);
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(AndI)
    {
        ++result_.instructions;
        regs_[e->first.rd] &= static_cast<std::uint64_t>(e->first.imm);
        setFlags(regs_[e->first.rd]);
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(OrI)
    {
        ++result_.instructions;
        regs_[e->first.rd] |= static_cast<std::uint64_t>(e->first.imm);
        setFlags(regs_[e->first.rd]);
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(XorI)
    {
        ++result_.instructions;
        regs_[e->first.rd] ^= static_cast<std::uint64_t>(e->first.imm);
        setFlags(regs_[e->first.rd]);
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(MulI)
    {
        ++result_.instructions;
        regs_[e->first.rd] *= static_cast<std::uint64_t>(e->first.imm);
        setFlags(regs_[e->first.rd]);
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(ShlI)
    {
        ++result_.instructions;
        regs_[e->first.rd] <<= (e->first.imm & 63);
        setFlags(regs_[e->first.rd]);
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(ShrI)
    {
        ++result_.instructions;
        regs_[e->first.rd] >>= (e->first.imm & 63);
        setFlags(regs_[e->first.rd]);
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(CmpRR)
    {
        ++result_.instructions;
        setFlags(regs_[e->first.rd] - regs_[e->first.rs]);
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(CmpRI)
    {
        ++result_.instructions;
        setFlags(regs_[e->first.rd] -
                 static_cast<std::uint64_t>(e->first.imm));
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Jmp)
    {
        ++result_.instructions;
        next += sext32(e->first.off);
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Jcc)
    {
        ++result_.instructions;
        if (condHolds(e->first.cond, zf_, sf_))
            next += sext32(e->first.off);
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Call)
    {
        ++result_.instructions;
        regs_[Rsp] -= 8;
        mem_.store64(regs_[Rsp], next);
        next += sext32(e->first.off);
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Ret)
    {
        ++result_.instructions;
        next = mem_.load64(regs_[Rsp]);
        regs_[Rsp] += 8;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(PltCall)
    {
        ++result_.instructions;
        if (e->first.sym >= image_.dynsym.size())
            throw GuestFault("bad dynamic symbol index");
        const DynSymbol &dyn = image_.dynsym[e->first.sym];
        if (dyn.guestImpl != 0) {
            next = dyn.guestImpl;
        } else if (hook_ && hook_(dyn.name, regs_, mem_)) {
            // Handled natively; fall through to the stub's Ret.
        } else {
            throw GuestFault("unresolved import: " + dyn.name);
        }
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(LockCmpxchg)
    {
        ++result_.instructions;
        const Addr addr = ea(e->first);
        const std::uint64_t old = mem_.load64(addr);
        if (old == regs_[0]) {
            mem_.store64(addr, regs_[e->first.rs]);
            zf_ = true;
        } else {
            regs_[0] = old;
            zf_ = false;
        }
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(LockXadd)
    {
        ++result_.instructions;
        const Addr addr = ea(e->first);
        const std::uint64_t old = mem_.load64(addr);
        mem_.store64(addr, old + regs_[e->first.rs]);
        regs_[e->first.rs] = old;
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(MFence)
    {
        ++result_.instructions; // Sequential execution: nothing to order.
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(FAdd)
    {
        ++result_.instructions;
        regs_[e->first.rd] = asBits(asDouble(regs_[e->first.rd]) +
                                    asDouble(regs_[e->first.rs]));
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(FSub)
    {
        ++result_.instructions;
        regs_[e->first.rd] = asBits(asDouble(regs_[e->first.rd]) -
                                    asDouble(regs_[e->first.rs]));
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(FMul)
    {
        ++result_.instructions;
        regs_[e->first.rd] = asBits(asDouble(regs_[e->first.rd]) *
                                    asDouble(regs_[e->first.rs]));
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(FDiv)
    {
        ++result_.instructions;
        regs_[e->first.rd] = asBits(asDouble(regs_[e->first.rd]) /
                                    asDouble(regs_[e->first.rs]));
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(FSqrt)
    {
        ++result_.instructions;
        regs_[e->first.rd] =
            asBits(std::sqrt(asDouble(regs_[e->first.rs])));
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(CvtIF)
    {
        ++result_.instructions;
        regs_[e->first.rd] = asBits(static_cast<double>(
            static_cast<std::int64_t>(regs_[e->first.rs])));
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(CvtFI)
    {
        ++result_.instructions;
        regs_[e->first.rd] = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(asDouble(regs_[e->first.rs])));
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Syscall)
    {
        ++result_.instructions;
        switch (regs_[0]) {
          case 0: // exit(code = R1)
            result_.exitCode = static_cast<std::int64_t>(regs_[1]);
            halted_ = true;
            break;
          case 1: // putchar(R1)
            result_.output.push_back(static_cast<char>(regs_[1]));
            break;
          case 2: // retired instruction count into R0
            regs_[0] = result_.instructions;
            break;
          default:
            throw GuestFault("unknown syscall " +
                             std::to_string(regs_[0]));
        }
    }
        RISOTTO_NEXT();

    // --- Fused pairs: both members in one dispatch, retiring two
    // instructions, with effects and final flags identical to the
    // unfused sequence (each half's counter bump precedes its effects,
    // so a faulting second half leaves the same state behind).
    RISOTTO_CASE(FusedCmpRRJcc)
    {
        ++result_.instructions;
        setFlags(regs_[e->first.rd] - regs_[e->first.rs]);
        ++result_.instructions;
        if (condHolds(e->second.cond, zf_, sf_))
            next += sext32(e->second.off);
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(FusedCmpRIJcc)
    {
        ++result_.instructions;
        setFlags(regs_[e->first.rd] -
                 static_cast<std::uint64_t>(e->first.imm));
        ++result_.instructions;
        if (condHolds(e->second.cond, zf_, sf_))
            next += sext32(e->second.off);
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(FusedMovRIAlu)
    {
        ++result_.instructions;
        regs_[e->first.rd] = static_cast<std::uint64_t>(e->first.imm);
        ++result_.instructions;
        const Instruction &alu = e->second;
        switch (alu.op) {
          case Opcode::Add: regs_[alu.rd] += regs_[alu.rs]; break;
          case Opcode::Sub: regs_[alu.rd] -= regs_[alu.rs]; break;
          case Opcode::And: regs_[alu.rd] &= regs_[alu.rs]; break;
          case Opcode::Or: regs_[alu.rd] |= regs_[alu.rs]; break;
          case Opcode::Xor: regs_[alu.rd] ^= regs_[alu.rs]; break;
          default: regs_[alu.rd] *= regs_[alu.rs]; break; // Mul
        }
        setFlags(regs_[alu.rd]);
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(FusedIncDec)
    {
        ++result_.instructions;
        regs_[e->first.rd] +=
            e->first.op == Opcode::AddI
                ? static_cast<std::uint64_t>(e->first.imm)
                : 0 - static_cast<std::uint64_t>(e->first.imm);
        ++result_.instructions;
        regs_[e->second.rd] +=
            e->second.op == Opcode::AddI
                ? static_cast<std::uint64_t>(e->second.imm)
                : 0 - static_cast<std::uint64_t>(e->second.imm);
        setFlags(regs_[e->second.rd]);
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(FusedStoreLoad)
    {
        ++result_.instructions;
        mem_.store64(ea(e->first),
                     e->first.op == Opcode::Store
                         ? regs_[e->first.rs]
                         : static_cast<std::uint64_t>(e->first.imm));
        ++result_.instructions;
        regs_[e->second.rd] = mem_.load64(ea(e->second));
    }
        RISOTTO_NEXT();
    RISOTTO_CASE(Invalid)
    {
        // Re-run the decoder at this pc to surface the exact fault the
        // legacy path would have thrown.
        image_.decodeAt(pc_);
        throw GuestFault("undecodable instruction at " + hexString(pc_));
    }
        RISOTTO_NEXT();

#if !RISOTTO_INTERP_COMPUTED_GOTO
          case DispatchOp::Count_:
            throw GuestFault("corrupt dispatch entry");
        }
    }
#endif

#undef RISOTTO_CASE
#undef RISOTTO_NEXT
}

} // namespace risotto::gx86
