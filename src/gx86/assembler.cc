#include "gx86/assembler.hh"

#include <cstring>

#include "gx86/codec.hh"
#include "support/error.hh"

namespace risotto::gx86
{

Assembler::Assembler(Addr text_base, Addr data_base)
{
    image_.textBase = text_base;
    image_.dataBase = data_base;
    image_.entry = text_base;
}

Assembler::Label
Assembler::newLabel()
{
    labels_.push_back(-1);
    return labels_.size() - 1;
}

void
Assembler::bind(Label label)
{
    panicIf(label >= labels_.size(), "unknown label");
    panicIf(labels_[label] >= 0, "label bound twice");
    labels_[label] = static_cast<std::int64_t>(image_.text.size());
}

void
Assembler::defineSymbol(const std::string &name)
{
    image_.symbols.push_back({name, here()});
}

Addr
Assembler::here() const
{
    return image_.textBase + image_.text.size();
}

void
Assembler::importFunction(const std::string &name)
{
    for (const DynSymbol &d : image_.dynsym)
        fatalIf(d.name == name, "function imported twice: " + name);
    DynSymbol dyn;
    dyn.name = name;
    dyn.pltAddr = here();
    const std::uint16_t index =
        static_cast<std::uint16_t>(image_.dynsym.size());
    image_.dynsym.push_back(dyn);
    image_.symbols.push_back({name + "@plt", here()});
    // The stub: a PltCall that the runtime resolves (host-linked native
    // call or jump to the guest implementation), then return to caller.
    Instruction stub;
    stub.op = Opcode::PltCall;
    stub.sym = index;
    emit(stub);
    Instruction ret;
    ret.op = Opcode::Ret;
    emit(ret);
}

void
Assembler::bindGuestImplHere(const std::string &name)
{
    for (DynSymbol &d : image_.dynsym) {
        if (d.name == name) {
            d.guestImpl = here();
            image_.symbols.push_back({name + "@guest", here()});
            return;
        }
    }
    fatal("bindGuestImplHere: unknown import " + name);
}

void
Assembler::callImport(const std::string &name)
{
    for (const DynSymbol &d : image_.dynsym) {
        if (d.name == name) {
            Instruction call;
            call.op = Opcode::Call;
            // Relative to the end of the call instruction (length 5).
            const Addr next = here() + 5;
            call.off = static_cast<std::int32_t>(
                static_cast<std::int64_t>(d.pltAddr) -
                static_cast<std::int64_t>(next));
            emit(call);
            return;
        }
    }
    fatal("callImport: unknown import " + name);
}

void
Assembler::callSymbol(const std::string &name)
{
    const auto addr = image_.symbolAddr(name);
    fatalIf(!addr, "callSymbol: unknown symbol " + name);
    Instruction call;
    call.op = Opcode::Call;
    const Addr next = here() + 5;
    call.off = static_cast<std::int32_t>(static_cast<std::int64_t>(*addr) -
                                         static_cast<std::int64_t>(next));
    emit(call);
}

void
Assembler::emit(const Instruction &instr)
{
    encode(instr, image_.text);
}

void
Assembler::emitBranch(Opcode op, Cond cond, Label target)
{
    panicIf(target >= labels_.size(), "unknown label");
    Instruction instr;
    instr.op = op;
    instr.cond = cond;
    instr.off = 0;
    const std::size_t start = image_.text.size();
    emit(instr);
    const std::size_t end = image_.text.size();
    // rel32 is the final 4 bytes of the encoding for Jmp/Jcc/Call.
    fixups_.push_back({end - 4, end, target});
    (void)start;
}

void
Assembler::nop()
{
    Instruction i;
    i.op = Opcode::Nop;
    emit(i);
}

void
Assembler::hlt()
{
    Instruction i;
    i.op = Opcode::Hlt;
    emit(i);
}

void
Assembler::movri(Reg rd, std::int64_t imm)
{
    Instruction i;
    i.op = Opcode::MovRI;
    i.rd = rd;
    i.imm = imm;
    emit(i);
}

void
Assembler::movrr(Reg rd, Reg rs)
{
    Instruction i;
    i.op = Opcode::MovRR;
    i.rd = rd;
    i.rs = rs;
    emit(i);
}

void
Assembler::load(Reg rd, Reg rb, std::int32_t off)
{
    Instruction i;
    i.op = Opcode::Load;
    i.rd = rd;
    i.rb = rb;
    i.off = off;
    emit(i);
}

void
Assembler::store(Reg rb, std::int32_t off, Reg rs)
{
    Instruction i;
    i.op = Opcode::Store;
    i.rs = rs;
    i.rb = rb;
    i.off = off;
    emit(i);
}

void
Assembler::storei(Reg rb, std::int32_t off, std::int32_t imm)
{
    Instruction i;
    i.op = Opcode::StoreI;
    i.rb = rb;
    i.off = off;
    i.imm = imm;
    emit(i);
}

void
Assembler::load8(Reg rd, Reg rb, std::int32_t off)
{
    Instruction i;
    i.op = Opcode::Load8;
    i.rd = rd;
    i.rb = rb;
    i.off = off;
    emit(i);
}

void
Assembler::store8(Reg rb, std::int32_t off, Reg rs)
{
    Instruction i;
    i.op = Opcode::Store8;
    i.rs = rs;
    i.rb = rb;
    i.off = off;
    emit(i);
}

namespace
{

Instruction
rr(Opcode op, Reg rd, Reg rs)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs = rs;
    return i;
}

Instruction
ri(Opcode op, Reg rd, std::int64_t imm)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.imm = imm;
    return i;
}

} // namespace

void Assembler::add(Reg rd, Reg rs) { emit(rr(Opcode::Add, rd, rs)); }
void Assembler::sub(Reg rd, Reg rs) { emit(rr(Opcode::Sub, rd, rs)); }
void Assembler::and_(Reg rd, Reg rs) { emit(rr(Opcode::And, rd, rs)); }
void Assembler::or_(Reg rd, Reg rs) { emit(rr(Opcode::Or, rd, rs)); }
void Assembler::xor_(Reg rd, Reg rs) { emit(rr(Opcode::Xor, rd, rs)); }
void Assembler::mul(Reg rd, Reg rs) { emit(rr(Opcode::Mul, rd, rs)); }
void Assembler::udiv(Reg rd, Reg rs) { emit(rr(Opcode::Udiv, rd, rs)); }

void Assembler::addi(Reg rd, std::int32_t v) { emit(ri(Opcode::AddI, rd, v)); }
void Assembler::subi(Reg rd, std::int32_t v) { emit(ri(Opcode::SubI, rd, v)); }
void Assembler::andi(Reg rd, std::int32_t v) { emit(ri(Opcode::AndI, rd, v)); }
void Assembler::ori(Reg rd, std::int32_t v) { emit(ri(Opcode::OrI, rd, v)); }
void Assembler::xori(Reg rd, std::int32_t v) { emit(ri(Opcode::XorI, rd, v)); }
void Assembler::muli(Reg rd, std::int32_t v) { emit(ri(Opcode::MulI, rd, v)); }

void
Assembler::shli(Reg rd, std::uint8_t amount)
{
    emit(ri(Opcode::ShlI, rd, amount));
}

void
Assembler::shri(Reg rd, std::uint8_t amount)
{
    emit(ri(Opcode::ShrI, rd, amount));
}

void
Assembler::cmprr(Reg ra, Reg rb)
{
    emit(rr(Opcode::CmpRR, ra, rb));
}

void
Assembler::cmpri(Reg ra, std::int32_t imm)
{
    emit(ri(Opcode::CmpRI, ra, imm));
}

void
Assembler::jmp(Label target)
{
    emitBranch(Opcode::Jmp, Cond::Eq, target);
}

void
Assembler::jcc(Cond cond, Label target)
{
    emitBranch(Opcode::Jcc, cond, target);
}

void
Assembler::call(Label target)
{
    emitBranch(Opcode::Call, Cond::Eq, target);
}

void
Assembler::ret()
{
    Instruction i;
    i.op = Opcode::Ret;
    emit(i);
}

void
Assembler::lockCmpxchg(Reg rb, std::int32_t off, Reg rs)
{
    Instruction i;
    i.op = Opcode::LockCmpxchg;
    i.rs = rs;
    i.rb = rb;
    i.off = off;
    emit(i);
}

void
Assembler::lockXadd(Reg rb, std::int32_t off, Reg rs)
{
    Instruction i;
    i.op = Opcode::LockXadd;
    i.rs = rs;
    i.rb = rb;
    i.off = off;
    emit(i);
}

void
Assembler::mfence()
{
    Instruction i;
    i.op = Opcode::MFence;
    emit(i);
}

void Assembler::fadd(Reg rd, Reg rs) { emit(rr(Opcode::FAdd, rd, rs)); }
void Assembler::fsub(Reg rd, Reg rs) { emit(rr(Opcode::FSub, rd, rs)); }
void Assembler::fmul(Reg rd, Reg rs) { emit(rr(Opcode::FMul, rd, rs)); }
void Assembler::fdiv(Reg rd, Reg rs) { emit(rr(Opcode::FDiv, rd, rs)); }
void Assembler::fsqrt(Reg rd, Reg rs) { emit(rr(Opcode::FSqrt, rd, rs)); }
void Assembler::cvtif(Reg rd, Reg rs) { emit(rr(Opcode::CvtIF, rd, rs)); }
void Assembler::cvtfi(Reg rd, Reg rs) { emit(rr(Opcode::CvtFI, rd, rs)); }

void
Assembler::syscall()
{
    Instruction i;
    i.op = Opcode::Syscall;
    emit(i);
}

void
Assembler::movfd(Reg rd, double value)
{
    std::int64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    movri(rd, bits);
}

Addr
Assembler::dataReserve(std::size_t bytes, std::size_t align)
{
    while (image_.data.size() % align != 0)
        image_.data.push_back(0);
    const Addr addr = image_.dataBase + image_.data.size();
    image_.data.resize(image_.data.size() + bytes, 0);
    return addr;
}

Addr
Assembler::dataQuad(std::uint64_t value)
{
    const Addr addr = dataReserve(8, 8);
    for (int i = 0; i < 8; ++i)
        image_.data[addr - image_.dataBase + i] =
            static_cast<std::uint8_t>(value >> (8 * i));
    return addr;
}

Addr
Assembler::dataBytes(const std::vector<std::uint8_t> &bytes)
{
    const Addr addr = dataReserve(bytes.size(), 1);
    std::copy(bytes.begin(), bytes.end(),
              image_.data.begin() +
                  static_cast<std::ptrdiff_t>(addr - image_.dataBase));
    return addr;
}

GuestImage
Assembler::finish(const std::string &entry_symbol)
{
    for (const Fixup &f : fixups_) {
        const std::int64_t bound = labels_[f.label];
        fatalIf(bound < 0, "unbound label at finish()");
        const std::int64_t rel =
            bound - static_cast<std::int64_t>(f.nextOffset);
        const auto rel32 = static_cast<std::uint32_t>(rel);
        image_.text[f.patchOffset + 0] = static_cast<std::uint8_t>(rel32);
        image_.text[f.patchOffset + 1] =
            static_cast<std::uint8_t>(rel32 >> 8);
        image_.text[f.patchOffset + 2] =
            static_cast<std::uint8_t>(rel32 >> 16);
        image_.text[f.patchOffset + 3] =
            static_cast<std::uint8_t>(rel32 >> 24);
    }
    fixups_.clear();
    if (!entry_symbol.empty()) {
        const auto addr = image_.symbolAddr(entry_symbol);
        fatalIf(!addr, "unknown entry symbol " + entry_symbol);
        image_.entry = *addr;
    }
    return image_;
}

} // namespace risotto::gx86
