/**
 * @file
 * Reference gx86 interpreter.
 *
 * A sequential interpreter over a GuestImage, used as the semantic
 * oracle in differential tests against the DBT: a translated
 * single-threaded program must compute exactly what this interpreter
 * computes.
 *
 * By default the interpreter runs as a threaded-dispatch loop over the
 * image's pre-decoded DecodedSegment (computed goto under GCC/Clang, a
 * tight switch otherwise), with peephole-fused pairs executed in one
 * dispatch. Both the decoder cache and fusion can be disabled
 * (InterpOptions); the legacy decode-and-switch path is kept as the
 * differential baseline and decodes the image text through
 * GuestImage::decodeAt. Guest-visible semantics are identical across
 * all modes, including the retired-instruction counter (fused pairs
 * retire two) and the instruction-budget fault point (a pair that would
 * overshoot the budget re-executes unfused).
 */

#ifndef RISOTTO_GX86_INTERP_HH
#define RISOTTO_GX86_INTERP_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "gx86/decoded.hh"
#include "gx86/image.hh"
#include "gx86/memory.hh"

namespace risotto::gx86
{

/** Result of an interpreter run. */
struct InterpResult
{
    /** Exit code passed to the exit syscall (R1), or 0 on HLT. */
    std::int64_t exitCode = 0;

    /** Instructions retired. */
    std::uint64_t instructions = 0;

    /** Characters printed via the print syscall. */
    std::string output;
};

/** Execution-strategy knobs of the interpreter (semantics-neutral). */
struct InterpOptions
{
    /** Dispatch from the pre-decoded segment; false re-decodes every
     * instruction (the legacy differential baseline). */
    bool decodeCache = true;

    /** Fusion configuration of the built segment (ignored when
     * decodeCache is off). */
    FusionConfig fusion;
};

/** Sequential reference interpreter. */
class Interpreter
{
  public:
    /**
     * Hook invoked for PLT calls without a guest implementation. Receives
     * the import name, the register file and memory; returns true when it
     * handled the call.
     */
    using NativeHook = std::function<bool(
        const std::string &, std::array<std::uint64_t, RegCount> &,
        Memory &)>;

    explicit Interpreter(const GuestImage &image,
                         InterpOptions options = {});

    /** Share a pre-built segment (e.g. the DBT engine's or a serving
     * artifact's) instead of pre-decoding again. */
    Interpreter(const GuestImage &image,
                std::shared_ptr<const DecodedSegment> segment);

    /** The decoder cache in use, or nullptr in legacy mode. */
    const DecodedSegment *segment() const { return segment_.get(); }

    /** Set the native fallback hook for unresolved imports. */
    void setNativeHook(NativeHook hook) { hook_ = std::move(hook); }

    /** Register file access (for seeding arguments / reading results). */
    std::uint64_t reg(Reg r) const { return regs_[r]; }
    void setReg(Reg r, std::uint64_t v) { regs_[r] = v; }

    Memory &memory() { return mem_; }
    const Memory &memory() const { return mem_; }

    /**
     * Run until HLT, exit syscall, or @p max_instructions.
     * @throws GuestFault on illegal execution.
     */
    InterpResult run(std::uint64_t max_instructions = 100'000'000);

  private:
    const GuestImage &image_;
    std::shared_ptr<const DecodedSegment> segment_;
    Memory mem_;
    std::array<std::uint64_t, RegCount> regs_{};
    Addr pc_ = 0;
    bool zf_ = false;
    bool sf_ = false;
    bool halted_ = false;
    InterpResult result_;
    NativeHook hook_;
};

} // namespace risotto::gx86

#endif // RISOTTO_GX86_INTERP_HH
