/**
 * @file
 * Reference gx86 interpreter.
 *
 * A straightforward sequential interpreter over a GuestImage, used as the
 * semantic oracle in differential tests against the DBT: a translated
 * single-threaded program must compute exactly what this interpreter
 * computes.
 */

#ifndef RISOTTO_GX86_INTERP_HH
#define RISOTTO_GX86_INTERP_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "gx86/image.hh"
#include "gx86/memory.hh"

namespace risotto::gx86
{

/** Result of an interpreter run. */
struct InterpResult
{
    /** Exit code passed to the exit syscall (R1), or 0 on HLT. */
    std::int64_t exitCode = 0;

    /** Instructions retired. */
    std::uint64_t instructions = 0;

    /** Characters printed via the print syscall. */
    std::string output;
};

/** Sequential reference interpreter. */
class Interpreter
{
  public:
    /**
     * Hook invoked for PLT calls without a guest implementation. Receives
     * the import name, the register file and memory; returns true when it
     * handled the call.
     */
    using NativeHook = std::function<bool(
        const std::string &, std::array<std::uint64_t, RegCount> &,
        Memory &)>;

    explicit Interpreter(const GuestImage &image);

    /** Set the native fallback hook for unresolved imports. */
    void setNativeHook(NativeHook hook) { hook_ = std::move(hook); }

    /** Register file access (for seeding arguments / reading results). */
    std::uint64_t reg(Reg r) const { return regs_[r]; }
    void setReg(Reg r, std::uint64_t v) { regs_[r] = v; }

    Memory &memory() { return mem_; }
    const Memory &memory() const { return mem_; }

    /**
     * Run until HLT, exit syscall, or @p max_instructions.
     * @throws GuestFault on illegal execution.
     */
    InterpResult run(std::uint64_t max_instructions = 100'000'000);

  private:
    void step();

    const GuestImage &image_;
    Memory mem_;
    std::array<std::uint64_t, RegCount> regs_{};
    Addr pc_ = 0;
    bool zf_ = false;
    bool sf_ = false;
    bool halted_ = false;
    InterpResult result_;
    NativeHook hook_;
};

} // namespace risotto::gx86

#endif // RISOTTO_GX86_INTERP_HH
