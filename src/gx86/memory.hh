/**
 * @file
 * Flat guest/host physical memory, with copy-on-write forking.
 *
 * In user-mode DBT (as in QEMU user mode) guest addresses map directly to
 * host addresses, so one flat memory serves the guest interpreter, the DBT
 * and the host machine simulator.
 *
 * Serving many concurrent guest sessions from one prepared image needs
 * cheap per-session state: fork() produces a memory that shares the
 * parent's bytes read-only and privatizes 4 KiB pages on first write, so
 * a thousand sessions cost pages-actually-dirtied, not a thousand flat
 * copies -- and "roll the session back" is simply "drop the fork and
 * take a new one". A non-forked memory keeps the original single-vector
 * fast path; bulk raw() access on a fork materializes the flat copy
 * once (host-library calls that hand out stable pointers).
 */

#ifndef RISOTTO_GX86_MEMORY_HH
#define RISOTTO_GX86_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "gx86/image.hh"

namespace risotto::gx86
{

/** Byte-addressable little-endian flat memory with bounds checking. */
class Memory
{
  public:
    /** Default size covers the standard image layout plus stacks. */
    static constexpr std::size_t DefaultSize = 32 * 1024 * 1024;

    /** Copy-on-write page granularity. */
    static constexpr std::size_t PageBits = 12;
    static constexpr std::size_t PageSize = std::size_t{1} << PageBits;

    explicit Memory(std::size_t size = DefaultSize);

    /**
     * Copy-on-write fork of @p base: reads come from the shared parent
     * until a page is written, writes privatize one page at a time. The
     * parent must stay immutable (and alive, via the shared_ptr) for
     * the fork's lifetime; concurrent forks of one parent are safe.
     */
    static Memory fork(std::shared_ptr<const Memory> base);

    /** True when this memory is a live COW fork (unflattened). */
    bool forked() const { return base_ != nullptr; }

    /** Pages privatized so far (0 for non-forked memories). */
    std::size_t dirtyPages() const { return pages_.size(); }

    /** Copy an image's text and data sections into place. */
    void loadImage(const GuestImage &image);

    std::size_t size() const { return size_; }

    std::uint8_t load8(Addr addr) const;
    std::uint64_t load64(Addr addr) const;
    void store8(Addr addr, std::uint8_t value);
    void store64(Addr addr, std::uint64_t value);

    /** Raw pointer for @p len bytes at @p addr (bounds-checked). On a
     * fork the const overload reads through the parent when the range
     * touches no privatized page (zero-copy); otherwise -- and always
     * for the mutable overload -- the fork flattens first so callers
     * get a stable flat view. */
    const std::uint8_t *raw(Addr addr, std::size_t len) const;
    std::uint8_t *raw(Addr addr, std::size_t len);

  private:
    void check(Addr addr, std::size_t len) const;

    /** Merge the shared base and private pages into a flat vector and
     * detach from the parent (raw() needs contiguous bytes). */
    void flatten() const;

    /** The private page covering @p addr, copying it from the parent on
     * first touch. */
    std::vector<std::uint8_t> &privatize(Addr addr);

    /** Flat bytes (authoritative when base_ is null). */
    mutable std::vector<std::uint8_t> bytes_;
    std::size_t size_ = 0;

    /** COW parent; null for flat memories. */
    mutable std::shared_ptr<const Memory> base_;

    /** Privatized pages, keyed by page index (addr >> PageBits). */
    mutable std::unordered_map<std::uint64_t, std::vector<std::uint8_t>>
        pages_;
};

} // namespace risotto::gx86

#endif // RISOTTO_GX86_MEMORY_HH
