/**
 * @file
 * Flat guest/host physical memory.
 *
 * In user-mode DBT (as in QEMU user mode) guest addresses map directly to
 * host addresses, so one flat memory serves the guest interpreter, the DBT
 * and the host machine simulator.
 */

#ifndef RISOTTO_GX86_MEMORY_HH
#define RISOTTO_GX86_MEMORY_HH

#include <cstdint>
#include <vector>

#include "gx86/image.hh"

namespace risotto::gx86
{

/** Byte-addressable little-endian flat memory with bounds checking. */
class Memory
{
  public:
    /** Default size covers the standard image layout plus stacks. */
    static constexpr std::size_t DefaultSize = 32 * 1024 * 1024;

    explicit Memory(std::size_t size = DefaultSize);

    /** Copy an image's text and data sections into place. */
    void loadImage(const GuestImage &image);

    std::size_t size() const { return bytes_.size(); }

    std::uint8_t load8(Addr addr) const;
    std::uint64_t load64(Addr addr) const;
    void store8(Addr addr, std::uint8_t value);
    void store64(Addr addr, std::uint64_t value);

    /** Raw pointer for @p len bytes at @p addr (bounds-checked). */
    const std::uint8_t *raw(Addr addr, std::size_t len) const;
    std::uint8_t *raw(Addr addr, std::size_t len);

  private:
    void check(Addr addr, std::size_t len) const;

    std::vector<std::uint8_t> bytes_;
};

} // namespace risotto::gx86

#endif // RISOTTO_GX86_MEMORY_HH
