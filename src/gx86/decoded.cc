#include "gx86/decoded.hh"

#include "gx86/codec.hh"
#include "support/error.hh"

namespace risotto::gx86
{

DispatchOp
dispatchOpFor(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return DispatchOp::Nop;
      case Opcode::Hlt: return DispatchOp::Hlt;
      case Opcode::MovRI: return DispatchOp::MovRI;
      case Opcode::MovRR: return DispatchOp::MovRR;
      case Opcode::Load: return DispatchOp::Load;
      case Opcode::Store: return DispatchOp::Store;
      case Opcode::StoreI: return DispatchOp::StoreI;
      case Opcode::Load8: return DispatchOp::Load8;
      case Opcode::Store8: return DispatchOp::Store8;
      case Opcode::Add: return DispatchOp::Add;
      case Opcode::Sub: return DispatchOp::Sub;
      case Opcode::And: return DispatchOp::And;
      case Opcode::Or: return DispatchOp::Or;
      case Opcode::Xor: return DispatchOp::Xor;
      case Opcode::Mul: return DispatchOp::Mul;
      case Opcode::Udiv: return DispatchOp::Udiv;
      case Opcode::AddI: return DispatchOp::AddI;
      case Opcode::SubI: return DispatchOp::SubI;
      case Opcode::AndI: return DispatchOp::AndI;
      case Opcode::OrI: return DispatchOp::OrI;
      case Opcode::XorI: return DispatchOp::XorI;
      case Opcode::MulI: return DispatchOp::MulI;
      case Opcode::ShlI: return DispatchOp::ShlI;
      case Opcode::ShrI: return DispatchOp::ShrI;
      case Opcode::CmpRR: return DispatchOp::CmpRR;
      case Opcode::CmpRI: return DispatchOp::CmpRI;
      case Opcode::Jmp: return DispatchOp::Jmp;
      case Opcode::Jcc: return DispatchOp::Jcc;
      case Opcode::Call: return DispatchOp::Call;
      case Opcode::Ret: return DispatchOp::Ret;
      case Opcode::PltCall: return DispatchOp::PltCall;
      case Opcode::LockCmpxchg: return DispatchOp::LockCmpxchg;
      case Opcode::LockXadd: return DispatchOp::LockXadd;
      case Opcode::MFence: return DispatchOp::MFence;
      case Opcode::FAdd: return DispatchOp::FAdd;
      case Opcode::FSub: return DispatchOp::FSub;
      case Opcode::FMul: return DispatchOp::FMul;
      case Opcode::FDiv: return DispatchOp::FDiv;
      case Opcode::FSqrt: return DispatchOp::FSqrt;
      case Opcode::CvtIF: return DispatchOp::CvtIF;
      case Opcode::CvtFI: return DispatchOp::CvtFI;
      case Opcode::Syscall: return DispatchOp::Syscall;
    }
    return DispatchOp::Invalid;
}

const char *
fusionKindName(FusionKind kind)
{
    switch (kind) {
      case FusionKind::CmpRRJcc: return "cmp.rr+jcc";
      case FusionKind::CmpRIJcc: return "cmp.ri+jcc";
      case FusionKind::MovRIAlu: return "movri+alu";
      case FusionKind::IncDec: return "incdec-chain";
      case FusionKind::StoreLoad: return "store+load";
      case FusionKind::Count_: break;
    }
    return "none";
}

DispatchOp
fusionDispatchOp(FusionKind kind)
{
    switch (kind) {
      case FusionKind::CmpRRJcc: return DispatchOp::FusedCmpRRJcc;
      case FusionKind::CmpRIJcc: return DispatchOp::FusedCmpRIJcc;
      case FusionKind::MovRIAlu: return DispatchOp::FusedMovRIAlu;
      case FusionKind::IncDec: return DispatchOp::FusedIncDec;
      case FusionKind::StoreLoad: return DispatchOp::FusedStoreLoad;
      case FusionKind::Count_: break;
    }
    return DispatchOp::Invalid;
}

bool
opFusible(Opcode op)
{
    // Explicit ordering-point guard: LOCK-prefixed RMWs and MFENCE are
    // never fused, so a fused dispatch can never blur a fence.
    if (opIsRmw(op) || op == Opcode::MFence)
        return false;
    switch (op) {
      case Opcode::MovRI:
      case Opcode::MovRR:
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::StoreI:
      case Opcode::Load8:
      case Opcode::Store8:
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Mul:
      case Opcode::AddI:
      case Opcode::SubI:
      case Opcode::AndI:
      case Opcode::OrI:
      case Opcode::XorI:
      case Opcode::MulI:
      case Opcode::ShlI:
      case Opcode::ShrI:
      case Opcode::CmpRR:
      case Opcode::CmpRI:
      case Opcode::Jcc:
        return true;
      default:
        return false;
    }
}

FusionKind
matchFusion(const Instruction &a, const Instruction &b)
{
    // TB-boundary guard: a pair never starts at a block terminator, so
    // fused execution cannot run past a translation-block seam. (Jcc as
    // the *second* member is the pair's own terminator -- the pair ends
    // the block exactly where the unfused sequence would.)
    if (opEndsBlock(a.op) || !opFusible(a.op) || !opFusible(b.op))
        return FusionKind::Count_;

    if (b.op == Opcode::Jcc) {
        if (a.op == Opcode::CmpRR)
            return FusionKind::CmpRRJcc;
        if (a.op == Opcode::CmpRI)
            return FusionKind::CmpRIJcc;
        return FusionKind::Count_;
    }
    if (a.op == Opcode::MovRI) {
        switch (b.op) {
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::And:
          case Opcode::Or:
          case Opcode::Xor:
          case Opcode::Mul:
            return FusionKind::MovRIAlu;
          default:
            return FusionKind::Count_;
        }
    }
    if ((a.op == Opcode::AddI || a.op == Opcode::SubI) &&
        (b.op == Opcode::AddI || b.op == Opcode::SubI) && a.rd == b.rd)
        return FusionKind::IncDec;
    if ((a.op == Opcode::Store || a.op == Opcode::StoreI) &&
        b.op == Opcode::Load)
        return FusionKind::StoreLoad;
    return FusionKind::Count_;
}

const std::vector<FusionPatternInfo> &
fusionPatterns()
{
    static const std::vector<FusionPatternInfo> patterns = [] {
        std::vector<FusionPatternInfo> p;
        auto push = [&](FusionKind kind, Instruction a, Instruction b) {
            FusionPatternInfo info;
            info.kind = kind;
            info.name = fusionKindName(kind);
            info.first = a;
            info.second = b;
            p.push_back(info);
        };
        Instruction cmprr;
        cmprr.op = Opcode::CmpRR;
        cmprr.rd = 1;
        cmprr.rs = 2;
        Instruction cmpri;
        cmpri.op = Opcode::CmpRI;
        cmpri.rd = 1;
        cmpri.imm = 7;
        Instruction jcc;
        jcc.op = Opcode::Jcc;
        jcc.cond = Cond::Ne;
        jcc.off = -16;
        Instruction movri;
        movri.op = Opcode::MovRI;
        movri.rd = 3;
        movri.imm = 42;
        Instruction add;
        add.op = Opcode::Add;
        add.rd = 4;
        add.rs = 3;
        Instruction addi;
        addi.op = Opcode::AddI;
        addi.rd = 5;
        addi.imm = 1;
        Instruction subi;
        subi.op = Opcode::SubI;
        subi.rd = 5;
        subi.imm = 2;
        Instruction store;
        store.op = Opcode::Store;
        store.rs = 6;
        store.rb = 1;
        store.off = 8;
        Instruction load;
        load.op = Opcode::Load;
        load.rd = 7;
        load.rb = 2;
        load.off = 16;
        push(FusionKind::CmpRRJcc, cmprr, jcc);
        push(FusionKind::CmpRIJcc, cmpri, jcc);
        push(FusionKind::MovRIAlu, movri, add);
        push(FusionKind::IncDec, addi, subi);
        push(FusionKind::StoreLoad, store, load);
        return p;
    }();
    return patterns;
}

std::shared_ptr<const DecodedSegment>
DecodedSegment::build(const GuestImage &image, const FusionConfig &fusion)
{
    auto seg = std::shared_ptr<DecodedSegment>(new DecodedSegment());
    seg->textBase_ = image.textBase;
    seg->fusion_ = fusion;
    seg->entries_.resize(image.text.size());

    // Pass 1: decode at every byte offset. Any offset is a legal jump
    // target in this ISA, so each gets its own independent decode; the
    // ones that fail stay Invalid and surface the exact decoder fault
    // lazily if execution ever reaches them.
    for (std::size_t off = 0; off < image.text.size(); ++off) {
        DecodedEntry &e = seg->entries_[off];
        try {
            e.first = decode(image.text.data() + off,
                             image.text.size() - off);
        } catch (const GuestFault &) {
            ++seg->invalidEntries_;
            continue;
        }
        e.handler = static_cast<std::uint8_t>(dispatchOpFor(e.first.op));
        e.count = 1;
        e.totalLength = e.first.length;
        e.endsBlock = opEndsBlock(e.first.op);
        ++seg->validEntries_;
    }

    // Pass 2: peephole fusion over adjacent pairs. Only the *first*
    // instruction's entry is rewritten; the second keeps its unfused
    // entry so branches into the middle of a pair stay exact.
    if (fusion.enabled) {
        for (std::size_t off = 0; off < seg->entries_.size(); ++off) {
            DecodedEntry &e = seg->entries_[off];
            if (!e.valid())
                continue;
            const std::size_t nextOff = off + e.first.length;
            if (nextOff >= seg->entries_.size())
                continue;
            const DecodedEntry &n = seg->entries_[nextOff];
            if (!n.valid())
                continue;
            const FusionKind kind = matchFusion(e.first, n.first);
            if (kind == FusionKind::Count_ ||
                !fusion.pattern[static_cast<std::size_t>(kind)])
                continue;
            e.second = n.first;
            e.handler =
                static_cast<std::uint8_t>(fusionDispatchOp(kind));
            e.count = 2;
            e.totalLength = static_cast<std::uint8_t>(e.first.length +
                                                      n.first.length);
            e.endsBlock = opEndsBlock(n.first.op);
            ++seg->fusedEntries_;
            ++seg->fusedByKind_[static_cast<std::size_t>(kind)];
        }
    }
    return seg;
}

} // namespace risotto::gx86
