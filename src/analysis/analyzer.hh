/**
 * @file
 * Whole-image static weak-memory analysis.
 *
 * Runs ahead of translation, decode-free when the per-image
 * DecodedSegment is available: builds the complete static CFG of the
 * guest text (direct and fallthrough edges, an over-approximation of
 * indirect targets, unreachable-code islands), computes per-block
 * memory summaries (shared vs provably thread-local accesses, LOCK /
 * MFENCE sites, RMW shapes) and classifies every block on a
 * three-point ordering lattice:
 *
 *   Local        every access is provably thread-private (stack traffic
 *                through an unescaped stack pointer, or no memory at
 *                all): the block carries no shared-memory ordering
 *                obligation, so the translator may elide the mapped
 *                fences and a certificate may discharge its per-TB
 *                validation.
 *   Ordered      the standard mapping applies (shared accesses present).
 *   HotOrdering  dense fence/RMW regions: fusion and cross-block fence
 *                merging stay conservative here so the ordering points
 *                the paper's mappings pin down are never moved.
 *
 * Thread-locality rests on one whole-image premise, checked (never
 * assumed) by the analyzer: the stack pointer must not escape. Threads
 * run on disjoint stacks (see Dbt::run), so an access is thread-private
 * iff it is stack-relative *and* no instruction anywhere in the image
 * copies Rsp into another register, spills it to memory, feeds it into
 * arithmetic, or redefines it from anything but a small constant
 * adjustment. Any escape anywhere demotes the entire image: rspPrivate
 * goes false and no block classifies Local.
 *
 * The classification is advisory until certified: src/dbt/certify.hh
 * turns an ImageAnalysis into a checksummed Certificate by running
 * every block through the real tier-1 pipeline and the PR-3
 * obligation-graph validator, and --analysis-paranoid re-runs that
 * oracle against every certificate-driven elision/skip at use time.
 */

#ifndef RISOTTO_ANALYSIS_ANALYZER_HH
#define RISOTTO_ANALYSIS_ANALYZER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gx86/decoded.hh"
#include "gx86/image.hh"
#include "gx86/isa.hh"

namespace risotto::analysis
{

/**
 * Straight-line block size cap the analysis forms blocks under. Must
 * equal dbt::Frontend::MaxBlockInstructions (static_asserted in
 * src/dbt/frontend.cc) so analysis block heads line up with the heads
 * the engine actually translates; duplicated rather than included to
 * keep this library below the dbt layer.
 */
constexpr std::size_t MaxBlockInstructions = 64;

/** Ordering class of a block (the analysis lattice, weakest first). */
enum class BlockClass : std::uint8_t
{
    Local = 0,       ///< No shared-memory ordering obligations.
    Ordered = 1,     ///< Standard mapping.
    HotOrdering = 2, ///< Dense RMW/MFENCE region: stay conservative.
};

/** "local" / "ordered" / "hot-ordering". */
std::string blockClassName(BlockClass cls);

/** Analyzer knobs. */
struct AnalysisConfig
{
    /** Stack-relative displacement beyond which an access is no longer
     * assumed to stay inside the accessing thread's own stack (threads
     * are spaced 0x40000 apart; see Dbt::run). */
    std::int64_t maxStackOffset = 4096;

    /** Constant Rsp adjustment beyond which frame tracking gives up
     * (AddI/SubI with a larger immediate count as an escape). */
    std::int64_t maxFrameAdjust = 32768;

    /** A block is HotOrdering when ordering points (RMWs + MFENCEs)
     * are at least this many... */
    std::uint32_t hotMinOrderingPoints = 2;

    /** ...and make up at least this fraction of its instructions
     * (numerator/denominator to keep the analysis integer-exact). */
    std::uint32_t hotDensityNum = 1;
    std::uint32_t hotDensityDen = 4;
};

/** Per-block memory summary plus CFG edges. */
struct BlockSummary
{
    gx86::Addr pc = 0;
    BlockClass cls = BlockClass::Ordered;

    std::uint32_t instructions = 0;
    std::uint32_t loads = 0;
    std::uint32_t stores = 0;
    std::uint32_t rmws = 0;
    std::uint32_t mfences = 0;

    /** Accesses provably confined to the accessing thread's stack. */
    std::uint32_t localAccesses = 0;

    /** Accesses that may touch shared memory. */
    std::uint32_t sharedAccesses = 0;

    /** Mapped fences the Risotto frontend scheme would emit for this
     * block (one per load/store, incl. the Call push / Ret pop). */
    std::uint32_t mappedFences = 0;

    /** Block leaves the analyzed text via a host call or syscall whose
     * memory effects are unknown (forces Ordered). */
    bool externalEffects = false;

    /** Ends in Ret / indirect control (successors over-approximated). */
    bool indirectExit = false;

    /** Static successor block heads (direct + fallthrough edges). */
    std::vector<gx86::Addr> successors;
};

/** One static finding of the analysis report. */
struct Finding
{
    enum class Kind : std::uint8_t
    {
        RedundantFence,    ///< Local block: mapped fences orderable away.
        HotRegion,         ///< Dense ordering region (stays conservative).
        RspEscape,         ///< Stack pointer escapes: locality demoted.
        UnreachableIsland, ///< Decodable text no CFG path reaches.
        MappingGap,        ///< Known-fragile mapping shape in live code.
    };

    Kind kind = Kind::RedundantFence;
    gx86::Addr pc = 0;
    std::string detail;

    std::string toString() const;
};

/** The whole-image analysis result. */
struct ImageAnalysis
{
    /** The locality premise: true iff no instruction in any reachable
     * block lets the stack pointer escape. */
    bool rspPrivate = false;

    /** Reachable blocks, keyed by head pc. */
    std::map<gx86::Addr, BlockSummary> blocks;

    /** Over-approximated indirect-target set (return sites of every
     * Call plus every named symbol): blocks Ret-style exits may reach. */
    std::vector<gx86::Addr> indirectTargets;

    /** Maximal runs of decodable text no CFG path reaches. */
    std::uint64_t unreachableIslands = 0;

    std::vector<Finding> findings;

    std::uint64_t blocksLocal = 0;
    std::uint64_t blocksOrdered = 0;
    std::uint64_t blocksHot = 0;

    /** Mapped fences elidable under the Local classification. */
    std::uint64_t fencesElidable = 0;

    /** Class of the block at @p pc (Ordered when unanalyzed). */
    BlockClass classOf(gx86::Addr pc) const;

    /** True iff @p pc was analyzed and classified Local. */
    bool isLocal(gx86::Addr pc) const
    {
        return classOf(pc) == BlockClass::Local;
    }
};

/**
 * True when @p in is a memory access the locality premise covers: a
 * plain (non-RMW) load or store through Rsp with a small displacement.
 * Call/Ret return-address pushes and pops are always stack traffic.
 * The verifier's locality-discharge rule uses this same predicate, so
 * the analyzer and the oracle cannot drift apart.
 */
bool isStackAccess(const gx86::Instruction &in,
                   std::int64_t max_offset = 4096);

/**
 * Analyze the whole guest image. @p segment makes the pass decode-free
 * (every instruction is read from the pre-decoded entries); with a null
 * segment the analyzer falls back to GuestImage::decodeAt.
 */
ImageAnalysis analyzeImage(const gx86::GuestImage &image,
                           const gx86::DecodedSegment *segment,
                           const AnalysisConfig &config = {});

} // namespace risotto::analysis

#endif // RISOTTO_ANALYSIS_ANALYZER_HH
