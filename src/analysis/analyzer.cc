#include "analysis/analyzer.hh"

#include <deque>
#include <set>
#include <unordered_map>

#include "support/error.hh"
#include "support/format.hh"

namespace risotto::analysis
{

using gx86::Addr;
using gx86::Instruction;
using gx86::Opcode;

namespace
{

/** Decode one instruction, preferring the pre-decoded segment. */
Instruction
decodeOne(const gx86::GuestImage &image,
          const gx86::DecodedSegment *segment, Addr pc)
{
    if (segment != nullptr) {
        const gx86::DecodedEntry *e = segment->entry(pc);
        panicIf(e == nullptr, "segment/text bounds disagree");
        if (!e->valid()) {
            image.decodeAt(pc); // Surface the exact decoder fault.
            throw GuestFault("undecodable instruction at " +
                             hexString(pc));
        }
        // Always the unfused first member: fusion never changes the
        // instruction stream the analysis reasons about.
        return e->first;
    }
    return image.decodeAt(pc);
}

/** Decode the straight-line block at @p head (frontend boundary rules). */
std::vector<Instruction>
decodeBlockAt(const gx86::GuestImage &image,
              const gx86::DecodedSegment *segment, Addr head)
{
    std::vector<Instruction> decoded;
    Addr cur = head;
    while (true) {
        if (!image.inText(cur))
            throw GuestFault("block leaves text at " + hexString(cur));
        const Instruction in = decodeOne(image, segment, cur);
        decoded.push_back(in);
        cur += in.length;
        if (gx86::opEndsBlock(in.op) ||
            decoded.size() >= MaxBlockInstructions)
            return decoded;
    }
}

/** True when @p in lets the stack pointer escape the frame discipline
 * the locality premise depends on. @p why receives a short reason. */
bool
escapesRsp(const Instruction &in, const AnalysisConfig &config,
           std::string &why)
{
    using gx86::Rsp;
    switch (in.op) {
      case Opcode::MovRR:
        if (in.rs == Rsp) {
            why = "stack pointer copied into another register";
            return true;
        }
        if (in.rd == Rsp) {
            why = "stack pointer redefined from another register";
            return true;
        }
        return false;
      case Opcode::MovRI:
        if (in.rd == Rsp) {
            why = "stack pointer repointed to a constant";
            return true;
        }
        return false;
      case Opcode::AddI:
      case Opcode::SubI:
        if (in.rd == Rsp &&
            (in.imm > config.maxFrameAdjust ||
             in.imm < -config.maxFrameAdjust)) {
            why = "stack frame adjustment exceeds the tracked bound";
            return true;
        }
        return false;
      case Opcode::Load:
      case Opcode::Load8:
        if (in.rd == Rsp) {
            why = "stack pointer reloaded from memory";
            return true;
        }
        return false;
      case Opcode::Store:
      case Opcode::Store8:
        if (in.rs == Rsp) {
            why = "stack pointer spilled to memory";
            return true;
        }
        return false;
      case Opcode::LockXadd:
        if (in.rs == Rsp) {
            why = "stack pointer used as an RMW operand";
            return true;
        }
        return false;
      default:
        if (gx86::opIsRmw(in.op))
            return false;
        // Arithmetic that reads or writes Rsp leaks or corrupts it.
        switch (in.op) {
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::And:
          case Opcode::Or:
          case Opcode::Xor:
          case Opcode::Mul:
          case Opcode::Udiv:
          case Opcode::FAdd:
          case Opcode::FSub:
          case Opcode::FMul:
          case Opcode::FDiv:
            if (in.rs == Rsp) {
                why = "stack pointer read by arithmetic";
                return true;
            }
            [[fallthrough]];
          case Opcode::AndI:
          case Opcode::OrI:
          case Opcode::XorI:
          case Opcode::MulI:
          case Opcode::ShlI:
          case Opcode::ShrI:
          case Opcode::FSqrt:
          case Opcode::CvtIF:
          case Opcode::CvtFI:
            if (in.rd == Rsp) {
                why = "stack pointer written by arithmetic";
                return true;
            }
            return false;
          default:
            return false;
        }
    }
}

} // namespace

std::string
blockClassName(BlockClass cls)
{
    switch (cls) {
      case BlockClass::Local:
        return "local";
      case BlockClass::Ordered:
        return "ordered";
      case BlockClass::HotOrdering:
        return "hot-ordering";
    }
    return "?";
}

std::string
Finding::toString() const
{
    const char *name = "?";
    switch (kind) {
      case Kind::RedundantFence:
        name = "redundant-fence";
        break;
      case Kind::HotRegion:
        name = "hot-region";
        break;
      case Kind::RspEscape:
        name = "rsp-escape";
        break;
      case Kind::UnreachableIsland:
        name = "unreachable-island";
        break;
      case Kind::MappingGap:
        name = "mapping-gap";
        break;
    }
    return std::string(name) + " @" + hexString(pc) + ": " + detail;
}

bool
isStackAccess(const Instruction &in, std::int64_t max_offset)
{
    switch (in.op) {
      case Opcode::Load:
      case Opcode::Load8:
      case Opcode::Store:
      case Opcode::Store8:
      case Opcode::StoreI:
        return in.rb == gx86::Rsp && in.off <= max_offset &&
               in.off >= -max_offset;
      case Opcode::Call:
      case Opcode::Ret:
        // The return-address push/pop is always stack traffic.
        return true;
      default:
        return false;
    }
}

BlockClass
ImageAnalysis::classOf(Addr pc) const
{
    const auto it = blocks.find(pc);
    return it == blocks.end() ? BlockClass::Ordered : it->second.cls;
}

ImageAnalysis
analyzeImage(const gx86::GuestImage &image,
             const gx86::DecodedSegment *segment,
             const AnalysisConfig &config)
{
    ImageAnalysis out;

    // Indirect-target over-approximation: a Ret (or any future computed
    // jump) can only land on a return site -- the instruction after a
    // Call -- or on a named entry point. Collected first so they can
    // seed the reachability BFS: blocks only indirect control reaches
    // still get analyzed and certified.
    std::set<Addr> indirect;
    for (const auto &sym : image.symbols)
        if (image.inText(sym.addr))
            indirect.insert(sym.addr);
    {
        Addr pc = image.textBase;
        const Addr end = image.textBase + image.text.size();
        while (pc < end) {
            Instruction in;
            try {
                in = decodeOne(image, segment, pc);
            } catch (const Error &) {
                ++pc; // Resynchronize one byte at a time.
                continue;
            }
            if (in.op == Opcode::Call &&
                image.inText(pc + in.length))
                indirect.insert(pc + in.length);
            pc += in.length;
        }
    }

    // Reachability BFS over block heads, frontend boundary rules.
    std::unordered_map<Addr, std::vector<Instruction>> code;
    std::set<Addr> seen{image.entry};
    std::deque<Addr> work{image.entry};
    for (const Addr a : indirect)
        if (seen.insert(a).second)
            work.push_back(a);
    while (!work.empty()) {
        const Addr head = work.front();
        work.pop_front();
        std::vector<Instruction> instrs;
        try {
            instrs = decodeBlockAt(image, segment, head);
        } catch (const Error &) {
            continue; // Undecodable head: never a translated block.
        }
        Addr fall = head;
        for (const Instruction &in : instrs)
            fall += in.length;

        BlockSummary summary;
        summary.pc = head;
        summary.instructions =
            static_cast<std::uint32_t>(instrs.size());
        auto push = [&](Addr a) {
            if (!image.inText(a))
                return;
            summary.successors.push_back(a);
            if (seen.insert(a).second)
                work.push_back(a);
        };
        const Instruction &last = instrs.back();
        const Addr target =
            fall + static_cast<std::uint64_t>(
                       static_cast<std::int64_t>(last.off));
        switch (last.op) {
          case Opcode::Jmp:
            push(target);
            break;
          case Opcode::Jcc:
          case Opcode::Call:
            push(target);
            push(fall);
            break;
          case Opcode::Ret:
            summary.indirectExit = true;
            break;
          case Opcode::Hlt:
            break;
          default:
            // PltCall, syscall, or a size-cap split: execution resumes
            // at the fall-through.
            push(fall);
            break;
        }
        out.blocks.emplace(head, std::move(summary));
        code.emplace(head, std::move(instrs));
    }
    out.indirectTargets.assign(indirect.begin(), indirect.end());

    // Whole-image escape scan: one violation anywhere demotes locality
    // everywhere (another thread could now hold a pointer into this
    // thread's stack).
    out.rspPrivate = true;
    for (const auto &[head, instrs] : code) {
        Addr pc = head;
        for (const Instruction &in : instrs) {
            std::string why;
            if (escapesRsp(in, config, why)) {
                out.rspPrivate = false;
                Finding finding;
                finding.kind = Finding::Kind::RspEscape;
                finding.pc = pc;
                finding.detail = why;
                out.findings.push_back(std::move(finding));
            }
            pc += in.length;
        }
    }

    // Per-block summaries and classification.
    for (auto &[head, summary] : out.blocks) {
        const std::vector<Instruction> &instrs = code[head];
        Addr pc = head;
        for (const Instruction &in : instrs) {
            const bool local =
                out.rspPrivate &&
                isStackAccess(in, config.maxStackOffset);
            switch (in.op) {
              case Opcode::Load:
              case Opcode::Load8:
                ++summary.loads;
                ++summary.mappedFences;
                break;
              case Opcode::Store:
              case Opcode::Store8:
              case Opcode::StoreI:
                ++summary.stores;
                ++summary.mappedFences;
                break;
              case Opcode::Call:
                ++summary.stores; // Return-address push.
                ++summary.mappedFences;
                break;
              case Opcode::Ret:
                ++summary.loads; // Return-address pop.
                ++summary.mappedFences;
                break;
              case Opcode::LockCmpxchg:
              case Opcode::LockXadd:
                ++summary.rmws;
                if (in.rb == gx86::Rsp) {
                    Finding finding;
                    finding.kind = Finding::Kind::MappingGap;
                    finding.pc = pc;
                    finding.detail = "LOCK-prefixed access through the "
                                     "stack pointer: atomic on "
                                     "thread-private memory";
                    out.findings.push_back(std::move(finding));
                }
                break;
              case Opcode::MFence:
                ++summary.mfences;
                break;
              case Opcode::PltCall:
              case Opcode::Syscall:
                summary.externalEffects = true;
                break;
              default:
                break;
            }
            if (gx86::opReadsMemory(in.op) ||
                gx86::opWritesMemory(in.op) || in.op == Opcode::Call ||
                in.op == Opcode::Ret) {
                if (local && !gx86::opIsRmw(in.op))
                    ++summary.localAccesses;
                else
                    ++summary.sharedAccesses;
            }
            pc += in.length;
        }

        const std::uint32_t ordering = summary.rmws + summary.mfences;
        if (summary.externalEffects) {
            // Host-call / syscall effects are opaque: keep the full
            // mapping even when every visible access is stack traffic.
            summary.cls = BlockClass::Ordered;
        } else if (ordering >= config.hotMinOrderingPoints &&
                   ordering * config.hotDensityDen >=
                       summary.instructions * config.hotDensityNum) {
            summary.cls = BlockClass::HotOrdering;
        } else if (ordering == 0 && summary.sharedAccesses == 0) {
            summary.cls = BlockClass::Local;
        } else {
            summary.cls = BlockClass::Ordered;
        }

        switch (summary.cls) {
          case BlockClass::Local:
            ++out.blocksLocal;
            out.fencesElidable += summary.mappedFences;
            if (summary.mappedFences > 0) {
                Finding finding;
                finding.kind = Finding::Kind::RedundantFence;
                finding.pc = head;
                finding.detail =
                    std::to_string(summary.mappedFences) +
                    " mapped fence(s) order only thread-private "
                    "accesses";
                out.findings.push_back(std::move(finding));
            }
            break;
          case BlockClass::Ordered:
            ++out.blocksOrdered;
            break;
          case BlockClass::HotOrdering: {
            ++out.blocksHot;
            Finding finding;
            finding.kind = Finding::Kind::HotRegion;
            finding.pc = head;
            finding.detail =
                std::to_string(ordering) + " ordering point(s) in " +
                std::to_string(summary.instructions) +
                " instruction(s): fusion and cross-block fence "
                "merging stay conservative";
            out.findings.push_back(std::move(finding));
            break;
          }
        }
    }

    // Unreachable-code islands: decodable text no CFG path covers.
    {
        std::vector<bool> covered(image.text.size(), false);
        for (const auto &[head, instrs] : code) {
            Addr pc = head;
            for (const Instruction &in : instrs) {
                for (std::uint32_t b = 0; b < in.length; ++b) {
                    const Addr off = pc + b - image.textBase;
                    if (off < covered.size())
                        covered[off] = true;
                }
                pc += in.length;
            }
        }
        bool inIsland = false;
        for (std::size_t off = 0; off < covered.size(); ++off) {
            if (covered[off]) {
                inIsland = false;
                continue;
            }
            bool decodable = false;
            try {
                decodeOne(image, segment, image.textBase + off);
                decodable = true;
            } catch (const Error &) {
            }
            if (decodable && !inIsland) {
                ++out.unreachableIslands;
                Finding finding;
                finding.kind = Finding::Kind::UnreachableIsland;
                finding.pc = image.textBase + off;
                finding.detail =
                    "decodable text unreachable from the entry and "
                    "every over-approximated indirect target";
                out.findings.push_back(std::move(finding));
                inIsland = true;
            } else if (!decodable) {
                inIsland = false;
            }
        }
    }

    return out;
}

} // namespace risotto::analysis
