#include "analysis/certificate.hh"

#include <algorithm>

namespace risotto::analysis
{

namespace
{

constexpr std::uint32_t Magic = 0x46434152; // "RACF" little-endian.

/** No real image yields this many blocks; a corrupt count must never
 * drive allocation. */
constexpr std::uint32_t MaxEntries = 1u << 22;

void
u32le(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
u64le(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

bool
fail(std::string *error, const char *why)
{
    if (error != nullptr)
        *error = why;
    return false;
}

} // namespace

const CertEntry *
Certificate::find(std::uint64_t pc) const
{
    const auto it = std::lower_bound(
        entries.begin(), entries.end(), pc,
        [](const CertEntry &e, std::uint64_t key) { return e.pc < key; });
    if (it == entries.end() || it->pc != pc)
        return nullptr;
    return &*it;
}

std::uint64_t
Certificate::validatedCount() const
{
    std::uint64_t n = 0;
    for (const CertEntry &e : entries)
        if ((e.flags & ClaimValidated) != 0)
            ++n;
    return n;
}

std::vector<std::uint8_t>
serializeCertificate(const Certificate &cert)
{
    std::vector<std::uint8_t> out;
    u32le(out, Magic);
    u32le(out, CertificateVersion);
    out.insert(out.end(), cert.imageDigest.begin(),
               cert.imageDigest.end());
    u64le(out, cert.configFingerprint);
    out.push_back(cert.rspPrivate ? 1 : 0);
    u32le(out, static_cast<std::uint32_t>(cert.entries.size()));
    for (const CertEntry &e : cert.entries) {
        u64le(out, e.pc);
        out.push_back(static_cast<std::uint8_t>(e.cls));
        out.push_back(e.flags);
    }
    u64le(out, support::fnv1a64(out));
    return out;
}

bool
parseCertificate(const std::vector<std::uint8_t> &bytes, Certificate &cert,
                 std::string *error)
{
    cert = Certificate{};
    // Fixed head (49 bytes) + trailing checksum.
    constexpr std::size_t Head = 4 + 4 + 32 + 8 + 1 + 4;
    if (bytes.size() < Head + 8)
        return fail(error, "truncated certificate");
    // The checksum covers everything before it: verify first, trust
    // nothing beforehand.
    std::uint64_t stored = 0;
    for (int i = 7; i >= 0; --i)
        stored = (stored << 8) |
                 bytes[bytes.size() - 8 + static_cast<std::size_t>(i)];
    if (support::fnv1a64(bytes.data(), bytes.size() - 8) != stored)
        return fail(error, "certificate checksum mismatch");

    auto u32at = [&](std::size_t off) {
        return static_cast<std::uint32_t>(bytes[off]) |
               (static_cast<std::uint32_t>(bytes[off + 1]) << 8) |
               (static_cast<std::uint32_t>(bytes[off + 2]) << 16) |
               (static_cast<std::uint32_t>(bytes[off + 3]) << 24);
    };
    auto u64at = [&](std::size_t off) {
        std::uint64_t v = 0;
        for (int i = 7; i >= 0; --i)
            v = (v << 8) | bytes[off + static_cast<std::size_t>(i)];
        return v;
    };

    if (u32at(0) != Magic)
        return fail(error, "not a certificate (bad magic)");
    if (u32at(4) != CertificateVersion)
        return fail(error, "unsupported certificate version");
    std::copy(bytes.begin() + 8, bytes.begin() + 40,
              cert.imageDigest.begin());
    cert.configFingerprint = u64at(40);
    cert.rspPrivate = bytes[48] != 0;
    const std::uint32_t count = u32at(49);
    if (count > MaxEntries ||
        bytes.size() != Head + static_cast<std::size_t>(count) * 10 + 8)
        return fail(error, "certificate entry count disagrees with size");
    cert.entries.reserve(count);
    std::uint64_t prev = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::size_t off = Head + static_cast<std::size_t>(i) * 10;
        CertEntry e;
        e.pc = u64at(off);
        const std::uint8_t cls = bytes[off + 8];
        if (cls > static_cast<std::uint8_t>(BlockClass::HotOrdering))
            return fail(error, "certificate entry class out of range");
        e.cls = static_cast<BlockClass>(cls);
        e.flags = bytes[off + 9];
        if (i > 0 && e.pc <= prev)
            return fail(error, "certificate entries not sorted");
        prev = e.pc;
        cert.entries.push_back(e);
    }
    return true;
}

bool
certificateMatches(const Certificate &cert,
                   const support::Sha256Digest &digest,
                   std::uint64_t fingerprint)
{
    return cert.imageDigest == digest &&
           cert.configFingerprint == fingerprint;
}

} // namespace risotto::analysis
