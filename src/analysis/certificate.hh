/**
 * @file
 * Translation certificates: the portable, tamper-evident form of a
 * whole-image analysis.
 *
 * A certificate records, per analyzed block, its ordering class and
 * whether the block's translation under the certifying configuration
 * passed the obligation-graph validator (claim V). It is keyed by the
 * guest image SHA-256 and the DBT config fingerprint -- the same pair
 * that keys .rtbc snapshots -- so a certificate can never be applied
 * to a different program or pipeline, and the serialized form carries
 * an FNV-1a checksum over everything: a single flipped bit makes the
 * whole certificate unparseable and the consumer falls back to full
 * per-TB validation (never to wrong code).
 *
 * Claim semantics (what a consumer may do with a verified entry):
 *
 *   ClaimValidated   the baseline translation of this block, produced
 *                    by the certifying pipeline (including any Local
 *                    fence elision), passed TbValidator at both levels.
 *                    A consumer translating or reloading the same block
 *                    under the same fingerprint may skip its per-TB
 *                    validation. --analysis-paranoid re-runs the
 *                    validator anyway and treats any disagreement as a
 *                    certificate bug (exit code 3).
 *
 * Serialized layout (little-endian):
 *
 *   magic "RACF" (u32) | version (u32) | image SHA-256 (32 bytes) |
 *   config fingerprint (u64) | rspPrivate (u8) | entry count (u32) |
 *   entries { pc (u64) | class (u8) | flags (u8) } * |
 *   FNV-1a 64 checksum of all preceding bytes (u64)
 */

#ifndef RISOTTO_ANALYSIS_CERTIFICATE_HH
#define RISOTTO_ANALYSIS_CERTIFICATE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "support/checksum.hh"

namespace risotto::analysis
{

/** Certificate format version written by serializeCertificate(). */
constexpr std::uint32_t CertificateVersion = 1;

/** Per-entry claim flags. */
enum CertFlags : std::uint8_t
{
    /** Claim V: the block's translation passed the PR-3 validator
     * under the certifying fingerprint. */
    ClaimValidated = 1,
};

/** One certified block. */
struct CertEntry
{
    std::uint64_t pc = 0;
    BlockClass cls = BlockClass::Ordered;
    std::uint8_t flags = 0;
};

/** A whole-image certificate. */
struct Certificate
{
    support::Sha256Digest imageDigest{};
    std::uint64_t configFingerprint = 0;

    /** The locality premise the classification was computed under. */
    bool rspPrivate = false;

    /** Sorted by pc. */
    std::vector<CertEntry> entries;

    /** Entry for @p pc, or nullptr. */
    const CertEntry *find(std::uint64_t pc) const;

    /** True when the entry at @p pc carries claim V. */
    bool claimsValidated(std::uint64_t pc) const
    {
        const CertEntry *e = find(pc);
        return e != nullptr && (e->flags & ClaimValidated) != 0;
    }

    std::uint64_t validatedCount() const;
};

/** Serialize @p cert with its trailing checksum. */
std::vector<std::uint8_t> serializeCertificate(const Certificate &cert);

/**
 * Parse a serialized certificate. Never throws: any structural,
 * version or checksum problem yields false and fills @p error; a false
 * return means the consumer must validate everything itself.
 */
bool parseCertificate(const std::vector<std::uint8_t> &bytes,
                      Certificate &cert, std::string *error = nullptr);

/** True when @p cert keys to this image digest + config fingerprint. */
bool certificateMatches(const Certificate &cert,
                        const support::Sha256Digest &digest,
                        std::uint64_t fingerprint);

} // namespace risotto::analysis

#endif // RISOTTO_ANALYSIS_CERTIFICATE_HH
