/**
 * @file
 * Litmus-level IR transformations (Section 5.4, Figure 10).
 *
 * Each transformation rewrites a TCG IR litmus program the way the TCG
 * optimizer would rewrite a basic block: memory-access eliminations (RAR,
 * RAW, WAW and their fenced forms with the Figure 10 side conditions),
 * fence merging/strengthening, and reordering of independent accesses.
 * Theorem-1 refinement over these rewrites is the empirical counterpart
 * of the paper's transformation-correctness proofs.
 */

#ifndef RISOTTO_MAPPING_TRANSFORMS_HH
#define RISOTTO_MAPPING_TRANSFORMS_HH

#include <string>
#include <vector>

#include "litmus/program.hh"

namespace risotto::mapping
{

/** The transformation kinds of Section 5.4. */
enum class TransformKind
{
    Rar,          ///< R(X,v) . R(X,v')        -> R(X,v)
    Raw,          ///< W(X,v) . R(X,v)         -> W(X,v)
    Waw,          ///< W(X,v) . W(X,v')        -> W(X,v')
    FencedRar,    ///< R . F_o . R             -> R . F_o     (o in {rm,ww})
    FencedRaw,    ///< W . F_t . R             -> W . F_t     (t in {sc,ww})
    FencedWaw,    ///< W . F_o . W             -> F_o . W     (o in {rm,ww})
    FenceMerge,   ///< F1 . F2                 -> merge(F1, F2)
    Strengthen,   ///< F                       -> stronger F
    Reorder,      ///< a . b -> b . a (independent, different locations)
};

/** Name of a transformation kind. */
std::string transformKindName(TransformKind kind);

/** One applicable rewrite site within a program. */
struct TransformSite
{
    TransformKind kind;
    std::size_t tid;
    /** Index of the first instruction of the matched pattern. */
    std::size_t index;
};

/**
 * Find every site where a transformation applies.
 *
 * Patterns only match unguarded instructions (the optimizer operates on
 * basic blocks, and guards model cross-block control flow).
 */
std::vector<TransformSite> findTransformSites(const litmus::Program &p);

/** Apply the rewrite at @p site, returning the transformed program. */
litmus::Program applyTransform(const litmus::Program &p,
                               const TransformSite &site);

/**
 * The unsound variant the paper warns about: RAW elimination across *any*
 * fence kind, including Fmr/Fwr (the FMR counterexample). Used by tests
 * and the error-reproduction bench to show the side condition matters.
 */
std::vector<TransformSite>
findUnsoundRawAcrossAnyFence(const litmus::Program &p);

} // namespace risotto::mapping

#endif // RISOTTO_MAPPING_TRANSFORMS_HH
