#include "mapping/schemes.hh"

#include "memcore/fencealg.hh"
#include "support/error.hh"

namespace risotto::mapping
{

using litmus::Instr;
using litmus::Program;
using litmus::Thread;
using memcore::Access;
using memcore::FenceKind;
using memcore::RmwKind;

std::string
schemeName(X86ToTcgScheme scheme)
{
    switch (scheme) {
      case X86ToTcgScheme::Qemu: return "qemu";
      case X86ToTcgScheme::NoFences: return "no-fences";
      case X86ToTcgScheme::Risotto: return "risotto";
    }
    panic("unknown frontend scheme");
}

std::string
schemeName(TcgToArmScheme scheme)
{
    switch (scheme) {
      case TcgToArmScheme::Qemu: return "qemu";
      case TcgToArmScheme::Risotto: return "risotto";
    }
    panic("unknown backend scheme");
}

std::string
rmwLoweringName(RmwLowering lowering)
{
    switch (lowering) {
      case RmwLowering::HelperRmw1AL: return "helper-rmw1al";
      case RmwLowering::HelperRmw2AL: return "helper-rmw2al";
      case RmwLowering::InlineCasal: return "inline-casal";
      case RmwLowering::FencedRmw2: return "dmbff-rmw2-dmbff";
    }
    panic("unknown rmw lowering");
}

namespace
{

/** A fence instruction inheriting the guard of @p like. */
Instr
guardedFence(FenceKind kind, const Instr &like)
{
    Instr f = Instr::fenceOf(kind);
    f.guardReg = like.guardReg;
    f.guardVal = like.guardVal;
    return f;
}

} // namespace

litmus::Program
mapX86ToTcg(const Program &program, X86ToTcgScheme scheme)
{
    Program out;
    out.name = program.name + "->tcg(" + schemeName(scheme) + ")";
    out.init = program.init;
    for (const Thread &t : program.threads) {
        Thread mapped;
        for (const Instr &i : t.instrs) {
            switch (i.kind) {
              case Instr::Kind::Load:
                if (scheme == X86ToTcgScheme::Qemu)
                    mapped.instrs.push_back(
                        guardedFence(FenceKind::Fmr, i));
                mapped.instrs.push_back(i);
                if (scheme == X86ToTcgScheme::Risotto)
                    mapped.instrs.push_back(
                        guardedFence(FenceKind::Frm, i));
                break;
              case Instr::Kind::Store:
                if (scheme == X86ToTcgScheme::Qemu)
                    mapped.instrs.push_back(
                        guardedFence(FenceKind::Fmw, i));
                if (scheme == X86ToTcgScheme::Risotto)
                    mapped.instrs.push_back(
                        guardedFence(FenceKind::Fww, i));
                mapped.instrs.push_back(i);
                break;
              case Instr::Kind::Rmw: {
                // TCG RMWs carry SC semantics in the IR model.
                Instr rmw = i;
                rmw.readAccess = Access::Sc;
                rmw.writeAccess = Access::Sc;
                mapped.instrs.push_back(rmw);
                break;
              }
              case Instr::Kind::Fence:
                fatalIf(i.fence != FenceKind::MFence,
                        "x86 source contains a non-x86 fence");
                mapped.instrs.push_back(
                    guardedFence(FenceKind::Fsc, i));
                break;
            }
        }
        out.threads.push_back(std::move(mapped));
    }
    return out;
}

litmus::Program
mapTcgToArm(const Program &program, TcgToArmScheme scheme,
            RmwLowering lowering)
{
    Program out;
    out.name = program.name + "->arm(" + schemeName(scheme) + "," +
               rmwLoweringName(lowering) + ")";
    out.init = program.init;
    for (const Thread &t : program.threads) {
        Thread mapped;
        for (const Instr &i : t.instrs) {
            switch (i.kind) {
              case Instr::Kind::Load:
              case Instr::Kind::Store: {
                Instr access = i;
                access.readAccess = Access::Plain;
                access.writeAccess = Access::Plain;
                mapped.instrs.push_back(access);
                break;
              }
              case Instr::Kind::Rmw: {
                Instr rmw = i;
                switch (lowering) {
                  case RmwLowering::HelperRmw1AL:
                  case RmwLowering::InlineCasal:
                    rmw.rmwKind = RmwKind::Amo;
                    rmw.readAccess = Access::Acquire;
                    rmw.writeAccess = Access::Release;
                    mapped.instrs.push_back(rmw);
                    break;
                  case RmwLowering::HelperRmw2AL:
                    rmw.rmwKind = RmwKind::LxSx;
                    rmw.readAccess = Access::Acquire;
                    rmw.writeAccess = Access::Release;
                    mapped.instrs.push_back(rmw);
                    break;
                  case RmwLowering::FencedRmw2:
                    rmw.rmwKind = RmwKind::LxSx;
                    rmw.readAccess = Access::Plain;
                    rmw.writeAccess = Access::Plain;
                    mapped.instrs.push_back(
                        guardedFence(FenceKind::DmbFull, i));
                    mapped.instrs.push_back(rmw);
                    mapped.instrs.push_back(
                        guardedFence(FenceKind::DmbFull, i));
                    break;
                }
                break;
              }
              case Instr::Kind::Fence: {
                fatalIf(!memcore::isTcgFence(i.fence),
                        "TCG source contains a non-TCG fence");
                FenceKind lowered = FenceKind::None;
                switch (i.fence) {
                  case FenceKind::Frr:
                  case FenceKind::Frw:
                  case FenceKind::Frm:
                    lowered = FenceKind::DmbLd;
                    break;
                  case FenceKind::Fmr:
                    // QEMU demotes Fmr to Frr and lowers it to DMBLD; the
                    // sound lowering would be DMBFF.
                    lowered = scheme == TcgToArmScheme::Qemu
                                  ? FenceKind::DmbLd
                                  : FenceKind::DmbFull;
                    break;
                  case FenceKind::Fww:
                    lowered = scheme == TcgToArmScheme::Qemu
                                  ? FenceKind::DmbFull
                                  : FenceKind::DmbSt;
                    break;
                  case FenceKind::Fwr:
                  case FenceKind::Fwm:
                  case FenceKind::Fmw:
                  case FenceKind::Fmm:
                  case FenceKind::Fsc:
                    lowered = FenceKind::DmbFull;
                    break;
                  case FenceKind::Facq:
                  case FenceKind::Frel:
                    lowered = FenceKind::None;
                    break;
                  default:
                    panic("unhandled TCG fence");
                }
                if (lowered != FenceKind::None)
                    mapped.instrs.push_back(guardedFence(lowered, i));
                break;
              }
            }
        }
        out.threads.push_back(std::move(mapped));
    }
    return out;
}

litmus::Program
mapX86ToArm(const Program &program, X86ToTcgScheme frontend,
            TcgToArmScheme backend, RmwLowering lowering)
{
    return mapTcgToArm(mapX86ToTcg(program, frontend), backend, lowering);
}

litmus::Program
mapX86ToArmDesired(const Program &program)
{
    Program out;
    out.name = program.name + "->arm(desired)";
    out.init = program.init;
    for (const Thread &t : program.threads) {
        Thread mapped;
        for (const Instr &i : t.instrs) {
            switch (i.kind) {
              case Instr::Kind::Load: {
                Instr load = i;
                load.readAccess = Access::AcquirePC; // LDAPR
                mapped.instrs.push_back(load);
                break;
              }
              case Instr::Kind::Store: {
                Instr store = i;
                store.writeAccess = Access::Release; // STLR
                mapped.instrs.push_back(store);
                break;
              }
              case Instr::Kind::Rmw: {
                Instr rmw = i;
                rmw.rmwKind = RmwKind::Amo;
                rmw.readAccess = Access::Acquire;
                rmw.writeAccess = Access::Release;
                mapped.instrs.push_back(rmw);
                break;
              }
              case Instr::Kind::Fence:
                mapped.instrs.push_back(
                    guardedFence(FenceKind::DmbFull, i));
                break;
            }
        }
        out.threads.push_back(std::move(mapped));
    }
    return out;
}

litmus::Program
mapX86ToRiscv(const Program &program, bool with_fences)
{
    Program out;
    out.name = program.name + "->riscv" +
               (with_fences ? "" : "(no-fences)");
    out.init = program.init;
    for (const Thread &t : program.threads) {
        Thread mapped;
        for (const Instr &i : t.instrs) {
            switch (i.kind) {
              case Instr::Kind::Load:
                mapped.instrs.push_back(i);
                if (with_fences)
                    mapped.instrs.push_back(
                        guardedFence(FenceKind::Frm, i));
                break;
              case Instr::Kind::Store:
                if (with_fences)
                    mapped.instrs.push_back(
                        guardedFence(FenceKind::Fmw, i));
                mapped.instrs.push_back(i);
                break;
              case Instr::Kind::Rmw: {
                Instr rmw = i;
                rmw.rmwKind = RmwKind::Amo;
                rmw.readAccess = Access::Acquire;   // .aq
                rmw.writeAccess = Access::Release;  // .rl
                mapped.instrs.push_back(rmw);
                break;
              }
              case Instr::Kind::Fence:
                mapped.instrs.push_back(
                    guardedFence(FenceKind::Fmm, i));
                break;
            }
        }
        out.threads.push_back(std::move(mapped));
    }
    return out;
}

} // namespace risotto::mapping
