#include "mapping/schemes.hh"

#include <utility>

#include "memcore/fencealg.hh"
#include "support/error.hh"

namespace risotto::mapping
{

using litmus::Instr;
using litmus::Program;
using litmus::Thread;
using memcore::Access;
using memcore::FenceKind;
using memcore::RmwKind;

std::string
schemeName(X86ToTcgScheme scheme)
{
    switch (scheme) {
      case X86ToTcgScheme::Qemu: return "qemu";
      case X86ToTcgScheme::NoFences: return "no-fences";
      case X86ToTcgScheme::Risotto: return "risotto";
    }
    panic("unknown frontend scheme");
}

std::string
schemeName(TcgToArmScheme scheme)
{
    switch (scheme) {
      case TcgToArmScheme::Qemu: return "qemu";
      case TcgToArmScheme::Risotto: return "risotto";
    }
    panic("unknown backend scheme");
}

std::string
rmwLoweringName(RmwLowering lowering)
{
    switch (lowering) {
      case RmwLowering::HelperRmw1AL: return "helper-rmw1al";
      case RmwLowering::HelperRmw2AL: return "helper-rmw2al";
      case RmwLowering::InlineCasal: return "inline-casal";
      case RmwLowering::FencedRmw2: return "dmbff-rmw2-dmbff";
    }
    panic("unknown rmw lowering");
}

namespace
{

/** A fence instruction inheriting the guard of @p like. */
Instr
guardedFence(FenceKind kind, const Instr &like)
{
    Instr f = Instr::fenceOf(kind);
    f.guardReg = like.guardReg;
    f.guardVal = like.guardVal;
    return f;
}

} // namespace

litmus::Program
mapX86ToTcg(const Program &program, X86ToTcgScheme scheme)
{
    Program out;
    out.name = program.name + "->tcg(" + schemeName(scheme) + ")";
    out.init = program.init;
    for (const Thread &t : program.threads) {
        Thread mapped;
        for (const Instr &i : t.instrs) {
            switch (i.kind) {
              case Instr::Kind::Load:
                if (scheme == X86ToTcgScheme::Qemu)
                    mapped.instrs.push_back(
                        guardedFence(FenceKind::Fmr, i));
                mapped.instrs.push_back(i);
                if (scheme == X86ToTcgScheme::Risotto)
                    mapped.instrs.push_back(
                        guardedFence(FenceKind::Frm, i));
                break;
              case Instr::Kind::Store:
                if (scheme == X86ToTcgScheme::Qemu)
                    mapped.instrs.push_back(
                        guardedFence(FenceKind::Fmw, i));
                if (scheme == X86ToTcgScheme::Risotto)
                    mapped.instrs.push_back(
                        guardedFence(FenceKind::Fww, i));
                mapped.instrs.push_back(i);
                break;
              case Instr::Kind::Rmw: {
                // TCG RMWs carry SC semantics in the IR model.
                Instr rmw = i;
                rmw.readAccess = Access::Sc;
                rmw.writeAccess = Access::Sc;
                mapped.instrs.push_back(rmw);
                break;
              }
              case Instr::Kind::Fence:
                fatalIf(i.fence != FenceKind::MFence,
                        "x86 source contains a non-x86 fence");
                mapped.instrs.push_back(
                    guardedFence(FenceKind::Fsc, i));
                break;
            }
        }
        out.threads.push_back(std::move(mapped));
    }
    return out;
}

litmus::Program
mapTcgToArm(const Program &program, TcgToArmScheme scheme,
            RmwLowering lowering)
{
    Program out;
    out.name = program.name + "->arm(" + schemeName(scheme) + "," +
               rmwLoweringName(lowering) + ")";
    out.init = program.init;
    for (const Thread &t : program.threads) {
        Thread mapped;
        for (const Instr &i : t.instrs) {
            switch (i.kind) {
              case Instr::Kind::Load:
              case Instr::Kind::Store: {
                Instr access = i;
                access.readAccess = Access::Plain;
                access.writeAccess = Access::Plain;
                mapped.instrs.push_back(access);
                break;
              }
              case Instr::Kind::Rmw: {
                Instr rmw = i;
                switch (lowering) {
                  case RmwLowering::HelperRmw1AL:
                  case RmwLowering::InlineCasal:
                    rmw.rmwKind = RmwKind::Amo;
                    rmw.readAccess = Access::Acquire;
                    rmw.writeAccess = Access::Release;
                    mapped.instrs.push_back(rmw);
                    break;
                  case RmwLowering::HelperRmw2AL:
                    rmw.rmwKind = RmwKind::LxSx;
                    rmw.readAccess = Access::Acquire;
                    rmw.writeAccess = Access::Release;
                    mapped.instrs.push_back(rmw);
                    break;
                  case RmwLowering::FencedRmw2:
                    rmw.rmwKind = RmwKind::LxSx;
                    rmw.readAccess = Access::Plain;
                    rmw.writeAccess = Access::Plain;
                    mapped.instrs.push_back(
                        guardedFence(FenceKind::DmbFull, i));
                    mapped.instrs.push_back(rmw);
                    mapped.instrs.push_back(
                        guardedFence(FenceKind::DmbFull, i));
                    break;
                }
                break;
              }
              case Instr::Kind::Fence: {
                fatalIf(!memcore::isTcgFence(i.fence),
                        "TCG source contains a non-TCG fence");
                FenceKind lowered = FenceKind::None;
                switch (i.fence) {
                  case FenceKind::Frr:
                  case FenceKind::Frw:
                  case FenceKind::Frm:
                    lowered = FenceKind::DmbLd;
                    break;
                  case FenceKind::Fmr:
                    // QEMU demotes Fmr to Frr and lowers it to DMBLD; the
                    // sound lowering would be DMBFF.
                    lowered = scheme == TcgToArmScheme::Qemu
                                  ? FenceKind::DmbLd
                                  : FenceKind::DmbFull;
                    break;
                  case FenceKind::Fww:
                    lowered = scheme == TcgToArmScheme::Qemu
                                  ? FenceKind::DmbFull
                                  : FenceKind::DmbSt;
                    break;
                  case FenceKind::Fwr:
                  case FenceKind::Fwm:
                  case FenceKind::Fmw:
                  case FenceKind::Fmm:
                  case FenceKind::Fsc:
                    lowered = FenceKind::DmbFull;
                    break;
                  case FenceKind::Facq:
                  case FenceKind::Frel:
                    lowered = FenceKind::None;
                    break;
                  default:
                    panic("unhandled TCG fence");
                }
                if (lowered != FenceKind::None)
                    mapped.instrs.push_back(guardedFence(lowered, i));
                break;
              }
            }
        }
        out.threads.push_back(std::move(mapped));
    }
    return out;
}

litmus::Program
mapX86ToArm(const Program &program, X86ToTcgScheme frontend,
            TcgToArmScheme backend, RmwLowering lowering)
{
    return mapTcgToArm(mapX86ToTcg(program, frontend), backend, lowering);
}

litmus::Program
mapX86ToArmDesired(const Program &program)
{
    Program out;
    out.name = program.name + "->arm(desired)";
    out.init = program.init;
    for (const Thread &t : program.threads) {
        Thread mapped;
        for (const Instr &i : t.instrs) {
            switch (i.kind) {
              case Instr::Kind::Load: {
                Instr load = i;
                load.readAccess = Access::AcquirePC; // LDAPR
                mapped.instrs.push_back(load);
                break;
              }
              case Instr::Kind::Store: {
                Instr store = i;
                store.writeAccess = Access::Release; // STLR
                mapped.instrs.push_back(store);
                break;
              }
              case Instr::Kind::Rmw: {
                Instr rmw = i;
                rmw.rmwKind = RmwKind::Amo;
                rmw.readAccess = Access::Acquire;
                rmw.writeAccess = Access::Release;
                mapped.instrs.push_back(rmw);
                break;
              }
              case Instr::Kind::Fence:
                mapped.instrs.push_back(
                    guardedFence(FenceKind::DmbFull, i));
                break;
            }
        }
        out.threads.push_back(std::move(mapped));
    }
    return out;
}

memcore::FenceKind
lowerTcgFenceToRiscv(FenceKind fence, TcgToArmScheme scheme)
{
    switch (fence) {
      case FenceKind::Frr:
      case FenceKind::Frw:
      case FenceKind::Frm:
        // QEMU's backend collapses all read-side fences to its DMBLD
        // analogue, `fence r,rw`.
        return scheme == TcgToArmScheme::Qemu ? FenceKind::Frm : fence;
      case FenceKind::Fmr:
        // The Figure 2 unsoundness transplanted: QEMU demotes Fmr to a
        // read fence, losing the W->R half. The sound lowering keeps
        // the full pred set.
        return scheme == TcgToArmScheme::Qemu ? FenceKind::Frm : fence;
      case FenceKind::Fww:
        // QEMU never generates Fww and lowers write fences to a full
        // fence; Risotto keeps the exact `fence w,w`.
        return scheme == TcgToArmScheme::Qemu ? FenceKind::Fmm : fence;
      case FenceKind::Fwr:
      case FenceKind::Fwm:
      case FenceKind::Fmw:
      case FenceKind::Fmm:
        return scheme == TcgToArmScheme::Qemu ? FenceKind::Fmm : fence;
      case FenceKind::Fsc:
        // `fence rw,rw` is RVWMO's strongest plain fence.
        return FenceKind::Fmm;
      case FenceKind::Facq:
      case FenceKind::Frel:
        return FenceKind::None;
      default:
        panic("non-TCG fence lowered to RISC-V");
    }
}

litmus::Program
mapTcgToRiscv(const Program &program, TcgToArmScheme scheme,
              RmwLowering lowering)
{
    Program out;
    out.name = program.name + "->riscv(" + schemeName(scheme) + "," +
               rmwLoweringName(lowering) + ")";
    out.init = program.init;
    for (const Thread &t : program.threads) {
        Thread mapped;
        for (const Instr &i : t.instrs) {
            switch (i.kind) {
              case Instr::Kind::Load:
              case Instr::Kind::Store: {
                Instr access = i;
                access.readAccess = Access::Plain;
                access.writeAccess = Access::Plain;
                mapped.instrs.push_back(access);
                break;
              }
              case Instr::Kind::Rmw: {
                Instr rmw = i;
                switch (lowering) {
                  case RmwLowering::HelperRmw1AL:
                  case RmwLowering::InlineCasal:
                    // amo.aqrl: fully ordered (spec A.3.3).
                    rmw.rmwKind = RmwKind::Amo;
                    rmw.readAccess = Access::AcqRel;
                    rmw.writeAccess = Access::AcqRel;
                    mapped.instrs.push_back(rmw);
                    break;
                  case RmwLowering::HelperRmw2AL:
                    // lr.d.aq / sc.d.rl: NOT fully ordered -- the same
                    // too-weak exclusive pair the paper found in the
                    // GCC-9 QEMU build, in RVWMO clothing.
                    rmw.rmwKind = RmwKind::LxSx;
                    rmw.readAccess = Access::Acquire;
                    rmw.writeAccess = Access::Release;
                    mapped.instrs.push_back(rmw);
                    break;
                  case RmwLowering::FencedRmw2:
                    rmw.rmwKind = RmwKind::LxSx;
                    rmw.readAccess = Access::Plain;
                    rmw.writeAccess = Access::Plain;
                    mapped.instrs.push_back(
                        guardedFence(FenceKind::Fmm, i));
                    mapped.instrs.push_back(rmw);
                    mapped.instrs.push_back(
                        guardedFence(FenceKind::Fmm, i));
                    break;
                }
                break;
              }
              case Instr::Kind::Fence: {
                fatalIf(!memcore::isTcgFence(i.fence),
                        "TCG source contains a non-TCG fence");
                const FenceKind lowered =
                    lowerTcgFenceToRiscv(i.fence, scheme);
                if (lowered != FenceKind::None)
                    mapped.instrs.push_back(guardedFence(lowered, i));
                break;
              }
            }
        }
        out.threads.push_back(std::move(mapped));
    }
    return out;
}

namespace
{

// FENCE set bits: matches rv64::FenceW / rv64::FenceR.
constexpr std::uint8_t SetW = 1;
constexpr std::uint8_t SetR = 2;
constexpr std::uint8_t SetRW = SetR | SetW;

std::uint8_t
fenceSet(char dir)
{
    switch (dir) {
      case 'r': return SetR;
      case 'w': return SetW;
      case 'm': return SetRW;
    }
    panic("bad fence direction");
}

/** The pred/succ direction letters of a directional Fxy kind. */
std::pair<char, char>
fenceDirections(FenceKind fence)
{
    switch (fence) {
      case FenceKind::Frr: return {'r', 'r'};
      case FenceKind::Frw: return {'r', 'w'};
      case FenceKind::Frm: return {'r', 'm'};
      case FenceKind::Fwr: return {'w', 'r'};
      case FenceKind::Fww: return {'w', 'w'};
      case FenceKind::Fwm: return {'w', 'm'};
      case FenceKind::Fmr: return {'m', 'r'};
      case FenceKind::Fmw: return {'m', 'w'};
      case FenceKind::Fmm: return {'m', 'm'};
      default:
        panic("non-directional fence has no FENCE pred/succ sets");
    }
}

} // namespace

std::uint8_t
riscvFencePred(FenceKind fence)
{
    return fenceSet(fenceDirections(fence).first);
}

std::uint8_t
riscvFenceSucc(FenceKind fence)
{
    return fenceSet(fenceDirections(fence).second);
}

memcore::FenceKind
riscvFenceKind(std::uint8_t pred, std::uint8_t succ)
{
    panicIf((pred & SetRW) == 0 || (succ & SetRW) == 0,
            "FENCE with an empty pred or succ set");
    static constexpr FenceKind byBits[3][3] = {
        // succ:      W               R               RW
        /* pred W */ {FenceKind::Fww, FenceKind::Fwr, FenceKind::Fwm},
        /* pred R */ {FenceKind::Frw, FenceKind::Frr, FenceKind::Frm},
        /* pred RW */ {FenceKind::Fmw, FenceKind::Fmr, FenceKind::Fmm},
    };
    return byBits[(pred & SetRW) - 1][(succ & SetRW) - 1];
}

litmus::Program
mapX86ToRiscv(const Program &program, bool with_fences)
{
    // Composition of the two stages the rv64 DBT actually runs, so the
    // litmus-level table can never drift from the executable emitter.
    Program out = mapTcgToRiscv(
        mapX86ToTcg(program, with_fences ? X86ToTcgScheme::Risotto
                                         : X86ToTcgScheme::NoFences),
        TcgToArmScheme::Risotto, RmwLowering::InlineCasal);
    out.name = program.name + "->riscv" +
               (with_fences ? "" : "(no-fences)");
    return out;
}

} // namespace risotto::mapping
