#include "mapping/transforms.hh"

#include "memcore/fencealg.hh"
#include "support/error.hh"

namespace risotto::mapping
{

using litmus::Instr;
using litmus::Program;
using litmus::Reg;
using litmus::StoreExpr;
using litmus::Thread;
using memcore::FenceKind;

std::string
transformKindName(TransformKind kind)
{
    switch (kind) {
      case TransformKind::Rar: return "RAR";
      case TransformKind::Raw: return "RAW";
      case TransformKind::Waw: return "WAW";
      case TransformKind::FencedRar: return "F-RAR";
      case TransformKind::FencedRaw: return "F-RAW";
      case TransformKind::FencedWaw: return "F-WAW";
      case TransformKind::FenceMerge: return "fence-merge";
      case TransformKind::Strengthen: return "fence-strengthen";
      case TransformKind::Reorder: return "reorder";
    }
    panic("unknown transform kind");
}

namespace
{

/** True when register @p reg is read by @p instr. */
bool
usesReg(const Instr &i, Reg reg)
{
    if (reg == litmus::NoReg)
        return false;
    if (i.guardReg == reg || i.addrDepReg == reg)
        return true;
    if (i.kind == Instr::Kind::Store &&
        i.value.kind != StoreExpr::Kind::Const && i.value.reg == reg)
        return true;
    return false;
}

/** True when @p reg is unread by instructions of @p t from @p from on. */
bool
regDeadAfter(const Thread &t, std::size_t from, Reg reg)
{
    for (std::size_t i = from; i < t.instrs.size(); ++i) {
        if (usesReg(t.instrs[i], reg))
            return false;
        // A redefinition makes earlier values unobservable, but the final
        // register file still reports the last value, so the register is
        // only dead for projection purposes if it is redefined later.
        if (t.instrs[i].dst == reg)
            return true;
    }
    // Reaches the end: the register is observable in the outcome. The
    // refinement check projects onto common registers, so elimination is
    // still comparable; treat as dead for rewriting purposes.
    return true;
}

bool
unguarded(const Instr &i)
{
    return i.guardReg == litmus::NoReg;
}

bool
plainMem(const Instr &i)
{
    return (i.kind == Instr::Kind::Load || i.kind == Instr::Kind::Store) &&
           unguarded(i);
}

/** The paper's side condition: programs whose fences come from the
 * Risotto x86-to-IR scheme vocabulary {Frm, Fww, Fsc, Facq, Frel}. */
bool
risottoFenceVocabulary(const Program &p)
{
    for (const Thread &t : p.threads) {
        for (const Instr &i : t.instrs) {
            if (i.kind != Instr::Kind::Fence)
                continue;
            switch (i.fence) {
              case FenceKind::Frm:
              case FenceKind::Fww:
              case FenceKind::Fsc:
              case FenceKind::Facq:
              case FenceKind::Frel:
                break;
              default:
                return false;
            }
        }
    }
    return true;
}

bool
isFenceOf(const Instr &i, std::initializer_list<FenceKind> kinds)
{
    if (i.kind != Instr::Kind::Fence || !unguarded(i))
        return false;
    for (FenceKind k : kinds)
        if (i.fence == k)
            return true;
    return false;
}

bool
isDirectionalTcgFence(const Instr &i)
{
    return i.kind == Instr::Kind::Fence && unguarded(i) &&
           memcore::isTcgFence(i.fence) && i.fence != FenceKind::Facq &&
           i.fence != FenceKind::Frel;
}

void
collectEliminations(const Program &p, std::size_t tid,
                    std::vector<TransformSite> &sites)
{
    const Thread &t = p.threads[tid];
    for (std::size_t i = 0; i + 1 < t.instrs.size(); ++i) {
        const Instr &a = t.instrs[i];
        const Instr &b = t.instrs[i + 1];

        // Plain adjacent eliminations.
        if (plainMem(a) && plainMem(b) && a.loc == b.loc) {
            if (a.kind == Instr::Kind::Load &&
                b.kind == Instr::Kind::Load &&
                regDeadAfter(t, i + 2, b.dst))
                sites.push_back({TransformKind::Rar, tid, i});
            if (a.kind == Instr::Kind::Store &&
                b.kind == Instr::Kind::Load &&
                regDeadAfter(t, i + 2, b.dst))
                sites.push_back({TransformKind::Raw, tid, i});
            if (a.kind == Instr::Kind::Store &&
                b.kind == Instr::Kind::Store)
                sites.push_back({TransformKind::Waw, tid, i});
        }

        // Fenced eliminations need a third instruction.
        if (i + 2 >= t.instrs.size())
            continue;
        const Instr &c = t.instrs[i + 2];
        if (!plainMem(a) || !plainMem(c) || a.loc != c.loc)
            continue;
        if (a.kind == Instr::Kind::Load && c.kind == Instr::Kind::Load &&
            isFenceOf(b, {FenceKind::Frm, FenceKind::Fww}) &&
            regDeadAfter(t, i + 3, c.dst))
            sites.push_back({TransformKind::FencedRar, tid, i});
        if (a.kind == Instr::Kind::Store && c.kind == Instr::Kind::Load &&
            isFenceOf(b, {FenceKind::Fsc, FenceKind::Fww}) &&
            regDeadAfter(t, i + 3, c.dst))
            sites.push_back({TransformKind::FencedRaw, tid, i});
        if (a.kind == Instr::Kind::Store && c.kind == Instr::Kind::Store &&
            isFenceOf(b, {FenceKind::Frm, FenceKind::Fww}))
            sites.push_back({TransformKind::FencedWaw, tid, i});
    }
}

} // namespace

std::vector<TransformSite>
findTransformSites(const Program &p)
{
    std::vector<TransformSite> sites;
    const bool vocab_ok = risottoFenceVocabulary(p);
    for (std::size_t tid = 0; tid < p.threads.size(); ++tid) {
        const Thread &t = p.threads[tid];

        if (vocab_ok)
            collectEliminations(p, tid, sites);

        for (std::size_t i = 0; i + 1 < t.instrs.size(); ++i) {
            const Instr &a = t.instrs[i];
            const Instr &b = t.instrs[i + 1];

            if (isDirectionalTcgFence(a) && isDirectionalTcgFence(b))
                sites.push_back({TransformKind::FenceMerge, tid, i});

            if (isDirectionalTcgFence(a) && a.fence != FenceKind::Fsc)
                sites.push_back({TransformKind::Strengthen, tid, i});

            // Reordering of independent plain accesses on different
            // locations (Section 5.4).
            if (plainMem(a) && plainMem(b) && a.loc != b.loc &&
                !usesReg(b, a.dst))
                sites.push_back({TransformKind::Reorder, tid, i});
        }
    }
    return sites;
}

std::vector<TransformSite>
findUnsoundRawAcrossAnyFence(const Program &p)
{
    // Plain RAW sites without the fence-vocabulary precondition -- the
    // rewrite QEMU's constant propagation would perform, unsound when the
    // program contains Fmr or Fwr fences (the FMR counterexample).
    std::vector<TransformSite> sites;
    for (std::size_t tid = 0; tid < p.threads.size(); ++tid) {
        const Thread &t = p.threads[tid];
        for (std::size_t i = 0; i + 1 < t.instrs.size(); ++i) {
            const Instr &a = t.instrs[i];
            const Instr &b = t.instrs[i + 1];
            if (plainMem(a) && plainMem(b) && a.loc == b.loc &&
                a.kind == Instr::Kind::Store &&
                b.kind == Instr::Kind::Load &&
                regDeadAfter(t, i + 2, b.dst))
                sites.push_back({TransformKind::Raw, tid, i});
        }
    }
    return sites;
}

litmus::Program
applyTransform(const Program &p, const TransformSite &site)
{
    fatalIf(site.tid >= p.threads.size(), "transform site out of range");
    Program out = p;
    out.name = p.name + "+" + transformKindName(site.kind);
    auto &instrs = out.threads[site.tid].instrs;
    fatalIf(site.index >= instrs.size(), "transform site out of range");

    switch (site.kind) {
      case TransformKind::Rar:
      case TransformKind::Raw:
        // Remove the second access (the read).
        instrs.erase(instrs.begin() + site.index + 1);
        break;
      case TransformKind::Waw:
        // Remove the first store.
        instrs.erase(instrs.begin() + site.index);
        break;
      case TransformKind::FencedRar:
      case TransformKind::FencedRaw:
        // Remove the access after the fence.
        instrs.erase(instrs.begin() + site.index + 2);
        break;
      case TransformKind::FencedWaw:
        // Remove the first store, keeping the fence.
        instrs.erase(instrs.begin() + site.index);
        break;
      case TransformKind::FenceMerge: {
        const FenceKind merged = memcore::mergeFences(
            instrs[site.index].fence, instrs[site.index + 1].fence);
        instrs[site.index] = Instr::fenceOf(merged);
        instrs.erase(instrs.begin() + site.index + 1);
        break;
      }
      case TransformKind::Strengthen:
        instrs[site.index] = Instr::fenceOf(FenceKind::Fsc);
        break;
      case TransformKind::Reorder:
        std::swap(instrs[site.index], instrs[site.index + 1]);
        break;
    }
    return out;
}

} // namespace risotto::mapping
