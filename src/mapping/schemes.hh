/**
 * @file
 * Litmus-level mapping schemes between the three instruction sets.
 *
 * These are the exact schemes of the paper:
 *  - Figure 2: QEMU's x86 -> TCG IR -> Arm mapping (leading Fmr/Fmw).
 *  - Figure 3: the "desired" direct x86 -> Arm mapping inferred from
 *    Arm-Cats (LDAPR/STLR/casal), shown erroneous under the original model.
 *  - Figure 7: Risotto's verified x86 -> TCG IR (trailing Frm after loads,
 *    leading Fww before stores) and TCG IR -> Arm schemes.
 *
 * Mapping a program preserves its thread/register structure so that
 * Theorem-1 refinement can compare outcomes directly.
 */

#ifndef RISOTTO_MAPPING_SCHEMES_HH
#define RISOTTO_MAPPING_SCHEMES_HH

#include <cstdint>
#include <string>

#include "litmus/program.hh"

namespace risotto::mapping
{

/** Frontend scheme: how x86 accesses become TCG IR accesses + fences. */
enum class X86ToTcgScheme
{
    /** Figure 2: Fmr before loads, Fmw before stores. */
    Qemu,
    /** No ordering fences at all (the incorrect performance oracle). */
    NoFences,
    /** Figure 7a: ld;Frm and Fww;st -- formally verified. */
    Risotto,
};

/** How a TCG RMW is lowered to Arm. */
enum class RmwLowering
{
    /** QEMU helper built on casal (GCC >= 10): RMW1-AL. */
    HelperRmw1AL,
    /** QEMU helper built on ldaxr/stlxr (GCC 9): RMW2-AL. */
    HelperRmw2AL,
    /** Risotto: direct casal translation (RMW1-AL), Section 6.3. */
    InlineCasal,
    /** Risotto fallback: DMBFF; RMW2; DMBFF (Figure 7b). */
    FencedRmw2,
};

/** Backend scheme: how TCG IR fences/accesses become Arm instructions. */
enum class TcgToArmScheme
{
    /** Figure 2 lowering: read-side fences to DMBLD, everything else to
     * DMBFF. */
    Qemu,
    /** Figure 7b lowering: DMBLD / DMBST / DMBFF by direction; Facq/Frel
     * generate nothing. */
    Risotto,
};

/** Name of a scheme for reports. */
std::string schemeName(X86ToTcgScheme scheme);
std::string schemeName(TcgToArmScheme scheme);
std::string rmwLoweringName(RmwLowering lowering);

/** Map an x86-flavoured program to a TCG IR program. */
litmus::Program mapX86ToTcg(const litmus::Program &program,
                            X86ToTcgScheme scheme);

/** Map a TCG IR program to an Arm program. */
litmus::Program mapTcgToArm(const litmus::Program &program,
                            TcgToArmScheme scheme, RmwLowering lowering);

/** Full pipeline: x86 -> TCG IR -> Arm (Figure 7c when both Risotto). */
litmus::Program mapX86ToArm(const litmus::Program &program,
                            X86ToTcgScheme frontend, TcgToArmScheme backend,
                            RmwLowering lowering);

/** Figure 3: the direct "desired" Arm-Cats mapping
 * (LDAPR / STLR / RMW1-AL / DMBFF). */
litmus::Program mapX86ToArmDesired(const litmus::Program &program);

/**
 * TCG IR fence -> RISC-V FENCE lowering. This table is the single
 * source of truth for the rv64 host: the executable backend
 * (dbt::Backend under HostIsa::Rv64), the emitted-code verifier and the
 * litmus-level mapTcgToRiscv below all consult it, so Theorem-1
 * checking and emission cannot drift.
 *
 * The Fxy vocabulary maps 1:1 onto FENCE pred,succ sets (fence r,rw ==
 * Frm and so on), so the Risotto scheme is the identity with Fsc
 * strengthened to `fence rw,rw` (Fmm) and Facq/Frel generating nothing.
 * The Qemu scheme reproduces the Figure 2 demotions in RVWMO
 * vocabulary: read-side fences (including the unsound Fmr case) to
 * `fence r,rw`, everything else to `fence rw,rw`.
 *
 * Returns FenceKind::None when no instruction should be emitted.
 */
memcore::FenceKind lowerTcgFenceToRiscv(memcore::FenceKind fence,
                                        TcgToArmScheme scheme);

/**
 * The FENCE predecessor/successor bit sets of a directional Fxy fence.
 * Bit 1 = writes, bit 2 = reads (the rv64::FenceW / rv64::FenceR
 * encoding values, kept as plain integers so this library stays free of
 * a host-ISA dependency). Panics on non-directional kinds.
 */
std::uint8_t riscvFencePred(memcore::FenceKind fence);
std::uint8_t riscvFenceSucc(memcore::FenceKind fence);

/** The Fxy fence kind of FENCE pred,succ. Panics on an empty set. */
memcore::FenceKind riscvFenceKind(std::uint8_t pred, std::uint8_t succ);

/**
 * Map a TCG IR program to a RISC-V (RVWMO) program. Fences go through
 * lowerTcgFenceToRiscv; RMWs follow @p lowering: single-instruction
 * lowerings (HelperRmw1AL/InlineCasal) become fully-ordered amo.aqrl
 * (AcqRel/AcqRel Amo), HelperRmw2AL becomes the weak lr.d.aq/sc.d.rl
 * pair (the GCC-9-style bug transplanted to RISC-V), and FencedRmw2
 * brackets a plain LR/SC pair with `fence rw,rw`.
 */
litmus::Program mapTcgToRiscv(const litmus::Program &program,
                              TcgToArmScheme scheme, RmwLowering lowering);

/**
 * Extension: the standard x86-TSO -> RISC-V (RVWMO) mapping from the
 * RISC-V specification's memory-model appendix, now built by
 * *composition* -- mapX86ToTcg(Risotto) followed by
 * mapTcgToRiscv(Risotto, InlineCasal) -- exactly the pipeline the rv64
 * DBT backend executes:
 *
 *   RMOV   -> l; fence r,rw      (trailing Frm -- like Figure 7a!)
 *   WMOV   -> fence w,w; s       (leading Fww; the load-side Frm covers
 *                                 the R->W half of TSO's store ordering)
 *   RMW    -> amo.aqrl
 *   MFENCE -> fence rw,rw        (Fmm)
 *
 * @param with_fences false gives the incorrect fence-free oracle.
 */
litmus::Program mapX86ToRiscv(const litmus::Program &program,
                              bool with_fences = true);

} // namespace risotto::mapping

#endif // RISOTTO_MAPPING_SCHEMES_HH
