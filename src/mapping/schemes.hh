/**
 * @file
 * Litmus-level mapping schemes between the three instruction sets.
 *
 * These are the exact schemes of the paper:
 *  - Figure 2: QEMU's x86 -> TCG IR -> Arm mapping (leading Fmr/Fmw).
 *  - Figure 3: the "desired" direct x86 -> Arm mapping inferred from
 *    Arm-Cats (LDAPR/STLR/casal), shown erroneous under the original model.
 *  - Figure 7: Risotto's verified x86 -> TCG IR (trailing Frm after loads,
 *    leading Fww before stores) and TCG IR -> Arm schemes.
 *
 * Mapping a program preserves its thread/register structure so that
 * Theorem-1 refinement can compare outcomes directly.
 */

#ifndef RISOTTO_MAPPING_SCHEMES_HH
#define RISOTTO_MAPPING_SCHEMES_HH

#include <string>

#include "litmus/program.hh"

namespace risotto::mapping
{

/** Frontend scheme: how x86 accesses become TCG IR accesses + fences. */
enum class X86ToTcgScheme
{
    /** Figure 2: Fmr before loads, Fmw before stores. */
    Qemu,
    /** No ordering fences at all (the incorrect performance oracle). */
    NoFences,
    /** Figure 7a: ld;Frm and Fww;st -- formally verified. */
    Risotto,
};

/** How a TCG RMW is lowered to Arm. */
enum class RmwLowering
{
    /** QEMU helper built on casal (GCC >= 10): RMW1-AL. */
    HelperRmw1AL,
    /** QEMU helper built on ldaxr/stlxr (GCC 9): RMW2-AL. */
    HelperRmw2AL,
    /** Risotto: direct casal translation (RMW1-AL), Section 6.3. */
    InlineCasal,
    /** Risotto fallback: DMBFF; RMW2; DMBFF (Figure 7b). */
    FencedRmw2,
};

/** Backend scheme: how TCG IR fences/accesses become Arm instructions. */
enum class TcgToArmScheme
{
    /** Figure 2 lowering: read-side fences to DMBLD, everything else to
     * DMBFF. */
    Qemu,
    /** Figure 7b lowering: DMBLD / DMBST / DMBFF by direction; Facq/Frel
     * generate nothing. */
    Risotto,
};

/** Name of a scheme for reports. */
std::string schemeName(X86ToTcgScheme scheme);
std::string schemeName(TcgToArmScheme scheme);
std::string rmwLoweringName(RmwLowering lowering);

/** Map an x86-flavoured program to a TCG IR program. */
litmus::Program mapX86ToTcg(const litmus::Program &program,
                            X86ToTcgScheme scheme);

/** Map a TCG IR program to an Arm program. */
litmus::Program mapTcgToArm(const litmus::Program &program,
                            TcgToArmScheme scheme, RmwLowering lowering);

/** Full pipeline: x86 -> TCG IR -> Arm (Figure 7c when both Risotto). */
litmus::Program mapX86ToArm(const litmus::Program &program,
                            X86ToTcgScheme frontend, TcgToArmScheme backend,
                            RmwLowering lowering);

/** Figure 3: the direct "desired" Arm-Cats mapping
 * (LDAPR / STLR / RMW1-AL / DMBFF). */
litmus::Program mapX86ToArmDesired(const litmus::Program &program);

/**
 * Extension: the standard x86-TSO -> RISC-V (RVWMO) mapping from the
 * RISC-V specification's memory-model appendix, expressed in the same
 * litmus vocabulary (RISC-V FENCE pred,succ sets map 1:1 onto the Fxy
 * fence kinds):
 *
 *   RMOV   -> l; fence r,rw      (trailing Frm -- like Figure 7a!)
 *   WMOV   -> fence rw,w; s      (leading Fmw)
 *   RMW    -> amo.aqrl
 *   MFENCE -> fence rw,rw        (Fmm)
 *
 * @param with_fences false gives the incorrect fence-free oracle.
 */
litmus::Program mapX86ToRiscv(const litmus::Program &program,
                              bool with_fences = true);

} // namespace risotto::mapping

#endif // RISOTTO_MAPPING_SCHEMES_HH
