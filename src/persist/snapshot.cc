#include "persist/snapshot.hh"

#include "memcore/event.hh"

namespace risotto::persist
{

namespace
{

constexpr std::uint32_t Magic = 0x43425452; // "RTBC" little-endian.

// Sanity caps: no declared count may demand more memory than a
// plausible snapshot contains, no matter what a corrupt length says.
constexpr std::size_t MaxPathMembers = 256;
constexpr std::size_t MaxSuccessors = 1u << 16;
constexpr std::size_t MaxIrOps = 1u << 20;
constexpr std::size_t MaxHostWords = 1u << 22;
constexpr std::size_t MaxProvenance = 4096;
constexpr std::size_t MaxNameLen = 256;
constexpr std::size_t MaxCertBytes = 1u << 26;
constexpr std::size_t HeaderSize = 64;
constexpr std::size_t FrameOverhead = 4 + 8; // length + checksum.

class Writer
{
  public:
    explicit Writer(std::vector<std::uint8_t> &out) : out_(out) {}

    void
    u8(std::uint8_t v)
    {
        out_.push_back(v);
    }

    void
    u16(std::uint16_t v)
    {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }

    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }

    void
    i32(std::int32_t v)
    {
        u32(static_cast<std::uint32_t>(v));
    }

    void
    i64(std::int64_t v)
    {
        u64(static_cast<std::uint64_t>(v));
    }

  private:
    std::vector<std::uint8_t> &out_;
};

/**
 * Bounds-checked little-endian cursor. Every read reports success
 * instead of throwing; a read past the limit leaves the cursor in a
 * permanently failed state so callers can check once per frame.
 */
class Cursor
{
  public:
    Cursor(const std::uint8_t *bytes, std::size_t size)
        : bytes_(bytes), size_(size)
    {
    }

    bool
    u8(std::uint8_t &v)
    {
        if (!need(1))
            return false;
        v = bytes_[pos_++];
        return true;
    }

    bool
    u16(std::uint16_t &v)
    {
        if (!need(2))
            return false;
        v = static_cast<std::uint16_t>(bytes_[pos_] |
                                       (bytes_[pos_ + 1] << 8));
        pos_ += 2;
        return true;
    }

    bool
    u32(std::uint32_t &v)
    {
        std::uint16_t lo = 0;
        std::uint16_t hi = 0;
        if (!u16(lo) || !u16(hi))
            return false;
        v = static_cast<std::uint32_t>(lo) |
            (static_cast<std::uint32_t>(hi) << 16);
        return true;
    }

    bool
    u64(std::uint64_t &v)
    {
        std::uint32_t lo = 0;
        std::uint32_t hi = 0;
        if (!u32(lo) || !u32(hi))
            return false;
        v = static_cast<std::uint64_t>(lo) |
            (static_cast<std::uint64_t>(hi) << 32);
        return true;
    }

    bool
    i32(std::int32_t &v)
    {
        std::uint32_t raw = 0;
        if (!u32(raw))
            return false;
        v = static_cast<std::int32_t>(raw);
        return true;
    }

    bool
    i64(std::int64_t &v)
    {
        std::uint64_t raw = 0;
        if (!u64(raw))
            return false;
        v = static_cast<std::int64_t>(raw);
        return true;
    }

    std::size_t remaining() const { return size_ - pos_; }

    bool
    skip(std::size_t n)
    {
        if (!need(n))
            return false;
        pos_ += n;
        return true;
    }

    const std::uint8_t *here() const { return bytes_ + pos_; }

  private:
    bool
    need(std::size_t n)
    {
        // Overflow-safe: compare against the remainder, never pos_ + n.
        if (failed_ || n > size_ - pos_) {
            failed_ = true;
            return false;
        }
        return true;
    }

    const std::uint8_t *bytes_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

void
writeFrame(std::vector<std::uint8_t> &out,
           const std::vector<std::uint8_t> &payload)
{
    Writer w(out);
    w.u32(static_cast<std::uint32_t>(payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
    w.u64(support::fnv1a64(payload));
}

void
serializeRecord(const TbRecord &record, std::vector<std::uint8_t> &out)
{
    Writer w(out);
    w.u32(static_cast<std::uint32_t>(record.path.size()));
    for (const std::uint64_t pc : record.path)
        w.u64(pc);
    w.u8(record.tier);
    w.u64(record.execCount);
    w.u32(static_cast<std::uint32_t>(record.successors.size()));
    for (const auto &[pc, count] : record.successors) {
        w.u64(pc);
        w.u64(count);
    }
    w.i32(record.numLabels);
    w.i32(record.numTemps);
    w.u32(static_cast<std::uint32_t>(record.ir.size()));
    for (const tcg::Instr &in : record.ir) {
        w.u8(static_cast<std::uint8_t>(in.op));
        w.i32(in.a);
        w.i32(in.b);
        w.i32(in.c);
        w.i32(in.d);
        w.i64(in.imm);
        w.u8(static_cast<std::uint8_t>(in.fence));
        w.u8(static_cast<std::uint8_t>(in.cond));
        w.i32(in.label);
        w.u8(static_cast<std::uint8_t>(in.helper));
    }
    w.u32(static_cast<std::uint32_t>(record.hostWords.size()));
    for (const std::uint32_t word : record.hostWords)
        w.u32(word);
    w.u32(static_cast<std::uint32_t>(record.exits.size()));
    for (const ExitSite &exit : record.exits) {
        w.u32(exit.offset);
        w.u8(static_cast<std::uint8_t>((exit.dynamic ? 1 : 0) |
                                       (exit.chainable ? 2 : 0)));
        w.u64(exit.targetPc);
    }
}

/** Parse one record payload; false leaves @p record partially filled
 * (the caller discards it). */
bool
parseRecord(Cursor &c, TbRecord &record)
{
    std::uint32_t path_count = 0;
    if (!c.u32(path_count) || path_count == 0 ||
        path_count > MaxPathMembers)
        return false;
    record.path.resize(path_count);
    for (std::uint64_t &pc : record.path)
        if (!c.u64(pc))
            return false;
    if (!c.u8(record.tier) || !c.u64(record.execCount))
        return false;
    std::uint32_t succ_count = 0;
    if (!c.u32(succ_count) || succ_count > MaxSuccessors)
        return false;
    record.successors.resize(succ_count);
    for (auto &[pc, count] : record.successors)
        if (!c.u64(pc) || !c.u64(count))
            return false;
    if (!c.i32(record.numLabels) || !c.i32(record.numTemps))
        return false;
    if (record.numLabels < 0 ||
        record.numLabels > static_cast<std::int32_t>(MaxIrOps) ||
        record.numTemps < 0 ||
        record.numTemps > static_cast<std::int32_t>(MaxIrOps))
        return false;
    std::uint32_t ir_count = 0;
    if (!c.u32(ir_count) || ir_count > MaxIrOps)
        return false;
    record.ir.resize(ir_count);
    for (tcg::Instr &in : record.ir) {
        std::uint8_t op = 0;
        std::uint8_t fence = 0;
        std::uint8_t cond = 0;
        std::uint8_t helper = 0;
        if (!c.u8(op) || !c.i32(in.a) || !c.i32(in.b) || !c.i32(in.c) ||
            !c.i32(in.d) || !c.i64(in.imm) || !c.u8(fence) ||
            !c.u8(cond) || !c.i32(in.label) || !c.u8(helper))
            return false;
        if (op > static_cast<std::uint8_t>(tcg::Op::GotoTb) ||
            fence > static_cast<std::uint8_t>(memcore::FenceKind::DmbSt) ||
            cond > static_cast<std::uint8_t>(gx86::Cond::Gt) ||
            helper > static_cast<std::uint8_t>(tcg::HelperId::HostCall))
            return false;
        in.op = static_cast<tcg::Op>(op);
        in.fence = static_cast<memcore::FenceKind>(fence);
        in.cond = static_cast<gx86::Cond>(cond);
        in.helper = static_cast<tcg::HelperId>(helper);
    }
    std::uint32_t word_count = 0;
    if (!c.u32(word_count) || word_count == 0 ||
        word_count > MaxHostWords)
        return false;
    record.hostWords.resize(word_count);
    for (std::uint32_t &word : record.hostWords)
        if (!c.u32(word))
            return false;
    std::uint32_t exit_count = 0;
    if (!c.u32(exit_count) || exit_count > word_count)
        return false;
    record.exits.resize(exit_count);
    for (ExitSite &exit : record.exits) {
        std::uint8_t flags = 0;
        if (!c.u32(exit.offset) || !c.u8(flags) || !c.u64(exit.targetPc))
            return false;
        if (exit.offset >= word_count || flags > 3)
            return false;
        exit.dynamic = (flags & 1) != 0;
        exit.chainable = (flags & 2) != 0;
    }
    return c.remaining() == 0;
}

/**
 * Read one length-prefixed frame. Returns false when even the frame
 * structure is unreadable (truncation: the caller stops). A frame whose
 * checksum fails yields ok=false but still advances past it.
 */
bool
nextFrame(Cursor &c, const std::uint8_t *&payload, std::size_t &size,
          bool &ok)
{
    std::uint32_t length = 0;
    ok = false;
    if (!c.u32(length) || length > c.remaining())
        return false;
    payload = c.here();
    size = length;
    if (!c.skip(length))
        return false;
    std::uint64_t stored = 0;
    if (!c.u64(stored))
        return false;
    ok = support::fnv1a64(payload, size) == stored;
    return true;
}

} // namespace

std::vector<std::uint8_t>
serialize(const Snapshot &snapshot)
{
    std::vector<std::uint8_t> out;
    Writer w(out);
    w.u32(Magic);
    w.u32(FormatVersion);
    out.insert(out.end(), snapshot.imageDigest.begin(),
               snapshot.imageDigest.end());
    w.u64(snapshot.configFingerprint);
    w.u32(static_cast<std::uint32_t>(snapshot.provenance.size()));
    w.u32(static_cast<std::uint32_t>(snapshot.records.size()));
    w.u64(support::fnv1a64(out.data(), out.size()));

    std::vector<std::uint8_t> payload;
    Writer p(payload);
    for (const auto &[name, value] : snapshot.provenance) {
        p.u16(static_cast<std::uint16_t>(name.size()));
        payload.insert(payload.end(), name.begin(), name.end());
        p.u64(value);
    }
    writeFrame(out, payload);

    // v2: certificate frame, possibly empty. Framed like everything
    // else so v2 readers can always skip it uniformly.
    writeFrame(out, snapshot.analysisCert);

    for (const TbRecord &record : snapshot.records) {
        payload.clear();
        serializeRecord(record, payload);
        writeFrame(out, payload);
    }
    return out;
}

Snapshot
parse(const std::vector<std::uint8_t> &bytes, ParseReport &report)
{
    Snapshot snapshot;
    report = ParseReport{};

    if (bytes.size() < HeaderSize) {
        report.error = "truncated RTBC header";
        return snapshot;
    }
    Cursor header(bytes.data(), HeaderSize);
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    std::uint32_t prov_count = 0;
    std::uint32_t record_count = 0;
    std::uint64_t stored = 0;
    header.u32(magic);
    header.u32(version);
    for (std::uint8_t &byte : snapshot.imageDigest)
        header.u8(byte);
    header.u64(snapshot.configFingerprint);
    header.u32(prov_count);
    header.u32(record_count);
    header.u64(stored);
    if (magic != Magic) {
        report.error = "not an RTBC snapshot (bad magic)";
        return snapshot;
    }
    if (support::fnv1a64(bytes.data(), HeaderSize - 8) != stored) {
        report.error = "RTBC header checksum mismatch";
        return snapshot;
    }
    // Only a checksummed header's version is trustworthy: callers use
    // it to tell "wrong version" apart from plain corruption.
    report.version = version;
    // v1 is still accepted: it lacks only the certificate frame, which
    // is optional anyway. Anything newer than what we write is refused
    // (unknown frames could shift the record stream).
    if (version != 1 && version != FormatVersion) {
        report.error = "unsupported RTBC version " +
                       std::to_string(version);
        return snapshot;
    }
    if (prov_count > MaxProvenance) {
        report.error = "implausible RTBC provenance count";
        return snapshot;
    }
    report.headerOk = true;

    Cursor c(bytes.data() + HeaderSize, bytes.size() - HeaderSize);
    const std::uint8_t *payload = nullptr;
    std::size_t size = 0;
    bool ok = false;

    // Provenance frame: optional trust -- a corrupt one is dropped
    // without affecting the records.
    if (!nextFrame(c, payload, size, ok))
        return snapshot;
    if (ok) {
        Cursor p(payload, size);
        for (std::uint32_t i = 0; i < prov_count; ++i) {
            std::uint16_t len = 0;
            if (!p.u16(len) || len > MaxNameLen || len > p.remaining())
                break;
            std::string name(reinterpret_cast<const char *>(p.here()),
                             len);
            std::uint64_t value = 0;
            if (!p.skip(len) || !p.u64(value))
                break;
            snapshot.provenance.emplace_back(std::move(name), value);
        }
    }

    // v2: certificate frame. Corruption costs the certificate only --
    // the consumer then runs full validation, never wrong claims.
    if (version >= 2) {
        if (!nextFrame(c, payload, size, ok)) {
            report.recordsTruncated += record_count;
            return snapshot;
        }
        if (ok && size > 0 && size <= MaxCertBytes)
            snapshot.analysisCert.assign(payload, payload + size);
        else if (!ok)
            report.certDropped = true;
    }

    for (std::uint32_t i = 0; i < record_count; ++i) {
        if (!nextFrame(c, payload, size, ok)) {
            // Truncated mid-frame: everything after is unreadable.
            report.recordsTruncated += record_count - i;
            break;
        }
        if (!ok) {
            ++report.recordsBadChecksum;
            continue;
        }
        Cursor r(payload, size);
        TbRecord record;
        if (!parseRecord(r, record)) {
            ++report.recordsBadBounds;
            continue;
        }
        snapshot.records.push_back(std::move(record));
        ++report.recordsLoaded;
    }
    return snapshot;
}

} // namespace risotto::persist
