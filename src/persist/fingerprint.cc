#include "persist/fingerprint.hh"

#include <vector>

#include "dbt/frontend.hh"
#include "gx86/imagefile.hh"
#include "persist/snapshot.hh"

namespace risotto::persist
{

namespace
{

void
mix(std::vector<std::uint8_t> &bytes, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

} // namespace

support::Sha256Digest
imageDigest(const gx86::GuestImage &image)
{
    return support::sha256(gx86::serializeImage(image));
}

std::uint64_t
configFingerprint(const dbt::DbtConfig &config)
{
    std::vector<std::uint8_t> bytes;
    // Deliberately a constant, not FormatVersion: the container format
    // grew an (optional, self-checksummed) certificate frame in v2
    // without changing what any v1-era config emits, so v1 snapshots
    // must keep matching. Configs that DO change emitted code (the
    // analysisElide token below) opt into a new fingerprint instead.
    mix(bytes, FingerprintSeed);
    mix(bytes, dbt::Frontend::MaxBlockInstructions);
    mix(bytes, static_cast<std::uint64_t>(config.frontend));
    mix(bytes, static_cast<std::uint64_t>(config.backend));
    mix(bytes, static_cast<std::uint64_t>(config.rmw));
    mix(bytes, config.optimizer.fenceMerging);
    mix(bytes, config.optimizer.constantFolding);
    mix(bytes, config.optimizer.memoryElimination);
    mix(bytes, config.optimizer.deadCodeElimination);
    mix(bytes, config.hostLinker);
    mix(bytes, config.chaining);
    mix(bytes, config.tier2);
    mix(bytes, config.tier2Threshold);
    mix(bytes, config.tier2MaxBlocks);
    mix(bytes, config.validateTranslations);
    // Locality-driven fence elision changes the emitted IR/host code, so
    // it must split the cache key -- but only when actually on, keeping
    // every analysis-off fingerprint byte-identical to pre-analysis
    // builds (their v1 snapshots stay loadable).
    if (config.analysis && config.analysisElide)
        mix(bytes, 0xA11AE11DEULL);
    // A non-default host backend changes every emitted word, so it is
    // part of the key -- gated like the elision token so every aarch
    // fingerprint stays byte-identical to pre-rv64 builds. Cross-host
    // snapshot/certificate refusal falls out of this mismatch.
    if (config.host != support::HostIsa::Aarch)
        mix(bytes, 0x5C00000000ULL +
                       static_cast<std::uint64_t>(config.host));
    return support::fnv1a64(bytes);
}

} // namespace risotto::persist
