/**
 * @file
 * The persistent translation cache ("RTBC" files): data model and
 * binary format.
 *
 * A snapshot captures everything the tiered pipeline needs to warm-start
 * a guest: per translated block, the region member guest pcs, the tier,
 * the post-optimization TCG IR, the emitted host words in relocatable
 * form, the exit descriptors that rebind those words to fresh chain
 * slots, and the execution profile (exec count, chain successors) that
 * lets tier-2 promotion resume immediately. Snapshots are keyed by the
 * SHA-256 of the serialized guest image and a fingerprint of the DBT
 * configuration: either mismatch means the translations are for a
 * different program or pipeline and the whole file is ignored.
 *
 * Layout (all integers little-endian):
 *
 *   offset  field
 *   0       magic "RTBC"                        (u32)
 *   4       format version                      (u32, currently 2)
 *   8       guest image SHA-256                 (32 bytes)
 *   40      config fingerprint                  (u64)
 *   48      provenance entry count              (u32)
 *   52      record count                        (u32)
 *   56      FNV-1a 64 checksum of bytes [0,56)  (u64)
 *   64      provenance section, then (v2+) one analysis-certificate
 *           frame, then records
 *
 * The provenance section and every record are framed the same way:
 * u32 payload length, payload bytes, u64 FNV-1a checksum of the
 * payload. Loading is robustness-first: every length is bounded
 * against the remaining file and a per-field sanity cap, every
 * checksum is verified before any field is trusted, and a bad frame is
 * skipped by its declared length so one corrupt record costs one
 * record, not the file. Nothing in this module throws on malformed
 * input -- parse results carry per-reason drop counts instead, and the
 * worst corruption outcome is an empty snapshot (a cold start).
 */

#ifndef RISOTTO_PERSIST_SNAPSHOT_HH
#define RISOTTO_PERSIST_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "support/checksum.hh"
#include "tcg/ir.hh"

namespace risotto::persist
{

/**
 * Format version written by serialize(). v2 adds one frame between the
 * provenance section and the records: the opaque analysis-certificate
 * payload (see analysis/certificate.hh; empty payload = no
 * certificate). v1 files remain loadable -- they simply carry no
 * certificate -- because the frame is purely additive.
 */
constexpr std::uint32_t FormatVersion = 2;

/** One relocatable exit site inside a record's host words. */
struct ExitSite
{
    /** Word offset of the exit_tb word from the record's entry. */
    std::uint32_t offset = 0;

    /** True for the shared dynamic-dispatch exit. */
    bool dynamic = false;

    /** Static exits: eligible for goto_tb chaining. */
    bool chainable = false;

    /** Static exits: target guest pc. */
    std::uint64_t targetPc = 0;
};

/** One translated block (or superblock region) of a snapshot. */
struct TbRecord
{
    /** Region member guest pcs in execution order; front() is the
     * entry the block is keyed by. Baseline blocks have exactly one. */
    std::vector<std::uint64_t> path;

    /** dbt::Tier of the translation (Baseline or Superblock),
     * widened so this header does not depend on the engine. */
    std::uint8_t tier = 1;

    /** Execution profile: resolutions counted against this block. */
    std::uint64_t execCount = 0;

    /** Chain successors observed at resolution time: (pc, count). */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> successors;

    /** Post-optimization TCG IR the host words were compiled from. */
    std::int32_t numLabels = 0;
    std::int32_t numTemps = 0;
    std::vector<tcg::Instr> ir;

    /** Emitted host words, position-independent: every exit_tb word is
     * neutralized (slot 0) and re-bound through `exits` at load time;
     * chained exits are exported un-chained. */
    std::vector<std::uint32_t> hostWords;

    std::vector<ExitSite> exits;
};

/** A full snapshot. */
struct Snapshot
{
    support::Sha256Digest imageDigest{};
    std::uint64_t configFingerprint = 0;

    /** opt.* / verify.* counters of the exporting engine: the
     * optimization and validation provenance of the stored code. */
    std::vector<std::pair<std::string, std::uint64_t>> provenance;

    /** Serialized analysis::Certificate (RACF bytes), empty when the
     * exporting engine ran without --analysis. Opaque at this layer:
     * the certificate carries its own magic, version and checksum and
     * is parsed (and its image/config keys re-checked) by the
     * consumer, so a corrupt or stale frame degrades to "no
     * certificate", never to wrong claims. */
    std::vector<std::uint8_t> analysisCert;

    std::vector<TbRecord> records;
};

/** Why parse() dropped bytes it could not trust. */
struct ParseReport
{
    /** File rejected outright (no records were even attempted). */
    bool headerOk = false;

    /** Version field of the file (set once the header checksum
     * verified; 0 otherwise). */
    std::uint32_t version = 0;

    std::uint64_t recordsLoaded = 0;
    std::uint64_t recordsBadChecksum = 0;
    std::uint64_t recordsBadBounds = 0;

    /** Records lost to a mid-file truncation (the frame structure
     * itself was unreadable, unlike recordsBadBounds where a frame
     * parsed but its fields were out of range). */
    std::uint64_t recordsTruncated = 0;

    /** A v2 certificate frame was present but failed its frame
     * checksum and was dropped (records are unaffected). */
    bool certDropped = false;

    /** Human-readable reason when headerOk is false. */
    std::string error;
};

/** Serialize @p snapshot to the RTBC byte format. */
std::vector<std::uint8_t> serialize(const Snapshot &snapshot);

/**
 * Parse an RTBC byte stream. Never throws on malformed input: corrupt
 * frames are dropped and counted in @p report, and a bad header yields
 * an empty snapshot with report.headerOk == false.
 */
Snapshot parse(const std::vector<std::uint8_t> &bytes,
               ParseReport &report);

} // namespace risotto::persist

#endif // RISOTTO_PERSIST_SNAPSHOT_HH
