/**
 * @file
 * Snapshot keying: what makes a persistent translation cache reusable.
 *
 * An RTBC file is only valid for the exact guest program and the exact
 * translation pipeline that produced it. The guest side is keyed by the
 * SHA-256 of the canonical RISO serialization of the image (so the key
 * survives re-saving the same program). The pipeline side is keyed by
 * an FNV-1a fingerprint over every DbtConfig field that changes emitted
 * code or its validation status -- mapping schemes, RMW lowering,
 * optimizer toggles, chaining, tiering parameters -- plus the snapshot
 * format version and the frontend block-size cap, so that incompatible
 * engine revisions self-invalidate instead of loading stale code.
 */

#ifndef RISOTTO_PERSIST_FINGERPRINT_HH
#define RISOTTO_PERSIST_FINGERPRINT_HH

#include <cstdint>

#include "dbt/config.hh"
#include "gx86/image.hh"
#include "support/checksum.hh"

namespace risotto::persist
{

/**
 * Seed mixed into every config fingerprint. Distinct from the RTBC
 * FormatVersion on purpose: container revisions that only add optional
 * frames (v1 -> v2 added the analysis-certificate frame) keep old
 * snapshots loadable, so they must not churn the key. Bump this only
 * when the *meaning* of existing fingerprint inputs changes.
 */
constexpr std::uint64_t FingerprintSeed = 1;

/** SHA-256 of the canonical serialized form of @p image. */
support::Sha256Digest imageDigest(const gx86::GuestImage &image);

/** Fingerprint of the translation-relevant configuration fields. */
std::uint64_t configFingerprint(const dbt::DbtConfig &config);

} // namespace risotto::persist

#endif // RISOTTO_PERSIST_FINGERPRINT_HH
