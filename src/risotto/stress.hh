/**
 * @file
 * Litmus stress running: execute a litmus test end-to-end through the
 * DBT on the randomized weak-memory machine and histogram the observed
 * outcomes -- the litmus7 counterpart to the axiomatic herd-style
 * checking in litmus/enumerate.
 *
 * The central soundness property tying the two halves of the library
 * together: every outcome the machine exhibits for a translated program
 * must be allowed by the axiomatic model of the mapped program (and, for
 * correct mappings, by the x86 model of the source).
 */

#ifndef RISOTTO_RISOTTO_STRESS_HH
#define RISOTTO_RISOTTO_STRESS_HH

#include <cstdint>
#include <map>

#include "dbt/config.hh"
#include "gx86/image.hh"
#include "litmus/outcome.hh"
#include "litmus/program.hh"

namespace risotto
{

/** Result of a stress run: outcome -> number of schedules observing it.*/
struct StressResult
{
    std::map<litmus::Outcome, std::uint64_t> histogram;

    /** Runs that hit the cycle budget (should be zero). */
    std::uint64_t unfinished = 0;

    /** Total completed runs. */
    std::uint64_t runs() const;

    /** True when some observed outcome satisfies @p cond. */
    bool observed(const litmus::Condition &cond) const;

    /** Human-readable histogram dump. */
    std::string toString() const;
};

/**
 * Compile @p program into a gx86 guest image: one role per litmus
 * thread, selected by the thread id in guest r0. Registers rN of the
 * litmus thread live in guest registers; each thread stores its final
 * registers to a result area read back by runStress.
 *
 * Litmus locations are laid out one per cache line so that weak
 * behaviours are not masked by same-line coherence.
 */
gx86::GuestImage buildStressImage(const litmus::Program &program);

/**
 * Normalize an outcome for comparison: ensure every destination register
 * of @p program appears (unexecuted guarded instructions leave registers
 * at their default 0).
 */
litmus::Outcome normalizeOutcome(const litmus::Program &program,
                                 litmus::Outcome outcome);

/**
 * Run @p program through the DBT under @p config on the randomized
 * machine for @p schedules seeds and collect the observed outcomes.
 */
StressResult runStress(const litmus::Program &program,
                       const dbt::DbtConfig &config,
                       std::uint64_t schedules = 200,
                       std::uint64_t first_seed = 1);

} // namespace risotto

#endif // RISOTTO_RISOTTO_STRESS_HH
