/**
 * @file
 * Risotto public API.
 *
 * One-stop facade over the full system:
 *  - Emulator: run x86 guest binaries on the simulated weak-memory Arm
 *    host under any of the paper's DBT variants, with the dynamic host
 *    library linker wired up.
 *  - Verification: Theorem-1 checking of mapping schemes and IR
 *    transformations over the litmus corpus (the executable counterpart
 *    of the paper's Agda proofs).
 *
 * See examples/quickstart.cc for a guided tour.
 */

#ifndef RISOTTO_RISOTTO_HH
#define RISOTTO_RISOTTO_HH

#include <memory>
#include <string>
#include <vector>

#include "dbt/dbt.hh"
#include "hostlib/hostlib.hh"
#include "linker/hostlinker.hh"
#include "litmus/check.hh"
#include "litmus/library.hh"
#include "mapping/schemes.hh"
#include "models/model.hh"
#include "workloads/workloads.hh"

namespace risotto
{

/** Options for constructing an Emulator. */
struct EmulatorOptions
{
    /** DBT variant (defaults to full Risotto). */
    dbt::DbtConfig config = dbt::DbtConfig::risotto();

    /** Load the bundled host libraries (libcrypto/libsqlite/libm) into
     * the dynamic linker. */
    bool loadStandardHostLibraries = true;

    /** Extra IDL text describing additional host-linkable functions. */
    std::string extraIdl;
};

/**
 * High-level emulator: guest image in, run results out.
 *
 * Owns the DBT engine, the host library registry and the dynamic linker;
 * images are scanned for host-linkable imports at construction.
 */
class Emulator
{
  public:
    Emulator(gx86::GuestImage image, EmulatorOptions options = {});
    ~Emulator();

    /** Register an additional native host function (before first run). */
    void addHostFunction(const std::string &name, linker::NativeFn fn);

    /** Names of imports resolved to host libraries. */
    std::vector<std::string> linkedFunctions() const;

    /** Run @p num_threads guest threads (thread id in guest r0). */
    dbt::RunResult run(std::size_t num_threads = 1,
                       machine::MachineConfig machine_config = {});

    /** Run with explicit per-thread initial registers. */
    dbt::RunResult run(const std::vector<dbt::ThreadSpec> &threads,
                       machine::MachineConfig machine_config = {});

    /** The underlying engine (stats, code buffer, ...). */
    dbt::Dbt &engine();

  private:
    void finalizeLinker();

    gx86::GuestImage image_;
    EmulatorOptions options_;
    linker::HostLibraryRegistry registry_;
    std::unique_ptr<linker::HostLinker> linker_;
    std::unique_ptr<dbt::Dbt> dbt_;
};

/** Verdict for one litmus test under one mapping pipeline. */
struct MappingVerdict
{
    std::string test;
    std::string pipeline;
    bool refines = false; ///< Theorem 1 holds for this test.
    std::size_t sourceBehaviors = 0;
    std::size_t targetBehaviors = 0;
};

/**
 * Check Theorem 1 for a full x86 -> Arm pipeline over the litmus corpus.
 * @return one verdict per corpus test.
 */
std::vector<MappingVerdict>
verifyPipeline(mapping::X86ToTcgScheme frontend,
               mapping::TcgToArmScheme backend,
               mapping::RmwLowering lowering,
               models::ArmModel::AmoRule amo_rule =
                   models::ArmModel::AmoRule::Corrected);

/** Library version string. */
std::string versionString();

} // namespace risotto

#endif // RISOTTO_RISOTTO_HH
