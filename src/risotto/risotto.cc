#include "risotto/risotto.hh"

#include "linker/idl.hh"
#include "support/error.hh"

namespace risotto
{

Emulator::Emulator(gx86::GuestImage image, EmulatorOptions options)
    : image_(std::move(image)), options_(std::move(options))
{
    if (options_.loadStandardHostLibraries)
        hostlib::registerAllLibraries(registry_);
}

Emulator::~Emulator() = default;

void
Emulator::addHostFunction(const std::string &name, linker::NativeFn fn)
{
    fatalIf(dbt_ != nullptr,
            "host functions must be registered before the first run");
    registry_.add(name, std::move(fn));
}

void
Emulator::finalizeLinker()
{
    if (dbt_)
        return;
    std::string idl_text = options_.extraIdl;
    if (options_.loadStandardHostLibraries)
        idl_text += hostlib::fullIdl();
    linker_ = std::make_unique<linker::HostLinker>(
        linker::parseIdl(idl_text), registry_);
    linker_->scanImage(image_);
    dbt_ = std::make_unique<dbt::Dbt>(image_, options_.config,
                                      linker_.get(), linker_.get());
}

std::vector<std::string>
Emulator::linkedFunctions() const
{
    if (!linker_)
        return {};
    return linker_->linkedFunctions();
}

dbt::RunResult
Emulator::run(std::size_t num_threads,
              machine::MachineConfig machine_config)
{
    std::vector<dbt::ThreadSpec> threads(num_threads);
    for (std::size_t t = 0; t < num_threads; ++t)
        threads[t].regs[0] = t;
    return run(threads, machine_config);
}

dbt::RunResult
Emulator::run(const std::vector<dbt::ThreadSpec> &threads,
              machine::MachineConfig machine_config)
{
    finalizeLinker();
    return dbt_->run(threads, machine_config);
}

dbt::Dbt &
Emulator::engine()
{
    finalizeLinker();
    return *dbt_;
}

std::vector<MappingVerdict>
verifyPipeline(mapping::X86ToTcgScheme frontend,
               mapping::TcgToArmScheme backend,
               mapping::RmwLowering lowering,
               models::ArmModel::AmoRule amo_rule)
{
    const models::X86Model x86;
    const models::ArmModel arm(amo_rule);
    const std::string pipeline = mapping::schemeName(frontend) + "/" +
                                 mapping::schemeName(backend) + "/" +
                                 mapping::rmwLoweringName(lowering);

    std::vector<MappingVerdict> out;
    for (const litmus::LitmusTest &test : litmus::x86Corpus()) {
        const litmus::Program target =
            mapping::mapX86ToArm(test.program, frontend, backend, lowering);
        const auto result =
            litmus::checkRefinement(test.program, x86, target, arm);
        MappingVerdict verdict;
        verdict.test = test.program.name;
        verdict.pipeline = pipeline;
        verdict.refines = result.correct;
        verdict.sourceBehaviors = result.sourceBehaviors;
        verdict.targetBehaviors = result.targetBehaviors;
        out.push_back(verdict);
    }
    return out;
}

std::string
versionString()
{
    return "risotto-repro 1.0.0 (ASPLOS'23 reproduction)";
}

} // namespace risotto
