#include "risotto/stress.hh"

#include <sstream>

#include "dbt/dbt.hh"
#include "gx86/assembler.hh"
#include "support/error.hh"

namespace risotto
{

using gx86::Addr;
using gx86::Assembler;
using litmus::Instr;
using litmus::Outcome;
using litmus::Program;
using litmus::Reg;
using litmus::StoreExpr;
using memcore::Access;

namespace
{

/** One litmus location per cache line. */
constexpr Addr LocBase = 0x0060'0000;
/** Final register dump area: (tid * MaxRegs + reg) * 8. */
constexpr Addr ResultBase = 0x0061'0000;
constexpr std::size_t MaxRegs = 8;

/** Litmus register -> guest register (r4..r11). */
gx86::Reg
guestReg(Reg r)
{
    fatalIf(r < 0 || r >= static_cast<Reg>(MaxRegs),
            "stress supports litmus registers r0..r7");
    return static_cast<gx86::Reg>(4 + r);
}

std::int32_t
locOffset(litmus::Loc loc)
{
    return static_cast<std::int32_t>(loc) * 64;
}

} // namespace

std::uint64_t
StressResult::runs() const
{
    std::uint64_t total = 0;
    for (const auto &[outcome, count] : histogram)
        total += count;
    return total;
}

bool
StressResult::observed(const litmus::Condition &cond) const
{
    for (const auto &[outcome, count] : histogram)
        if (cond.holds(outcome))
            return true;
    return false;
}

std::string
StressResult::toString() const
{
    std::ostringstream os;
    for (const auto &[outcome, count] : histogram)
        os << count << "x  " << outcome.toString() << "\n";
    if (unfinished)
        os << unfinished << " unfinished\n";
    return os.str();
}

litmus::Outcome
normalizeOutcome(const Program &program, Outcome outcome)
{
    outcome.regs.resize(program.threads.size());
    for (std::size_t t = 0; t < program.threads.size(); ++t)
        for (Reg r : program.threadRegisters(t))
            outcome.regs[t].emplace(r, 0);
    return outcome;
}

gx86::GuestImage
buildStressImage(const Program &program)
{
    fatalIf(program.threads.size() > 8,
            "stress supports at most 8 litmus threads");
    Assembler a;

    // Initial values for non-zero-initialized locations are written by
    // thread 0 before a fence... simpler and race-free: bake them into
    // the image would need data at LocBase; instead require zero inits.
    for (const auto &[loc, val] : program.init)
        fatalIf(val != 0, "stress requires zero-initialized locations");

    a.defineSymbol("main");
    // Dispatch on the thread id in r0.
    std::vector<Assembler::Label> entries;
    for (std::size_t t = 0; t < program.threads.size(); ++t)
        entries.push_back(a.newLabel());
    for (std::size_t t = 1; t < program.threads.size(); ++t) {
        a.cmpri(0, static_cast<std::int32_t>(t));
        a.jcc(gx86::Cond::Eq, entries[t]);
    }
    a.jmp(entries[0]);

    for (std::size_t t = 0; t < program.threads.size(); ++t) {
        a.bind(entries[t]);
        a.movri(3, static_cast<std::int64_t>(LocBase));
        for (const Instr &i : program.threads[t].instrs) {
            Assembler::Label skip{};
            const bool guarded = i.guardReg != litmus::NoReg;
            if (guarded) {
                skip = a.newLabel();
                a.cmpri(guestReg(i.guardReg),
                        static_cast<std::int32_t>(i.guardVal));
                a.jcc(gx86::Cond::Ne, skip);
            }
            switch (i.kind) {
              case Instr::Kind::Load:
                fatalIf(i.readAccess != Access::Plain,
                        "stress requires x86-flavoured programs");
                a.load(guestReg(i.dst), 3, locOffset(i.loc));
                break;
              case Instr::Kind::Store:
                fatalIf(i.writeAccess != Access::Plain,
                        "stress requires x86-flavoured programs");
                switch (i.value.kind) {
                  case StoreExpr::Kind::Const:
                    a.storei(3, locOffset(i.loc),
                             static_cast<std::int32_t>(i.value.konst));
                    break;
                  case StoreExpr::Kind::FromReg:
                    a.store(3, locOffset(i.loc), guestReg(i.value.reg));
                    break;
                  case StoreExpr::Kind::FalseDep:
                    a.movrr(2, guestReg(i.value.reg));
                    a.xor_(2, 2);
                    a.store(3, locOffset(i.loc), 2);
                    break;
                }
                break;
              case Instr::Kind::Rmw:
                // x86 LOCK CMPXCHG: expected in r0, new value in r2.
                a.movri(0, i.expected);
                a.movri(2, i.desired);
                a.lockCmpxchg(3, locOffset(i.loc), 2);
                a.movrr(guestReg(i.dst), 0);
                break;
              case Instr::Kind::Fence:
                fatalIf(i.fence != memcore::FenceKind::MFence,
                        "stress requires x86-flavoured programs");
                a.mfence();
                break;
            }
            if (guarded)
                a.bind(skip);
        }
        // Dump this thread's registers to the result area.
        a.movri(3, static_cast<std::int64_t>(ResultBase));
        for (Reg r : program.threadRegisters(t)) {
            const std::int32_t slot = static_cast<std::int32_t>(
                (t * MaxRegs + static_cast<std::size_t>(r)) * 8);
            a.store(3, slot, guestReg(r));
        }
        a.hlt();
    }
    return a.finish("main");
}

StressResult
runStress(const Program &program, const dbt::DbtConfig &config,
          std::uint64_t schedules, std::uint64_t first_seed)
{
    const gx86::GuestImage image = buildStressImage(program);
    dbt::Dbt engine(image, config);

    std::vector<dbt::ThreadSpec> threads(program.threads.size());
    for (std::size_t t = 0; t < threads.size(); ++t)
        threads[t].regs[0] = t;

    StressResult result;
    for (std::uint64_t s = 0; s < schedules; ++s) {
        machine::MachineConfig mc;
        mc.randomize = true;
        mc.seed = first_seed + s;
        const auto run = engine.run(threads, mc, 50'000'000);
        if (!run.finished) {
            ++result.unfinished;
            continue;
        }
        Outcome outcome;
        outcome.regs.resize(program.threads.size());
        for (std::size_t t = 0; t < program.threads.size(); ++t) {
            for (Reg r : program.threadRegisters(t)) {
                const Addr slot =
                    ResultBase +
                    (t * MaxRegs + static_cast<std::size_t>(r)) * 8;
                outcome.regs[t][r] = static_cast<litmus::Val>(
                    run.memory->load64(slot));
            }
        }
        for (litmus::Loc loc : program.locations())
            outcome.memory[loc] = static_cast<litmus::Val>(
                run.memory->load64(LocBase + loc * 64));
        ++result.histogram[outcome];
    }
    return result;
}

} // namespace risotto
