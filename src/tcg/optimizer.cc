#include "tcg/optimizer.hh"

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "memcore/fencealg.hh"

namespace risotto::tcg
{

using memcore::FenceKind;

namespace
{

TempId
writtenTemp(const Instr &i)
{
    return instrWrites(i);
}

bool
isMemoryOp(const Instr &i)
{
    return opLoads(i.op) || opStores(i.op) ||
           i.op == Op::CallHelper; // Helpers may touch memory.
}

} // namespace

std::size_t
passFenceMerge(Block &block)
{
    std::size_t merged = 0;
    auto &code = block.instrs;
    std::size_t pending = code.size(); // Index of last unmerged fence.
    for (std::size_t i = 0; i < code.size(); ++i) {
        Instr &instr = code[i];
        if (instr.op == Op::Mb) {
            if (pending == code.size()) {
                pending = i;
                continue;
            }
            // Merge this fence into the pending one; the merged fence
            // stays at the earlier position (Section 6.1).
            code[pending].fence =
                memcore::mergeFences(code[pending].fence, instr.fence);
            instr.op = Op::MovI; // Neutralize; dead-code removes below.
            instr.a = NoTemp;
            ++merged;
            continue;
        }
        // Fences only commute with non-memory straight-line ops.
        if (isMemoryOp(instr) || instr.op == Op::SetLabel ||
            instr.op == Op::Br || instr.op == Op::BrCond ||
            instr.op == Op::ExitTb || instr.op == Op::GotoTb)
            pending = code.size();
    }
    // Drop the neutralized placeholders.
    std::vector<Instr> out;
    out.reserve(code.size());
    for (const Instr &instr : code)
        if (!(instr.op == Op::MovI && instr.a == NoTemp))
            out.push_back(instr);
    code = std::move(out);
    return merged;
}

std::size_t
passConstantFold(Block &block)
{
    std::size_t rewritten = 0;
    std::map<TempId, std::int64_t> known;
    std::vector<Instr> out;
    out.reserve(block.instrs.size());

    auto lookup = [&](TempId t) -> std::optional<std::int64_t> {
        auto it = known.find(t);
        if (it == known.end())
            return std::nullopt;
        return it->second;
    };
    auto forget = [&](TempId t) {
        if (t != NoTemp)
            known.erase(t);
    };

    for (Instr instr : block.instrs) {
        switch (instr.op) {
          case Op::SetLabel:
            // Join point: a branch may arrive with different values.
            known.clear();
            out.push_back(instr);
            continue;
          case Op::MovI:
            known[instr.a] = instr.imm;
            out.push_back(instr);
            continue;
          case Op::Mov:
            if (auto v = lookup(instr.b)) {
                instr = build::movi(instr.a, *v);
                ++rewritten;
                known[instr.a] = instr.imm;
            } else {
                forget(instr.a);
            }
            out.push_back(instr);
            continue;
          case Op::Add:
          case Op::Sub:
          case Op::And:
          case Op::Or:
          case Op::Xor:
          case Op::Mul: {
            const auto vb = lookup(instr.b);
            const auto vc = lookup(instr.c);
            std::optional<std::int64_t> folded;
            if (vb && vc) {
                // Fold in unsigned arithmetic: guest integers wrap
                // (two's complement); signed overflow would be UB here.
                const auto ub = static_cast<std::uint64_t>(*vb);
                const auto uc = static_cast<std::uint64_t>(*vc);
                switch (instr.op) {
                  case Op::Add:
                    folded = static_cast<std::int64_t>(ub + uc);
                    break;
                  case Op::Sub:
                    folded = static_cast<std::int64_t>(ub - uc);
                    break;
                  case Op::And: folded = *vb & *vc; break;
                  case Op::Or: folded = *vb | *vc; break;
                  case Op::Xor: folded = *vb ^ *vc; break;
                  case Op::Mul:
                    folded = static_cast<std::int64_t>(ub * uc);
                    break;
                  default: break;
                }
            } else if (instr.op == Op::Mul &&
                       ((vb && *vb == 0) || (vc && *vc == 0))) {
                // False-dependency elimination: x * 0 -> 0.
                folded = 0;
            } else if (instr.op == Op::And &&
                       ((vb && *vb == 0) || (vc && *vc == 0))) {
                folded = 0;
            } else if ((instr.op == Op::Sub || instr.op == Op::Xor) &&
                       instr.b == instr.c) {
                // x - x and x ^ x: statically zero, drops the dependency.
                folded = 0;
            }
            if (folded) {
                instr = build::movi(instr.a, *folded);
                ++rewritten;
                known[instr.a] = *folded;
            } else {
                forget(instr.a);
            }
            out.push_back(instr);
            continue;
          }
          case Op::AddI:
            if (auto v = lookup(instr.b)) {
                instr = build::movi(
                    instr.a, static_cast<std::int64_t>(
                                 static_cast<std::uint64_t>(*v) +
                                 static_cast<std::uint64_t>(instr.imm)));
                ++rewritten;
                known[instr.a] = instr.imm;
            } else {
                forget(instr.a);
            }
            out.push_back(instr);
            continue;
          case Op::Shl:
          case Op::Shr:
            if (auto v = lookup(instr.b)) {
                const std::int64_t folded =
                    instr.op == Op::Shl
                        ? static_cast<std::int64_t>(
                              static_cast<std::uint64_t>(*v)
                              << (instr.imm & 63))
                        : static_cast<std::int64_t>(
                              static_cast<std::uint64_t>(*v) >>
                              (instr.imm & 63));
                instr = build::movi(instr.a, folded);
                ++rewritten;
                known[instr.a] = folded;
            } else {
                forget(instr.a);
            }
            out.push_back(instr);
            continue;
          case Op::SetCond: {
            const auto vb = lookup(instr.b);
            const auto vc = lookup(instr.c);
            if (vb && vc) {
                const std::uint64_t diff =
                    static_cast<std::uint64_t>(*vb) -
                    static_cast<std::uint64_t>(*vc);
                const bool zf = diff == 0;
                const bool sf = static_cast<std::int64_t>(diff) < 0;
                instr = build::movi(instr.a,
                                    gx86::condHolds(instr.cond, zf, sf));
                ++rewritten;
                known[instr.a] = instr.imm;
            } else {
                forget(instr.a);
            }
            out.push_back(instr);
            continue;
          }
          case Op::BrCond: {
            const auto vb = lookup(instr.b);
            const auto vc = lookup(instr.c);
            if (vb && vc) {
                const std::uint64_t diff =
                    static_cast<std::uint64_t>(*vb) -
                    static_cast<std::uint64_t>(*vc);
                const bool zf = diff == 0;
                const bool sf = static_cast<std::int64_t>(diff) < 0;
                ++rewritten;
                if (gx86::condHolds(instr.cond, zf, sf)) {
                    out.push_back(build::br(instr.label));
                } // Not taken: drop entirely.
                continue;
            }
            out.push_back(instr);
            continue;
          }
          case Op::CallHelper:
            // Helpers access guest state directly (CPUState in QEMU):
            // every global may be read or written by the callee.
            for (TempId t = 0; t < FirstLocalTemp; ++t)
                known.erase(t);
            forget(writtenTemp(instr));
            out.push_back(instr);
            continue;
          default:
            forget(writtenTemp(instr));
            out.push_back(instr);
            continue;
        }
    }
    block.instrs = std::move(out);
    return rewritten;
}

std::size_t
passMemoryElim(Block &block)
{
    // Precondition: the Risotto fence vocabulary (Section 4.1). With Fmr
    // or Fwr fences present the eliminations are unsound (FMR example).
    for (const Instr &i : block.instrs) {
        if (i.op != Op::Mb)
            continue;
        switch (i.fence) {
          case FenceKind::Frm:
          case FenceKind::Fww:
          case FenceKind::Fsc:
          case FenceKind::Facq:
          case FenceKind::Frel:
            break;
          default:
            return 0;
        }
    }
    // Elimination works at straight-line segment granularity: the scan
    // below never pairs accesses across a label or branch, so any pair it
    // rewrites executes consecutively on every path that reaches the
    // first access. That keeps superblock-sized regions (which contain
    // internal control flow) eligible.

    std::size_t eliminated = 0;
    auto &code = block.instrs;
    for (std::size_t i = 0; i < code.size(); ++i) {
        const Instr first = code[i];
        if (first.op != Op::Ld && first.op != Op::St)
            continue;
        // Find the next memory op, collecting fences in between and
        // verifying no temp the rewrite depends on is clobbered.
        std::set<FenceKind> fences;
        bool blocked = false;
        std::size_t j = i + 1;
        for (; j < code.size(); ++j) {
            const Instr &mid = code[j];
            if (mid.op == Op::Mb) {
                if (mid.fence != FenceKind::Facq &&
                    mid.fence != FenceKind::Frel)
                    fences.insert(mid.fence);
                continue;
            }
            if (isMemoryOp(mid) || mid.op == Op::ExitTb ||
                mid.op == Op::GotoTb || mid.op == Op::SetLabel ||
                mid.op == Op::Br || mid.op == Op::BrCond)
                break;
            // Pure op: fine unless it clobbers the base or source value.
            const TempId w = writtenTemp(mid);
            if (w != NoTemp && (w == first.b || w == first.a)) {
                blocked = true;
                break;
            }
        }
        if (blocked || j >= code.size())
            continue;
        Instr &second = code[j];
        if ((second.op != Op::Ld && second.op != Op::St) ||
            second.b != first.b || second.imm != first.imm)
            continue;

        auto fencesWithin = [&](std::initializer_list<FenceKind> allowed) {
            for (FenceKind f : fences) {
                bool ok = false;
                for (FenceKind a : allowed)
                    if (f == a)
                        ok = true;
                if (!ok)
                    return false;
            }
            return true;
        };

        if (first.op == Op::Ld && second.op == Op::Ld &&
            fencesWithin({FenceKind::Frm, FenceKind::Fww})) {
            // (F-)RAR: the second load returns the first one's value.
            second = build::mov(second.a, first.a);
            ++eliminated;
        } else if (first.op == Op::St && second.op == Op::Ld &&
                   fencesWithin({FenceKind::Fsc, FenceKind::Fww})) {
            // (F-)RAW: the load observes the store's value.
            second = build::mov(second.a, first.a);
            ++eliminated;
        } else if (first.op == Op::St && second.op == Op::St &&
                   fencesWithin({FenceKind::Frm, FenceKind::Fww})) {
            // (F-)WAW: the first store is overwritten.
            code.erase(code.begin() + static_cast<std::ptrdiff_t>(i));
            ++eliminated;
            --i; // Re-examine from the same position.
        }
    }
    return eliminated;
}

std::size_t
passDeadCode(Block &block)
{
    // Iterate backward liveness to a fixpoint (labels as join points).
    // Liveness is kept in dense byte-vectors indexed by TempId: this
    // pass runs on every translated block (tier 0.5 included) and the
    // tree-set version dominated cold translation time.
    auto &code = block.instrs;
    std::size_t removed = 0;

    std::size_t labels = static_cast<std::size_t>(
        block.numLabels > 0 ? block.numLabels : 0);
    for (const Instr &i : code)
        if ((i.op == Op::SetLabel || i.op == Op::Br ||
             i.op == Op::BrCond) &&
            i.label >= 0 &&
            static_cast<std::size_t>(i.label) >= labels)
            labels = static_cast<std::size_t>(i.label) + 1;
    const std::size_t temps =
        static_cast<std::size_t>(block.numTemps > FirstLocalTemp
                                     ? block.numTemps
                                     : FirstLocalTemp);

    std::vector<char> live(temps, 0);
    std::vector<char> label_live(labels * temps, 0);
    std::vector<bool> keep;
    // Globals (guest registers and flags) are live at block exits.
    auto add_globals = [&]() {
        std::fill(live.begin(), live.begin() + FirstLocalTemp, 1);
    };
    bool changed = true;
    while (changed) {
        changed = false;
        std::fill(live.begin(), live.end(), 0);
        add_globals();
        keep.assign(code.size(), true);
        for (std::size_t n = code.size(); n-- > 0;) {
            const Instr &i = code[n];
            if (i.op == Op::ExitTb || i.op == Op::GotoTb) {
                // Fresh exit point: reset to globals-live.
                std::fill(live.begin(), live.end(), 0);
                add_globals();
            }
            if (i.op == Op::CallHelper) {
                // Helpers read guest state directly (e.g. the CAS
                // helper's expected value arrives in guest r0): all
                // globals are live at the call.
                add_globals();
            }
            if (i.op == Op::SetLabel) {
                char *at_label =
                    &label_live[static_cast<std::size_t>(i.label) *
                                temps];
                for (std::size_t t = 0; t < temps; ++t)
                    if (live[t] != 0 && at_label[t] == 0) {
                        at_label[t] = 1;
                        changed = true;
                    }
                continue;
            }
            if (i.op == Op::Br || i.op == Op::BrCond) {
                const char *target =
                    &label_live[static_cast<std::size_t>(i.label) *
                                temps];
                for (std::size_t t = 0; t < temps; ++t)
                    if (target[t] != 0)
                        live[t] = 1;
                if (i.op == Op::Br) {
                    // Code after an unconditional branch is only reached
                    // via labels; liveness continues from the branch
                    // target set only.
                }
            }
            const TempId w = writtenTemp(i);
            if (opIsPure(i.op) && w != NoTemp &&
                live[static_cast<std::size_t>(w)] == 0) {
                keep[n] = false;
                continue;
            }
            if (w != NoTemp)
                live[static_cast<std::size_t>(w)] = 0;
            TempId reads[MaxInstrReads];
            const std::size_t nreads = instrReadsInto(i, reads);
            for (std::size_t r = 0; r < nreads; ++r)
                live[static_cast<std::size_t>(reads[r])] = 1;
        }
    }

    std::vector<Instr> out;
    out.reserve(code.size());
    for (std::size_t n = 0; n < code.size(); ++n) {
        if (keep[n])
            out.push_back(code[n]);
        else
            ++removed;
    }
    code = std::move(out);
    return removed;
}

void
optimize(Block &block, const OptimizerConfig &config, StatSet *stats)
{
    auto bump = [&](const char *name, std::size_t n) {
        if (stats && n)
            stats->bump(name, n);
    };
    if (config.constantFolding)
        bump("opt.constants_folded", passConstantFold(block));
    if (config.memoryElimination)
        bump("opt.mem_ops_eliminated", passMemoryElim(block));
    if (config.constantFolding)
        bump("opt.constants_folded", passConstantFold(block));
    if (config.fenceMerging)
        bump("opt.fences_merged", passFenceMerge(block));
    if (config.deadCodeElimination)
        bump("opt.dead_ops_removed", passDeadCode(block));
}

SuperblockOptResult
optimizeSuperblock(Block &block, const OptimizerConfig &config,
                   StatSet *stats)
{
    SuperblockOptResult result;
    if (config.constantFolding)
        passConstantFold(block);
    if (config.memoryElimination)
        result.memOpsEliminated += passMemoryElim(block);
    if (config.constantFolding)
        passConstantFold(block);
    if (config.fenceMerging)
        result.fencesRemoved += passFenceMerge(block);
    if (config.deadCodeElimination)
        passDeadCode(block);
    if (stats) {
        if (result.fencesRemoved)
            stats->bump("opt.xblock_fences_removed", result.fencesRemoved);
        if (result.memOpsEliminated)
            stats->bump("opt.xblock_mem_ops_eliminated",
                        result.memOpsEliminated);
    }
    return result;
}

} // namespace risotto::tcg
