/**
 * @file
 * The TCG-like intermediate representation.
 *
 * Translation blocks (TBs) are straight-line op sequences with local
 * labels (for RMW retry loops and conditional skips), typed temporaries
 * (globals 0..17 shadow the guest register file plus the ZF/SF flags;
 * higher ids are block-local), the full directional fence vocabulary of
 * the paper (Figure 6), and explicit atomic ops (Cas/Xadd) that the
 * backend lowers per the configured scheme (helper call, inline casal, or
 * fenced exclusive pair).
 */

#ifndef RISOTTO_TCG_IR_HH
#define RISOTTO_TCG_IR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gx86/isa.hh"
#include "memcore/event.hh"

namespace risotto::tcg
{

/** Temporary id. 0..15 = guest registers, 16 = ZF, 17 = SF, rest local. */
using TempId = std::int32_t;

constexpr TempId TempZf = 16;
constexpr TempId TempSf = 17;
constexpr TempId FirstLocalTemp = 18;
constexpr TempId NoTemp = -1;

/** Runtime helper identifiers (the QEMU-style helper function table). */
enum class HelperId : std::uint8_t
{
    None,
    CasHelper,    ///< QEMU-style RMW helper: full-fence CAS.
    XaddHelper,   ///< QEMU-style fetch-add helper.
    FAdd64,       ///< Soft-float helpers (QEMU emulates FP in software).
    FSub64,
    FMul64,
    FDiv64,
    FSqrt64,
    CvtIF64,
    CvtFI64,
    Syscall,      ///< Guest syscall dispatch.
    HostCall,     ///< Dynamic host linker: call a native library function.
};

/** Name of a helper for IR dumps. */
std::string helperName(HelperId id);

/** IR opcodes. */
enum class Op : std::uint8_t
{
    MovI,     ///< a <- imm
    Mov,      ///< a <- b
    Ld,       ///< a <- mem64[b + imm]
    St,       ///< mem64[b + imm] <- a
    Ld8,      ///< a <- zx(mem8[b + imm])
    St8,      ///< mem8[b + imm] <- a (low byte)
    Add,      ///< a <- b + c
    Sub,      ///< a <- b - c
    And,      ///< a <- b & c
    Or,       ///< a <- b | c
    Xor,      ///< a <- b ^ c
    Mul,      ///< a <- b * c
    Udiv,     ///< a <- b / c (unsigned; guest faults on zero)
    Shl,      ///< a <- b << (imm & 63)
    Shr,      ///< a <- b >> (imm & 63)
    AddI,     ///< a <- b + imm
    SetCond,  ///< a <- (b cond c) ? 1 : 0
    Mb,       ///< memory fence of kind `fence`
    Cas,      ///< a(old) <- CAS(mem[b + imm], expect=c, new=d); SC RMW
    Xadd,     ///< a(old) <- fetch_add(mem[b + imm], d); SC RMW
    SetLabel, ///< bind local label `label`
    Br,       ///< unconditional branch to local label
    BrCond,   ///< if (b cond c) branch to local label
    CallHelper, ///< invoke helper `helper` (a=dst, b/c=args, imm=extra)
    ExitTb,   ///< leave TB; next guest pc in imm (or temp b if b != NoTemp)
    GotoTb,   ///< direct-chained jump to guest pc imm
};

/** One IR operation. */
struct Instr
{
    Op op = Op::MovI;
    TempId a = NoTemp;
    TempId b = NoTemp;
    TempId c = NoTemp;
    TempId d = NoTemp;
    std::int64_t imm = 0;
    memcore::FenceKind fence = memcore::FenceKind::None;
    gx86::Cond cond = gx86::Cond::Eq;
    std::int32_t label = -1;
    HelperId helper = HelperId::None;

    /** Rendering, e.g. "t18 = ld [t3 + 8]". */
    std::string toString() const;
};

/** A translation block. */
struct Block
{
    /** Guest pc this block was translated from. */
    std::uint64_t guestPc = 0;

    std::vector<Instr> instrs;

    /** Number of local labels allocated. */
    std::int32_t numLabels = 0;

    /** Number of temps allocated (globals included). */
    TempId numTemps = FirstLocalTemp;

    /** Allocate a fresh local temp. */
    TempId newTemp() { return numTemps++; }

    /** Allocate a fresh local label. */
    std::int32_t newLabel() { return numLabels++; }

    /** Multi-line dump. */
    std::string toString() const;
};

/** True when the op reads guest memory. */
bool opLoads(Op op);

/** True when the op writes guest memory. */
bool opStores(Op op);

/** True when the op has no side effects beyond writing temp `a`. */
bool opIsPure(Op op);

/** Temps read by @p instr (operands, not the written destination). */
std::vector<TempId> instrReads(const Instr &instr);

/** Most temps any instruction reads (Cas: b, c, d). */
constexpr std::size_t MaxInstrReads = 3;

/** Allocation-free instrReads: writes the temps into @p out, returns
 * how many. Hot-path variant for the per-op liveness walk. */
std::size_t instrReadsInto(const Instr &instr, TempId out[MaxInstrReads]);

/** Temp written by @p instr, or NoTemp. */
TempId instrWrites(const Instr &instr);

/** Builder helpers for constructing IR instructions tersely. */
namespace build
{

Instr movi(TempId a, std::int64_t imm);
Instr mov(TempId a, TempId b);
Instr ld(TempId a, TempId base, std::int64_t off);
Instr st(TempId val, TempId base, std::int64_t off);
Instr ld8(TempId a, TempId base, std::int64_t off);
Instr st8(TempId val, TempId base, std::int64_t off);
Instr binop(Op op, TempId a, TempId b, TempId c);
Instr addi(TempId a, TempId b, std::int64_t imm);
Instr shifti(Op op, TempId a, TempId b, std::int64_t amount);
Instr setcond(gx86::Cond cond, TempId a, TempId b, TempId c);
Instr mb(memcore::FenceKind kind);
Instr cas(TempId old, TempId base, std::int64_t off, TempId expect,
          TempId desired);
Instr xadd(TempId old, TempId base, std::int64_t off, TempId addend);
Instr setLabel(std::int32_t label);
Instr br(std::int32_t label);
Instr brcond(gx86::Cond cond, TempId b, TempId c, std::int32_t label);
Instr callHelper(HelperId id, TempId dst, TempId arg0, TempId arg1,
                 std::int64_t extra = 0);
Instr exitTb(std::uint64_t next_pc);
Instr exitTbDynamic(TempId pc_temp);
Instr gotoTb(std::uint64_t next_pc);

} // namespace build

} // namespace risotto::tcg

#endif // RISOTTO_TCG_IR_HH
