/**
 * @file
 * TCG IR optimizer.
 *
 * Implements the intermediate optimizations the paper verifies
 * (Section 5.4 and Section 6.1): fence merging, constant propagation and
 * folding (including false-dependency elimination such as x*0 -> 0),
 * redundant memory-access elimination with the Figure 10 side conditions,
 * and dead-code elimination. Every pass is exposed individually for
 * testing and ablation benchmarking.
 */

#ifndef RISOTTO_TCG_OPTIMIZER_HH
#define RISOTTO_TCG_OPTIMIZER_HH

#include "support/stats.hh"
#include "tcg/ir.hh"

namespace risotto::tcg
{

using risotto::StatSet;

/** Pass toggles (ablation knobs D2 in DESIGN.md). */
struct OptimizerConfig
{
    bool fenceMerging = true;
    bool constantFolding = true;
    bool memoryElimination = true;
    bool deadCodeElimination = true;
};

/** Run the configured pipeline over @p block; bump counters in @p stats. */
void optimize(Block &block, const OptimizerConfig &config,
              StatSet *stats = nullptr);

/** What the superblock pipeline gained beyond per-block optimization. */
struct SuperblockOptResult
{
    /** Fences removed by merging across former block seams. */
    std::size_t fencesRemoved = 0;

    /** Memory accesses eliminated across former block seams. */
    std::size_t memOpsEliminated = 0;
};

/**
 * Run the pipeline over a spliced superblock whose constituent blocks
 * were already individually optimized: everything removed here is a
 * cross-block gain. Bumps opt.xblock_* counters in @p stats (the
 * per-block opt.* counters are left alone).
 */
SuperblockOptResult optimizeSuperblock(Block &block,
                                       const OptimizerConfig &config,
                                       StatSet *stats = nullptr);

/**
 * Merge adjacent fences separated only by non-memory ops into the weakest
 * single fence covering both, placed at the earlier position.
 * @return number of fences removed by merging.
 */
std::size_t passFenceMerge(Block &block);

/**
 * Forward constant propagation and folding; also folds x*0, x-x, x^x to
 * constants (false-dependency elimination) and known-condition branches.
 * @return number of instructions rewritten.
 */
std::size_t passConstantFold(Block &block);

/**
 * Redundant memory-access elimination (RAR/RAW/WAW and their fenced forms
 * per Figure 10), at straight-line segment granularity: pairs are never
 * formed across a label or branch, so blocks with internal control flow
 * (superblocks) stay eligible. Only applies when the block's fence
 * vocabulary is the one the Risotto frontend generates
 * ({Frm, Fww, Fsc, Facq, Frel}) -- the precondition under which the
 * transformations are verified.
 * @return number of memory operations eliminated.
 */
std::size_t passMemoryElim(Block &block);

/**
 * Backward dead-code elimination over pure ops (loads are kept: they can
 * fault and removing reads can weaken concurrent orderings).
 * @return number of instructions removed.
 */
std::size_t passDeadCode(Block &block);

} // namespace risotto::tcg

#endif // RISOTTO_TCG_OPTIMIZER_HH
