/**
 * @file
 * Pooled storage for TCG IR blocks.
 *
 * Translating a block allocates an instruction vector that grows to a
 * few hundred ops and is then thrown away once the backend has emitted
 * host code. On the DBT hot path (guarded retranslation, superblock
 * formation) that is one malloc/free churn cycle per block. BlockArena
 * keeps the freed vectors -- capacity intact -- on a small free list
 * and hands them back to the next acquire(), so steady-state
 * translation performs no instruction-storage allocation at all.
 *
 * The arena is deliberately not thread-safe: each Frontend owns one,
 * and parallel sweeps construct a Frontend (and thus an arena) per
 * task.
 */

#ifndef RISOTTO_TCG_ARENA_HH
#define RISOTTO_TCG_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "tcg/ir.hh"

namespace risotto::tcg
{

/** Free-list pool of IR instruction vectors (one per Frontend). */
class BlockArena
{
  public:
    /** Vectors kept on the free list; beyond this, release() frees. */
    static constexpr std::size_t MaxPooled = 16;

    /** Initial capacity for a vector minted from an empty pool. */
    static constexpr std::size_t InitialCapacity = 256;

    /** Fresh Block whose instruction storage comes from the pool. */
    Block
    acquire(std::uint64_t guest_pc)
    {
        Block block;
        block.guestPc = guest_pc;
        if (!pool_.empty()) {
            block.instrs = std::move(pool_.back());
            pool_.pop_back();
            block.instrs.clear(); // Capacity survives the clear.
            ++reuses_;
        } else {
            block.instrs.reserve(InitialCapacity);
            ++mints_;
        }
        return block;
    }

    /** Return a dead block's instruction storage to the pool. */
    void
    release(Block &&block)
    {
        if (pool_.size() < MaxPooled && block.instrs.capacity() > 0)
            pool_.push_back(std::move(block.instrs));
        block.instrs = {};
    }

    /** Blocks served from pooled storage (allocation-free). */
    std::uint64_t reuses() const { return reuses_; }

    /** Blocks that had to allocate fresh storage. */
    std::uint64_t mints() const { return mints_; }

  private:
    std::vector<std::vector<Instr>> pool_;
    std::uint64_t reuses_ = 0;
    std::uint64_t mints_ = 0;
};

} // namespace risotto::tcg

#endif // RISOTTO_TCG_ARENA_HH
