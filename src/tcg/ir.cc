#include "tcg/ir.hh"

#include <sstream>

#include "support/error.hh"

namespace risotto::tcg
{

std::string
helperName(HelperId id)
{
    switch (id) {
      case HelperId::None: return "none";
      case HelperId::CasHelper: return "cas_helper";
      case HelperId::XaddHelper: return "xadd_helper";
      case HelperId::FAdd64: return "fadd64";
      case HelperId::FSub64: return "fsub64";
      case HelperId::FMul64: return "fmul64";
      case HelperId::FDiv64: return "fdiv64";
      case HelperId::FSqrt64: return "fsqrt64";
      case HelperId::CvtIF64: return "cvtif64";
      case HelperId::CvtFI64: return "cvtfi64";
      case HelperId::Syscall: return "syscall";
      case HelperId::HostCall: return "hostcall";
    }
    panic("unknown helper id");
}

bool
opLoads(Op op)
{
    return op == Op::Ld || op == Op::Ld8 || op == Op::Cas ||
           op == Op::Xadd;
}

bool
opStores(Op op)
{
    return op == Op::St || op == Op::St8 || op == Op::Cas ||
           op == Op::Xadd;
}

bool
opIsPure(Op op)
{
    switch (op) {
      case Op::MovI:
      case Op::Mov:
      case Op::Add:
      case Op::Sub:
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Mul:
      case Op::Shl:
      case Op::Shr:
      case Op::AddI:
      case Op::SetCond:
        return true;
      default:
        return false;
    }
}

namespace
{

std::string
tname(TempId t)
{
    if (t == NoTemp)
        return "_";
    if (t < 16)
        return "g" + std::to_string(t);
    if (t == TempZf)
        return "zf";
    if (t == TempSf)
        return "sf";
    return "t" + std::to_string(t);
}

} // namespace

std::string
Instr::toString() const
{
    std::ostringstream os;
    auto addr = [&]() {
        return "[" + tname(b) + (imm >= 0 ? "+" : "") +
               std::to_string(imm) + "]";
    };
    switch (op) {
      case Op::MovI:
        os << tname(a) << " = " << imm;
        break;
      case Op::Mov:
        os << tname(a) << " = " << tname(b);
        break;
      case Op::Ld:
        os << tname(a) << " = ld " << addr();
        break;
      case Op::St:
        os << "st " << addr() << ", " << tname(a);
        break;
      case Op::Ld8:
        os << tname(a) << " = ld8 " << addr();
        break;
      case Op::St8:
        os << "st8 " << addr() << ", " << tname(a);
        break;
      case Op::Add: os << tname(a) << " = " << tname(b) << " + " << tname(c); break;
      case Op::Sub: os << tname(a) << " = " << tname(b) << " - " << tname(c); break;
      case Op::And: os << tname(a) << " = " << tname(b) << " & " << tname(c); break;
      case Op::Or:  os << tname(a) << " = " << tname(b) << " | " << tname(c); break;
      case Op::Xor: os << tname(a) << " = " << tname(b) << " ^ " << tname(c); break;
      case Op::Mul: os << tname(a) << " = " << tname(b) << " * " << tname(c); break;
      case Op::Udiv: os << tname(a) << " = " << tname(b) << " / " << tname(c); break;
      case Op::Shl:
        os << tname(a) << " = " << tname(b) << " << " << imm;
        break;
      case Op::Shr:
        os << tname(a) << " = " << tname(b) << " >> " << imm;
        break;
      case Op::AddI:
        os << tname(a) << " = " << tname(b) << " + " << imm;
        break;
      case Op::SetCond:
        os << tname(a) << " = (" << tname(b) << " "
           << gx86::condName(cond) << " " << tname(c) << ")";
        break;
      case Op::Mb:
        os << "mb " << memcore::fenceKindName(fence);
        break;
      case Op::Cas:
        os << tname(a) << " = cas " << addr() << ", expect=" << tname(c)
           << ", new=" << tname(d);
        break;
      case Op::Xadd:
        os << tname(a) << " = xadd " << addr() << ", " << tname(d);
        break;
      case Op::SetLabel:
        os << "L" << label << ":";
        break;
      case Op::Br:
        os << "br L" << label;
        break;
      case Op::BrCond:
        os << "brcond (" << tname(b) << " " << gx86::condName(cond) << " "
           << tname(c) << ") L" << label;
        break;
      case Op::CallHelper:
        os << tname(a) << " = call " << helperName(helper) << "("
           << tname(b) << ", " << tname(c) << ", " << imm << ")";
        break;
      case Op::ExitTb:
        if (b != NoTemp)
            os << "exit_tb -> " << tname(b);
        else
            os << "exit_tb -> 0x" << std::hex << imm << std::dec;
        break;
      case Op::GotoTb:
        os << "goto_tb 0x" << std::hex << imm << std::dec;
        break;
    }
    return os.str();
}

std::string
Block::toString() const
{
    std::ostringstream os;
    os << "TB @ 0x" << std::hex << guestPc << std::dec << ":\n";
    for (const Instr &i : instrs)
        os << "  " << i.toString() << "\n";
    return os.str();
}

/** Temps read by an instruction, written into a caller buffer (no
 * allocation: the liveness pass calls this once per op per fixpoint
 * iteration). */
std::size_t
instrReadsInto(const Instr &i, TempId out[MaxInstrReads])
{
    std::size_t n = 0;
    auto push = [&](TempId t) {
        if (t != NoTemp)
            out[n++] = t;
    };
    switch (i.op) {
      case Op::MovI:
      case Op::SetLabel:
      case Op::Br:
      case Op::Mb:
      case Op::GotoTb:
        break;
      case Op::Mov:
        push(i.b);
        break;
      case Op::Ld:
      case Op::Ld8:
        push(i.b);
        break;
      case Op::St:
      case Op::St8:
        push(i.a);
        push(i.b);
        break;
      case Op::Add:
      case Op::Sub:
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Mul:
      case Op::Udiv:
      case Op::SetCond:
        push(i.b);
        push(i.c);
        break;
      case Op::Shl:
      case Op::Shr:
      case Op::AddI:
        push(i.b);
        break;
      case Op::BrCond:
        push(i.b);
        push(i.c);
        break;
      case Op::Cas:
        push(i.b);
        push(i.c);
        push(i.d);
        break;
      case Op::Xadd:
        push(i.b);
        push(i.d);
        break;
      case Op::CallHelper:
        push(i.b);
        push(i.c);
        break;
      case Op::ExitTb:
        push(i.b);
        break;
    }
    return n;
}

/** Temps read by an instruction. */
std::vector<TempId>
instrReads(const Instr &i)
{
    TempId buf[MaxInstrReads];
    const std::size_t n = instrReadsInto(i, buf);
    return std::vector<TempId>(buf, buf + n);
}

/** Temp written by an instruction, or NoTemp. */
TempId
instrWrites(const Instr &i)
{
    switch (i.op) {
      case Op::MovI:
      case Op::Mov:
      case Op::Ld:
      case Op::Ld8:
      case Op::Add:
      case Op::Sub:
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Mul:
      case Op::Udiv:
      case Op::Shl:
      case Op::Shr:
      case Op::AddI:
      case Op::SetCond:
      case Op::Cas:
      case Op::Xadd:
      case Op::CallHelper:
        return i.a;
      default:
        return NoTemp;
    }
}


namespace build
{

Instr
movi(TempId a, std::int64_t imm)
{
    Instr i;
    i.op = Op::MovI;
    i.a = a;
    i.imm = imm;
    return i;
}

Instr
mov(TempId a, TempId b)
{
    Instr i;
    i.op = Op::Mov;
    i.a = a;
    i.b = b;
    return i;
}

Instr
ld(TempId a, TempId base, std::int64_t off)
{
    Instr i;
    i.op = Op::Ld;
    i.a = a;
    i.b = base;
    i.imm = off;
    return i;
}

Instr
st(TempId val, TempId base, std::int64_t off)
{
    Instr i;
    i.op = Op::St;
    i.a = val;
    i.b = base;
    i.imm = off;
    return i;
}

Instr
ld8(TempId a, TempId base, std::int64_t off)
{
    Instr i = ld(a, base, off);
    i.op = Op::Ld8;
    return i;
}

Instr
st8(TempId val, TempId base, std::int64_t off)
{
    Instr i = st(val, base, off);
    i.op = Op::St8;
    return i;
}

Instr
binop(Op op, TempId a, TempId b, TempId c)
{
    Instr i;
    i.op = op;
    i.a = a;
    i.b = b;
    i.c = c;
    return i;
}

Instr
addi(TempId a, TempId b, std::int64_t imm)
{
    Instr i;
    i.op = Op::AddI;
    i.a = a;
    i.b = b;
    i.imm = imm;
    return i;
}

Instr
shifti(Op op, TempId a, TempId b, std::int64_t amount)
{
    Instr i;
    i.op = op;
    i.a = a;
    i.b = b;
    i.imm = amount;
    return i;
}

Instr
setcond(gx86::Cond cond, TempId a, TempId b, TempId c)
{
    Instr i;
    i.op = Op::SetCond;
    i.cond = cond;
    i.a = a;
    i.b = b;
    i.c = c;
    return i;
}

Instr
mb(memcore::FenceKind kind)
{
    Instr i;
    i.op = Op::Mb;
    i.fence = kind;
    return i;
}

Instr
cas(TempId old, TempId base, std::int64_t off, TempId expect,
    TempId desired)
{
    Instr i;
    i.op = Op::Cas;
    i.a = old;
    i.b = base;
    i.imm = off;
    i.c = expect;
    i.d = desired;
    return i;
}

Instr
xadd(TempId old, TempId base, std::int64_t off, TempId addend)
{
    Instr i;
    i.op = Op::Xadd;
    i.a = old;
    i.b = base;
    i.imm = off;
    i.d = addend;
    return i;
}

Instr
setLabel(std::int32_t label)
{
    Instr i;
    i.op = Op::SetLabel;
    i.label = label;
    return i;
}

Instr
br(std::int32_t label)
{
    Instr i;
    i.op = Op::Br;
    i.label = label;
    return i;
}

Instr
brcond(gx86::Cond cond, TempId b, TempId c, std::int32_t label)
{
    Instr i;
    i.op = Op::BrCond;
    i.cond = cond;
    i.b = b;
    i.c = c;
    i.label = label;
    return i;
}

Instr
callHelper(HelperId id, TempId dst, TempId arg0, TempId arg1,
           std::int64_t extra)
{
    Instr i;
    i.op = Op::CallHelper;
    i.helper = id;
    i.a = dst;
    i.b = arg0;
    i.c = arg1;
    i.imm = extra;
    return i;
}

Instr
exitTb(std::uint64_t next_pc)
{
    Instr i;
    i.op = Op::ExitTb;
    i.imm = static_cast<std::int64_t>(next_pc);
    return i;
}

Instr
exitTbDynamic(TempId pc_temp)
{
    Instr i;
    i.op = Op::ExitTb;
    i.b = pc_temp;
    return i;
}

Instr
gotoTb(std::uint64_t next_pc)
{
    Instr i;
    i.op = Op::GotoTb;
    i.imm = static_cast<std::int64_t>(next_pc);
    return i;
}

} // namespace build

} // namespace risotto::tcg
