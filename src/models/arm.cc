#include "models/model.hh"

namespace risotto::models
{

using memcore::Access;
using memcore::Execution;
using memcore::EventSet;
using memcore::FenceKind;
using memcore::Relation;

std::string
ArmModel::name() const
{
    return rule_ == AmoRule::Corrected ? "arm-cats(corrected)"
                                       : "arm-cats(original)";
}

memcore::Relation
ArmModel::lob(const Execution &x) const
{
    const EventSet reads = x.reads();
    const EventSet writes = x.writes();

    auto id = [](const EventSet &s) { return Relation::identityOn(s); };

    // lws: local write successor -- any memory event to a same-location
    // po-later write.
    const Relation lws = x.poLoc().restrictCodomain(writes);

    // dob: dependency-ordered-before.
    const Relation addr_or_data = x.addrDep | x.dataDep;
    const Relation dob = x.addrDep | x.dataDep |
                         x.ctrlDep.restrictCodomain(writes) |
                         addr_or_data.compose(x.rfi()) |
                         x.addrDep.compose(x.po).restrictCodomain(writes);

    // aob: atomic-ordered-before -- rmw, plus reads-from-internal out of
    // an exclusive write into an acquire load.
    EventSet acq = x.accessesOf(Access::Acquire) |
                   x.accessesOf(Access::AcquirePC);
    const Relation aob =
        x.rmw |
        id(x.rmw.codomain()).compose(x.rfi()).compose(id(acq & reads));

    // bob: barrier-ordered-before.
    const Relation dmb_full = id(x.fencesOf(FenceKind::DmbFull));
    const Relation dmb_ld = id(x.fencesOf(FenceKind::DmbLd));
    const Relation dmb_st = id(x.fencesOf(FenceKind::DmbSt));
    const EventSet rel = x.accessesOf(Access::Release);
    const EventSet acq_strong = x.accessesOf(Access::Acquire);

    Relation bob = x.po.compose(dmb_full).compose(x.po);
    bob = bob | id(reads).compose(x.po).compose(dmb_ld).compose(x.po);
    bob = bob | id(writes)
                    .compose(x.po)
                    .compose(dmb_st)
                    .compose(x.po)
                    .compose(id(writes));
    // Release orders its po-predecessors; acquire orders its successors;
    // release-to-acquire is ordered.
    bob = bob | x.po.compose(id(rel & writes));
    bob = bob | id(acq).compose(x.po);
    bob = bob | id(rel & writes).compose(x.po).compose(id(acq_strong & reads));

    // The amo clause: single-instruction acquire+release RMWs (casal).
    const Relation a_amo_l = id(acq_strong & reads)
                                 .compose(x.amo())
                                 .compose(id(rel & writes));
    if (rule_ == AmoRule::Corrected) {
        // po ; [dom([A];amo;[L])] U [codom([A];amo;[L])] ; po:
        // casal acts as a full barrier.
        bob = bob | x.po.compose(id(a_amo_l.domain())) |
              id(a_amo_l.codomain()).compose(x.po);
    } else {
        // Original Arm-Cats: po ; [A] ; amo ; [L] ; po -- only orders
        // events around the RMW, not the RMW's own accesses.
        bob = bob | x.po.compose(a_amo_l).compose(x.po);
    }

    return (lws | dob | aob | bob).transitiveClosure();
}

bool
ArmModel::consistent(const Execution &x, std::string *why) const
{
    auto fail = [&](const char *axiom) {
        if (why)
            *why = axiom;
        return false;
    };

    if (!scPerLoc(x))
        return fail("internal(sc-per-loc)");
    if (!atomicity(x))
        return fail("atomic");

    const Relation ob = x.rfe() | x.coe() | x.fre() | lob(x);
    if (!ob.acyclic())
        return fail("external");
    return true;
}

} // namespace risotto::models
