#include "models/model.hh"

namespace risotto::models
{

using memcore::Access;
using memcore::Execution;
using memcore::EventSet;
using memcore::FenceKind;
using memcore::Relation;

memcore::Relation
RiscvModel::ppo(const Execution &x)
{
    const EventSet reads = x.reads();
    const EventSet writes = x.writes();
    const EventSet mem = reads | writes;

    auto id = [](const EventSet &s) { return Relation::identityOn(s); };
    auto rule = [&](const EventSet &from, FenceKind kind,
                    const EventSet &to) {
        return id(from)
            .compose(x.po)
            .compose(id(x.fencesOf(kind)))
            .compose(x.po)
            .compose(id(to));
    };

    Relation result(x.size());

    // RVWMO ppo rules (r1-r3 simplified): same-address ordering except
    // read-after-read.
    const Relation po_loc = x.poLoc();
    result = result | po_loc.restrictCodomain(writes);
    result = result | id(writes).compose(po_loc).restrictCodomain(reads);

    // FENCE pred,succ -- the directional Fxy vocabulary maps 1:1 onto
    // RISC-V fence sets (fence r,w == Frw, fence rw,rw == Fmm, ...).
    result = result | rule(reads, FenceKind::Frr, reads);
    result = result | rule(reads, FenceKind::Frw, writes);
    result = result | rule(reads, FenceKind::Frm, mem);
    result = result | rule(writes, FenceKind::Fwr, reads);
    result = result | rule(writes, FenceKind::Fww, writes);
    result = result | rule(writes, FenceKind::Fwm, mem);
    result = result | rule(mem, FenceKind::Fmr, reads);
    result = result | rule(mem, FenceKind::Fmw, writes);
    result = result | rule(mem, FenceKind::Fmm, mem);
    result = result | rule(mem, FenceKind::Fsc, mem);

    // Acquire/release annotations (r5-r7): acquire orders successors,
    // release orders predecessors, RCsc release-to-acquire.
    const EventSet acq = x.accessesOf(Access::Acquire) |
                         x.accessesOf(Access::AcquirePC) |
                         x.accessesOf(Access::AcqRel);
    const EventSet rel = x.accessesOf(Access::Release) |
                         x.accessesOf(Access::AcqRel);
    result = result | id(acq).compose(x.po);
    result = result | x.po.compose(id(rel));
    result = result | id(rel).compose(x.po).compose(id(acq));

    // AMO / LR-SC pairs (r8): paired accesses are ordered.
    result = result | x.rmw;

    // An AMO with both .aq and .rl set is *fully ordered* (RISC-V spec
    // A.3.3: it behaves as if surrounded by FENCE rw,rw) -- the same
    // strengthening the paper had to add to Arm-Cats for casal.
    const Relation aqrl_amo = id(acq & reads)
                                  .compose(x.amo())
                                  .compose(id(rel & writes));
    result = result | x.po.compose(id(aqrl_amo.domain())) |
             id(aqrl_amo.codomain()).compose(x.po);

    // Syntactic dependencies (r9-r11 simplified).
    result = result | x.addrDep | x.dataDep |
             x.ctrlDep.restrictCodomain(writes);

    return result;
}

bool
RiscvModel::consistent(const Execution &x, std::string *why) const
{
    auto fail = [&](const char *axiom) {
        if (why)
            *why = axiom;
        return false;
    };

    if (!scPerLoc(x))
        return fail("sc-per-loc");
    if (!atomicity(x))
        return fail("atomicity");
    const Relation gmo = ppo(x) | x.rfe() | x.coe() | x.fre();
    if (!gmo.acyclic())
        return fail("rvwmo-global");
    return true;
}

} // namespace risotto::models
