#include "models/model.hh"

namespace risotto::models
{

using memcore::Access;
using memcore::Execution;
using memcore::EventSet;
using memcore::FenceKind;
using memcore::Relation;

memcore::Relation
TcgModel::ord(const Execution &x)
{
    const EventSet reads = x.reads();
    const EventSet writes = x.writes();
    const EventSet mem = reads | writes;

    auto id = [](const EventSet &s) { return Relation::identityOn(s); };

    // One directional rule: [from] ; po ; [F_kind] ; po ; [to].
    auto rule = [&](const EventSet &from, FenceKind kind,
                    const EventSet &to) {
        const Relation f = id(x.fencesOf(kind));
        return id(from)
            .compose(x.po)
            .compose(f)
            .compose(x.po)
            .compose(id(to));
    };

    Relation result(x.size());
    result = result | rule(reads, FenceKind::Frr, reads);
    result = result | rule(reads, FenceKind::Frw, writes);
    result = result | rule(reads, FenceKind::Frm, mem);
    result = result | rule(writes, FenceKind::Fwr, reads);
    result = result | rule(writes, FenceKind::Fww, writes);
    result = result | rule(writes, FenceKind::Fwm, mem);
    result = result | rule(mem, FenceKind::Fmr, reads);
    result = result | rule(mem, FenceKind::Fmw, writes);
    result = result | rule(mem, FenceKind::Fmm, mem);

    // RMW events follow SC semantics:
    //   po ; [Wsc U dom(rmw)]  U  [Rsc U codom(rmw)] ; po.
    EventSet sc_writes = x.accessesOf(Access::Sc) & writes;
    EventSet sc_reads = x.accessesOf(Access::Sc) & reads;
    const EventSet lead = sc_writes | x.rmw.domain();
    const EventSet trail = sc_reads | x.rmw.codomain();
    result = result | x.po.compose(id(lead)) | id(trail).compose(x.po);

    // Fsc orders everything: po ; [Fsc] U [Fsc] ; po.
    const Relation fsc = id(x.fencesOf(FenceKind::Fsc));
    result = result | x.po.compose(fsc) | fsc.compose(x.po);

    return result;
}

bool
TcgModel::consistent(const Execution &x, std::string *why) const
{
    auto fail = [&](const char *axiom) {
        if (why)
            *why = axiom;
        return false;
    };

    if (!scPerLoc(x))
        return fail("sc-per-loc");
    if (!atomicity(x))
        return fail("atomicity");

    const Relation ghb = ord(x) | x.rfe() | x.coe() | x.fre();
    if (!ghb.acyclic())
        return fail("GOrd");
    return true;
}

} // namespace risotto::models
