#include "models/model.hh"

namespace risotto::models
{

using memcore::Execution;
using memcore::Relation;

bool
scPerLoc(const Execution &x)
{
    const Relation hb = x.poLoc() | x.rf | x.co | x.fr();
    return hb.acyclic();
}

bool
atomicity(const Execution &x)
{
    const Relation blocked = x.fre().compose(x.coe());
    return (x.rmw & blocked).empty();
}

bool
ScModel::consistent(const Execution &x, std::string *why) const
{
    // Interleaving semantics executes an RMW as one indivisible step.
    if (!atomicity(x)) {
        if (why)
            *why = "atomicity";
        return false;
    }
    const Relation hb = x.po | x.rf | x.co | x.fr();
    if (!hb.acyclic()) {
        if (why)
            *why = "sc";
        return false;
    }
    return true;
}

} // namespace risotto::models
