#include "models/model.hh"

namespace risotto::models
{

using memcore::Execution;
using memcore::EventSet;
using memcore::FenceKind;
using memcore::Relation;

bool
X86Model::consistent(const Execution &x, std::string *why) const
{
    auto fail = [&](const char *axiom) {
        if (why)
            *why = axiom;
        return false;
    };

    if (!scPerLoc(x))
        return fail("sc-per-loc");
    if (!atomicity(x))
        return fail("atomicity");

    const EventSet reads = x.reads();
    const EventSet writes = x.writes();

    // ppo = ((W x W) U (R x W) U (R x R)) n po: everything but store-load.
    const Relation ppo =
        (Relation::cross(writes, writes) | Relation::cross(reads, writes) |
         Relation::cross(reads, reads)) &
        x.po;

    // implied = po ; [At U F] U [At U F] ; po.
    EventSet at = x.rmw.domain() | x.rmw.codomain();
    const EventSet fenced = at | x.fencesOf(FenceKind::MFence);
    const Relation id_fenced = Relation::identityOn(fenced);
    const Relation implied =
        x.po.compose(id_fenced) | id_fenced.compose(x.po);

    const Relation ghb = implied | ppo | x.rfe() | x.fr() | x.co;
    if (!ghb.acyclic())
        return fail("GHB");
    return true;
}

} // namespace risotto::models
