/**
 * @file
 * Consistency-model interface and the axioms shared by x86, TCG IR and Arm
 * (sc-per-loc, atomicity) per the paper's Section 5.2.
 */

#ifndef RISOTTO_MODELS_MODEL_HH
#define RISOTTO_MODELS_MODEL_HH

#include <memory>
#include <string>

#include "memcore/execution.hh"

namespace risotto::models
{

/**
 * An axiomatic consistency model: a predicate over executions.
 *
 * An execution that satisfies every axiom of the model is *consistent*;
 * the consistent executions of a program define its behaviours.
 */
class ConsistencyModel
{
  public:
    virtual ~ConsistencyModel() = default;

    /** Model name, e.g. "x86-tso" or "arm-cats(corrected)". */
    virtual std::string name() const = 0;

    /**
     * Check whether @p x satisfies every axiom of this model.
     *
     * @param x a structurally well-formed execution.
     * @param why when non-null, receives the first violated axiom's name.
     */
    virtual bool consistent(const memcore::Execution &x,
                            std::string *why = nullptr) const = 0;
};

/**
 * (sc-per-loc): (po|loc U rf U co U fr)+ is irreflexive.
 * Enforces coherence: SC per memory location.
 */
bool scPerLoc(const memcore::Execution &x);

/**
 * (atomicity): rmw n (fre ; coe) is empty.
 * No external write intervenes between the read and write of a
 * successful RMW.
 */
bool atomicity(const memcore::Execution &x);

/** Sequential consistency: (po U rf U co U fr) acyclic. Reference model. */
class ScModel : public ConsistencyModel
{
  public:
    std::string name() const override { return "sc"; }
    bool consistent(const memcore::Execution &x,
                    std::string *why = nullptr) const override;
};

/**
 * The x86-TSO model of Section 5.2:
 * (GHB): (implied U ppo U rfe U fr U co)+ irreflexive, with
 * ppo = ((WxW) U (RxW) U (RxR)) n po and
 * implied = po ; [At U F] U [At U F] ; po,  At = dom(rmw) U codom(rmw).
 */
class X86Model : public ConsistencyModel
{
  public:
    std::string name() const override { return "x86-tso"; }
    bool consistent(const memcore::Execution &x,
                    std::string *why = nullptr) const override;
};

/**
 * The proposed TCG IR model (Figure 6):
 * (GOrd): ghb = (ord U rfe U coe U fre)+ irreflexive, with ord built from
 * the nine directional fence rules, the SC semantics of RMW events, and
 * Fsc ordering everything.
 */
class TcgModel : public ConsistencyModel
{
  public:
    std::string name() const override { return "tcg-ir"; }
    bool consistent(const memcore::Execution &x,
                    std::string *why = nullptr) const override;

    /** The ord relation of Figure 6, exposed for tests. */
    static memcore::Relation ord(const memcore::Execution &x);
};

/**
 * The Arm-Cats model (Figure 5):
 * (external): ob = (rfe U coe U fre U lob)+ irreflexive, with
 * lob = (lws U dob U aob U bob)+.
 *
 * Two variants of the bob clause for single-instruction RMWs (amo):
 *  - Original:  po ; [A] ; amo ; [L] ; po
 *  - Corrected: po ; [dom([A];amo;[L])] U [codom([A];amo;[L])] ; po
 * The corrected variant is the strengthening the paper proposed and the
 * Arm-Cats authors accepted, making casal act as a full barrier.
 */
class ArmModel : public ConsistencyModel
{
  public:
    /** Which amo clause to use. */
    enum class AmoRule
    {
        Original,
        Corrected,
    };

    explicit ArmModel(AmoRule rule = AmoRule::Corrected) : rule_(rule) {}

    std::string name() const override;
    bool consistent(const memcore::Execution &x,
                    std::string *why = nullptr) const override;

    /** The lob relation, exposed for tests. */
    memcore::Relation lob(const memcore::Execution &x) const;

    AmoRule rule() const { return rule_; }

  private:
    AmoRule rule_;
};

/**
 * A simplified RVWMO (RISC-V weak memory) model -- the extension target
 * the paper's introduction motivates alongside Arm.
 *
 * Preserved program order (ppo) covers: same-address write-after-read and
 * write-after-write ordering, RISC-V FENCE instructions with
 * predecessor/successor sets (reusing the directional Fxy vocabulary:
 * FENCE r,w == Frw and so on), acquire annotations ordering successors,
 * release annotations ordering predecessors, AMO pairs, and syntactic
 * dependencies. Consistency: (ppo U rfe U coe U fre) acyclic, plus the
 * shared sc-per-loc and atomicity axioms.
 */
class RiscvModel : public ConsistencyModel
{
  public:
    std::string name() const override { return "rvwmo"; }
    bool consistent(const memcore::Execution &x,
                    std::string *why = nullptr) const override;

    /** The ppo relation, exposed for tests. */
    static memcore::Relation ppo(const memcore::Execution &x);
};

} // namespace risotto::models

#endif // RISOTTO_MODELS_MODEL_HH
