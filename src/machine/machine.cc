#include "machine/machine.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "support/error.hh"

namespace risotto::machine
{

using aarch::AInstr;
using aarch::AOp;
using aarch::Barrier;
using aarch::CodeAddr;

namespace
{

double
asDouble(std::uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

std::uint64_t
asBits(double d)
{
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

std::uint64_t
lineOf(std::uint64_t addr)
{
    return addr >> 6; // 64-byte cache lines.
}

} // namespace

std::string
runDiagnosisName(RunDiagnosis diagnosis)
{
    switch (diagnosis) {
      case RunDiagnosis::Finished:
        return "finished";
      case RunDiagnosis::BudgetExhausted:
        return "budget-exhausted";
      case RunDiagnosis::Livelock:
        return "livelock";
    }
    return "unknown";
}

Machine::Machine(const aarch::CodeBuffer &code, gx86::Memory &memory,
                 MachineConfig config)
    : code_(code), memory_(memory), config_(config), rng_(config.seed),
      faults_(config_.faults)
{
}

std::size_t
Machine::addCore(CodeAddr entry)
{
    Core core;
    core.id = static_cast<std::uint32_t>(cores_.size());
    core.pc = entry;
    core.x[aarch::Sp] = gx86::DefaultStackTop -
                        core.id * 0x40000; // Disjoint 256 KiB stacks.
    cores_.push_back(core);
    return cores_.size() - 1;
}

bool
Machine::run(std::uint64_t max_cycles_per_core)
{
    while (true) {
        // Pick the runnable core: lowest local cycle count (keeps the
        // cores' clocks in step, modelling parallel execution), or a
        // random runnable core in stress mode.
        Core *next = nullptr;
        std::size_t runnable = 0;
        for (Core &c : cores_) {
            if (c.halted && c.storeBuffer.empty())
                continue;
            ++runnable;
            if (config_.randomize) {
                if (rng_.below(runnable) == 0)
                    next = &c;
            } else if (!next || c.cycles < next->cycles) {
                next = &c;
            }
        }
        if (!next) {
            diagnosis_ = RunDiagnosis::Finished;
            return true;
        }
        if (next->cycles >= max_cycles_per_core ||
            (config_.retiredBudget != 0 &&
             next->retired >= config_.retiredBudget)) {
            // Distinguish a core spinning on failed exclusive stores
            // (livelock) from one that is simply still doing useful work.
            diagnosis_ = RunDiagnosis::BudgetExhausted;
            for (const Core &c : cores_)
                if (!c.halted && c.stxrFails > 0)
                    diagnosis_ = RunDiagnosis::Livelock;
            return false;
        }
        if (next->halted) {
            // Only buffered stores remain: drain them.
            drainOne(*next);
            continue;
        }
        step(*next);
    }
}

std::uint64_t
Machine::makespan() const
{
    std::uint64_t best = 0;
    for (const Core &c : cores_)
        best = std::max(best, c.cycles);
    return best;
}

std::uint64_t
Machine::totalCycles() const
{
    std::uint64_t sum = 0;
    for (const Core &c : cores_)
        sum += c.cycles;
    return sum;
}

void
Machine::drainOne(Core &core)
{
    if (core.storeBuffer.empty())
        return;
    std::size_t index = 0;
    if (config_.relaxedDrain && core.storeBuffer.size() > 1) {
        // Arm-style: any buffered store may drain next, but never ahead
        // of an older store to an overlapping address (coherence).
        index = config_.randomize ? rng_.below(core.storeBuffer.size())
                                  : 0;
        const auto &chosen = core.storeBuffer[index];
        for (std::size_t i = 0; i < index; ++i) {
            const auto &older = core.storeBuffer[i];
            if (lineOf(older.addr) == lineOf(chosen.addr) &&
                older.addr < chosen.addr + chosen.size &&
                chosen.addr < older.addr + older.size) {
                index = i;
                break;
            }
        }
    }
    const Core::PendingStore entry = core.storeBuffer[index];
    core.storeBuffer.erase(core.storeBuffer.begin() +
                           static_cast<std::ptrdiff_t>(index));
    if (entry.size == 8)
        memory_.store64(entry.addr, entry.value);
    else
        memory_.store8(entry.addr, static_cast<std::uint8_t>(entry.value));
    clearOtherMonitors(core, entry.addr);
    core.cycles += config_.costs.storeDrain;
    stats_.bump("machine.drains");
}

void
Machine::chargeLineOwnership(Core &core, std::uint64_t addr, bool write)
{
    const std::uint64_t line = lineOf(addr);
    auto it = lineOwner_.find(line);
    if (it == lineOwner_.end()) {
        if (write)
            lineOwner_[line] = core.id;
        return;
    }
    if (it->second == core.id)
        return;
    if (write) {
        core.cycles += config_.costs.cacheLineTransfer;
        stats_.bump("machine.line_transfers");
        it->second = core.id;
    } else {
        core.cycles += config_.costs.cacheLineShared;
        stats_.bump("machine.line_shares");
    }
}

void
Machine::clearOtherMonitors(const Core &writer, std::uint64_t addr)
{
    const std::uint64_t aligned = addr & ~7ULL;
    for (Core &c : cores_) {
        if (c.id != writer.id && c.monitor && *c.monitor == aligned)
            c.monitor.reset();
    }
}

std::uint64_t
Machine::memRead(Core &core, std::uint64_t addr, std::uint8_t size)
{
    // Store-to-load forwarding from the newest matching buffered store.
    for (auto it = core.storeBuffer.rbegin(); it != core.storeBuffer.rend();
         ++it) {
        if (it->addr == addr && it->size == size)
            return it->value;
        // Partial overlap: drain everything for simplicity.
        if (addr < it->addr + it->size && it->addr < addr + size) {
            flushStoreBuffer(core);
            break;
        }
    }
    chargeLineOwnership(core, addr, false);
    return size == 8 ? memory_.load64(addr) : memory_.load8(addr);
}

void
Machine::memWrite(Core &core, std::uint64_t addr, std::uint8_t size,
                  std::uint64_t value)
{
    if (size == 1)
        value &= 0xff;
    core.storeBuffer.push_back({addr, size, value});
    chargeLineOwnership(core, addr, true);
    if (core.storeBuffer.size() > config_.storeBufferDepth)
        drainOne(core);
    // Opportunistic background drain keeps buffers short in the
    // deterministic scheduler.
    if (!config_.randomize)
        while (core.storeBuffer.size() > 1)
            drainOne(core);
}

void
Machine::flushStoreBuffer(Core &core)
{
    // Full drains need no per-store order choice: every interleaving a
    // relaxed drain could pick preserves the per-address (coherence)
    // order, so the final memory image always matches the FIFO sweep.
    // Sweeping by index instead of repeated erase-from-front turns the
    // partial-overlap "drain everything" path from O(n^2) moves into one
    // pass + clear().
    const std::size_t n = core.storeBuffer.size();
    if (n == 0)
        return;
    for (std::size_t i = 0; i < n; ++i) {
        const Core::PendingStore &entry = core.storeBuffer[i];
        if (entry.size == 8)
            memory_.store64(entry.addr, entry.value);
        else
            memory_.store8(entry.addr,
                           static_cast<std::uint8_t>(entry.value));
        clearOtherMonitors(core, entry.addr);
    }
    core.storeBuffer.clear();
    core.cycles += n * config_.costs.storeDrain;
    stats_.bump("machine.drains", n);
}

std::uint64_t
Machine::atomicAccessCost(Core &core, std::uint64_t addr)
{
    const std::uint64_t line = lineOf(addr);
    auto it = lineOwner_.find(line);
    std::uint64_t cost = 0;
    if (it != lineOwner_.end() && it->second != core.id) {
        cost += config_.costs.cacheLineTransfer;
        stats_.bump("machine.line_transfers");
    }
    lineOwner_[line] = core.id;
    // A cache line services one atomic at a time: under contention the
    // line bounces between cores and requests from *other* cores
    // serialize behind the bounce, which is what flattens Figure 15's
    // contended curves. Back-to-back atomics from the owning core hit in
    // cache and pay no window.
    auto &busy = lineBusyUntil_[line];
    std::uint64_t start = core.cycles + cost;
    if (busy.first != core.id)
        start = std::max(start, busy.second);
    cost = start - core.cycles;
    busy = {core.id, start + config_.costs.casBase +
                         config_.costs.cacheLineTransfer / 2};
    return cost;
}

void
Machine::directWrite(Core &core, std::uint64_t addr, std::uint8_t size,
                     std::uint64_t value)
{
    if (size == 8)
        memory_.store64(addr, value);
    else
        memory_.store8(addr, static_cast<std::uint8_t>(value));
    clearOtherMonitors(core, addr);
}

void
Machine::step(Core &core)
{
    // In stress mode, give the scheduler a chance to delay stores.
    if (config_.randomize && !core.storeBuffer.empty() &&
        rng_.chance(1, 3)) {
        drainOne(core);
        return;
    }

    if (config_.hostIsa == support::HostIsa::Rv64) {
        stepRv64(core);
        return;
    }

    const AInstr in = aarch::decode(code_.fetch(core.pc));
    CodeAddr next = core.pc + 1;
    const CostModel &c = config_.costs;
    core.retired++;
    stats_.bump("machine.instructions");
    if (config_.trace)
        config_.trace(core, in);

    auto setFlags = [&](std::uint64_t value) {
        core.zf = value == 0;
        core.sf = static_cast<std::int64_t>(value) < 0;
    };
    auto branchTo = [&](std::int32_t off) {
        next = static_cast<CodeAddr>(static_cast<std::int64_t>(core.pc) +
                                     off);
        core.cycles += c.branchTakenExtra;
    };

    switch (in.op) {
      case AOp::Nop:
        core.cycles += c.alu;
        break;
      case AOp::Hlt:
        // Buffered stores drain asynchronously after the halt (the run
        // loop keeps draining halted cores), preserving reordering
        // opportunities right up to the end of the thread.
        core.halted = true;
        break;
      case AOp::MovZ:
        core.x[in.rd] = static_cast<std::uint64_t>(
                            static_cast<std::uint16_t>(in.imm))
                        << (16 * in.shift);
        core.cycles += c.alu;
        break;
      case AOp::MovK: {
        const int sh = 16 * in.shift;
        core.x[in.rd] =
            (core.x[in.rd] & ~(0xffffULL << sh)) |
            (static_cast<std::uint64_t>(static_cast<std::uint16_t>(in.imm))
             << sh);
        core.cycles += c.alu;
        break;
      }
      case AOp::MovRR:
        core.x[in.rd] = core.x[in.rn];
        core.cycles += c.alu;
        break;
      case AOp::Ldr:
        core.x[in.rd] = memRead(
            core, core.x[in.rn] + static_cast<std::int64_t>(in.imm), 8);
        core.cycles += c.load;
        break;
      case AOp::Ldrb:
        core.x[in.rd] = memRead(
            core, core.x[in.rn] + static_cast<std::int64_t>(in.imm), 1);
        core.cycles += c.load;
        break;
      case AOp::Str:
        memWrite(core, core.x[in.rn] + static_cast<std::int64_t>(in.imm),
                 8, core.x[in.rd]);
        core.cycles += c.store;
        break;
      case AOp::Strb:
        memWrite(core, core.x[in.rn] + static_cast<std::int64_t>(in.imm),
                 1, core.x[in.rd]);
        core.cycles += c.store;
        break;
      case AOp::Ldar:
      case AOp::Ldapr:
        core.x[in.rd] = memRead(core, core.x[in.rn], 8);
        core.cycles += c.load + c.acquireExtra;
        stats_.bump("machine.acquire_loads");
        break;
      case AOp::Stlr:
        // Release: all earlier stores must be visible first.
        flushStoreBuffer(core);
        core.cycles += c.store + c.releaseExtra;
        directWrite(core, core.x[in.rn], 8, core.x[in.rd]);
        chargeLineOwnership(core, core.x[in.rn], true);
        stats_.bump("machine.release_stores");
        break;
      case AOp::Ldxr:
      case AOp::Ldaxr: {
        const std::uint64_t addr = core.x[in.rn];
        flushStoreBuffer(core);
        core.x[in.rd] = memRead(core, addr, 8);
        core.monitor = addr & ~7ULL;
        core.cycles += c.exclusive +
                       (in.op == AOp::Ldaxr ? c.acquireExtra : 0);
        stats_.bump("machine.exclusive_loads");
        break;
      }
      case AOp::Stxr:
      case AOp::Stlxr: {
        const std::uint64_t addr = core.x[in.rn];
        if (in.op == AOp::Stlxr)
            flushStoreBuffer(core);
        bool ok = core.monitor && *core.monitor == (addr & ~7ULL);
        // Spurious failure is architecturally allowed for exclusive
        // stores, so injecting one here is behaviour-preserving: correct
        // guest code must already tolerate it by retrying. The draw
        // comes from the injector's own per-site stream, never rng_, so
        // unarmed runs keep their exact scheduling.
        if (ok && faults_.shouldInject(faultsites::MachineStxr)) {
            ok = false;
            ++core.pendingInjectedStxr;
        }
        if (ok) {
            core.cycles += atomicAccessCost(core, addr);
            directWrite(core, addr, 8, core.x[in.rm]);
        }
        core.x[in.rd] = ok ? 0 : 1;
        core.monitor.reset();
        core.cycles += c.exclusive +
                       (in.op == AOp::Stlxr ? c.releaseExtra : 0);
        stats_.bump("machine.exclusive_stores");
        if (ok)
            noteStxrSuccess(core);
        else
            noteStxrFailure(core);
        break;
      }
      case AOp::Cas:
      case AOp::Casal: {
        const std::uint64_t addr = core.x[in.rn];
        flushStoreBuffer(core);
        core.cycles += c.casBase + atomicAccessCost(core, addr);
        const std::uint64_t old = memory_.load64(addr);
        if (old == core.x[in.rd])
            directWrite(core, addr, 8, core.x[in.rm]);
        core.x[in.rd] = old;
        stats_.bump("machine.cas_ops");
        break;
      }
      case AOp::Ldaddal: {
        const std::uint64_t addr = core.x[in.rn];
        flushStoreBuffer(core);
        core.cycles += c.casBase + atomicAccessCost(core, addr);
        const std::uint64_t old = memory_.load64(addr);
        directWrite(core, addr, 8, old + core.x[in.rm]);
        core.x[in.rd] = old;
        stats_.bump("machine.atomic_adds");
        break;
      }
      case AOp::Dmb:
        switch (in.barrier) {
          case Barrier::Full:
            flushStoreBuffer(core);
            core.cycles += c.dmbFull;
            stats_.bump("machine.dmb_full");
            break;
          case Barrier::St:
            flushStoreBuffer(core);
            core.cycles += c.dmbSt;
            stats_.bump("machine.dmb_st");
            break;
          case Barrier::Ld:
            core.cycles += c.dmbLd;
            stats_.bump("machine.dmb_ld");
            break;
        }
        break;
      case AOp::Add:
        core.x[in.rd] = core.x[in.rn] + core.x[in.rm];
        setFlags(core.x[in.rd]);
        core.cycles += c.alu;
        break;
      case AOp::Sub:
        core.x[in.rd] = core.x[in.rn] - core.x[in.rm];
        setFlags(core.x[in.rd]);
        core.cycles += c.alu;
        break;
      case AOp::And:
        core.x[in.rd] = core.x[in.rn] & core.x[in.rm];
        setFlags(core.x[in.rd]);
        core.cycles += c.alu;
        break;
      case AOp::Orr:
        core.x[in.rd] = core.x[in.rn] | core.x[in.rm];
        setFlags(core.x[in.rd]);
        core.cycles += c.alu;
        break;
      case AOp::Eor:
        core.x[in.rd] = core.x[in.rn] ^ core.x[in.rm];
        setFlags(core.x[in.rd]);
        core.cycles += c.alu;
        break;
      case AOp::Mul:
        core.x[in.rd] = core.x[in.rn] * core.x[in.rm];
        setFlags(core.x[in.rd]);
        core.cycles += c.alu + 2;
        break;
      case AOp::Udiv:
        if (core.x[in.rm] == 0)
            throw GuestFault("host udiv by zero");
        core.x[in.rd] = core.x[in.rn] / core.x[in.rm];
        setFlags(core.x[in.rd]);
        core.cycles += c.alu + 12;
        break;
      case AOp::AddI:
        core.x[in.rd] = core.x[in.rn] +
                        static_cast<std::uint64_t>(
                            static_cast<std::int64_t>(in.imm));
        setFlags(core.x[in.rd]);
        core.cycles += c.alu;
        break;
      case AOp::SubI:
        core.x[in.rd] = core.x[in.rn] -
                        static_cast<std::uint64_t>(
                            static_cast<std::int64_t>(in.imm));
        setFlags(core.x[in.rd]);
        core.cycles += c.alu;
        break;
      case AOp::LslI:
        core.x[in.rd] = core.x[in.rn] << (in.imm & 63);
        setFlags(core.x[in.rd]);
        core.cycles += c.alu;
        break;
      case AOp::LsrI:
        core.x[in.rd] = core.x[in.rn] >> (in.imm & 63);
        setFlags(core.x[in.rd]);
        core.cycles += c.alu;
        break;
      case AOp::Cmp:
        setFlags(core.x[in.rn] - core.x[in.rm]);
        core.cycles += c.alu;
        break;
      case AOp::CmpI:
        setFlags(core.x[in.rn] -
                 static_cast<std::uint64_t>(
                     static_cast<std::int64_t>(in.imm)));
        core.cycles += c.alu;
        break;
      case AOp::Cset:
        core.x[in.imm & 31] =
            gx86::condHolds(in.cond, core.zf, core.sf) ? 1 : 0;
        core.cycles += c.alu;
        break;
      case AOp::B:
        branchTo(in.imm);
        core.cycles += c.branch;
        break;
      case AOp::Bcond:
        core.cycles += c.branch;
        if (gx86::condHolds(in.cond, core.zf, core.sf))
            branchTo(in.imm);
        break;
      case AOp::Cbz:
        core.cycles += c.branch;
        if (core.x[in.rd] == 0)
            branchTo(in.imm);
        break;
      case AOp::Cbnz:
        core.cycles += c.branch;
        if (core.x[in.rd] != 0)
            branchTo(in.imm);
        break;
      case AOp::Bl:
        core.x[aarch::Lr] = next;
        branchTo(in.imm);
        core.cycles += c.branch;
        break;
      case AOp::Blr:
        core.x[aarch::Lr] = next;
        next = static_cast<CodeAddr>(core.x[in.rd]);
        core.cycles += c.branch + c.branchTakenExtra;
        break;
      case AOp::Ret:
        next = static_cast<CodeAddr>(core.x[aarch::Lr]);
        core.cycles += c.branch;
        break;
      case AOp::Fadd:
        core.x[in.rd] =
            asBits(asDouble(core.x[in.rn]) + asDouble(core.x[in.rm]));
        core.cycles += c.fpNative;
        break;
      case AOp::Fsub:
        core.x[in.rd] =
            asBits(asDouble(core.x[in.rn]) - asDouble(core.x[in.rm]));
        core.cycles += c.fpNative;
        break;
      case AOp::Fmul:
        core.x[in.rd] =
            asBits(asDouble(core.x[in.rn]) * asDouble(core.x[in.rm]));
        core.cycles += c.fpNative;
        break;
      case AOp::Fdiv:
        core.x[in.rd] =
            asBits(asDouble(core.x[in.rn]) / asDouble(core.x[in.rm]));
        core.cycles += c.fpDivNative;
        break;
      case AOp::Fsqrt:
        core.x[in.rd] = asBits(std::sqrt(asDouble(core.x[in.rn])));
        core.cycles += c.fpSqrtNative;
        break;
      case AOp::Scvtf:
        core.x[in.rd] = asBits(static_cast<double>(
            static_cast<std::int64_t>(core.x[in.rn])));
        core.cycles += c.fpNative;
        break;
      case AOp::Fcvtzs:
        core.x[in.rd] = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(asDouble(core.x[in.rn])));
        core.cycles += c.fpNative;
        break;
      case AOp::Helper: {
        panicIf(!runtime_, "helper trap without a runtime");
        core.cycles += c.helperCall;
        stats_.bump("machine.helper_calls");
        core.cycles += runtime_->invokeHelper(
            in.helper, static_cast<std::uint16_t>(in.imm), core, *this);
        break;
      }
      case AOp::ExitTb: {
        panicIf(!runtime_, "exit_tb trap without a runtime");
        core.cycles += c.exitTbLookup;
        stats_.bump("machine.tb_exits");
        stats_.bump("machine.tb_exit_cycles", c.exitTbLookup);
        const auto target = runtime_->onExitTb(
            static_cast<std::uint32_t>(in.imm), core, *this);
        if (!target) {
            core.halted = true;
            break;
        }
        next = *target;
        break;
      }
      case AOp::Svc:
        // Native host syscall convention: x0 = number, x1 = argument.
        core.cycles += c.syscall;
        switch (core.x[0]) {
          case 0:
            core.exitCode = static_cast<std::int64_t>(core.x[1]);
            core.halted = true;
            break;
          case 1:
            core.output.push_back(static_cast<char>(core.x[1]));
            break;
          case 2:
            core.x[0] = core.cycles;
            break;
          default:
            throw GuestFault("unknown host syscall");
        }
        break;
    }
    if (!core.halted)
        core.pc = next;
}

void
Machine::stepRv64(Core &core)
{
    const rv64::RInstr in = rv64::decode(code_.fetch(core.pc));
    CodeAddr next = core.pc + 1;
    const CostModel &c = config_.costs;
    core.retired++;
    stats_.bump("machine.instructions");
    if (config_.traceRv64)
        config_.traceRv64(core, in);

    auto branchTo = [&](std::int32_t off) {
        next = static_cast<CodeAddr>(static_cast<std::int64_t>(core.pc) +
                                     off);
        core.cycles += c.branchTakenExtra;
    };
    auto simm = [&]() {
        return static_cast<std::uint64_t>(
            static_cast<std::int64_t>(in.imm));
    };

    using rv64::ROp;
    switch (in.op) {
      case ROp::Lui:
        // The decoder already shifted and sign-extended the immediate.
        core.x[in.rd] = simm();
        core.cycles += c.alu;
        break;
      case ROp::Ld:
        core.x[in.rd] = memRead(
            core, core.x[in.rs1] + static_cast<std::int64_t>(in.imm), 8);
        core.cycles += c.load;
        break;
      case ROp::Lbu:
        core.x[in.rd] = memRead(
            core, core.x[in.rs1] + static_cast<std::int64_t>(in.imm), 1);
        core.cycles += c.load;
        break;
      case ROp::Sd:
        memWrite(core,
                 core.x[in.rs1] + static_cast<std::int64_t>(in.imm), 8,
                 core.x[in.rs2]);
        core.cycles += c.store;
        break;
      case ROp::Sb:
        memWrite(core,
                 core.x[in.rs1] + static_cast<std::int64_t>(in.imm), 1,
                 core.x[in.rs2]);
        core.cycles += c.store;
        break;
      case ROp::Addi:
        core.x[in.rd] = core.x[in.rs1] + simm();
        core.cycles += c.alu;
        break;
      case ROp::Slti:
        core.x[in.rd] = static_cast<std::int64_t>(core.x[in.rs1]) <
                                static_cast<std::int64_t>(in.imm)
                            ? 1
                            : 0;
        core.cycles += c.alu;
        break;
      case ROp::Sltiu:
        core.x[in.rd] = core.x[in.rs1] < simm() ? 1 : 0;
        core.cycles += c.alu;
        break;
      case ROp::Xori:
        core.x[in.rd] = core.x[in.rs1] ^ simm();
        core.cycles += c.alu;
        break;
      case ROp::Ori:
        core.x[in.rd] = core.x[in.rs1] | simm();
        core.cycles += c.alu;
        break;
      case ROp::Andi:
        core.x[in.rd] = core.x[in.rs1] & simm();
        core.cycles += c.alu;
        break;
      case ROp::Slli:
        core.x[in.rd] = core.x[in.rs1] << (in.imm & 63);
        core.cycles += c.alu;
        break;
      case ROp::Srli:
        core.x[in.rd] = core.x[in.rs1] >> (in.imm & 63);
        core.cycles += c.alu;
        break;
      case ROp::Add:
        core.x[in.rd] = core.x[in.rs1] + core.x[in.rs2];
        core.cycles += c.alu;
        break;
      case ROp::Sub:
        core.x[in.rd] = core.x[in.rs1] - core.x[in.rs2];
        core.cycles += c.alu;
        break;
      case ROp::Slt:
        core.x[in.rd] = static_cast<std::int64_t>(core.x[in.rs1]) <
                                static_cast<std::int64_t>(core.x[in.rs2])
                            ? 1
                            : 0;
        core.cycles += c.alu;
        break;
      case ROp::Sltu:
        core.x[in.rd] = core.x[in.rs1] < core.x[in.rs2] ? 1 : 0;
        core.cycles += c.alu;
        break;
      case ROp::Xor:
        core.x[in.rd] = core.x[in.rs1] ^ core.x[in.rs2];
        core.cycles += c.alu;
        break;
      case ROp::Or:
        core.x[in.rd] = core.x[in.rs1] | core.x[in.rs2];
        core.cycles += c.alu;
        break;
      case ROp::And:
        core.x[in.rd] = core.x[in.rs1] & core.x[in.rs2];
        core.cycles += c.alu;
        break;
      case ROp::Mul:
        core.x[in.rd] = core.x[in.rs1] * core.x[in.rs2];
        core.cycles += c.alu + 2;
        break;
      case ROp::Divu:
        // Mirror the aarch core exactly (real DIVU returns all-ones;
        // the backends never emit a reachable zero divide, and the
        // differential tests need identical faulting behaviour).
        if (core.x[in.rs2] == 0)
            throw GuestFault("host udiv by zero");
        core.x[in.rd] = core.x[in.rs1] / core.x[in.rs2];
        core.cycles += c.alu + 12;
        break;
      case ROp::Fence:
        // RVWMO FENCE by direction, charged like the aarch barriers: a
        // write-including predecessor set drains the store buffer
        // (w,w at DMBST cost, anything stronger at DMBFF cost); a
        // read-only predecessor set orders like DMBLD and keeps the
        // buffer intact.
        if ((in.pred & rv64::FenceW) != 0) {
            flushStoreBuffer(core);
            if (in.pred == rv64::FenceW && in.succ == rv64::FenceW) {
                core.cycles += c.dmbSt;
                stats_.bump("machine.dmb_st");
            } else {
                core.cycles += c.dmbFull;
                stats_.bump("machine.dmb_full");
            }
        } else {
            core.cycles += c.dmbLd;
            stats_.bump("machine.dmb_ld");
        }
        break;
      case ROp::LrD: {
        const std::uint64_t addr = core.x[in.rs1];
        flushStoreBuffer(core);
        core.x[in.rd] = memRead(core, addr, 8);
        core.monitor = addr & ~7ULL;
        core.cycles += c.exclusive + (in.aq ? c.acquireExtra : 0) +
                       (in.rl ? c.releaseExtra : 0);
        stats_.bump("machine.exclusive_loads");
        break;
      }
      case ROp::ScD: {
        const std::uint64_t addr = core.x[in.rs1];
        const std::uint64_t value = core.x[in.rs2]; // rd may alias rs2.
        if (in.rl)
            flushStoreBuffer(core);
        bool ok = core.monitor && *core.monitor == (addr & ~7ULL);
        // Spurious SC failure is architecturally allowed; same site and
        // stream as the aarch STXR injection.
        if (ok && faults_.shouldInject(faultsites::MachineStxr)) {
            ok = false;
            ++core.pendingInjectedStxr;
        }
        if (ok) {
            core.cycles += atomicAccessCost(core, addr);
            directWrite(core, addr, 8, value);
        }
        core.x[in.rd] = ok ? 0 : 1;
        core.monitor.reset();
        core.cycles += c.exclusive + (in.aq ? c.acquireExtra : 0) +
                       (in.rl ? c.releaseExtra : 0);
        stats_.bump("machine.exclusive_stores");
        if (ok)
            noteStxrSuccess(core);
        else
            noteStxrFailure(core);
        break;
      }
      case ROp::AmoSwapD: {
        const std::uint64_t addr = core.x[in.rs1];
        const std::uint64_t src = core.x[in.rs2];
        flushStoreBuffer(core);
        core.cycles += c.casBase + atomicAccessCost(core, addr);
        const std::uint64_t old = memory_.load64(addr);
        directWrite(core, addr, 8, src);
        core.x[in.rd] = old;
        stats_.bump("machine.cas_ops");
        break;
      }
      case ROp::AmoAddD: {
        const std::uint64_t addr = core.x[in.rs1];
        const std::uint64_t src = core.x[in.rs2];
        flushStoreBuffer(core);
        core.cycles += c.casBase + atomicAccessCost(core, addr);
        const std::uint64_t old = memory_.load64(addr);
        directWrite(core, addr, 8, old + src);
        core.x[in.rd] = old;
        stats_.bump("machine.atomic_adds");
        break;
      }
      case ROp::Beq:
        core.cycles += c.branch;
        if (core.x[in.rs1] == core.x[in.rs2])
            branchTo(in.imm);
        break;
      case ROp::Bne:
        core.cycles += c.branch;
        if (core.x[in.rs1] != core.x[in.rs2])
            branchTo(in.imm);
        break;
      case ROp::Blt:
        core.cycles += c.branch;
        if (static_cast<std::int64_t>(core.x[in.rs1]) <
            static_cast<std::int64_t>(core.x[in.rs2]))
            branchTo(in.imm);
        break;
      case ROp::Bge:
        core.cycles += c.branch;
        if (static_cast<std::int64_t>(core.x[in.rs1]) >=
            static_cast<std::int64_t>(core.x[in.rs2]))
            branchTo(in.imm);
        break;
      case ROp::Bltu:
        core.cycles += c.branch;
        if (core.x[in.rs1] < core.x[in.rs2])
            branchTo(in.imm);
        break;
      case ROp::Bgeu:
        core.cycles += c.branch;
        if (core.x[in.rs1] >= core.x[in.rs2])
            branchTo(in.imm);
        break;
      case ROp::Jal:
        core.x[in.rd] = next;
        branchTo(in.imm);
        core.cycles += c.branch;
        break;
      case ROp::Helper:
        panicIf(!runtime_, "helper trap without a runtime");
        core.cycles += c.helperCall;
        stats_.bump("machine.helper_calls");
        core.cycles += runtime_->invokeHelper(
            in.helper, static_cast<std::uint16_t>(in.imm), core, *this);
        break;
      case ROp::ExitTb: {
        panicIf(!runtime_, "exit_tb trap without a runtime");
        core.cycles += c.exitTbLookup;
        stats_.bump("machine.tb_exits");
        stats_.bump("machine.tb_exit_cycles", c.exitTbLookup);
        const auto target = runtime_->onExitTb(
            static_cast<std::uint32_t>(in.imm), core, *this);
        if (!target) {
            core.halted = true;
            break;
        }
        next = *target;
        break;
      }
      case ROp::Ecall:
        // The same native syscall convention as the aarch core's SVC:
        // x0 = number, x1 = argument.
        core.cycles += c.syscall;
        switch (core.x[0]) {
          case 0:
            core.exitCode = static_cast<std::int64_t>(core.x[1]);
            core.halted = true;
            break;
          case 1:
            core.output.push_back(static_cast<char>(core.x[1]));
            break;
          case 2:
            core.x[0] = core.cycles;
            break;
          default:
            throw GuestFault("unknown host syscall");
        }
        break;
      case ROp::Ebreak:
        core.halted = true;
        break;
    }
    if (!core.halted)
        core.pc = next;
}

void
Machine::noteStxrFailure(Core &core)
{
    ++core.stxrFails;
    stats_.bump("machine.stxr_failures");
    if (config_.livelockThreshold == 0 ||
        core.stxrFails % config_.livelockThreshold != 0)
        return;
    // Livelock watchdog: after N consecutive failed acquisitions, park
    // the core for a randomized, exponentially growing window. The
    // randomization desynchronizes competing cores and the growth bounds
    // repeat collisions, so some core always completes its ldxr/stxr
    // pair between retries -- guaranteeing system-wide progress.
    if (core.backoffWindow == 0)
        core.backoffWindow = std::max<std::uint64_t>(
            1, config_.livelockBackoffBase);
    else
        core.backoffWindow =
            std::min(core.backoffWindow * 2, config_.livelockBackoffCap);
    core.cycles += 1 + rng_.below(core.backoffWindow);
    stats_.bump("machine.watchdog_backoffs");
}

void
Machine::noteStxrSuccess(Core &core)
{
    if (core.pendingInjectedStxr) {
        // The guest retried past every injected spurious failure.
        faults_.recovered(faultsites::MachineStxr, core.pendingInjectedStxr);
        core.pendingInjectedStxr = 0;
    }
    core.stxrFails = 0;
    core.backoffWindow = 0;
}

} // namespace risotto::machine
