/**
 * @file
 * Cycle cost model of the simulated Arm host.
 *
 * Constants are calibrated to reproduce the performance *shape* of the
 * paper's testbed (ThunderX2): full barriers are several times more
 * expensive than one-direction barriers (Liu et al. [51]), helper calls
 * cost two branches plus register spills, soft-float is an order of
 * magnitude slower than native FP, and contended atomics are dominated by
 * cache-line transfer latency (which is why Risotto's CAS advantage
 * vanishes under contention, Figure 15).
 */

#ifndef RISOTTO_MACHINE_COSTS_HH
#define RISOTTO_MACHINE_COSTS_HH

#include <cstdint>

namespace risotto::machine
{

/** Per-operation cycle costs. */
struct CostModel
{
    std::uint64_t alu = 1;
    std::uint64_t branch = 1;
    std::uint64_t branchTakenExtra = 1;
    std::uint64_t load = 4;
    std::uint64_t store = 1;          ///< Into the store buffer.
    std::uint64_t storeDrain = 2;     ///< Buffer entry -> memory.
    std::uint64_t dmbFull = 36;
    std::uint64_t dmbLd = 14;
    std::uint64_t dmbSt = 23;
    std::uint64_t acquireExtra = 4;   ///< LDAR/LDAPR over plain LDR.
    std::uint64_t releaseExtra = 4;   ///< STLR over plain STR.
    std::uint64_t exclusive = 7;      ///< LDXR/STXR each.
    std::uint64_t casBase = 18;       ///< Uncontended CASAL.
    std::uint64_t cacheLineTransfer = 70; ///< Line owned by another core.
    std::uint64_t cacheLineShared = 20;   ///< Read of a line another owns.
    std::uint64_t helperCall = 26;    ///< BLR + RET + spill/fill.
    std::uint64_t exitTbLookup = 14;  ///< Unchained dispatcher round trip.
    std::uint64_t superblockPromotion = 160; ///< Tier-2 region formation.
    std::uint64_t fpNative = 6;
    std::uint64_t fpSqrtNative = 18;
    std::uint64_t fpDivNative = 14;
    std::uint64_t syscall = 40;
};

} // namespace risotto::machine

#endif // RISOTTO_MACHINE_COSTS_HH
