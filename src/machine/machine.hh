/**
 * @file
 * The simulated weak-memory Arm host multiprocessor.
 *
 * Cores execute aarch code from a shared CodeBuffer against a shared flat
 * memory, with per-core FIFO-relaxed store buffers: stores enter the
 * buffer and drain to memory at scheduler-chosen times, possibly out of
 * order (Arm allows store-store reordering), giving real weak behaviours
 * for under-fenced translations. DMB ISH / ISHST flush the buffer;
 * release accesses flush before writing; exclusives and single-copy
 * atomics act on memory directly with per-core exclusive monitors.
 *
 * Costs accrue per the CostModel, and a per-line ownership map charges
 * cache-line transfer latency to contended accesses.
 */

#ifndef RISOTTO_MACHINE_MACHINE_HH
#define RISOTTO_MACHINE_MACHINE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "aarch/emitter.hh"
#include "aarch/isa.hh"
#include "gx86/memory.hh"
#include "machine/costs.hh"
#include "rv64/isa.hh"
#include "support/faultinject.hh"
#include "support/hostisa.hh"
#include "support/rng.hh"
#include "support/stats.hh"

namespace risotto::machine
{

class Machine;

/** One simulated core. */
struct Core
{
    std::uint32_t id = 0;
    std::uint64_t x[aarch::XRegCount] = {};
    bool zf = false;
    bool sf = false;
    aarch::CodeAddr pc = 0;
    bool halted = false;
    std::int64_t exitCode = 0;
    std::uint64_t cycles = 0;
    std::uint64_t retired = 0;
    std::string output;

    /** Pending stores: (address, size, value), drain order relaxed. */
    struct PendingStore
    {
        std::uint64_t addr;
        std::uint8_t size;
        std::uint64_t value;
    };
    std::vector<PendingStore> storeBuffer;

    /** Exclusive monitor: 8-byte-aligned address armed by LDXR. */
    std::optional<std::uint64_t> monitor;

    /** Consecutive failed exclusive stores (livelock watchdog input). */
    std::uint64_t stxrFails = 0;

    /** Current exponential backoff window (cycles; 0 = not backing off).*/
    std::uint64_t backoffWindow = 0;

    /** Injected spurious STXR failures not yet followed by a success. */
    std::uint64_t pendingInjectedStxr = 0;
};

/** Runtime hook: helpers invoked by translated code (the DBT runtime). */
class HelperRuntime
{
  public:
    virtual ~HelperRuntime() = default;

    /** Execute helper @p id with @p extra; may read/write core and
     * machine state. Returns extra cycles consumed by the helper body. */
    virtual std::uint64_t invokeHelper(std::uint8_t id, std::uint16_t extra,
                                       Core &core, Machine &machine) = 0;

    /** Resolve an ExitTb trap: return the next host pc for @p core.
     * Returning std::nullopt halts the core. */
    virtual std::optional<aarch::CodeAddr>
    onExitTb(std::uint32_t slot, Core &core, Machine &machine) = 0;
};

/** Per-instruction trace callback: (core, decoded instruction). */
using TraceHook =
    std::function<void(const Core &, const aarch::AInstr &)>;

/** rv64 per-instruction trace callback. */
using Rv64TraceHook =
    std::function<void(const Core &, const rv64::RInstr &)>;

/** Scheduler / weak-memory behaviour knobs. */
struct MachineConfig
{
    CostModel costs;
    std::uint64_t seed = 1;

    /** Which host ISA the code buffer holds. The RVWMO core reuses the
     * same store buffers, monitors and cost model (acquire/release
     * extras charge LR/SC annotations, the dmb costs charge FENCEs by
     * direction), so cross-backend runs compare like for like. */
    support::HostIsa hostIsa = support::HostIsa::Aarch;

    /** When set, invoked before every retired instruction (debugging /
     * instruction-trace dumps; adds no simulated cost). */
    TraceHook trace;
    /** Trace hook for rv64 hosts (hostIsa == Rv64). */
    Rv64TraceHook traceRv64;
    /** Randomize core interleaving and buffer drains (litmus stress);
     * when false, scheduling is cycle-ordered and drains are eager. */
    bool randomize = false;
    /** Allow out-of-order store-buffer drain (Arm-style). FIFO when
     * false (TSO-style). */
    bool relaxedDrain = true;
    /** Maximum buffered stores before a forced drain. */
    std::size_t storeBufferDepth = 8;

    /** Fault-injection plan for machine-level sites (machine.stxr). */
    FaultPlan faults;

    /** Per-core retired-instruction budget (0 = unlimited). The serving
     * layer uses this as its admission-control instruction budget: a
     * session that exceeds it is stopped with a BudgetExhausted (or
     * Livelock) diagnosis and evicted instead of starving its peers. */
    std::uint64_t retiredBudget = 0;

    /** Livelock watchdog: consecutive failed exclusive stores on one
     * core before a randomized backoff is applied (0 disables). */
    std::uint64_t livelockThreshold = 64;

    /** Initial randomized backoff window in cycles; doubles on repeated
     * watchdog firings up to livelockBackoffCap. */
    std::uint64_t livelockBackoffBase = 64;
    std::uint64_t livelockBackoffCap = 8192;
};

/** Why a run stopped (RunResult/diagnosis reporting). */
enum class RunDiagnosis
{
    Finished,        ///< Every core halted.
    BudgetExhausted, ///< A core hit the cycle budget doing useful work.
    Livelock,        ///< Budget hit while spinning on failed exclusives.
};

/** Short name for a diagnosis ("finished", "budget-exhausted", ...). */
std::string runDiagnosisName(RunDiagnosis diagnosis);

/** The multiprocessor. */
class Machine
{
  public:
    Machine(const aarch::CodeBuffer &code, gx86::Memory &memory,
            MachineConfig config = {});

    /** Install the DBT runtime hooks. */
    void setRuntime(HelperRuntime *runtime) { runtime_ = runtime; }

    /** Add a core starting at @p entry; returns its index. */
    std::size_t addCore(aarch::CodeAddr entry);

    Core &core(std::size_t i) { return cores_[i]; }
    const Core &core(std::size_t i) const { return cores_[i]; }
    std::size_t coreCount() const { return cores_.size(); }

    gx86::Memory &memory() { return memory_; }

    /**
     * Run until every core halts or the cycle budget is exhausted.
     * @return true when all cores halted.
     */
    bool run(std::uint64_t max_cycles_per_core = 500'000'000);

    /** Largest per-core cycle count (the parallel-execution makespan). */
    std::uint64_t makespan() const;

    /** Sum of all cores' cycles. */
    std::uint64_t totalCycles() const;

    /** Execution counters (instructions, fences, drains, ...). */
    const StatSet &stats() const { return stats_; }
    StatSet &stats() { return stats_; }

    /** The configuration this machine runs under. */
    const MachineConfig &config() const { return config_; }

    /** Machine-level fault injector (counters for machine.* sites). */
    const FaultInjector &faults() const { return faults_; }

    /** Why the last run() stopped. */
    RunDiagnosis diagnosis() const { return diagnosis_; }

    // --- Memory operations used by cores and helpers ---------------------

    /** Read with store-forwarding from @p core's buffer. */
    std::uint64_t memRead(Core &core, std::uint64_t addr,
                          std::uint8_t size);

    /** Buffer a store (or write through when buffers are disabled). */
    void memWrite(Core &core, std::uint64_t addr, std::uint8_t size,
                  std::uint64_t value);

    /** Flush @p core's entire store buffer to memory. */
    void flushStoreBuffer(Core &core);

    /** Atomic read-modify-write against memory (flushes same-address
     * entries first); charges contention. Used by CAS/exclusives and the
     * QEMU-style helper. */
    std::uint64_t atomicAccessCost(Core &core, std::uint64_t addr);

    /** Write directly to memory (atomics); clears other monitors. */
    void directWrite(Core &core, std::uint64_t addr, std::uint8_t size,
                     std::uint64_t value);

  private:
    void step(Core &core);
    void stepRv64(Core &core);
    void drainOne(Core &core);
    void chargeLineOwnership(Core &core, std::uint64_t addr, bool write);
    void clearOtherMonitors(const Core &writer, std::uint64_t addr);
    void noteStxrFailure(Core &core);
    void noteStxrSuccess(Core &core);

    const aarch::CodeBuffer &code_;
    gx86::Memory &memory_;
    MachineConfig config_;
    Rng rng_;
    FaultInjector faults_;
    RunDiagnosis diagnosis_ = RunDiagnosis::Finished;
    std::vector<Core> cores_;
    HelperRuntime *runtime_ = nullptr;
    StatSet stats_;
    /** Cache-line owner: line index -> core id. */
    std::map<std::uint64_t, std::uint32_t> lineOwner_;
    /** Atomic serialization: line index -> (last core, free-at cycle). */
    std::map<std::uint64_t, std::pair<std::uint32_t, std::uint64_t>>
        lineBusyUntil_;
};

} // namespace risotto::machine

#endif // RISOTTO_MACHINE_MACHINE_HH
