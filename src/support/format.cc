#include "support/format.hh"

#include <cctype>
#include <iomanip>

namespace risotto
{

std::string
hexString(std::uint64_t value)
{
    std::ostringstream os;
    os << "0x" << std::hex << value;
    return os.str();
}

std::string
fixedString(double value, int digits)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << value;
    return os.str();
}

std::string
padLeft(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

std::vector<std::string>
splitString(const std::string &s, char delim, bool keep_empty)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == delim) {
            if (keep_empty || !cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (keep_empty || !cur.empty())
        out.push_back(cur);
    return out;
}

std::string
trimString(const std::string &s)
{
    std::size_t begin = 0;
    std::size_t end = s.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])))
        --end;
    return s.substr(begin, end - begin);
}

} // namespace risotto
