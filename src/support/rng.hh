/**
 * @file
 * Deterministic pseudo-random source.
 *
 * Every stochastic component in the library (random litmus programs,
 * machine schedulers, workload generators) draws from a SplitMix64-seeded
 * xoshiro256** generator so that a fixed seed reproduces a run bit-for-bit.
 */

#ifndef RISOTTO_SUPPORT_RNG_HH
#define RISOTTO_SUPPORT_RNG_HH

#include <cstdint>

namespace risotto
{

/** Deterministic 64-bit pseudo-random generator (xoshiro256**). */
class Rng
{
  public:
    /** Construct with the given seed; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 expansion of the seed into the four state words.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw: true with probability @p numer / @p denom. */
    bool
    chance(std::uint64_t numer, std::uint64_t denom)
    {
        return below(denom) < numer;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

/**
 * Derive an independent stream seed from (@p seed, @p stream).
 *
 * A SplitMix64-style finalizer over the pair, so that consumers needing
 * one reproducible RNG per logical unit (one per serving session, one
 * per worker) get streams that neither collide nor correlate: seeding
 * Rng(deriveStream(s, i)) for consecutive i yields unrelated sequences,
 * unlike the naive Rng(s + i). Never returns 0, so the result stays
 * usable as a FaultPlan seed (where 0 means "disarmed").
 */
inline std::uint64_t
deriveStream(std::uint64_t seed, std::uint64_t stream)
{
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return z == 0 ? 0x9e3779b97f4a7c15ULL : z;
}

} // namespace risotto

#endif // RISOTTO_SUPPORT_RNG_HH
