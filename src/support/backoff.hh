/**
 * @file
 * Retry policy with randomized exponential backoff.
 *
 * The serving layer (and any future supervisor) retries transient
 * failures -- injected faults, corrupt-record degradations -- a bounded
 * number of times, waiting a randomized exponentially growing delay
 * between attempts so that retrying sessions decorrelate instead of
 * stampeding. Delays are expressed in simulated cycles and drawn from a
 * caller-supplied Rng, so a fixed seed reproduces the exact retry
 * schedule (the same determinism contract as FaultPlan).
 */

#ifndef RISOTTO_SUPPORT_BACKOFF_HH
#define RISOTTO_SUPPORT_BACKOFF_HH

#include <cstdint>

#include "support/rng.hh"

namespace risotto::support
{

/** Bounded-retry schedule with randomized exponential backoff. */
struct RetryPolicy
{
    /** Total attempts including the first (1 = never retry). */
    unsigned maxAttempts = 3;

    /** Backoff window before the first retry, in simulated cycles. */
    std::uint64_t baseDelay = 1024;

    /** The window stops doubling here. */
    std::uint64_t capDelay = 1 << 20;

    /** True when attempt number @p attempt (1-based) may be followed by
     * another. */
    bool
    shouldRetry(unsigned attempt) const
    {
        return attempt < maxAttempts;
    }

    /**
     * Delay before retry number @p attempt (1-based: the delay after the
     * attempt'th failure). Full jitter: uniform in [window/2, window]
     * where window = min(baseDelay << (attempt-1), capDelay), so
     * concurrent retriers spread out while the expected delay still
     * doubles per failure.
     */
    std::uint64_t
    delayFor(unsigned attempt, Rng &rng) const
    {
        if (baseDelay == 0)
            return 0;
        std::uint64_t window = baseDelay;
        for (unsigned i = 1; i < attempt && window < capDelay; ++i)
            window *= 2;
        if (window > capDelay)
            window = capDelay;
        const std::uint64_t half = window / 2;
        return half + rng.below(window - half + 1);
    }
};

} // namespace risotto::support

#endif // RISOTTO_SUPPORT_BACKOFF_HH
