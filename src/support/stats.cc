#include "support/stats.hh"

#include <algorithm>
#include <cmath>

#include "support/error.hh"
#include "support/format.hh"

namespace risotto
{

void
Accumulator::add(double sample)
{
    samples_.push_back(sample);
}

double
Accumulator::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (double s : samples_)
        sum += s;
    return sum / static_cast<double>(samples_.size());
}

double
Accumulator::min() const
{
    if (samples_.empty())
        return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
}

double
Accumulator::max() const
{
    if (samples_.empty())
        return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

double
Accumulator::stddev() const
{
    if (samples_.empty())
        return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double s : samples_)
        acc += (s - m) * (s - m);
    return std::sqrt(acc / static_cast<double>(samples_.size()));
}

ReportTable::ReportTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns))
{
    fatalIf(columns_.empty(), "ReportTable requires at least one column");
}

void
ReportTable::addRow(std::vector<std::string> cells)
{
    fatalIf(cells.size() != columns_.size(),
            "ReportTable row width mismatch in table '" + title_ + "'");
    rows_.push_back(std::move(cells));
}

void
ReportTable::addRow(const std::string &label,
                    const std::vector<double> &values, int digits)
{
    std::vector<std::string> cells;
    cells.push_back(label);
    for (double v : values)
        cells.push_back(fixedString(v, digits));
    addRow(std::move(cells));
}

void
ReportTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c)
        widths[c] = columns_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    os << "== " << title_ << " ==\n";
    for (std::size_t c = 0; c < columns_.size(); ++c)
        os << (c ? "  " : "") << padRight(columns_[c], widths[c]);
    os << '\n';
    for (std::size_t c = 0; c < columns_.size(); ++c)
        os << (c ? "  " : "") << std::string(widths[c], '-');
    os << '\n';
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "  " : "") << padRight(row[c], widths[c]);
        os << '\n';
    }
}

void
ReportTable::printCsv(std::ostream &os) const
{
    os << join(columns_, ",") << '\n';
    for (const auto &row : rows_)
        os << join(row, ",") << '\n';
}

void
StatSet::bump(const std::string &name, std::uint64_t delta)
{
    counters_[name] += delta;
}

void
StatSet::set(const std::string &name, std::uint64_t value)
{
    counters_[name] = value;
}

std::uint64_t
StatSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[name, value] : other.counters_)
        counters_[name] += value;
}

} // namespace risotto
