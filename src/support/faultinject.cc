#include "support/faultinject.hh"

namespace risotto
{

namespace
{

/** FNV-1a 64-bit, used to derive a per-site stream from the plan seed. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

bool
FaultPlan::armed() const
{
    if (seed == 0)
        return false;
    if (rate > 0.0)
        return true;
    for (const auto &[site, r] : siteRates)
        if (r > 0.0)
            return true;
    return false;
}

double
FaultPlan::rateFor(const std::string &site) const
{
    auto it = siteRates.find(site);
    return it != siteRates.end() ? it->second : rate;
}

FaultPlan
FaultPlan::allSites(std::uint64_t seed, double rate)
{
    FaultPlan plan;
    plan.seed = seed;
    plan.rate = rate;
    return plan;
}

Rng &
FaultInjector::streamFor(const std::string &site)
{
    auto it = streams_.find(site);
    if (it == streams_.end())
        it = streams_.emplace(site, Rng(plan_.seed ^ fnv1a(site))).first;
    return it->second;
}

bool
FaultInjector::shouldInject(const std::string &site)
{
    if (plan_.seed == 0)
        return false;
    const double rate = plan_.rateFor(site);
    if (rate <= 0.0)
        return false;
    // 53-bit uniform draw in [0, 1).
    const double draw =
        static_cast<double>(streamFor(site).next() >> 11) * 0x1.0p-53;
    if (draw >= rate)
        return false;
    stats_.bump("fault." + site + ".injected");
    return true;
}

void
FaultInjector::recovered(const std::string &site, std::uint64_t count)
{
    if (count)
        stats_.bump("fault." + site + ".recovered", count);
}

std::uint64_t
FaultInjector::injected(const std::string &site) const
{
    return stats_.get("fault." + site + ".injected");
}

} // namespace risotto
