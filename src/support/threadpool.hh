/**
 * @file
 * Work-stealing thread pool for the compute-bound analysis layers.
 *
 * The pool drives the exhaustive litmus enumeration, the risotto-verify
 * scheme x ablation grid, and the whole-image validation sweep. It is a
 * batch executor: run() takes a vector of tasks, distributes them
 * round-robin over per-worker deques, and blocks until every task
 * finished. Idle workers steal from a random victim (own deque LIFO for
 * locality, steals FIFO so the oldest -- usually largest -- chunk
 * migrates), which keeps the irregular partition sizes of candidate-
 * execution trees balanced without a central queue.
 *
 * Determinism contract: parallelReduce() stores each task's result in a
 * slot indexed by task id and merges the slots in index order after the
 * barrier, so the reduction is bit-identical to the serial fold no
 * matter how tasks interleave. With jobs <= 1 the pool spawns no threads
 * at all and runs every task inline, in order, on the calling thread --
 * the graceful fallback for `--jobs 1` and for single-core hosts.
 *
 * Exceptions: the first failing task (lowest task index) has its
 * exception rethrown from run() after the batch completes; once any
 * task fails, tasks that have not started yet are skipped so a poisoned
 * batch drains quickly.
 */

#ifndef RISOTTO_SUPPORT_THREADPOOL_HH
#define RISOTTO_SUPPORT_THREADPOOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace risotto::support
{

/** Batch-oriented work-stealing thread pool. */
class ThreadPool
{
  public:
    /**
     * @param jobs total workers including the calling thread; 0 means
     * defaultJobs(). With jobs <= 1 no threads are spawned and run()
     * executes tasks inline.
     */
    explicit ThreadPool(std::size_t jobs = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Workers participating in a batch (>= 1). */
    std::size_t jobs() const { return jobs_; }

    /** Hardware concurrency, at least 1. */
    static std::size_t defaultJobs();

    /**
     * Execute every task and block until all finished. The calling
     * thread participates as a worker. Rethrows the exception of the
     * lowest-indexed failing task, if any. Not reentrant.
     */
    void run(std::vector<std::function<void()>> tasks);

    /** Apply @p body to every index in [begin, end), in chunks of
     * @p grain consecutive indices per task. */
    void parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                     const std::function<void(std::size_t)> &body);

    /**
     * Map [0, n) through @p map on the pool and fold the results into
     * @p init strictly in index order (deterministic reduction: the
     * result equals the serial fold regardless of scheduling).
     *
     * @param map   T map(std::size_t index)
     * @param reduce void reduce(T &acc, T &&part)
     */
    template <typename T, typename MapFn, typename ReduceFn>
    T
    parallelReduce(std::size_t n, T init, const MapFn &map,
                   const ReduceFn &reduce)
    {
        std::vector<std::optional<T>> parts(n);
        std::vector<std::function<void()>> tasks;
        tasks.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            tasks.push_back([&parts, &map, i] { parts[i].emplace(map(i)); });
        run(std::move(tasks));
        T acc = std::move(init);
        for (std::size_t i = 0; i < n; ++i)
            reduce(acc, std::move(*parts[i]));
        return acc;
    }

  private:
    /** One worker's deque; the mutex only guards the deque itself. */
    struct Worker
    {
        std::deque<std::size_t> tasks;
        std::mutex mutex;
    };

    /** State of the batch currently executing (one at a time). */
    struct Batch
    {
        std::vector<std::function<void()>> tasks;
        std::vector<std::exception_ptr> errors;
        std::atomic<std::size_t> remaining{0};
        std::atomic<bool> failed{false};
    };

    void workerLoop(std::size_t self);
    bool takeTask(std::size_t self, std::size_t &task);
    void runTask(std::size_t task);

    std::size_t jobs_;
    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    std::mutex batchEntry_;          ///< Serializes run() callers.
    std::mutex sleepMutex_;          ///< Guards the two CVs below.
    std::condition_variable wakeCv_; ///< Workers: new batch / shutdown.
    std::condition_variable doneCv_; ///< Caller: batch drained.
    std::atomic<Batch *> batch_{nullptr}; ///< Null between batches.
    std::atomic<std::size_t> unclaimed_{0};
    std::atomic<bool> stop_{false};
};

} // namespace risotto::support

#endif // RISOTTO_SUPPORT_THREADPOOL_HH
