/**
 * @file
 * Deterministic, seed-driven fault injection.
 *
 * Robustness behaviours must be reproducible: every recoverable failure
 * path in the pipeline (translation faults, code-buffer exhaustion,
 * spurious exclusive-store failures, ...) is guarded by a *named fault
 * site*. A FaultPlan arms sites with per-site probabilities and a seed;
 * a FaultInjector draws from an independent per-site xoshiro stream so
 * that one subsystem's draws never perturb another's, and a fixed seed
 * reproduces the exact same fault schedule run after run. Injected and
 * recovered events are counted per site and exported through StatSet
 * (counters "fault.<site>.injected" / "fault.<site>.recovered").
 */

#ifndef RISOTTO_SUPPORT_FAULTINJECT_HH
#define RISOTTO_SUPPORT_FAULTINJECT_HH

#include <cstdint>
#include <map>
#include <string>

#include "support/error.hh"
#include "support/rng.hh"
#include "support/stats.hh"

namespace risotto
{

/** The registry of known fault sites. */
namespace faultsites
{
/** Frontend decode of a guest basic block fails. */
inline constexpr const char *DbtDecode = "dbt.decode";
/** Backend encode of an optimized block fails. */
inline constexpr const char *DbtEncode = "dbt.encode";
/** Host code buffer reports exhaustion during compilation. */
inline constexpr const char *DbtBuffer = "dbt.buffer";
/** Exclusive store (STXR/STLXR) fails spuriously -- architecturally
 * allowed on Arm, so injection here is behaviour-preserving by
 * construction and drives the livelock watchdog. */
inline constexpr const char *MachineStxr = "machine.stxr";
/** Loading one record of a persistent translation-cache snapshot
 * fails (simulated corruption): the record is dropped and the block
 * degrades to cold translation, never to wrong code. */
inline constexpr const char *PersistRecord = "persist.record";
/** A serving session is hit by a transient fault mid-dispatch: the
 * session is contained, rolled back to a fresh copy-on-write fork and
 * retried with backoff (see src/serve). */
inline constexpr const char *ServeSession = "serve.session";

/** All registered site names (for "arm everything" plans). */
inline constexpr const char *All[] = {DbtDecode, DbtEncode, DbtBuffer,
                                      MachineStxr, PersistRecord,
                                      ServeSession};
} // namespace faultsites

/** Declarative fault schedule: which sites fire, how often, which seed. */
struct FaultPlan
{
    /** Seed for the per-site streams; 0 disarms the whole plan. */
    std::uint64_t seed = 0;

    /** Default per-draw fault probability for armed sites. */
    double rate = 0.0;

    /** Per-site probability overrides (take precedence over rate). */
    std::map<std::string, double> siteRates;

    /** True when any site can fire. */
    bool armed() const;

    /** Probability used for @p site. */
    double rateFor(const std::string &site) const;

    /** A plan arming every registered site at @p rate. */
    static FaultPlan allSites(std::uint64_t seed, double rate);
};

/** Draws faults per a FaultPlan and counts injections/recoveries. */
class FaultInjector
{
  public:
    FaultInjector() = default;
    explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

    bool armed() const { return plan_.armed(); }

    /**
     * Deterministic Bernoulli draw for @p site; true means "inject a
     * fault now". Counts the injection.
     */
    bool shouldInject(const std::string &site);

    /** Record @p count recoveries from earlier injections at @p site. */
    void recovered(const std::string &site, std::uint64_t count = 1);

    /** Injections drawn so far at @p site. */
    std::uint64_t injected(const std::string &site) const;

    /** Per-site injected/recovered counters. */
    const StatSet &stats() const { return stats_; }

  private:
    Rng &streamFor(const std::string &site);

    FaultPlan plan_;
    std::map<std::string, Rng> streams_;
    StatSet stats_;
};

/** Thrown when an armed fault site fires (always recoverable). */
class InjectedFault : public Error
{
  public:
    explicit InjectedFault(const std::string &site)
        : Error("injected fault at " + site)
    {
    }
};

} // namespace risotto

#endif // RISOTTO_SUPPORT_FAULTINJECT_HH
