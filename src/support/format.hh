/**
 * @file
 * Small string-formatting helpers used throughout the library.
 */

#ifndef RISOTTO_SUPPORT_FORMAT_HH
#define RISOTTO_SUPPORT_FORMAT_HH

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace risotto
{

/** Join the string renderings of @p items with @p sep between elements. */
template <typename Container>
std::string
join(const Container &items, const std::string &sep)
{
    std::ostringstream os;
    bool first = true;
    for (const auto &item : items) {
        if (!first)
            os << sep;
        os << item;
        first = false;
    }
    return os.str();
}

/** Render @p value as a 0x-prefixed hexadecimal string. */
std::string hexString(std::uint64_t value);

/** Render @p value with @p digits significant fractional digits. */
std::string fixedString(double value, int digits);

/** Left-pad @p s with spaces to at least @p width characters. */
std::string padLeft(const std::string &s, std::size_t width);

/** Right-pad @p s with spaces to at least @p width characters. */
std::string padRight(const std::string &s, std::size_t width);

/** Split @p s on @p delim, dropping empty tokens when @p keep_empty=false. */
std::vector<std::string> splitString(const std::string &s, char delim,
                                     bool keep_empty = false);

/** Strip leading and trailing whitespace. */
std::string trimString(const std::string &s);

} // namespace risotto

#endif // RISOTTO_SUPPORT_FORMAT_HH
