#include "support/checksum.hh"

#include <cstring>
#include <fstream>

#include "support/error.hh"

namespace risotto::support
{

std::uint64_t
fnv1a64(const std::uint8_t *bytes, std::size_t n)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= bytes[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
fnv1a64(const std::vector<std::uint8_t> &bytes)
{
    return fnv1a64(bytes.data(), bytes.size());
}

namespace
{

// FIPS 180-4 SHA-256 round constants.
constexpr std::uint32_t K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
    0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
    0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
    0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
    0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
    0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
    0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
    0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

std::uint32_t
rotr(std::uint32_t x, unsigned n)
{
    return (x >> n) | (x << (32 - n));
}

void
sha256Block(std::uint32_t state[8], const std::uint8_t block[64])
{
    std::uint32_t w[64];
    for (int t = 0; t < 16; ++t)
        w[t] = (static_cast<std::uint32_t>(block[4 * t]) << 24) |
               (static_cast<std::uint32_t>(block[4 * t + 1]) << 16) |
               (static_cast<std::uint32_t>(block[4 * t + 2]) << 8) |
               static_cast<std::uint32_t>(block[4 * t + 3]);
    for (int t = 16; t < 64; ++t) {
        const std::uint32_t s0 = rotr(w[t - 15], 7) ^ rotr(w[t - 15], 18) ^
                                 (w[t - 15] >> 3);
        const std::uint32_t s1 = rotr(w[t - 2], 17) ^ rotr(w[t - 2], 19) ^
                                 (w[t - 2] >> 10);
        w[t] = w[t - 16] + s0 + w[t - 7] + s1;
    }
    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
    for (int t = 0; t < 64; ++t) {
        const std::uint32_t s1 =
            rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        const std::uint32_t ch = (e & f) ^ (~e & g);
        const std::uint32_t t1 = h + s1 + ch + K[t] + w[t];
        const std::uint32_t s0 =
            rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        const std::uint32_t t2 = s0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
}

} // namespace

Sha256Digest
sha256(const std::uint8_t *bytes, std::size_t n)
{
    std::uint32_t state[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                              0xa54ff53a, 0x510e527f, 0x9b05688c,
                              0x1f83d9ab, 0x5be0cd19};
    std::size_t full = n / 64;
    for (std::size_t i = 0; i < full; ++i)
        sha256Block(state, bytes + 64 * i);

    // Final block(s): the 0x80 terminator, zero padding, and the
    // 64-bit big-endian bit length.
    std::uint8_t tail[128];
    const std::size_t rest = n - 64 * full;
    if (rest > 0)
        std::memcpy(tail, bytes + 64 * full, rest);
    tail[rest] = 0x80;
    const std::size_t padded = rest + 9 <= 64 ? 64 : 128;
    std::memset(tail + rest + 1, 0, padded - rest - 1 - 8);
    const std::uint64_t bits = static_cast<std::uint64_t>(n) * 8;
    for (int i = 0; i < 8; ++i)
        tail[padded - 1 - i] = static_cast<std::uint8_t>(bits >> (8 * i));
    sha256Block(state, tail);
    if (padded == 128)
        sha256Block(state, tail + 64);

    Sha256Digest digest;
    for (int i = 0; i < 8; ++i) {
        digest[4 * i] = static_cast<std::uint8_t>(state[i] >> 24);
        digest[4 * i + 1] = static_cast<std::uint8_t>(state[i] >> 16);
        digest[4 * i + 2] = static_cast<std::uint8_t>(state[i] >> 8);
        digest[4 * i + 3] = static_cast<std::uint8_t>(state[i]);
    }
    return digest;
}

Sha256Digest
sha256(const std::vector<std::uint8_t> &bytes)
{
    return sha256(bytes.data(), bytes.size());
}

std::string
digestHex(const Sha256Digest &digest)
{
    static const char *hex = "0123456789abcdef";
    std::string out;
    out.reserve(digest.size() * 2);
    for (const std::uint8_t byte : digest) {
        out.push_back(hex[byte >> 4]);
        out.push_back(hex[byte & 0xf]);
    }
    return out;
}

std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatalIf(!in, "cannot open " + path);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    fatalIf(in.bad(), "read failed for " + path);
    return bytes;
}

bool
fileReadable(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return static_cast<bool>(in);
}

void
writeFileBytes(const std::string &path,
               const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary);
    fatalIf(!out, "cannot open " + path + " for writing");
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    fatalIf(!out, "write failed for " + path);
}

} // namespace risotto::support
