/**
 * @file
 * Checksum and file I/O helpers shared by the on-disk formats.
 *
 * Two integrity primitives back the persistent formats: FNV-1a 64 for
 * cheap per-record checksums (the RISO payload checksum uses the same
 * function) and FIPS 180-4 SHA-256 for content addressing -- the
 * persistent translation cache keys snapshots by the digest of the
 * guest image so a rebuilt binary can never be paired with stale
 * translations. The file helpers read and write whole byte vectors with
 * typed FatalErrors on I/O failure.
 */

#ifndef RISOTTO_SUPPORT_CHECKSUM_HH
#define RISOTTO_SUPPORT_CHECKSUM_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace risotto::support
{

/** FNV-1a 64-bit over @p n bytes. */
std::uint64_t fnv1a64(const std::uint8_t *bytes, std::size_t n);

/** FNV-1a 64-bit over a byte vector. */
std::uint64_t fnv1a64(const std::vector<std::uint8_t> &bytes);

/** A SHA-256 digest (FIPS 180-4). */
using Sha256Digest = std::array<std::uint8_t, 32>;

/** SHA-256 of @p n bytes. */
Sha256Digest sha256(const std::uint8_t *bytes, std::size_t n);

/** SHA-256 of a byte vector. */
Sha256Digest sha256(const std::vector<std::uint8_t> &bytes);

/** Lower-case hex rendering of a digest. */
std::string digestHex(const Sha256Digest &digest);

/** Read the whole file at @p path. @throws FatalError on I/O errors. */
std::vector<std::uint8_t> readFileBytes(const std::string &path);

/** True when @p path exists and is readable. */
bool fileReadable(const std::string &path);

/** Write @p bytes to @p path. @throws FatalError on I/O errors. */
void writeFileBytes(const std::string &path,
                    const std::vector<std::uint8_t> &bytes);

} // namespace risotto::support

#endif // RISOTTO_SUPPORT_CHECKSUM_HH
