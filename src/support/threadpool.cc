#include "support/threadpool.hh"

#include <algorithm>

#include "support/error.hh"

namespace risotto::support
{

namespace
{

/** xorshift64* step for cheap victim selection (per-worker state). */
std::uint64_t
nextRandom(std::uint64_t &state)
{
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dULL;
}

} // namespace

std::size_t
ThreadPool::defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t jobs)
    : jobs_(jobs == 0 ? defaultJobs() : jobs)
{
    if (jobs_ <= 1)
        return; // Serial fallback: no deques, no threads.
    workers_.reserve(jobs_);
    for (std::size_t i = 0; i < jobs_; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(jobs_ - 1);
    for (std::size_t i = 1; i < jobs_; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    if (threads_.empty())
        return;
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
        stop_.store(true);
    }
    wakeCv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::runTask(std::size_t task)
{
    // A claimed task pins its batch: remaining cannot reach zero (and
    // the caller cannot retire the batch) until this task finishes.
    Batch &b = *batch_.load();
    if (!b.failed.load()) {
        try {
            b.tasks[task]();
        } catch (...) {
            b.errors[task] = std::current_exception();
            b.failed.store(true);
        }
    }
    if (b.remaining.fetch_sub(1) == 1) {
        // Last task out: wake the caller blocked in run().
        std::lock_guard<std::mutex> lock(sleepMutex_);
        doneCv_.notify_all();
    }
}

bool
ThreadPool::takeTask(std::size_t self, std::size_t &task)
{
    Worker &own = *workers_[self];
    {
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            task = own.tasks.back(); // LIFO locally: cache-warm chunks.
            own.tasks.pop_back();
            unclaimed_.fetch_sub(1);
            return true;
        }
    }
    // Steal from a random victim; scan the rest so a lone straggler's
    // deque is always found.
    static thread_local std::uint64_t rng_state = 0;
    if (rng_state == 0)
        rng_state = 0x9e3779b97f4a7c15ULL ^ (self + 1);
    const std::size_t start =
        static_cast<std::size_t>(nextRandom(rng_state)) % jobs_;
    for (std::size_t k = 0; k < jobs_; ++k) {
        const std::size_t v = (start + k) % jobs_;
        if (v == self)
            continue;
        Worker &victim = *workers_[v];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.tasks.empty()) {
            task = victim.tasks.front(); // FIFO steals: oldest chunk.
            victim.tasks.pop_front();
            unclaimed_.fetch_sub(1);
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    for (;;) {
        std::size_t task;
        if (takeTask(self, task)) {
            runTask(task);
            continue;
        }
        std::unique_lock<std::mutex> lock(sleepMutex_);
        wakeCv_.wait(lock, [this] {
            return stop_.load() || unclaimed_.load() > 0;
        });
        if (stop_.load())
            return;
    }
}

void
ThreadPool::run(std::vector<std::function<void()>> tasks)
{
    if (tasks.empty())
        return;
    if (jobs_ <= 1 || tasks.size() == 1) {
        // Inline fallback: serial order, first exception propagates.
        for (auto &task : tasks)
            task();
        return;
    }

    std::lock_guard<std::mutex> entry(batchEntry_);
    Batch b;
    b.tasks = std::move(tasks);
    b.errors.resize(b.tasks.size());
    b.remaining.store(b.tasks.size());
    batch_.store(&b);

    // Distribute round-robin. The unclaimed count is raised *before*
    // each push (and every pop decrements only after removing a task),
    // so the counter never underflows even when a still-spinning worker
    // from the previous batch pops a task the moment it appears.
    for (std::size_t i = 0; i < b.tasks.size(); ++i) {
        Worker &w = *workers_[i % jobs_];
        unclaimed_.fetch_add(1);
        std::lock_guard<std::mutex> lock(w.mutex);
        w.tasks.push_back(i);
    }
    {
        // Taking the sleep mutex pairs with the CV wait: any worker that
        // went to sleep before the pushes is woken here.
        std::lock_guard<std::mutex> lock(sleepMutex_);
    }
    wakeCv_.notify_all();

    // The caller is worker 0: execute and steal until the batch drains.
    // takeTask scanning every deque and failing means every task is
    // claimed, so waiting on `remaining` alone is safe (no task ever
    // returns to a deque).
    for (;;) {
        std::size_t task;
        if (takeTask(0, task)) {
            runTask(task);
            continue;
        }
        std::unique_lock<std::mutex> lock(sleepMutex_);
        doneCv_.wait(lock, [&b] { return b.remaining.load() == 0; });
        break;
    }
    batch_.store(nullptr);

    // Deterministic error propagation: lowest-indexed failure wins.
    for (const std::exception_ptr &error : b.errors)
        if (error)
            std::rethrow_exception(error);
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        std::size_t grain,
                        const std::function<void(std::size_t)> &body)
{
    if (begin >= end)
        return;
    const std::size_t count = end - begin;
    if (grain == 0)
        grain = std::max<std::size_t>(1, count / (jobs_ * 4));
    std::vector<std::function<void()>> tasks;
    tasks.reserve((count + grain - 1) / grain);
    for (std::size_t lo = begin; lo < end; lo += grain) {
        const std::size_t hi = std::min(end, lo + grain);
        tasks.push_back([lo, hi, &body] {
            for (std::size_t i = lo; i < hi; ++i)
                body(i);
        });
    }
    run(std::move(tasks));
}

} // namespace risotto::support
