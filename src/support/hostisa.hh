/**
 * @file
 * Host instruction-set selector for the pluggable backend framework.
 *
 * The DBT, machine, verifier and persistence layers are parameterized by
 * which simulated host ISA a translation targets. Lives in support/ so
 * every layer (including machine/, which must not depend on dbt/) can
 * name the host without a dependency cycle.
 */

#ifndef RISOTTO_SUPPORT_HOSTISA_HH
#define RISOTTO_SUPPORT_HOSTISA_HH

#include <cstdint>
#include <optional>
#include <string>

namespace risotto::support
{

/** Which simulated host ISA translated code targets. */
enum class HostIsa : std::uint8_t
{
    Aarch, ///< The Arm-like host of the original pipeline (src/aarch).
    Rv64,  ///< The RISC-V RV64 subset host with RVWMO fences (src/rv64).
};

/** "aarch" or "rv64". */
inline std::string
hostIsaName(HostIsa isa)
{
    return isa == HostIsa::Rv64 ? "rv64" : "aarch";
}

/** Parse a --host= value; nullopt for anything unrecognized. */
inline std::optional<HostIsa>
parseHostIsa(const std::string &name)
{
    if (name == "aarch" || name == "arm")
        return HostIsa::Aarch;
    if (name == "rv64" || name == "riscv" || name == "rv64gc")
        return HostIsa::Rv64;
    return std::nullopt;
}

} // namespace risotto::support

#endif // RISOTTO_SUPPORT_HOSTISA_HH
