/**
 * @file
 * Lightweight statistics and tabular report helpers.
 *
 * The benchmark harness prints the same rows/series as the paper's figures;
 * ReportTable renders aligned plain-text tables and CSV for post-processing.
 */

#ifndef RISOTTO_SUPPORT_STATS_HH
#define RISOTTO_SUPPORT_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace risotto
{

/** Accumulates samples of a scalar metric and derives summary statistics. */
class Accumulator
{
  public:
    /** Record one sample. */
    void add(double sample);

    /** Number of samples recorded so far. */
    std::size_t count() const { return samples_.size(); }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Minimum sample; 0 when empty. */
    double min() const;

    /** Maximum sample; 0 when empty. */
    double max() const;

    /** Population standard deviation; 0 when empty. */
    double stddev() const;

  private:
    std::vector<double> samples_;
};

/**
 * A named-column table that renders both as aligned text and as CSV.
 *
 * Used by every bench binary to print the rows/series corresponding to a
 * paper table or figure.
 */
class ReportTable
{
  public:
    /** Construct a table with the given title and column headers. */
    ReportTable(std::string title, std::vector<std::string> columns);

    /** Append one row; must match the number of columns. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a numeric row (first cell is a label). */
    void addRow(const std::string &label, const std::vector<double> &values,
                int digits = 3);

    /** Render as an aligned plain-text table. */
    void print(std::ostream &os) const;

    /** Render as CSV (header + rows). */
    void printCsv(std::ostream &os) const;

    /** Table title. */
    const std::string &title() const { return title_; }

    /** Number of data rows. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> columns_;
    std::vector<std::vector<std::string>> rows_;
};

/** Named counters bundle used by the DBT and machine to expose run stats. */
class StatSet
{
  public:
    /** Add @p delta to counter @p name (creating it at zero). */
    void bump(const std::string &name, std::uint64_t delta = 1);

    /** Set counter @p name to @p value. */
    void set(const std::string &name, std::uint64_t value);

    /** Read counter @p name; 0 when absent. */
    std::uint64_t get(const std::string &name) const;

    /** All counters in name order. */
    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters_;
    }

    /** Merge another set into this one (summing counters). */
    void merge(const StatSet &other);

    /** Reset all counters to empty. */
    void clear() { counters_.clear(); }

  private:
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace risotto

#endif // RISOTTO_SUPPORT_STATS_HH
