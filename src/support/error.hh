/**
 * @file
 * Error-handling primitives shared by every Risotto module.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (a bug in this library), fatal() for user-caused conditions (bad input,
 * malformed images, invalid configuration). Both throw typed exceptions so
 * that tests can assert on failure modes instead of aborting the process.
 */

#ifndef RISOTTO_SUPPORT_ERROR_HH
#define RISOTTO_SUPPORT_ERROR_HH

#include <stdexcept>
#include <string>

namespace risotto
{

/** Base class of all exceptions thrown by this library. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &msg) : std::runtime_error(msg) {}
};

/** An internal invariant was violated; indicates a bug in the library. */
class PanicError : public Error
{
  public:
    explicit PanicError(const std::string &msg)
        : Error("panic: " + msg) {}
};

/** The caller supplied invalid input or configuration. */
class FatalError : public Error
{
  public:
    explicit FatalError(const std::string &msg)
        : Error("fatal: " + msg) {}
};

/** A simulated guest program performed an illegal operation. */
class GuestFault : public Error
{
  public:
    explicit GuestFault(const std::string &msg)
        : Error("guest fault: " + msg) {}
};

/**
 * Unified process exit codes for every risotto command-line tool
 * (risotto-run, risotto-litmus, risotto-verify, risotto-serve).
 *
 * One taxonomy so scripts and CI can branch on failure *class* without
 * knowing which tool produced it:
 *   0  success
 *   1  runtime error (unreadable input, internal failure)
 *   2  usage error (bad flags / arguments)
 *   3  translation-validator violation (obligation not covered)
 *   4  fault/cycle budget exhausted (a run or session was evicted:
 *      budget-exhausted or livelock diagnosis, or retries ran dry)
 */
enum class ToolExit : int
{
    Ok = 0,
    RuntimeError = 1,
    Usage = 2,
    ValidatorViolation = 3,
    BudgetExhausted = 4,
};

/** The int a tool's main() should return for @p code. */
inline int
toolExitCode(ToolExit code)
{
    return static_cast<int>(code);
}

/** Throw a PanicError; never returns. */
[[noreturn]] inline void
panic(const std::string &msg)
{
    throw PanicError(msg);
}

/** Throw a FatalError; never returns. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

/** Panic unless @p cond holds. */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

/** Fatal unless @p cond holds. */
inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

} // namespace risotto

#endif // RISOTTO_SUPPORT_ERROR_HH
