/**
 * @file
 * The session manager: N guest sessions over one shared artifact.
 *
 * Runs the admitted sessions on a work-stealing thread pool; each
 * session is an independent, deterministic function of (artifact,
 * service seed, session id), so the report is bit-identical whatever
 * --jobs is -- the same contract the parallel analysis layers honour,
 * and the lever the tests use to compare a concurrent fleet against
 * its serial reference. Aggregation rolls every session's counters and
 * final FailureKind into one structured serve.* StatSet with no
 * unknown bucket.
 */

#ifndef RISOTTO_SERVE_MANAGER_HH
#define RISOTTO_SERVE_MANAGER_HH

#include <cstdint>
#include <vector>

#include "serve/admission.hh"
#include "serve/artifact.hh"
#include "serve/session.hh"

namespace risotto::serve
{

/** Service-level configuration. */
struct ServeConfig
{
    /** Sessions requested (the arrival batch). */
    std::size_t sessions = 1;

    /** Concurrent session workers (<=1 runs inline, serially). */
    std::size_t jobs = 1;

    /** Admission control (bounded queue + shedding). */
    AdmissionPolicy admission;

    /** Per-session execution knobs (budgets, faults, retry, seed). */
    SessionOptions session;
};

/** Aggregated outcome of one serve batch. */
struct ServeReport
{
    /** Per-session results, indexed by session id. Shed sessions have
     * kind == FailureKind::Shed and ran nothing. */
    std::vector<SessionResult> sessions;

    /** Sessions that finished their guest run. */
    std::uint64_t succeeded = 0;

    /** Sessions shed at admission (never ran). */
    std::uint64_t shed = 0;

    /** Admitted sessions with a final failure classification. */
    std::uint64_t failed = 0;

    /** Structured counters: per-kind serve.* counts, artifact
     * prepare stats (persist.* drop reasons), merged session stats. */
    StatSet stats;

    /** True when every non-shed session finished. */
    bool
    allSucceeded() const
    {
        return failed == 0;
    }
};

/**
 * Run @p config.sessions sessions over @p artifact on @p config.jobs
 * workers. Never throws for per-session failures -- every session ends
 * classified in the report.
 */
ServeReport runSessions(const SharedArtifact &artifact,
                        const ServeConfig &config);

} // namespace risotto::serve

#endif // RISOTTO_SERVE_MANAGER_HH
