/**
 * @file
 * The serving layer's failure taxonomy.
 *
 * Every session the service runs ends in exactly one of these states;
 * there is deliberately no "unknown" bucket. Operators (and the chaos
 * CI job) branch on the class, so each kind maps to a stable serve.*
 * counter name and a short human-readable label.
 */

#ifndef RISOTTO_SERVE_FAILURE_HH
#define RISOTTO_SERVE_FAILURE_HH

#include <string>

namespace risotto::serve
{

/** Final classification of one serving session. */
enum class FailureKind
{
    /** Session finished; guest state is authoritative. */
    None,

    /** Load-shed at admission: the bounded queue was full. */
    Shed,

    /** An armed fault site fired and retries ran dry (transient-fault
     * containment: earlier attempts were rolled back and retried). */
    InjectedFault,

    /** The guest program itself faulted (deterministic: not retried). */
    GuestFault,

    /** Evicted: the cycle or retired-instruction budget ran out while
     * the session was doing useful work. */
    BudgetExhausted,

    /** Evicted: the budget ran out while spinning on failed exclusive
     * stores (the livelock watchdog's diagnosis). */
    Livelock,

    /** A shared-cache record failed re-validation and the degraded
     * path also could not complete the session. */
    ValidatorViolation,

    /** The warm-start snapshot was unusable and cold preparation was
     * disabled, leaving the session nothing to dispatch from. */
    SnapshotCorrupt,

    /** Any other library error (a bug surfaced as PanicError, ...). */
    Internal,
};

/** Every kind, for taxonomy-completeness iteration. */
inline constexpr FailureKind AllFailureKinds[] = {
    FailureKind::None,           FailureKind::Shed,
    FailureKind::InjectedFault,  FailureKind::GuestFault,
    FailureKind::BudgetExhausted, FailureKind::Livelock,
    FailureKind::ValidatorViolation, FailureKind::SnapshotCorrupt,
    FailureKind::Internal,
};

/** Short label: "ok", "shed", "injected-fault", ... */
std::string failureKindName(FailureKind kind);

/** The serve.* counter a session of this kind bumps
 * ("serve.sessions_ok", "serve.failed_injected_fault", ...). */
std::string failureKindStat(FailureKind kind);

} // namespace risotto::serve

#endif // RISOTTO_SERVE_FAILURE_HH
