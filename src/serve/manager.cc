#include "serve/manager.hh"

#include "support/threadpool.hh"

namespace risotto::serve
{

ServeReport
runSessions(const SharedArtifact &artifact, const ServeConfig &config)
{
    ServeReport report;
    const std::size_t requested = config.sessions;
    const std::size_t admitted =
        config.admission.admitted(requested, config.jobs);

    report.sessions.resize(requested);

    // Load shedding first: deterministic, classified, and free.
    for (std::size_t id = admitted; id < requested; ++id) {
        SessionResult &shed = report.sessions[id];
        shed.id = id;
        shed.kind = FailureKind::Shed;
        shed.attempts = 0;
        shed.note = "queue full: session shed at admission";
    }

    // Every admitted session is an independent deterministic task:
    // results are bit-identical whatever the worker count, and one
    // session's failure cannot reach another's state (private fork,
    // private counters, read-only artifact).
    support::ThreadPool pool(config.jobs);
    pool.parallelFor(0, admitted, 1, [&](std::size_t id) {
        report.sessions[id] =
            runSession(artifact, id, config.session);
    });

    // Aggregate: one counter per failure kind (no unknown bucket),
    // artifact prepare stats, and the merged per-session counters.
    report.stats.merge(artifact.stats());
    for (const FailureKind kind : AllFailureKinds)
        report.stats.set(failureKindStat(kind), 0);
    std::uint64_t retries = 0;
    std::uint64_t backoff_cycles = 0;
    for (const SessionResult &session : report.sessions) {
        report.stats.bump(failureKindStat(session.kind));
        switch (session.kind) {
          case FailureKind::None:
            ++report.succeeded;
            break;
          case FailureKind::Shed:
            ++report.shed;
            break;
          default:
            ++report.failed;
            break;
        }
        retries += session.stats.get("serve.retries");
        backoff_cycles += session.backoffCycles;
        report.stats.bump("serve.shared_hits", session.sharedHits);
        report.stats.bump("serve.shared_misses", session.sharedMisses);
        report.stats.bump("serve.fallback_blocks",
                          session.fallbackBlocks);
        report.stats.bump("serve.dirty_pages", session.dirtyPages);
        report.stats.bump(
            "serve.injected_faults",
            session.stats.get("fault.serve.session.injected"));
        report.stats.bump("serve.recovered",
                          session.stats.get("serve.recovered"));
    }
    report.stats.set("serve.sessions_requested", requested);
    report.stats.set("serve.sessions_admitted", admitted);
    report.stats.set("serve.retries", retries);
    report.stats.set("serve.backoff_cycles", backoff_cycles);
    report.stats.set("serve.jobs", config.jobs == 0 ? 1 : config.jobs);
    return report;
}

} // namespace risotto::serve
