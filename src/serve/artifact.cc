#include "serve/artifact.hh"

#include "dbt/frontend.hh"
#include "hostlib/hostlib.hh"
#include "linker/idl.hh"
#include "support/error.hh"

namespace risotto::serve
{

std::string
artifactModeName(ArtifactMode mode)
{
    switch (mode) {
      case ArtifactMode::Warm:
        return "warm";
      case ArtifactMode::Cold:
        return "cold";
      case ArtifactMode::InterpreterOnly:
        return "interp";
    }
    return "interp";
}

SharedArtifact::SharedArtifact(gx86::GuestImage image,
                               ArtifactConfig config)
    : image_(std::move(image)), options_(std::move(config))
{
    if (options_.loadHostLibraries)
        hostlib::registerAllLibraries(registry_);
    std::string idl_text;
    if (options_.loadHostLibraries)
        idl_text = hostlib::fullIdl();
    linker_ = std::make_unique<linker::HostLinker>(
        linker::parseIdl(idl_text), registry_);
    linker_->scanImage(image_);
    dbt_ = std::make_unique<dbt::Dbt>(image_, options_.config,
                                      linker_.get(), linker_.get());

    // A standalone certificate installs before any translation so the
    // warm reload and the cold sweep both benefit from its claims.
    // Failure at any step just means full validation.
    if (!options_.certificatePath.empty() &&
        support::fileReadable(options_.certificatePath)) {
        analysis::Certificate cert;
        if (analysis::parseCertificate(
                support::readFileBytes(options_.certificatePath), cert))
            dbt_->setCertificate(std::move(cert));
        else
            stats_.bump("analysis.cert_parse_failed");
    }

    // Populate the shared cache exactly once. Every rung of the ladder
    // below leaves the artifact in a correct state; the rungs only trade
    // away speed.
    if (options_.interpreterOnly) {
        mode_ = ArtifactMode::InterpreterOnly;
    } else {
        if (!options_.snapshotPath.empty())
            report_ = dbt_->loadPersistentCache(options_.snapshotPath,
                                                options_.validateSnapshot);
        if (report_.applied && report_.loaded > 0) {
            mode_ = ArtifactMode::Warm;
        } else {
            // No snapshot, or an unusable one (wrong key, corrupt
            // header, every record rejected): fall back to cold
            // preparation so sessions still mostly run translated code.
            mode_ = ArtifactMode::Cold;
            if (options_.precompile) {
                try {
                    // Share the engine's pre-decoded segment so the
                    // reachability BFS is decode-free.
                    for (const gx86::Addr head : dbt::reachableBlocks(
                             image_, dbt_->config(),
                             dbt_->segment().get()))
                        dbt_->lookupOrTranslate(head);
                } catch (const Error &) {
                    // Memory pressure (code buffer exhausted) or a
                    // pathological image: keep whatever translated and
                    // let the rest interpret. Never fatal.
                    stats_.bump("serve.artifact_precompile_aborted");
                }
            } else {
                mode_ = ArtifactMode::InterpreterOnly;
            }
        }
    }

    // The pristine memory template every session forks from.
    auto memory = std::make_shared<gx86::Memory>();
    memory->loadImage(image_);
    memory_ = std::move(memory);

    // Freeze: harvest the prepare-time counters (persist.* per-reason
    // drops included) -- sessions never touch the engine's stats again.
    stats_.merge(dbt_->stats());
    stats_.merge(dbt_->faults().stats());
    stats_.set("serve.artifact_mode_warm",
               mode_ == ArtifactMode::Warm ? 1 : 0);
    stats_.set("serve.artifact_mode_cold",
               mode_ == ArtifactMode::Cold ? 1 : 0);
    stats_.set("serve.artifact_mode_interp",
               mode_ == ArtifactMode::InterpreterOnly ? 1 : 0);
    stats_.set("serve.artifact_blocks", cache().size());
    stats_.set("serve.artifact_snapshot_loaded", report_.loaded);
    stats_.set("serve.artifact_snapshot_rejected", report_.rejected);
}

SharedArtifact::~SharedArtifact() = default;

} // namespace risotto::serve
