/**
 * @file
 * Admission control: a bounded session queue with load shedding.
 *
 * The service runs at most `jobs` sessions concurrently and holds at
 * most `queueCapacity` more waiting. A batch of arrivals beyond
 * jobs + queueCapacity is shed immediately -- a deliberate, classified
 * rejection (FailureKind::Shed) instead of unbounded queue growth.
 * Shedding is deterministic (highest session ids first), so a serve run
 * is reproducible and the surviving set is independent of scheduling.
 */

#ifndef RISOTTO_SERVE_ADMISSION_HH
#define RISOTTO_SERVE_ADMISSION_HH

#include <cstddef>

namespace risotto::serve
{

/** Bounded-queue admission policy. */
struct AdmissionPolicy
{
    /** Waiting slots behind the running sessions; 0 = unbounded. */
    std::size_t queueCapacity = 0;

    /**
     * Sessions admitted from a batch of @p requested arrivals when
     * @p jobs run concurrently. The rest are shed.
     */
    std::size_t
    admitted(std::size_t requested, std::size_t jobs) const
    {
        if (queueCapacity == 0)
            return requested;
        const std::size_t workers = jobs == 0 ? 1 : jobs;
        const std::size_t capacity = workers + queueCapacity;
        return requested < capacity ? requested : capacity;
    }
};

} // namespace risotto::serve

#endif // RISOTTO_SERVE_ADMISSION_HH
