/**
 * @file
 * One serving session: a fault-isolated guest run over the shared
 * artifact.
 *
 * A session owns everything mutable about its run -- a copy-on-write
 * fork of the template memory, a Machine over the shared (read-only)
 * code buffer, a private jump cache, private counters, and private
 * fault/backoff RNG streams derived from (service seed, session id) so
 * results are bit-identical whatever --jobs is. Containment is
 * structural: a failing attempt is discarded fork and all, the retry
 * re-forks pristine state, and nothing a session does can write to the
 * artifact.
 */

#ifndef RISOTTO_SERVE_SESSION_HH
#define RISOTTO_SERVE_SESSION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "machine/machine.hh"
#include "serve/artifact.hh"
#include "serve/failure.hh"
#include "support/backoff.hh"
#include "support/faultinject.hh"
#include "support/stats.hh"

namespace risotto::serve
{

/** Per-session knobs (shared by every session of one service run). */
struct SessionOptions
{
    /** Guest threads per session (thread id in guest r0). */
    std::size_t threads = 1;

    /** Cycle budget per core per attempt. */
    std::uint64_t maxCyclesPerCore = 500'000'000;

    /** Retired-instruction budget per core (0 = unlimited); exceeding
     * it evicts the session with a BudgetExhausted / Livelock
     * diagnosis. */
    std::uint64_t insnBudget = 0;

    /** Service seed; per-session streams derive from (seed, id). */
    std::uint64_t seed = 1;

    /** Fault plan; the per-session, per-attempt stream derives from
     * (faults.seed, id, attempt) so a retry re-draws its luck while
     * the whole run stays reproducible. */
    FaultPlan faults;

    /** Transient-failure retry schedule. */
    support::RetryPolicy retry;
};

/** Outcome of one session (after any retries). */
struct SessionResult
{
    std::uint64_t id = 0;

    /** Final classification; None means the guest finished. */
    FailureKind kind = FailureKind::Internal;

    /** Machine diagnosis of the last attempt. */
    machine::RunDiagnosis diagnosis = machine::RunDiagnosis::Finished;

    bool finished = false;

    /** Attempts consumed (1 = no retry). */
    unsigned attempts = 0;

    /** Simulated cycles spent backing off between attempts. */
    std::uint64_t backoffCycles = 0;

    /** Per-guest-thread results of the last attempt. */
    std::vector<std::int64_t> exitCodes;
    std::vector<std::string> outputs;

    /** Makespan of the last attempt. */
    std::uint64_t makespan = 0;

    /** makespan + backoffCycles: the session's observed latency. */
    std::uint64_t latency = 0;

    /** Copy-on-write pages privatized by the last attempt. */
    std::uint64_t dirtyPages = 0;

    /** Shared-cache dispatch profile of the last attempt. */
    std::uint64_t sharedHits = 0;
    std::uint64_t sharedMisses = 0;
    std::uint64_t fallbackBlocks = 0;

    /** Machine + runtime + fault counters of the last attempt, plus
     * serve.retries / serve.backoff_cycles accumulated across all. */
    StatSet stats;

    /** Error message of the final failure (empty on success). */
    std::string note;
};

/**
 * Run session @p id to completion over @p artifact: fork, execute,
 * and on a transient failure roll back and retry with randomized
 * exponential backoff per @p options.retry. Never throws; every
 * outcome is classified in the result's FailureKind.
 */
SessionResult runSession(const SharedArtifact &artifact, std::uint64_t id,
                         const SessionOptions &options);

} // namespace risotto::serve

#endif // RISOTTO_SERVE_SESSION_HH
