/**
 * @file
 * The shared, frozen translation artifact behind a serving fleet.
 *
 * One SharedArtifact is prepared per service: it owns the host-library
 * registry, the dynamic linker, and a DBT engine whose translation
 * cache is populated exactly once -- warm-seeded from a persistent
 * .rtbc snapshot when one is given (every record checksum-, decode- and
 * validator-checked on the way in), cold-prepared by translating every
 * statically reachable block otherwise. After prepare() the artifact is
 * frozen: sessions dispatch against the code buffer, translation cache
 * and chain slots strictly read-only (TranslationCache::findShared),
 * each with a private jump cache and a private copy-on-write memory
 * fork, so a corrupted or faulting session can never poison its peers.
 *
 * Degradation ladder (most capable first):
 *   Warm            snapshot applied; dropped records interpret per block
 *   Cold            no/unusable snapshot; reachable blocks pre-translated
 *   InterpreterOnly nothing pre-translated (forced, or the code buffer
 *                   exhausted during preparation); sessions interpret
 *                   every block -- slow, never wrong
 */

#ifndef RISOTTO_SERVE_ARTIFACT_HH
#define RISOTTO_SERVE_ARTIFACT_HH

#include <memory>
#include <string>

#include "dbt/dbt.hh"
#include "gx86/memory.hh"
#include "linker/hostlinker.hh"

namespace risotto::serve
{

/** How a prepared artifact serves translations. */
enum class ArtifactMode
{
    Warm,            ///< Snapshot records dispatch from the shared cache.
    Cold,            ///< Reachable blocks pre-translated at prepare time.
    InterpreterOnly, ///< No shared translations; per-block interpretation.
};

/** Short name: "warm" / "cold" / "interp". */
std::string artifactModeName(ArtifactMode mode);

/** Options for preparing a SharedArtifact. */
struct ArtifactConfig
{
    /** DBT variant the shared code is produced under. */
    dbt::DbtConfig config = dbt::DbtConfig::risotto();

    /** Load the bundled host libraries into the dynamic linker. */
    bool loadHostLibraries = true;

    /** Warm-start snapshot path; empty prepares cold. */
    std::string snapshotPath;

    /** Re-check every snapshot record against the obligation-graph
     * validator before it becomes dispatchable. */
    bool validateSnapshot = true;

    /** Pre-translate every statically reachable block when no snapshot
     * applied (the Cold rung). */
    bool precompile = true;

    /** Force the InterpreterOnly rung (memory-pressure response: no
     * shared code beyond the dispatch stub is kept). */
    bool interpreterOnly = false;

    /** Standalone certificate file (RACF) to install before preparing;
     * empty relies on the one embedded in the snapshot, if any. A
     * certificate that fails to parse or match is ignored (counted
     * under analysis.*): the artifact falls back to full validation. */
    std::string certificatePath;
};

/**
 * The frozen per-service translation artifact. Thread-safety: after
 * construction every accessor is const and touches no mutable state,
 * so any number of session threads may read concurrently.
 */
class SharedArtifact
{
  public:
    /** Prepare (and freeze) the artifact for @p image. */
    explicit SharedArtifact(gx86::GuestImage image,
                            ArtifactConfig config = {});
    ~SharedArtifact();

    SharedArtifact(const SharedArtifact &) = delete;
    SharedArtifact &operator=(const SharedArtifact &) = delete;

    ArtifactMode mode() const { return mode_; }

    /** Snapshot import outcome (loaded / rejected counts); default-
     * constructed when no snapshot was requested. */
    const dbt::PersistReport &persistReport() const { return report_; }

    const gx86::GuestImage &image() const { return image_; }
    const dbt::DbtConfig &config() const { return dbt_->config(); }
    const aarch::CodeBuffer &code() const { return dbt_->codeBuffer(); }
    const dbt::TranslationCache &cache() const { return dbt_->cache(); }
    const dbt::ChainManager &chains() const { return dbt_->chains(); }
    const dbt::ImportResolver *resolver() const
    {
        return dbt_->resolver();
    }
    dbt::HostCallHandler *hostcalls() const { return dbt_->hostcalls(); }

    /** The engine's per-image decoder cache (null when the artifact's
     * DbtConfig disables it). Immutable after prepare, so every session
     * of the fleet dispatches its interpreter fallback from the same
     * pre-decoded entries concurrently. */
    const gx86::DecodedSegment *segment() const
    {
        return dbt_->segment().get();
    }

    /** The shared dynamic-dispatch stub sessions start their cores at
     * (target guest pc in DynExitReg). */
    aarch::CodeAddr dynStub() const { return dbt_->dynInterpStub(); }

    /** The engine's whole-image analysis (null unless the artifact's
     * DbtConfig enables it). */
    const analysis::ImageAnalysis *analysis() const
    {
        return dbt_->analysis();
    }

    /** The installed translation certificate, or null. */
    const analysis::Certificate *certificate() const
    {
        return dbt_->certificate();
    }

    /** Guest entry pc. */
    gx86::Addr entryPc() const { return image_.entry; }

    /** The pristine guest memory sessions fork from (image loaded,
     * nothing executed). */
    const std::shared_ptr<const gx86::Memory> &templateMemory() const
    {
        return memory_;
    }

    /** Prepare-time counters: persist.* per-reason drop counts, the
     * serve.artifact_* gauges, translation stats of the prepare. */
    const StatSet &stats() const { return stats_; }

  private:
    gx86::GuestImage image_;
    ArtifactConfig options_;
    linker::HostLibraryRegistry registry_;
    std::unique_ptr<linker::HostLinker> linker_;
    std::unique_ptr<dbt::Dbt> dbt_;
    std::shared_ptr<const gx86::Memory> memory_;
    dbt::PersistReport report_;
    ArtifactMode mode_ = ArtifactMode::Cold;
    StatSet stats_;
};

} // namespace risotto::serve

#endif // RISOTTO_SERVE_ARTIFACT_HH
