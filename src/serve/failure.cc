#include "serve/failure.hh"

namespace risotto::serve
{

std::string
failureKindName(FailureKind kind)
{
    switch (kind) {
      case FailureKind::None:
        return "ok";
      case FailureKind::Shed:
        return "shed";
      case FailureKind::InjectedFault:
        return "injected-fault";
      case FailureKind::GuestFault:
        return "guest-fault";
      case FailureKind::BudgetExhausted:
        return "budget-exhausted";
      case FailureKind::Livelock:
        return "livelock";
      case FailureKind::ValidatorViolation:
        return "validator-violation";
      case FailureKind::SnapshotCorrupt:
        return "snapshot-corrupt";
      case FailureKind::Internal:
        return "internal";
    }
    return "internal";
}

std::string
failureKindStat(FailureKind kind)
{
    switch (kind) {
      case FailureKind::None:
        return "serve.sessions_ok";
      case FailureKind::Shed:
        return "serve.sessions_shed";
      case FailureKind::InjectedFault:
        return "serve.failed_injected_fault";
      case FailureKind::GuestFault:
        return "serve.failed_guest_fault";
      case FailureKind::BudgetExhausted:
        return "serve.failed_budget_exhausted";
      case FailureKind::Livelock:
        return "serve.failed_livelock";
      case FailureKind::ValidatorViolation:
        return "serve.failed_validator_violation";
      case FailureKind::SnapshotCorrupt:
        return "serve.failed_snapshot_corrupt";
      case FailureKind::Internal:
        return "serve.failed_internal";
    }
    return "serve.failed_internal";
}

} // namespace risotto::serve
