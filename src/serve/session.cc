#include "serve/session.hh"

#include "dbt/backend.hh"
#include "dbt/fallback.hh"
#include "dbt/frontend.hh"
#include "support/rng.hh"

namespace risotto::serve
{

using aarch::CodeAddr;
using machine::Core;
using machine::Machine;

namespace
{

/**
 * The per-session dispatch runtime against a frozen artifact.
 *
 * Mirrors Dbt::onExitTb minus everything mutable: no translation, no
 * execution-count profiling, no chain patching. A shared-cache hit
 * jumps straight to the frozen translation; a miss (record dropped at
 * import, or InterpreterOnly mode) interprets exactly one guest block
 * and re-enters through the shared dynamic stub. Helper traps go
 * through the same invokeRuntimeHelper body translated code uses under
 * a private counter set.
 */
class SessionRuntime : public machine::HelperRuntime
{
  public:
    SessionRuntime(const SharedArtifact &artifact, const FaultPlan &plan,
                   StatSet &stats)
        : artifact_(artifact), faults_(plan), stats_(stats)
    {
    }

    std::uint64_t
    invokeHelper(std::uint8_t id, std::uint16_t extra, Core &core,
                 Machine &machine) override
    {
        return dbt::invokeRuntimeHelper(id, extra, core, machine,
                                        artifact_.hostcalls(), stats_);
    }

    std::optional<CodeAddr>
    onExitTb(std::uint32_t slot_index, Core &core,
             Machine &machine) override
    {
        // The session-level transient-fault site: one draw per
        // dispatch. A hit abandons the whole attempt (the manager
        // rolls the fork back and retries), modelling a fault that
        // corrupted session -- never shared -- state.
        if (faults_.armed() &&
            faults_.shouldInject(faultsites::ServeSession))
            throw InjectedFault(faultsites::ServeSession);

        const dbt::ExitSlot &slot = artifact_.chains().slot(slot_index);
        const std::uint64_t target_pc =
            slot.dynamic ? core.x[dbt::DynExitReg] : slot.guestPc;
        if (target_pc == dbt::HaltPc)
            return std::nullopt;

        if (artifact_.mode() != ArtifactMode::InterpreterOnly) {
            if (const dbt::TbInfo *tb =
                    artifact_.cache().findShared(target_pc, jumpCache_)) {
                stats_.bump("serve.shared_hits");
                return tb->entry;
            }
        }

        // Degraded rung: the block has no shared translation (record
        // dropped at import, never statically reachable, or
        // InterpreterOnly). Interpret one block, then re-dispatch.
        stats_.bump("serve.fallback_blocks");
        const std::uint64_t next = dbt::interpretBlock(
            artifact_.image(), artifact_.config(), artifact_.resolver(),
            artifact_.hostcalls(), artifact_.segment(), target_pc, core,
            machine, stats_);
        if (core.halted || next == dbt::HaltPc)
            return std::nullopt;
        core.x[dbt::DynExitReg] = next;
        return artifact_.dynStub();
    }

    const FaultInjector &faults() const { return faults_; }
    const dbt::SessionJumpCache &jumpCache() const { return jumpCache_; }

  private:
    const SharedArtifact &artifact_;
    FaultInjector faults_;
    StatSet &stats_;
    dbt::SessionJumpCache jumpCache_;
};

/** One attempt's raw outcome (before retry policy). */
struct Attempt
{
    FailureKind kind = FailureKind::None;
    bool finished = false;
    machine::RunDiagnosis diagnosis = machine::RunDiagnosis::Finished;
    std::vector<std::int64_t> exitCodes;
    std::vector<std::string> outputs;
    std::uint64_t makespan = 0;
    std::uint64_t dirtyPages = 0;
    std::uint64_t sharedHits = 0;
    std::uint64_t sharedMisses = 0;
    StatSet stats;
    std::string note;
};

Attempt
runAttempt(const SharedArtifact &artifact, std::uint64_t id,
           unsigned attempt, const SessionOptions &options)
{
    Attempt out;

    // Roll-back-able state: a fresh fork per attempt. Pages privatize
    // on first write; dropping the fork is the rollback.
    gx86::Memory memory = gx86::Memory::fork(artifact.templateMemory());

    machine::MachineConfig mcfg;
    mcfg.seed = deriveStream(options.seed, 2 * id);
    mcfg.retiredBudget = options.insnBudget;
    // Sessions execute whatever ISA the shared artifact's backend
    // emitted.
    mcfg.hostIsa = artifact.config().host;
    FaultPlan plan = options.faults;
    if (plan.armed())
        // Independent stream per (session, attempt): a retry re-draws
        // its fault schedule, and the whole fleet stays reproducible
        // from one seed.
        plan.seed = deriveStream(plan.seed, id * 127 + attempt);
    mcfg.faults = plan;

    Machine machine(artifact.code(), memory, mcfg);
    SessionRuntime runtime(artifact, plan, out.stats);
    machine.setRuntime(&runtime);

    for (std::size_t t = 0; t < options.threads; ++t) {
        const std::size_t index = machine.addCore(artifact.dynStub());
        Core &core = machine.core(index);
        core.x[0] = t; // Thread id in guest r0, as Emulator::run does.
        core.x[gx86::Rsp] = gx86::DefaultStackTop - t * 0x40000;
        core.x[dbt::DynExitReg] = artifact.entryPc();
    }

    try {
        out.finished = machine.run(options.maxCyclesPerCore);
        out.diagnosis = machine.diagnosis();
        if (out.finished)
            out.kind = FailureKind::None;
        else if (out.diagnosis == machine::RunDiagnosis::Livelock)
            out.kind = FailureKind::Livelock;
        else
            out.kind = FailureKind::BudgetExhausted;
    } catch (const InjectedFault &e) {
        out.kind = FailureKind::InjectedFault;
        out.note = e.what();
    } catch (const GuestFault &e) {
        out.kind = FailureKind::GuestFault;
        out.note = e.what();
    } catch (const Error &e) {
        out.kind = FailureKind::Internal;
        out.note = e.what();
    }

    for (std::size_t t = 0; t < machine.coreCount(); ++t) {
        out.exitCodes.push_back(machine.core(t).exitCode);
        out.outputs.push_back(machine.core(t).output);
    }
    out.makespan = machine.makespan();
    out.dirtyPages = memory.dirtyPages();
    out.sharedHits = out.stats.get("serve.shared_hits");
    out.sharedMisses = runtime.jumpCache().misses();
    out.stats.merge(machine.stats());
    out.stats.merge(machine.faults().stats());
    out.stats.merge(runtime.faults().stats());
    return out;
}

} // namespace

SessionResult
runSession(const SharedArtifact &artifact, std::uint64_t id,
           const SessionOptions &options)
{
    SessionResult res;
    res.id = id;
    Rng backoff(deriveStream(options.seed, 2 * id + 1));

    for (unsigned attempt = 1;; ++attempt) {
        Attempt a = runAttempt(artifact, id, attempt, options);
        res.attempts = attempt;
        res.kind = a.kind;
        res.diagnosis = a.diagnosis;
        res.finished = a.finished;
        res.exitCodes = std::move(a.exitCodes);
        res.outputs = std::move(a.outputs);
        res.makespan = a.makespan;
        res.dirtyPages = a.dirtyPages;
        res.sharedHits = a.sharedHits;
        res.sharedMisses = a.sharedMisses;
        res.fallbackBlocks = a.stats.get("serve.fallback_blocks");
        res.stats = std::move(a.stats);
        res.note = a.note;

        if (a.kind == FailureKind::None) {
            if (attempt > 1) {
                // The transient faults earlier attempts hit were
                // successfully retried past.
                res.stats.bump("serve.recovered", attempt - 1);
                res.note.clear();
            }
            break;
        }
        // Only transient failures retry: an injected fault may pass on
        // a fresh draw; guest faults and budget evictions are
        // deterministic and would only burn the budget again.
        const bool transient = a.kind == FailureKind::InjectedFault ||
                               a.kind == FailureKind::Internal;
        if (!transient || !options.retry.shouldRetry(attempt))
            break;
        res.backoffCycles += options.retry.delayFor(attempt, backoff);
    }

    res.stats.bump("serve.retries", res.attempts - 1);
    res.stats.set("serve.backoff_cycles", res.backoffCycles);
    res.latency = res.makespan + res.backoffCycles;
    return res;
}

} // namespace risotto::serve
