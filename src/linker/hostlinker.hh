/**
 * @file
 * The dynamic host library linker of Section 6.2.
 *
 * Workflow (paper Figure 11): the IDL describes the function signatures
 * to host-link (1); the loader scans the image's .dynsym for imported
 * functions and records PLT entries with their signatures (2); when the
 * DBT reaches a described PLT entry it emits a marshalling host call (4,
 * 5) instead of translating the guest library (3).
 *
 * The guest calling convention marshalled here: arguments in guest
 * registers r1..r6 (doubles as IEEE-754 bit patterns), return value in
 * guest r0. Marshalling copies guest registers to host argument slots
 * and back, charged per argument.
 */

#ifndef RISOTTO_LINKER_HOSTLINKER_HH
#define RISOTTO_LINKER_HOSTLINKER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dbt/hostcall.hh"
#include "dbt/resolver.hh"
#include "gx86/image.hh"
#include "linker/idl.hh"

namespace risotto::linker
{

/**
 * A native host function: receives marshalled arguments and the guest
 * memory (for ptr parameters), returns the result value and reports the
 * native body's cycle cost through @p cost.
 */
using NativeFn = std::function<std::uint64_t(
    const std::vector<std::uint64_t> &args, gx86::Memory &memory,
    std::uint64_t &cost)>;

/** A registry of native host library functions ("the host's .so files").*/
class HostLibraryRegistry
{
  public:
    /** Register a native function under @p name. */
    void add(const std::string &name, NativeFn fn);

    /** True when a native implementation of @p name exists. */
    bool contains(const std::string &name) const;

    /** Look up a function; throws FatalError when absent. */
    const NativeFn &lookup(const std::string &name) const;

    /** Names of all registered functions. */
    std::vector<std::string> names() const;

  private:
    std::map<std::string, NativeFn> functions_;
};

/** Marshalling cost constants (Section 7.3's overhead discussion). */
struct MarshalCosts
{
    std::uint64_t base = 14;   ///< Transition into/out of native code.
    std::uint64_t perArg = 7;  ///< Per-argument register copy/convert.
};

/**
 * The dynamic host linker: resolves imports described in the IDL to
 * native host functions and services the resulting HostCall helpers.
 */
class HostLinker : public dbt::ImportResolver, public dbt::HostCallHandler
{
  public:
    /**
     * @param idl parsed signature descriptions (step 1 of Figure 11).
     * @param registry available native host libraries.
     */
    HostLinker(std::vector<FunctionSignature> idl,
               const HostLibraryRegistry &registry,
               MarshalCosts costs = {});

    /**
     * Scan @p image's dynamic symbols and build the PLT lookup table
     * (step 2 of Figure 11). Returns the number of host-linked symbols.
     */
    std::size_t scanImage(const gx86::GuestImage &image);

    /** Host-linked function names (after scanImage). */
    std::vector<std::string> linkedFunctions() const;

    // --- dbt::ImportResolver ----------------------------------------------

    std::optional<std::uint16_t>
    resolve(const std::string &name) const override;

    // --- dbt::HostCallHandler ---------------------------------------------

    std::uint64_t invokeHostFunction(std::uint16_t index,
                                     machine::Core &core,
                                     machine::Machine &machine) override;

  private:
    struct LinkedFunction
    {
        FunctionSignature signature;
        NativeFn fn;
    };

    std::vector<FunctionSignature> idl_;
    const HostLibraryRegistry &registry_;
    MarshalCosts costs_;
    std::vector<LinkedFunction> linked_;
    std::map<std::string, std::uint16_t> byName_;
};

} // namespace risotto::linker

#endif // RISOTTO_LINKER_HOSTLINKER_HH
