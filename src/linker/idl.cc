#include "linker/idl.hh"

#include <sstream>

#include "support/error.hh"
#include "support/format.hh"

namespace risotto::linker
{

std::string
idlTypeName(IdlType type)
{
    switch (type) {
      case IdlType::Void: return "void";
      case IdlType::I64: return "i64";
      case IdlType::U64: return "u64";
      case IdlType::F64: return "double";
      case IdlType::Ptr: return "ptr";
    }
    panic("unknown IDL type");
}

std::string
FunctionSignature::toString() const
{
    std::ostringstream os;
    os << idlTypeName(ret) << " " << name << "(";
    for (std::size_t i = 0; i < args.size(); ++i)
        os << (i ? ", " : "") << idlTypeName(args[i]);
    os << ")";
    return os.str();
}

namespace
{

IdlType
parseType(const std::string &token, int line, bool allow_void)
{
    if (token == "void" && allow_void)
        return IdlType::Void;
    if (token == "i64" || token == "int" || token == "long")
        return IdlType::I64;
    if (token == "u64")
        return IdlType::U64;
    if (token == "double" || token == "f64")
        return IdlType::F64;
    if (token == "ptr" || token == "void*" || token == "char*")
        return IdlType::Ptr;
    fatal("IDL line " + std::to_string(line) + ": unknown type '" +
          token + "'");
}

} // namespace

std::vector<FunctionSignature>
parseIdl(const std::string &text)
{
    std::vector<FunctionSignature> out;
    int line_no = 0;
    for (const std::string &raw : splitString(text, '\n')) {
        ++line_no;
        std::string line = trimString(raw);
        if (line.empty() || line[0] == '#')
            continue;
        if (line.back() == ';')
            line.pop_back();
        const std::size_t open = line.find('(');
        const std::size_t close = line.rfind(')');
        fatalIf(open == std::string::npos || close == std::string::npos ||
                    close < open,
                "IDL line " + std::to_string(line_no) +
                    ": expected 'ret name(args)'");

        const std::string head = trimString(line.substr(0, open));
        const std::size_t space = head.find_last_of(" \t");
        fatalIf(space == std::string::npos,
                "IDL line " + std::to_string(line_no) +
                    ": missing return type");
        FunctionSignature sig;
        sig.ret = parseType(trimString(head.substr(0, space)), line_no,
                            /*allow_void=*/true);
        sig.name = trimString(head.substr(space + 1));
        fatalIf(sig.name.empty(), "IDL line " + std::to_string(line_no) +
                                      ": missing function name");

        const std::string args =
            trimString(line.substr(open + 1, close - open - 1));
        if (!args.empty() && args != "void") {
            for (const std::string &tok : splitString(args, ',')) {
                sig.args.push_back(parseType(trimString(tok), line_no,
                                             /*allow_void=*/false));
            }
        }
        out.push_back(std::move(sig));
    }
    return out;
}

} // namespace risotto::linker
