/**
 * @file
 * The Interface Definition Language of Section 6.2.
 *
 * Function signatures are described "in a form similar to C function
 * prototypes", one per line:
 *
 *     double sin(double);
 *     i64 md5(ptr, i64);
 *     void sqlite_exec(ptr, i64);
 *
 * Types: i64 (signed integer), u64, double, ptr (guest address), void
 * (return only). Lines starting with '#' are comments.
 */

#ifndef RISOTTO_LINKER_IDL_HH
#define RISOTTO_LINKER_IDL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace risotto::linker
{

/** Parameter / return types the marshaller understands. */
enum class IdlType : std::uint8_t
{
    Void,
    I64,
    U64,
    F64,
    Ptr,
};

/** Name of an IDL type. */
std::string idlTypeName(IdlType type);

/** A function signature from the IDL. */
struct FunctionSignature
{
    std::string name;
    IdlType ret = IdlType::Void;
    std::vector<IdlType> args;

    /** Rendering, e.g. "double sin(double)". */
    std::string toString() const;
};

/**
 * Parse an IDL document.
 * @throws FatalError on syntax errors (with line information).
 */
std::vector<FunctionSignature> parseIdl(const std::string &text);

} // namespace risotto::linker

#endif // RISOTTO_LINKER_IDL_HH
