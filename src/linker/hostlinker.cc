#include "linker/hostlinker.hh"

#include "support/error.hh"

namespace risotto::linker
{

void
HostLibraryRegistry::add(const std::string &name, NativeFn fn)
{
    fatalIf(functions_.count(name),
            "native function registered twice: " + name);
    functions_[name] = std::move(fn);
}

bool
HostLibraryRegistry::contains(const std::string &name) const
{
    return functions_.count(name) > 0;
}

const NativeFn &
HostLibraryRegistry::lookup(const std::string &name) const
{
    auto it = functions_.find(name);
    fatalIf(it == functions_.end(), "no native function named " + name);
    return it->second;
}

std::vector<std::string>
HostLibraryRegistry::names() const
{
    std::vector<std::string> out;
    for (const auto &[name, fn] : functions_)
        out.push_back(name);
    return out;
}

HostLinker::HostLinker(std::vector<FunctionSignature> idl,
                       const HostLibraryRegistry &registry,
                       MarshalCosts costs)
    : idl_(std::move(idl)), registry_(registry), costs_(costs)
{
}

std::size_t
HostLinker::scanImage(const gx86::GuestImage &image)
{
    linked_.clear();
    byName_.clear();
    // Step 2: walk .dynsym; for each imported function whose signature is
    // described in the IDL and whose native library is present, record a
    // host-call table entry.
    for (const gx86::DynSymbol &dyn : image.dynsym) {
        const FunctionSignature *sig = nullptr;
        for (const FunctionSignature &candidate : idl_)
            if (candidate.name == dyn.name)
                sig = &candidate;
        if (!sig || !registry_.contains(dyn.name))
            continue;
        LinkedFunction entry;
        entry.signature = *sig;
        entry.fn = registry_.lookup(dyn.name);
        byName_[dyn.name] = static_cast<std::uint16_t>(linked_.size());
        linked_.push_back(std::move(entry));
    }
    return linked_.size();
}

std::vector<std::string>
HostLinker::linkedFunctions() const
{
    std::vector<std::string> out;
    for (const auto &[name, index] : byName_)
        out.push_back(name);
    return out;
}

std::optional<std::uint16_t>
HostLinker::resolve(const std::string &name) const
{
    auto it = byName_.find(name);
    if (it == byName_.end())
        return std::nullopt;
    return it->second;
}

std::uint64_t
HostLinker::invokeHostFunction(std::uint16_t index, machine::Core &core,
                               machine::Machine &machine)
{
    panicIf(index >= linked_.size(), "host call index out of range");
    const LinkedFunction &fn = linked_[index];

    // Marshal guest arguments (r1..) into host argument slots; values and
    // double bit patterns copy verbatim, ptr arguments stay guest
    // addresses (user-mode DBT: guest address space == host address
    // space).
    std::vector<std::uint64_t> args;
    args.reserve(fn.signature.args.size());
    std::uint64_t cycles = costs_.base;
    for (std::size_t i = 0; i < fn.signature.args.size(); ++i) {
        args.push_back(core.x[1 + i]);
        cycles += costs_.perArg;
    }

    std::uint64_t body_cost = 0;
    const std::uint64_t result =
        fn.fn(args, machine.memory(), body_cost);
    cycles += body_cost;

    // Marshal the return value back into guest r0.
    if (fn.signature.ret != IdlType::Void) {
        core.x[0] = result;
        cycles += costs_.perArg;
    }
    return cycles;
}

} // namespace risotto::linker
