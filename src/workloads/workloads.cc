#include "workloads/workloads.hh"

#include "gx86/assembler.hh"
#include "support/error.hh"

namespace risotto::workloads
{

using gx86::Assembler;
using gx86::Cond;
using gx86::GuestImage;

std::vector<WorkloadSpec>
parsecSuite()
{
    // Mixes chosen so the fence share of the QEMU mapping reproduces the
    // paper's Figure 12 spread: memory-dense kernels (freqmine, vips,
    // fluidanimate) lose most of their time to fences, FP-dense kernels
    // (blackscholes, swaptions) are dominated by soft-float helpers.
    std::vector<WorkloadSpec> suite;
    suite.push_back({"blackscholes", "parsec", 8, 2, 1, 12, 0, 1500, 64});
    suite.push_back({"bodytrack", "parsec", 25, 5, 2, 2, 0, 2000, 64});
    suite.push_back({"canneal", "parsec", 14, 8, 3, 0, 1, 2000, 128});
    suite.push_back({"facesim", "parsec", 15, 4, 2, 8, 0, 1500, 64});
    suite.push_back({"fluidanimate", "parsec", 16, 6, 4, 2, 1, 2000, 64});
    suite.push_back({"freqmine", "parsec", 8, 8, 6, 0, 0, 2500, 128});
    suite.push_back({"streamcluster", "parsec", 20, 7, 2, 3, 0, 2000, 64});
    suite.push_back({"swaptions", "parsec", 10, 3, 1, 10, 0, 1500, 64});
    suite.push_back({"vips", "parsec", 18, 5, 4, 0, 0, 2500, 64});
    return suite;
}

std::vector<WorkloadSpec>
phoenixSuite()
{
    std::vector<WorkloadSpec> suite;
    suite.push_back({"histogram", "phoenix", 6, 4, 1, 0, 0, 2500, 64});
    suite.push_back({"kmeans", "phoenix", 12, 5, 1, 2, 0, 2000, 64});
    suite.push_back(
        {"linearregression", "phoenix", 8, 3, 1, 0, 0, 2500, 64});
    suite.push_back(
        {"matrixmultiply", "phoenix", 10, 6, 1, 0, 0, 2000, 128});
    suite.push_back({"pca", "phoenix", 14, 5, 2, 1, 0, 2000, 64});
    suite.push_back({"stringmatch", "phoenix", 10, 6, 1, 0, 0, 2500, 64});
    suite.push_back({"wordcount", "phoenix", 9, 5, 2, 0, 1, 2000, 64});
    return suite;
}

std::vector<WorkloadSpec>
fullSuite()
{
    std::vector<WorkloadSpec> suite = parsecSuite();
    for (const WorkloadSpec &s : phoenixSuite())
        suite.push_back(s);
    return suite;
}

WorkloadSpec
workloadByName(const std::string &name)
{
    for (const WorkloadSpec &s : fullSuite())
        if (s.name == name)
            return s;
    fatal("unknown workload: " + name);
}

gx86::GuestImage
buildGuestWorkload(const WorkloadSpec &spec)
{
    // Register plan: r0 tid (input), r12 int accumulator, r10/r8 FP,
    // r13 region base, r14 loop counter, r9 scratch, r5 counter addr.
    Assembler a(gx86::DefaultTextBase, RegionBase);
    a.dataReserve((spec.regionWords * 8) * 64, 8); // Up to 64 threads.
    a.defineSymbol("main");

    const std::uint32_t region_bytes = spec.regionWords * 8;
    // r13 = RegionBase + tid * region_bytes.
    a.movrr(13, 0);
    a.muli(13, static_cast<std::int32_t>(region_bytes));
    a.movri(9, static_cast<std::int64_t>(RegionBase));
    a.add(13, 9);
    // Atomic counter on a per-thread line (synchronization is real but
    // mostly uncontended, as in the suites themselves).
    a.movrr(5, 0);
    a.shli(5, 6);
    a.movri(9, static_cast<std::int64_t>(SharedCounterAddr));
    a.add(5, 9);
    a.movri(12, 1);
    a.movfd(10, 1.000001);
    a.movfd(8, 0.999997);
    a.movri(14, static_cast<std::int64_t>(spec.iterations));

    const auto loop = a.newLabel();
    a.bind(loop);
    unsigned off = 0;
    auto next_off = [&]() {
        off = (off + 24) % (region_bytes - 8);
        return static_cast<std::int32_t>(off);
    };
    for (unsigned k = 0; k < spec.loads; ++k) {
        a.load(9, 13, next_off());
        a.add(12, 9);
    }
    for (unsigned k = 0; k < spec.stores; ++k)
        a.store(13, next_off(), 12);
    for (unsigned k = 0; k < spec.aluOps; ++k) {
        switch (k % 4) {
          case 0: a.addi(12, 0x55); break;
          case 1: a.xori(12, 0x33); break;
          case 2: a.shli(12, 1); break;
          case 3: a.shri(12, 1); break;
        }
    }
    for (unsigned k = 0; k < spec.fpOps; ++k) {
        if (k % 2 == 0)
            a.fmul(10, 8);
        else
            a.fadd(10, 8);
    }
    for (unsigned k = 0; k < spec.casOps; ++k) {
        a.movri(9, 1);
        a.lockXadd(5, 0, 9);
    }
    a.subi(14, 1);
    a.cmpri(14, 0);
    a.jcc(Cond::Gt, loop);

    // Exit with a checksum so differential tests have a value.
    a.cvtfi(10, 10);
    a.add(12, 10);
    a.movrr(1, 12);
    a.andi(1, 0xff);
    a.movri(0, 0);
    a.syscall();
    return a.finish("main");
}

aarch::CodeAddr
emitNativeWorkload(const WorkloadSpec &spec, aarch::CodeBuffer &buffer)
{
    using aarch::Emitter;
    Emitter em(buffer);
    const aarch::CodeAddr entry = em.here();

    const std::uint32_t region_bytes = spec.regionWords * 8;
    // x13 = RegionBase + tid * region_bytes; x0 = tid on entry.
    em.movImm(9, region_bytes);
    em.mul(13, 0, 9);
    em.movImm(9, RegionBase);
    em.add(13, 13, 9);
    em.lsli(5, 0, 6);
    em.movImm(9, SharedCounterAddr);
    em.add(5, 5, 9);
    em.movImm(12, 1);
    // FP accumulators as bit patterns.
    double init_acc = 1.000001;
    double init_mul = 0.999997;
    std::uint64_t acc_bits;
    std::uint64_t mul_bits;
    static_assert(sizeof(double) == 8);
    __builtin_memcpy(&acc_bits, &init_acc, 8);
    __builtin_memcpy(&mul_bits, &init_mul, 8);
    em.movImm(10, acc_bits);
    em.movImm(8, mul_bits);
    em.movImm(14, spec.iterations);

    const auto loop = em.newLabel();
    em.bind(loop);
    unsigned off = 0;
    auto next_off = [&]() {
        off = (off + 24) % (region_bytes - 8);
        return static_cast<std::int32_t>(off);
    };
    for (unsigned k = 0; k < spec.loads; ++k) {
        em.ldr(9, 13, next_off());
        em.add(12, 12, 9);
    }
    for (unsigned k = 0; k < spec.stores; ++k)
        em.str(12, 13, next_off());
    for (unsigned k = 0; k < spec.aluOps; ++k) {
        switch (k % 4) {
          case 0: em.addi(12, 12, 0x55); break;
          case 1:
            em.movImm(9, 0x33);
            em.eor(12, 12, 9);
            break;
          case 2: em.lsli(12, 12, 1); break;
          case 3: em.lsri(12, 12, 1); break;
        }
    }
    for (unsigned k = 0; k < spec.fpOps; ++k) {
        if (k % 2 == 0)
            em.fmul(10, 10, 8);
        else
            em.fadd(10, 10, 8);
    }
    for (unsigned k = 0; k < spec.casOps; ++k) {
        em.movImm(9, 1);
        em.ldaddal(9, 9, 5);
    }
    em.subi(14, 14, 1);
    em.cbnz(14, loop);
    em.hlt();
    em.finish();
    return entry;
}

} // namespace risotto::workloads
