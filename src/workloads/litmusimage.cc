#include "workloads/litmusimage.hh"

#include <map>

#include "gx86/assembler.hh"
#include "support/error.hh"

namespace risotto::workloads
{

namespace
{

using litmus::Instr;
using litmus::NoReg;
using litmus::StoreExpr;

/** gx86 register carrying litmus register @p r (r8..r13). */
gx86::Reg
regOf(litmus::Reg r)
{
    fatalIf(r < 0 || r > 5,
            "litmus program uses more registers than the "
            "gx86 lowering supports");
    return static_cast<gx86::Reg>(8 + r);
}

// Scratch plan: r5 effective address, r6 value, r7 thread id copy.
// r0 stays free for LockCmpxchg's expected/old operand.
constexpr gx86::Reg AddrReg = 5;
constexpr gx86::Reg ValReg = 6;
constexpr gx86::Reg TidReg = 7;

void
lowerBody(gx86::Assembler &a, const Instr &in,
          const std::map<litmus::Loc, std::uint64_t> &loc_addr)
{
    const auto addr_of = [&](litmus::Loc loc) {
        return static_cast<std::int64_t>(loc_addr.at(loc));
    };
    switch (in.kind) {
      case Instr::Kind::Load:
        a.movri(AddrReg, addr_of(in.loc));
        if (in.addrDepReg != NoReg) {
            // Fold a syntactic (value-zero) dependency into the
            // address, mirroring the abstract addr-dep edge.
            a.movrr(ValReg, regOf(in.addrDepReg));
            a.xor_(ValReg, regOf(in.addrDepReg));
            a.add(AddrReg, ValReg);
        }
        a.load(regOf(in.dst), AddrReg, 0);
        break;
      case Instr::Kind::Store:
        switch (in.value.kind) {
          case StoreExpr::Kind::Const:
            a.movri(ValReg, static_cast<std::int64_t>(in.value.konst));
            break;
          case StoreExpr::Kind::FromReg:
            a.movrr(ValReg, regOf(in.value.reg));
            break;
          case StoreExpr::Kind::FalseDep:
            // Writes 0 through an expression mentioning the register,
            // keeping the false data-dependency shape of Section 6.1.
            a.movrr(ValReg, regOf(in.value.reg));
            a.xor_(ValReg, regOf(in.value.reg));
            break;
        }
        a.movri(AddrReg, addr_of(in.loc));
        if (in.addrDepReg != NoReg) {
            a.movrr(0, regOf(in.addrDepReg));
            a.xor_(0, regOf(in.addrDepReg));
            a.add(AddrReg, 0);
        }
        a.store(AddrReg, 0, ValReg);
        break;
      case Instr::Kind::Rmw:
        // CAS: LockCmpxchg compares [rb+off] with r0, stores rs on
        // equality and leaves the old value in r0. Both RmwKind
        // flavours lower to it; gx86/TSO has a single atomic class.
        a.movri(0, static_cast<std::int64_t>(in.expected));
        a.movri(ValReg, static_cast<std::int64_t>(in.desired));
        a.movri(AddrReg, addr_of(in.loc));
        a.lockCmpxchg(AddrReg, 0, ValReg);
        if (in.dst != NoReg)
            a.movrr(regOf(in.dst), 0);
        break;
      case Instr::Kind::Fence:
        // Every abstract fence flavour is at least as strong as what
        // gx86/TSO can ask for, so they all lower to mfence.
        a.mfence();
        break;
    }
}

void
lowerInstr(gx86::Assembler &a, const Instr &in,
           const std::map<litmus::Loc, std::uint64_t> &loc_addr)
{
    if (in.guardReg != NoReg) {
        a.cmpri(regOf(in.guardReg), static_cast<std::int32_t>(in.guardVal));
        const auto skip = a.newLabel();
        a.jcc(gx86::Cond::Ne, skip);
        lowerBody(a, in, loc_addr);
        a.bind(skip);
        return;
    }
    lowerBody(a, in, loc_addr);
}

} // namespace

gx86::GuestImage
litmusGuestImage(const litmus::Program &program)
{
    fatalIf(program.threads.size() > 8,
            "litmus program has more threads than the gx86 "
            "lowering supports: " + program.name);

    gx86::Assembler a(gx86::DefaultTextBase, LitmusLocBase);
    a.defineSymbol("main");

    // One cache line per shared location; initial value in its first
    // word so loadImage establishes the litmus init state.
    std::map<litmus::Loc, std::uint64_t> loc_addr;
    for (const litmus::Loc loc : program.locations()) {
        const auto it = program.init.find(loc);
        loc_addr[loc] =
            a.dataQuad(it == program.init.end() ? 0 : it->second);
        a.dataReserve(56, 8);
    }

    // Dispatch on the thread id in r0; ids beyond the program exit 0.
    a.movrr(TidReg, 0);
    std::vector<gx86::Assembler::Label> entries;
    for (std::size_t tid = 0; tid < program.threads.size(); ++tid) {
        entries.push_back(a.newLabel());
        a.cmpri(TidReg, static_cast<std::int32_t>(tid));
        a.jcc(gx86::Cond::Eq, entries.back());
    }
    a.movri(1, 0);
    a.movri(0, 0);
    a.syscall();

    for (std::size_t tid = 0; tid < program.threads.size(); ++tid) {
        a.bind(entries[tid]);
        for (const Instr &in : program.threads[tid].instrs)
            lowerInstr(a, in, loc_addr);
        // Exit with a checksum of the observed registers so output
        // equality is a meaningful differential signal.
        a.movri(1, static_cast<std::int64_t>(tid));
        for (const litmus::Reg r : program.threadRegisters(tid))
            a.xor_(1, regOf(r));
        a.andi(1, 0xff);
        a.movri(0, 0);
        a.syscall();
    }
    return a.finish("main");
}

} // namespace risotto::workloads
