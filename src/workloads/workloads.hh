/**
 * @file
 * PARSEC/Phoenix workload proxies (Figure 12's benchmark suites).
 *
 * Each paper benchmark is modelled as a multi-threaded kernel with a
 * characteristic per-iteration operation mix (integer ALU, shared loads,
 * shared stores, guest FP, atomics). The mix determines the quantity the
 * figure measures: the share of run time attributable to memory-ordering
 * fences under each mapping scheme. Every workload exists in two forms
 * generated from the same spec: a gx86 guest binary (run through the
 * DBT) and a native aarch twin (run directly on the machine) for the
 * "native" bars.
 */

#ifndef RISOTTO_WORKLOADS_WORKLOADS_HH
#define RISOTTO_WORKLOADS_WORKLOADS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "aarch/emitter.hh"
#include "gx86/image.hh"

namespace risotto::workloads
{

/** Per-iteration operation mix of one benchmark proxy. */
struct WorkloadSpec
{
    std::string name;
    std::string suite; ///< "parsec" or "phoenix".

    unsigned aluOps = 10;    ///< Integer ops per iteration.
    unsigned loads = 4;      ///< Shared-memory loads per iteration.
    unsigned stores = 2;     ///< Shared-memory stores per iteration.
    unsigned fpOps = 0;      ///< Guest FP ops (soft-float under DBT).
    unsigned casOps = 0;     ///< Atomic RMWs on a shared counter.
    std::uint64_t iterations = 2000;
    unsigned regionWords = 64; ///< Per-thread data region size.
};

/** The PARSEC 3.0 proxies (raytrace and x264 omitted, as in the paper).*/
std::vector<WorkloadSpec> parsecSuite();

/** The Phoenix proxies. */
std::vector<WorkloadSpec> phoenixSuite();

/** parsecSuite() followed by phoenixSuite(). */
std::vector<WorkloadSpec> fullSuite();

/** Look up a workload by name; throws FatalError when unknown. */
WorkloadSpec workloadByName(const std::string &name);

/**
 * Build the gx86 guest binary for @p spec. Thread id arrives in guest r0;
 * each thread works on a disjoint region and exits via the exit syscall
 * with a checksum.
 */
gx86::GuestImage buildGuestWorkload(const WorkloadSpec &spec);

/**
 * Emit the native aarch twin of @p spec into @p buffer.
 * Thread id arrives in host x0.
 * @return the twin's entry address.
 */
aarch::CodeAddr emitNativeWorkload(const WorkloadSpec &spec,
                                   aarch::CodeBuffer &buffer);

/** Data-section base address used by both twins for the shared regions.*/
constexpr std::uint64_t RegionBase = 0x0050'0000;

/** Address of the shared atomic counter the casOps target. */
constexpr std::uint64_t SharedCounterAddr = 0x004f'0000;

} // namespace risotto::workloads

#endif // RISOTTO_WORKLOADS_WORKLOADS_HH
