/**
 * @file
 * Lowering litmus programs to executable gx86 guest images.
 *
 * The litmus library reasons about abstract programs at the model level
 * (enumeration, refinement). The static analyzer and the translation
 * certifier instead consume whole guest images, so corpus sweeps need
 * each litmus test as a real gx86 binary: every shared location becomes
 * a cache-line-spaced data word, every thread a straight-line code
 * region selected by the thread id in guest r0, and every abstract
 * load/store/RMW/fence the corresponding concrete instruction. The
 * images are intentionally fence- and RMW-dense -- exactly the shapes
 * the HotOrdering classification and the paranoid differential sweep
 * must stay conservative on.
 */

#ifndef RISOTTO_WORKLOADS_LITMUSIMAGE_HH
#define RISOTTO_WORKLOADS_LITMUSIMAGE_HH

#include "gx86/image.hh"
#include "litmus/program.hh"

namespace risotto::workloads
{

/** Data-section base the lowered shared locations start at. */
constexpr std::uint64_t LitmusLocBase = 0x0060'0000;

/**
 * Lower @p program to a runnable gx86 guest image. Thread id arrives
 * in guest r0; each thread executes its lowered instruction sequence
 * and exits with a checksum of its observed registers. Programs with
 * more than 8 threads or 6 registers per thread are rejected with
 * FatalError (the corpus is far below both).
 */
gx86::GuestImage litmusGuestImage(const litmus::Program &program);

} // namespace risotto::workloads

#endif // RISOTTO_WORKLOADS_LITMUSIMAGE_HH
