/**
 * @file
 * Per-TB translation validation: static fence-safety checking.
 *
 * The paper verifies its mappings and IR optimizations once and for all
 * in Agda (Section 5); this subsystem checks every translation the DBT
 * actually emits, PORTHOS-style. For a translated block we build
 *
 *  - the *obligation graph*: ordered pairs of memory events that x86-TSO
 *    requires over the decoded guest instructions (ppo U implied,
 *    transitively closed, restricted to accesses), and
 *  - the *guarantee graph* of the target: the TCG IR model's ord relation
 *    over the post-optimization IR, and the Arm model's lob relation over
 *    the emitted host code,
 *
 * and check obligation ⊆ guarantee modulo optimizer-eliminated accesses
 * and same-location coherence. A violation names the exact guest event
 * pair whose ordering was lost and the weakest fence that would restore
 * it. The relation machinery is the same one behind models::X86Model /
 * TcgModel / ArmModel, so the checker and the litmus harness cannot
 * drift apart.
 */

#ifndef RISOTTO_VERIFY_VERIFIER_HH
#define RISOTTO_VERIFY_VERIFIER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "aarch/emitter.hh"
#include "aarch/isa.hh"
#include "gx86/isa.hh"
#include "mapping/schemes.hh"
#include "memcore/event.hh"
#include "memcore/execution.hh"
#include "memcore/relation.hh"
#include "models/model.hh"
#include "rv64/isa.hh"
#include "support/hostisa.hh"
#include "tcg/ir.hh"

namespace risotto::verify
{

/** Which side of the translation a guarantee graph describes. */
enum class Level
{
    Tcg,  ///< Post-optimization TCG IR, judged under the Figure 6 model.
    Arm,  ///< Emitted aarch host code, judged under Arm-Cats lob.
    Rv64, ///< Emitted rv64 host code, judged under the RVWMO ppo.
};

/** "tcg", "arm" or "rv64". */
std::string levelName(Level level);

/**
 * One memory event extracted from an instruction sequence.
 *
 * `loc` is a location *class*: events with equal loc provably access the
 * same address (tracked symbolically as base-origin + constant offset);
 * events whose address cannot be related get a fresh class, so distinct
 * classes never imply distinct addresses. `what` is a human-readable
 * rendering ("#3 R ldr x1, [x2, #8]") used in violation reports.
 */
struct VEvent
{
    memcore::EventKind kind = memcore::EventKind::Read;
    memcore::Access access = memcore::Access::Plain;
    memcore::FenceKind fence = memcore::FenceKind::None;
    memcore::RmwKind rmw = memcore::RmwKind::None;
    memcore::Loc loc = 0;
    std::string what;
};

/** One lost ordering: an obligation pair absent from the guarantee. */
struct Violation
{
    Level level = Level::Tcg;
    std::uint64_t guestPc = 0;
    bool superblock = false;

    /** Guest-side descriptions of the ordered pair. */
    std::string from;
    std::string to;

    /** The matched target-side events the ordering was checked between. */
    std::string fromTarget;
    std::string toTarget;

    /** Weakest fence kind that would restore the ordering (a TCG Fxy
     * fence at Level::Tcg, a DMB variant at Level::Arm). */
    memcore::FenceKind missingFence = memcore::FenceKind::None;

    /** One-line report. */
    std::string toString() const;
};

/** Result of validating one translation. */
struct ValidationReport
{
    /** Obligation pairs checked against the guarantee graphs. */
    std::uint64_t pairsChecked = 0;

    /** Obligation pairs discharged by thread-locality (an endpoint is
     * a provably thread-private access; see localGuestEvents). */
    std::uint64_t pairsDischargedLocal = 0;

    std::vector<Violation> violations;

    bool ok() const { return violations.empty(); }
};

// --- Event extraction -------------------------------------------------------

/** Memory events of a decoded guest basic block (x86 side). */
std::vector<VEvent> guestEvents(const std::vector<gx86::Instruction> &code);

/**
 * Thread-locality mask over guestEvents(code): entry i is true when
 * event i is an access provably confined to the executing thread's own
 * stack (stack-relative with a small displacement, or a Call/Ret
 * return-address push/pop), under the whole-image premise
 * @p rsp_private -- that the stack pointer never escapes (computed by
 * analysis::analyzeImage, never assumed). With the premise false the
 * mask is all-false. RMWs and fences are never local: ordering points
 * keep their full strength.
 *
 * Soundness of discharging an obligation with a local endpoint: x86-TSO
 * orderings are constraints on the order writes become visible to
 * *other* threads; an access to memory no other thread can address
 * (disjoint per-thread stacks, see Dbt::run) has no cross-thread
 * visibility, so no execution can distinguish whether the ordering was
 * preserved. This is the same shape as the optimizer-elimination
 * discharge: the event exists in the guest but is unobservable in any
 * race.
 */
std::vector<bool>
localGuestEvents(const std::vector<gx86::Instruction> &code,
                 bool rsp_private, std::int64_t max_offset = 4096);

/** Memory events of a (post-optimization) TCG IR block. */
std::vector<VEvent> tcgEvents(const tcg::Block &block);

/**
 * Memory events of emitted host code. @p rmw tells the extractor how to
 * model runtime helper calls that implement guest RMWs: RMW1-AL helpers
 * behave like casal (single-copy-atomic acquire+release), RMW2-AL
 * helpers like an ldaxr/stlxr pair (the GCC-9 build the paper found
 * broken).
 */
std::vector<VEvent> armEvents(const std::vector<aarch::AInstr> &code,
                              mapping::RmwLowering rmw);

/**
 * Memory events of emitted rv64 host code. Annotated LR/SC and AMOs map
 * to LxSx / Amo events with the access strength their aq/rl bits spell;
 * FENCE pred,succ maps back to the Fxy vocabulary. Helper calls are
 * modelled per @p rmw like armEvents: RMW1-style helpers as a
 * fully-ordered amo.aqrl, RMW2-style helpers as the weak lr.d.aq /
 * sc.d.rl pair (the GCC-9 bug transplanted to RISC-V).
 */
std::vector<VEvent> rv64Events(const std::vector<rv64::RInstr> &code,
                               mapping::RmwLowering rmw);

/**
 * The Figure 3 "desired" direct x86 -> Arm mapping as events: loads to
 * LDAPR, stores to STLR, RMWs to RMW1-AL, MFENCE to DMBFF. Checking
 * these events under AmoRule::Original reproduces the mapping bug the
 * paper reported against the original Arm-Cats model.
 */
std::vector<VEvent>
desiredArmEvents(const std::vector<gx86::Instruction> &code);

/** Decode host code words in [from, to) back into instructions. */
std::vector<aarch::AInstr> decodeRange(const aarch::CodeBuffer &code,
                                       aarch::CodeAddr from,
                                       aarch::CodeAddr to);

/**
 * A decoded host-code sequence tagged with its ISA: exactly one of the
 * two vectors is populated (per `isa`). The validator dispatches its
 * host-level leg on the tag.
 */
struct HostCode
{
    support::HostIsa isa = support::HostIsa::Aarch;
    std::vector<aarch::AInstr> arm;
    std::vector<rv64::RInstr> riscv;
};

/** Decode host words in [from, to) under @p isa. */
HostCode decodeHostRange(support::HostIsa isa,
                         const aarch::CodeBuffer &code,
                         aarch::CodeAddr from, aarch::CodeAddr to);

// --- Graphs -----------------------------------------------------------------

/** Single-thread execution skeleton (po total, rmw pairs linked). */
memcore::Execution eventExecution(const std::vector<VEvent> &events);

/**
 * x86-TSO requirements over guest events: (ppo U implied)+ restricted to
 * access events (fences drop out; orderings they induce remain via the
 * closure).
 */
memcore::Relation obligationGraph(const std::vector<VEvent> &events);

/** TCG IR guarantees: TcgModel::ord, transitively closed. */
memcore::Relation tcgGuaranteeGraph(const std::vector<VEvent> &events);

/** Arm guarantees: ArmModel::lob under @p rule (already closed). */
memcore::Relation
armGuaranteeGraph(const std::vector<VEvent> &events,
                  models::ArmModel::AmoRule rule);

/** RVWMO guarantees: RiscvModel::ppo, transitively closed. */
memcore::Relation rv64GuaranteeGraph(const std::vector<VEvent> &events);

// --- The validator ----------------------------------------------------------

/** Validator configuration. */
struct ValidatorOptions
{
    /** How helper-call RMWs in host code are modelled. */
    mapping::RmwLowering rmw = mapping::RmwLowering::InlineCasal;

    /** Arm amo clause to judge host code under. */
    models::ArmModel::AmoRule amoRule =
        models::ArmModel::AmoRule::Corrected;

    bool checkTcg = true;
    bool checkArm = true;
};

/**
 * Checks translated blocks: x86-TSO obligations of the decoded guest
 * code must be contained in the guarantees of the optimized IR and of
 * the emitted host code. Obligations whose events the optimizer
 * eliminated (RAR/RAW/WAW, Figure 10) are discharged by the elimination
 * itself; same-location pairs are discharged by per-location coherence.
 */
class TbValidator
{
  public:
    explicit TbValidator(ValidatorOptions options = {})
        : options_(options)
    {
    }

    /**
     * Validate one translation at both levels (per options). When
     * @p local_guest is non-null (a mask over guestEvents(guest), see
     * localGuestEvents) obligation pairs with a thread-local endpoint
     * are discharged by locality -- the rule certificate-driven fence
     * elision is audited under.
     */
    ValidationReport validate(const std::vector<gx86::Instruction> &guest,
                              const tcg::Block &ir,
                              const std::vector<aarch::AInstr> &host,
                              std::uint64_t guest_pc, bool superblock,
                              const std::vector<bool> *local_guest =
                                  nullptr) const;

    /** As above, with the host leg dispatched on @p host.isa (the
     * aarch-vector overload is the Aarch special case). */
    ValidationReport validate(const std::vector<gx86::Instruction> &guest,
                              const tcg::Block &ir, const HostCode &host,
                              std::uint64_t guest_pc, bool superblock,
                              const std::vector<bool> *local_guest =
                                  nullptr) const;

    /**
     * Check guest obligations against one explicit target event
     * sequence (used by tests and the Figure 3 audit in risotto-verify).
     */
    ValidationReport
    checkAgainst(const std::vector<gx86::Instruction> &guest,
                 const std::vector<VEvent> &target, Level level,
                 std::uint64_t guest_pc, bool superblock = false,
                 const std::vector<bool> *local_guest = nullptr) const;

    const ValidatorOptions &options() const { return options_; }

  private:
    ValidatorOptions options_;
};

} // namespace risotto::verify

#endif // RISOTTO_VERIFY_VERIFIER_HH
