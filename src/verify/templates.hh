/**
 * @file
 * Obligation-graph checks of the tier-0.5 template translator's
 * patterns.
 *
 * The template tier (src/dbt/template_tier.hh) plans whitelisted guest
 * instruction shapes straight into post-optimization TCG IR and
 * compiles them with the regular backend, bypassing the frontend and
 * the optimizer. The planned IR is identical to the tier-1 pipeline's
 * by construction -- but "by construction" is exactly the kind of claim
 * the PR-3 validator exists to check, so every template kind is probed
 * once per engine: canonical instances of the kind (alone and between
 * fence-relevant context accesses) are planned, compiled into a scratch
 * buffer, and checked obligation ⊆ guarantee at both the IR and the
 * emitted-host level (the same amortization argument as the
 * fused-pattern checks in verify/fusion.hh). Kinds that fail are
 * disabled wholesale before the engine translates anything.
 */

#ifndef RISOTTO_VERIFY_TEMPLATES_HH
#define RISOTTO_VERIFY_TEMPLATES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "verify/verifier.hh"

namespace risotto::verify
{

/** One planned-and-compiled instance of a template kind to validate.
 * `kind` is the dbt-side TemplateKind ordinal (kept as an int so the
 * verify layer stays independent of the dbt headers). */
struct TemplateProbe
{
    std::string name;     ///< e.g. "load[ctx-store,_]".
    int kind = 0;         ///< dbt::TemplateKind ordinal.
    std::string kindName; ///< e.g. "load".
    std::vector<gx86::Instruction> guest;
    tcg::Block ir; ///< The plan's (post-optimization) IR.
    HostCode host; ///< Decoded compiled words (ISA-tagged).
};

/** Aggregated outcome of checking one template kind's probes. */
struct TemplatePatternReport
{
    int kind = 0;
    std::string name;
    std::uint64_t probesChecked = 0;
    std::uint64_t pairsChecked = 0;
    std::vector<Violation> violations;

    bool ok() const { return violations.empty(); }
};

/** Validate every probe, aggregating per template kind (first-seen
 * order). Each probe runs through the full TbValidator at both levels. */
std::vector<TemplatePatternReport>
validateTemplatePatterns(const std::vector<TemplateProbe> &probes,
                         const ValidatorOptions &options = {});

} // namespace risotto::verify

#endif // RISOTTO_VERIFY_TEMPLATES_HH
