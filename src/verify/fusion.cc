#include "verify/fusion.hh"

#include <map>
#include <utility>

#include "gx86/isa.hh"

namespace risotto::verify
{

using gx86::FusionKind;
using gx86::FusionPatternInfo;
using gx86::Instruction;
using gx86::Opcode;
using memcore::Access;
using memcore::EventKind;
using memcore::FenceKind;
using memcore::Loc;
using memcore::RmwKind;

std::vector<VEvent>
fusedHandlerEvents(const FusionPatternInfo &pattern)
{
    // The fused fallback handlers execute the pair's memory accesses in
    // program order with the interpreter's write-through discipline:
    // every store drains the store buffer immediately (an Fsc-strength
    // drain), loads read directly. Location classes mirror the
    // validator's symbolic addressing: same (base, offset) -> same
    // class, anything else a fresh class.
    std::vector<VEvent> events;
    std::map<std::pair<gx86::Reg, std::int32_t>, Loc> locs;
    Loc nextLoc = 0;
    auto locOf = [&](const Instruction &in) {
        const auto key = std::make_pair(in.rb, in.off);
        auto it = locs.find(key);
        if (it != locs.end())
            return it->second;
        return locs.emplace(key, nextLoc++).first->second;
    };
    auto emit = [&](const Instruction &in) {
        if (gx86::opReadsMemory(in.op)) {
            VEvent ev;
            ev.kind = EventKind::Read;
            ev.access = Access::Plain;
            ev.loc = locOf(in);
            ev.what = "fused R " + in.toString();
            events.push_back(ev);
        }
        if (gx86::opWritesMemory(in.op)) {
            VEvent ev;
            ev.kind = EventKind::Write;
            ev.access = Access::Plain;
            ev.loc = locOf(in);
            ev.what = "fused W " + in.toString();
            events.push_back(ev);
            VEvent drain;
            drain.kind = EventKind::Fence;
            drain.fence = FenceKind::Fsc;
            drain.what = "fused drain (write-through)";
            events.push_back(drain);
        }
    };
    emit(pattern.first);
    emit(pattern.second);
    return events;
}

std::vector<FusionPatternReport>
validateFusionPatterns(const ValidatorOptions &options)
{
    TbValidator validator(options);
    std::vector<FusionPatternReport> reports;
    for (const FusionPatternInfo &pattern : gx86::fusionPatterns()) {
        FusionPatternReport report;
        report.kind = pattern.kind;
        report.name = pattern.name;

        // Guard side conditions: the matcher itself must refuse
        // ordering points and block-boundary-crossing pairs, and must
        // recognize its own canonical pair.
        report.guardsHold =
            gx86::matchFusion(pattern.first, pattern.second) ==
                pattern.kind &&
            !gx86::opIsRmw(pattern.first.op) &&
            !gx86::opIsRmw(pattern.second.op) &&
            pattern.first.op != Opcode::MFence &&
            pattern.second.op != Opcode::MFence &&
            !gx86::opEndsBlock(pattern.first.op);

        const std::vector<Instruction> guest{pattern.first,
                                             pattern.second};
        ValidationReport check = validator.checkAgainst(
            guest, fusedHandlerEvents(pattern), Level::Tcg,
            /*guest_pc=*/0);
        report.pairsChecked = check.pairsChecked;
        report.violations = std::move(check.violations);
        reports.push_back(std::move(report));
    }
    return reports;
}

std::size_t
applyFusionReports(const std::vector<FusionPatternReport> &reports,
                   gx86::FusionConfig &config)
{
    std::size_t disabled = 0;
    for (const FusionPatternReport &report : reports) {
        if (report.ok())
            continue;
        const auto idx = static_cast<std::size_t>(report.kind);
        if (idx < config.pattern.size() && config.pattern[idx]) {
            config.pattern[idx] = false;
            ++disabled;
        }
    }
    return disabled;
}

} // namespace risotto::verify
