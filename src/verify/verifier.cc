#include "verify/verifier.hh"

#include <cstddef>
#include <map>
#include <optional>
#include <utility>

#include "analysis/analyzer.hh"
#include "memcore/fencealg.hh"
#include "support/error.hh"

namespace risotto::verify
{

using mapping::RmwLowering;
using memcore::Access;
using memcore::EventKind;
using memcore::EventSet;
using memcore::Execution;
using memcore::FenceKind;
using memcore::Loc;
using memcore::Relation;
using memcore::RmwKind;

std::string
levelName(Level level)
{
    switch (level) {
      case Level::Tcg: return "tcg";
      case Level::Arm: return "arm";
      case Level::Rv64: return "rv64";
    }
    return "?";
}

std::string
Violation::toString() const
{
    std::string s = "[" + levelName(level) + "] pc=" +
                    std::to_string(guestPc) +
                    (superblock ? " superblock" : "") + ": " + from +
                    " -> " + to + " not guaranteed";
    if (fromTarget != from || toTarget != to)
        s += " (target: " + fromTarget + " -> " + toTarget + ")";
    s += "; weakest missing fence " +
         memcore::fenceKindName(missingFence);
    return s;
}

namespace
{

/**
 * Affine symbolic address tracking: each register/temp holds either a
 * known constant (origin 0) or origin + delta for a symbolic base
 * captured at its last unanalyzable definition. Two keys are equal iff
 * the addresses are provably equal; a fresh origin is allocated whenever
 * a value cannot be followed, so unknown addresses never alias known
 * ones.
 */
struct SymVal
{
    std::uint64_t origin = 0; ///< 0 = constant.
    std::int64_t delta = 0;   ///< Displacement, or the constant itself.
};

class AddrTracker
{
  public:
    explicit AddrTracker(std::size_t slots) : vals_(slots) { resetAll(); }

    void
    resetAll()
    {
        for (auto &v : vals_)
            v = SymVal{nextOrigin_++, 0};
    }

    void reset(std::size_t s) { vals_[s] = SymVal{nextOrigin_++, 0}; }

    void
    setConst(std::size_t s, std::uint64_t value)
    {
        vals_[s] = SymVal{0, static_cast<std::int64_t>(value)};
    }

    void copy(std::size_t dst, std::size_t src) { vals_[dst] = vals_[src]; }

    void
    add(std::size_t dst, std::size_t src, std::int64_t delta)
    {
        SymVal v = vals_[src];
        v.delta += delta;
        vals_[dst] = v;
    }

    bool isConst(std::size_t s) const { return vals_[s].origin == 0; }

    std::uint64_t
    constValue(std::size_t s) const
    {
        return static_cast<std::uint64_t>(vals_[s].delta);
    }

    SymVal
    key(std::size_t s, std::int64_t off) const
    {
        SymVal k = vals_[s];
        k.delta += off;
        return k;
    }

  private:
    std::vector<SymVal> vals_;
    std::uint64_t nextOrigin_ = 1;
};

/** Dense location-class ids from symbolic keys. */
class LocAssigner
{
  public:
    Loc
    of(const SymVal &key)
    {
        const auto id = std::make_pair(key.origin, key.delta);
        auto it = ids_.find(id);
        if (it != ids_.end())
            return it->second;
        const Loc loc = next_++;
        ids_.emplace(id, loc);
        return loc;
    }

    /** A class no other event shares (fences, unanalyzable accesses). */
    Loc fresh() { return next_++; }

  private:
    std::map<std::pair<std::uint64_t, std::int64_t>, Loc> ids_;
    Loc next_ = 0;
};

VEvent
makeAccess(EventKind kind, Access access, RmwKind rmw, Loc loc,
           std::string what)
{
    VEvent e;
    e.kind = kind;
    e.access = access;
    e.rmw = rmw;
    e.loc = loc;
    e.what = std::move(what);
    return e;
}

VEvent
makeFence(FenceKind fence, Loc loc, std::string what)
{
    VEvent e;
    e.kind = EventKind::Fence;
    e.fence = fence;
    e.loc = loc;
    e.what = std::move(what);
    return e;
}

std::string
tag(std::size_t index, const char *mark, const std::string &text)
{
    return "#" + std::to_string(index) + " " + mark + " " + text;
}

/**
 * Walk a decoded guest block, producing events through @p sink. The
 * callback receives (instruction index, instruction, event kind tag,
 * location, rmw?) so the x86 and Figure 3 extractors can annotate the
 * same walk differently.
 */
template <typename Sink>
void
walkGuest(const std::vector<gx86::Instruction> &code, Sink &&sink)
{
    using gx86::Opcode;
    AddrTracker regs(gx86::RegCount);
    LocAssigner locs;

    for (std::size_t i = 0; i < code.size(); ++i) {
        const gx86::Instruction &in = code[i];
        switch (in.op) {
          case Opcode::MovRI:
            regs.setConst(in.rd, static_cast<std::uint64_t>(in.imm));
            break;
          case Opcode::MovRR:
            regs.copy(in.rd, in.rs);
            break;
          case Opcode::AddI:
            regs.add(in.rd, in.rd, in.imm);
            break;
          case Opcode::SubI:
            regs.add(in.rd, in.rd, -static_cast<std::int64_t>(in.imm));
            break;
          case Opcode::Load:
          case Opcode::Load8:
            sink(i, in, EventKind::Read,
                 locs.of(regs.key(in.rb, in.off)), false);
            regs.reset(in.rd);
            break;
          case Opcode::Store:
          case Opcode::Store8:
          case Opcode::StoreI:
            sink(i, in, EventKind::Write,
                 locs.of(regs.key(in.rb, in.off)), false);
            break;
          case Opcode::LockCmpxchg:
          case Opcode::LockXadd: {
            const Loc loc = locs.of(regs.key(in.rb, in.off));
            sink(i, in, EventKind::Read, loc, true);
            sink(i, in, EventKind::Write, loc, true);
            // cmpxchg writes rax (g0); xadd writes its source register.
            regs.reset(in.op == Opcode::LockCmpxchg ? 0 : in.rs);
            break;
          }
          case Opcode::MFence:
            sink(i, in, EventKind::Fence, locs.fresh(), false);
            break;
          case Opcode::Call:
            // Pushes the return address: a real guest store.
            regs.add(gx86::Rsp, gx86::Rsp, -8);
            sink(i, in, EventKind::Write,
                 locs.of(regs.key(gx86::Rsp, 0)), false);
            break;
          case Opcode::Ret:
            sink(i, in, EventKind::Read,
                 locs.of(regs.key(gx86::Rsp, 0)), false);
            regs.add(gx86::Rsp, gx86::Rsp, 8);
            break;
          case Opcode::Syscall:
            regs.reset(0); // Return value in g0.
            break;
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::And:
          case Opcode::Or:
          case Opcode::Xor:
          case Opcode::Mul:
          case Opcode::Udiv:
          case Opcode::AndI:
          case Opcode::OrI:
          case Opcode::XorI:
          case Opcode::MulI:
          case Opcode::ShlI:
          case Opcode::ShrI:
          case Opcode::FAdd:
          case Opcode::FSub:
          case Opcode::FMul:
          case Opcode::FDiv:
          case Opcode::FSqrt:
          case Opcode::CvtIF:
          case Opcode::CvtFI:
            regs.reset(in.rd);
            break;
          default:
            // Nop, Hlt, CmpRR/CmpRI (flags only), branches: no register
            // or memory effect we track.
            break;
        }
    }
}

} // namespace

std::vector<VEvent>
guestEvents(const std::vector<gx86::Instruction> &code)
{
    std::vector<VEvent> events;
    walkGuest(code, [&](std::size_t i, const gx86::Instruction &in,
                        EventKind kind, Loc loc, bool rmw) {
        if (kind == EventKind::Fence) {
            events.push_back(
                makeFence(FenceKind::MFence, loc, tag(i, "F", in.toString())));
            return;
        }
        const char *mark = kind == EventKind::Read ? "R" : "W";
        events.push_back(makeAccess(kind, Access::Plain,
                                    rmw ? RmwKind::Amo : RmwKind::None,
                                    loc, tag(i, mark, in.toString())));
    });
    return events;
}

std::vector<bool>
localGuestEvents(const std::vector<gx86::Instruction> &code,
                 bool rsp_private, std::int64_t max_offset)
{
    std::vector<bool> mask;
    walkGuest(code, [&](std::size_t, const gx86::Instruction &in,
                        EventKind kind, Loc, bool rmw) {
        // One mask entry per sink call keeps the mask aligned with
        // guestEvents(); fences and RMWs are never local.
        const bool local = rsp_private && kind != EventKind::Fence &&
                           !rmw &&
                           analysis::isStackAccess(in, max_offset);
        mask.push_back(local);
    });
    return mask;
}

std::vector<VEvent>
desiredArmEvents(const std::vector<gx86::Instruction> &code)
{
    // Figure 3: MOV loads -> LDAPR (AcquirePC), MOV stores -> STLR
    // (Release), RMWs -> casal (RMW1-AL), MFENCE -> DMBFF.
    std::vector<VEvent> events;
    walkGuest(code, [&](std::size_t i, const gx86::Instruction &in,
                        EventKind kind, Loc loc, bool rmw) {
        if (kind == EventKind::Fence) {
            events.push_back(makeFence(FenceKind::DmbFull, loc,
                                       tag(i, "F", in.toString())));
            return;
        }
        Access access;
        if (rmw)
            access = kind == EventKind::Read ? Access::Acquire
                                             : Access::Release;
        else
            access = kind == EventKind::Read ? Access::AcquirePC
                                             : Access::Release;
        const char *mark = kind == EventKind::Read ? "R" : "W";
        events.push_back(makeAccess(kind, access,
                                    rmw ? RmwKind::Amo : RmwKind::None,
                                    loc, tag(i, mark, in.toString())));
    });
    return events;
}

std::vector<VEvent>
tcgEvents(const tcg::Block &block)
{
    using tcg::Op;
    std::vector<VEvent> events;
    AddrTracker temps(static_cast<std::size_t>(block.numTemps));
    LocAssigner locs;

    auto killGlobals = [&]() {
        // Helpers may rewrite any guest register (host calls marshal
        // results back); flags too.
        for (std::size_t t = 0; t < tcg::FirstLocalTemp; ++t)
            temps.reset(t);
    };

    for (std::size_t i = 0; i < block.instrs.size(); ++i) {
        const tcg::Instr &in = block.instrs[i];
        switch (in.op) {
          case Op::MovI:
            temps.setConst(in.a, static_cast<std::uint64_t>(in.imm));
            break;
          case Op::Mov:
            temps.copy(in.a, in.b);
            break;
          case Op::AddI:
            temps.add(in.a, in.b, in.imm);
            break;
          case Op::Ld:
          case Op::Ld8:
            events.push_back(makeAccess(
                EventKind::Read, Access::Plain, RmwKind::None,
                locs.of(temps.key(in.b, in.imm)),
                tag(i, "R", in.toString())));
            temps.reset(in.a);
            break;
          case Op::St:
          case Op::St8:
            events.push_back(makeAccess(
                EventKind::Write, Access::Plain, RmwKind::None,
                locs.of(temps.key(in.b, in.imm)),
                tag(i, "W", in.toString())));
            break;
          case Op::Cas:
          case Op::Xadd: {
            const Loc loc = locs.of(temps.key(in.b, in.imm));
            events.push_back(makeAccess(EventKind::Read, Access::Sc,
                                        RmwKind::Amo, loc,
                                        tag(i, "R", in.toString())));
            events.push_back(makeAccess(EventKind::Write, Access::Sc,
                                        RmwKind::Amo, loc,
                                        tag(i, "W", in.toString())));
            temps.reset(in.a);
            break;
          }
          case Op::Mb:
            events.push_back(makeFence(in.fence, locs.fresh(),
                                       tag(i, "F", in.toString())));
            break;
          case Op::CallHelper:
            if (in.helper == tcg::HelperId::CasHelper ||
                in.helper == tcg::HelperId::XaddHelper) {
                // The runtime helper performs a full-strength RMW at the
                // address in its first argument (Section 6.3 baseline).
                const Loc loc = in.b != tcg::NoTemp
                                    ? locs.of(temps.key(in.b, 0))
                                    : locs.fresh();
                events.push_back(makeAccess(EventKind::Read, Access::Sc,
                                            RmwKind::Amo, loc,
                                            tag(i, "R", in.toString())));
                events.push_back(makeAccess(EventKind::Write, Access::Sc,
                                            RmwKind::Amo, loc,
                                            tag(i, "W", in.toString())));
            }
            killGlobals();
            if (in.a != tcg::NoTemp)
                temps.reset(in.a);
            break;
          case Op::SetLabel:
            // A join point: values may arrive from any predecessor.
            temps.resetAll();
            break;
          default: {
            const tcg::TempId w = tcg::instrWrites(in);
            if (w != tcg::NoTemp)
                temps.reset(w);
            break;
          }
        }
    }
    return events;
}

std::vector<VEvent>
armEvents(const std::vector<aarch::AInstr> &code, RmwLowering rmw)
{
    using aarch::AOp;
    std::vector<VEvent> events;
    AddrTracker regs(aarch::XRegCount);
    LocAssigner locs;

    // Branch targets are join points; values there may come from any
    // predecessor, so symbolic state resets. Branch imm fields are word
    // offsets relative to the branch instruction itself.
    std::vector<bool> join(code.size(), false);
    for (std::size_t i = 0; i < code.size(); ++i) {
        const AOp op = code[i].op;
        if (op != AOp::B && op != AOp::Bcond && op != AOp::Cbz &&
            op != AOp::Cbnz)
            continue;
        const std::int64_t t =
            static_cast<std::int64_t>(i) + code[i].imm;
        if (t >= 0 && t < static_cast<std::int64_t>(code.size()))
            join[static_cast<std::size_t>(t)] = true;
    }

    auto access = [&](std::size_t i, const aarch::AInstr &in,
                      EventKind kind, Access acc, RmwKind kindRmw,
                      aarch::XReg base, std::int64_t off) {
        const char *mark = kind == EventKind::Read ? "R" : "W";
        events.push_back(makeAccess(kind, acc, kindRmw,
                                    locs.of(regs.key(base, off)),
                                    tag(i, mark, in.toString())));
    };

    for (std::size_t i = 0; i < code.size(); ++i) {
        if (join[i])
            regs.resetAll();
        const aarch::AInstr &in = code[i];
        switch (in.op) {
          case AOp::MovZ:
            regs.setConst(in.rd, static_cast<std::uint64_t>(
                                     in.imm & 0xffff)
                                     << (16 * in.shift));
            break;
          case AOp::MovK:
            if (regs.isConst(in.rd)) {
                const std::uint64_t mask = 0xffffULL << (16 * in.shift);
                const std::uint64_t v =
                    (regs.constValue(in.rd) & ~mask) |
                    (static_cast<std::uint64_t>(in.imm & 0xffff)
                     << (16 * in.shift));
                regs.setConst(in.rd, v);
            } else {
                regs.reset(in.rd);
            }
            break;
          case AOp::MovRR:
            regs.copy(in.rd, in.rn);
            break;
          case AOp::AddI:
            regs.add(in.rd, in.rn, in.imm);
            break;
          case AOp::SubI:
            regs.add(in.rd, in.rn, -static_cast<std::int64_t>(in.imm));
            break;
          case AOp::Add:
            if (regs.isConst(in.rm))
                regs.add(in.rd, in.rn,
                         static_cast<std::int64_t>(regs.constValue(in.rm)));
            else if (regs.isConst(in.rn))
                regs.add(in.rd, in.rm,
                         static_cast<std::int64_t>(regs.constValue(in.rn)));
            else
                regs.reset(in.rd);
            break;
          case AOp::Ldr:
          case AOp::Ldrb:
            access(i, in, EventKind::Read, Access::Plain, RmwKind::None,
                   in.rn, in.imm);
            regs.reset(in.rd);
            break;
          case AOp::Ldar:
            access(i, in, EventKind::Read, Access::Acquire,
                   RmwKind::None, in.rn, in.imm);
            regs.reset(in.rd);
            break;
          case AOp::Ldapr:
            access(i, in, EventKind::Read, Access::AcquirePC,
                   RmwKind::None, in.rn, in.imm);
            regs.reset(in.rd);
            break;
          case AOp::Str:
          case AOp::Strb:
            access(i, in, EventKind::Write, Access::Plain, RmwKind::None,
                   in.rn, in.imm);
            break;
          case AOp::Stlr:
            access(i, in, EventKind::Write, Access::Release,
                   RmwKind::None, in.rn, in.imm);
            break;
          case AOp::Ldxr:
            access(i, in, EventKind::Read, Access::Plain, RmwKind::LxSx,
                   in.rn, 0);
            regs.reset(in.rd);
            break;
          case AOp::Ldaxr:
            access(i, in, EventKind::Read, Access::Acquire,
                   RmwKind::LxSx, in.rn, 0);
            regs.reset(in.rd);
            break;
          case AOp::Stxr:
            access(i, in, EventKind::Write, Access::Plain, RmwKind::LxSx,
                   in.rn, 0);
            regs.reset(in.rd); // Status register.
            break;
          case AOp::Stlxr:
            access(i, in, EventKind::Write, Access::Release,
                   RmwKind::LxSx, in.rn, 0);
            regs.reset(in.rd);
            break;
          case AOp::Cas:
            access(i, in, EventKind::Read, Access::Plain, RmwKind::Amo,
                   in.rn, 0);
            access(i, in, EventKind::Write, Access::Plain, RmwKind::Amo,
                   in.rn, 0);
            regs.reset(in.rd);
            break;
          case AOp::Casal:
          case AOp::Ldaddal:
            access(i, in, EventKind::Read, Access::Acquire, RmwKind::Amo,
                   in.rn, 0);
            access(i, in, EventKind::Write, Access::Release,
                   RmwKind::Amo, in.rn, 0);
            regs.reset(in.rd);
            break;
          case AOp::Dmb: {
            FenceKind kind = FenceKind::DmbFull;
            if (in.barrier == aarch::Barrier::Ld)
                kind = FenceKind::DmbLd;
            else if (in.barrier == aarch::Barrier::St)
                kind = FenceKind::DmbSt;
            events.push_back(
                makeFence(kind, locs.fresh(), tag(i, "F", in.toString())));
            break;
          }
          case AOp::Helper: {
            const auto id = static_cast<tcg::HelperId>(in.helper);
            if (id == tcg::HelperId::CasHelper ||
                id == tcg::HelperId::XaddHelper) {
                // The helper's RMW strength depends on how it was
                // compiled: RMW1-AL behaves like casal, RMW2-AL like a
                // bare ldaxr/stlxr pair (the GCC-9 build of Figure 4).
                const bool lxsx = rmw == RmwLowering::HelperRmw2AL;
                const SymVal addr = regs.key(24 /* HelperArg0 */, 0);
                const Loc loc = locs.of(addr);
                events.push_back(makeAccess(
                    EventKind::Read, Access::Acquire,
                    lxsx ? RmwKind::LxSx : RmwKind::Amo, loc,
                    tag(i, "R", in.toString())));
                events.push_back(makeAccess(
                    EventKind::Write, Access::Release,
                    lxsx ? RmwKind::LxSx : RmwKind::Amo, loc,
                    tag(i, "W", in.toString())));
            }
            regs.reset(24); // HelperRet.
            regs.reset(25); // HelperArg1 staging.
            break;
          }
          case AOp::Cmp:
          case AOp::CmpI:
          case AOp::B:
          case AOp::Bcond:
          case AOp::Cbz:
          case AOp::Cbnz:
          case AOp::ExitTb:
          case AOp::Nop:
          case AOp::Hlt:
            break;
          default:
            // Remaining ALU / FP / branch-and-link ops write rd.
            regs.reset(in.rd);
            break;
        }
    }
    return events;
}

std::vector<VEvent>
rv64Events(const std::vector<rv64::RInstr> &code, RmwLowering rmw)
{
    using rv64::ROp;
    std::vector<VEvent> events;
    AddrTracker regs(aarch::XRegCount);
    LocAssigner locs;

    // Branch/JAL targets are join points (imm is a word offset relative
    // to the instruction, like the aarch convention).
    std::vector<bool> join(code.size(), false);
    for (std::size_t i = 0; i < code.size(); ++i) {
        const ROp op = code[i].op;
        if (op != ROp::Beq && op != ROp::Bne && op != ROp::Blt &&
            op != ROp::Bge && op != ROp::Bltu && op != ROp::Bgeu &&
            op != ROp::Jal)
            continue;
        const std::int64_t t =
            static_cast<std::int64_t>(i) + code[i].imm;
        if (t >= 0 && t < static_cast<std::int64_t>(code.size()))
            join[static_cast<std::size_t>(t)] = true;
    }

    auto access = [&](std::size_t i, const rv64::RInstr &in,
                      EventKind kind, Access acc, RmwKind kindRmw,
                      std::uint8_t base, std::int64_t off) {
        const char *mark = kind == EventKind::Read ? "R" : "W";
        events.push_back(makeAccess(kind, acc, kindRmw,
                                    locs.of(regs.key(base, off)),
                                    tag(i, mark, in.toString())));
    };
    // LR/SC and AMO annotation strength in the event vocabulary.
    auto annot = [](bool aq, bool rl) {
        if (aq && rl)
            return Access::AcqRel;
        if (aq)
            return Access::Acquire;
        if (rl)
            return Access::Release;
        return Access::Plain;
    };

    for (std::size_t i = 0; i < code.size(); ++i) {
        if (join[i])
            regs.resetAll();
        const rv64::RInstr &in = code[i];
        switch (in.op) {
          case ROp::Lui:
            regs.setConst(in.rd,
                          static_cast<std::uint64_t>(
                              static_cast<std::int64_t>(in.imm)));
            break;
          case ROp::Addi:
            regs.add(in.rd, in.rs1, in.imm);
            break;
          case ROp::Add:
            if (regs.isConst(in.rs2))
                regs.add(in.rd, in.rs1,
                         static_cast<std::int64_t>(
                             regs.constValue(in.rs2)));
            else if (regs.isConst(in.rs1))
                regs.add(in.rd, in.rs2,
                         static_cast<std::int64_t>(
                             regs.constValue(in.rs1)));
            else
                regs.reset(in.rd);
            break;
          case ROp::Ld:
          case ROp::Lbu:
            access(i, in, EventKind::Read, Access::Plain, RmwKind::None,
                   in.rs1, in.imm);
            regs.reset(in.rd);
            break;
          case ROp::Sd:
          case ROp::Sb:
            access(i, in, EventKind::Write, Access::Plain, RmwKind::None,
                   in.rs1, in.imm);
            break;
          case ROp::LrD:
            access(i, in, EventKind::Read, annot(in.aq, in.rl),
                   RmwKind::LxSx, in.rs1, 0);
            regs.reset(in.rd);
            break;
          case ROp::ScD:
            access(i, in, EventKind::Write, annot(in.aq, in.rl),
                   RmwKind::LxSx, in.rs1, 0);
            regs.reset(in.rd); // Status register.
            break;
          case ROp::AmoAddD:
          case ROp::AmoSwapD:
            access(i, in, EventKind::Read, annot(in.aq, in.rl),
                   RmwKind::Amo, in.rs1, 0);
            access(i, in, EventKind::Write, annot(in.aq, in.rl),
                   RmwKind::Amo, in.rs1, 0);
            regs.reset(in.rd);
            break;
          case ROp::Fence:
            events.push_back(makeFence(
                mapping::riscvFenceKind(in.pred, in.succ), locs.fresh(),
                tag(i, "F", in.toString())));
            break;
          case ROp::Helper: {
            const auto id = static_cast<tcg::HelperId>(in.helper);
            if (id == tcg::HelperId::CasHelper ||
                id == tcg::HelperId::XaddHelper) {
                // RMW1-style helpers execute a fully-ordered amo.aqrl;
                // RMW2-style helpers the weak lr.aq/sc.rl pair.
                const bool lxsx = rmw == RmwLowering::HelperRmw2AL;
                const Loc loc = locs.of(regs.key(24 /* HelperArg0 */, 0));
                events.push_back(makeAccess(
                    EventKind::Read,
                    lxsx ? Access::Acquire : Access::AcqRel,
                    lxsx ? RmwKind::LxSx : RmwKind::Amo, loc,
                    tag(i, "R", in.toString())));
                events.push_back(makeAccess(
                    EventKind::Write,
                    lxsx ? Access::Release : Access::AcqRel,
                    lxsx ? RmwKind::LxSx : RmwKind::Amo, loc,
                    tag(i, "W", in.toString())));
            }
            regs.reset(24); // HelperRet.
            regs.reset(25); // HelperArg1 staging.
            break;
          }
          case ROp::Beq:
          case ROp::Bne:
          case ROp::Blt:
          case ROp::Bge:
          case ROp::Bltu:
          case ROp::Bgeu:
          case ROp::ExitTb:
          case ROp::Ebreak:
            break;
          default:
            // Remaining ALU ops, JAL and ECALL write rd (rd defaults to
            // x0 for ECALL, whose syscalls may write g0).
            regs.reset(in.rd);
            break;
        }
    }
    return events;
}

std::vector<aarch::AInstr>
decodeRange(const aarch::CodeBuffer &code, aarch::CodeAddr from,
            aarch::CodeAddr to)
{
    std::vector<aarch::AInstr> out;
    out.reserve(to - from);
    for (aarch::CodeAddr a = from; a < to; ++a)
        out.push_back(aarch::decode(code.fetch(a)));
    return out;
}

HostCode
decodeHostRange(support::HostIsa isa, const aarch::CodeBuffer &code,
                aarch::CodeAddr from, aarch::CodeAddr to)
{
    HostCode out;
    out.isa = isa;
    if (isa == support::HostIsa::Rv64) {
        out.riscv.reserve(to - from);
        for (aarch::CodeAddr a = from; a < to; ++a)
            out.riscv.push_back(rv64::decode(code.fetch(a)));
    } else {
        out.arm = decodeRange(code, from, to);
    }
    return out;
}

Execution
eventExecution(const std::vector<VEvent> &events)
{
    Execution x;
    x.events.reserve(events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        memcore::Event e;
        e.id = static_cast<memcore::EventId>(i);
        e.tid = 0;
        e.poIndex = static_cast<std::uint32_t>(i);
        e.kind = events[i].kind;
        e.access = events[i].access;
        e.fence = events[i].fence;
        e.rmw = events[i].rmw;
        e.loc = events[i].loc;
        x.events.push_back(e);
    }
    x.initRelations();
    for (std::size_t i = 0; i < events.size(); ++i)
        for (std::size_t j = i + 1; j < events.size(); ++j)
            x.po.insert(static_cast<memcore::EventId>(i),
                        static_cast<memcore::EventId>(j));
    // RMW events are emitted as adjacent read/write pairs.
    for (std::size_t i = 0; i + 1 < events.size(); ++i)
        if (events[i].rmw != RmwKind::None &&
            events[i].kind == EventKind::Read &&
            events[i + 1].rmw == events[i].rmw &&
            events[i + 1].kind == EventKind::Write)
            x.rmw.insert(static_cast<memcore::EventId>(i),
                         static_cast<memcore::EventId>(i + 1));
    return x;
}

Relation
obligationGraph(const std::vector<VEvent> &events)
{
    const Execution x = eventExecution(events);
    const EventSet reads = x.reads();
    const EventSet writes = x.writes();

    // ppo = ((W x W) U (R x W) U (R x R)) n po (everything but W -> R).
    const Relation ppo =
        (Relation::cross(writes, writes) | Relation::cross(reads, writes) |
         Relation::cross(reads, reads)) &
        x.po;

    // implied = po ; [At U F] U [At U F] ; po.
    const EventSet fenced = x.rmw.domain() | x.rmw.codomain() |
                            x.fencesOf(FenceKind::MFence);
    const Relation id_fenced = Relation::identityOn(fenced);
    const Relation implied =
        x.po.compose(id_fenced) | id_fenced.compose(x.po);

    const Relation ob = (ppo | implied).transitiveClosure();
    const EventSet accesses = reads | writes;
    return ob.restrictDomain(accesses).restrictCodomain(accesses);
}

Relation
tcgGuaranteeGraph(const std::vector<VEvent> &events)
{
    const Execution x = eventExecution(events);
    return models::TcgModel::ord(x).transitiveClosure();
}

Relation
armGuaranteeGraph(const std::vector<VEvent> &events,
                  models::ArmModel::AmoRule rule)
{
    const Execution x = eventExecution(events);
    return models::ArmModel(rule).lob(x);
}

Relation
rv64GuaranteeGraph(const std::vector<VEvent> &events)
{
    const Execution x = eventExecution(events);
    return models::RiscvModel::ppo(x).transitiveClosure();
}

namespace
{

constexpr std::size_t NoMatch = static_cast<std::size_t>(-1);

/** Access class: direction x rmw participation. Fences are -1. */
int
accessClass(const VEvent &e)
{
    if (e.kind == EventKind::Fence)
        return -1;
    return (e.kind == EventKind::Write ? 1 : 0) +
           (e.rmw != RmwKind::None ? 2 : 0);
}

/**
 * Backtracking subsequence embedder behind matchAccesses() below.
 *
 * The optimizer only ever *removes* accesses (RAR/RAW/WAW elimination,
 * per Figure 10) and never reorders them, so the true guest-to-target
 * correspondence is an order-preserving, class-preserving embedding of
 * the target access sequence into the guest access sequence; unmatched
 * guest accesses are the eliminated ones, and their obligations are
 * discharged by the elimination's side conditions.
 *
 * A purely class-based leftmost greedy can pick the wrong embedding:
 * WAW elimination removes the *earlier* of two same-location stores, so
 * greedy matches the survivor to the eliminated store's slot and every
 * later same-class access slips one position -- possibly across a
 * fence, producing phantom violations. The structural fact that repairs
 * this: every elimination's survivor/victim pair is contiguous (no
 * intervening access to another location) and same-location, so a
 * skipped guest access is only plausible when its contiguous
 * same-location run contains a matched access. Within a run the twins
 * are interchangeable -- only fences separate run members, and the
 * checker discharges same-location pairs through coherence -- so the
 * first embedding that validates is as good as the true one.
 */
class AccessEmbedder
{
  public:
    AccessEmbedder(const std::vector<VEvent> &guest,
                   const std::vector<VEvent> &target)
        : guest_(guest), target_(target)
    {
        for (std::size_t i = 0; i < guest.size(); ++i)
            if (accessClass(guest[i]) >= 0)
                gacc_.push_back(i);
        for (std::size_t t = 0; t < target.size(); ++t)
            if (accessClass(target[t]) >= 0)
                tacc_.push_back(t);
        run_.resize(gacc_.size(), 0);
        for (std::size_t k = 1; k < gacc_.size(); ++k)
            run_[k] = run_[k - 1] +
                      (guest[gacc_[k]].loc != guest[gacc_[k - 1]].loc);
        match_.assign(gacc_.size(), NoMatch);
    }

    /** @return per-guest-event target index, or nullopt when no valid
     * embedding exists within budget (caller falls back to greedy). */
    std::optional<std::vector<std::size_t>>
    solve()
    {
        if (!embed(0, 0))
            return std::nullopt;
        std::vector<std::size_t> map(guest_.size(), NoMatch);
        for (std::size_t k = 0; k < gacc_.size(); ++k)
            map[gacc_[k]] = match_[k];
        return map;
    }

  private:
    bool
    runHasMatch(std::size_t k) const
    {
        for (std::size_t j = 0; j < gacc_.size(); ++j)
            if (run_[j] == run_[k] && match_[j] != NoMatch)
                return true;
        return false;
    }

    bool
    embed(std::size_t gi, std::size_t ti)
    {
        if (budget_ == 0 || --budget_ == 0)
            return false;
        if (ti == tacc_.size()) {
            // Leaf: every skipped guest access must sit in a run that
            // kept a survivor.
            for (std::size_t k = 0; k < gacc_.size(); ++k)
                if (match_[k] == NoMatch && !runHasMatch(k))
                    return false;
            return true;
        }
        if (gi == gacc_.size())
            return false;
        if (accessClass(guest_[gacc_[gi]]) ==
            accessClass(target_[tacc_[ti]])) {
            match_[gi] = tacc_[ti];
            if (embed(gi + 1, ti + 1))
                return true;
            match_[gi] = NoMatch;
        }
        return embed(gi + 1, ti);
    }

    const std::vector<VEvent> &guest_;
    const std::vector<VEvent> &target_;
    std::vector<std::size_t> gacc_;  ///< Guest access event indices.
    std::vector<std::size_t> tacc_;  ///< Target access event indices.
    std::vector<std::size_t> run_;   ///< Same-loc run id per gacc entry.
    std::vector<std::size_t> match_; ///< Target event per gacc entry.
    std::size_t budget_ = 1u << 15;  ///< Backtracking step bound.
};

/**
 * Match guest accesses to target accesses in order, by class, via the
 * run-validated embedding above. When no valid embedding exists (a
 * broken scheme may emit extra or reordered accesses) fall back to the
 * leftmost greedy subsequence match: an arbitrary-but-deterministic
 * correspondence under which the missing guarantees still surface.
 * @return per-guest-event target index (NoMatch when eliminated).
 */
std::vector<std::size_t>
matchAccesses(const std::vector<VEvent> &guest,
              const std::vector<VEvent> &target)
{
    if (auto embedded = AccessEmbedder(guest, target).solve())
        return *embedded;
    std::vector<std::size_t> map(guest.size(), NoMatch);
    std::size_t g = 0;
    for (std::size_t t = 0; t < target.size(); ++t) {
        const int cls = accessClass(target[t]);
        if (cls < 0)
            continue;
        std::size_t probe = g;
        while (probe < guest.size() && accessClass(guest[probe]) != cls)
            ++probe;
        if (probe >= guest.size())
            continue; // Target-side extra access: cannot weaken ordering.
        map[probe] = t;
        g = probe + 1;
    }
    return map;
}

/** Direction bit of an ordered access pair (fencealg vocabulary). */
std::uint8_t
orderBit(const VEvent &from, const VEvent &to)
{
    if (from.kind == EventKind::Read)
        return to.kind == EventKind::Read ? memcore::OrdRR
                                          : memcore::OrdRW;
    return to.kind == EventKind::Read ? memcore::OrdWR : memcore::OrdWW;
}

/** Weakest DMB whose domain covers one direction bit. */
FenceKind
armCoveringFence(std::uint8_t bit)
{
    if (bit == memcore::OrdRR || bit == memcore::OrdRW)
        return FenceKind::DmbLd;
    if (bit == memcore::OrdWW)
        return FenceKind::DmbSt;
    return FenceKind::DmbFull;
}

} // namespace

ValidationReport
TbValidator::checkAgainst(const std::vector<gx86::Instruction> &guest,
                          const std::vector<VEvent> &target, Level level,
                          std::uint64_t guest_pc, bool superblock,
                          const std::vector<bool> *local_guest) const
{
    ValidationReport report;
    const std::vector<VEvent> gev = guestEvents(guest);
    if (gev.empty())
        return report;
    const Relation obligations = obligationGraph(gev);
    const Relation guarantees =
        level == Level::Tcg
            ? tcgGuaranteeGraph(target)
            : (level == Level::Rv64
                   ? rv64GuaranteeGraph(target)
                   : armGuaranteeGraph(target, options_.amoRule));
    const std::vector<std::size_t> match = matchAccesses(gev, target);
    panicIf(local_guest != nullptr && local_guest->size() != gev.size(),
            "locality mask does not cover the guest events");

    for (const auto &[a, b] : obligations.pairs()) {
        if (local_guest != nullptr &&
            ((*local_guest)[a] || (*local_guest)[b])) {
            // Thread-locality discharge: a thread-private endpoint has
            // no cross-thread visibility, so the ordering cannot be
            // observed by any race (see localGuestEvents).
            ++report.pairsDischargedLocal;
            continue;
        }
        const std::size_t ta = match[a];
        const std::size_t tb = match[b];
        if (ta == NoMatch || tb == NoMatch)
            continue; // Eliminated access: obligation discharged.
        ++report.pairsChecked;
        if (guarantees.contains(static_cast<memcore::EventId>(ta),
                                static_cast<memcore::EventId>(tb)))
            continue;
        if (target[ta].loc == target[tb].loc)
            continue; // Same location: per-location coherence orders.
        Violation v;
        v.level = level;
        v.guestPc = guest_pc;
        v.superblock = superblock;
        v.from = gev[a].what;
        v.to = gev[b].what;
        v.fromTarget = target[ta].what;
        v.toTarget = target[tb].what;
        // Tcg and Rv64 both speak the directional Fxy vocabulary (a
        // RISC-V FENCE is an Fxy fence); Arm speaks DMB variants.
        const std::uint8_t bit = orderBit(gev[a], gev[b]);
        v.missingFence = level == Level::Arm
                             ? armCoveringFence(bit)
                             : memcore::coveringFence(bit);
        report.violations.push_back(std::move(v));
    }
    return report;
}

ValidationReport
TbValidator::validate(const std::vector<gx86::Instruction> &guest,
                      const tcg::Block &ir,
                      const std::vector<aarch::AInstr> &host,
                      std::uint64_t guest_pc, bool superblock,
                      const std::vector<bool> *local_guest) const
{
    HostCode hc;
    hc.isa = support::HostIsa::Aarch;
    hc.arm = host;
    return validate(guest, ir, hc, guest_pc, superblock, local_guest);
}

ValidationReport
TbValidator::validate(const std::vector<gx86::Instruction> &guest,
                      const tcg::Block &ir, const HostCode &host,
                      std::uint64_t guest_pc, bool superblock,
                      const std::vector<bool> *local_guest) const
{
    ValidationReport report;
    auto merge = [&](ValidationReport part) {
        report.pairsChecked += part.pairsChecked;
        report.pairsDischargedLocal += part.pairsDischargedLocal;
        for (auto &v : part.violations)
            report.violations.push_back(std::move(v));
    };
    if (options_.checkTcg)
        merge(checkAgainst(guest, tcgEvents(ir), Level::Tcg, guest_pc,
                           superblock, local_guest));
    if (options_.checkArm) {
        if (host.isa == support::HostIsa::Rv64)
            merge(checkAgainst(guest, rv64Events(host.riscv, options_.rmw),
                               Level::Rv64, guest_pc, superblock,
                               local_guest));
        else
            merge(checkAgainst(guest, armEvents(host.arm, options_.rmw),
                               Level::Arm, guest_pc, superblock,
                               local_guest));
    }
    return report;
}

} // namespace risotto::verify
