/**
 * @file
 * Batch re-validation: run the per-TB obligation-graph check over many
 * pre-assembled translations at once.
 *
 * The per-translation validator (TbValidator) is what the tiers call
 * inline; this entry point serves offline audits -- most importantly
 * re-validating every record of a persistent translation-cache snapshot
 * (risotto-run --tb-cache-verify) without installing anything into a
 * live engine.
 */

#ifndef RISOTTO_VERIFY_BATCH_HH
#define RISOTTO_VERIFY_BATCH_HH

#include <cstdint>
#include <vector>

#include "verify/verifier.hh"

namespace risotto::verify
{

/** One pre-assembled translation to re-validate. */
struct BatchItem
{
    /** Decoded guest instructions of the whole region. */
    std::vector<gx86::Instruction> guest;

    /** Post-optimization IR the host code claims to come from. */
    tcg::Block ir;

    /** Decoded host instructions, tagged with their ISA. */
    HostCode host;

    std::uint64_t guestPc = 0;
    bool superblock = false;
};

/** Aggregate result of a batch run. */
struct BatchReport
{
    std::uint64_t itemsChecked = 0;
    std::uint64_t itemsFailed = 0;
    std::uint64_t pairsChecked = 0;
    std::vector<Violation> violations;

    bool ok() const { return itemsFailed == 0; }
};

/** Validate every item; never throws. */
BatchReport validateBatch(const TbValidator &validator,
                          const std::vector<BatchItem> &items);

} // namespace risotto::verify

#endif // RISOTTO_VERIFY_BATCH_HH
