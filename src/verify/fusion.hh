/**
 * @file
 * Obligation-graph checks of the interpreter's fused dispatch handlers.
 *
 * The DecodedSegment's peephole fusion (src/gx86/decoded.hh) executes an
 * adjacent guest instruction pair in one interpreter dispatch. Fusion is
 * interpreter-only -- no IR or host code changes -- but it must still
 * preserve the pair's x86-TSO ordering obligations, so each pattern is
 * checked once per engine against the PR-3 obligation-graph validator
 * (the same amortization argument as the superblock path checks): the
 * canonical pair's guest obligations must be contained in the guarantee
 * graph of the event sequence the fused fallback handler actually
 * performs (write-through stores modelled as a Plain write followed by
 * an Fsc drain, loads as Plain reads, in handler execution order).
 *
 * Patterns that fail -- none of the built-in five can, by construction,
 * but the check is what enforces that as the pattern set grows -- are
 * disabled wholesale in the engine's FusionConfig before the segment is
 * built.
 */

#ifndef RISOTTO_VERIFY_FUSION_HH
#define RISOTTO_VERIFY_FUSION_HH

#include <string>
#include <vector>

#include "gx86/decoded.hh"
#include "verify/verifier.hh"

namespace risotto::verify
{

/** Outcome of checking one fusion pattern. */
struct FusionPatternReport
{
    gx86::FusionKind kind = gx86::FusionKind::Count_;
    std::string name;

    /** The guard side conditions hold for the canonical pair: neither
     * member is a LOCK-prefixed RMW or MFENCE, and the pair does not
     * start at a block terminator. */
    bool guardsHold = false;

    /** Obligation pairs checked against the handler's guarantees. */
    std::uint64_t pairsChecked = 0;

    std::vector<Violation> violations;

    bool ok() const { return guardsHold && violations.empty(); }
};

/** The event sequence the fused fallback handler performs for @p
 * pattern, in execution order (exposed for tests). */
std::vector<VEvent>
fusedHandlerEvents(const gx86::FusionPatternInfo &pattern);

/** Check every fusion pattern's canonical pair. */
std::vector<FusionPatternReport>
validateFusionPatterns(const ValidatorOptions &options = {});

/** Disable any pattern of @p config whose report is not ok; returns the
 * number of patterns disabled. */
std::size_t applyFusionReports(
    const std::vector<FusionPatternReport> &reports,
    gx86::FusionConfig &config);

} // namespace risotto::verify

#endif // RISOTTO_VERIFY_FUSION_HH
