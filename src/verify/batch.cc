#include "verify/batch.hh"

namespace risotto::verify
{

BatchReport
validateBatch(const TbValidator &validator,
              const std::vector<BatchItem> &items)
{
    BatchReport report;
    for (const BatchItem &item : items) {
        ++report.itemsChecked;
        ValidationReport one = validator.validate(
            item.guest, item.ir, item.host, item.guestPc, item.superblock);
        report.pairsChecked += one.pairsChecked;
        if (one.ok())
            continue;
        ++report.itemsFailed;
        for (Violation &v : one.violations)
            report.violations.push_back(std::move(v));
    }
    return report;
}

} // namespace risotto::verify
