#include "verify/templates.hh"

#include <utility>

namespace risotto::verify
{

std::vector<TemplatePatternReport>
validateTemplatePatterns(const std::vector<TemplateProbe> &probes,
                         const ValidatorOptions &options)
{
    const TbValidator validator(options);
    std::vector<TemplatePatternReport> reports;
    auto reportFor = [&](const TemplateProbe &probe) -> std::size_t {
        for (std::size_t i = 0; i < reports.size(); ++i)
            if (reports[i].kind == probe.kind)
                return i;
        TemplatePatternReport fresh;
        fresh.kind = probe.kind;
        fresh.name = probe.kindName;
        reports.push_back(std::move(fresh));
        return reports.size() - 1;
    };
    for (const TemplateProbe &probe : probes) {
        ValidationReport result = validator.validate(
            probe.guest, probe.ir, probe.host, 0, false, nullptr);
        TemplatePatternReport &report = reports[reportFor(probe)];
        ++report.probesChecked;
        report.pairsChecked += result.pairsChecked;
        for (Violation &v : result.violations)
            report.violations.push_back(std::move(v));
    }
    return reports;
}

} // namespace risotto::verify
