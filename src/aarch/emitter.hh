/**
 * @file
 * Host code buffer and emitter.
 *
 * The emitter appends 32-bit instruction words to a shared code buffer
 * (the DBT's translation cache memory) with label-based branch fixups,
 * exactly like a JIT backend.
 */

#ifndef RISOTTO_AARCH_EMITTER_HH
#define RISOTTO_AARCH_EMITTER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "aarch/isa.hh"
#include "support/error.hh"

namespace risotto::aarch
{

/** Host code address: word index into the code buffer. */
using CodeAddr = std::uint32_t;

/** The translation-cache memory is exhausted (recoverable: the DBT
 * flushes the cache or falls back to interpretation). */
class CodeBufferFull : public Error
{
  public:
    explicit CodeBufferFull(const std::string &msg)
        : Error("code buffer full: " + msg)
    {
    }
};

/** The shared host code buffer. */
class CodeBuffer
{
  public:
    /** Current end-of-code position. */
    CodeAddr end() const { return static_cast<CodeAddr>(words_.size()); }

    /** Fetch the word at @p addr. */
    std::uint32_t fetch(CodeAddr addr) const;

    /**
     * Append a word; returns its address.
     * @throws CodeBufferFull past the configured capacity.
     */
    CodeAddr append(std::uint32_t word);

    /** Overwrite the word at @p addr (branch patching / chaining). */
    void patch(CodeAddr addr, std::uint32_t word);

    /** Total words emitted. */
    std::size_t size() const { return words_.size(); }

    /** Cap the buffer at @p words (0 = unbounded). */
    void setCapacity(std::size_t words) { capacity_ = words; }
    std::size_t capacity() const { return capacity_; }

    /** Pre-grow the backing storage (cold-start latency: the first
     * translated block must not pay the vector's reallocation ladder
     * inside the time-to-first-dispatch window). */
    void reserve(std::size_t words) { words_.reserve(words); }

    /** Discard all words at and past @p from (translation-cache flush /
     * rollback of a partially compiled block). */
    void truncate(CodeAddr from);

    /** Disassemble the range [from, to). */
    std::string disassemble(CodeAddr from, CodeAddr to) const;

  private:
    std::vector<std::uint32_t> words_;
    std::size_t capacity_ = 0;
};

/** Label-aware instruction emitter over a CodeBuffer. */
class Emitter
{
  public:
    using Label = std::size_t;

    explicit Emitter(CodeBuffer &buffer) : buffer_(buffer) {}

    CodeAddr here() const { return buffer_.end(); }

    Label newLabel();
    void bind(Label label);

    /** Resolve all pending fixups; must be called before executing. */
    void finish();

    // --- Instructions (thin wrappers over encode/append) ------------------

    void nop();
    void hlt();
    void movImm(XReg rd, std::uint64_t value); ///< movz/movk sequence
    void mov(XReg rd, XReg rn);
    void ldr(XReg rt, XReg rn, std::int32_t off = 0);
    void str(XReg rt, XReg rn, std::int32_t off = 0);
    void ldrb(XReg rt, XReg rn, std::int32_t off = 0);
    void strb(XReg rt, XReg rn, std::int32_t off = 0);
    void ldar(XReg rt, XReg rn);
    void ldapr(XReg rt, XReg rn);
    void stlr(XReg rt, XReg rn);
    void ldxr(XReg rt, XReg rn);
    void stxr(XReg rs, XReg rt, XReg rn);
    void ldaxr(XReg rt, XReg rn);
    void stlxr(XReg rs, XReg rt, XReg rn);
    void cas(XReg rs, XReg rt, XReg rn);
    void casal(XReg rs, XReg rt, XReg rn);
    void ldaddal(XReg rs, XReg rt, XReg rn);
    void dmb(Barrier barrier);
    void add(XReg rd, XReg rn, XReg rm);
    void sub(XReg rd, XReg rn, XReg rm);
    void and_(XReg rd, XReg rn, XReg rm);
    void orr(XReg rd, XReg rn, XReg rm);
    void eor(XReg rd, XReg rn, XReg rm);
    void mul(XReg rd, XReg rn, XReg rm);
    void udiv(XReg rd, XReg rn, XReg rm);
    void addi(XReg rd, XReg rn, std::int32_t imm);
    void subi(XReg rd, XReg rn, std::int32_t imm);
    void lsli(XReg rd, XReg rn, std::int32_t amount);
    void lsri(XReg rd, XReg rn, std::int32_t amount);
    void cmp(XReg rn, XReg rm);
    void cmpi(XReg rn, std::int32_t imm);
    void cset(XReg rd, Cond cond);
    void b(Label label);
    void bcond(Cond cond, Label label);
    void cbz(XReg rt, Label label);
    void cbnz(XReg rt, Label label);
    void bl(CodeAddr target);
    void blr(XReg rn);
    void ret();
    void fadd(XReg rd, XReg rn, XReg rm);
    void fsub(XReg rd, XReg rn, XReg rm);
    void fmul(XReg rd, XReg rn, XReg rm);
    void fdiv(XReg rd, XReg rn, XReg rm);
    void fsqrt(XReg rd, XReg rn);
    void scvtf(XReg rd, XReg rn);
    void fcvtzs(XReg rd, XReg rn);
    void helper(std::uint8_t id, std::uint16_t extra = 0);
    void exitTb(std::uint32_t slot);
    void svc();

  private:
    struct Fixup
    {
        CodeAddr at;
        Label label;
    };

    void emit(const AInstr &instr);
    void emitBranch(AInstr instr, Label label);

    CodeBuffer &buffer_;
    std::vector<std::int64_t> labels_;
    std::vector<Fixup> fixups_;
};

} // namespace risotto::aarch

#endif // RISOTTO_AARCH_EMITTER_HH
