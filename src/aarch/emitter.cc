#include "aarch/emitter.hh"

#include <sstream>

#include "support/error.hh"

namespace risotto::aarch
{

std::uint32_t
CodeBuffer::fetch(CodeAddr addr) const
{
    panicIf(addr >= words_.size(), "host pc out of code buffer");
    return words_[addr];
}

CodeAddr
CodeBuffer::append(std::uint32_t word)
{
    if (capacity_ != 0 && words_.size() >= capacity_)
        throw CodeBufferFull(std::to_string(capacity_) + " words");
    words_.push_back(word);
    return static_cast<CodeAddr>(words_.size() - 1);
}

void
CodeBuffer::truncate(CodeAddr from)
{
    panicIf(from > words_.size(), "truncate past end of code buffer");
    words_.resize(from);
}

void
CodeBuffer::patch(CodeAddr addr, std::uint32_t word)
{
    panicIf(addr >= words_.size(), "patch out of code buffer");
    words_[addr] = word;
}

std::string
CodeBuffer::disassemble(CodeAddr from, CodeAddr to) const
{
    std::ostringstream os;
    for (CodeAddr a = from; a < to && a < words_.size(); ++a)
        os << "  " << a << ":  " << decode(words_[a]).toString() << "\n";
    return os.str();
}

Emitter::Label
Emitter::newLabel()
{
    labels_.push_back(-1);
    return labels_.size() - 1;
}

void
Emitter::bind(Label label)
{
    panicIf(label >= labels_.size(), "unknown host label");
    panicIf(labels_[label] >= 0, "host label bound twice");
    labels_[label] = here();
}

void
Emitter::finish()
{
    for (const Fixup &f : fixups_) {
        const std::int64_t bound = labels_[f.label];
        panicIf(bound < 0, "unbound host label");
        AInstr instr = decode(buffer_.fetch(f.at));
        instr.imm = static_cast<std::int32_t>(
            bound - static_cast<std::int64_t>(f.at));
        buffer_.patch(f.at, encode(instr));
    }
    fixups_.clear();
}

void
Emitter::emit(const AInstr &instr)
{
    buffer_.append(encode(instr));
}

void
Emitter::emitBranch(AInstr instr, Label label)
{
    instr.imm = 0;
    const CodeAddr at = buffer_.append(encode(instr));
    fixups_.push_back({at, label});
}

void
Emitter::nop()
{
    emit({});
}

void
Emitter::hlt()
{
    AInstr i;
    i.op = AOp::Hlt;
    emit(i);
}

void
Emitter::movImm(XReg rd, std::uint64_t value)
{
    AInstr movz;
    movz.op = AOp::MovZ;
    movz.rd = rd;
    movz.shift = 0;
    movz.imm = static_cast<std::int32_t>(value & 0xffff);
    emit(movz);
    for (std::uint8_t half = 1; half < 4; ++half) {
        const std::uint16_t bits =
            static_cast<std::uint16_t>(value >> (16 * half));
        if (bits == 0)
            continue;
        AInstr movk;
        movk.op = AOp::MovK;
        movk.rd = rd;
        movk.shift = half;
        movk.imm = bits;
        emit(movk);
    }
}

namespace
{

AInstr
threeReg(AOp op, XReg rd, XReg rn, XReg rm)
{
    AInstr i;
    i.op = op;
    i.rd = rd;
    i.rn = rn;
    i.rm = rm;
    return i;
}

AInstr
memOp(AOp op, XReg rt, XReg rn, std::int32_t off)
{
    AInstr i;
    i.op = op;
    i.rd = rt;
    i.rn = rn;
    i.imm = off;
    return i;
}

} // namespace

void Emitter::mov(XReg rd, XReg rn) { emit(threeReg(AOp::MovRR, rd, rn, 0)); }
void Emitter::ldr(XReg rt, XReg rn, std::int32_t off) { emit(memOp(AOp::Ldr, rt, rn, off)); }
void Emitter::str(XReg rt, XReg rn, std::int32_t off) { emit(memOp(AOp::Str, rt, rn, off)); }
void Emitter::ldrb(XReg rt, XReg rn, std::int32_t off) { emit(memOp(AOp::Ldrb, rt, rn, off)); }
void Emitter::strb(XReg rt, XReg rn, std::int32_t off) { emit(memOp(AOp::Strb, rt, rn, off)); }
void Emitter::ldar(XReg rt, XReg rn) { emit(memOp(AOp::Ldar, rt, rn, 0)); }
void Emitter::ldapr(XReg rt, XReg rn) { emit(memOp(AOp::Ldapr, rt, rn, 0)); }
void Emitter::stlr(XReg rt, XReg rn) { emit(memOp(AOp::Stlr, rt, rn, 0)); }
void Emitter::ldxr(XReg rt, XReg rn) { emit(memOp(AOp::Ldxr, rt, rn, 0)); }
void Emitter::stxr(XReg rs, XReg rt, XReg rn) { emit(threeReg(AOp::Stxr, rs, rn, rt)); }
void Emitter::ldaxr(XReg rt, XReg rn) { emit(memOp(AOp::Ldaxr, rt, rn, 0)); }
void Emitter::stlxr(XReg rs, XReg rt, XReg rn) { emit(threeReg(AOp::Stlxr, rs, rn, rt)); }
void Emitter::cas(XReg rs, XReg rt, XReg rn) { emit(threeReg(AOp::Cas, rs, rn, rt)); }
void Emitter::casal(XReg rs, XReg rt, XReg rn) { emit(threeReg(AOp::Casal, rs, rn, rt)); }
void Emitter::ldaddal(XReg rs, XReg rt, XReg rn) { emit(threeReg(AOp::Ldaddal, rs, rn, rt)); }

void
Emitter::dmb(Barrier barrier)
{
    AInstr i;
    i.op = AOp::Dmb;
    i.barrier = barrier;
    emit(i);
}

void Emitter::add(XReg rd, XReg rn, XReg rm) { emit(threeReg(AOp::Add, rd, rn, rm)); }
void Emitter::sub(XReg rd, XReg rn, XReg rm) { emit(threeReg(AOp::Sub, rd, rn, rm)); }
void Emitter::and_(XReg rd, XReg rn, XReg rm) { emit(threeReg(AOp::And, rd, rn, rm)); }
void Emitter::orr(XReg rd, XReg rn, XReg rm) { emit(threeReg(AOp::Orr, rd, rn, rm)); }
void Emitter::eor(XReg rd, XReg rn, XReg rm) { emit(threeReg(AOp::Eor, rd, rn, rm)); }
void Emitter::mul(XReg rd, XReg rn, XReg rm) { emit(threeReg(AOp::Mul, rd, rn, rm)); }
void Emitter::udiv(XReg rd, XReg rn, XReg rm) { emit(threeReg(AOp::Udiv, rd, rn, rm)); }

void
Emitter::addi(XReg rd, XReg rn, std::int32_t imm)
{
    emit(memOp(AOp::AddI, rd, rn, imm));
}

void
Emitter::subi(XReg rd, XReg rn, std::int32_t imm)
{
    emit(memOp(AOp::SubI, rd, rn, imm));
}

void
Emitter::lsli(XReg rd, XReg rn, std::int32_t amount)
{
    emit(memOp(AOp::LslI, rd, rn, amount));
}

void
Emitter::lsri(XReg rd, XReg rn, std::int32_t amount)
{
    emit(memOp(AOp::LsrI, rd, rn, amount));
}

void
Emitter::cmp(XReg rn, XReg rm)
{
    emit(threeReg(AOp::Cmp, 0, rn, rm));
}

void
Emitter::cmpi(XReg rn, std::int32_t imm)
{
    emit(memOp(AOp::CmpI, 0, rn, imm));
}

void
Emitter::cset(XReg rd, Cond cond)
{
    AInstr i;
    i.op = AOp::Cset;
    i.cond = cond;
    i.imm = rd;
    emit(i);
}

void
Emitter::b(Label label)
{
    AInstr i;
    i.op = AOp::B;
    emitBranch(i, label);
}

void
Emitter::bcond(Cond cond, Label label)
{
    AInstr i;
    i.op = AOp::Bcond;
    i.cond = cond;
    emitBranch(i, label);
}

void
Emitter::cbz(XReg rt, Label label)
{
    AInstr i;
    i.op = AOp::Cbz;
    i.rd = rt;
    emitBranch(i, label);
}

void
Emitter::cbnz(XReg rt, Label label)
{
    AInstr i;
    i.op = AOp::Cbnz;
    i.rd = rt;
    emitBranch(i, label);
}

void
Emitter::bl(CodeAddr target)
{
    AInstr i;
    i.op = AOp::Bl;
    i.imm = static_cast<std::int32_t>(target) -
            static_cast<std::int32_t>(here());
    emit(i);
}

void
Emitter::blr(XReg rn)
{
    AInstr i;
    i.op = AOp::Blr;
    i.rd = rn;
    emit(i);
}

void
Emitter::ret()
{
    AInstr i;
    i.op = AOp::Ret;
    emit(i);
}

void Emitter::fadd(XReg rd, XReg rn, XReg rm) { emit(threeReg(AOp::Fadd, rd, rn, rm)); }
void Emitter::fsub(XReg rd, XReg rn, XReg rm) { emit(threeReg(AOp::Fsub, rd, rn, rm)); }
void Emitter::fmul(XReg rd, XReg rn, XReg rm) { emit(threeReg(AOp::Fmul, rd, rn, rm)); }
void Emitter::fdiv(XReg rd, XReg rn, XReg rm) { emit(threeReg(AOp::Fdiv, rd, rn, rm)); }
void Emitter::fsqrt(XReg rd, XReg rn) { emit(threeReg(AOp::Fsqrt, rd, rn, 0)); }
void Emitter::scvtf(XReg rd, XReg rn) { emit(threeReg(AOp::Scvtf, rd, rn, 0)); }
void Emitter::fcvtzs(XReg rd, XReg rn) { emit(threeReg(AOp::Fcvtzs, rd, rn, 0)); }

void
Emitter::helper(std::uint8_t id, std::uint16_t extra)
{
    AInstr i;
    i.op = AOp::Helper;
    i.helper = id;
    i.imm = extra;
    emit(i);
}

void
Emitter::exitTb(std::uint32_t slot)
{
    AInstr i;
    i.op = AOp::ExitTb;
    i.imm = static_cast<std::int32_t>(slot);
    emit(i);
}

void
Emitter::svc()
{
    AInstr i;
    i.op = AOp::Svc;
    emit(i);
}

} // namespace risotto::aarch
