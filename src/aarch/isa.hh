/**
 * @file
 * The aarch host instruction set.
 *
 * An Arm-like 64-bit ISA with the full weak-memory vocabulary of the
 * paper: plain LDR/STR, acquire/release and acquirePC accesses
 * (LDAR/LDAPR/STLR), exclusives (LDXR/STXR, LDAXR/STLXR), single-copy
 * atomics (CAS/CASAL) and the three DMB barriers. All instructions encode
 * to fixed-width 32-bit words like real AArch64.
 */

#ifndef RISOTTO_AARCH_ISA_HH
#define RISOTTO_AARCH_ISA_HH

#include <cstdint>
#include <string>

#include "gx86/isa.hh" // Reuse the condition-code vocabulary.

namespace risotto::aarch
{

/** Host register index: X0..X30, X31 = SP. */
using XReg = std::uint8_t;

constexpr XReg XRegCount = 32;
constexpr XReg Lr = 30; ///< Link register.
constexpr XReg Sp = 31;

/** Condition codes (shared shape with the guest for simplicity). */
using Cond = gx86::Cond;

/** Barrier domains of DMB. */
enum class Barrier : std::uint8_t
{
    Full, ///< DMB ISH (orders everything)
    Ld,   ///< DMB ISHLD (orders loads with subsequent accesses)
    St,   ///< DMB ISHST (orders stores with subsequent stores)
};

/** Host opcodes (the first byte of every encoded word). */
enum class AOp : std::uint8_t
{
    Nop = 0x00,
    Hlt = 0x01,

    MovZ = 0x08,  ///< rd <- imm16 << (16*shift)
    MovK = 0x09,  ///< rd[16*shift +: 16] <- imm16
    MovRR = 0x0a, ///< rd <- rn

    Ldr = 0x10,   ///< rt <- mem64[rn + imm14]
    Str = 0x11,   ///< mem64[rn + imm14] <- rt
    Ldrb = 0x12,  ///< rt <- zx(mem8[rn + imm14])
    Strb = 0x13,  ///< mem8[rn + imm14] <- rt
    Ldar = 0x14,  ///< load-acquire
    Ldapr = 0x15, ///< load-acquirePC (the Q access of Arm-Cats)
    Stlr = 0x16,  ///< store-release
    Ldxr = 0x17,  ///< load-exclusive
    Stxr = 0x18,  ///< store-exclusive: rd <- 0 ok / 1 fail
    Ldaxr = 0x19, ///< load-acquire-exclusive
    Stlxr = 0x1a, ///< store-release-exclusive
    Cas = 0x1b,   ///< plain compare-and-swap: rd(old/expected), rm(new)
    Casal = 0x1c, ///< acquire+release CAS (full barrier per corrected model)
    Ldaddal = 0x1d, ///< atomic fetch-add, acquire+release

    Dmb = 0x20, ///< barrier; `barrier` selects Full/Ld/St

    Add = 0x28,
    Sub = 0x29,
    And = 0x2a,
    Orr = 0x2b,
    Eor = 0x2c,
    Mul = 0x2d,
    Udiv = 0x2e,
    AddI = 0x2f, ///< rd <- rn + imm14 (sign-extended)
    SubI = 0x30,
    LslI = 0x31,
    LsrI = 0x32,
    Cmp = 0x33,  ///< set NZ flags from rn - rm
    CmpI = 0x34,
    Cset = 0x35, ///< rd <- cond(flags) ? 1 : 0

    B = 0x40,     ///< pc-relative word offset
    Bcond = 0x41,
    Cbz = 0x42,
    Cbnz = 0x43,
    Bl = 0x44,    ///< branch-and-link (X30)
    Blr = 0x45,   ///< branch to register
    Ret = 0x46,   ///< branch to X30

    Fadd = 0x50, ///< double-precision on X registers (bit patterns)
    Fsub = 0x51,
    Fmul = 0x52,
    Fdiv = 0x53,
    Fsqrt = 0x54,
    Scvtf = 0x55,  ///< int64 -> double
    Fcvtzs = 0x56, ///< double -> int64

    Helper = 0x60, ///< runtime helper call: id, imm16 extra
    ExitTb = 0x61, ///< trap back to the DBT dispatcher; imm = exit slot
    Svc = 0x62,    ///< host syscall (unused by TBs; for native programs)
};

/** One decoded host instruction. */
struct AInstr
{
    AOp op = AOp::Nop;
    XReg rd = 0;
    XReg rn = 0;
    XReg rm = 0;
    Cond cond = Cond::Eq;
    Barrier barrier = Barrier::Full;
    std::int32_t imm = 0;     ///< imm14/imm16/branch offset (words).
    std::uint8_t shift = 0;   ///< MovZ/MovK half-word index.
    std::uint8_t helper = 0;  ///< Helper id.

    /** Disassembly, e.g. "ldr x3, [x1, #16]". */
    std::string toString() const;
};

/** Encode to one 32-bit word. */
std::uint32_t encode(const AInstr &instr);

/** Decode one 32-bit word. @throws PanicError on unknown opcodes. */
AInstr decode(std::uint32_t word);

/** True when the op reads data memory. */
bool opReadsMemory(AOp op);

/** True when the op writes data memory. */
bool opWritesMemory(AOp op);

/** True for load-acquire flavours (LDAR, LDAXR, CAS-AL read half). */
bool opIsAcquire(AOp op);

/** True for store-release flavours. */
bool opIsRelease(AOp op);

} // namespace risotto::aarch

#endif // RISOTTO_AARCH_ISA_HH
