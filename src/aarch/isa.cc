#include "aarch/isa.hh"

#include <sstream>

#include "support/error.hh"

namespace risotto::aarch
{

namespace
{

/** Encoding field classes. */
enum class Layout
{
    None,
    ThreeReg,  ///< rd, rn, rm
    MovImm,    ///< rd, shift(2), imm16
    Mem,       ///< rd(rt), rn, imm14 signed
    TwoRegImm, ///< rd, rn, imm14 signed (AddI/SubI) or imm6 (shifts)
    Branch24,  ///< imm24 signed words
    CondBr,    ///< cond(4), imm20 signed words
    RegBr,     ///< rd(rt), imm19 signed words (cbz/cbnz)
    OneReg,    ///< rd only (blr)
    Dmb,       ///< barrier(2)
    Helper,    ///< helper(8), imm16
    Exit,      ///< imm24
};

Layout
layoutOf(AOp op)
{
    switch (op) {
      case AOp::Nop:
      case AOp::Hlt:
      case AOp::Ret:
      case AOp::Svc:
        return Layout::None;
      case AOp::MovZ:
      case AOp::MovK:
        return Layout::MovImm;
      case AOp::MovRR:
      case AOp::Add:
      case AOp::Sub:
      case AOp::And:
      case AOp::Orr:
      case AOp::Eor:
      case AOp::Mul:
      case AOp::Udiv:
      case AOp::Cmp:
      case AOp::Cas:
      case AOp::Casal:
      case AOp::Ldaddal:
      case AOp::Stxr:
      case AOp::Stlxr:
      case AOp::Fadd:
      case AOp::Fsub:
      case AOp::Fmul:
      case AOp::Fdiv:
      case AOp::Fsqrt:
      case AOp::Scvtf:
      case AOp::Fcvtzs:
        return Layout::ThreeReg;
      case AOp::Ldr:
      case AOp::Str:
      case AOp::Ldrb:
      case AOp::Strb:
      case AOp::Ldar:
      case AOp::Ldapr:
      case AOp::Stlr:
      case AOp::Ldxr:
      case AOp::Ldaxr:
        return Layout::Mem;
      case AOp::AddI:
      case AOp::SubI:
      case AOp::LslI:
      case AOp::LsrI:
      case AOp::CmpI:
        return Layout::TwoRegImm;
      case AOp::B:
      case AOp::Bl:
        return Layout::Branch24;
      case AOp::Bcond:
      case AOp::Cset:
        return Layout::CondBr;
      case AOp::Cbz:
      case AOp::Cbnz:
        return Layout::RegBr;
      case AOp::Blr:
        return Layout::OneReg;
      case AOp::Dmb:
        return Layout::Dmb;
      case AOp::Helper:
        return Layout::Helper;
      case AOp::ExitTb:
        return Layout::Exit;
    }
    panic("unknown aarch opcode");
}

std::uint32_t
signedField(std::int32_t value, unsigned bits)
{
    const std::uint32_t mask = (1u << bits) - 1;
    return static_cast<std::uint32_t>(value) & mask;
}

std::int32_t
signExtend(std::uint32_t value, unsigned bits)
{
    const std::uint32_t sign = 1u << (bits - 1);
    const std::uint32_t mask = (1u << bits) - 1;
    value &= mask;
    return static_cast<std::int32_t>((value ^ sign)) -
           static_cast<std::int32_t>(sign);
}

} // namespace

std::uint32_t
encode(const AInstr &i)
{
    const std::uint32_t op = static_cast<std::uint32_t>(i.op) << 24;
    switch (layoutOf(i.op)) {
      case Layout::None:
        return op;
      case Layout::ThreeReg:
        return op | (static_cast<std::uint32_t>(i.rd & 31) << 19) |
               (static_cast<std::uint32_t>(i.rn & 31) << 14) |
               (static_cast<std::uint32_t>(i.rm & 31) << 9);
      case Layout::MovImm:
        return op | (static_cast<std::uint32_t>(i.rd & 31) << 19) |
               (static_cast<std::uint32_t>(i.shift & 3) << 16) |
               (static_cast<std::uint32_t>(i.imm) & 0xffff);
      case Layout::Mem:
        return op | (static_cast<std::uint32_t>(i.rd & 31) << 19) |
               (static_cast<std::uint32_t>(i.rn & 31) << 14) |
               signedField(i.imm, 14);
      case Layout::TwoRegImm:
        return op | (static_cast<std::uint32_t>(i.rd & 31) << 19) |
               (static_cast<std::uint32_t>(i.rn & 31) << 14) |
               signedField(i.imm, 14);
      case Layout::Branch24:
        return op | signedField(i.imm, 24);
      case Layout::CondBr:
        return op |
               (static_cast<std::uint32_t>(i.cond) << 20) |
               signedField(i.imm, 20);
      case Layout::RegBr:
        return op | (static_cast<std::uint32_t>(i.rd & 31) << 19) |
               signedField(i.imm, 19);
      case Layout::OneReg:
        return op | (static_cast<std::uint32_t>(i.rd & 31) << 19);
      case Layout::Dmb:
        return op | static_cast<std::uint32_t>(i.barrier);
      case Layout::Helper:
        return op | (static_cast<std::uint32_t>(i.helper) << 16) |
               (static_cast<std::uint32_t>(i.imm) & 0xffff);
      case Layout::Exit:
        return op | (static_cast<std::uint32_t>(i.imm) & 0xffffff);
    }
    panic("unreachable");
}

AInstr
decode(std::uint32_t word)
{
    AInstr i;
    i.op = static_cast<AOp>(word >> 24);
    switch (layoutOf(i.op)) {
      case Layout::None:
        break;
      case Layout::ThreeReg:
        i.rd = (word >> 19) & 31;
        i.rn = (word >> 14) & 31;
        i.rm = (word >> 9) & 31;
        break;
      case Layout::MovImm:
        i.rd = (word >> 19) & 31;
        i.shift = (word >> 16) & 3;
        i.imm = static_cast<std::int32_t>(word & 0xffff);
        break;
      case Layout::Mem:
      case Layout::TwoRegImm:
        i.rd = (word >> 19) & 31;
        i.rn = (word >> 14) & 31;
        i.imm = signExtend(word, 14);
        break;
      case Layout::Branch24:
        i.imm = signExtend(word, 24);
        break;
      case Layout::CondBr:
        i.cond = static_cast<Cond>((word >> 20) & 15);
        i.imm = signExtend(word, 20);
        break;
      case Layout::RegBr:
        i.rd = (word >> 19) & 31;
        i.imm = signExtend(word, 19);
        break;
      case Layout::OneReg:
        i.rd = (word >> 19) & 31;
        break;
      case Layout::Dmb:
        i.barrier = static_cast<Barrier>(word & 3);
        break;
      case Layout::Helper:
        i.helper = (word >> 16) & 0xff;
        i.imm = static_cast<std::int32_t>(word & 0xffff);
        break;
      case Layout::Exit:
        i.imm = static_cast<std::int32_t>(word & 0xffffff);
        break;
    }
    return i;
}

bool
opReadsMemory(AOp op)
{
    switch (op) {
      case AOp::Ldr:
      case AOp::Ldrb:
      case AOp::Ldar:
      case AOp::Ldapr:
      case AOp::Ldxr:
      case AOp::Ldaxr:
      case AOp::Cas:
      case AOp::Casal:
      case AOp::Ldaddal:
        return true;
      default:
        return false;
    }
}

bool
opWritesMemory(AOp op)
{
    switch (op) {
      case AOp::Str:
      case AOp::Strb:
      case AOp::Stlr:
      case AOp::Stxr:
      case AOp::Stlxr:
      case AOp::Cas:
      case AOp::Casal:
      case AOp::Ldaddal:
        return true;
      default:
        return false;
    }
}

bool
opIsAcquire(AOp op)
{
    switch (op) {
      case AOp::Ldar:
      case AOp::Ldaxr:
      case AOp::Casal:
      case AOp::Ldaddal:
      case AOp::Ldapr:
        return true;
      default:
        return false;
    }
}

bool
opIsRelease(AOp op)
{
    switch (op) {
      case AOp::Stlr:
      case AOp::Stlxr:
      case AOp::Casal:
      case AOp::Ldaddal:
        return true;
      default:
        return false;
    }
}

std::string
AInstr::toString() const
{
    std::ostringstream os;
    auto x = [](XReg r) {
        return r == Sp ? std::string("sp") : "x" + std::to_string(r);
    };
    auto mem = [&]() {
        return "[" + x(rn) + ", #" + std::to_string(imm) + "]";
    };
    switch (op) {
      case AOp::Nop: os << "nop"; break;
      case AOp::Hlt: os << "hlt"; break;
      case AOp::MovZ:
        os << "movz " << x(rd) << ", #" << imm << ", lsl #" << 16 * shift;
        break;
      case AOp::MovK:
        os << "movk " << x(rd) << ", #" << imm << ", lsl #" << 16 * shift;
        break;
      case AOp::MovRR: os << "mov " << x(rd) << ", " << x(rn); break;
      case AOp::Ldr: os << "ldr " << x(rd) << ", " << mem(); break;
      case AOp::Str: os << "str " << x(rd) << ", " << mem(); break;
      case AOp::Ldrb: os << "ldrb " << x(rd) << ", " << mem(); break;
      case AOp::Strb: os << "strb " << x(rd) << ", " << mem(); break;
      case AOp::Ldar: os << "ldar " << x(rd) << ", [" << x(rn) << "]"; break;
      case AOp::Ldapr:
        os << "ldapr " << x(rd) << ", [" << x(rn) << "]";
        break;
      case AOp::Stlr: os << "stlr " << x(rd) << ", [" << x(rn) << "]"; break;
      case AOp::Ldxr: os << "ldxr " << x(rd) << ", [" << x(rn) << "]"; break;
      case AOp::Stxr:
        os << "stxr " << x(rd) << ", " << x(rm) << ", [" << x(rn) << "]";
        break;
      case AOp::Ldaxr:
        os << "ldaxr " << x(rd) << ", [" << x(rn) << "]";
        break;
      case AOp::Stlxr:
        os << "stlxr " << x(rd) << ", " << x(rm) << ", [" << x(rn) << "]";
        break;
      case AOp::Cas:
        os << "cas " << x(rd) << ", " << x(rm) << ", [" << x(rn) << "]";
        break;
      case AOp::Casal:
        os << "casal " << x(rd) << ", " << x(rm) << ", [" << x(rn) << "]";
        break;
      case AOp::Ldaddal:
        os << "ldaddal " << x(rm) << ", " << x(rd) << ", [" << x(rn)
           << "]";
        break;
      case AOp::Dmb:
        os << "dmb "
           << (barrier == Barrier::Full
                   ? "ish"
                   : (barrier == Barrier::Ld ? "ishld" : "ishst"));
        break;
      case AOp::Add: os << "add " << x(rd) << ", " << x(rn) << ", " << x(rm); break;
      case AOp::Sub: os << "sub " << x(rd) << ", " << x(rn) << ", " << x(rm); break;
      case AOp::And: os << "and " << x(rd) << ", " << x(rn) << ", " << x(rm); break;
      case AOp::Orr: os << "orr " << x(rd) << ", " << x(rn) << ", " << x(rm); break;
      case AOp::Eor: os << "eor " << x(rd) << ", " << x(rn) << ", " << x(rm); break;
      case AOp::Mul: os << "mul " << x(rd) << ", " << x(rn) << ", " << x(rm); break;
      case AOp::Udiv: os << "udiv " << x(rd) << ", " << x(rn) << ", " << x(rm); break;
      case AOp::AddI:
        os << "add " << x(rd) << ", " << x(rn) << ", #" << imm;
        break;
      case AOp::SubI:
        os << "sub " << x(rd) << ", " << x(rn) << ", #" << imm;
        break;
      case AOp::LslI:
        os << "lsl " << x(rd) << ", " << x(rn) << ", #" << imm;
        break;
      case AOp::LsrI:
        os << "lsr " << x(rd) << ", " << x(rn) << ", #" << imm;
        break;
      case AOp::Cmp: os << "cmp " << x(rn) << ", " << x(rm); break;
      case AOp::CmpI: os << "cmp " << x(rn) << ", #" << imm; break;
      case AOp::Cset:
        os << "cset " << x(static_cast<XReg>(imm & 31)) << ", "
           << gx86::condName(cond);
        break;
      case AOp::B: os << "b " << imm; break;
      case AOp::Bcond:
        os << "b." << gx86::condName(cond) << " " << imm;
        break;
      case AOp::Cbz: os << "cbz " << x(rd) << ", " << imm; break;
      case AOp::Cbnz: os << "cbnz " << x(rd) << ", " << imm; break;
      case AOp::Bl: os << "bl " << imm; break;
      case AOp::Blr: os << "blr " << x(rd); break;
      case AOp::Ret: os << "ret"; break;
      case AOp::Fadd: os << "fadd " << x(rd) << ", " << x(rn) << ", " << x(rm); break;
      case AOp::Fsub: os << "fsub " << x(rd) << ", " << x(rn) << ", " << x(rm); break;
      case AOp::Fmul: os << "fmul " << x(rd) << ", " << x(rn) << ", " << x(rm); break;
      case AOp::Fdiv: os << "fdiv " << x(rd) << ", " << x(rn) << ", " << x(rm); break;
      case AOp::Fsqrt: os << "fsqrt " << x(rd) << ", " << x(rn); break;
      case AOp::Scvtf: os << "scvtf " << x(rd) << ", " << x(rn); break;
      case AOp::Fcvtzs: os << "fcvtzs " << x(rd) << ", " << x(rn); break;
      case AOp::Helper:
        os << "helper #" << static_cast<unsigned>(helper) << ", #" << imm;
        break;
      case AOp::ExitTb: os << "exit_tb #" << imm; break;
      case AOp::Svc: os << "svc #0"; break;
    }
    return os.str();
}

} // namespace risotto::aarch
