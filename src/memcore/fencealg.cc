#include "memcore/fencealg.hh"

namespace risotto::memcore
{

std::uint8_t
fenceOrderMask(FenceKind kind)
{
    switch (kind) {
      case FenceKind::Frr: return OrdRR;
      case FenceKind::Frw: return OrdRW;
      case FenceKind::Frm: return OrdRR | OrdRW;
      case FenceKind::Fwr: return OrdWR;
      case FenceKind::Fww: return OrdWW;
      case FenceKind::Fwm: return OrdWR | OrdWW;
      case FenceKind::Fmr: return OrdRR | OrdWR;
      case FenceKind::Fmw: return OrdRW | OrdWW;
      case FenceKind::Fmm: return OrdAll;
      case FenceKind::Fsc: return OrdAll;
      case FenceKind::MFence: return OrdAll;
      case FenceKind::DmbFull: return OrdAll;
      case FenceKind::DmbLd: return OrdRR | OrdRW;
      case FenceKind::DmbSt: return OrdWW;
      default: return 0;
    }
}

bool
isTcgFence(FenceKind kind)
{
    switch (kind) {
      case FenceKind::Frr:
      case FenceKind::Frw:
      case FenceKind::Frm:
      case FenceKind::Fwr:
      case FenceKind::Fww:
      case FenceKind::Fwm:
      case FenceKind::Fmr:
      case FenceKind::Fmw:
      case FenceKind::Fmm:
      case FenceKind::Facq:
      case FenceKind::Frel:
      case FenceKind::Fsc:
        return true;
      default:
        return false;
    }
}

bool
isScFence(FenceKind kind)
{
    return kind == FenceKind::Fsc;
}

FenceKind
coveringFence(std::uint8_t mask, bool need_sc)
{
    if (need_sc)
        return FenceKind::Fsc;
    mask &= OrdAll;
    switch (mask) {
      case 0: return FenceKind::None;
      case OrdRR: return FenceKind::Frr;
      case OrdRW: return FenceKind::Frw;
      case OrdRR | OrdRW: return FenceKind::Frm;
      case OrdWR: return FenceKind::Fwr;
      case OrdWW: return FenceKind::Fww;
      case OrdWR | OrdWW: return FenceKind::Fwm;
      case OrdRR | OrdWR: return FenceKind::Fmr;
      case OrdRW | OrdWW: return FenceKind::Fmw;
      default: return FenceKind::Fmm; // Any 3+ direction combination.
    }
}

FenceKind
mergeFences(FenceKind a, FenceKind b)
{
    const bool sc = isScFence(a) || isScFence(b);
    return coveringFence(
        static_cast<std::uint8_t>(fenceOrderMask(a) | fenceOrderMask(b)),
        sc);
}

bool
fenceAtLeast(FenceKind a, FenceKind b)
{
    if (isScFence(b) && !isScFence(a))
        return false;
    const std::uint8_t ma = fenceOrderMask(a);
    const std::uint8_t mb = fenceOrderMask(b);
    return (ma & mb) == mb;
}

} // namespace risotto::memcore
