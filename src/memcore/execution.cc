#include "memcore/execution.hh"

#include <sstream>

#include "support/error.hh"

namespace risotto::memcore
{

void
Execution::initRelations()
{
    const std::size_t n = events.size();
    po = Relation(n);
    rf = Relation(n);
    co = Relation(n);
    rmw = Relation(n);
    addrDep = Relation(n);
    dataDep = Relation(n);
    ctrlDep = Relation(n);
}

EventSet
Execution::reads() const
{
    EventSet out(size());
    for (const Event &e : events)
        if (e.isRead())
            out.insert(e.id);
    return out;
}

EventSet
Execution::writes() const
{
    EventSet out(size());
    for (const Event &e : events)
        if (e.isWrite())
            out.insert(e.id);
    return out;
}

EventSet
Execution::fences() const
{
    EventSet out(size());
    for (const Event &e : events)
        if (e.isFence())
            out.insert(e.id);
    return out;
}

EventSet
Execution::fencesOf(FenceKind kind) const
{
    EventSet out(size());
    for (const Event &e : events)
        if (e.isFence() && e.fence == kind)
            out.insert(e.id);
    return out;
}

EventSet
Execution::accessesOf(Access access) const
{
    EventSet out(size());
    for (const Event &e : events)
        if (!e.isFence() && e.access == access)
            out.insert(e.id);
    return out;
}

EventSet
Execution::rmwEventsOf(RmwKind kind) const
{
    EventSet out(size());
    for (const Event &e : events)
        if (e.rmw == kind)
            out.insert(e.id);
    return out;
}

EventSet
Execution::threadEvents(ThreadId tid) const
{
    EventSet out(size());
    for (const Event &e : events)
        if (!e.isInit && e.tid == tid)
            out.insert(e.id);
    return out;
}

EventSet
Execution::onLoc(Loc loc) const
{
    EventSet out(size());
    for (const Event &e : events)
        if (!e.isFence() && e.loc == loc)
            out.insert(e.id);
    return out;
}

EventSet
Execution::initWrites() const
{
    EventSet out(size());
    for (const Event &e : events)
        if (e.isInit)
            out.insert(e.id);
    return out;
}

Relation
Execution::fr() const
{
    Relation result = rf.inverse().compose(co);
    // fr is irreflexive by construction of co, but guard against a read
    // and write sharing ids in malformed graphs.
    for (EventId id = 0; id < size(); ++id)
        result.erase(id, id);
    return result;
}

Relation
Execution::rfe() const
{
    return rf - po;
}

Relation
Execution::coe() const
{
    return co - po;
}

Relation
Execution::fre() const
{
    return fr() - po;
}

Relation
Execution::rfi() const
{
    return rf & po;
}

Relation
Execution::coi() const
{
    return co & po;
}

Relation
Execution::fri() const
{
    return fr() & po;
}

Relation
Execution::poLoc() const
{
    Relation out(size());
    for (auto [a, b] : po.pairs()) {
        const Event &ea = events[a];
        const Event &eb = events[b];
        if (!ea.isFence() && !eb.isFence() && ea.loc == eb.loc)
            out.insert(a, b);
    }
    return out;
}

Relation
Execution::poIm() const
{
    Relation out(size());
    for (auto [a, b] : po.pairs()) {
        bool immediate = true;
        for (EventId mid = 0; mid < size() && immediate; ++mid)
            if (po.contains(a, mid) && po.contains(mid, b))
                immediate = false;
        if (immediate)
            out.insert(a, b);
    }
    return out;
}

Relation
Execution::amo() const
{
    Relation out(size());
    for (auto [r, w] : rmw.pairs())
        if (events[r].rmw == RmwKind::Amo)
            out.insert(r, w);
    return out;
}

Relation
Execution::lxsx() const
{
    Relation out(size());
    for (auto [r, w] : rmw.pairs())
        if (events[r].rmw == RmwKind::LxSx)
            out.insert(r, w);
    return out;
}

bool
Execution::wellFormed(std::string *why) const
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };

    // rf: functional per read (each read has exactly one source), source
    // is a write, same location, same value.
    std::vector<int> sources(size(), 0);
    for (auto [w, r] : rf.pairs()) {
        const Event &ew = events[w];
        const Event &er = events[r];
        if (!ew.isWrite() || !er.isRead())
            return fail("rf pair not write->read");
        if (ew.loc != er.loc)
            return fail("rf pair location mismatch");
        if (ew.value != er.value)
            return fail("rf pair value mismatch");
        sources[r]++;
    }
    for (const Event &e : events)
        if (e.isRead() && sources[e.id] != 1)
            return fail("read " + e.toString() +
                        " lacks a unique rf source");

    // co: strict total order per location over writes; init writes first.
    for (auto [a, b] : co.pairs()) {
        const Event &ea = events[a];
        const Event &eb = events[b];
        if (!ea.isWrite() || !eb.isWrite())
            return fail("co pair not write->write");
        if (ea.loc != eb.loc)
            return fail("co pair location mismatch");
        if (eb.isInit)
            return fail("co pair into an init write");
    }
    if (!co.acyclic())
        return fail("co is cyclic");
    // Totality per location.
    for (const Event &a : events) {
        if (!a.isWrite())
            continue;
        for (const Event &b : events) {
            if (!b.isWrite() || a.id == b.id || a.loc != b.loc)
                continue;
            if (!co.contains(a.id, b.id) && !co.contains(b.id, a.id))
                return fail("co not total on location " +
                            std::to_string(a.loc));
        }
    }

    // rmw: immediate-po same-location read->write.
    const Relation po_im = poIm();
    for (auto [r, w] : rmw.pairs()) {
        const Event &er = events[r];
        const Event &ew = events[w];
        if (!er.isRead() || !ew.isWrite())
            return fail("rmw pair not read->write");
        if (er.loc != ew.loc)
            return fail("rmw pair location mismatch");
        if (!po_im.contains(r, w))
            return fail("rmw pair not immediate in po");
    }
    return true;
}

std::map<Loc, Val>
Execution::behavior() const
{
    std::map<Loc, Val> out;
    for (const Event &e : events) {
        if (!e.isWrite())
            continue;
        bool co_maximal = true;
        for (EventId other = 0; other < size(); ++other) {
            if (co.contains(e.id, other)) {
                co_maximal = false;
                break;
            }
        }
        if (co_maximal)
            out[e.loc] = e.value;
    }
    return out;
}

std::string
Execution::toString() const
{
    std::ostringstream os;
    os << "events:\n";
    for (const Event &e : events)
        os << "  [" << e.id << "] " << e.toString() << "\n";
    auto dump = [&](const char *name, const Relation &r) {
        os << name << ":";
        for (auto [a, b] : r.pairs())
            os << " (" << a << "," << b << ")";
        os << "\n";
    };
    dump("po", po);
    dump("rf", rf);
    dump("co", co);
    dump("rmw", rmw);
    return os.str();
}

} // namespace risotto::memcore
