/**
 * @file
 * Algebra over the TCG IR fence lattice.
 *
 * Each directional TCG fence Fxy orders predecessor accesses of kind x
 * before successor accesses of kind y (x, y in {r, w, m}). Representing a
 * fence by its set of ordered direction pairs {rr, rw, wr, ww} gives a
 * lattice in which fences can be compared, strengthened and merged -- the
 * foundation of the fence-merging optimization of Section 6.1.
 */

#ifndef RISOTTO_MEMCORE_FENCEALG_HH
#define RISOTTO_MEMCORE_FENCEALG_HH

#include <cstdint>

#include "memcore/event.hh"

namespace risotto::memcore
{

/** Direction-pair bits of a fence's ordering strength. */
enum FenceOrderBits : std::uint8_t
{
    OrdRR = 1 << 0, ///< read before read
    OrdRW = 1 << 1, ///< read before write
    OrdWR = 1 << 2, ///< write before read
    OrdWW = 1 << 3, ///< write before write
    OrdAll = OrdRR | OrdRW | OrdWR | OrdWW,
};

/**
 * The ordering strength of a TCG fence as direction-pair bits.
 * Facq/Frel/None contribute no direction pairs; Fsc contributes all.
 */
std::uint8_t fenceOrderMask(FenceKind kind);

/** True when @p kind is one of the TCG IR fences (including Facq/Frel). */
bool isTcgFence(FenceKind kind);

/** True for Fsc, which additionally carries SC (cumulative) semantics. */
bool isScFence(FenceKind kind);

/**
 * The weakest TCG fence whose order mask covers @p mask.
 * Returns FenceKind::None for an empty mask. @p need_sc forces Fsc.
 */
FenceKind coveringFence(std::uint8_t mask, bool need_sc = false);

/**
 * Merge two adjacent TCG fences into one covering both, the core of the
 * Section 6.1 fence-merging pass (e.g. Frm followed by Fww merges to Fsc
 * via strengthening, per the paper's example).
 */
FenceKind mergeFences(FenceKind a, FenceKind b);

/** True when fence @p a is at least as strong as fence @p b. */
bool fenceAtLeast(FenceKind a, FenceKind b);

} // namespace risotto::memcore

#endif // RISOTTO_MEMCORE_FENCEALG_HH
