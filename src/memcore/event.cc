#include "memcore/event.hh"

#include <sstream>

#include "support/error.hh"

namespace risotto::memcore
{

std::string
fenceKindName(FenceKind kind)
{
    switch (kind) {
      case FenceKind::None: return "none";
      case FenceKind::Frr: return "Frr";
      case FenceKind::Frw: return "Frw";
      case FenceKind::Frm: return "Frm";
      case FenceKind::Fwr: return "Fwr";
      case FenceKind::Fww: return "Fww";
      case FenceKind::Fwm: return "Fwm";
      case FenceKind::Fmr: return "Fmr";
      case FenceKind::Fmw: return "Fmw";
      case FenceKind::Fmm: return "Fmm";
      case FenceKind::Facq: return "Facq";
      case FenceKind::Frel: return "Frel";
      case FenceKind::Fsc: return "Fsc";
      case FenceKind::MFence: return "mfence";
      case FenceKind::DmbFull: return "dmbff";
      case FenceKind::DmbLd: return "dmbld";
      case FenceKind::DmbSt: return "dmbst";
    }
    panic("unknown fence kind");
}

std::string
accessName(Access access)
{
    switch (access) {
      case Access::Plain: return "";
      case Access::Acquire: return "acq";
      case Access::AcquirePC: return "acqPC";
      case Access::Release: return "rel";
      case Access::Sc: return "sc";
      case Access::AcqRel: return "aqrl";
    }
    panic("unknown access annotation");
}

std::string
Event::toString() const
{
    std::ostringstream os;
    if (isInit) {
        os << "Init:" << loc << "=" << value;
        return os.str();
    }
    switch (kind) {
      case EventKind::Read:
        os << "R";
        break;
      case EventKind::Write:
        os << "W";
        break;
      case EventKind::Fence:
        os << "F" << tid << ":" << fenceKindName(fence);
        return os.str();
    }
    os << tid;
    const std::string acc = accessName(access);
    if (!acc.empty())
        os << "." << acc;
    if (rmw == RmwKind::Amo)
        os << ".amo";
    else if (rmw == RmwKind::LxSx)
        os << ".x";
    os << ":" << loc << "=" << value;
    return os.str();
}

} // namespace risotto::memcore
