/**
 * @file
 * Finite binary relations and event sets over a fixed universe of events.
 *
 * The 'cat'-style relational algebra of the paper's Section 5.1 is
 * implemented directly: union, intersection, difference, composition (;),
 * inverse, identity [A], transitive closure (+), and
 * irreflexivity/acyclicity checks. Relations are dense bit matrices;
 * execution graphs are tiny (tens of events), so this is both simple and
 * fast.
 */

#ifndef RISOTTO_MEMCORE_RELATION_HH
#define RISOTTO_MEMCORE_RELATION_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "memcore/event.hh"

namespace risotto::memcore
{

/** A subset of the event universe, as a bitset. */
class EventSet
{
  public:
    EventSet() = default;

    /** Empty set over a universe of @p n events. */
    explicit EventSet(std::size_t n);

    /** Universe size. */
    std::size_t size() const { return n_; }

    /** Add event @p id. */
    void insert(EventId id);

    /** Remove event @p id. */
    void erase(EventId id);

    /** Membership test. */
    bool contains(EventId id) const;

    /** Number of members. */
    std::size_t count() const;

    /** True when no member is set. */
    bool empty() const { return count() == 0; }

    /** Set union. */
    EventSet operator|(const EventSet &other) const;

    /** Set intersection. */
    EventSet operator&(const EventSet &other) const;

    /** Set difference. */
    EventSet operator-(const EventSet &other) const;

    /** Complement within the universe. */
    EventSet complement() const;

    /** Members in ascending order. */
    std::vector<EventId> members() const;

  private:
    friend class Relation;
    std::size_t n_ = 0;
    std::vector<std::uint64_t> bits_;
};

/** A binary relation over a fixed universe of events. */
class Relation
{
  public:
    Relation() = default;

    /** Empty relation over a universe of @p n events. */
    explicit Relation(std::size_t n);

    /** Universe size. */
    std::size_t size() const { return n_; }

    /** Add the pair (a, b). */
    void insert(EventId a, EventId b);

    /** Remove the pair (a, b). */
    void erase(EventId a, EventId b);

    /** Membership test for (a, b). */
    bool contains(EventId a, EventId b) const;

    /** True when the relation has no pairs. */
    bool empty() const { return pairCount() == 0; }

    /** Number of pairs. */
    std::size_t pairCount() const;

    /** All pairs in lexicographic order. */
    std::vector<std::pair<EventId, EventId>> pairs() const;

    /** Identity relation on @p set. */
    static Relation identityOn(const EventSet &set);

    /** Full relation A x B. */
    static Relation cross(const EventSet &a, const EventSet &b);

    /** Union. */
    Relation operator|(const Relation &other) const;

    /** Intersection. */
    Relation operator&(const Relation &other) const;

    /** Difference. */
    Relation operator-(const Relation &other) const;

    /** Relational composition: this ; other. */
    Relation compose(const Relation &other) const;

    /** Inverse relation. */
    Relation inverse() const;

    /** Transitive closure (+). */
    Relation transitiveClosure() const;

    /** Restrict to pairs whose source is in @p dom: [dom] ; this. */
    Relation restrictDomain(const EventSet &dom) const;

    /** Restrict to pairs whose target is in @p cod: this ; [cod]. */
    Relation restrictCodomain(const EventSet &cod) const;

    /** Set of sources of pairs. */
    EventSet domain() const;

    /** Set of targets of pairs. */
    EventSet codomain() const;

    /** True when no (a, a) pair exists. */
    bool irreflexive() const;

    /** True when the transitive closure is irreflexive. */
    bool acyclic() const;

    /** True when for every a at most one pair (a, b) exists. */
    bool functional() const;

    bool operator==(const Relation &other) const;

  private:
    std::size_t words() const { return (n_ + 63) / 64; }
    std::uint64_t *row(EventId a) { return bits_.data() + a * words(); }
    const std::uint64_t *row(EventId a) const
    {
        return bits_.data() + a * words();
    }

    std::size_t n_ = 0;
    std::vector<std::uint64_t> bits_;
};

} // namespace risotto::memcore

#endif // RISOTTO_MEMCORE_RELATION_HH
