#include "memcore/relation.hh"

#include <bit>

#include "support/error.hh"

namespace risotto::memcore
{

namespace
{

std::size_t
wordsFor(std::size_t n)
{
    return (n + 63) / 64;
}

} // namespace

EventSet::EventSet(std::size_t n) : n_(n), bits_(wordsFor(n), 0) {}

void
EventSet::insert(EventId id)
{
    panicIf(id >= n_, "EventSet::insert out of range");
    bits_[id / 64] |= (1ULL << (id % 64));
}

void
EventSet::erase(EventId id)
{
    panicIf(id >= n_, "EventSet::erase out of range");
    bits_[id / 64] &= ~(1ULL << (id % 64));
}

bool
EventSet::contains(EventId id) const
{
    if (id >= n_)
        return false;
    return bits_[id / 64] & (1ULL << (id % 64));
}

std::size_t
EventSet::count() const
{
    std::size_t total = 0;
    for (std::uint64_t w : bits_)
        total += static_cast<std::size_t>(std::popcount(w));
    return total;
}

EventSet
EventSet::operator|(const EventSet &other) const
{
    panicIf(n_ != other.n_, "EventSet size mismatch");
    EventSet out(n_);
    for (std::size_t i = 0; i < bits_.size(); ++i)
        out.bits_[i] = bits_[i] | other.bits_[i];
    return out;
}

EventSet
EventSet::operator&(const EventSet &other) const
{
    panicIf(n_ != other.n_, "EventSet size mismatch");
    EventSet out(n_);
    for (std::size_t i = 0; i < bits_.size(); ++i)
        out.bits_[i] = bits_[i] & other.bits_[i];
    return out;
}

EventSet
EventSet::operator-(const EventSet &other) const
{
    panicIf(n_ != other.n_, "EventSet size mismatch");
    EventSet out(n_);
    for (std::size_t i = 0; i < bits_.size(); ++i)
        out.bits_[i] = bits_[i] & ~other.bits_[i];
    return out;
}

EventSet
EventSet::complement() const
{
    EventSet out(n_);
    for (std::size_t i = 0; i < bits_.size(); ++i)
        out.bits_[i] = ~bits_[i];
    // Mask off bits beyond the universe.
    if (n_ % 64 != 0 && !out.bits_.empty())
        out.bits_.back() &= (1ULL << (n_ % 64)) - 1;
    return out;
}

std::vector<EventId>
EventSet::members() const
{
    std::vector<EventId> out;
    for (EventId id = 0; id < n_; ++id)
        if (contains(id))
            out.push_back(id);
    return out;
}

Relation::Relation(std::size_t n) : n_(n), bits_(n * wordsFor(n), 0) {}

void
Relation::insert(EventId a, EventId b)
{
    panicIf(a >= n_ || b >= n_, "Relation::insert out of range");
    row(a)[b / 64] |= (1ULL << (b % 64));
}

void
Relation::erase(EventId a, EventId b)
{
    panicIf(a >= n_ || b >= n_, "Relation::erase out of range");
    row(a)[b / 64] &= ~(1ULL << (b % 64));
}

bool
Relation::contains(EventId a, EventId b) const
{
    if (a >= n_ || b >= n_)
        return false;
    return row(a)[b / 64] & (1ULL << (b % 64));
}

std::size_t
Relation::pairCount() const
{
    std::size_t total = 0;
    for (std::uint64_t w : bits_)
        total += static_cast<std::size_t>(std::popcount(w));
    return total;
}

std::vector<std::pair<EventId, EventId>>
Relation::pairs() const
{
    std::vector<std::pair<EventId, EventId>> out;
    for (EventId a = 0; a < n_; ++a)
        for (EventId b = 0; b < n_; ++b)
            if (contains(a, b))
                out.emplace_back(a, b);
    return out;
}

Relation
Relation::identityOn(const EventSet &set)
{
    Relation out(set.size());
    for (EventId id : set.members())
        out.insert(id, id);
    return out;
}

Relation
Relation::cross(const EventSet &a, const EventSet &b)
{
    panicIf(a.size() != b.size(), "Relation::cross size mismatch");
    Relation out(a.size());
    for (EventId x : a.members())
        for (EventId y : b.members())
            out.insert(x, y);
    return out;
}

Relation
Relation::operator|(const Relation &other) const
{
    panicIf(n_ != other.n_, "Relation size mismatch");
    Relation out(n_);
    for (std::size_t i = 0; i < bits_.size(); ++i)
        out.bits_[i] = bits_[i] | other.bits_[i];
    return out;
}

Relation
Relation::operator&(const Relation &other) const
{
    panicIf(n_ != other.n_, "Relation size mismatch");
    Relation out(n_);
    for (std::size_t i = 0; i < bits_.size(); ++i)
        out.bits_[i] = bits_[i] & other.bits_[i];
    return out;
}

Relation
Relation::operator-(const Relation &other) const
{
    panicIf(n_ != other.n_, "Relation size mismatch");
    Relation out(n_);
    for (std::size_t i = 0; i < bits_.size(); ++i)
        out.bits_[i] = bits_[i] & ~other.bits_[i];
    return out;
}

Relation
Relation::compose(const Relation &other) const
{
    panicIf(n_ != other.n_, "Relation size mismatch");
    Relation out(n_);
    const std::size_t w = words();
    for (EventId a = 0; a < n_; ++a) {
        const std::uint64_t *ra = row(a);
        std::uint64_t *ro = out.row(a);
        for (EventId mid = 0; mid < n_; ++mid) {
            if (!(ra[mid / 64] & (1ULL << (mid % 64))))
                continue;
            const std::uint64_t *rm = other.row(mid);
            for (std::size_t i = 0; i < w; ++i)
                ro[i] |= rm[i];
        }
    }
    return out;
}

Relation
Relation::inverse() const
{
    Relation out(n_);
    for (EventId a = 0; a < n_; ++a)
        for (EventId b = 0; b < n_; ++b)
            if (contains(a, b))
                out.insert(b, a);
    return out;
}

Relation
Relation::transitiveClosure() const
{
    // Floyd-Warshall over the bit matrix.
    Relation out = *this;
    const std::size_t w = words();
    for (EventId mid = 0; mid < n_; ++mid) {
        const std::uint64_t *rm = out.row(mid);
        // Copy mid's row since we mutate rows while iterating.
        std::vector<std::uint64_t> mid_row(rm, rm + w);
        for (EventId a = 0; a < n_; ++a) {
            std::uint64_t *ra = out.row(a);
            if (ra[mid / 64] & (1ULL << (mid % 64)))
                for (std::size_t i = 0; i < w; ++i)
                    ra[i] |= mid_row[i];
        }
    }
    return out;
}

Relation
Relation::restrictDomain(const EventSet &dom) const
{
    panicIf(n_ != dom.size(), "Relation size mismatch");
    Relation out(n_);
    const std::size_t w = words();
    for (EventId a = 0; a < n_; ++a) {
        if (!dom.contains(a))
            continue;
        const std::uint64_t *ra = row(a);
        std::uint64_t *ro = out.row(a);
        for (std::size_t i = 0; i < w; ++i)
            ro[i] = ra[i];
    }
    return out;
}

Relation
Relation::restrictCodomain(const EventSet &cod) const
{
    panicIf(n_ != cod.size(), "Relation size mismatch");
    Relation out(n_);
    const std::size_t w = words();
    for (EventId a = 0; a < n_; ++a) {
        const std::uint64_t *ra = row(a);
        std::uint64_t *ro = out.row(a);
        for (std::size_t i = 0; i < w; ++i)
            ro[i] = ra[i] & cod.bits_[i];
    }
    return out;
}

EventSet
Relation::domain() const
{
    EventSet out(n_);
    for (EventId a = 0; a < n_; ++a) {
        const std::uint64_t *ra = row(a);
        for (std::size_t i = 0; i < words(); ++i) {
            if (ra[i]) {
                out.insert(a);
                break;
            }
        }
    }
    return out;
}

EventSet
Relation::codomain() const
{
    EventSet out(n_);
    for (EventId a = 0; a < n_; ++a)
        for (EventId b = 0; b < n_; ++b)
            if (contains(a, b))
                out.insert(b);
    return out;
}

bool
Relation::irreflexive() const
{
    for (EventId a = 0; a < n_; ++a)
        if (contains(a, a))
            return false;
    return true;
}

bool
Relation::acyclic() const
{
    return transitiveClosure().irreflexive();
}

bool
Relation::functional() const
{
    for (EventId a = 0; a < n_; ++a) {
        std::size_t out_degree = 0;
        for (std::size_t i = 0; i < words(); ++i)
            out_degree += static_cast<std::size_t>(std::popcount(row(a)[i]));
        if (out_degree > 1)
            return false;
    }
    return true;
}

bool
Relation::operator==(const Relation &other) const
{
    return n_ == other.n_ && bits_ == other.bits_;
}

} // namespace risotto::memcore
